# Empty dependencies file for switch_upgrade.
# This may be replaced when dependencies are built.
