file(REMOVE_RECURSE
  "CMakeFiles/switch_upgrade.dir/switch_upgrade.cpp.o"
  "CMakeFiles/switch_upgrade.dir/switch_upgrade.cpp.o.d"
  "switch_upgrade"
  "switch_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
