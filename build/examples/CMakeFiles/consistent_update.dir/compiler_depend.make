# Empty compiler generated dependencies file for consistent_update.
# This may be replaced when dependencies are built.
