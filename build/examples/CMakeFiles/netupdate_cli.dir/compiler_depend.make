# Empty compiler generated dependencies file for netupdate_cli.
# This may be replaced when dependencies are built.
