file(REMOVE_RECURSE
  "CMakeFiles/netupdate_cli.dir/netupdate_cli.cpp.o"
  "CMakeFiles/netupdate_cli.dir/netupdate_cli.cpp.o.d"
  "netupdate_cli"
  "netupdate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netupdate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
