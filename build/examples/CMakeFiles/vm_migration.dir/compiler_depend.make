# Empty compiler generated dependencies file for vm_migration.
# This may be replaced when dependencies are built.
