file(REMOVE_RECURSE
  "CMakeFiles/vm_migration.dir/vm_migration.cpp.o"
  "CMakeFiles/vm_migration.dir/vm_migration.cpp.o.d"
  "vm_migration"
  "vm_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
