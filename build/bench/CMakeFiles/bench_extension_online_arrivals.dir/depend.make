# Empty dependencies file for bench_extension_online_arrivals.
# This may be replaced when dependencies are built.
