file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_online_arrivals.dir/bench_extension_online_arrivals.cpp.o"
  "CMakeFiles/bench_extension_online_arrivals.dir/bench_extension_online_arrivals.cpp.o.d"
  "bench_extension_online_arrivals"
  "bench_extension_online_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_online_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
