# Empty compiler generated dependencies file for bench_fig5_event_count.
# This may be replaced when dependencies are built.
