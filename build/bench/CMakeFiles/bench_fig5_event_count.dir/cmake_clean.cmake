file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_event_count.dir/bench_fig5_event_count.cpp.o"
  "CMakeFiles/bench_fig5_event_count.dir/bench_fig5_event_count.cpp.o.d"
  "bench_fig5_event_count"
  "bench_fig5_event_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_event_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
