# Empty compiler generated dependencies file for bench_fig9_per_event_delay.
# This may be replaced when dependencies are built.
