file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_per_event_delay.dir/bench_fig9_per_event_delay.cpp.o"
  "CMakeFiles/bench_fig9_per_event_delay.dir/bench_fig9_per_event_delay.cpp.o.d"
  "bench_fig9_per_event_delay"
  "bench_fig9_per_event_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_per_event_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
