# Empty dependencies file for bench_fig6_lmtf_vs_fifo.
# This may be replaced when dependencies are built.
