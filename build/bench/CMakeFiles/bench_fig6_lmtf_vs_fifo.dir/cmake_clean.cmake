file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lmtf_vs_fifo.dir/bench_fig6_lmtf_vs_fifo.cpp.o"
  "CMakeFiles/bench_fig6_lmtf_vs_fifo.dir/bench_fig6_lmtf_vs_fifo.cpp.o.d"
  "bench_fig6_lmtf_vs_fifo"
  "bench_fig6_lmtf_vs_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lmtf_vs_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
