# Empty dependencies file for bench_fig3_reorder_example.
# This may be replaced when dependencies are built.
