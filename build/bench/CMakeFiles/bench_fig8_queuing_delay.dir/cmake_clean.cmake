file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_queuing_delay.dir/bench_fig8_queuing_delay.cpp.o"
  "CMakeFiles/bench_fig8_queuing_delay.dir/bench_fig8_queuing_delay.cpp.o.d"
  "bench_fig8_queuing_delay"
  "bench_fig8_queuing_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_queuing_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
