
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_queuing_delay.cpp" "bench/CMakeFiles/bench_fig8_queuing_delay.dir/bench_fig8_queuing_delay.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_queuing_delay.dir/bench_fig8_queuing_delay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_consistent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_update.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
