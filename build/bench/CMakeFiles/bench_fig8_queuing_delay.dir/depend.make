# Empty dependencies file for bench_fig8_queuing_delay.
# This may be replaced when dependencies are built.
