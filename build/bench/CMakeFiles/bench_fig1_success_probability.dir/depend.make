# Empty dependencies file for bench_fig1_success_probability.
# This may be replaced when dependencies are built.
