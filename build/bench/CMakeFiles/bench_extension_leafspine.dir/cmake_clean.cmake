file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_leafspine.dir/bench_extension_leafspine.cpp.o"
  "CMakeFiles/bench_extension_leafspine.dir/bench_extension_leafspine.cpp.o.d"
  "bench_extension_leafspine"
  "bench_extension_leafspine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_leafspine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
