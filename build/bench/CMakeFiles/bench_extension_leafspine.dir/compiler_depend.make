# Empty compiler generated dependencies file for bench_extension_leafspine.
# This may be replaced when dependencies are built.
