# Empty compiler generated dependencies file for bench_ablation_coallowance.
# This may be replaced when dependencies are built.
