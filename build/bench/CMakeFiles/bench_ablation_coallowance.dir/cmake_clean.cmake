file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coallowance.dir/bench_ablation_coallowance.cpp.o"
  "CMakeFiles/bench_ablation_coallowance.dir/bench_ablation_coallowance.cpp.o.d"
  "bench_ablation_coallowance"
  "bench_ablation_coallowance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coallowance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
