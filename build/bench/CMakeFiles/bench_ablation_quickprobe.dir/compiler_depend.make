# Empty compiler generated dependencies file for bench_ablation_quickprobe.
# This may be replaced when dependencies are built.
