file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quickprobe.dir/bench_ablation_quickprobe.cpp.o"
  "CMakeFiles/bench_ablation_quickprobe.dir/bench_ablation_quickprobe.cpp.o.d"
  "bench_ablation_quickprobe"
  "bench_ablation_quickprobe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quickprobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
