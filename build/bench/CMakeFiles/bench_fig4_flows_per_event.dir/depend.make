# Empty dependencies file for bench_fig4_flows_per_event.
# This may be replaced when dependencies are built.
