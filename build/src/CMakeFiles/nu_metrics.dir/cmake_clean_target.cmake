file(REMOVE_RECURSE
  "libnu_metrics.a"
)
