
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cc" "src/CMakeFiles/nu_metrics.dir/metrics/collector.cc.o" "gcc" "src/CMakeFiles/nu_metrics.dir/metrics/collector.cc.o.d"
  "/root/repo/src/metrics/export.cc" "src/CMakeFiles/nu_metrics.dir/metrics/export.cc.o" "gcc" "src/CMakeFiles/nu_metrics.dir/metrics/export.cc.o.d"
  "/root/repo/src/metrics/fairness.cc" "src/CMakeFiles/nu_metrics.dir/metrics/fairness.cc.o" "gcc" "src/CMakeFiles/nu_metrics.dir/metrics/fairness.cc.o.d"
  "/root/repo/src/metrics/gantt.cc" "src/CMakeFiles/nu_metrics.dir/metrics/gantt.cc.o" "gcc" "src/CMakeFiles/nu_metrics.dir/metrics/gantt.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/nu_metrics.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/nu_metrics.dir/metrics/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
