# Empty compiler generated dependencies file for nu_metrics.
# This may be replaced when dependencies are built.
