file(REMOVE_RECURSE
  "CMakeFiles/nu_metrics.dir/metrics/collector.cc.o"
  "CMakeFiles/nu_metrics.dir/metrics/collector.cc.o.d"
  "CMakeFiles/nu_metrics.dir/metrics/export.cc.o"
  "CMakeFiles/nu_metrics.dir/metrics/export.cc.o.d"
  "CMakeFiles/nu_metrics.dir/metrics/fairness.cc.o"
  "CMakeFiles/nu_metrics.dir/metrics/fairness.cc.o.d"
  "CMakeFiles/nu_metrics.dir/metrics/gantt.cc.o"
  "CMakeFiles/nu_metrics.dir/metrics/gantt.cc.o.d"
  "CMakeFiles/nu_metrics.dir/metrics/report.cc.o"
  "CMakeFiles/nu_metrics.dir/metrics/report.cc.o.d"
  "libnu_metrics.a"
  "libnu_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
