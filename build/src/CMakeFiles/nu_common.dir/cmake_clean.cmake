file(REMOVE_RECURSE
  "CMakeFiles/nu_common.dir/common/csv.cc.o"
  "CMakeFiles/nu_common.dir/common/csv.cc.o.d"
  "CMakeFiles/nu_common.dir/common/flags.cc.o"
  "CMakeFiles/nu_common.dir/common/flags.cc.o.d"
  "CMakeFiles/nu_common.dir/common/histogram.cc.o"
  "CMakeFiles/nu_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/nu_common.dir/common/logging.cc.o"
  "CMakeFiles/nu_common.dir/common/logging.cc.o.d"
  "CMakeFiles/nu_common.dir/common/rng.cc.o"
  "CMakeFiles/nu_common.dir/common/rng.cc.o.d"
  "CMakeFiles/nu_common.dir/common/stats.cc.o"
  "CMakeFiles/nu_common.dir/common/stats.cc.o.d"
  "CMakeFiles/nu_common.dir/common/table.cc.o"
  "CMakeFiles/nu_common.dir/common/table.cc.o.d"
  "libnu_common.a"
  "libnu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
