file(REMOVE_RECURSE
  "libnu_common.a"
)
