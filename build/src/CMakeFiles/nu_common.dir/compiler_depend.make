# Empty compiler generated dependencies file for nu_common.
# This may be replaced when dependencies are built.
