# Empty dependencies file for nu_trace.
# This may be replaced when dependencies are built.
