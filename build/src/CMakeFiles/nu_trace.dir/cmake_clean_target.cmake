file(REMOVE_RECURSE
  "libnu_trace.a"
)
