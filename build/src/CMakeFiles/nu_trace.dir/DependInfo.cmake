
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/background.cc" "src/CMakeFiles/nu_trace.dir/trace/background.cc.o" "gcc" "src/CMakeFiles/nu_trace.dir/trace/background.cc.o.d"
  "/root/repo/src/trace/benson.cc" "src/CMakeFiles/nu_trace.dir/trace/benson.cc.o" "gcc" "src/CMakeFiles/nu_trace.dir/trace/benson.cc.o.d"
  "/root/repo/src/trace/distributions.cc" "src/CMakeFiles/nu_trace.dir/trace/distributions.cc.o" "gcc" "src/CMakeFiles/nu_trace.dir/trace/distributions.cc.o.d"
  "/root/repo/src/trace/ip_mapper.cc" "src/CMakeFiles/nu_trace.dir/trace/ip_mapper.cc.o" "gcc" "src/CMakeFiles/nu_trace.dir/trace/ip_mapper.cc.o.d"
  "/root/repo/src/trace/trace_loader.cc" "src/CMakeFiles/nu_trace.dir/trace/trace_loader.cc.o" "gcc" "src/CMakeFiles/nu_trace.dir/trace/trace_loader.cc.o.d"
  "/root/repo/src/trace/uniform.cc" "src/CMakeFiles/nu_trace.dir/trace/uniform.cc.o" "gcc" "src/CMakeFiles/nu_trace.dir/trace/uniform.cc.o.d"
  "/root/repo/src/trace/yahoo_like.cc" "src/CMakeFiles/nu_trace.dir/trace/yahoo_like.cc.o" "gcc" "src/CMakeFiles/nu_trace.dir/trace/yahoo_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
