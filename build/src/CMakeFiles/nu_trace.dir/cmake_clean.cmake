file(REMOVE_RECURSE
  "CMakeFiles/nu_trace.dir/trace/background.cc.o"
  "CMakeFiles/nu_trace.dir/trace/background.cc.o.d"
  "CMakeFiles/nu_trace.dir/trace/benson.cc.o"
  "CMakeFiles/nu_trace.dir/trace/benson.cc.o.d"
  "CMakeFiles/nu_trace.dir/trace/distributions.cc.o"
  "CMakeFiles/nu_trace.dir/trace/distributions.cc.o.d"
  "CMakeFiles/nu_trace.dir/trace/ip_mapper.cc.o"
  "CMakeFiles/nu_trace.dir/trace/ip_mapper.cc.o.d"
  "CMakeFiles/nu_trace.dir/trace/trace_loader.cc.o"
  "CMakeFiles/nu_trace.dir/trace/trace_loader.cc.o.d"
  "CMakeFiles/nu_trace.dir/trace/uniform.cc.o"
  "CMakeFiles/nu_trace.dir/trace/uniform.cc.o.d"
  "CMakeFiles/nu_trace.dir/trace/yahoo_like.cc.o"
  "CMakeFiles/nu_trace.dir/trace/yahoo_like.cc.o.d"
  "libnu_trace.a"
  "libnu_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
