file(REMOVE_RECURSE
  "libnu_consistent.a"
)
