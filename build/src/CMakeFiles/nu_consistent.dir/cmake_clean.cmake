file(REMOVE_RECURSE
  "CMakeFiles/nu_consistent.dir/consistent/migration_bridge.cc.o"
  "CMakeFiles/nu_consistent.dir/consistent/migration_bridge.cc.o.d"
  "CMakeFiles/nu_consistent.dir/consistent/rule_table.cc.o"
  "CMakeFiles/nu_consistent.dir/consistent/rule_table.cc.o.d"
  "CMakeFiles/nu_consistent.dir/consistent/two_phase.cc.o"
  "CMakeFiles/nu_consistent.dir/consistent/two_phase.cc.o.d"
  "libnu_consistent.a"
  "libnu_consistent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_consistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
