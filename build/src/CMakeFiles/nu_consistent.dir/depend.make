# Empty dependencies file for nu_consistent.
# This may be replaced when dependencies are built.
