# Empty dependencies file for nu_exp.
# This may be replaced when dependencies are built.
