file(REMOVE_RECURSE
  "CMakeFiles/nu_exp.dir/exp/config.cc.o"
  "CMakeFiles/nu_exp.dir/exp/config.cc.o.d"
  "CMakeFiles/nu_exp.dir/exp/runner.cc.o"
  "CMakeFiles/nu_exp.dir/exp/runner.cc.o.d"
  "CMakeFiles/nu_exp.dir/exp/workload.cc.o"
  "CMakeFiles/nu_exp.dir/exp/workload.cc.o.d"
  "libnu_exp.a"
  "libnu_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
