file(REMOVE_RECURSE
  "libnu_exp.a"
)
