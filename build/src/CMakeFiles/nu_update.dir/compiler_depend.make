# Empty compiler generated dependencies file for nu_update.
# This may be replaced when dependencies are built.
