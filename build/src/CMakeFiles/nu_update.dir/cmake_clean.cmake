file(REMOVE_RECURSE
  "CMakeFiles/nu_update.dir/update/cost_estimate.cc.o"
  "CMakeFiles/nu_update.dir/update/cost_estimate.cc.o.d"
  "CMakeFiles/nu_update.dir/update/event_generator.cc.o"
  "CMakeFiles/nu_update.dir/update/event_generator.cc.o.d"
  "CMakeFiles/nu_update.dir/update/migration.cc.o"
  "CMakeFiles/nu_update.dir/update/migration.cc.o.d"
  "CMakeFiles/nu_update.dir/update/planner.cc.o"
  "CMakeFiles/nu_update.dir/update/planner.cc.o.d"
  "CMakeFiles/nu_update.dir/update/transition.cc.o"
  "CMakeFiles/nu_update.dir/update/transition.cc.o.d"
  "CMakeFiles/nu_update.dir/update/update_event.cc.o"
  "CMakeFiles/nu_update.dir/update/update_event.cc.o.d"
  "libnu_update.a"
  "libnu_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
