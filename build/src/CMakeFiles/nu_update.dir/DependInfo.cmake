
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/update/cost_estimate.cc" "src/CMakeFiles/nu_update.dir/update/cost_estimate.cc.o" "gcc" "src/CMakeFiles/nu_update.dir/update/cost_estimate.cc.o.d"
  "/root/repo/src/update/event_generator.cc" "src/CMakeFiles/nu_update.dir/update/event_generator.cc.o" "gcc" "src/CMakeFiles/nu_update.dir/update/event_generator.cc.o.d"
  "/root/repo/src/update/migration.cc" "src/CMakeFiles/nu_update.dir/update/migration.cc.o" "gcc" "src/CMakeFiles/nu_update.dir/update/migration.cc.o.d"
  "/root/repo/src/update/planner.cc" "src/CMakeFiles/nu_update.dir/update/planner.cc.o" "gcc" "src/CMakeFiles/nu_update.dir/update/planner.cc.o.d"
  "/root/repo/src/update/transition.cc" "src/CMakeFiles/nu_update.dir/update/transition.cc.o" "gcc" "src/CMakeFiles/nu_update.dir/update/transition.cc.o.d"
  "/root/repo/src/update/update_event.cc" "src/CMakeFiles/nu_update.dir/update/update_event.cc.o" "gcc" "src/CMakeFiles/nu_update.dir/update/update_event.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
