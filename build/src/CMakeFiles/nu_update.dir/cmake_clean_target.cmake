file(REMOVE_RECURSE
  "libnu_update.a"
)
