# Empty compiler generated dependencies file for nu_topo.
# This may be replaced when dependencies are built.
