file(REMOVE_RECURSE
  "libnu_topo.a"
)
