file(REMOVE_RECURSE
  "CMakeFiles/nu_topo.dir/topo/fat_tree.cc.o"
  "CMakeFiles/nu_topo.dir/topo/fat_tree.cc.o.d"
  "CMakeFiles/nu_topo.dir/topo/graph.cc.o"
  "CMakeFiles/nu_topo.dir/topo/graph.cc.o.d"
  "CMakeFiles/nu_topo.dir/topo/ksp.cc.o"
  "CMakeFiles/nu_topo.dir/topo/ksp.cc.o.d"
  "CMakeFiles/nu_topo.dir/topo/leaf_spine.cc.o"
  "CMakeFiles/nu_topo.dir/topo/leaf_spine.cc.o.d"
  "CMakeFiles/nu_topo.dir/topo/path_provider.cc.o"
  "CMakeFiles/nu_topo.dir/topo/path_provider.cc.o.d"
  "CMakeFiles/nu_topo.dir/topo/random_graph.cc.o"
  "CMakeFiles/nu_topo.dir/topo/random_graph.cc.o.d"
  "CMakeFiles/nu_topo.dir/topo/shortest_path.cc.o"
  "CMakeFiles/nu_topo.dir/topo/shortest_path.cc.o.d"
  "libnu_topo.a"
  "libnu_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
