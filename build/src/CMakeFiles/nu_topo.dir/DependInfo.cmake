
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/fat_tree.cc" "src/CMakeFiles/nu_topo.dir/topo/fat_tree.cc.o" "gcc" "src/CMakeFiles/nu_topo.dir/topo/fat_tree.cc.o.d"
  "/root/repo/src/topo/graph.cc" "src/CMakeFiles/nu_topo.dir/topo/graph.cc.o" "gcc" "src/CMakeFiles/nu_topo.dir/topo/graph.cc.o.d"
  "/root/repo/src/topo/ksp.cc" "src/CMakeFiles/nu_topo.dir/topo/ksp.cc.o" "gcc" "src/CMakeFiles/nu_topo.dir/topo/ksp.cc.o.d"
  "/root/repo/src/topo/leaf_spine.cc" "src/CMakeFiles/nu_topo.dir/topo/leaf_spine.cc.o" "gcc" "src/CMakeFiles/nu_topo.dir/topo/leaf_spine.cc.o.d"
  "/root/repo/src/topo/path_provider.cc" "src/CMakeFiles/nu_topo.dir/topo/path_provider.cc.o" "gcc" "src/CMakeFiles/nu_topo.dir/topo/path_provider.cc.o.d"
  "/root/repo/src/topo/random_graph.cc" "src/CMakeFiles/nu_topo.dir/topo/random_graph.cc.o" "gcc" "src/CMakeFiles/nu_topo.dir/topo/random_graph.cc.o.d"
  "/root/repo/src/topo/shortest_path.cc" "src/CMakeFiles/nu_topo.dir/topo/shortest_path.cc.o" "gcc" "src/CMakeFiles/nu_topo.dir/topo/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
