file(REMOVE_RECURSE
  "libnu_net.a"
)
