
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/admission.cc" "src/CMakeFiles/nu_net.dir/net/admission.cc.o" "gcc" "src/CMakeFiles/nu_net.dir/net/admission.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/nu_net.dir/net/network.cc.o" "gcc" "src/CMakeFiles/nu_net.dir/net/network.cc.o.d"
  "/root/repo/src/net/snapshot.cc" "src/CMakeFiles/nu_net.dir/net/snapshot.cc.o" "gcc" "src/CMakeFiles/nu_net.dir/net/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
