file(REMOVE_RECURSE
  "CMakeFiles/nu_net.dir/net/admission.cc.o"
  "CMakeFiles/nu_net.dir/net/admission.cc.o.d"
  "CMakeFiles/nu_net.dir/net/network.cc.o"
  "CMakeFiles/nu_net.dir/net/network.cc.o.d"
  "CMakeFiles/nu_net.dir/net/snapshot.cc.o"
  "CMakeFiles/nu_net.dir/net/snapshot.cc.o.d"
  "libnu_net.a"
  "libnu_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
