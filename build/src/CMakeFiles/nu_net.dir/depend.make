# Empty dependencies file for nu_net.
# This may be replaced when dependencies are built.
