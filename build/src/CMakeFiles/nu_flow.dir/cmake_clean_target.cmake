file(REMOVE_RECURSE
  "libnu_flow.a"
)
