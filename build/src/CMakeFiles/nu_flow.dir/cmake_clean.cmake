file(REMOVE_RECURSE
  "CMakeFiles/nu_flow.dir/flow/flow.cc.o"
  "CMakeFiles/nu_flow.dir/flow/flow.cc.o.d"
  "CMakeFiles/nu_flow.dir/flow/flow_table.cc.o"
  "CMakeFiles/nu_flow.dir/flow/flow_table.cc.o.d"
  "libnu_flow.a"
  "libnu_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
