# Empty dependencies file for nu_flow.
# This may be replaced when dependencies are built.
