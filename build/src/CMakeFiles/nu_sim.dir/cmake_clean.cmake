file(REMOVE_RECURSE
  "CMakeFiles/nu_sim.dir/sim/cost_model.cc.o"
  "CMakeFiles/nu_sim.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/nu_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/nu_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/nu_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/nu_sim.dir/sim/simulator.cc.o.d"
  "libnu_sim.a"
  "libnu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
