file(REMOVE_RECURSE
  "libnu_sim.a"
)
