# Empty dependencies file for nu_sim.
# This may be replaced when dependencies are built.
