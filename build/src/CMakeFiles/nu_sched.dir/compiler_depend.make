# Empty compiler generated dependencies file for nu_sched.
# This may be replaced when dependencies are built.
