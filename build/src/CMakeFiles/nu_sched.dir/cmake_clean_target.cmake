file(REMOVE_RECURSE
  "libnu_sched.a"
)
