file(REMOVE_RECURSE
  "CMakeFiles/nu_sched.dir/sched/factory.cc.o"
  "CMakeFiles/nu_sched.dir/sched/factory.cc.o.d"
  "CMakeFiles/nu_sched.dir/sched/fifo.cc.o"
  "CMakeFiles/nu_sched.dir/sched/fifo.cc.o.d"
  "CMakeFiles/nu_sched.dir/sched/flow_level.cc.o"
  "CMakeFiles/nu_sched.dir/sched/flow_level.cc.o.d"
  "CMakeFiles/nu_sched.dir/sched/lmtf.cc.o"
  "CMakeFiles/nu_sched.dir/sched/lmtf.cc.o.d"
  "CMakeFiles/nu_sched.dir/sched/plmtf.cc.o"
  "CMakeFiles/nu_sched.dir/sched/plmtf.cc.o.d"
  "CMakeFiles/nu_sched.dir/sched/reorder.cc.o"
  "CMakeFiles/nu_sched.dir/sched/reorder.cc.o.d"
  "CMakeFiles/nu_sched.dir/sched/scheduler.cc.o"
  "CMakeFiles/nu_sched.dir/sched/scheduler.cc.o.d"
  "CMakeFiles/nu_sched.dir/sched/sjf.cc.o"
  "CMakeFiles/nu_sched.dir/sched/sjf.cc.o.d"
  "libnu_sched.a"
  "libnu_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nu_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
