
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/factory.cc" "src/CMakeFiles/nu_sched.dir/sched/factory.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/factory.cc.o.d"
  "/root/repo/src/sched/fifo.cc" "src/CMakeFiles/nu_sched.dir/sched/fifo.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/fifo.cc.o.d"
  "/root/repo/src/sched/flow_level.cc" "src/CMakeFiles/nu_sched.dir/sched/flow_level.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/flow_level.cc.o.d"
  "/root/repo/src/sched/lmtf.cc" "src/CMakeFiles/nu_sched.dir/sched/lmtf.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/lmtf.cc.o.d"
  "/root/repo/src/sched/plmtf.cc" "src/CMakeFiles/nu_sched.dir/sched/plmtf.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/plmtf.cc.o.d"
  "/root/repo/src/sched/reorder.cc" "src/CMakeFiles/nu_sched.dir/sched/reorder.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/reorder.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/nu_sched.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sched/sjf.cc" "src/CMakeFiles/nu_sched.dir/sched/sjf.cc.o" "gcc" "src/CMakeFiles/nu_sched.dir/sched/sjf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_update.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
