# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_topo "/root/repo/build/tests/test_topo")
set_tests_properties(test_topo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;26;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_flow "/root/repo/build/tests/test_flow")
set_tests_properties(test_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;32;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;35;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_consistent "/root/repo/build/tests/test_consistent")
set_tests_properties(test_consistent PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;41;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_update "/root/repo/build/tests/test_update")
set_tests_properties(test_update PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;46;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_metrics "/root/repo/build/tests/test_metrics")
set_tests_properties(test_metrics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;54;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sched "/root/repo/build/tests/test_sched")
set_tests_properties(test_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;61;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;65;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_exp "/root/repo/build/tests/test_exp")
set_tests_properties(test_exp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;71;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;75;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_property "/root/repo/build/tests/test_property")
set_tests_properties(test_property PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;82;nu_add_test;/root/repo/tests/CMakeLists.txt;0;")
