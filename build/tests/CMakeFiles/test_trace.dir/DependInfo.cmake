
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/background_test.cc" "tests/CMakeFiles/test_trace.dir/trace/background_test.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/background_test.cc.o.d"
  "/root/repo/tests/trace/distributions_test.cc" "tests/CMakeFiles/test_trace.dir/trace/distributions_test.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/distributions_test.cc.o.d"
  "/root/repo/tests/trace/generators_test.cc" "tests/CMakeFiles/test_trace.dir/trace/generators_test.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/generators_test.cc.o.d"
  "/root/repo/tests/trace/trace_loader_test.cc" "tests/CMakeFiles/test_trace.dir/trace/trace_loader_test.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/trace_loader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_consistent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_update.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
