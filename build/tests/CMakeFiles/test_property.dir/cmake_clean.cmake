file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/graph_property_test.cc.o"
  "CMakeFiles/test_property.dir/property/graph_property_test.cc.o.d"
  "CMakeFiles/test_property.dir/property/migration_property_test.cc.o"
  "CMakeFiles/test_property.dir/property/migration_property_test.cc.o.d"
  "CMakeFiles/test_property.dir/property/simulator_property_test.cc.o"
  "CMakeFiles/test_property.dir/property/simulator_property_test.cc.o.d"
  "test_property"
  "test_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
