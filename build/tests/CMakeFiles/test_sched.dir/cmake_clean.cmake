file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/flow_level_test.cc.o"
  "CMakeFiles/test_sched.dir/sched/flow_level_test.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/schedulers_test.cc.o"
  "CMakeFiles/test_sched.dir/sched/schedulers_test.cc.o.d"
  "test_sched"
  "test_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
