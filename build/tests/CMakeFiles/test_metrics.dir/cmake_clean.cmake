file(REMOVE_RECURSE
  "CMakeFiles/test_metrics.dir/metrics/collector_test.cc.o"
  "CMakeFiles/test_metrics.dir/metrics/collector_test.cc.o.d"
  "CMakeFiles/test_metrics.dir/metrics/export_test.cc.o"
  "CMakeFiles/test_metrics.dir/metrics/export_test.cc.o.d"
  "CMakeFiles/test_metrics.dir/metrics/fairness_test.cc.o"
  "CMakeFiles/test_metrics.dir/metrics/fairness_test.cc.o.d"
  "CMakeFiles/test_metrics.dir/metrics/gantt_test.cc.o"
  "CMakeFiles/test_metrics.dir/metrics/gantt_test.cc.o.d"
  "CMakeFiles/test_metrics.dir/metrics/report_test.cc.o"
  "CMakeFiles/test_metrics.dir/metrics/report_test.cc.o.d"
  "test_metrics"
  "test_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
