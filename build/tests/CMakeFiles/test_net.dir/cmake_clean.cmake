file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/admission_test.cc.o"
  "CMakeFiles/test_net.dir/net/admission_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/fabric_test.cc.o"
  "CMakeFiles/test_net.dir/net/fabric_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/network_test.cc.o"
  "CMakeFiles/test_net.dir/net/network_test.cc.o.d"
  "CMakeFiles/test_net.dir/net/snapshot_test.cc.o"
  "CMakeFiles/test_net.dir/net/snapshot_test.cc.o.d"
  "test_net"
  "test_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
