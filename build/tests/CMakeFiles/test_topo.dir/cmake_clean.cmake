file(REMOVE_RECURSE
  "CMakeFiles/test_topo.dir/topo/fat_tree_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/fat_tree_test.cc.o.d"
  "CMakeFiles/test_topo.dir/topo/graph_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/graph_test.cc.o.d"
  "CMakeFiles/test_topo.dir/topo/ksp_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/ksp_test.cc.o.d"
  "CMakeFiles/test_topo.dir/topo/leaf_spine_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/leaf_spine_test.cc.o.d"
  "CMakeFiles/test_topo.dir/topo/path_provider_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/path_provider_test.cc.o.d"
  "CMakeFiles/test_topo.dir/topo/shortest_path_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/shortest_path_test.cc.o.d"
  "test_topo"
  "test_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
