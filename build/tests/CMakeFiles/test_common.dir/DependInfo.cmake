
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/check_test.cc" "tests/CMakeFiles/test_common.dir/common/check_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/check_test.cc.o.d"
  "/root/repo/tests/common/csv_test.cc" "tests/CMakeFiles/test_common.dir/common/csv_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/csv_test.cc.o.d"
  "/root/repo/tests/common/flags_test.cc" "tests/CMakeFiles/test_common.dir/common/flags_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/flags_test.cc.o.d"
  "/root/repo/tests/common/histogram_test.cc" "tests/CMakeFiles/test_common.dir/common/histogram_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/histogram_test.cc.o.d"
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/test_common.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/test_common.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/test_common.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/table_test.cc" "tests/CMakeFiles/test_common.dir/common/table_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/table_test.cc.o.d"
  "/root/repo/tests/common/types_test.cc" "tests/CMakeFiles/test_common.dir/common/types_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/types_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nu_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_consistent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_update.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
