file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/check_test.cc.o"
  "CMakeFiles/test_common.dir/common/check_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/csv_test.cc.o"
  "CMakeFiles/test_common.dir/common/csv_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/flags_test.cc.o"
  "CMakeFiles/test_common.dir/common/flags_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/histogram_test.cc.o"
  "CMakeFiles/test_common.dir/common/histogram_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/logging_test.cc.o"
  "CMakeFiles/test_common.dir/common/logging_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/rng_test.cc.o"
  "CMakeFiles/test_common.dir/common/rng_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/stats_test.cc.o"
  "CMakeFiles/test_common.dir/common/stats_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/table_test.cc.o"
  "CMakeFiles/test_common.dir/common/table_test.cc.o.d"
  "CMakeFiles/test_common.dir/common/types_test.cc.o"
  "CMakeFiles/test_common.dir/common/types_test.cc.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
