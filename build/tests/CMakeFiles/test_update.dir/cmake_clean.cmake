file(REMOVE_RECURSE
  "CMakeFiles/test_update.dir/update/cost_estimate_test.cc.o"
  "CMakeFiles/test_update.dir/update/cost_estimate_test.cc.o.d"
  "CMakeFiles/test_update.dir/update/event_generator_test.cc.o"
  "CMakeFiles/test_update.dir/update/event_generator_test.cc.o.d"
  "CMakeFiles/test_update.dir/update/migration_test.cc.o"
  "CMakeFiles/test_update.dir/update/migration_test.cc.o.d"
  "CMakeFiles/test_update.dir/update/planner_test.cc.o"
  "CMakeFiles/test_update.dir/update/planner_test.cc.o.d"
  "CMakeFiles/test_update.dir/update/transition_test.cc.o"
  "CMakeFiles/test_update.dir/update/transition_test.cc.o.d"
  "CMakeFiles/test_update.dir/update/update_event_test.cc.o"
  "CMakeFiles/test_update.dir/update/update_event_test.cc.o.d"
  "test_update"
  "test_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
