file(REMOVE_RECURSE
  "CMakeFiles/test_consistent.dir/consistent/migration_bridge_test.cc.o"
  "CMakeFiles/test_consistent.dir/consistent/migration_bridge_test.cc.o.d"
  "CMakeFiles/test_consistent.dir/consistent/rule_table_test.cc.o"
  "CMakeFiles/test_consistent.dir/consistent/rule_table_test.cc.o.d"
  "CMakeFiles/test_consistent.dir/consistent/two_phase_test.cc.o"
  "CMakeFiles/test_consistent.dir/consistent/two_phase_test.cc.o.d"
  "test_consistent"
  "test_consistent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
