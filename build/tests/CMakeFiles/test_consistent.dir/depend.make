# Empty dependencies file for test_consistent.
# This may be replaced when dependencies are built.
