// nu_serve: seeded online-serving campaigns against the brownout controller.
//
// Runs the open-loop arrival stream through the simulator's serve mode and
// writes the SLO timeseries + per-tenant report; sweep mode calibrates the
// fabric's service rate and scans offered load across it. Fixed seeds give
// byte-identical CSVs — CI runs --quick twice and compares.
//
//   nu_serve --quick                    # bounded 2x-overload run + SRLG outage (CI)
//   nu_serve --load=2 --pod-outage      # one calibrated run at 2x capacity
//   nu_serve --sweep=0.5,1,2,3          # offered-load sweep (multiples of capacity)
//   nu_serve --seed=7 --k=8 --duration=120 --process=bursty --out=DIR
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/serve.h"

namespace {

using nu::exp::ServeCampaignConfig;

struct CliOptions {
  ServeCampaignConfig campaign;
  std::vector<double> sweep_loads;
  double load = 1.0;
  bool calibrate = true;
  bool quick = false;
  std::string out_dir = ".";
};

[[noreturn]] void Usage(const std::string& error) {
  std::cerr << "error: " << error << "\n"
            << "usage: nu_serve [--quick] [--load=X | --sweep=X,Y,...]\n"
            << "                [--rate=R] [--no-calibrate] [--seed=S]\n"
            << "                [--k=K] [--duration=D] [--process=NAME]\n"
            << "                [--shards=N] [--shard-threads=T]\n"
            << "                [--grey=MODEL] [--pod-outage] [--out=DIR]\n"
            << "--shards=N (>= 2) serves on the pod-sharded engine; the SLO\n"
            << "timeseries and tenant CSVs are byte-identical to unsharded.\n"
            << "--grey=MODEL serves over a lying dataplane (e.g.\n"
            << "acklie:0.1+loss:0.05:1:4) with the reconciler armed.\n";
  std::exit(2);
}

double ParseReal(const std::string& flag, const std::string& value) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    Usage("bad value for " + flag + ": '" + value + "'");
  }
}

std::uint64_t ParseCount(const std::string& flag, const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    Usage("bad value for " + flag + ": '" + value + "'");
  }
}

std::vector<double> ParseLoads(const std::string& value) {
  std::vector<double> loads;
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    loads.push_back(ParseReal("--sweep", item));
  }
  if (loads.empty()) Usage("--sweep needs at least one load factor");
  return loads;
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions cli;
  cli.campaign = nu::exp::DefaultServeCampaign(/*rate=*/1.0);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (flag == "--quick") {
      cli.quick = true;
    } else if (flag == "--load") {
      cli.load = ParseReal(flag, value);
    } else if (flag == "--sweep") {
      cli.sweep_loads = ParseLoads(value);
    } else if (flag == "--rate") {
      cli.campaign.serve.arrivals.rate = ParseReal(flag, value);
      cli.calibrate = false;
    } else if (flag == "--no-calibrate") {
      cli.calibrate = false;
    } else if (flag == "--seed") {
      cli.campaign.exp.seed = ParseCount(flag, value);
    } else if (flag == "--k") {
      cli.campaign.exp.fat_tree_k = ParseCount(flag, value);
    } else if (flag == "--duration") {
      cli.campaign.serve.arrivals.duration = ParseReal(flag, value);
    } else if (flag == "--process") {
      cli.campaign.serve.arrivals.process =
          nu::serve::ParseArrivalProcess(value);
    } else if (flag == "--shards") {
      cli.campaign.exp.sim.shards = ParseCount(flag, value);
      if (cli.campaign.exp.sim.shards == 1) {
        Usage("--shards needs >= 2 (or 0 for off)");
      }
    } else if (flag == "--shard-threads") {
      cli.campaign.exp.sim.shard_threads = ParseCount(flag, value);
    } else if (flag == "--grey") {
      try {
        cli.campaign.exp.sim.faults.grey =
            nu::fault::ParseGreyModel(value).Validate();
      } catch (const nu::fault::FaultPlanError& e) {
        Usage("bad value for --grey: " + std::string(e.what()));
      }
      cli.campaign.exp.sim.recon.enabled = true;
    } else if (flag == "--pod-outage") {
      cli.campaign.pod_outage = true;
    } else if (flag == "--out") {
      cli.out_dir = value;
    } else {
      Usage("unknown flag '" + arg + "'");
    }
  }
  if (cli.quick) {
    // Bounded CI shape: small fabric, short stream, 2x overload with a
    // mid-run pod outage — the acceptance scenario in miniature.
    cli.campaign.exp.fat_tree_k = 4;
    cli.campaign.serve.arrivals.duration = 30.0;
    cli.campaign.pod_outage = true;
    cli.campaign.pod_outage_time = 8.0;
    cli.campaign.pod_outage_duration = 6.0;
    cli.load = 2.0;
  }
  return cli;
}

void WriteFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(2);
  }
  out << text;
}

void PrintSummary(const nu::sim::SimResult& result) {
  const nu::serve::ServeSummary& s = result.serve;
  std::cout << "arrivals:          " << s.arrivals << "\n"
            << "admitted:          " << s.admitted << "\n"
            << "completed:         " << s.completed << "\n"
            << "rejected (budget/deadline/priority): " << s.rejected_budget
            << "/" << s.rejected_deadline << "/" << s.rejected_priority
            << "\n"
            << "shed from queue:   " << s.shed_queue << "\n"
            << "quarantined:       " << s.quarantined << "\n"
            << "slo misses:        " << s.slo_misses << "\n"
            << "ect p50/p99/p999:  " << s.ect_p50 << " / " << s.ect_p99
            << " / " << s.ect_p999 << "\n"
            << "jain ect/admission: " << s.jain_ect << " / "
            << s.jain_admission << "\n"
            << "brownout transitions: " << s.transitions
            << " (final " << nu::serve::ToString(s.final_state)
            << ", reached shedding: " << (s.reached_shedding ? "yes" : "no")
            << ", recovered healthy: " << (s.recovered_healthy ? "yes" : "no")
            << ")\n"
            << "auditor violations: " << result.violations.size() << "\n";
  const nu::metrics::Report& r = result.report;
  if (r.drift_checks > 0 || r.grey_ack_lies > 0 || r.grey_stragglers > 0 ||
      r.grey_rules_lost > 0) {
    std::cout << "drift: passes=" << r.drift_checks
              << " detected=" << r.drift_rules_detected
              << " repaired=" << r.drift_repairs
              << " abandoned=" << r.drift_rules_abandoned
              << " quarantined=" << r.switches_quarantined
              << " residual=" << r.drift_residual_rules << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = ParseArgs(argc, argv);
  namespace fs = std::filesystem;
  fs::create_directories(cli.out_dir);

  if (!cli.sweep_loads.empty()) {
    std::cout << "serve sweep: loads={";
    for (std::size_t i = 0; i < cli.sweep_loads.size(); ++i) {
      std::cout << (i > 0 ? "," : "") << cli.sweep_loads[i];
    }
    std::cout << "} seed=" << cli.campaign.exp.seed
              << " k=" << cli.campaign.exp.fat_tree_k << "\n";
    const std::vector<nu::exp::ServeSweepPoint> points =
        nu::exp::RunServeSweep(cli.campaign, cli.sweep_loads, cli.calibrate);
    const std::string csv = nu::exp::ServeSweepCsv(points);
    WriteFile(fs::path(cli.out_dir) / "serve_sweep.csv", csv);
    std::cout << csv;
    return 0;
  }

  ServeCampaignConfig campaign = cli.campaign;
  if (cli.calibrate) {
    const double rate = nu::exp::EstimateServiceRate(campaign);
    std::cout << "calibrated service rate: " << rate << " events/s\n";
    campaign.serve.arrivals.rate = rate;
  }
  campaign.offered_load = cli.load;
  std::cout << "serve run: load=" << cli.load
            << " rate=" << campaign.serve.arrivals.rate * cli.load
            << " seed=" << campaign.exp.seed
            << " k=" << campaign.exp.fat_tree_k << " process="
            << nu::serve::ToString(campaign.serve.arrivals.process)
            << (campaign.pod_outage ? " pod-outage" : "");
  if (campaign.exp.sim.shards >= 2) {
    std::cout << " shards=" << campaign.exp.sim.shards;
  }
  if (campaign.exp.sim.faults.grey.enabled()) {
    std::cout << " grey="
              << nu::fault::FormatGreyModel(campaign.exp.sim.faults.grey);
  }
  std::cout << "\n";

  const nu::sim::SimResult result = nu::exp::RunServeCampaign(campaign);
  PrintSummary(result);
  WriteFile(fs::path(cli.out_dir) / "serve_timeseries.csv",
            result.serve_timeseries_csv);
  WriteFile(fs::path(cli.out_dir) / "serve_tenants.csv",
            result.serve_tenant_csv);
  std::cout << "wrote " << (fs::path(cli.out_dir) / "serve_timeseries.csv")
            << " and " << (fs::path(cli.out_dir) / "serve_tenants.csv")
            << "\n";
  return 0;
}
