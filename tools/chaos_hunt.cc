// chaos_hunt: deterministic chaos campaigns against the simulator.
//
// Campaign mode sweeps randomized scenario x scheduler x fault-plan trials,
// judging each against the oracles (auditor violations, recovery errors,
// report-CSV nondeterminism); every failure is shrunk ddmin-style and
// written as a repro artifact that --replay reruns exactly.
//
//   chaos_hunt --quick                 # small bounded campaign (CI)
//   chaos_hunt --trials=32 --seed=7    # a bigger hunt
//   chaos_hunt --inject-bug --out=DIR  # plant a defect, watch it shrink
//   chaos_hunt --replay=artifact.txt   # rerun a repro artifact
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "exp/chaos.h"

namespace {

using nu::exp::ChaosOptions;

struct CliOptions {
  ChaosOptions chaos;
  std::string replay_path;
  std::string out_dir = ".";
  bool quick = false;
};

[[noreturn]] void Usage(const std::string& error) {
  std::cerr << "error: " << error << "\n"
            << "usage: chaos_hunt [--quick] [--trials=N] [--seed=S]\n"
            << "                  [--k=K] [--events=N] [--inject-bug]\n"
            << "                  [--serve=LOAD] [--serve-rate=R]\n"
            << "                  [--shards=N] [--shard-threads=T]\n"
            << "                  [--grey=MODEL] [--no-determinism]\n"
            << "                  [--out=DIR] [--replay=ARTIFACT]\n"
            << "--serve runs online-serving trials at LOAD x the base rate\n"
            << "(deadline-miss oracle armed; --events = stream seconds).\n"
            << "--shards=N (>= 2) runs every trial on the pod-sharded engine,\n"
            << "putting the mailbox and round-barrier under the oracles.\n"
            << "--grey=MODEL pins a grey-failure model on every trial, e.g.\n"
            << "acklie:0.1+loss:0.05:1:4 (reconciler + drift oracle armed;\n"
            << "without it roughly a third of trials roll their own model).\n";
  std::exit(2);
}

std::uint64_t ParseCount(const std::string& flag, const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    Usage("bad value for " + flag + ": '" + value + "'");
  }
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (flag == "--quick") {
      cli.quick = true;
    } else if (flag == "--trials") {
      cli.chaos.trials = ParseCount(flag, value);
    } else if (flag == "--seed") {
      cli.chaos.seed = ParseCount(flag, value);
    } else if (flag == "--k") {
      cli.chaos.fat_tree_k = ParseCount(flag, value);
    } else if (flag == "--events") {
      cli.chaos.event_count = ParseCount(flag, value);
    } else if (flag == "--inject-bug") {
      cli.chaos.inject_bug = true;
    } else if (flag == "--serve") {
      try {
        cli.chaos.serve_load = std::stod(value);
      } catch (const std::exception&) {
        Usage("bad value for --serve: '" + value + "'");
      }
      if (cli.chaos.serve_load <= 0.0) Usage("--serve needs a load > 0");
    } else if (flag == "--serve-rate") {
      try {
        cli.chaos.serve_rate = std::stod(value);
      } catch (const std::exception&) {
        Usage("bad value for --serve-rate: '" + value + "'");
      }
    } else if (flag == "--shards") {
      cli.chaos.shards = ParseCount(flag, value);
      if (cli.chaos.shards == 1) Usage("--shards needs >= 2 (or 0 for off)");
    } else if (flag == "--shard-threads") {
      cli.chaos.shard_threads = ParseCount(flag, value);
    } else if (flag == "--grey") {
      try {
        cli.chaos.grey = nu::fault::ParseGreyModel(value).Validate();
      } catch (const nu::fault::FaultPlanError& e) {
        Usage("bad value for --grey: " + std::string(e.what()));
      }
    } else if (flag == "--no-determinism") {
      cli.chaos.check_determinism = false;
    } else if (flag == "--out") {
      cli.out_dir = value;
    } else if (flag == "--replay") {
      cli.replay_path = value;
    } else {
      Usage("unknown flag '" + arg + "'");
    }
  }
  if (cli.quick) {
    // Bounded CI shape: small fabric, short traces, few trials.
    cli.chaos.trials = 3;
    cli.chaos.fat_tree_k = 4;
    cli.chaos.event_count = 4;
    cli.chaos.max_shrink_runs = 24;
  }
  return cli;
}

int Replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::cerr << "error: cannot open artifact '" << path << "'\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const nu::exp::ChaosScenario scenario = nu::exp::ParseArtifact(buf.str());
  // Replay is exact by construction: the artifact pins every input, and the
  // re-serialized scenario must be byte-identical to what was loaded.
  const std::string reserialized = nu::exp::SerializeArtifact(scenario);
  if (reserialized != buf.str()) {
    std::cerr << "error: artifact does not round-trip byte-identically\n";
    return 1;
  }
  ChaosOptions options;
  options.inject_bug = true;  // replay judges every oracle, planted one too
  const nu::exp::ChaosVerdict verdict =
      nu::exp::JudgeScenario(scenario, options);
  const nu::sim::SimResult result = nu::exp::RunScenario(scenario);
  std::cout << "replayed " << path << "\n"
            << "verdict: " << (verdict.failed ? "FAIL" : "pass");
  if (verdict.failed) std::cout << " [" << verdict.oracle << "]";
  std::cout << "\n";
  if (!verdict.detail.empty()) std::cout << "detail: " << verdict.detail
                                         << "\n";
  std::cout << nu::exp::NormalizedReportCsv(result);
  return verdict.failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = ParseArgs(argc, argv);
  if (!cli.replay_path.empty()) return Replay(cli.replay_path);

  std::cout << "chaos campaign: trials=" << cli.chaos.trials
            << " seed=" << cli.chaos.seed << " k=" << cli.chaos.fat_tree_k
            << " events=" << cli.chaos.event_count
            << (cli.chaos.inject_bug ? " inject-bug" : "")
            << (cli.chaos.check_determinism ? "" : " no-determinism");
  if (cli.chaos.serve_load > 0.0) {
    std::cout << " serve-load=" << cli.chaos.serve_load
              << " serve-rate=" << cli.chaos.serve_rate;
  }
  if (cli.chaos.shards >= 2) {
    std::cout << " shards=" << cli.chaos.shards;
    if (cli.chaos.shard_threads > 0) {
      std::cout << " shard-threads=" << cli.chaos.shard_threads;
    }
  }
  if (cli.chaos.grey.enabled()) {
    std::cout << " grey=" << nu::fault::FormatGreyModel(cli.chaos.grey);
  }
  std::cout << "\n";
  const nu::exp::ChaosCampaignResult result =
      nu::exp::RunChaosCampaign(cli.chaos);
  std::cout << "trials run: " << result.trials_run << "\n"
            << "failures:   " << result.failures.size() << "\n";

  namespace fs = std::filesystem;
  int exit_code = 0;
  for (const nu::exp::ChaosFailure& failure : result.failures) {
    const fs::path path =
        fs::path(cli.out_dir) /
        ("chaos_repro_trial" + std::to_string(failure.trial) + ".txt");
    std::ofstream out(path, std::ios::binary);
    if (!out.is_open()) {
      std::cerr << "error: cannot write " << path << "\n";
      return 2;
    }
    out << failure.artifact;
    std::cout << "trial " << failure.trial << ": [" << failure.verdict.oracle
              << "] " << failure.verdict.detail << "\n"
              << "  shrunk to " << failure.scenario.plan.size()
              << " fault events in " << failure.shrink_runs
              << " oracle runs -> " << path.string() << "\n";
    // A planted defect is the shrinker's self-test, not a product bug.
    if (failure.verdict.oracle != "injected-bug") exit_code = 1;
  }
  return exit_code;
}
