#!/usr/bin/env bash
# CI-style check: build + test the Release tree, then build + test a
# sanitized (ASan + UBSan) Debug tree. Run from anywhere inside the repo.
#
#   tools/check.sh [-j N]
#
# Exits nonzero on the first build or test failure.
set -euo pipefail

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

run_tree() {
  local dir="$1"; shift
  echo "=== configure: $dir ($*) ==="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "=== build: $dir ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== test: $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_tree build -DCMAKE_BUILD_TYPE=Release
run_tree build-asan -DCMAKE_BUILD_TYPE=Debug -DNU_SANITIZE=ON

echo "=== all checks passed ==="
