#include "topo/ksp.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "topo/random_graph.h"

namespace nu::topo {
namespace {

/// Classic Yen example-style graph: two parallel routes plus detours.
Graph Diamond() {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeRole::kGeneric);
  // 0 -> 1 -> 3 and 0 -> 2 -> 3, plus 1 -> 2.
  g.AddBidirectional(NodeId{0}, NodeId{1}, 100.0);
  g.AddBidirectional(NodeId{1}, NodeId{3}, 100.0);
  g.AddBidirectional(NodeId{0}, NodeId{2}, 100.0);
  g.AddBidirectional(NodeId{2}, NodeId{3}, 100.0);
  g.AddBidirectional(NodeId{1}, NodeId{2}, 100.0);
  return g;
}

TEST(KspTest, FirstPathIsShortest) {
  const Graph g = Diamond();
  const auto paths = YenKShortestPaths(g, NodeId{0}, NodeId{3}, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hop_count(), 2u);
}

TEST(KspTest, PathsInNondecreasingLength) {
  const Graph g = Diamond();
  const auto paths = YenKShortestPaths(g, NodeId{0}, NodeId{3}, 10);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].hop_count(), paths[i - 1].hop_count());
  }
}

TEST(KspTest, PathsDistinctAndValid) {
  const Graph g = Diamond();
  const auto paths = YenKShortestPaths(g, NodeId{0}, NodeId{3}, 10);
  std::set<std::vector<NodeId>> seen;
  for (const Path& p : paths) {
    EXPECT_TRUE(g.IsValidPath(p));
    EXPECT_EQ(p.source(), NodeId{0});
    EXPECT_EQ(p.destination(), NodeId{3});
    EXPECT_TRUE(seen.insert(p.nodes).second) << "duplicate path";
  }
}

TEST(KspTest, ExhaustsWhenFewerThanK) {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  g.AddBidirectional(a, b, 10.0);
  const auto paths = YenKShortestPaths(g, a, b, 5);
  EXPECT_EQ(paths.size(), 1u);  // only one loopless path exists
}

TEST(KspTest, UnreachableGivesEmpty) {
  Graph g;
  g.AddNode(NodeRole::kGeneric);
  g.AddNode(NodeRole::kGeneric);
  EXPECT_TRUE(YenKShortestPaths(g, NodeId{0}, NodeId{1}, 3).empty());
}

TEST(KspTest, KZeroGivesEmpty) {
  const Graph g = Diamond();
  EXPECT_TRUE(YenKShortestPaths(g, NodeId{0}, NodeId{3}, 0).empty());
}

TEST(KspTest, RespectsFilter) {
  const Graph g = Diamond();
  const LinkId banned = g.FindLink(NodeId{0}, NodeId{1});
  const auto paths = YenKShortestPaths(
      g, NodeId{0}, NodeId{3}, 10, {},
      [banned](const Link& l) { return l.id != banned; });
  for (const Path& p : paths) {
    for (LinkId lid : p.links) EXPECT_NE(lid, banned);
  }
}

TEST(KspTest, DiamondKnownPathCount) {
  // Loopless 0->3 paths in Diamond: 0-1-3, 0-2-3, 0-1-2-3, 0-2-1-3 == 4.
  const Graph g = Diamond();
  const auto paths = YenKShortestPaths(g, NodeId{0}, NodeId{3}, 100);
  EXPECT_EQ(paths.size(), 4u);
}

TEST(KspPropertyTest, RandomGraphsProduceValidDistinctSortedPaths) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    RandomGraphConfig config;
    config.nodes = 10 + static_cast<std::size_t>(rng.UniformInt(0, 10));
    config.edge_probability = 0.25;
    const Graph g = BuildRandomConnectedGraph(config, rng);
    const NodeId src{0};
    const NodeId dst{static_cast<NodeId::rep_type>(g.node_count() - 1)};
    const auto paths = YenKShortestPaths(g, src, dst, 6);
    ASSERT_FALSE(paths.empty());
    std::set<std::vector<NodeId>> seen;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(g.IsValidPath(paths[i]));
      EXPECT_TRUE(seen.insert(paths[i].nodes).second);
      if (i > 0) {
        EXPECT_GE(paths[i].hop_count(), paths[i - 1].hop_count());
      }
    }
  }
}

}  // namespace
}  // namespace nu::topo
