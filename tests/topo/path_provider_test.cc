#include "topo/path_provider.h"

#include <gtest/gtest.h>

namespace nu::topo {
namespace {

TEST(FatTreePathProviderTest, MatchesDirectEnumeration) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const FatTreePathProvider provider(ft);
  const auto& via_provider = provider.Paths(ft.host(0), ft.host(8));
  const auto direct = ft.HostPaths(ft.host(0), ft.host(8));
  ASSERT_EQ(via_provider.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_provider[i], direct[i]);
  }
}

TEST(FatTreePathProviderTest, CachedReferenceStable) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const FatTreePathProvider provider(ft);
  const auto& first = provider.Paths(ft.host(0), ft.host(5));
  const auto& second = provider.Paths(ft.host(0), ft.host(5));
  EXPECT_EQ(&first, &second);
}

TEST(LeafSpinePathProviderTest, MatchesDirectEnumeration) {
  const LeafSpine ls(LeafSpineConfig{.leaves = 3,
                                     .spines = 2,
                                     .hosts_per_leaf = 2,
                                     .host_link_capacity = 1000.0,
                                     .fabric_link_capacity = 2000.0});
  const LeafSpinePathProvider provider(ls);
  const auto& paths = provider.Paths(ls.host(0), ls.host(4));
  EXPECT_EQ(paths.size(), 2u);
}

TEST(KspPathProviderTest, ReturnsUpToKPaths) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const KspPathProvider provider(ft.graph(), 3);
  const auto& paths = provider.Paths(ft.host(0), ft.host(8));
  EXPECT_EQ(paths.size(), 3u);
  for (const Path& p : paths) {
    EXPECT_TRUE(ft.graph().IsValidPath(p));
  }
}

TEST(NodeAvoidingPathProviderTest, FiltersPathsThroughNode) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const FatTreePathProvider base(ft);
  // Avoid one core switch: inter-pod pairs lose exactly one of their 4 paths.
  const NodeAvoidingPathProvider filtered(base, ft.core(0));
  const auto& all = base.Paths(ft.host(0), ft.host(8));
  const auto& kept = filtered.Paths(ft.host(0), ft.host(8));
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(kept.size(), 3u);
  for (const Path& p : kept) {
    for (NodeId n : p.nodes) EXPECT_NE(n, ft.core(0));
  }
}

TEST(LinkAvoidingPathProviderTest, FiltersBothDirections) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const FatTreePathProvider base(ft);
  // Fail the agg(0,0) -> core(0) cable: inter-pod pairs out of pod 0 lose
  // exactly the path through core 0.
  const LinkId cable = ft.graph().FindLink(ft.agg(0, 0), ft.core(0));
  ASSERT_TRUE(cable.valid());
  const LinkAvoidingPathProvider filtered(base, cable);
  EXPECT_TRUE(filtered.avoided_reverse().valid());

  const auto& all = base.Paths(ft.host(0), ft.host(8));
  const auto& kept = filtered.Paths(ft.host(0), ft.host(8));
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(kept.size(), 3u);
  for (const Path& p : kept) {
    for (LinkId lid : p.links) {
      EXPECT_NE(lid, cable);
      EXPECT_NE(lid, filtered.avoided_reverse());
    }
  }
  // The reverse direction (host8 -> host0) is filtered too.
  EXPECT_EQ(filtered.Paths(ft.host(8), ft.host(0)).size(), 3u);
}

TEST(LinkAvoidingPathProviderTest, HostLinkEmptiesEverything) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const FatTreePathProvider base(ft);
  const LinkId uplink = ft.graph().FindLink(ft.host(0), ft.edge(0, 0));
  const LinkAvoidingPathProvider filtered(base, uplink);
  EXPECT_TRUE(filtered.Paths(ft.host(0), ft.host(8)).empty());
  // Pairs not involving host 0 are unaffected.
  EXPECT_EQ(filtered.Paths(ft.host(4), ft.host(8)).size(), 4u);
}

TEST(NodeAvoidingPathProviderTest, CanEmptyOut) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const FatTreePathProvider base(ft);
  // Same-edge pair has exactly one path through its edge switch; avoiding
  // that switch leaves nothing.
  const NodeAvoidingPathProvider filtered(base, ft.edge(0, 0));
  EXPECT_TRUE(filtered.Paths(ft.host(0), ft.host(1)).empty());
}

}  // namespace
}  // namespace nu::topo
