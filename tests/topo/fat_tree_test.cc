#include "topo/fat_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/shortest_path.h"

namespace nu::topo {
namespace {

class FatTreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FatTreeSizes, CountsMatchFormulae) {
  const std::size_t k = GetParam();
  const FatTree ft(FatTreeConfig{.k = k, .link_capacity = 1000.0});
  EXPECT_EQ(ft.host_count(), k * k * k / 4);
  EXPECT_EQ(ft.core_count(), k * k / 4);
  // 5k^2/4 switches + k^3/4 hosts.
  EXPECT_EQ(ft.graph().node_count(), 5 * k * k / 4 + k * k * k / 4);
  // Links (directed): hosts k^3/4 * 2, edge-agg k*(k/2)^2*2, agg-core
  // k*(k/2)^2*2.
  const std::size_t half = k / 2;
  EXPECT_EQ(ft.graph().link_count(),
            2 * (k * half * half) + 2 * (k * half * half) +
                2 * (k * half * half));
}

TEST_P(FatTreeSizes, StronglyConnected) {
  const FatTree ft(FatTreeConfig{.k = GetParam(), .link_capacity = 1000.0});
  EXPECT_TRUE(IsStronglyConnected(ft.graph()));
}

TEST_P(FatTreeSizes, HostDegreeIsOne) {
  const FatTree ft(FatTreeConfig{.k = GetParam(), .link_capacity = 1000.0});
  for (NodeId h : ft.hosts()) {
    EXPECT_EQ(ft.graph().OutLinks(h).size(), 1u);
    EXPECT_EQ(ft.graph().InLinks(h).size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeSizes, ::testing::Values(2u, 4u, 6u, 8u));

TEST(FatTreeTest, HostCoordinates) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  // 16 hosts: pod-major, edge-major, 2 per edge.
  EXPECT_EQ(ft.PodOfHost(ft.host(0)), 0u);
  EXPECT_EQ(ft.EdgeIndexOfHost(ft.host(0)), 0u);
  EXPECT_EQ(ft.EdgeIndexOfHost(ft.host(2)), 1u);
  EXPECT_EQ(ft.PodOfHost(ft.host(4)), 1u);
  EXPECT_EQ(ft.HostIndex(ft.host(11)), 11u);
}

TEST(FatTreeTest, SameEdgePairHasOnePath) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const auto paths = ft.HostPaths(ft.host(0), ft.host(1));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hop_count(), 2u);
}

TEST(FatTreeTest, SamePodPairHasHalfKPaths) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  // host 0 (edge 0) and host 2 (edge 1) of pod 0.
  const auto paths = ft.HostPaths(ft.host(0), ft.host(2));
  ASSERT_EQ(paths.size(), 2u);
  for (const Path& p : paths) {
    EXPECT_EQ(p.hop_count(), 4u);
    EXPECT_TRUE(ft.graph().IsValidPath(p));
  }
}

TEST(FatTreeTest, InterPodPairHasQuarterKSquaredPaths) {
  const FatTree ft(FatTreeConfig{.k = 8, .link_capacity = 1000.0});
  const auto paths = ft.HostPaths(ft.host(0), ft.host(100));
  ASSERT_EQ(paths.size(), 16u);
  std::set<NodeId> cores;
  for (const Path& p : paths) {
    EXPECT_EQ(p.hop_count(), 6u);
    EXPECT_TRUE(ft.graph().IsValidPath(p));
    // Node 3 of the 7-node sequence is the core switch.
    cores.insert(p.nodes[3]);
  }
  EXPECT_EQ(cores.size(), 16u);  // each path crosses a distinct core
}

TEST(FatTreeTest, PathsMatchBfsDistance) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const NodeId src = ft.host(0);
  for (std::size_t i = 1; i < ft.host_count(); ++i) {
    const NodeId dst = ft.host(i);
    const auto enumerated = ft.HostPaths(src, dst);
    const auto bfs = BfsShortestPath(ft.graph(), src, dst);
    ASSERT_TRUE(bfs.has_value());
    ASSERT_FALSE(enumerated.empty());
    for (const Path& p : enumerated) {
      EXPECT_EQ(p.hop_count(), bfs->hop_count())
          << "enumerated path not shortest for host " << i;
    }
  }
}

TEST(FatTreeTest, CapacityAppliedToAllLinks) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 250.0});
  for (const Link& l : ft.graph().links()) {
    EXPECT_DOUBLE_EQ(l.capacity, 250.0);
  }
}

TEST(FatTreeDeathTest, OddKRejected) {
  EXPECT_DEATH(FatTree(FatTreeConfig{.k = 5, .link_capacity = 1000.0}),
               "Precondition");
}

}  // namespace
}  // namespace nu::topo
