#include "topo/graph.h"

#include <gtest/gtest.h>

#include <array>

namespace nu::topo {
namespace {

Graph Triangle() {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric, "a");
  const NodeId b = g.AddNode(NodeRole::kGeneric, "b");
  const NodeId c = g.AddNode(NodeRole::kGeneric, "c");
  g.AddBidirectional(a, b, 100.0);
  g.AddBidirectional(b, c, 100.0);
  g.AddBidirectional(c, a, 100.0);
  return g;
}

TEST(GraphTest, AddNodesAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddNode(NodeRole::kHost).value(), 0u);
  EXPECT_EQ(g.AddNode(NodeRole::kEdgeSwitch).value(), 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(GraphTest, NodeRolesAndNames) {
  Graph g;
  const NodeId h = g.AddNode(NodeRole::kHost, "my-host");
  EXPECT_EQ(g.node(h).role, NodeRole::kHost);
  EXPECT_EQ(g.node(h).name, "my-host");
  const NodeId anon = g.AddNode(NodeRole::kCoreSwitch);
  EXPECT_EQ(g.node(anon).name, "core-1");
}

TEST(GraphTest, LinksDirectedWithCapacity) {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  const LinkId l = g.AddLink(a, b, 500.0);
  EXPECT_EQ(g.link(l).src, a);
  EXPECT_EQ(g.link(l).dst, b);
  EXPECT_DOUBLE_EQ(g.link(l).capacity, 500.0);
  EXPECT_EQ(g.OutLinks(a).size(), 1u);
  EXPECT_EQ(g.InLinks(b).size(), 1u);
  EXPECT_EQ(g.OutLinks(b).size(), 0u);
}

TEST(GraphTest, BidirectionalAddsTwo) {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  const auto [fwd, rev] = g.AddBidirectional(a, b, 100.0);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.link(fwd).src, a);
  EXPECT_EQ(g.link(rev).src, b);
}

TEST(GraphTest, FindLink) {
  const Graph g = Triangle();
  const NodeId a{0}, b{1};
  const LinkId ab = g.FindLink(a, b);
  ASSERT_TRUE(ab.valid());
  EXPECT_EQ(g.link(ab).dst, b);
  // No self link.
  EXPECT_FALSE(g.FindLink(a, a).valid());
}

TEST(GraphTest, NodesWithRole) {
  Graph g;
  g.AddNode(NodeRole::kHost);
  g.AddNode(NodeRole::kCoreSwitch);
  g.AddNode(NodeRole::kHost);
  EXPECT_EQ(g.NodesWithRole(NodeRole::kHost).size(), 2u);
  EXPECT_EQ(g.NodesWithRole(NodeRole::kAggSwitch).size(), 0u);
}

TEST(GraphTest, MakePathAndValidate) {
  const Graph g = Triangle();
  const std::array<NodeId, 3> seq{NodeId{0}, NodeId{1}, NodeId{2}};
  const Path p = g.MakePath(seq);
  EXPECT_TRUE(g.IsValidPath(p));
  EXPECT_EQ(p.hop_count(), 2u);
  EXPECT_EQ(p.source(), NodeId{0});
  EXPECT_EQ(p.destination(), NodeId{2});
}

TEST(GraphTest, InvalidPaths) {
  const Graph g = Triangle();
  Path p;
  EXPECT_FALSE(g.IsValidPath(p));  // empty

  // Repeated node.
  const std::array<NodeId, 3> seq{NodeId{0}, NodeId{1}, NodeId{2}};
  Path valid = g.MakePath(seq);
  Path repeated = valid;
  repeated.nodes.push_back(NodeId{0});
  repeated.links.push_back(g.FindLink(NodeId{2}, NodeId{0}));
  EXPECT_FALSE(g.IsValidPath(repeated));

  // Mismatched link.
  Path broken = valid;
  broken.links[0] = g.FindLink(NodeId{1}, NodeId{0});
  EXPECT_FALSE(g.IsValidPath(broken));
}

TEST(GraphTest, SingleNodePathValid) {
  const Graph g = Triangle();
  Path p;
  p.nodes.push_back(NodeId{1});
  EXPECT_TRUE(g.IsValidPath(p));
  EXPECT_TRUE(p.empty());
}

TEST(GraphDeathTest, RejectsSelfLink) {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  EXPECT_DEATH(g.AddLink(a, a, 10.0), "Precondition");
}

TEST(GraphDeathTest, RejectsZeroCapacity) {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  EXPECT_DEATH(g.AddLink(a, b, 0.0), "Precondition");
}

}  // namespace
}  // namespace nu::topo
