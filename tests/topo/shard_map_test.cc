#include "topo/shard_map.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/fat_tree.h"
#include "topo/leaf_spine.h"

namespace nu::topo {
namespace {

topo::FatTree MakeFatTree(std::size_t k) {
  return topo::FatTree(topo::FatTreeConfig{.k = k, .link_capacity = 100.0});
}

// With shards == pod_count, the component partition must put every node of
// one pod (hosts, edge, agg) into one shard, and no two pods into the same
// shard when the counts line up exactly.
TEST(ShardMapTest, FatTreePodsMapToShards) {
  const topo::FatTree ft = MakeFatTree(4);
  const ShardMap map(ft.graph(), ft.pod_count());
  ASSERT_EQ(map.shard_count(), 4u);

  for (std::size_t pod = 0; pod < ft.pod_count(); ++pod) {
    // All switches of a pod share the shard of the pod's first edge switch.
    const std::size_t shard = map.ShardOf(ft.edge(pod, 0));
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(map.ShardOf(ft.edge(pod, i)), shard);
      EXPECT_EQ(map.ShardOf(ft.agg(pod, i)), shard);
    }
  }
  // Hosts follow their pod's edge switch.
  for (std::size_t h = 0; h < 16; ++h) {
    const NodeId host = ft.host(h);
    EXPECT_EQ(map.ShardOf(host), map.ShardOf(ft.edge(ft.PodOfHost(host), 0)));
  }
  // Distinct pods land on distinct shards (4 components onto 4 shards).
  std::set<std::size_t> pod_shards;
  for (std::size_t pod = 0; pod < ft.pod_count(); ++pod) {
    pod_shards.insert(map.ShardOf(ft.edge(pod, 0)));
  }
  EXPECT_EQ(pod_shards.size(), ft.pod_count());
}

// A boundary link (agg<->core on every cross-pod path) is owned by its
// pod-side shard; intra-pod links are not boundaries and are owned by the
// shard both endpoints share.
TEST(ShardMapTest, BoundaryLinksOwnedByPodSide) {
  const topo::FatTree ft = MakeFatTree(4);
  const Graph& g = ft.graph();
  const ShardMap map(g, ft.pod_count());

  std::size_t boundaries_seen = 0;
  for (const Link& link : g.links()) {
    const bool src_core = g.node(link.src).role == NodeRole::kCoreSwitch;
    const bool dst_core = g.node(link.dst).role == NodeRole::kCoreSwitch;
    if (map.ShardOf(link.src) == map.ShardOf(link.dst)) {
      EXPECT_FALSE(map.IsBoundary(link.id));
      EXPECT_EQ(map.OwnerOf(link.id), map.ShardOf(link.src));
      continue;
    }
    ++boundaries_seen;
    EXPECT_TRUE(map.IsBoundary(link.id));
    // Fat-Tree boundaries are exactly the pod<->core hops, and the pod
    // (non-core) side owns the link.
    ASSERT_TRUE(src_core != dst_core);
    const NodeId pod_side = src_core ? link.dst : link.src;
    EXPECT_EQ(map.OwnerOf(link.id), map.ShardOf(pod_side));
  }
  EXPECT_EQ(map.boundary_link_count(), boundaries_seen);
  // k=4: 4 cores x 4 pods x 2 directions = 32 core links; each core is
  // striped onto one pod's shard, so its 2 links into that pod are
  // intra-shard, leaving 32 - 4*2 = 24 boundaries.
  EXPECT_EQ(map.boundary_link_count(), 24u);
}

// Every link on a cross-pod host path is owned by the shard of one of its
// endpoints — a probe for a cross-pod flow therefore knows exactly which
// shard to charge for each hop.
TEST(ShardMapTest, CrossPodPathOwnershipIsEndpointLocal) {
  const topo::FatTree ft = MakeFatTree(4);
  const Graph& g = ft.graph();
  const ShardMap map(g, ft.pod_count());
  const NodeId src = ft.host(0);    // pod 0
  const NodeId dst = ft.host(15);   // pod 3
  ASSERT_NE(ft.PodOfHost(src), ft.PodOfHost(dst));

  const auto paths = ft.HostPaths(src, dst);
  ASSERT_FALSE(paths.empty());
  for (const Path& path : paths) {
    for (LinkId lid : path.links) {
      const Link& link = g.link(lid);
      const std::size_t owner = map.OwnerOf(lid);
      EXPECT_TRUE(owner == map.ShardOf(link.src) ||
                  owner == map.ShardOf(link.dst));
    }
  }
}

// The fingerprint is a pure function of (graph, shard count): identical
// across instances, different across shard counts.
TEST(ShardMapTest, FingerprintIsStable) {
  const topo::FatTree ft = MakeFatTree(4);
  const ShardMap a(ft.graph(), 4);
  const ShardMap b(ft.graph(), 4);
  const ShardMap c(ft.graph(), 2);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

// Folding more pods than shards round-robins the components; every shard
// stays non-empty and the assignment remains total.
TEST(ShardMapTest, MorePodsThanShardsRoundRobins) {
  const topo::FatTree ft = MakeFatTree(8);  // 8 pods
  const ShardMap map(ft.graph(), 4);
  ASSERT_EQ(map.shard_count(), 4u);
  for (std::size_t size : map.shard_sizes()) EXPECT_GT(size, 0u);
  std::size_t total = 0;
  for (std::size_t size : map.shard_sizes()) total += size;
  EXPECT_EQ(total, ft.graph().node_count());
}

// Fewer components than shards (here: a 2-leaf leaf-spine has only 2
// rack subtrees once the spine/core layer is removed) falls back to
// node-id striping — still total, still deterministic.
TEST(ShardMapTest, FallbackStripingCoversDegenerateGraphs) {
  const topo::LeafSpine ls(topo::LeafSpineConfig{
      .leaves = 2, .spines = 2, .hosts_per_leaf = 4});
  const ShardMap map(ls.graph(), 4);
  ASSERT_EQ(map.shard_count(), 4u);
  std::size_t total = 0;
  for (std::size_t size : map.shard_sizes()) total += size;
  EXPECT_EQ(total, ls.graph().node_count());
  for (std::size_t size : map.shard_sizes()) EXPECT_GT(size, 0u);
}

}  // namespace
}  // namespace nu::topo
