#include "topo/leaf_spine.h"

#include <gtest/gtest.h>

#include "topo/shortest_path.h"

namespace nu::topo {
namespace {

LeafSpineConfig SmallConfig() {
  return LeafSpineConfig{.leaves = 4,
                         .spines = 3,
                         .hosts_per_leaf = 2,
                         .host_link_capacity = 1000.0,
                         .fabric_link_capacity = 4000.0};
}

TEST(LeafSpineTest, Counts) {
  const LeafSpine ls(SmallConfig());
  EXPECT_EQ(ls.graph().node_count(), 3u + 4u + 8u);
  // Links: 4 leaves * 3 spines * 2 + 8 hosts * 2.
  EXPECT_EQ(ls.graph().link_count(), 24u + 16u);
  EXPECT_EQ(ls.hosts().size(), 8u);
}

TEST(LeafSpineTest, Connected) {
  const LeafSpine ls(SmallConfig());
  EXPECT_TRUE(IsStronglyConnected(ls.graph()));
}

TEST(LeafSpineTest, LeafOfHost) {
  const LeafSpine ls(SmallConfig());
  EXPECT_EQ(ls.LeafOfHost(ls.host(0)), 0u);
  EXPECT_EQ(ls.LeafOfHost(ls.host(1)), 0u);
  EXPECT_EQ(ls.LeafOfHost(ls.host(2)), 1u);
  EXPECT_EQ(ls.LeafOfHost(ls.host(7)), 3u);
}

TEST(LeafSpineTest, SameLeafSinglePath) {
  const LeafSpine ls(SmallConfig());
  const auto paths = ls.HostPaths(ls.host(0), ls.host(1));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hop_count(), 2u);
}

TEST(LeafSpineTest, CrossLeafOnePathPerSpine) {
  const LeafSpine ls(SmallConfig());
  const auto paths = ls.HostPaths(ls.host(0), ls.host(6));
  ASSERT_EQ(paths.size(), 3u);
  for (const Path& p : paths) {
    EXPECT_EQ(p.hop_count(), 4u);
    EXPECT_TRUE(ls.graph().IsValidPath(p));
  }
}

TEST(LeafSpineTest, FabricCapacityDiffersFromHostCapacity) {
  const LeafSpine ls(SmallConfig());
  const LinkId host_link = ls.graph().FindLink(ls.host(0), ls.leaf(0));
  const LinkId fabric_link = ls.graph().FindLink(ls.leaf(0), ls.spine(0));
  ASSERT_TRUE(host_link.valid());
  ASSERT_TRUE(fabric_link.valid());
  EXPECT_DOUBLE_EQ(ls.graph().link(host_link).capacity, 1000.0);
  EXPECT_DOUBLE_EQ(ls.graph().link(fabric_link).capacity, 4000.0);
}

TEST(LeafSpineTest, DiameterIsFour) {
  const LeafSpine ls(SmallConfig());
  EXPECT_EQ(Diameter(ls.graph()), 4u);
}

}  // namespace
}  // namespace nu::topo
