// PathRegistry: interning semantics (dedup, ref/content equivalence),
// reference stability across growth, placement survival across Network
// save/load (refs are never serialized — the snapshot re-interns), and
// rejection of snapshots taken against a different topology.
#include "topo/path_registry.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/binio.h"
#include "net/network.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::topo {
namespace {

Path LinePath(std::size_t start, std::size_t length) {
  Path p;
  for (std::size_t i = 0; i <= length; ++i) {
    p.nodes.push_back(NodeId{static_cast<NodeId::rep_type>(start + i)});
    if (i < length) {
      p.links.push_back(LinkId{static_cast<LinkId::rep_type>(start + i)});
    }
  }
  return p;
}

TEST(PathRegistryTest, InternDedupsByContent) {
  PathRegistry registry;
  const Path a = LinePath(0, 3);
  const Path b = LinePath(10, 3);

  const PathRef ra = registry.Intern(a);
  const PathRef rb = registry.Intern(b);
  EXPECT_NE(ra, rb);
  EXPECT_EQ(registry.size(), 2u);

  // Re-interning identical content returns the existing ref: within one
  // registry, ref equality is content equality.
  EXPECT_EQ(registry.Intern(a), ra);
  EXPECT_EQ(registry.Intern(Path{a.nodes, a.links}), ra);
  EXPECT_EQ(registry.size(), 2u);

  EXPECT_EQ(registry.Get(ra), a);
  EXPECT_EQ(registry.Get(rb), b);
}

TEST(PathRegistryTest, GetReferencesStableAcrossGrowth) {
  PathRegistry registry;
  const PathRef first = registry.Intern(LinePath(0, 2));
  const Path* first_address = &registry.Get(first);

  // Push the registry across several chunk boundaries; the early entry's
  // address must not move (hot-path readers hold `const Path&`).
  std::vector<PathRef> refs;
  for (std::size_t i = 0; i < 5000; ++i) refs.push_back(
      registry.Intern(LinePath(i + 1, 1 + i % 4)));
  EXPECT_EQ(&registry.Get(first), first_address);
  EXPECT_EQ(registry.Get(first), LinePath(0, 2));
  // Spot-check late entries resolve too.
  EXPECT_EQ(registry.Get(refs.back()), LinePath(5000, 1 + 4999 % 4));
}

TEST(PathRegistryTest, PlacementsSurviveNetworkSaveLoad) {
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const FatTreePathProvider provider(ft);

  net::Network original(ft.graph());
  std::vector<FlowId> placed;
  for (std::size_t i = 0; i < 8; ++i) {
    const NodeId src = ft.host(i % ft.host_count());
    const NodeId dst = ft.host((i + 3) % ft.host_count());
    const auto& candidates = provider.Paths(src, dst);
    ASSERT_FALSE(candidates.empty());
    flow::Flow f;
    f.src = src;
    f.dst = dst;
    f.demand = 10.0;
    f.duration = 1.0;
    placed.push_back(original.Place(std::move(f), candidates[i % 2]));
  }

  BinWriter w;
  original.SaveState(w);

  // The restored network has its own registry (refs are process-local and
  // never serialized); every placement must resolve to the same path
  // content, and interning that content must yield the restored ref.
  net::Network restored(ft.graph());
  BinReader r(w.buffer());
  restored.LoadState(r);

  ASSERT_EQ(restored.placed_flow_count(), original.placed_flow_count());
  for (const FlowId id : placed) {
    EXPECT_EQ(restored.PathOf(id), original.PathOf(id));
    EXPECT_EQ(restored.path_registry().Intern(original.PathOf(id)),
              restored.PathRefOf(id));
  }
  // 8 placements over 2 distinct candidate paths per pair: the restored
  // registry holds only the used paths, deduped.
  EXPECT_LE(restored.path_registry().size(), 8u);
}

TEST(PathRegistryDeathTest, LoadRejectsForeignTopologySnapshot) {
  const FatTree small(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  net::Network source(small.graph());
  BinWriter w;
  source.SaveState(w);

  // A snapshot carries the source topology's fingerprint; binding it to a
  // different graph (where interned link/node ids would be meaningless)
  // must abort, not silently corrupt the registry.
  const FatTree big(FatTreeConfig{.k = 6, .link_capacity = 1000.0});
  net::Network wrong(big.graph());
  BinReader r(w.buffer());
  EXPECT_DEATH(wrong.LoadState(r), "NU_CHECK");
}

}  // namespace
}  // namespace nu::topo
