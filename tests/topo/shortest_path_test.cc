#include "topo/shortest_path.h"

#include <gtest/gtest.h>

namespace nu::topo {
namespace {

/// A 2x3 grid:  0-1-2
///              |  |  |
///              3-4-5
Graph Grid() {
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeRole::kGeneric);
  auto add = [&](int a, int b) {
    g.AddBidirectional(NodeId{static_cast<NodeId::rep_type>(a)},
                       NodeId{static_cast<NodeId::rep_type>(b)}, 100.0);
  };
  add(0, 1);
  add(1, 2);
  add(3, 4);
  add(4, 5);
  add(0, 3);
  add(1, 4);
  add(2, 5);
  return g;
}

TEST(BfsTest, FindsShortestHopPath) {
  const Graph g = Grid();
  const auto p = BfsShortestPath(g, NodeId{0}, NodeId{5});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hop_count(), 3u);
  EXPECT_TRUE(g.IsValidPath(*p));
  EXPECT_EQ(p->source(), NodeId{0});
  EXPECT_EQ(p->destination(), NodeId{5});
}

TEST(BfsTest, SameNodeEmptyPath) {
  const Graph g = Grid();
  const auto p = BfsShortestPath(g, NodeId{2}, NodeId{2});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(BfsTest, FilterBlocksRoute) {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  g.AddBidirectional(a, b, 100.0);
  const auto blocked = BfsShortestPath(
      g, a, b, [](const Link&) { return false; });
  EXPECT_FALSE(blocked.has_value());
}

TEST(BfsTest, FilterForcesDetour) {
  const Graph g = Grid();
  // Block the direct 0->1 link: the shortest 0->2 route becomes 5 hops? No:
  // 0-3-4-1-2 is 4 hops, or 0-3-4-5-2 is 4 hops.
  const LinkId direct = g.FindLink(NodeId{0}, NodeId{1});
  const auto p = BfsShortestPath(
      g, NodeId{0}, NodeId{2},
      [direct](const Link& l) { return l.id != direct; });
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hop_count(), 4u);
}

TEST(DijkstraTest, MatchesBfsOnUnitWeights) {
  const Graph g = Grid();
  for (NodeId::rep_type s = 0; s < 6; ++s) {
    for (NodeId::rep_type t = 0; t < 6; ++t) {
      const auto bfs = BfsShortestPath(g, NodeId{s}, NodeId{t});
      const auto dij = DijkstraShortestPath(g, NodeId{s}, NodeId{t});
      ASSERT_EQ(bfs.has_value(), dij.has_value());
      if (bfs) {
        EXPECT_EQ(bfs->hop_count(), dij->hop_count());
      }
    }
  }
}

TEST(DijkstraTest, RespectsWeights) {
  // Triangle where the direct edge is expensive.
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  const NodeId c = g.AddNode(NodeRole::kGeneric);
  g.AddBidirectional(a, c, 100.0);  // capacity encodes the weight below
  g.AddBidirectional(a, b, 1.0);
  g.AddBidirectional(b, c, 1.0);
  const auto p = DijkstraShortestPath(
      g, a, c, [](const Link& l) { return static_cast<double>(l.capacity); });
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hop_count(), 2u);  // via b, total weight 2 < 100
}

TEST(PathWeightTest, HopCountDefault) {
  const Graph g = Grid();
  const auto p = BfsShortestPath(g, NodeId{0}, NodeId{5});
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(PathWeight(g, *p), 3.0);
  EXPECT_DOUBLE_EQ(
      PathWeight(g, *p, [](const Link&) { return 2.5; }), 7.5);
}

TEST(BfsDistancesTest, AllReachable) {
  const Graph g = Grid();
  const auto dist = BfsDistances(g, NodeId{0});
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[5], 3u);
}

TEST(DiameterTest, Grid) {
  EXPECT_EQ(Diameter(Grid()), 3u);
}

TEST(ConnectivityTest, DisconnectedDetected) {
  Graph g;
  g.AddNode(NodeRole::kGeneric);
  g.AddNode(NodeRole::kGeneric);
  EXPECT_FALSE(IsStronglyConnected(g));
  const auto p = BfsShortestPath(g, NodeId{0}, NodeId{1});
  EXPECT_FALSE(p.has_value());
}

TEST(ConnectivityTest, OneWayIsNotStrong) {
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kGeneric);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  g.AddLink(a, b, 10.0);
  EXPECT_FALSE(IsStronglyConnected(g));
}

}  // namespace
}  // namespace nu::topo
