// Tests for fabric-vs-host distinctions: oversubscribed Fat-Trees,
// FabricUtilization, per-tier headroom, and ECMP-hash background placement.
#include <gtest/gtest.h>

#include "net/network.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/background.h"
#include "trace/yahoo_like.h"

namespace nu::net {
namespace {

TEST(OversubscriptionTest, FabricLinksScaled) {
  const topo::FatTree ft(topo::FatTreeConfig{
      .k = 4, .link_capacity = 1000.0, .fabric_capacity_factor = 0.5});
  const auto& g = ft.graph();
  // Host link at full capacity.
  const LinkId host_link = g.FindLink(ft.host(0), ft.edge(0, 0));
  ASSERT_TRUE(host_link.valid());
  EXPECT_DOUBLE_EQ(g.link(host_link).capacity, 1000.0);
  // Edge-agg and agg-core links halved.
  const LinkId edge_agg = g.FindLink(ft.edge(0, 0), ft.agg(0, 0));
  ASSERT_TRUE(edge_agg.valid());
  EXPECT_DOUBLE_EQ(g.link(edge_agg).capacity, 500.0);
  const LinkId agg_core = g.FindLink(ft.agg(0, 0), ft.core(0));
  ASSERT_TRUE(agg_core.valid());
  EXPECT_DOUBLE_EQ(g.link(agg_core).capacity, 500.0);
}

TEST(FabricUtilizationTest, CountsOnlyFabricLinks) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  Network net(ft.graph());
  // Load only one host pair's single path: 2 host links + 0 fabric links.
  const topo::FatTreePathProvider provider(ft);
  const auto& p = provider.Paths(ft.host(0), ft.host(1));
  flow::Flow f;
  f.src = ft.host(0);
  f.dst = ft.host(1);
  f.demand = 50.0;
  f.duration = 1.0;
  net.Place(std::move(f), p[0]);
  EXPECT_GT(net.AverageUtilization(), 0.0);
  EXPECT_DOUBLE_EQ(net.FabricUtilization(), 0.0);

  // An inter-pod flow loads fabric links too.
  const auto& q = provider.Paths(ft.host(0), ft.host(12));
  flow::Flow g;
  g.src = ft.host(0);
  g.dst = ft.host(12);
  g.demand = 10.0;
  g.duration = 1.0;
  net.Place(std::move(g), q[0]);
  EXPECT_GT(net.FabricUtilization(), 0.0);
}

TEST(FabricUtilizationTest, HostOnlyGraphFallsBack) {
  topo::Graph g;
  const NodeId a = g.AddNode(topo::NodeRole::kHost);
  const NodeId b = g.AddNode(topo::NodeRole::kHost);
  g.AddBidirectional(a, b, 100.0);
  Network net(g);
  flow::Flow f;
  f.src = a;
  f.dst = b;
  f.demand = 50.0;
  f.duration = 1.0;
  const std::array<NodeId, 2> seq{a, b};
  net.Place(std::move(f), g.MakePath(seq));
  EXPECT_DOUBLE_EQ(net.FabricUtilization(), net.AverageUtilization());
}

TEST(HeadroomTest, HostLinksKeepLargerReserve) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());
  trace::YahooLikeGenerator gen(ft.hosts(), Rng(5));
  trace::BackgroundOptions options;
  options.target_utilization = 0.9;  // ask for more than headroom allows
  options.link_headroom = 0.05;
  options.host_link_headroom = 0.3;
  options.max_consecutive_failures = 300;
  trace::InjectBackground(network, provider, gen, options);

  for (const auto& link : ft.graph().links()) {
    const bool touches_host =
        ft.graph().node(link.src).role == topo::NodeRole::kHost ||
        ft.graph().node(link.dst).role == topo::NodeRole::kHost;
    const double max_util = touches_host ? 0.7 : 0.95;
    EXPECT_LE(network.Utilization(link.id), max_util + 1e-9)
        << ft.graph().node(link.src).name << "->"
        << ft.graph().node(link.dst).name;
  }
}

TEST(HeadroomTest, FitsWithHeadroomRespectsTiers) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());
  trace::BackgroundOptions options;
  options.link_headroom = 0.1;
  options.host_link_headroom = 0.5;
  const auto& p = provider.Paths(ft.host(0), ft.host(2));
  // 50 Mbps would leave exactly 50 on the host links: allowed (>= 50).
  EXPECT_TRUE(trace::FitsWithHeadroom(network, p[0], 50.0, options));
  // 51 Mbps violates the 50% host reserve.
  EXPECT_FALSE(trace::FitsWithHeadroom(network, p[0], 51.0, options));
}

TEST(RandomPathPlacementTest, SpreadsAcrossCandidates) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());
  trace::BackgroundOptions options;
  Rng rng(9);
  std::set<std::vector<NodeId>> used;
  for (int i = 0; i < 64; ++i) {
    const auto path = trace::FindRandomPathWithHeadroom(
        network, provider, ft.host(0), ft.host(12), 1.0, options, rng);
    ASSERT_TRUE(path.has_value());
    used.insert(path->nodes);
  }
  // 4 inter-pod candidates on k=4; random placement should hit all of them.
  EXPECT_EQ(used.size(), 4u);
}

TEST(RandomPathPlacementTest, NulloptWhenNothingFits) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());
  trace::BackgroundOptions options;
  Rng rng(10);
  const auto path = trace::FindRandomPathWithHeadroom(
      network, provider, ft.host(0), ft.host(1), 150.0, options, rng);
  EXPECT_FALSE(path.has_value());
}

}  // namespace
}  // namespace nu::net
