#include "net/snapshot.h"

#include <gtest/gtest.h>

#include <array>

namespace nu::net {
namespace {

struct Fixture {
  Fixture() {
    a = graph.AddNode(topo::NodeRole::kHost);
    b = graph.AddNode(topo::NodeRole::kHost);
    graph.AddBidirectional(a, b, 100.0);
  }

  [[nodiscard]] topo::Path AbPath() const {
    const std::array<NodeId, 2> seq{a, b};
    return graph.MakePath(seq);
  }

  [[nodiscard]] flow::Flow MakeFlow(Mbps demand) const {
    flow::Flow f;
    f.src = a;
    f.dst = b;
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  topo::Graph graph;
  NodeId a, b;
};

TEST(ScopedTransactionTest, RollsBackOnDestruction) {
  Fixture fx;
  Network net(fx.graph);
  {
    ScopedTransaction txn(net);
    net.Place(fx.MakeFlow(60.0), fx.AbPath());
    EXPECT_EQ(net.placed_flow_count(), 1u);
  }
  EXPECT_EQ(net.placed_flow_count(), 0u);
  EXPECT_DOUBLE_EQ(net.Residual(fx.AbPath().links[0]), 100.0);
}

TEST(ScopedTransactionTest, CommitKeepsChanges) {
  Fixture fx;
  Network net(fx.graph);
  {
    ScopedTransaction txn(net);
    net.Place(fx.MakeFlow(60.0), fx.AbPath());
    txn.Commit();
  }
  EXPECT_EQ(net.placed_flow_count(), 1u);
  EXPECT_DOUBLE_EQ(net.Residual(fx.AbPath().links[0]), 40.0);
}

TEST(ScopedTransactionTest, ExplicitRollback) {
  Fixture fx;
  Network net(fx.graph);
  ScopedTransaction txn(net);
  net.Place(fx.MakeFlow(60.0), fx.AbPath());
  txn.Rollback();
  EXPECT_EQ(net.placed_flow_count(), 0u);
  EXPECT_TRUE(txn.committed());
}

TEST(ScopedTransactionTest, NestedTransactions) {
  Fixture fx;
  Network net(fx.graph);
  {
    ScopedTransaction outer(net);
    net.Place(fx.MakeFlow(30.0), fx.AbPath());
    {
      ScopedTransaction inner(net);
      net.Place(fx.MakeFlow(30.0), fx.AbPath());
      // inner rolls back
    }
    EXPECT_EQ(net.placed_flow_count(), 1u);
    outer.Commit();
  }
  EXPECT_EQ(net.placed_flow_count(), 1u);
}

}  // namespace
}  // namespace nu::net
