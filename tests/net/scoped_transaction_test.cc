// ScopedTransaction interleavings beyond the basics of snapshot_test.cc:
// mutations after Commit, rollback across fault-state changes (down marks
// and topology epoch restored), and nested commit/rollback combinations.
#include <gtest/gtest.h>

#include <array>

#include "net/snapshot.h"

namespace nu::net {
namespace {

struct Fixture {
  Fixture() {
    a = graph.AddNode(topo::NodeRole::kHost);
    b = graph.AddNode(topo::NodeRole::kHost);
    graph.AddBidirectional(a, b, 100.0);
  }

  [[nodiscard]] topo::Path AbPath() const {
    const std::array<NodeId, 2> seq{a, b};
    return graph.MakePath(seq);
  }

  [[nodiscard]] flow::Flow MakeFlow(Mbps demand) const {
    flow::Flow f;
    f.src = a;
    f.dst = b;
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  topo::Graph graph;
  NodeId a, b;
};

TEST(ScopedTransactionTest, MutationsAfterCommitPersist) {
  // Commit disarms the destructor for good: later mutations in the same
  // scope are NOT rolled back either.
  Fixture fx;
  Network net(fx.graph);
  {
    ScopedTransaction txn(net);
    net.Place(fx.MakeFlow(30.0), fx.AbPath());
    txn.Commit();
    net.Place(fx.MakeFlow(20.0), fx.AbPath());
  }
  EXPECT_EQ(net.placed_flow_count(), 2u);
  EXPECT_DOUBLE_EQ(net.Residual(fx.AbPath().links[0]), 50.0);
}

TEST(ScopedTransactionTest, RollbackRestoresFaultState) {
  // A speculative fault application (down mark + victim removal) must be
  // fully reversible: flow back, link up, epoch back to its saved value.
  Fixture fx;
  Network net(fx.graph);
  const FlowId placed = net.Place(fx.MakeFlow(40.0), fx.AbPath());
  const std::uint64_t epoch_before = net.topology_epoch();
  {
    ScopedTransaction txn(net);
    net.SetLinkUp(fx.AbPath().links[0], false);
    net.Remove(placed);  // the fault kills the crossing flow
    EXPECT_EQ(net.placed_flow_count(), 0u);
    EXPECT_FALSE(net.LinkUp(fx.AbPath().links[0]));
    EXPECT_GT(net.topology_epoch(), epoch_before);
  }
  EXPECT_TRUE(net.HasFlow(placed));
  EXPECT_TRUE(net.LinkUp(fx.AbPath().links[0]));
  EXPECT_EQ(net.topology_epoch(), epoch_before);
  EXPECT_DOUBLE_EQ(net.Residual(fx.AbPath().links[0]), 60.0);
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(ScopedTransactionTest, RollbackRestoresPreexistingDownMarks) {
  // Rollback must not "heal" faults that predate the transaction.
  Fixture fx;
  Network net(fx.graph);
  net.SetLinkUp(fx.AbPath().links[0], false);
  {
    ScopedTransaction txn(net);
    net.SetLinkUp(fx.AbPath().links[0], true);  // speculative repair
    net.Place(fx.MakeFlow(40.0), fx.AbPath());
  }
  EXPECT_FALSE(net.LinkUp(fx.AbPath().links[0]));
  EXPECT_EQ(net.placed_flow_count(), 0u);
  EXPECT_EQ(net.down_link_count(), 1u);
}

TEST(ScopedTransactionTest, RollbackDiscardsForcedOvercommit) {
  Fixture fx;
  Network net(fx.graph);
  {
    ScopedTransaction txn(net);
    net.ForcePlace(fx.MakeFlow(150.0), fx.AbPath());
    EXPECT_FALSE(net.CheckInvariants());  // negative residual
  }
  EXPECT_TRUE(net.CheckInvariants());
  EXPECT_DOUBLE_EQ(net.Residual(fx.AbPath().links[0]), 100.0);
}

TEST(ScopedTransactionTest, NestedInnerCommitOuterRollback) {
  // The outer snapshot predates the inner transaction, so an outer rollback
  // discards even inner-committed work — snapshots nest like savepoints.
  Fixture fx;
  Network net(fx.graph);
  {
    ScopedTransaction outer(net);
    net.Place(fx.MakeFlow(30.0), fx.AbPath());
    {
      ScopedTransaction inner(net);
      net.Place(fx.MakeFlow(20.0), fx.AbPath());
      inner.Commit();
    }
    EXPECT_EQ(net.placed_flow_count(), 2u);
    // outer rolls back on destruction
  }
  EXPECT_EQ(net.placed_flow_count(), 0u);
}

TEST(ScopedTransactionTest, NestedRollbackAfterFaultInterleaving) {
  // Outer transaction places work; an inner "what if this link died"
  // experiment rolls back; the outer commit must keep exactly the outer
  // mutations with the fault experiment fully erased.
  Fixture fx;
  Network net(fx.graph);
  const std::uint64_t epoch_before = net.topology_epoch();
  {
    ScopedTransaction outer(net);
    const FlowId placed = net.Place(fx.MakeFlow(30.0), fx.AbPath());
    {
      ScopedTransaction inner(net);
      net.SetLinkUp(fx.AbPath().links[0], false);
      net.Remove(placed);
      inner.Rollback();
      EXPECT_TRUE(inner.committed());
    }
    EXPECT_TRUE(net.HasFlow(placed));
    EXPECT_TRUE(net.LinkUp(fx.AbPath().links[0]));
    outer.Commit();
  }
  EXPECT_EQ(net.placed_flow_count(), 1u);
  EXPECT_EQ(net.topology_epoch(), epoch_before);
  EXPECT_TRUE(net.CheckInvariants());
}

}  // namespace
}  // namespace nu::net
