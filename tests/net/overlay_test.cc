#include "net/overlay.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::net {
namespace {

using topo::FatTree;
using topo::FatTreeConfig;
using topo::FatTreePathProvider;
using topo::Path;

/// Fat tree with some background flows placed, plus a deep copy and an
/// overlay over the same base — the differential pair under test.
struct DiffFixture {
  DiffFixture()
      : ft(FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        base(ft.graph()) {
    Rng rng(7);
    for (int i = 0; i < 24; ++i) {
      const flow::Flow f = RandomFlow(rng, 1.0 + rng.Uniform(0.0, 9.0));
      const auto& paths = provider.Paths(f.src, f.dst);
      const Path& p = paths[rng.Index(paths.size())];
      if (base.CanPlace(f.demand, p)) base.Place(f, p);
    }
  }

  [[nodiscard]] flow::Flow RandomFlow(Rng& rng, Mbps demand) const {
    flow::Flow f;
    f.src = ft.host(rng.Index(ft.host_count()));
    do {
      f.dst = ft.host(rng.Index(ft.host_count()));
    } while (f.dst == f.src);
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  FatTree ft;
  FatTreePathProvider provider;
  Network base;
};

/// Every read both states can answer must agree bit-for-bit.
void ExpectIdentical(const NetworkView& overlay, const Network& copy,
                     std::span<const FlowId> ids) {
  for (const auto& l : copy.graph().links()) {
    ASSERT_EQ(overlay.Residual(l.id), copy.Residual(l.id))
        << "link " << l.id.value();
    ASSERT_EQ(overlay.FlowsOnLink(l.id), copy.FlowsOnLink(l.id))
        << "link " << l.id.value();
    ASSERT_EQ(overlay.FlowCountOnLink(l.id), copy.FlowCountOnLink(l.id));
  }
  ASSERT_EQ(overlay.FlowIdUpperBound(), copy.FlowIdUpperBound());
  for (FlowId id : ids) {
    ASSERT_EQ(overlay.HasFlow(id), copy.HasFlow(id)) << id.value();
    if (!copy.HasFlow(id)) continue;
    ASSERT_EQ(overlay.FlowOf(id).demand, copy.FlowOf(id).demand);
    ASSERT_EQ(overlay.PathOf(id), copy.PathOf(id));
    for (const auto& l : copy.graph().links()) {
      ASSERT_EQ(overlay.FlowUsesLink(id, l.id), copy.FlowUsesLink(id, l.id));
    }
  }
}

TEST(OverlayTest, FreshOverlayReadsFallThrough) {
  DiffFixture fx;
  NetworkOverlay overlay(fx.base);
  std::vector<FlowId> ids;
  for (FlowId::rep_type i = 0; i < fx.base.FlowIdUpperBound(); ++i) {
    ids.push_back(FlowId{i});
  }
  ExpectIdentical(overlay, fx.base, ids);
  EXPECT_EQ(overlay.ApproxDeltaBytes(), 0u);
}

TEST(OverlayTest, RandomOpsMatchDeepCopy) {
  DiffFixture fx;
  NetworkOverlay overlay(fx.base);
  Network copy = fx.base;
  Rng rng(99);

  // All ids ever seen (base flows + everything placed below), including
  // removed ones — HasFlow must agree on those too.
  std::vector<FlowId> ids;
  for (FlowId::rep_type i = 0; i < fx.base.FlowIdUpperBound(); ++i) {
    ids.push_back(FlowId{i});
  }
  std::vector<FlowId> live = ids;

  for (int step = 0; step < 200; ++step) {
    const std::size_t op = rng.Index(3);
    if (op == 0) {  // place
      const flow::Flow f = fx.RandomFlow(rng, 1.0 + rng.Uniform(0.0, 4.0));
      const auto& paths = fx.provider.Paths(f.src, f.dst);
      const Path& p = paths[rng.Index(paths.size())];
      if (!copy.CanPlace(f.demand, p)) continue;
      ASSERT_TRUE(overlay.CanPlace(f.demand, p));
      const FlowId oid = overlay.Place(f, p);
      const FlowId cid = copy.Place(f, p);
      ASSERT_EQ(oid, cid);  // id chaining via FlowIdUpperBound
      ids.push_back(cid);
      live.push_back(cid);
    } else if (op == 1 && !live.empty()) {  // remove
      const std::size_t pick = rng.Index(live.size());
      const FlowId id = live[pick];
      overlay.Remove(id);
      copy.Remove(id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (op == 2 && !live.empty()) {  // reroute
      const FlowId id = live[rng.Index(live.size())];
      const flow::Flow& f = copy.FlowOf(id);
      const auto& paths = fx.provider.Paths(f.src, f.dst);
      const Path& p = paths[rng.Index(paths.size())];
      if (p == copy.PathOf(id)) continue;
      // Feasibility must agree; skip infeasible targets on both.
      const bool can = copy.CanReroute(id, p);
      ASSERT_EQ(overlay.CanReroute(id, p), can);
      if (!can) continue;
      overlay.Reroute(id, p);
      copy.Reroute(id, p);
    }
    ExpectIdentical(overlay, copy, ids);
  }
  EXPECT_GT(overlay.ApproxDeltaBytes(), 0u);
}

TEST(OverlayTest, BaseIsNeverMutated) {
  DiffFixture fx;
  std::vector<Mbps> before;
  for (const auto& l : fx.base.graph().links()) {
    before.push_back(fx.base.Residual(l.id));
  }
  const auto flows_before = fx.base.FlowIdUpperBound();
  const auto epoch_before = fx.base.state_epoch();

  NetworkOverlay overlay(fx.base);
  Rng rng(3);
  const flow::Flow f = fx.RandomFlow(rng, 2.0);
  const Path& p = fx.provider.Paths(f.src, f.dst).front();
  const FlowId id = overlay.Place(f, p);
  overlay.Remove(FlowId{0});
  overlay.Remove(id);

  std::size_t i = 0;
  for (const auto& l : fx.base.graph().links()) {
    EXPECT_EQ(fx.base.Residual(l.id), before[i++]);
  }
  EXPECT_EQ(fx.base.FlowIdUpperBound(), flows_before);
  EXPECT_EQ(fx.base.state_epoch(), epoch_before);
  EXPECT_TRUE(fx.base.HasFlow(FlowId{0}));
  EXPECT_FALSE(overlay.HasFlow(FlowId{0}));
}

TEST(OverlayTest, OverlayOverOverlayMatchesDeepCopy) {
  DiffFixture fx;
  NetworkOverlay outer(fx.base);
  Network copy = fx.base;
  Rng rng(11);

  // Mutate the outer layer, then stack an inner overlay (the shape the
  // planner's migration what-ifs create inside a co-feasibility scratch).
  const flow::Flow f1 = fx.RandomFlow(rng, 2.0);
  const Path& p1 = fx.provider.Paths(f1.src, f1.dst).front();
  ASSERT_EQ(outer.Place(f1, p1), copy.Place(f1, p1));
  outer.Remove(FlowId{0});
  copy.Remove(FlowId{0});

  NetworkOverlay inner(outer);
  Network inner_copy = copy;
  const flow::Flow f2 = fx.RandomFlow(rng, 3.0);
  const Path& p2 = fx.provider.Paths(f2.src, f2.dst).front();
  ASSERT_EQ(inner.Place(f2, p2), inner_copy.Place(f2, p2));

  std::vector<FlowId> ids;
  for (FlowId::rep_type i = 0; i < inner_copy.FlowIdUpperBound(); ++i) {
    ids.push_back(FlowId{i});
  }
  ExpectIdentical(inner, inner_copy, ids);
  // The outer layer must not have seen the inner mutation.
  ExpectIdentical(outer, copy, ids);
}

TEST(OverlayTest, DeltaStaysFarSmallerThanDeepCopy) {
  DiffFixture fx;
  NetworkOverlay overlay(fx.base);
  Rng rng(5);
  const flow::Flow f = fx.RandomFlow(rng, 2.0);
  const Path& p = fx.provider.Paths(f.src, f.dst).front();
  overlay.Place(f, p);
  // A one-flow probe touches a handful of links; a deep copy clones the
  // whole fat tree. The gap is the point of the overlay.
  EXPECT_LT(overlay.ApproxDeltaBytes() * 4, fx.base.ApproxStateBytes());
}

TEST(NetworkEpochTest, StateEpochBumpsOnEveryMutation) {
  DiffFixture fx;
  Network net = fx.base;
  auto epoch = net.state_epoch();

  Rng rng(13);
  const flow::Flow f = fx.RandomFlow(rng, 2.0);
  const Path& p = fx.provider.Paths(f.src, f.dst).front();
  const FlowId id = net.Place(f, p);
  EXPECT_GT(net.state_epoch(), epoch);
  epoch = net.state_epoch();

  const auto& paths = fx.provider.Paths(f.src, f.dst);
  if (paths.size() > 1) {
    net.Reroute(id, paths[1]);
    EXPECT_GT(net.state_epoch(), epoch);
    epoch = net.state_epoch();
  }

  net.Remove(id);
  EXPECT_GT(net.state_epoch(), epoch);
  epoch = net.state_epoch();

  const LinkId some_link = net.graph().links().front().id;
  net.SetLinkUp(some_link, false);
  EXPECT_GT(net.state_epoch(), epoch);
  epoch = net.state_epoch();
  // No-op transition: already down — the epoch must NOT move (cache stays
  // valid when nothing changed).
  net.SetLinkUp(some_link, false);
  EXPECT_EQ(net.state_epoch(), epoch);
  net.SetLinkUp(some_link, true);
  EXPECT_GT(net.state_epoch(), epoch);
}

}  // namespace
}  // namespace nu::net
