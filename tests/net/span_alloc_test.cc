// Allocation guard for the link-flow read path: LinkFlowIds (the span
// primitive) and the derived FlowCountOnLink / FlowUsesLink helpers must
// not allocate per call — that is the point of storing link membership as
// canonically sorted id vectors served by reference. The legacy
// FlowsOnLink (which materializes a vector of FlowIds) is exercised as a
// positive control to prove the counter sees allocations.
//
// The counting operator new/delete below replaces the global ones for this
// whole test binary, which is why these tests live in their own binary
// (test_span_alloc) rather than inside test_net.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>

#include "net/network.h"
#include "net/overlay.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace nu::net {
namespace {

struct Fixture {
  Fixture() : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0}),
              provider(ft),
              network(ft.graph()) {
    for (std::size_t i = 0; i < 16; ++i) {
      const NodeId src = ft.host(i % ft.host_count());
      const NodeId dst = ft.host((i + 5) % ft.host_count());
      const auto& paths = provider.Paths(src, dst);
      flow::Flow f;
      f.src = src;
      f.dst = dst;
      f.demand = 5.0;
      f.duration = 1.0;
      last = network.Place(std::move(f), paths[i % paths.size()]);
      used = paths[i % paths.size()].links[0];
    }
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  Network network;
  FlowId last;
  LinkId used;
};

TEST(SpanAllocTest, LinkFlowReadsDoNotAllocate) {
  Fixture fx;
  const topo::Graph& graph = fx.network.graph();

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < graph.link_count(); ++i) {
    const LinkId link{static_cast<LinkId::rep_type>(i)};
    const std::span<const std::uint32_t> ids = fx.network.LinkFlowIds(link);
    touched += ids.size();
    touched += fx.network.FlowCountOnLink(link);
    if (fx.network.FlowUsesLink(fx.last, link)) ++touched;
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "link-flow read path allocated";
  EXPECT_GT(touched, 0u);  // the loop actually read occupied links
}

TEST(SpanAllocTest, OverlayPassThroughReadsDoNotAllocate) {
  Fixture fx;
  // An overlay with no patches serves base spans directly; read-only
  // probing of untouched links must stay allocation-free too.
  NetworkOverlay overlay(fx.network);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < fx.network.graph().link_count(); ++i) {
    const LinkId link{static_cast<LinkId::rep_type>(i)};
    touched += overlay.LinkFlowIds(link).size();
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "overlay pass-through read allocated";
  EXPECT_GT(touched, 0u);
}

TEST(SpanAllocTest, CounterSeesLegacyMaterializingRead) {
  Fixture fx;
  // Positive control: the compatibility FlowsOnLink wrapper builds a
  // vector, so the counter must tick — proving the zero readings above
  // are meaningful.
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  const std::vector<FlowId> flows = fx.network.FlowsOnLink(fx.used);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_FALSE(flows.empty());
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace nu::net
