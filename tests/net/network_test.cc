#include "net/network.h"

#include <gtest/gtest.h>

#include <array>

namespace nu::net {
namespace {

using topo::Graph;
using topo::NodeRole;
using topo::Path;

/// Line graph a-b-c with 100 Mbps links.
struct LineFixture {
  LineFixture() {
    a = graph.AddNode(NodeRole::kHost);
    b = graph.AddNode(NodeRole::kGeneric);
    c = graph.AddNode(NodeRole::kHost);
    graph.AddBidirectional(a, b, 100.0);
    graph.AddBidirectional(b, c, 100.0);
  }

  [[nodiscard]] Path AbcPath() const {
    const std::array<NodeId, 3> seq{a, b, c};
    return graph.MakePath(seq);
  }

  [[nodiscard]] flow::Flow MakeFlow(Mbps demand, Seconds duration = 5.0) const {
    flow::Flow f;
    f.src = a;
    f.dst = c;
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  Graph graph;
  NodeId a, b, c;
};

TEST(NetworkTest, InitialResidualEqualsCapacity) {
  LineFixture fx;
  Network net(fx.graph);
  for (const auto& l : fx.graph.links()) {
    EXPECT_DOUBLE_EQ(net.Residual(l.id), 100.0);
    EXPECT_DOUBLE_EQ(net.Utilization(l.id), 0.0);
  }
  EXPECT_DOUBLE_EQ(net.AverageUtilization(), 0.0);
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(NetworkTest, PlaceConsumesResidual) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  const FlowId id = net.Place(fx.MakeFlow(30.0), p);
  EXPECT_DOUBLE_EQ(net.Residual(p.links[0]), 70.0);
  EXPECT_DOUBLE_EQ(net.Residual(p.links[1]), 70.0);
  EXPECT_EQ(net.placed_flow_count(), 1u);
  EXPECT_EQ(net.PathOf(id), p);
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(NetworkTest, RemoveReleasesResidual) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  const FlowId id = net.Place(fx.MakeFlow(30.0), p);
  net.Remove(id);
  EXPECT_DOUBLE_EQ(net.Residual(p.links[0]), 100.0);
  EXPECT_EQ(net.placed_flow_count(), 0u);
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(NetworkTest, CanPlaceRespectsResidual) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  net.Place(fx.MakeFlow(80.0), p);
  EXPECT_TRUE(net.CanPlace(20.0, p));
  EXPECT_FALSE(net.CanPlace(20.1, p));
}

TEST(NetworkTest, CongestedLinksDetection) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  // Load only the first link via a one-hop path a->b.
  const std::array<NodeId, 2> seq{fx.a, fx.b};
  flow::Flow f;
  f.src = fx.a;
  f.dst = fx.b;
  f.demand = 90.0;
  f.duration = 1.0;
  net.Place(std::move(f), fx.graph.MakePath(seq));

  const auto congested = net.CongestedLinks(50.0, p);
  ASSERT_EQ(congested.size(), 1u);
  EXPECT_EQ(congested[0], p.links[0]);
}

TEST(NetworkTest, RerouteMovesBandwidth) {
  // Diamond: a-b-d and a-c-d.
  Graph g;
  const NodeId a = g.AddNode(NodeRole::kHost);
  const NodeId b = g.AddNode(NodeRole::kGeneric);
  const NodeId c = g.AddNode(NodeRole::kGeneric);
  const NodeId d = g.AddNode(NodeRole::kHost);
  g.AddBidirectional(a, b, 100.0);
  g.AddBidirectional(b, d, 100.0);
  g.AddBidirectional(a, c, 100.0);
  g.AddBidirectional(c, d, 100.0);
  Network net(g);
  const std::array<NodeId, 3> top{a, b, d};
  const std::array<NodeId, 3> bottom{a, c, d};
  const Path top_path = g.MakePath(top);
  const Path bottom_path = g.MakePath(bottom);

  flow::Flow f;
  f.src = a;
  f.dst = d;
  f.demand = 60.0;
  f.duration = 9.0;
  const FlowId id = net.Place(std::move(f), top_path);
  net.Reroute(id, bottom_path);

  EXPECT_DOUBLE_EQ(net.Residual(top_path.links[0]), 100.0);
  EXPECT_DOUBLE_EQ(net.Residual(bottom_path.links[0]), 40.0);
  EXPECT_EQ(net.PathOf(id), bottom_path);
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(NetworkTest, RerouteToOverlappingPathUsesSelfRelease) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  const FlowId id = net.Place(fx.MakeFlow(100.0), p);  // saturates both links
  // Rerouting onto the same path must succeed (self-capacity counts).
  net.Reroute(id, p);
  EXPECT_DOUBLE_EQ(net.Residual(p.links[0]), 0.0);
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(NetworkTest, FlowsOnLinkTracksMembership) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  const FlowId f1 = net.Place(fx.MakeFlow(10.0), p);
  const FlowId f2 = net.Place(fx.MakeFlow(20.0), p);
  const auto on_link = net.FlowsOnLink(p.links[0]);
  ASSERT_EQ(on_link.size(), 2u);
  EXPECT_EQ(on_link[0], f1);
  EXPECT_EQ(on_link[1], f2);
  EXPECT_TRUE(net.FlowUsesLink(f1, p.links[0]));
  net.Remove(f1);
  EXPECT_FALSE(net.FlowUsesLink(f1, p.links[0]));
  EXPECT_EQ(net.FlowCountOnLink(p.links[0]), 1u);
}

TEST(NetworkTest, ForcePlaceAllowsOversubscription) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  net.Place(fx.MakeFlow(90.0), p);
  net.ForcePlace(fx.MakeFlow(50.0), p);
  EXPECT_LT(net.Residual(p.links[0]), 0.0);
  EXPECT_FALSE(net.CheckInvariants());  // congestion-free invariant violated
}

TEST(NetworkTest, CopyIsIndependent) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  net.Place(fx.MakeFlow(50.0), p);
  Network copy = net;
  copy.Place(fx.MakeFlow(25.0), p);
  EXPECT_DOUBLE_EQ(net.Residual(p.links[0]), 50.0);
  EXPECT_DOUBLE_EQ(copy.Residual(p.links[0]), 25.0);
  EXPECT_TRUE(net.CheckInvariants());
  EXPECT_TRUE(copy.CheckInvariants());
}

TEST(NetworkTest, UtilizationAverages) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  net.Place(fx.MakeFlow(50.0), p);
  // Two of four directed links at 50%: average 25%.
  EXPECT_DOUBLE_EQ(net.AverageUtilization(), 0.25);
  // Active links only: 50%.
  EXPECT_DOUBLE_EQ(net.ActiveLinkUtilization(), 0.5);
}

TEST(NetworkDeathTest, PlaceRejectsInfeasible) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  net.Place(fx.MakeFlow(90.0), p);
  EXPECT_DEATH(net.Place(fx.MakeFlow(20.0), p), "Precondition");
}

TEST(NetworkDeathTest, PlaceRejectsWrongEndpoints) {
  LineFixture fx;
  Network net(fx.graph);
  flow::Flow f;
  f.src = fx.b;  // path starts at a
  f.dst = fx.c;
  f.demand = 1.0;
  f.duration = 1.0;
  EXPECT_DEATH(net.Place(std::move(f), fx.AbcPath()), "Precondition");
}

TEST(NetworkDeathTest, RemoveUnknownFlow) {
  LineFixture fx;
  Network net(fx.graph);
  EXPECT_DEATH(net.Remove(FlowId{123}), "Precondition");
}

TEST(NetworkFaultStateTest, AllUpInitiallyAndEpochZero) {
  LineFixture fx;
  Network net(fx.graph);
  EXPECT_EQ(net.topology_epoch(), 0u);
  EXPECT_EQ(net.down_link_count(), 0u);
  EXPECT_EQ(net.down_node_count(), 0u);
  for (const auto& l : fx.graph.links()) EXPECT_TRUE(net.LinkUp(l.id));
  EXPECT_TRUE(net.NodeUp(fx.b));
  EXPECT_TRUE(net.PathAlive(fx.AbcPath()));
}

TEST(NetworkFaultStateTest, DownLinkKillsPathAndRevokesCapacity) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  net.SetLinkUp(p.links[0], false);
  EXPECT_FALSE(net.LinkUp(p.links[0]));
  EXPECT_FALSE(net.PathAlive(p));
  EXPECT_FALSE(net.CanPlace(1.0, p));  // plenty of residual, but dead
  EXPECT_EQ(net.down_link_count(), 1u);

  net.SetLinkUp(p.links[0], true);
  EXPECT_TRUE(net.PathAlive(p));
  EXPECT_TRUE(net.CanPlace(1.0, p));
  EXPECT_EQ(net.down_link_count(), 0u);
}

TEST(NetworkFaultStateTest, DownNodeKillsEveryPathThroughIt) {
  LineFixture fx;
  Network net(fx.graph);
  net.SetNodeUp(fx.b, false);
  EXPECT_FALSE(net.PathAlive(fx.AbcPath()));
  EXPECT_EQ(net.down_node_count(), 1u);
  net.SetNodeUp(fx.b, true);
  EXPECT_TRUE(net.PathAlive(fx.AbcPath()));
}

TEST(NetworkFaultStateTest, EpochBumpsOnlyOnTransitions) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  net.SetLinkUp(p.links[0], false);
  const auto after_down = net.topology_epoch();
  EXPECT_GT(after_down, 0u);
  net.SetLinkUp(p.links[0], false);  // idempotent: no transition
  EXPECT_EQ(net.topology_epoch(), after_down);
  net.SetLinkUp(p.links[0], true);
  EXPECT_GT(net.topology_epoch(), after_down);
}

TEST(NetworkFaultStateTest, InvariantsFailWhileFlowsOccupyDeadElements) {
  // The fault layer must remove victims explicitly; until it does, the
  // network reports the inconsistency.
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  const FlowId id = net.Place(fx.MakeFlow(10.0), p);
  net.SetLinkUp(p.links[1], false);
  EXPECT_FALSE(net.CheckInvariants());
  net.Remove(id);
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(NetworkFaultStateTest, RerouteRejectsDeadTargetPath) {
  LineFixture fx;
  Network net(fx.graph);
  const Path p = fx.AbcPath();
  const FlowId id = net.Place(fx.MakeFlow(10.0), p);
  net.SetLinkUp(p.links[0], false);
  EXPECT_FALSE(net.CanReroute(id, p));
}

}  // namespace
}  // namespace nu::net
