#include "net/admission.h"

#include <gtest/gtest.h>

#include "net/network.h"

namespace nu::net {
namespace {

using topo::FatTree;
using topo::FatTreeConfig;
using topo::FatTreePathProvider;

struct FatTreeFixture {
  FatTreeFixture()
      : ft(FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(NodeId src, NodeId dst, Mbps demand) const {
    flow::Flow f;
    f.src = src;
    f.dst = dst;
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  FatTree ft;
  FatTreePathProvider provider;
  Network network;
};

TEST(AdmissionTest, EmptyNetworkAdmitsEverything) {
  FatTreeFixture fx;
  EXPECT_TRUE(CanAdmit(fx.network, fx.provider, fx.ft.host(0), fx.ft.host(9),
                       100.0));
}

TEST(AdmissionTest, OverDemandRejected) {
  FatTreeFixture fx;
  EXPECT_FALSE(CanAdmit(fx.network, fx.provider, fx.ft.host(0), fx.ft.host(9),
                        100.1));
}

TEST(AdmissionTest, HostLinkIsTheBottleneck) {
  FatTreeFixture fx;
  // Saturate host 0's uplink with a flow to anywhere.
  const auto path = FindFeasiblePath(fx.network, fx.provider, fx.ft.host(0),
                                     fx.ft.host(9), 100.0);
  ASSERT_TRUE(path.has_value());
  fx.network.Place(fx.MakeFlow(fx.ft.host(0), fx.ft.host(9), 100.0), *path);
  // Now nothing can leave host 0 even though the fabric is mostly free.
  EXPECT_FALSE(
      CanAdmit(fx.network, fx.provider, fx.ft.host(0), fx.ft.host(5), 1.0));
  // Other hosts unaffected.
  EXPECT_TRUE(
      CanAdmit(fx.network, fx.provider, fx.ft.host(1), fx.ft.host(5), 100.0));
}

TEST(AdmissionTest, WidestSelectionSpreadsLoad) {
  FatTreeFixture fx;
  // Two same-pod, different-edge hosts: 2 candidate paths via the 2 aggs.
  const NodeId src = fx.ft.host(0);
  const NodeId dst = fx.ft.host(2);
  const auto p1 = FindFeasiblePath(fx.network, fx.provider, src, dst, 40.0,
                                   PathSelection::kWidest);
  ASSERT_TRUE(p1.has_value());
  fx.network.Place(fx.MakeFlow(src, dst, 40.0), *p1);
  const auto p2 = FindFeasiblePath(fx.network, fx.provider, src, dst, 40.0,
                                   PathSelection::kWidest);
  ASSERT_TRUE(p2.has_value());
  // Widest must avoid the loaded aggregation switch.
  EXPECT_NE(p1->nodes[2], p2->nodes[2]);
}

TEST(AdmissionTest, BestFitPacksTightly) {
  FatTreeFixture fx;
  const NodeId src = fx.ft.host(0);
  const NodeId dst = fx.ft.host(2);
  const auto p1 = FindFeasiblePath(fx.network, fx.provider, src, dst, 40.0,
                                   PathSelection::kBestFit);
  ASSERT_TRUE(p1.has_value());
  fx.network.Place(fx.MakeFlow(src, dst, 40.0), *p1);
  const auto p2 = FindFeasiblePath(fx.network, fx.provider, src, dst, 40.0,
                                   PathSelection::kBestFit);
  ASSERT_TRUE(p2.has_value());
  // Best-fit should reuse the already-loaded agg (residual 60 < 100).
  EXPECT_EQ(p1->nodes[2], p2->nodes[2]);
}

TEST(AdmissionTest, FirstFitDeterministic) {
  FatTreeFixture fx;
  const auto a = FindFeasiblePath(fx.network, fx.provider, fx.ft.host(0),
                                  fx.ft.host(8), 10.0,
                                  PathSelection::kFirstFit);
  const auto b = FindFeasiblePath(fx.network, fx.provider, fx.ft.host(0),
                                  fx.ft.host(8), 10.0,
                                  PathSelection::kFirstFit);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(AdmissionTest, BottleneckResidual) {
  FatTreeFixture fx;
  const auto path = FindFeasiblePath(fx.network, fx.provider, fx.ft.host(0),
                                     fx.ft.host(2), 30.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(BottleneckResidual(fx.network, *path), 100.0);
  fx.network.Place(fx.MakeFlow(fx.ft.host(0), fx.ft.host(2), 30.0), *path);
  EXPECT_DOUBLE_EQ(BottleneckResidual(fx.network, *path), 70.0);
}

TEST(AdmissionTest, LeastCongestedPathPrefersFewerDeficits) {
  FatTreeFixture fx;
  const NodeId src = fx.ft.host(0);
  const NodeId dst = fx.ft.host(2);
  const auto& candidates = fx.provider.Paths(src, dst);
  ASSERT_EQ(candidates.size(), 2u);
  // Congest candidate 0's middle hop (edge->agg link) with host 1's traffic.
  flow::Flow blocker;
  blocker.src = fx.ft.host(1);
  blocker.dst = fx.ft.host(2);
  blocker.demand = 95.0;
  blocker.duration = 1.0;
  // Build host1 -> edge0 -> agg(of candidate 0) -> edge1 -> host2.
  const NodeId agg0 = candidates[0].nodes[2];
  const std::array<NodeId, 5> seq{fx.ft.host(1), candidates[0].nodes[1], agg0,
                                  candidates[0].nodes[3], dst};
  fx.network.Place(std::move(blocker), fx.ft.graph().MakePath(seq));

  const auto& best =
      LeastCongestedPath(fx.network, fx.provider, src, dst, 50.0);
  EXPECT_NE(best.nodes[2], agg0);
}

}  // namespace
}  // namespace nu::net
