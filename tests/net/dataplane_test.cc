// DataplaneState: the sparse intended-vs-applied divergence store behind
// the grey-failure model. Accounting (active vs abandoned), canonical
// iteration order, the per-flow reverse index, and snapshot round-trips.
#include <gtest/gtest.h>

#include <vector>

#include "common/binio.h"
#include "net/dataplane.h"

namespace nu::net {
namespace {

TEST(DataplaneTest, AddResolveAndCounters) {
  DataplaneState dp;
  EXPECT_TRUE(dp.empty());
  EXPECT_TRUE(dp.AddDivergence(NodeId{3}, FlowId{7}, RuleFault::kAckLie, 1.0));
  EXPECT_TRUE(
      dp.AddDivergence(NodeId{3}, FlowId{9}, RuleFault::kStraggler, 1.5));
  EXPECT_EQ(dp.active_count(), 2u);
  EXPECT_EQ(dp.abandoned_count(), 0u);
  EXPECT_TRUE(dp.IsDivergent(NodeId{3}, FlowId{7}));
  EXPECT_FALSE(dp.IsDivergent(NodeId{4}, FlowId{7}));

  ASSERT_NE(dp.Find(NodeId{3}, FlowId{7}), nullptr);
  EXPECT_EQ(dp.Find(NodeId{3}, FlowId{7})->cause, RuleFault::kAckLie);
  EXPECT_EQ(dp.Find(NodeId{3}, FlowId{7})->since, 1.0);

  EXPECT_TRUE(dp.Resolve(NodeId{3}, FlowId{7}));
  EXPECT_FALSE(dp.Resolve(NodeId{3}, FlowId{7}));  // already gone
  EXPECT_EQ(dp.active_count(), 1u);
}

TEST(DataplaneTest, FirstCauseWins) {
  DataplaneState dp;
  EXPECT_TRUE(dp.AddDivergence(NodeId{1}, FlowId{1}, RuleFault::kAckLie, 1.0));
  // A rule cannot diverge twice without a repair in between.
  EXPECT_FALSE(
      dp.AddDivergence(NodeId{1}, FlowId{1}, RuleFault::kRuleLoss, 2.0));
  EXPECT_EQ(dp.Find(NodeId{1}, FlowId{1})->cause, RuleFault::kAckLie);
  EXPECT_EQ(dp.Find(NodeId{1}, FlowId{1})->since, 1.0);
  EXPECT_EQ(dp.active_count(), 1u);
}

TEST(DataplaneTest, AbandonmentMovesBetweenCounters) {
  DataplaneState dp;
  dp.AddDivergence(NodeId{2}, FlowId{5}, RuleFault::kAckLie, 0.0);
  EXPECT_EQ(dp.RecordRepairAttempt(NodeId{2}, FlowId{5}), 1u);
  EXPECT_EQ(dp.RecordRepairAttempt(NodeId{2}, FlowId{5}), 2u);
  dp.MarkAbandoned(NodeId{2}, FlowId{5});
  EXPECT_EQ(dp.active_count(), 0u);
  EXPECT_EQ(dp.abandoned_count(), 1u);
  EXPECT_EQ(dp.total_count(), 1u);
  EXPECT_FALSE(dp.empty());
  // Resolving an abandoned entry still removes it and fixes the counter.
  EXPECT_TRUE(dp.Resolve(NodeId{2}, FlowId{5}));
  EXPECT_EQ(dp.abandoned_count(), 0u);
  EXPECT_TRUE(dp.empty());
}

TEST(DataplaneTest, MutatorsAreNoOpsOnMissingEntries) {
  DataplaneState dp;
  dp.MarkDetected(NodeId{9}, FlowId{9});
  dp.SetPendingApply(NodeId{9}, FlowId{9}, true);
  dp.MarkAbandoned(NodeId{9}, FlowId{9});
  EXPECT_EQ(dp.RecordRepairAttempt(NodeId{9}, FlowId{9}), 0u);
  EXPECT_TRUE(dp.empty());
}

TEST(DataplaneTest, DropFlowClearsEveryNode) {
  DataplaneState dp;
  dp.AddDivergence(NodeId{1}, FlowId{4}, RuleFault::kAckLie, 0.0);
  dp.AddDivergence(NodeId{2}, FlowId{4}, RuleFault::kRuleLoss, 0.0);
  dp.AddDivergence(NodeId{2}, FlowId{5}, RuleFault::kAckLie, 0.0);
  dp.DropFlow(FlowId{4});
  EXPECT_EQ(dp.active_count(), 1u);
  EXPECT_FALSE(dp.IsDivergent(NodeId{1}, FlowId{4}));
  EXPECT_FALSE(dp.IsDivergent(NodeId{2}, FlowId{4}));
  EXPECT_TRUE(dp.IsDivergent(NodeId{2}, FlowId{5}));
}

TEST(DataplaneTest, DropNodeClearsItsRulesOnly) {
  DataplaneState dp;
  dp.AddDivergence(NodeId{1}, FlowId{4}, RuleFault::kAckLie, 0.0);
  dp.AddDivergence(NodeId{2}, FlowId{4}, RuleFault::kAckLie, 0.0);
  dp.MarkAbandoned(NodeId{2}, FlowId{4});
  dp.DropNode(NodeId{2});
  EXPECT_EQ(dp.active_count(), 1u);
  EXPECT_EQ(dp.abandoned_count(), 0u);
  EXPECT_TRUE(dp.IsDivergent(NodeId{1}, FlowId{4}));
}

TEST(DataplaneTest, CanonicalAscendingOrder) {
  DataplaneState dp;
  dp.AddDivergence(NodeId{5}, FlowId{2}, RuleFault::kAckLie, 0.0);
  dp.AddDivergence(NodeId{1}, FlowId{8}, RuleFault::kAckLie, 0.0);
  dp.AddDivergence(NodeId{5}, FlowId{1}, RuleFault::kAckLie, 0.0);

  const std::vector<NodeId> nodes = dp.DriftingNodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], NodeId{1});
  EXPECT_EQ(nodes[1], NodeId{5});

  const std::vector<FlowId> flows = dp.DivergentFlowsOn(NodeId{5});
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0], FlowId{1});
  EXPECT_EQ(flows[1], FlowId{2});

  std::vector<std::pair<NodeId::rep_type, FlowId::rep_type>> visited;
  dp.ForEach([&](NodeId n, FlowId f, const DivergentRule&) {
    visited.emplace_back(n.value(), f.value());
  });
  const std::vector<std::pair<NodeId::rep_type, FlowId::rep_type>> want = {
      {1, 8}, {5, 1}, {5, 2}};
  EXPECT_EQ(visited, want);
}

TEST(DataplaneTest, SaveLoadRoundTrip) {
  DataplaneState dp;
  dp.AddDivergence(NodeId{3}, FlowId{7}, RuleFault::kStraggler, 1.25);
  dp.SetPendingApply(NodeId{3}, FlowId{7}, true);
  dp.AddDivergence(NodeId{4}, FlowId{2}, RuleFault::kAckLie, 0.5);
  dp.MarkDetected(NodeId{4}, FlowId{2});
  dp.RecordRepairAttempt(NodeId{4}, FlowId{2});
  dp.AddDivergence(NodeId{4}, FlowId{3}, RuleFault::kRuleLoss, 2.0);
  dp.MarkAbandoned(NodeId{4}, FlowId{3});

  BinWriter w;
  dp.SaveState(w);
  BinReader r(w.buffer());
  DataplaneState loaded;
  loaded.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(loaded == dp);
  EXPECT_EQ(loaded.active_count(), 2u);
  EXPECT_EQ(loaded.abandoned_count(), 1u);
  const DivergentRule* entry = loaded.Find(NodeId{3}, FlowId{7});
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->pending_apply);
  EXPECT_EQ(entry->since, 1.25);
}

}  // namespace
}  // namespace nu::net
