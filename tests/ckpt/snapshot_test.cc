// Snapshot frame validation (magic / version / length / checksum), atomic
// write behavior, and checkpoint-directory bookkeeping.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/snapshot.h"

namespace nu::ckpt {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nu_snapshot_test_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path File(const std::string& name) const {
    return dir_ / name;
  }

  static std::string ReadBytes(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void WriteBytes(const fs::path& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(SnapshotTest, RoundTrip) {
  const std::string payload = "controller state bytes \x00\x01\x02 and more";
  const fs::path path = File("snap");
  const std::uint64_t bytes = WriteSnapshotFile(path, payload);
  EXPECT_EQ(bytes, fs::file_size(path));
  EXPECT_EQ(ReadSnapshotFile(path), payload);
  // The tmp staging file must not linger after the rename.
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
}

TEST_F(SnapshotTest, EmptyPayloadRoundTrips) {
  const fs::path path = File("snap");
  WriteSnapshotFile(path, "");
  EXPECT_EQ(ReadSnapshotFile(path), "");
}

TEST_F(SnapshotTest, RewriteReplacesAtomically) {
  const fs::path path = File("snap");
  WriteSnapshotFile(path, "old state");
  WriteSnapshotFile(path, "new state");
  EXPECT_EQ(ReadSnapshotFile(path), "new state");
}

TEST_F(SnapshotTest, EveryTruncationIsDetected) {
  const fs::path path = File("snap");
  WriteSnapshotFile(path, "some payload worth protecting");
  const std::string bytes = ReadBytes(path);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const fs::path cut = File("cut_" + std::to_string(keep));
    WriteBytes(cut, bytes.substr(0, keep));
    EXPECT_THROW((void)ReadSnapshotFile(cut), SnapshotCorruption)
        << "prefix " << keep;
  }
}

TEST_F(SnapshotTest, EveryBitFlipIsDetected) {
  const fs::path path = File("snap");
  WriteSnapshotFile(path, "some payload worth protecting");
  const std::string bytes = ReadBytes(path);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::string flipped = bytes;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x40);
    const fs::path bad = File("flip_" + std::to_string(byte));
    WriteBytes(bad, flipped);
    EXPECT_THROW((void)ReadSnapshotFile(bad), SnapshotCorruption)
        << "byte " << byte;
  }
}

TEST_F(SnapshotTest, VersionMismatchIsRejected) {
  const fs::path path = File("snap");
  WriteSnapshotFile(path, "payload");
  std::string bytes = ReadBytes(path);
  // The u32 version sits right after the u64 magic; any other version —
  // even a "newer" one — must be rejected (exact-match policy).
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);
  WriteBytes(path, bytes);
  EXPECT_THROW((void)ReadSnapshotFile(path), SnapshotCorruption);
}

TEST_F(SnapshotTest, MissingFileThrows) {
  EXPECT_THROW((void)ReadSnapshotFile(File("absent")), std::runtime_error);
}

TEST_F(SnapshotTest, SegmentPathsUseZeroPaddedRounds) {
  EXPECT_EQ(SnapshotPath(dir_, 42).filename().string(),
            "snap-0000000042.nuck");
  EXPECT_EQ(JournalPath(dir_, 42).filename().string(),
            "wal-0000000042.nuwal");
}

TEST_F(SnapshotTest, ListSnapshotRoundsNewestFirstIgnoringGarbage) {
  WriteSnapshotFile(SnapshotPath(dir_, 0), "a");
  WriteSnapshotFile(SnapshotPath(dir_, 7), "b");
  WriteSnapshotFile(SnapshotPath(dir_, 3), "c");
  WriteBytes(File("snap-notanumber.nuck"), "junk");
  WriteBytes(File("unrelated.txt"), "junk");
  WriteBytes(JournalPath(dir_, 7).string(), "junk");

  const std::vector<std::uint64_t> rounds = ListSnapshotRounds(dir_);
  EXPECT_EQ(rounds, (std::vector<std::uint64_t>{7, 3, 0}));
}

TEST_F(SnapshotTest, ListSnapshotRoundsOnMissingDirIsEmpty) {
  EXPECT_TRUE(ListSnapshotRounds(dir_ / "nonexistent").empty());
}

TEST_F(SnapshotTest, CheckpointConfigDisabledByDefault) {
  const CheckpointConfig config;
  EXPECT_FALSE(config.enabled());
  CheckpointConfig enabled;
  enabled.dir = dir_.string();
  EXPECT_TRUE(enabled.enabled());
}

}  // namespace
}  // namespace nu::ckpt
