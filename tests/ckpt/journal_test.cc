// Journal framing under crashes and corruption. The two sweeps are the
// heart of the torn-vs-corrupt contract:
//   * truncating the file at EVERY byte offset inside the last record must
//     read as a clean prefix plus a reported torn tail — never an error,
//     never a partial record;
//   * flipping ANY single bit of the last record must either throw
//     JournalCorruption or drop the record as torn — a damaged record is
//     never silently replayed, and earlier records are never altered.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/journal.h"

namespace nu::ckpt {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nu_journal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path File(const std::string& name) const {
    return dir_ / name;
  }

  static void WriteBytes(const fs::path& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static std::vector<WalRecord> SampleRecords() {
    return {
        WalRecord{WalOp::kArrival, 7, 0.25},
        WalRecord{WalOp::kExecute, 7, 1.5},
        WalRecord{WalOp::kMigration, 7, 123.456},
        WalRecord{WalOp::kComplete, 7, 9.75},
    };
  }

  fs::path dir_;
};

TEST_F(JournalTest, MissingFileReadsEmpty) {
  const JournalContents contents = ReadJournal(File("absent.nuwal"));
  EXPECT_TRUE(contents.records.empty());
  EXPECT_EQ(contents.valid_bytes, 0u);
  EXPECT_EQ(contents.torn_bytes, 0u);
}

TEST_F(JournalTest, WriterRoundTrip) {
  const fs::path path = File("wal");
  JournalWriter writer;
  writer.Open(path, 0);
  for (const WalRecord& rec : SampleRecords()) writer.Append(rec);
  writer.Close();

  const JournalContents contents = ReadJournal(path);
  const std::vector<WalRecord> expected = SampleRecords();
  ASSERT_EQ(contents.records.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(contents.records[i].BitwiseEquals(expected[i])) << i;
  }
  EXPECT_EQ(contents.valid_bytes, fs::file_size(path));
  EXPECT_EQ(contents.torn_bytes, 0u);
}

TEST_F(JournalTest, OpenTruncatesToKeepBytes) {
  const fs::path path = File("wal");
  JournalWriter writer;
  writer.Open(path, 0);
  writer.Append(SampleRecords()[0]);
  writer.Append(SampleRecords()[1]);
  const std::uint64_t first_only = fs::file_size(path) / 2;
  writer.Close();

  // Reopen keeping only the first record (the recovery path after a torn
  // tail), then append a different record.
  JournalWriter reopened;
  reopened.Open(path, first_only);
  reopened.Append(SampleRecords()[2]);
  reopened.Close();

  const JournalContents contents = ReadJournal(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_TRUE(contents.records[0].BitwiseEquals(SampleRecords()[0]));
  EXPECT_TRUE(contents.records[1].BitwiseEquals(SampleRecords()[2]));
}

TEST_F(JournalTest, AppendTornLeavesDetectableTail) {
  const fs::path path = File("wal");
  JournalWriter writer;
  writer.Open(path, 0);
  writer.Append(SampleRecords()[0]);
  writer.AppendTorn(SampleRecords()[1]);
  writer.Close();

  const JournalContents contents = ReadJournal(path);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_TRUE(contents.records[0].BitwiseEquals(SampleRecords()[0]));
  EXPECT_GT(contents.torn_bytes, 0u);
  EXPECT_EQ(contents.valid_bytes + contents.torn_bytes, fs::file_size(path));
}

/// Satellite sweep 1: cut the file at every byte offset of the last record.
TEST_F(JournalTest, TruncationAtEveryOffsetOfLastRecordIsATornTail) {
  const std::vector<WalRecord> records = SampleRecords();
  std::string prefix;
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    prefix += EncodeWalFrame(records[i]);
  }
  const std::string last = EncodeWalFrame(records.back());

  for (std::size_t cut = 0; cut < last.size(); ++cut) {
    const fs::path path = File("cut_" + std::to_string(cut));
    WriteBytes(path, prefix + last.substr(0, cut));

    const JournalContents contents = ReadJournal(path);
    ASSERT_EQ(contents.records.size(), records.size() - 1) << "cut " << cut;
    for (std::size_t i = 0; i + 1 < records.size(); ++i) {
      EXPECT_TRUE(contents.records[i].BitwiseEquals(records[i]));
    }
    EXPECT_EQ(contents.valid_bytes, prefix.size()) << "cut " << cut;
    EXPECT_EQ(contents.torn_bytes, cut) << "cut " << cut;
  }
}

/// Satellite sweep 2: flip every bit of the last record. The reader must
/// never hand the damaged record back as valid — it either throws
/// JournalCorruption (checksum/length violation) or classifies the tail as
/// torn (a length flip that runs past EOF); earlier records always survive
/// intact.
TEST_F(JournalTest, BitFlipsInLastRecordNeverReplaySilently) {
  const std::vector<WalRecord> records = SampleRecords();
  std::string prefix;
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    prefix += EncodeWalFrame(records[i]);
  }
  const std::string last = EncodeWalFrame(records.back());

  for (std::size_t byte = 0; byte < last.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = last;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      const fs::path path =
          File("flip_" + std::to_string(byte) + "_" + std::to_string(bit));
      WriteBytes(path, prefix + flipped);

      bool threw = false;
      JournalContents contents;
      try {
        contents = ReadJournal(path);
      } catch (const JournalCorruption&) {
        threw = true;
      }
      if (threw) continue;
      // Not corrupt => must have been classified as a torn tail dropping
      // exactly the flipped record; the clean prefix is untouched.
      ASSERT_EQ(contents.records.size(), records.size() - 1)
          << "byte " << byte << " bit " << bit;
      for (std::size_t i = 0; i + 1 < records.size(); ++i) {
        EXPECT_TRUE(contents.records[i].BitwiseEquals(records[i]));
      }
      EXPECT_EQ(contents.valid_bytes, prefix.size());
      EXPECT_GT(contents.torn_bytes, 0u);
    }
  }
}

TEST_F(JournalTest, OversizedLengthFieldIsCorruptionNotTornTail) {
  // A complete header claiming more than kMaxWalPayload can only be
  // corruption — no writer ever produces it.
  std::string bytes;
  const std::uint32_t len = kMaxWalPayload + 1;
  for (std::size_t i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  bytes.append(4, '\0');  // crc field
  const fs::path path = File("oversized");
  WriteBytes(path, bytes);
  EXPECT_THROW((void)ReadJournal(path), JournalCorruption);
}

}  // namespace
}  // namespace nu::ckpt
