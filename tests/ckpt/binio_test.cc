// BinWriter/BinReader round-trips and corruption rejection: the checkpoint
// subsystem's serialization primitives must decode exactly what was encoded
// and throw CorruptInput on anything truncated or out of range.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/binio.h"

namespace nu {
namespace {

TEST(BinIoTest, ScalarRoundTrip) {
  BinWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.14159);
  w.F64(-0.0);
  w.Bool(true);
  w.Bool(false);
  w.Size(7);
  w.Str("hello");

  BinReader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.14159);
  // Bit-exact doubles: -0.0 must come back as -0.0, not +0.0.
  EXPECT_TRUE(std::signbit(r.F64()));
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.Size(), 7u);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_NO_THROW(r.ExpectEnd());
}

TEST(BinIoTest, SpecialDoublesRoundTripBitwise) {
  const double values[] = {std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  BinWriter w;
  for (double v : values) w.F64(v);
  BinReader r(w.buffer());
  for (double v : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.F64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(BinIoTest, VecRoundTrip) {
  BinWriter w;
  const std::vector<std::uint64_t> values = {1, 2, 3, 1ull << 63};
  w.Vec(values, [](BinWriter& out, std::uint64_t v) { out.U64(v); });
  BinReader r(w.buffer());
  const auto back =
      r.Vec<std::uint64_t>([](BinReader& in) { return in.U64(); });
  EXPECT_EQ(back, values);
}

TEST(BinIoTest, LittleEndianLayout) {
  BinWriter w;
  w.U32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(w.buffer()[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(w.buffer()[3]), 0x01);
}

TEST(BinIoTest, TruncatedReadsThrow) {
  BinWriter w;
  w.U64(99);
  const std::string bytes = w.buffer();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    BinReader r(std::string_view(bytes).substr(0, keep));
    EXPECT_THROW((void)r.U64(), CorruptInput) << "prefix " << keep;
  }
}

TEST(BinIoTest, OversizedLengthFieldThrows) {
  BinWriter w;
  w.U64(1u << 20);  // claims a megabyte; nothing follows
  BinReader r(w.buffer());
  EXPECT_THROW((void)r.Size(), CorruptInput);
}

TEST(BinIoTest, ExpectEndRejectsTrailingGarbage) {
  BinWriter w;
  w.U8(1);
  w.U8(2);
  BinReader r(w.buffer());
  (void)r.U8();
  EXPECT_THROW(r.ExpectEnd(), CorruptInput);
}

TEST(BinIoTest, Crc32KnownVector) {
  // IEEE 802.3 reflected CRC32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("")), 0x00000000u);
}

TEST(BinIoTest, Crc32DetectsSingleBitFlips) {
  std::string data = "checkpoint payload bytes";
  const std::uint32_t clean = Crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(Crc32(flipped), clean) << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace nu
