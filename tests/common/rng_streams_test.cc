// Pins the named RNG stream constants. The enumerator values ARE the XOR
// constants the legacy construction sites used, and golden CSVs from earlier
// PRs encode exactly these derivations — a changed value here is a silent
// break of every fixed-seed artifact, so each one is asserted numerically.
#include "common/rng_streams.h"

#include <gtest/gtest.h>

#include <set>

namespace nu {
namespace {

TEST(RngStreamsTest, LegacyConstantsArePinned) {
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kScheduler), 0x0ULL);
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kChurnTimers), 0xC0FFEEULL);
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kChurnGenerator),
            0xBEEFULL);
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kFaultInjection),
            0xFA11ULL);
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kSimFromWorkload),
            0x5eedULL);
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kBackgroundPaths),
            0xECECULL);
}

TEST(RngStreamsTest, ServeConstantsArePinned) {
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kServeArrivals), 0xA881ULL);
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kServeFlows), 0xF10AULL);
  EXPECT_EQ(static_cast<std::uint64_t>(RngStream::kServeFlowSource),
            0x51ABULL);
}

TEST(RngStreamsTest, AllStreamsAreDistinct) {
  const std::set<std::uint64_t> constants{
      static_cast<std::uint64_t>(RngStream::kScheduler),
      static_cast<std::uint64_t>(RngStream::kChurnTimers),
      static_cast<std::uint64_t>(RngStream::kChurnGenerator),
      static_cast<std::uint64_t>(RngStream::kFaultInjection),
      static_cast<std::uint64_t>(RngStream::kSimFromWorkload),
      static_cast<std::uint64_t>(RngStream::kBackgroundPaths),
      static_cast<std::uint64_t>(RngStream::kServeArrivals),
      static_cast<std::uint64_t>(RngStream::kServeFlows),
      static_cast<std::uint64_t>(RngStream::kServeFlowSource),
  };
  EXPECT_EQ(constants.size(), 9u);
}

TEST(RngStreamsTest, StreamSeedIsXor) {
  // kScheduler is the identity stream: the simulator historically seeded
  // its scheduler Rng with the raw seed.
  EXPECT_EQ(StreamSeed(12345, RngStream::kScheduler), 12345u);
  EXPECT_EQ(StreamSeed(0, RngStream::kChurnTimers), 0xC0FFEEULL);
  EXPECT_EQ(StreamSeed(42, RngStream::kFaultInjection), 42ULL ^ 0xFA11ULL);
  // XOR is an involution: deriving twice recovers the base seed.
  EXPECT_EQ(StreamSeed(StreamSeed(99, RngStream::kServeArrivals),
                       RngStream::kServeArrivals),
            99u);
}

}  // namespace
}  // namespace nu
