#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nu {
namespace {

TEST(SplitCsvLineTest, Simple) {
  const auto cells = SplitCsvLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(SplitCsvLineTest, QuotedComma) {
  const auto cells = SplitCsvLine("\"a,b\",c");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "c");
}

TEST(SplitCsvLineTest, DoubledQuote) {
  const auto cells = SplitCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "say \"hi\"");
}

TEST(SplitCsvLineTest, EmptyFields) {
  const auto cells = SplitCsvLine("a,,c,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[1], "");
  EXPECT_EQ(cells[3], "");
}

TEST(SplitCsvLineTest, StripsCarriageReturn) {
  const auto cells = SplitCsvLine("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(EscapeCsvFieldTest, PlainPassthrough) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
}

TEST(EscapeCsvFieldTest, QuotesSpecials) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("has \"q\""), "\"has \"\"q\"\"\"");
  EXPECT_EQ(EscapeCsvField(""), "\"\"");
}

TEST(EscapeCsvFieldTest, QuotesLineBreaks) {
  // An unquoted newline would split one logical record across two rows.
  EXPECT_EQ(EscapeCsvField("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(EscapeCsvField("cr\rhere"), "\"cr\rhere\"");
}

TEST(EscapeCsvFieldTest, BareSpacesNotQuoted) {
  EXPECT_EQ(EscapeCsvField("two words"), "two words");
  EXPECT_EQ(EscapeCsvField(" leading"), " leading");
}

TEST(EscapeCsvFieldTest, SplitRoundTripsEscapedFields) {
  // Join escaped fields into one physical line and split it back; every
  // field must survive, including embedded newlines inside quotes.
  const std::vector<std::string> fields{
      "plain", "a,b", "say \"hi\"", "multi\nline", "", "two words"};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ',';
    line += EscapeCsvField(fields[i]);
  }
  const auto cells = SplitCsvLine(line);
  ASSERT_EQ(cells.size(), fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(cells[i], fields[i]) << "field " << i;
  }
}

TEST(CsvWriterTest, RoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"x", "1,5", "z"});
  const auto cells = SplitCsvLine(out.str().substr(0, out.str().size() - 1));
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[1], "1,5");
}

TEST(ParseCsvTest, HeaderAndRows) {
  const CsvFile file = ParseCsv("a,b\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_EQ(file.header.size(), 2u);
  ASSERT_EQ(file.rows.size(), 2u);
  EXPECT_EQ(*file.ColumnIndex("b"), 1u);
  EXPECT_FALSE(file.ColumnIndex("missing").has_value());
}

TEST(ParseCsvTest, SkipsCommentsAndBlanks) {
  const CsvFile file = ParseCsv("# comment\n\n1,2\n", /*has_header=*/false);
  ASSERT_EQ(file.rows.size(), 1u);
  EXPECT_EQ(file.rows[0][0], "1");
}

}  // namespace
}  // namespace nu
