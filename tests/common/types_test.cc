#include "common/types.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace nu {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(StrongIdTest, ValueRoundTrip) {
  const FlowId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_GT(NodeId{3}, NodeId{2});
  EXPECT_LE(NodeId{2}, NodeId{2});
  EXPECT_GE(NodeId{2}, NodeId{2});
  EXPECT_NE(NodeId{1}, NodeId{2});
}

TEST(StrongIdTest, DistinctTypesDoNotMix) {
  // Compile-time property: NodeId and LinkId are unrelated types. This test
  // documents it; the static_asserts are the actual check.
  static_assert(!std::is_convertible_v<NodeId, LinkId>);
  static_assert(!std::is_convertible_v<FlowId, EventId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);
  SUCCEED();
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<FlowId> set;
  set.insert(FlowId{1});
  set.insert(FlowId{2});
  set.insert(FlowId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, StreamOutput) {
  std::ostringstream os;
  os << NodeId{7} << " " << NodeId::invalid();
  EXPECT_EQ(os.str(), "7 <invalid>");
}

TEST(ApproxCompareTest, Tolerances) {
  EXPECT_TRUE(ApproxLe(1.0, 1.0));
  EXPECT_TRUE(ApproxLe(1.0 + 0.5 * kBandwidthEpsilon, 1.0));
  EXPECT_FALSE(ApproxLe(1.0 + 2 * kBandwidthEpsilon, 1.0));
  EXPECT_TRUE(ApproxGe(1.0, 1.0 + 0.5 * kBandwidthEpsilon));
  EXPECT_TRUE(ApproxEq(1.0, 1.0 + 0.5 * kBandwidthEpsilon));
  EXPECT_FALSE(ApproxEq(1.0, 1.1));
}

}  // namespace
}  // namespace nu
