#include "common/check.h"

#include <gtest/gtest.h>

namespace nu {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  NU_CHECK(1 + 1 == 2);
  NU_EXPECTS(true);
  NU_ENSURES(2 > 1);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(NU_CHECK(false), "NU_CHECK failed: false");
}

TEST(CheckDeathTest, FailingPreconditionNamesItself) {
  EXPECT_DEATH(NU_EXPECTS(1 == 2), "Precondition failed: 1 == 2");
}

TEST(CheckDeathTest, FailingPostconditionNamesItself) {
  EXPECT_DEATH(NU_ENSURES(0 > 1), "Postcondition failed: 0 > 1");
}

TEST(CheckTest, ExpressionEvaluatedExactlyOnce) {
  int count = 0;
  NU_CHECK(++count == 1);
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace nu
