#include "common/retry.h"

#include <gtest/gtest.h>

namespace nu {
namespace {

TEST(RetryPolicyTest, NominalDelayDoublesUntilCapped) {
  RetryPolicy policy;  // base 0.05, factor 2, max 2.0
  EXPECT_DOUBLE_EQ(policy.NominalDelay(1), 0.05);
  EXPECT_DOUBLE_EQ(policy.NominalDelay(2), 0.10);
  EXPECT_DOUBLE_EQ(policy.NominalDelay(3), 0.20);
  EXPECT_DOUBLE_EQ(policy.NominalDelay(4), 0.40);
  EXPECT_DOUBLE_EQ(policy.NominalDelay(5), 0.80);
  EXPECT_DOUBLE_EQ(policy.NominalDelay(6), 1.60);
  // 0.05 * 2^6 = 3.2 would exceed the cap.
  EXPECT_DOUBLE_EQ(policy.NominalDelay(7), 2.0);
  EXPECT_DOUBLE_EQ(policy.NominalDelay(20), 2.0);
}

TEST(RetryPolicyTest, AllowsRetryAfterCountsAttemptsNotFailures) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  EXPECT_TRUE(policy.AllowsRetryAfter(1));
  EXPECT_TRUE(policy.AllowsRetryAfter(3));
  EXPECT_FALSE(policy.AllowsRetryAfter(4));
  EXPECT_FALSE(policy.AllowsRetryAfter(5));

  policy.max_attempts = 1;  // no retries at all
  EXPECT_FALSE(policy.AllowsRetryAfter(1));
}

TEST(RetryPolicyTest, JitterEnvelopeIsTightAroundNominal) {
  RetryPolicy policy;
  policy.jitter_frac = 0.25;
  for (std::size_t failure = 1; failure <= 8; ++failure) {
    const Seconds nominal = policy.NominalDelay(failure);
    EXPECT_DOUBLE_EQ(policy.MinDelay(failure), nominal * 0.75);
    EXPECT_DOUBLE_EQ(policy.MaxDelay(failure), nominal * 1.25);
  }
}

TEST(RetryPolicyTest, BackoffDelayStaysInsideEnvelope) {
  RetryPolicy policy;
  policy.jitter_frac = 0.5;
  Rng rng(99);
  for (std::size_t failure = 1; failure <= 6; ++failure) {
    for (int draw = 0; draw < 200; ++draw) {
      const Seconds d = policy.BackoffDelay(failure, rng);
      EXPECT_GE(d, policy.MinDelay(failure));
      EXPECT_LT(d, policy.MaxDelay(failure));
    }
  }
}

TEST(RetryPolicyTest, ZeroJitterIsExactlyNominal) {
  RetryPolicy policy;
  policy.jitter_frac = 0.0;
  Rng rng(7);
  for (std::size_t failure = 1; failure <= 10; ++failure) {
    EXPECT_DOUBLE_EQ(policy.BackoffDelay(failure, rng),
                     policy.NominalDelay(failure));
  }
}

TEST(RetryPolicyTest, BackoffDelayDeterministicPerSeed) {
  RetryPolicy policy;
  Rng a(1234);
  Rng b(1234);
  for (std::size_t failure = 1; failure <= 12; ++failure) {
    EXPECT_DOUBLE_EQ(policy.BackoffDelay(failure, a),
                     policy.BackoffDelay(failure, b));
  }
}

TEST(RetryPolicyTest, ExhaustionScheduleSumsBoundedDelays) {
  // Max total backoff of a fully exhausted policy: sum of the per-failure
  // envelopes — what an aborting install batch can wait at most.
  RetryPolicy policy;
  policy.max_attempts = 4;
  Rng rng(5);
  Seconds total = 0.0;
  Seconds bound = 0.0;
  for (std::size_t failure = 1; policy.AllowsRetryAfter(failure); ++failure) {
    total += policy.BackoffDelay(failure, rng);
    bound += policy.MaxDelay(failure);
  }
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, bound);
}

}  // namespace
}  // namespace nu
