#include "common/table.h"

#include <gtest/gtest.h>

namespace nu {
namespace {

TEST(AsciiTableTest, RendersHeadersAndRows) {
  AsciiTable table({"name", "value"});
  table.Row().Cell("alpha").Cell(4);
  table.Row().Cell("ect").Cell(1.2345, 2);
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"a", "b"});
  table.Row().Cell("long-cell-content").Cell("x");
  table.Row().Cell("s").Cell("y");
  const std::string out = table.Render();
  // Every rendered line has the same length.
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    if (line_len == 0) {
      line_len = next - pos;
    } else {
      EXPECT_EQ(next - pos, line_len);
    }
    pos = next + 1;
  }
}

TEST(AsciiTableTest, AddRowChecksArity) {
  AsciiTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_DEATH(table.AddRow({"only-one"}), "Precondition");
}

TEST(AsciiTableTest, CellBeyondHeaderCountDies) {
  AsciiTable table({"a"});
  table.Row().Cell("1");
  EXPECT_DEATH(table.Cell("2"), "Precondition");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace nu
