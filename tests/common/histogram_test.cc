#include "common/histogram.h"

#include <gtest/gtest.h>

namespace nu {
namespace {

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);   // underflow
  h.Add(0.0);    // bucket 0
  h.Add(1.9);    // bucket 0
  h.Add(2.0);    // bucket 1
  h.Add(9.99);   // bucket 4
  h.Add(10.0);   // overflow
  h.Add(100.0);  // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(HistogramTest, CumulativeFraction) {
  Histogram h(0.0, 4.0, 4);
  for (double v : {0.5, 1.5, 2.5, 3.5}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(3), 1.0);
}

TEST(HistogramTest, RenderMentionsCounts) {
  Histogram h(0.0, 10.0, 2);
  h.Add(1.0);
  h.Add(1.0);
  const std::string out = h.Render();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(LogHistogramTest, GeometricBuckets) {
  LogHistogram h(1.0, 2.0, 10);
  h.Add(1.0);   // [1, 2) -> bucket 0
  h.Add(3.0);   // [2, 4) -> bucket 1
  h.Add(5.0);   // [4, 8) -> bucket 2
  h.Add(0.5);   // underflow
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 16.0);
}

TEST(LogHistogramTest, LastBucketAbsorbsHuge) {
  LogHistogram h(1.0, 2.0, 4);
  h.Add(1e12);
  EXPECT_EQ(h.count(3), 1u);
}

}  // namespace
}  // namespace nu
