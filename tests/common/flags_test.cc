#include "common/flags.h"

#include <gtest/gtest.h>

namespace nu {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(s.data());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const Flags flags = ParseArgs({"--events=30", "--utilization=0.7"});
  EXPECT_EQ(flags.GetUint("events", 0), 30u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("utilization", 0.0), 0.7);
}

TEST(FlagsTest, SpaceForm) {
  const Flags flags = ParseArgs({"--events", "30", "--name", "lmtf"});
  EXPECT_EQ(flags.GetInt("events", 0), 30);
  EXPECT_EQ(flags.GetString("name", ""), "lmtf");
}

TEST(FlagsTest, BareBoolean) {
  const Flags flags = ParseArgs({"--csv", "--flow-level"});
  EXPECT_TRUE(flags.GetBool("csv", false));
  EXPECT_TRUE(flags.GetBool("flow-level", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  const Flags flags = ParseArgs({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetUint("x", 42u), 42u);
  EXPECT_EQ(flags.GetString("y", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("z", 1.5), 1.5);
}

TEST(FlagsTest, Positionals) {
  const Flags flags = ParseArgs({"first", "--k=2", "second"});
  ASSERT_EQ(flags.positionals().size(), 2u);
  EXPECT_EQ(flags.positionals()[0], "first");
  EXPECT_EQ(flags.positionals()[1], "second");
}

TEST(FlagsTest, HasMarksQueried) {
  const Flags flags = ParseArgs({"--known=1", "--typo=2"});
  EXPECT_TRUE(flags.Has("known"));
  const auto unqueried = flags.UnqueriedFlags();
  ASSERT_EQ(unqueried.size(), 1u);
  EXPECT_EQ(unqueried[0], "typo");
}

TEST(FlagsTest, UnqueriedEmptyAfterAllRead) {
  const Flags flags = ParseArgs({"--a=1", "--b=2"});
  (void)flags.GetInt("a", 0);
  (void)flags.GetInt("b", 0);
  EXPECT_TRUE(flags.UnqueriedFlags().empty());
}

TEST(FlagsDeathTest, UnparsableNumberDies) {
  const Flags flags = ParseArgs({"--n=abc"});
  EXPECT_DEATH((void)flags.GetInt("n", 0), "NU_CHECK");
}

TEST(FlagsDeathTest, UnparsableBoolDies) {
  const Flags flags = ParseArgs({"--b=maybe"});
  EXPECT_DEATH((void)flags.GetBool("b", false), "NU_CHECK");
}

}  // namespace
}  // namespace nu
