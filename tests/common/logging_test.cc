#include "common/logging.h"

#include <gtest/gtest.h>

namespace nu {
namespace {

TEST(LoggingTest, ParseLevels) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("bogus"), LogLevel::kWarn);
}

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, BelowThresholdIsCheap) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  NU_LOG_DEBUG << "value " << expensive();
  // The macro short-circuits: the stream expression never runs.
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

TEST(LoggingTest, AtThresholdEmits) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  NU_LOG_ERROR << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

}  // namespace
}  // namespace nu
