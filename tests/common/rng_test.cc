#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace nu {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(10, 100);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 100);
  }
}

TEST(RngTest, UniformIntHitsAllValuesOfSmallRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, Uniform01InUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(5.0, 1.5), 5.0);
  }
}

TEST(RngTest, ParetoMedian) {
  // Median of Pareto(scale, shape) is scale * 2^(1/shape).
  Rng rng(29);
  std::vector<double> samples;
  for (int i = 0; i < 100001; ++i) samples.push_back(rng.Pareto(1.0, 2.0));
  std::nth_element(samples.begin(), samples.begin() + 50000, samples.end());
  EXPECT_NEAR(samples[50000], std::sqrt(2.0), 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, IndexInRange) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(7), 7u);
  }
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fa.Next(), fb.Next());
  }
  // Parent stream continues deterministically too.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 5);
    ASSERT_EQ(sample.size(), 5u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementWholePopulation) {
  Rng rng(47);
  const auto sample = rng.SampleWithoutReplacement(5, 10);
  ASSERT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  // Each element of [0,10) should appear in a 3-sample with p = 3/10.
  Rng rng(53);
  std::vector<int> counts(10, 0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t s : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[s];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, StateRoundTripResumesStream) {
  Rng rng(67);
  // Burn an odd mix of draws so a Box-Muller spare is pending.
  for (int i = 0; i < 17; ++i) rng.Next();
  (void)rng.Normal();  // leaves has_spare_normal set
  const Rng::State mid = rng.GetState();
  EXPECT_TRUE(mid.has_spare_normal);

  std::vector<double> expect;
  for (int i = 0; i < 64; ++i) expect.push_back(rng.Normal(1.0, 2.0));
  for (int i = 0; i < 64; ++i) expect.push_back(rng.Uniform01());

  Rng restored(0);  // different seed; SetState must fully overwrite it
  restored.SetState(mid);
  EXPECT_EQ(restored.GetState(), mid);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(restored.Normal(1.0, 2.0), expect[i]) << "draw " << i;
  }
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(restored.Uniform01(), expect[64 + i]) << "draw " << i;
  }
}

TEST(RngTest, StateCaptureDoesNotPerturbStream) {
  Rng a(71);
  Rng b(71);
  for (int i = 0; i < 10; ++i) {
    (void)a.GetState();
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(61);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.5), 0.0);
  }
}

}  // namespace
}  // namespace nu
