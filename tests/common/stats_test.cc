#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nu {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(42.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.mean(), 42.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 42.0);
  EXPECT_EQ(rs.max(), 42.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1: sum of squared devs = 32, / 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SamplesTest, EmptyDefaults) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
}

TEST(SamplesTest, MeanAndExtremes) {
  Samples s({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(SamplesTest, PercentileInterpolates) {
  Samples s({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.125), 15.0);  // halfway between 10 and 20
}

TEST(SamplesTest, PercentileAfterAdd) {
  Samples s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 5.0);
  s.Add(15.0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
}

TEST(SamplesTest, StddevMatchesRunningStats) {
  Samples s({1.0, 2.0, 3.0, 4.0});
  RunningStats rs;
  for (double v : {1.0, 2.0, 3.0, 4.0}) rs.Add(v);
  EXPECT_NEAR(s.stddev(), rs.stddev(), 1e-12);
}

TEST(ReductionTest, Basic) {
  EXPECT_DOUBLE_EQ(ReductionVs(10.0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(ReductionVs(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(ReductionVs(10.0, 12.0), -0.2);
  EXPECT_DOUBLE_EQ(ReductionVs(0.0, 5.0), 0.0);
}

TEST(PercentStringTest, Formats) {
  EXPECT_EQ(PercentString(0.753), "75.3%");
  EXPECT_EQ(PercentString(0.5, 0), "50%");
  EXPECT_EQ(PercentString(-0.1, 1), "-10.0%");
}

}  // namespace
}  // namespace nu
