// Arena allocator unit tests plus the steady-state zero-allocation
// assertion for the round loop's scoring/admission hot path (the PR-5
// span-allocation guard extended to the batched scorer): once the arenas
// and path caches are warm, a full quick-probe scoring sweep — the per-round
// inner loop of each scheduler shape (fifo's head-of-queue admission check,
// lmtf's alpha+1 candidate scoring, p-lmtf's wider sweep) — must not touch
// the heap at all.
//
// The counting operator new/delete below replaces the global ones for this
// whole test binary, which is why these tests live in their own binary
// (test_arena) rather than inside test_common.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/admission.h"
#include "net/network.h"
#include "sched/select.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/cost_estimate.h"
#include "update/update_event.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace nu {
namespace {

std::size_t AllocCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(ArenaTest, ValuesSurviveAndAlign) {
  Arena arena(256);
  double* d = arena.AllocArray<double>(8);
  std::uint8_t* b = arena.AllocArray<std::uint8_t>(3);
  double* d2 = arena.AllocArray<double>(4);
  for (int i = 0; i < 8; ++i) d[i] = i * 1.5;
  for (int i = 0; i < 3; ++i) b[i] = static_cast<std::uint8_t>(i);
  for (int i = 0; i < 4; ++i) d2[i] = -i;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d2) % alignof(double), 0u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(d[i], i * 1.5);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(b[i], static_cast<std::uint8_t>(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d2[i], static_cast<double>(-i));
}

TEST(ArenaTest, OversizeRequestGetsDedicatedChunk) {
  Arena arena(64);
  double* big = arena.AllocArray<double>(1000);  // 8000 bytes >> 64
  big[0] = 1.0;
  big[999] = 2.0;
  EXPECT_EQ(big[0], 1.0);
  EXPECT_EQ(big[999], 2.0);
  EXPECT_GE(arena.bytes_in_use(), 8000u);
}

TEST(ArenaTest, ResetReusesChunksWithoutHeapTraffic) {
  Arena arena(1024);
  // Warm: a mixed allocation pattern across several chunks.
  auto do_round = [&arena] {
    arena.Reset();
    double* a = arena.AllocArray<double>(300);   // 2400 B: chunk growth
    std::uint32_t* c = arena.AllocArray<std::uint32_t>(64);
    unsigned char* m = arena.AllocArray<unsigned char>(100);
    a[0] = 1.0;
    c[0] = 2;
    m[0] = 3;
  };
  do_round();
  const std::size_t chunks = arena.chunk_count();
  const std::size_t high_water = arena.high_water_bytes();
  EXPECT_GT(chunks, 0u);
  EXPECT_GT(high_water, 0u);

  const std::size_t before = AllocCount();
  for (int round = 0; round < 100; ++round) do_round();
  EXPECT_EQ(AllocCount(), before) << "warmed arena touched the heap";
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.high_water_bytes(), high_water);
}

TEST(ArenaTest, CounterSeesVectorAllocation) {
  // Positive control: the counter must tick for real heap traffic,
  // proving the zero readings elsewhere are meaningful.
  const std::size_t before = AllocCount();
  std::vector<double> v(4096, 1.0);
  EXPECT_GT(AllocCount(), before);
  EXPECT_EQ(v[0], 1.0);
}

// --- Steady-state round-loop assertion ----------------------------------

struct RoundLoopFixture {
  RoundLoopFixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {
    // Background congestion: saturate a few fabric links so scoring
    // exercises the deficit paths, not just the all-fits early outs.
    for (std::size_t i = 0; i < 12; ++i) {
      const NodeId src = ft.host(i % ft.host_count());
      const NodeId dst = ft.host((i + 3) % ft.host_count());
      const auto& paths = provider.Paths(src, dst);
      flow::Flow f;
      f.src = src;
      f.dst = dst;
      f.demand = 60.0;
      f.duration = 100.0;
      network.ForcePlace(std::move(f), paths[i % paths.size()]);
    }
    // The candidate queue a scheduler scores each round.
    for (std::size_t e = 0; e < 6; ++e) {
      std::vector<flow::Flow> flows;
      for (std::size_t j = 0; j < 3; ++j) {
        flow::Flow f;
        f.src = ft.host((e + j) % ft.host_count());
        f.dst = ft.host((e + j + 7) % ft.host_count());
        f.demand = 50.0;
        f.duration = 5.0;
        flows.push_back(f);
      }
      events.emplace_back(EventId{e + 1}, 0.0, std::move(flows));
    }
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
  std::vector<update::UpdateEvent> events;
};

TEST(RoundLoopAllocTest, SteadyStateScoringSweepsAreAllocationFree) {
  RoundLoopFixture fx;
  Arena score_arena;

  // The round shapes of the three schedulers' inner loops: fifo checks
  // head-of-queue admission only (alpha = 0); lmtf scores alpha+1
  // candidates; p-lmtf sweeps a wider window. (Plan EXECUTION materializes
  // plans and timeline entries and legitimately allocates; the assertion
  // covers the per-round scoring/admission loop, which dominates probe
  // count — see BENCH_probe.json.)
  struct Shape {
    const char* name;
    std::size_t alpha;
  };
  const Shape shapes[] = {{"fifo", 0}, {"lmtf", 3}, {"p-lmtf", 5}};

  std::vector<Mbps> costs(fx.events.size(), 0.0);
  std::vector<std::size_t> candidates(fx.events.size(), 0);
  for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;

  // Warm-up round: arenas grow their chunk lists, the provider fills its
  // path caches, thread-local admission scratch comes alive.
  for (const update::UpdateEvent& event : fx.events) {
    (void)update::QuickCostScore(fx.network, fx.provider, event, score_arena);
    for (const flow::Flow& f : event.flows()) {
      (void)net::FindFeasiblePathPtr(fx.network, fx.provider, f.src, f.dst,
                                     f.demand);
      (void)net::CanAdmit(fx.network, fx.provider, f.src, f.dst, f.demand);
    }
  }

  for (const Shape& shape : shapes) {
    const std::size_t before = AllocCount();
    std::size_t winner_accum = 0;
    for (int round = 0; round < 50; ++round) {
      if (shape.alpha == 0) {
        // fifo: head-of-queue admission probe per flow.
        for (const flow::Flow& f : fx.events.front().flows()) {
          if (net::FindFeasiblePathPtr(fx.network, fx.provider, f.src, f.dst,
                                       f.demand) != nullptr) {
            ++winner_accum;
          }
        }
        continue;
      }
      // lmtf / p-lmtf: score the alpha+1 window, pick the cheapest with
      // the shared strict-< argmin.
      const std::size_t window = std::min(shape.alpha + 1, fx.events.size());
      for (std::size_t i = 0; i < window; ++i) {
        costs[i] = update::QuickCostScore(fx.network, fx.provider,
                                          fx.events[i], score_arena);
      }
      winner_accum += sched::CheapestCandidate(
          std::span<const std::size_t>(candidates.data(), window),
          std::span<const Mbps>(costs.data(), window));
    }
    const std::size_t after = AllocCount();
    EXPECT_EQ(after, before)
        << shape.name << " steady-state scoring sweep allocated";
  }
}

}  // namespace
}  // namespace nu
