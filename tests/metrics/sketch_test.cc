// The streaming-percentile sketch behind serve-mode SLO telemetry: exact
// small-N agreement with metrics::Samples, bounded relative error after the
// bucket migration, bit-determinism, and snapshot round-tripping.
#include "metrics/sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace nu::metrics {
namespace {

const std::vector<double> kQuantiles{0.0,  0.1,  0.25, 0.5, 0.75,
                                     0.9,  0.95, 0.99, 0.999, 1.0};

TEST(PercentileSketchTest, EmptyAndSingle) {
  PercentileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  sketch.Add(3.5);
  EXPECT_EQ(sketch.count(), 1u);
  for (const double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), 3.5) << "q=" << q;
  }
}

TEST(PercentileSketchTest, ExactPhaseMatchesSamplesBitwise) {
  // Below exact_capacity the sketch stores values verbatim and must agree
  // EXACTLY (same interpolation) with the all-values Samples implementation.
  Rng rng(7);
  PercentileSketch sketch;
  Samples samples;
  for (std::size_t i = 0; i < 200; ++i) {
    const double v = rng.Uniform(0.0, 50.0);
    sketch.Add(v);
    samples.Add(v);
  }
  ASSERT_FALSE(sketch.bucketed());
  for (const double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), samples.Percentile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(sketch.min(), samples.min());
  EXPECT_DOUBLE_EQ(sketch.max(), samples.max());
  EXPECT_DOUBLE_EQ(sketch.mean(), samples.mean());
}

TEST(PercentileSketchTest, BoundedRelativeErrorOnMillionSamples) {
  // After migration to log-spaced buckets, the relative quantile error is
  // bounded by sqrt(growth) - 1. Check against the exact answer on a
  // million-value stream spanning four orders of magnitude.
  Rng rng(11);
  PercentileSketch sketch;
  Samples samples;
  for (std::size_t i = 0; i < 1'000'000; ++i) {
    // Log-uniform over [1e-2, 1e2]: exercises many buckets.
    const double v = std::pow(10.0, rng.Uniform(-2.0, 2.0));
    sketch.Add(v);
    samples.Add(v);
  }
  ASSERT_TRUE(sketch.bucketed());
  const double bound = std::sqrt(sketch.options().growth) - 1.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double exact = samples.Percentile(q);
    const double approx = sketch.Quantile(q);
    EXPECT_LE(std::abs(approx - exact) / exact, bound) << "q=" << q;
  }
  // Extremes report the true observed min/max, not bucket midpoints.
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), samples.min());
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), samples.max());
}

TEST(PercentileSketchTest, DeterministicAcrossInstances) {
  // No randomness anywhere: the same value sequence gives bit-identical
  // answers from independently constructed sketches.
  Rng rng_a(13);
  Rng rng_b(13);
  PercentileSketch a;
  PercentileSketch b;
  for (std::size_t i = 0; i < 5000; ++i) {
    a.Add(rng_a.Uniform(0.0, 100.0));
    b.Add(rng_b.Uniform(0.0, 100.0));
  }
  for (const double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(PercentileSketchTest, NegativeValuesClampToZero) {
  PercentileSketch sketch;
  sketch.Add(-1.0);
  sketch.Add(2.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 0.0);
}

void RoundTripsBitwise(const PercentileSketch& sketch) {
  BinWriter w;
  sketch.SaveState(w);
  const std::string bytes = w.buffer();

  PercentileSketch restored(sketch.options());
  BinReader r(bytes);
  restored.LoadState(r);

  EXPECT_EQ(restored.count(), sketch.count());
  EXPECT_EQ(restored.bucketed(), sketch.bucketed());
  for (const double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(restored.Quantile(q), sketch.Quantile(q)) << "q=" << q;
  }
  // Saving the restored sketch reproduces the same bytes: the round trip
  // is lossless, not merely quantile-equivalent.
  BinWriter w2;
  restored.SaveState(w2);
  EXPECT_EQ(w2.buffer(), bytes);
}

TEST(PercentileSketchTest, SaveLoadRoundTripExactPhase) {
  Rng rng(17);
  PercentileSketch sketch;
  for (std::size_t i = 0; i < 100; ++i) sketch.Add(rng.Uniform(0.0, 10.0));
  ASSERT_FALSE(sketch.bucketed());
  RoundTripsBitwise(sketch);
}

TEST(PercentileSketchTest, SaveLoadRoundTripBucketedPhase) {
  Rng rng(19);
  PercentileSketch sketch;
  for (std::size_t i = 0; i < 10'000; ++i) {
    sketch.Add(rng.Uniform(0.0, 1000.0));
  }
  ASSERT_TRUE(sketch.bucketed());
  RoundTripsBitwise(sketch);
}

TEST(PercentileSketchTest, RestoredSketchContinuesIdentically) {
  // Snapshot mid-stream, keep feeding both the original and the restored
  // copy, and require identical answers — the property simulator snapshots
  // rely on.
  Rng rng(23);
  PercentileSketch original;
  for (std::size_t i = 0; i < 400; ++i) {
    original.Add(rng.Uniform(0.0, 60.0));
  }
  BinWriter w;
  original.SaveState(w);
  PercentileSketch restored(original.options());
  BinReader r(w.buffer());
  restored.LoadState(r);

  Rng tail(29);
  for (std::size_t i = 0; i < 400; ++i) {
    const double v = tail.Uniform(0.0, 60.0);
    original.Add(v);
    restored.Add(v);
  }
  for (const double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(restored.Quantile(q), original.Quantile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace nu::metrics
