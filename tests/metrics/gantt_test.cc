#include "metrics/gantt.h"

#include <gtest/gtest.h>

namespace nu::metrics {
namespace {

std::vector<EventRecord> TwoEvents() {
  std::vector<EventRecord> records;
  EventRecord a;
  a.event = EventId{0};
  a.arrival = 0.0;
  a.exec_start = 2.0;
  a.completion = 5.0;
  records.push_back(a);
  EventRecord b;
  b.event = EventId{1};
  b.arrival = 1.0;
  b.exec_start = 6.0;
  b.completion = 10.0;
  records.push_back(b);
  return records;
}

TEST(GanttTest, RendersOneRowPerEventPlusAxis) {
  const auto records = TwoEvents();
  const std::string chart = RenderGantt(records);
  std::size_t lines = 0;
  for (char c : chart) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);  // two rows + axis
  EXPECT_NE(chart.find("ev   0"), std::string::npos);
  EXPECT_NE(chart.find("ev   1"), std::string::npos);
  EXPECT_NE(chart.find("time axis"), std::string::npos);
}

TEST(GanttTest, WaitBeforeRun) {
  const auto records = TwoEvents();
  GanttOptions options;
  options.width = 20;
  const std::string chart = RenderGantt(records, options);
  // Row 0: arrival at t=0 -> '.' from column 0; run 2..5 of 10s span.
  const std::size_t row0 = chart.find('|') + 1;
  EXPECT_EQ(chart[row0], '.');
  // Somewhere in row 0 there must be a '#' after the dots.
  EXPECT_NE(chart.find('#'), std::string::npos);
  // Dots precede hashes in each row.
  const std::size_t first_hash = chart.find('#');
  const std::size_t first_dot = chart.find('.');
  EXPECT_LT(first_dot, first_hash);
}

TEST(GanttTest, SortByExecutionStart) {
  // Event 1 arrives later but executes... make event 1 execute first.
  std::vector<EventRecord> records = TwoEvents();
  records[0].exec_start = 7.0;
  records[0].completion = 9.0;
  records[1].exec_start = 2.0;
  records[1].completion = 4.0;
  GanttOptions options;
  options.sort_by_arrival = false;
  const std::string chart = RenderGantt(records, options);
  // Event 1 (earlier exec) listed first.
  EXPECT_LT(chart.find("ev   1"), chart.find("ev   0"));
}

TEST(GanttTest, ZeroDurationEventStillVisible) {
  std::vector<EventRecord> records;
  EventRecord r;
  r.event = EventId{5};
  r.arrival = 0.0;
  r.exec_start = 0.0;
  r.completion = 0.0;
  records.push_back(r);
  const std::string chart = RenderGantt(records);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(GanttDeathTest, EmptyRecordsDie) {
  EXPECT_DEATH((void)RenderGantt({}), "Precondition");
}

}  // namespace
}  // namespace nu::metrics
