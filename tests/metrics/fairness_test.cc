#include "metrics/fairness.h"

#include <gtest/gtest.h>

namespace nu::metrics {
namespace {

/// Records with given arrival order and execution order (by index).
std::vector<EventRecord> MakeRecords(
    const std::vector<double>& arrivals,
    const std::vector<double>& exec_starts,
    const std::vector<double>& completions = {}) {
  std::vector<EventRecord> records;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EventRecord r;
    r.event = EventId{i};
    r.arrival = arrivals[i];
    r.exec_start = exec_starts[i];
    r.completion = completions.empty() ? exec_starts[i] + 1.0 : completions[i];
    r.flow_count = 1;
    records.push_back(r);
  }
  return records;
}

TEST(JainIndexTest, AllEqualIsOne) {
  const std::vector<double> v{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(JainIndex(v), 1.0);
}

TEST(JainIndexTest, SingleHogApproachesOneOverN) {
  const std::vector<double> v{10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainIndex(v), 0.25);
}

TEST(JainIndexTest, EmptyAndZeroAreOne) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainIndex(zeros), 1.0);
}

TEST(JainIndexTest, KnownValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_NEAR(JainIndex(v), 36.0 / 42.0, 1e-12);
}

TEST(ComputeFairnessTest, FifoOrderIsPerfect) {
  const auto records =
      MakeRecords({0.0, 1.0, 2.0, 3.0}, {10.0, 20.0, 30.0, 40.0});
  const FairnessReport report = ComputeFairness(records);
  EXPECT_DOUBLE_EQ(report.order_violation, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_displacement, 0.0);
  EXPECT_EQ(report.worst_pushback, 0u);
  EXPECT_DOUBLE_EQ(report.OrderFairness(), 1.0);
}

TEST(ComputeFairnessTest, FullReversalIsMaximallyUnfair) {
  const auto records =
      MakeRecords({0.0, 1.0, 2.0, 3.0}, {40.0, 30.0, 20.0, 10.0});
  const FairnessReport report = ComputeFairness(records);
  EXPECT_DOUBLE_EQ(report.order_violation, 1.0);
  EXPECT_EQ(report.worst_pushback, 3u);
  EXPECT_DOUBLE_EQ(report.mean_displacement, 2.0);  // (3+1+1+3)/4
}

TEST(ComputeFairnessTest, SingleSwap) {
  // Events 0 and 1 swap execution order; 2, 3 in place.
  const auto records =
      MakeRecords({0.0, 1.0, 2.0, 3.0}, {20.0, 10.0, 30.0, 40.0});
  const FairnessReport report = ComputeFairness(records);
  EXPECT_DOUBLE_EQ(report.order_violation, 1.0 / 6.0);  // 1 of 6 pairs
  EXPECT_EQ(report.worst_pushback, 1u);
  EXPECT_DOUBLE_EQ(report.mean_displacement, 0.5);
}

TEST(ComputeFairnessTest, TiedArrivalsUseQueueOrder) {
  // All arrive at t=0 (the paper's setup): queue order is the fairness
  // baseline.
  const auto records =
      MakeRecords({0.0, 0.0, 0.0}, {10.0, 30.0, 20.0});
  const FairnessReport report = ComputeFairness(records);
  EXPECT_DOUBLE_EQ(report.order_violation, 1.0 / 3.0);  // pair (1,2) swapped
}

TEST(ComputeFairnessTest, FewerThanTwoEventsIsTriviallyFair) {
  const auto one = MakeRecords({0.0}, {5.0});
  const FairnessReport report = ComputeFairness(one);
  EXPECT_DOUBLE_EQ(report.order_violation, 0.0);
  EXPECT_DOUBLE_EQ(report.jain_queuing_delay, 1.0);
}

TEST(ComputeFairnessTest, JainReflectsDelaySkew) {
  // Equal delays -> 1; one event starving -> lower.
  const auto equal = MakeRecords({0.0, 0.0, 0.0}, {5.0, 5.0, 5.0});
  const auto skew = MakeRecords({0.0, 0.0, 0.0}, {0.0, 0.0, 100.0});
  EXPECT_GT(ComputeFairness(equal).jain_queuing_delay,
            ComputeFairness(skew).jain_queuing_delay);
}

}  // namespace
}  // namespace nu::metrics
