// Coverage guard for the Report field-descriptor table: every Report
// member must have exactly one descriptor in kReportFields, so the CSV
// exporter and MeanReport can never silently drop a field. Report is (by
// construction) a flat struct of 8-byte members, so full coverage is
// checkable: the descriptors' member offsets must tile sizeof(Report)
// exactly. Adding a member without a descriptor grows the struct past the
// tiled size and fails OffsetsTileStruct.
#include "metrics/report_fields.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace nu::metrics {
namespace {

std::size_t OffsetOf(const ReportField& field) {
  Report probe;
  const char* base = reinterpret_cast<const char*>(&probe);
  const char* member =
      field.counter != nullptr
          ? reinterpret_cast<const char*>(&(probe.*field.counter))
          : reinterpret_cast<const char*>(&(probe.*field.real));
  return static_cast<std::size_t>(member - base);
}

TEST(ReportFieldsTest, EveryDescriptorNamesExactlyOneMember) {
  std::set<std::string> names;
  for (const ReportField& field : kReportFields) {
    EXPECT_NE(field.csv_name, nullptr);
    EXPECT_TRUE(names.insert(field.csv_name).second)
        << "duplicate csv column " << field.csv_name;
    // Exactly one of the member pointers is set.
    EXPECT_NE(field.counter == nullptr, field.real == nullptr)
        << field.csv_name;
  }
}

TEST(ReportFieldsTest, OffsetsTileStruct) {
  // Both member types are 8 bytes; if that ever changes the tiling
  // arithmetic below needs rethinking, so pin it.
  static_assert(sizeof(std::size_t) == 8);
  static_assert(sizeof(double) == 8);

  std::set<std::size_t> offsets;
  for (const ReportField& field : kReportFields) {
    EXPECT_TRUE(offsets.insert(OffsetOf(field)).second)
        << "two descriptors point at the same member: " << field.csv_name;
  }
  // Descriptors must cover offsets 0, 8, 16, ... up to sizeof(Report) with
  // no gap: a Report member without a descriptor leaves a hole (or pushes
  // sizeof(Report) past the tiled size).
  ASSERT_EQ(offsets.size(), kReportFields.size());
  EXPECT_EQ(kReportFields.size() * 8, sizeof(Report))
      << "Report has a member with no descriptor in kReportFields";
  std::size_t expected = 0;
  for (std::size_t offset : offsets) {
    EXPECT_EQ(offset, expected) << "descriptor coverage gap";
    expected += 8;
  }
}

TEST(ReportFieldsTest, ColumnOrderMatchesDeclarationOrder) {
  // The CSV schema promises columns in Report declaration order; the table
  // must list fields by ascending member offset.
  std::size_t previous = 0;
  bool first = true;
  for (const ReportField& field : kReportFields) {
    const std::size_t offset = OffsetOf(field);
    if (!first) {
      EXPECT_GT(offset, previous) << field.csv_name;
    }
    previous = offset;
    first = false;
  }
}

}  // namespace
}  // namespace nu::metrics
