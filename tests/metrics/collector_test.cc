#include "metrics/collector.h"

#include <gtest/gtest.h>

namespace nu::metrics {
namespace {

TEST(CollectorTest, LifecycleProducesRecord) {
  Collector c;
  c.OnArrival(EventId{1}, 0.0, 5);
  c.OnExecutionStart(EventId{1}, 2.0);
  c.OnCost(EventId{1}, 30.0);
  c.OnCost(EventId{1}, 20.0);
  c.OnDeferredFlow(EventId{1});
  c.OnCompletion(EventId{1}, 10.0);

  ASSERT_EQ(c.records().size(), 1u);
  const EventRecord& r = c.records()[0];
  EXPECT_DOUBLE_EQ(r.QueuingDelay(), 2.0);
  EXPECT_DOUBLE_EQ(r.Ect(), 10.0);
  EXPECT_DOUBLE_EQ(r.cost, 50.0);
  EXPECT_EQ(r.flow_count, 5u);
  EXPECT_EQ(r.deferred_flows, 1u);
  EXPECT_TRUE(c.AllComplete());
}

TEST(CollectorTest, AllCompleteFalseWhileRunning) {
  Collector c;
  c.OnArrival(EventId{1}, 0.0, 1);
  EXPECT_FALSE(c.AllComplete());
  c.OnExecutionStart(EventId{1}, 1.0);
  EXPECT_FALSE(c.AllComplete());
  c.OnCompletion(EventId{1}, 2.0);
  EXPECT_TRUE(c.AllComplete());
}

TEST(CollectorTest, SamplesFromMultipleEvents) {
  Collector c;
  for (std::uint64_t i = 0; i < 3; ++i) {
    c.OnArrival(EventId{i}, 0.0, 1);
    c.OnExecutionStart(EventId{i}, static_cast<double>(i));
    c.OnCompletion(EventId{i}, static_cast<double>(i) + 10.0);
  }
  const Samples ects = c.EctSamples();
  EXPECT_EQ(ects.count(), 3u);
  EXPECT_DOUBLE_EQ(ects.mean(), 11.0);
  const Samples delays = c.QueuingDelaySamples();
  EXPECT_DOUBLE_EQ(delays.max(), 2.0);
}

TEST(CollectorTest, TotalCost) {
  Collector c;
  c.OnArrival(EventId{1}, 0.0, 1);
  c.OnArrival(EventId{2}, 0.0, 1);
  c.OnCost(EventId{1}, 5.0);
  c.OnCost(EventId{2}, 7.0);
  EXPECT_DOUBLE_EQ(c.TotalCost(), 12.0);
}

TEST(CollectorDeathTest, UnknownEvent) {
  Collector c;
  EXPECT_DEATH(c.OnExecutionStart(EventId{9}, 1.0), "Precondition");
}

TEST(CollectorDeathTest, DoubleCompletion) {
  Collector c;
  c.OnArrival(EventId{1}, 0.0, 1);
  c.OnExecutionStart(EventId{1}, 1.0);
  c.OnCompletion(EventId{1}, 2.0);
  EXPECT_DEATH(c.OnCompletion(EventId{1}, 3.0), "Precondition");
}

TEST(CollectorDeathTest, CompletionBeforeStart) {
  Collector c;
  c.OnArrival(EventId{1}, 0.0, 1);
  EXPECT_DEATH(c.OnCompletion(EventId{1}, 2.0), "Precondition");
}

}  // namespace
}  // namespace nu::metrics
