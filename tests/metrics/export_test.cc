#include "metrics/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"

namespace nu::metrics {
namespace {

TEST(ExportTest, RecordsCsvRoundTrips) {
  std::vector<EventRecord> records;
  EventRecord r;
  r.event = EventId{7};
  r.arrival = 1.0;
  r.exec_start = 2.5;
  r.completion = 4.0;
  r.cost = 120.5;
  r.flow_count = 9;
  r.deferred_flows = 1;
  records.push_back(r);

  std::ostringstream out;
  WriteRecordsCsv(out, records);
  const CsvFile parsed = ParseCsv(out.str(), /*has_header=*/true);
  ASSERT_EQ(parsed.rows.size(), 1u);
  const auto& row = parsed.rows[0];
  EXPECT_EQ(row[*parsed.ColumnIndex("event")], "7");
  EXPECT_EQ(row[*parsed.ColumnIndex("queuing_delay")], "1.5000");
  EXPECT_EQ(row[*parsed.ColumnIndex("ect")], "3.0000");
  EXPECT_EQ(row[*parsed.ColumnIndex("cost")], "120.50");
  EXPECT_EQ(row[*parsed.ColumnIndex("flow_count")], "9");
}

TEST(ExportTest, ReportCsvHasAllColumns) {
  Report report;
  report.event_count = 3;
  report.avg_ect = 10.0;
  report.tail_ect = 20.0;
  report.total_cost = 300.0;
  report.makespan = 25.0;
  report.installs_attempted = 12;
  report.installs_retried = 2;
  report.events_aborted = 1;
  report.recovery_latency_p99 = 0.75;
  report.events_shed = 4;
  report.deadline_misses = 5;
  report.events_quarantined = 1;
  report.audit_violations = 0;
  report.max_queue_length = 16;
  report.probe_cache_hits = 7;
  report.exec_plan_reuses = 6;
  report.overlay_probes = 40;
  report.overlay_bytes_saved = 1024.0;
  report.probe_wall_seconds = 0.125;
  report.drift_checks = 9;
  report.drift_rules_detected = 8;
  report.grey_ack_lies = 3;
  report.drift_repairs = 7;
  report.drift_rules_abandoned = 1;
  report.switches_quarantined = 2;
  report.drift_repair_p99 = 0.5;

  std::ostringstream out;
  WriteReportCsv(out, report);
  const CsvFile parsed = ParseCsv(out.str(), /*has_header=*/true);
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.header.size(), 59u);
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("events")], "3");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("avg_ect")], "10.0000");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("makespan")], "25.0000");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("installs_attempted")], "12");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("installs_retried")], "2");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("events_aborted")], "1");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("recovery_p99")], "0.7500");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("events_shed")], "4");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("deadline_misses")], "5");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("events_quarantined")], "1");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("audit_violations")], "0");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("max_queue_length")], "16");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("probe_cache_hits")], "7");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("exec_plan_reuses")], "6");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("overlay_probes")], "40");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("overlay_bytes_saved")], "1024");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("probe_wall_seconds")],
            "0.125000");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("drift_checks")], "9");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("drift_rules_detected")], "8");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("grey_ack_lies")], "3");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("drift_repairs")], "7");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("drift_rules_abandoned")], "1");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("switches_quarantined")], "2");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("drift_repair_p99")], "0.5000");
}

TEST(ExportTest, RecordsCsvCarriesFaultColumns) {
  std::vector<EventRecord> records;
  EventRecord r;
  r.event = EventId{3};
  r.aborts = 2;
  r.replans = 1;
  records.push_back(r);

  std::ostringstream out;
  WriteRecordsCsv(out, records);
  const CsvFile parsed = ParseCsv(out.str(), /*has_header=*/true);
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("aborts")], "2");
  EXPECT_EQ(parsed.rows[0][*parsed.ColumnIndex("replans")], "1");
}

TEST(ExportTest, EmptyRecordsProducesHeaderOnly) {
  std::ostringstream out;
  WriteRecordsCsv(out, {});
  const CsvFile parsed = ParseCsv(out.str(), /*has_header=*/true);
  EXPECT_TRUE(parsed.rows.empty());
  EXPECT_FALSE(parsed.header.empty());
}

}  // namespace
}  // namespace nu::metrics
