#include "metrics/report.h"

#include <gtest/gtest.h>

namespace nu::metrics {
namespace {

Collector MakeCollector() {
  Collector c;
  // Three events: ECTs 10, 20, 30; queuing delays 1, 2, 3.
  for (std::uint64_t i = 0; i < 3; ++i) {
    c.OnArrival(EventId{i}, 0.0, 2);
    c.OnExecutionStart(EventId{i}, static_cast<double>(i + 1));
    c.OnCost(EventId{i}, 10.0 * static_cast<double>(i));
    c.OnCompletion(EventId{i}, 10.0 * static_cast<double>(i + 1));
  }
  return c;
}

TEST(BuildReportTest, MaxTail) {
  const Collector c = MakeCollector();
  const Report r = BuildReport(c, 1.5);
  EXPECT_EQ(r.event_count, 3u);
  EXPECT_DOUBLE_EQ(r.avg_ect, 20.0);
  EXPECT_DOUBLE_EQ(r.tail_ect, 30.0);
  EXPECT_DOUBLE_EQ(r.avg_queuing_delay, 2.0);
  EXPECT_DOUBLE_EQ(r.worst_queuing_delay, 3.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 30.0);
  EXPECT_DOUBLE_EQ(r.total_plan_time, 1.5);
  EXPECT_DOUBLE_EQ(r.makespan, 30.0);
}

TEST(BuildReportTest, PercentileTail) {
  const Collector c = MakeCollector();
  const Report r = BuildReport(c, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(r.tail_ect, 20.0);
}

TEST(ReductionsTest, ComputesRelativeGains) {
  Report baseline, ours;
  baseline.avg_ect = 100.0;
  baseline.tail_ect = 200.0;
  baseline.total_cost = 50.0;
  baseline.avg_queuing_delay = 10.0;
  baseline.worst_queuing_delay = 40.0;
  baseline.total_plan_time = 2.0;
  ours.avg_ect = 25.0;
  ours.tail_ect = 150.0;
  ours.total_cost = 50.0;
  ours.avg_queuing_delay = 5.0;
  ours.worst_queuing_delay = 10.0;
  ours.total_plan_time = 9.0;

  const ReductionReport red = Reductions(baseline, ours);
  EXPECT_DOUBLE_EQ(red.avg_ect, 0.75);
  EXPECT_DOUBLE_EQ(red.tail_ect, 0.25);
  EXPECT_DOUBLE_EQ(red.total_cost, 0.0);
  EXPECT_DOUBLE_EQ(red.avg_queuing_delay, 0.5);
  EXPECT_DOUBLE_EQ(red.worst_queuing_delay, 0.75);
  EXPECT_DOUBLE_EQ(red.plan_time_ratio, 4.5);
}

TEST(ReportTest, DebugStringHasFields) {
  const Report r = BuildReport(MakeCollector(), 0.0);
  const std::string s = r.DebugString();
  EXPECT_NE(s.find("avg_ect"), std::string::npos);
  EXPECT_NE(s.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace nu::metrics
