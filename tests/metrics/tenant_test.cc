// Per-tenant ledgers and the Jain fairness indexes of the serve-mode report.
#include "metrics/tenant.h"

#include <gtest/gtest.h>

namespace nu::metrics {
namespace {

TenantAccountant TwoTenants() {
  TenantAccountant acc;
  acc.SetTenants({"premium", "besteffort"});
  return acc;
}

TEST(TenantAccountantTest, RosterAndLookup) {
  TenantAccountant acc = TwoTenants();
  ASSERT_EQ(acc.tenant_count(), 2u);
  EXPECT_EQ(acc.Of(TenantId{0}).name, "premium");
  EXPECT_EQ(acc.Of(TenantId{1}).name, "besteffort");
  acc.Of(TenantId{1}).arrivals = 3;
  EXPECT_EQ(acc.tenants()[1].arrivals, 3u);
}

TEST(TenantAccountantTest, JainEctEqualMeansOne) {
  TenantAccountant acc = TwoTenants();
  acc.Of(TenantId{0}).ect.Add(2.0);
  acc.Of(TenantId{1}).ect.Add(2.0);
  EXPECT_DOUBLE_EQ(acc.JainEct(), 1.0);
}

TEST(TenantAccountantTest, JainEctHandComputed) {
  // Means 1.0 and 3.0: J = (1+3)^2 / (2 * (1 + 9)) = 16/20 = 0.8.
  TenantAccountant acc = TwoTenants();
  acc.Of(TenantId{0}).ect.Add(1.0);
  acc.Of(TenantId{1}).ect.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.JainEct(), 0.8);
}

TEST(TenantAccountantTest, JainSkipsTenantsWithoutCompletions) {
  TenantAccountant acc = TwoTenants();
  acc.Of(TenantId{0}).ect.Add(5.0);
  // besteffort has no completed events — a tenant that served nothing does
  // not drag the index down.
  EXPECT_DOUBLE_EQ(acc.JainEct(), 1.0);
}

TEST(TenantAccountantTest, JainAdmissionHandComputed) {
  TenantAccountant acc = TwoTenants();
  acc.Of(TenantId{0}).arrivals = 10;
  acc.Of(TenantId{0}).admitted = 10;  // fraction 1.0
  acc.Of(TenantId{1}).arrivals = 10;
  acc.Of(TenantId{1}).admitted = 5;  // fraction 0.5
  // J = (1.5)^2 / (2 * 1.25) = 2.25 / 2.5 = 0.9.
  EXPECT_DOUBLE_EQ(acc.JainAdmission(), 0.9);
}

TEST(TenantAccountantTest, SaveLoadRoundTrip) {
  TenantAccountant acc = TwoTenants();
  acc.Of(TenantId{0}).arrivals = 7;
  acc.Of(TenantId{0}).admitted = 6;
  acc.Of(TenantId{0}).completed = 5;
  acc.Of(TenantId{0}).slo_misses = 1;
  acc.Of(TenantId{0}).ect.Add(1.5);
  acc.Of(TenantId{0}).ect.Add(2.5);
  acc.Of(TenantId{1}).arrivals = 9;
  acc.Of(TenantId{1}).rejected_budget = 2;
  acc.Of(TenantId{1}).rejected_priority = 3;
  acc.Of(TenantId{1}).shed_queue = 1;
  acc.Of(TenantId{1}).quarantined = 1;

  BinWriter w;
  acc.SaveState(w);
  TenantAccountant restored;
  BinReader r(w.buffer());
  restored.LoadState(r);

  ASSERT_EQ(restored.tenant_count(), 2u);
  EXPECT_EQ(restored.Of(TenantId{0}).name, "premium");
  EXPECT_EQ(restored.Of(TenantId{0}).arrivals, 7u);
  EXPECT_EQ(restored.Of(TenantId{0}).admitted, 6u);
  EXPECT_EQ(restored.Of(TenantId{0}).completed, 5u);
  EXPECT_EQ(restored.Of(TenantId{0}).slo_misses, 1u);
  EXPECT_EQ(restored.Of(TenantId{0}).ect.count(), 2u);
  EXPECT_DOUBLE_EQ(restored.Of(TenantId{0}).ect.mean(), 2.0);
  EXPECT_EQ(restored.Of(TenantId{1}).rejected_budget, 2u);
  EXPECT_EQ(restored.Of(TenantId{1}).rejected_priority, 3u);
  EXPECT_EQ(restored.Of(TenantId{1}).shed_queue, 1u);
  EXPECT_EQ(restored.Of(TenantId{1}).quarantined, 1u);
  EXPECT_DOUBLE_EQ(restored.JainEct(), acc.JainEct());
  EXPECT_DOUBLE_EQ(restored.JainAdmission(), acc.JainAdmission());
}

}  // namespace
}  // namespace nu::metrics
