#include "flow/flow_table.h"

#include <gtest/gtest.h>

namespace nu::flow {
namespace {

Flow MakeFlow(Mbps demand = 10.0) {
  Flow f;
  f.src = NodeId{0};
  f.dst = NodeId{1};
  f.demand = demand;
  f.duration = 2.0;
  return f;
}

TEST(FlowTableTest, AddAssignsSequentialIds) {
  FlowTable table;
  const FlowId a = table.Add(MakeFlow());
  const FlowId b = table.Add(MakeFlow());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlowTableTest, GetReturnsStoredFlow) {
  FlowTable table;
  const FlowId id = table.Add(MakeFlow(42.0));
  const Flow& f = table.Get(id);
  EXPECT_EQ(f.id, id);
  EXPECT_DOUBLE_EQ(f.demand, 42.0);
}

TEST(FlowTableTest, RemoveErases) {
  FlowTable table;
  const FlowId id = table.Add(MakeFlow());
  EXPECT_TRUE(table.Contains(id));
  table.Remove(id);
  EXPECT_FALSE(table.Contains(id));
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTableTest, IdsNotReusedAfterRemove) {
  FlowTable table;
  const FlowId a = table.Add(MakeFlow());
  table.Remove(a);
  const FlowId b = table.Add(MakeFlow());
  EXPECT_NE(a, b);
}

TEST(FlowTableTest, IdsSortedSnapshot) {
  FlowTable table;
  const FlowId a = table.Add(MakeFlow());
  const FlowId b = table.Add(MakeFlow());
  const FlowId c = table.Add(MakeFlow());
  table.Remove(b);
  const auto ids = table.Ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a);
  EXPECT_EQ(ids[1], c);
}

TEST(FlowTableTest, TotalDemand) {
  FlowTable table;
  table.Add(MakeFlow(10.0));
  table.Add(MakeFlow(15.0));
  EXPECT_DOUBLE_EQ(table.TotalDemand(), 25.0);
}

TEST(FlowTableTest, GetMutable) {
  FlowTable table;
  const FlowId id = table.Add(MakeFlow(5.0));
  table.GetMutable(id).duration = 99.0;
  EXPECT_DOUBLE_EQ(table.Get(id).duration, 99.0);
}

TEST(FlowTest, VolumeIsDemandTimesDuration) {
  const Flow f = MakeFlow(10.0);
  EXPECT_DOUBLE_EQ(f.volume(), 20.0);
}

TEST(FlowTableDeathTest, RejectsBadFlows) {
  FlowTable table;
  Flow zero_demand = MakeFlow(0.0);
  EXPECT_DEATH(table.Add(std::move(zero_demand)), "Precondition");
  Flow self_loop = MakeFlow();
  self_loop.dst = self_loop.src;
  EXPECT_DEATH(table.Add(std::move(self_loop)), "Precondition");
}

TEST(FlowTableDeathTest, GetMissingDies) {
  FlowTable table;
  EXPECT_DEATH(static_cast<void>(table.Get(FlowId{7})), "Precondition");
}

}  // namespace
}  // namespace nu::flow
