// End-to-end serve mode: the acceptance scenario (2x offered load with a
// mid-run pod SRLG outage) plus the two properties that make it a
// regression net — byte-identical reruns and crash/recover transparency of
// the serve section in v4 snapshots.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "common/rng_streams.h"
#include "exp/runner.h"
#include "exp/serve.h"
#include "fault/injector.h"
#include "metrics/export.h"
#include "serve/degradable.h"
#include "serve/runtime.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/uniform.h"

namespace nu::serve {
namespace {

namespace fs = std::filesystem;

/// The acceptance shape: small fabric, short stream, 2x the calibrated
/// service rate, pod0 SRLG outage mid-stream.
exp::ServeCampaignConfig AcceptanceCampaign() {
  exp::ServeCampaignConfig campaign = exp::DefaultServeCampaign(/*rate=*/1.0);
  campaign.exp.fat_tree_k = 4;
  campaign.exp.seed = 4242;
  campaign.serve.arrivals.duration = 30.0;
  campaign.offered_load = 2.0;
  campaign.pod_outage = true;
  campaign.pod_outage_time = 8.0;
  campaign.pod_outage_duration = 6.0;
  return campaign;
}

TEST(ServeSimTest, AcceptanceScenarioAtTwoTimesCapacity) {
  exp::ServeCampaignConfig campaign = AcceptanceCampaign();
  campaign.serve.arrivals.rate = exp::EstimateServiceRate(campaign);
  const sim::SimResult result = exp::RunServeCampaign(campaign);
  const ServeSummary& s = result.serve;

  // Zero auditor violations under 2x overload + a pod outage.
  EXPECT_TRUE(result.violations.empty());
  // The ladder went all the way down and came all the way back.
  EXPECT_TRUE(s.reached_shedding);
  EXPECT_TRUE(s.recovered_healthy);
  EXPECT_EQ(s.final_state, HealthState::kHealthy);
  // Excess load was absorbed by rejection/shedding, not by tail latency:
  // roughly half the offered load cannot be admitted at 2x.
  const std::size_t rejected =
      s.rejected_budget + s.rejected_deadline + s.rejected_priority;
  EXPECT_GT(rejected + s.shed_queue, 0u);
  EXPECT_LT(s.admitted, s.arrivals);
  // Admitted-tail ECT stays bounded: an admitted event's residence is
  // capped by the watchdog envelope (max_failures attempts at the per-event
  // deadline budget) plus bounded queue wait — 2x that envelope is generous
  // and still catches an unbounded-tail regression.
  const guard::DeadlineConfig& dl = campaign.exp.sim.guard.deadline;
  const double attempt_budget =
      dl.base_deadline +
      dl.per_flow_deadline *
          static_cast<double>(campaign.serve.arrivals.max_flows);
  EXPECT_GT(s.ect_p999, 0.0);
  EXPECT_LT(s.ect_p999,
            2.0 * static_cast<double>(dl.max_failures) * attempt_budget);
  // Fairness indexes are reported and sane.
  EXPECT_GT(s.jain_ect, 0.0);
  EXPECT_LE(s.jain_ect, 1.0 + 1e-12);
  EXPECT_GT(s.jain_admission, 0.0);
  EXPECT_LE(s.jain_admission, 1.0 + 1e-12);
  // Ladder transitions are typed rows in the timeseries.
  EXPECT_GT(s.transitions, 0u);
  EXPECT_NE(result.serve_timeseries_csv.find("transition"), std::string::npos);
  EXPECT_NE(result.serve_timeseries_csv.find("shedding"), std::string::npos);
  // Bookkeeping closes: every arrival is admitted or rejected, and no
  // admitted-event outcome bucket overflows the admitted count.
  EXPECT_EQ(s.arrivals, s.admitted + rejected);
  EXPECT_LE(s.completed + s.shed_queue + s.quarantined, s.admitted);
}

TEST(ServeSimTest, SameSeedRunsAreByteIdentical) {
  exp::ServeCampaignConfig campaign = AcceptanceCampaign();
  campaign.serve.arrivals.rate = 2.0;  // pinned: no calibration run needed
  const sim::SimResult a = exp::RunServeCampaign(campaign);
  const sim::SimResult b = exp::RunServeCampaign(campaign);

  EXPECT_EQ(a.serve_timeseries_csv, b.serve_timeseries_csv);
  EXPECT_EQ(a.serve_tenant_csv, b.serve_tenant_csv);
  std::ostringstream ra;
  std::ostringstream rb;
  metrics::WriteRecordsCsv(ra, a.records);
  metrics::WriteRecordsCsv(rb, b.records);
  EXPECT_EQ(ra.str(), rb.str());
}

TEST(ServeSimTest, ProcessShapesAllSurviveOverload) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kDiurnal}) {
    exp::ServeCampaignConfig campaign = AcceptanceCampaign();
    campaign.serve.arrivals.process = process;
    campaign.serve.arrivals.rate = 2.0;
    const sim::SimResult result = exp::RunServeCampaign(campaign);
    EXPECT_TRUE(result.violations.empty()) << ToString(process);
    EXPECT_GT(result.serve.completed, 0u) << ToString(process);
  }
}

TEST(ServeSimTest, DisabledServeDrawsNothing) {
  // A serve config that is present but disabled must not perturb the run:
  // same records as a config that never mentions serve at all.
  exp::ServeCampaignConfig campaign = AcceptanceCampaign();
  exp::ExperimentConfig plain = campaign.exp;
  plain.event_count = 12;

  auto records_csv = [](const sim::SimResult& result) {
    std::ostringstream out;
    metrics::WriteRecordsCsv(out, result.records);
    return out.str();
  };

  const exp::Workload workload(plain);
  const sim::SimResult without =
      exp::RunScheduler(workload, sched::SchedulerKind::kPlmtf);
  exp::ExperimentConfig with_stub = plain;
  with_stub.sim.serve = campaign.serve;
  with_stub.sim.serve.enabled = false;
  const exp::Workload workload2(with_stub);
  const sim::SimResult with =
      exp::RunScheduler(workload2, sched::SchedulerKind::kPlmtf);
  EXPECT_EQ(records_csv(with), records_csv(without));
  EXPECT_FALSE(with.serve.enabled);
  EXPECT_TRUE(with.serve_timeseries_csv.empty());
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() / ("nu_serve_sim_" + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

/// Crash/recover with the serve section riding in v4 snapshots: a run
/// crashed mid-stream and resumed from disk must reproduce the
/// uninterrupted run's serve timeseries and tenant report byte-for-byte.
TEST(ServeSimTest, CrashRecoveryPreservesServeState) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  const net::Network network(ft.graph());

  sim::SimConfig config;
  config.seed = 616;
  config.cost_model.plan_time_per_flow = 0.002;
  config.cost_model.install_time_per_flow = 0.05;
  config.guard.overload.max_queue_length = 8;
  config.guard.overload.policy = guard::OverloadPolicy::kShedCostliest;
  config.guard.deadline.base_deadline = 10.0;
  config.guard.deadline.per_flow_deadline = 1.0;
  config.guard.auditor.enabled = true;
  config.guard.auditor.mode = guard::AuditMode::kLogAndCount;
  config.serve.enabled = true;
  config.serve.arrivals.rate = 2.0;
  config.serve.arrivals.duration = 10.0;
  config.serve.arrivals.min_flows = 2;
  config.serve.arrivals.max_flows = 6;
  config.serve.arrivals.tenants = {
      TenantSpec{.name = "gold", .weight = 1.0, .priority = 2,
                 .slo_deadline = 30.0},
      TenantSpec{.name = "bronze", .weight = 1.0, .priority = 0,
                 .slo_deadline = 40.0},
  };
  config.serve.budget.enabled = true;
  config.serve.budget.default_rate = 2.0;
  config.serve.budget.default_burst = 6.0;
  config.serve.brownout.queue_reference = 8.0;

  trace::UniformGenerator flow_source(
      ft.hosts(), Rng(StreamSeed(config.seed, RngStream::kServeFlowSource)));
  const std::vector<update::UpdateEvent> events =
      GenerateArrivals(config.serve.arrivals, flow_source, config.seed);
  ASSERT_GE(events.size(), 8u);

  auto run = [&](const sim::SimConfig& cfg,
                 bool resume) -> sim::SimResult {
    sim::Simulator simulator(network, provider, cfg);
    DegradableScheduler scheduler;
    return resume ? simulator.Resume(scheduler, events)
                  : simulator.Run(scheduler, events);
  };

  TempDir ref_dir("ref");
  sim::SimConfig ref_config = config;
  ref_config.checkpoint.dir = ref_dir.path().string();
  ref_config.checkpoint.cadence = 2;
  const sim::SimResult reference = run(ref_config, /*resume=*/false);
  ASSERT_GE(reference.rounds, 4u);
  ASSERT_TRUE(reference.serve.enabled);

  for (const std::size_t crash_round : {2ul, reference.rounds / 2,
                                        reference.rounds - 1}) {
    const std::string tag = "crash_r" + std::to_string(crash_round);
    TempDir dir(tag);
    sim::SimConfig crash_config = ref_config;
    crash_config.checkpoint.dir = dir.path().string();
    crash_config.faults.crash.at_round = crash_round;
    crash_config.faults.crash.point = fault::CrashPoint::kBeforeRound;

    EXPECT_THROW((void)run(crash_config, /*resume=*/false),
                 fault::ControllerCrash)
        << tag;
    const sim::SimResult recovered = run(crash_config, /*resume=*/true);
    EXPECT_TRUE(recovered.recovery.recovered) << tag;
    EXPECT_EQ(recovered.serve_timeseries_csv, reference.serve_timeseries_csv)
        << tag;
    EXPECT_EQ(recovered.serve_tenant_csv, reference.serve_tenant_csv) << tag;
    EXPECT_EQ(recovered.serve.transitions, reference.serve.transitions)
        << tag;
  }
}

}  // namespace
}  // namespace nu::serve
