// Open-loop arrival generation: determinism, ordering, tenant tagging and
// SLO deadlines, rate scaling, and the non-homogeneous intensity shapes.
#include "serve/arrivals.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "topo/fat_tree.h"
#include "trace/uniform.h"

namespace nu::serve {
namespace {

struct Fixture {
  Fixture() : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}) {}

  [[nodiscard]] trace::UniformGenerator FlowSource(std::uint64_t seed) const {
    return trace::UniformGenerator(ft.hosts(), Rng(seed));
  }

  topo::FatTree ft;
};

ArrivalConfig BaseConfig() {
  ArrivalConfig config;
  config.rate = 2.0;
  config.duration = 100.0;
  config.min_flows = 2;
  config.max_flows = 5;
  config.tenants = {
      TenantSpec{.name = "a", .weight = 1.0, .priority = 2,
                 .slo_deadline = 30.0},
      TenantSpec{.name = "b", .weight = 3.0, .priority = 0,
                 .slo_deadline = 0.0},
  };
  return config;
}

TEST(ArrivalsTest, ParseAndToStringRoundTrip) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kDiurnal}) {
    EXPECT_EQ(ParseArrivalProcess(ToString(process)), process);
  }
}

TEST(ArrivalsTest, DeterministicAndOrdered) {
  const Fixture fx;
  const ArrivalConfig config = BaseConfig();
  trace::UniformGenerator source_a = fx.FlowSource(9);
  trace::UniformGenerator source_b = fx.FlowSource(9);
  const auto a = GenerateArrivals(config, source_a, 77);
  const auto b = GenerateArrivals(config, source_b, 77);

  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  Seconds prev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_time(), b[i].arrival_time());
    EXPECT_EQ(a[i].tenant(), b[i].tenant());
    EXPECT_EQ(a[i].deadline(), b[i].deadline());
    EXPECT_EQ(a[i].flows().size(), b[i].flows().size());
    EXPECT_GE(a[i].arrival_time(), prev);
    EXPECT_LT(a[i].arrival_time(), config.duration);
    prev = a[i].arrival_time();
  }
}

TEST(ArrivalsTest, TenantTagsAndDeadlines) {
  const Fixture fx;
  const ArrivalConfig config = BaseConfig();
  trace::UniformGenerator source = fx.FlowSource(9);
  const auto events = GenerateArrivals(config, source, 77);

  std::map<TenantId, std::size_t> per_tenant;
  for (const update::UpdateEvent& e : events) {
    ASSERT_TRUE(e.tenant().valid());
    ASSERT_LT(e.tenant().value(), config.tenants.size());
    ++per_tenant[e.tenant()];
    const TenantSpec& spec = config.tenants[e.tenant().value()];
    if (spec.slo_deadline > 0.0) {
      // Deadline is absolute: arrival + the tenant's SLO.
      EXPECT_DOUBLE_EQ(e.deadline(), e.arrival_time() + spec.slo_deadline);
    } else {
      EXPECT_FALSE(e.HasDeadline());
    }
    EXPECT_GE(e.flows().size(), config.min_flows);
    EXPECT_LE(e.flows().size(), config.max_flows);
  }
  // Weighted draw 1:3 — the heavy tenant should dominate (loose band; the
  // stream is deterministic for this seed, so this cannot flake).
  EXPECT_GT(per_tenant[TenantId{1}], per_tenant[TenantId{0}]);
}

TEST(ArrivalsTest, CountTracksOfferedRate) {
  const Fixture fx;
  ArrivalConfig config = BaseConfig();
  config.duration = 500.0;
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kDiurnal}) {
    config.process = process;
    trace::UniformGenerator source = fx.FlowSource(9);
    const auto events = GenerateArrivals(config, source, 123);
    const double expected = config.rate * config.duration;
    // All processes are normalized to the same time-average rate.
    EXPECT_GT(static_cast<double>(events.size()), 0.8 * expected)
        << ToString(process);
    EXPECT_LT(static_cast<double>(events.size()), 1.2 * expected)
        << ToString(process);
  }
}

TEST(ArrivalsTest, IntensityFactorAveragesToOne) {
  ArrivalConfig config = BaseConfig();
  // A whole number of burst/diurnal periods, so the window average of the
  // modulation is exactly its long-run average.
  config.duration = 120.0;
  for (const ArrivalProcess process :
       {ArrivalProcess::kBursty, ArrivalProcess::kDiurnal}) {
    config.process = process;
    double sum = 0.0;
    const int steps = 100000;
    for (int i = 0; i < steps; ++i) {
      const Seconds t = config.duration * (i + 0.5) / steps;
      const double f = IntensityFactor(config, t);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, PeakIntensityFactor(config) + 1e-9);
      sum += f;
    }
    EXPECT_NEAR(sum / steps, 1.0, 0.02) << ToString(process);
  }
}

TEST(ArrivalsTest, EmptyRosterGetsDefaultTenant) {
  const Fixture fx;
  ArrivalConfig config = BaseConfig();
  config.tenants.clear();
  const auto effective = config.EffectiveTenants();
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_EQ(effective[0].name, "tenant0");

  trace::UniformGenerator source = fx.FlowSource(9);
  const auto events = GenerateArrivals(config, source, 5);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().tenant(), TenantId{0});
}

TEST(ArrivalsTest, DifferentSeedsDifferentStreams) {
  const Fixture fx;
  const ArrivalConfig config = BaseConfig();
  trace::UniformGenerator source_a = fx.FlowSource(9);
  trace::UniformGenerator source_b = fx.FlowSource(9);
  const auto a = GenerateArrivals(config, source_a, 1);
  const auto b = GenerateArrivals(config, source_b, 2);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Same shape, different randomness: first arrivals differ.
  EXPECT_NE(a.front().arrival_time(), b.front().arrival_time());
}

}  // namespace
}  // namespace nu::serve
