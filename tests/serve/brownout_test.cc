// The brownout health state machine: pressure folding, one-level-at-a-time
// latched transitions, enter/exit hysteresis with hold times (no flapping),
// and snapshot round-tripping mid-episode.
#include "serve/brownout.h"

#include <gtest/gtest.h>

namespace nu::serve {
namespace {

BrownoutConfig FastConfig() {
  BrownoutConfig config;
  config.hold_enter = 0.5;
  config.hold_exit = 1.0;
  return config;
}

BrownoutSignals Queue(std::size_t length) {
  return BrownoutSignals{.queue_length = length};
}

TEST(BrownoutTest, PressureIsWorstOfThreeSignals) {
  const BrownoutController controller(FastConfig());
  // queue_reference = 16, stress_reference = 4.
  EXPECT_DOUBLE_EQ(controller.Pressure(Queue(8)), 0.5);
  EXPECT_DOUBLE_EQ(
      controller.Pressure(BrownoutSignals{.queue_length = 0, .miss_rate = 0.7}),
      0.7);
  EXPECT_DOUBLE_EQ(controller.Pressure(BrownoutSignals{.stressed_links = 2}),
                   0.5);
  EXPECT_DOUBLE_EQ(controller.Pressure(BrownoutSignals{
                       .queue_length = 8, .miss_rate = 0.9, .stressed_links = 1}),
                   0.9);
}

TEST(BrownoutTest, EscalatesOneLevelPerHold) {
  BrownoutController controller(FastConfig());
  // Saturated pressure (queue 16/16 = 1.0 >= every enter threshold): the
  // ladder still climbs ONE latched level per hold_enter, never jumping.
  // The hold timer restarts AFTER each transition, at the next observation.
  EXPECT_EQ(controller.Observe(0.0, Queue(16)), HealthState::kHealthy);
  EXPECT_EQ(controller.Observe(0.25, Queue(16)), HealthState::kHealthy);
  EXPECT_EQ(controller.Observe(0.5, Queue(16)), HealthState::kDegraded);
  EXPECT_EQ(controller.Observe(0.75, Queue(16)), HealthState::kDegraded);
  EXPECT_EQ(controller.Observe(1.25, Queue(16)), HealthState::kOverloaded);
  EXPECT_EQ(controller.Observe(1.5, Queue(16)), HealthState::kOverloaded);
  EXPECT_EQ(controller.Observe(2.0, Queue(16)), HealthState::kShedding);
  // Terminal state: saturated pressure cannot escalate past Shedding.
  EXPECT_EQ(controller.Observe(2.5, Queue(16)), HealthState::kShedding);
  EXPECT_EQ(controller.Observe(5.0, Queue(16)), HealthState::kShedding);
  ASSERT_EQ(controller.transitions().size(), 3u);
  EXPECT_EQ(controller.transitions()[0].from, HealthState::kHealthy);
  EXPECT_EQ(controller.transitions()[0].to, HealthState::kDegraded);
  EXPECT_EQ(controller.transitions()[2].to, HealthState::kShedding);
  EXPECT_EQ(controller.DegradationLevel(), 3);
}

TEST(BrownoutTest, RelaxesOneLevelPerExitHold) {
  BrownoutController controller(FastConfig());
  (void)controller.Observe(0.0, Queue(16));
  (void)controller.Observe(0.5, Queue(16));   // -> degraded
  (void)controller.Observe(0.75, Queue(16));
  (void)controller.Observe(1.25, Queue(16));  // -> overloaded
  (void)controller.Observe(1.5, Queue(16));
  ASSERT_EQ(controller.Observe(2.0, Queue(16)), HealthState::kShedding);
  // Quiet fabric: exit thresholds are all met, but each step still waits
  // out hold_exit = 1.0, restarting at the observation after a transition.
  EXPECT_EQ(controller.Observe(2.5, Queue(0)), HealthState::kShedding);
  EXPECT_EQ(controller.Observe(3.5, Queue(0)), HealthState::kOverloaded);
  EXPECT_EQ(controller.Observe(4.0, Queue(0)), HealthState::kOverloaded);
  EXPECT_EQ(controller.Observe(5.0, Queue(0)), HealthState::kDegraded);
  EXPECT_EQ(controller.Observe(5.5, Queue(0)), HealthState::kDegraded);
  EXPECT_EQ(controller.Observe(6.5, Queue(0)), HealthState::kHealthy);
  EXPECT_EQ(controller.transitions().size(), 6u);
}

TEST(BrownoutTest, ShortSpikesDoNotLatch) {
  BrownoutController controller(FastConfig());
  // Pressure pulses above enter_degraded but keeps dipping back below
  // before hold_enter accumulates: no transition ever fires.
  for (int i = 0; i < 20; ++i) {
    const Seconds t = 0.4 * i;
    (void)controller.Observe(t, Queue(16));
    (void)controller.Observe(t + 0.2, Queue(0));
  }
  EXPECT_EQ(controller.state(), HealthState::kHealthy);
  EXPECT_TRUE(controller.transitions().empty());
}

TEST(BrownoutTest, HysteresisBandHoldsTheLevel) {
  BrownoutController controller(FastConfig());
  (void)controller.Observe(0.0, Queue(10));  // 0.625 >= enter_degraded
  ASSERT_EQ(controller.Observe(0.5, Queue(10)), HealthState::kDegraded);
  // Pressure settles between exit_degraded (0.3) and enter_overloaded
  // (0.75): inside the hysteresis band the controller neither escalates
  // nor relaxes, no matter how long.
  for (int i = 1; i <= 40; ++i) {
    EXPECT_EQ(controller.Observe(0.5 + 0.5 * i, Queue(8)),
              HealthState::kDegraded);
  }
  EXPECT_EQ(controller.transitions().size(), 1u);
}

TEST(BrownoutTest, TimeInStateAccumulates) {
  BrownoutController controller(FastConfig());
  (void)controller.Observe(0.0, Queue(16));
  (void)controller.Observe(0.5, Queue(16));  // -> degraded at 0.5
  (void)controller.Observe(2.5, Queue(8));   // band: stays degraded
  const auto& time_in_state = controller.time_in_state();
  EXPECT_DOUBLE_EQ(time_in_state[0], 0.5);  // healthy
  EXPECT_DOUBLE_EQ(time_in_state[1], 2.0);  // degraded
}

TEST(BrownoutTest, SaveLoadRoundTripMidEpisode) {
  BrownoutController controller(FastConfig());
  (void)controller.Observe(0.0, Queue(16));
  (void)controller.Observe(0.5, Queue(16));
  (void)controller.Observe(0.75, Queue(16));  // part-way to overloaded

  BinWriter w;
  controller.SaveState(w);
  BrownoutController restored(FastConfig());
  BinReader r(w.buffer());
  restored.LoadState(r);

  EXPECT_EQ(restored.state(), controller.state());
  EXPECT_EQ(restored.transitions().size(), controller.transitions().size());
  EXPECT_DOUBLE_EQ(restored.last_pressure(), controller.last_pressure());

  // The restored copy continues the in-flight enter episode identically:
  // both latch kOverloaded at the same observation (0.75 + hold_enter).
  EXPECT_EQ(controller.Observe(1.25, Queue(16)), HealthState::kOverloaded);
  EXPECT_EQ(restored.Observe(1.25, Queue(16)), HealthState::kOverloaded);
}

}  // namespace
}  // namespace nu::serve
