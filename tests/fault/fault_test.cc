// Fault subsystem: deterministic fault plans, the injector's flaky-install
// sampling, victim computation / fault-state application on the network,
// and the rule-level flaky apply with rollback.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "consistent/two_phase.h"
#include "fault/flaky_apply.h"
#include "fault/injector.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::fault {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  FlowId PlaceFlow(NodeId src, NodeId dst, Mbps demand,
                   std::size_t path_index = 0) {
    const auto& paths = provider.Paths(src, dst);
    flow::Flow f;
    f.src = src;
    f.dst = dst;
    f.demand = demand;
    f.duration = 10.0;
    return network.Place(std::move(f), paths.at(path_index));
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

TEST(FaultPlanTest, SpecsStaySortedByTime) {
  FaultPlan plan;
  plan.AddLinkDown(5.0, LinkId{3});
  plan.AddSwitchDown(1.0, NodeId{2});
  plan.AddLinkUp(3.0, LinkId{3});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.specs()[0].time, 1.0);
  EXPECT_DOUBLE_EQ(plan.specs()[1].time, 3.0);
  EXPECT_DOUBLE_EQ(plan.specs()[2].time, 5.0);
}

TEST(FaultPlanTest, EqualTimesKeepInsertionOrder) {
  FaultPlan plan;
  plan.AddLinkDown(2.0, LinkId{1});
  plan.AddLinkDown(2.0, LinkId{2});
  plan.AddLinkDown(2.0, LinkId{3});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.specs()[0].link, LinkId{1});
  EXPECT_EQ(plan.specs()[1].link, LinkId{2});
  EXPECT_EQ(plan.specs()[2].link, LinkId{3});
}

TEST(FaultPlanTest, OutageSchedulesDownThenUp) {
  FaultPlan plan;
  plan.AddLinkOutage(1.0, 4.0, LinkId{7});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kLinkUp);
  EXPECT_DOUBLE_EQ(plan.specs()[1].time, 5.0);

  FaultPlan permanent;
  permanent.AddSwitchOutage(1.0, 0.0, NodeId{3});  // outage <= 0: never up
  EXPECT_EQ(permanent.size(), 1u);
}

TEST(RandomLinkFaultPlanTest, DeterministicAndFabricOnly) {
  Fixture fx;
  RandomLinkFaultOptions options;
  options.failures = 3;

  Rng rng_a(11);
  Rng rng_b(11);
  const FaultPlan a = MakeRandomLinkFaultPlan(fx.ft.graph(), options, rng_a);
  const FaultPlan b = MakeRandomLinkFaultPlan(fx.ft.graph(), options, rng_b);
  ASSERT_EQ(a.size(), 6u);  // 3 outages = 3 downs + 3 ups
  ASSERT_EQ(a.size(), b.size());
  std::set<LinkId::rep_type> victims;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].link, b.specs()[i].link);
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    const topo::Link& l = fx.ft.graph().link(a.specs()[i].link);
    EXPECT_NE(fx.ft.graph().node(l.src).role, topo::NodeRole::kHost);
    EXPECT_NE(fx.ft.graph().node(l.dst).role, topo::NodeRole::kHost);
    if (a.specs()[i].kind == FaultKind::kLinkDown) {
      victims.insert(a.specs()[i].link.value());
    }
  }
  EXPECT_EQ(victims.size(), 3u);  // distinct cables
}

TEST(InjectorTest, DisabledModelPassesThrough) {
  FaultConfig config;  // flaky disabled
  FaultInjector injector(config, 42);
  const InstallTrial trial = injector.SampleInstall(0.5);
  EXPECT_TRUE(trial.success);
  EXPECT_EQ(trial.attempts, 1u);
  EXPECT_DOUBLE_EQ(trial.wasted_delay, 0.0);
  EXPECT_DOUBLE_EQ(trial.latency_factor, 1.0);
}

TEST(InjectorTest, SamplingIsDeterministicPerSeed) {
  FaultConfig config;
  config.flaky.failure_probability = 0.3;
  config.flaky.latency_jitter_frac = 0.2;
  FaultInjector a(config, 7);
  FaultInjector b(config, 7);
  for (int i = 0; i < 200; ++i) {
    const InstallTrial ta = a.SampleInstall(0.1);
    const InstallTrial tb = b.SampleInstall(0.1);
    EXPECT_EQ(ta.attempts, tb.attempts);
    EXPECT_EQ(ta.success, tb.success);
    EXPECT_DOUBLE_EQ(ta.wasted_delay, tb.wasted_delay);
    EXPECT_DOUBLE_EQ(ta.latency_factor, tb.latency_factor);
  }
}

TEST(InjectorTest, HighFailureRateEventuallyExhaustsRetries) {
  FaultConfig config;
  config.flaky.failure_probability = 0.9;
  config.retry.max_attempts = 3;
  FaultInjector injector(config, 13);
  std::size_t failures = 0;
  std::size_t retries = 0;
  for (int i = 0; i < 300; ++i) {
    const InstallTrial trial = injector.SampleInstall(0.1);
    EXPECT_LE(trial.attempts, 3u);
    if (!trial.success) {
      ++failures;
      EXPECT_EQ(trial.attempts, 3u);
      // Two failed attempt latencies plus two backoff waits were spent.
      EXPECT_GT(trial.wasted_delay, 0.2);
    }
    if (trial.attempts > 1) ++retries;
  }
  EXPECT_GT(failures, 0u);
  EXPECT_GT(retries, 0u);
}

TEST(InjectorTest, JitterStretchesLatencyWithinBounds) {
  FaultConfig config;
  config.flaky.latency_jitter_frac = 0.5;  // failures off: jitter only
  FaultInjector injector(config, 3);
  for (int i = 0; i < 100; ++i) {
    const InstallTrial trial = injector.SampleInstall(1.0);
    EXPECT_TRUE(trial.success);
    EXPECT_GE(trial.latency_factor, 1.0);
    EXPECT_LT(trial.latency_factor, 1.5);
  }
}

TEST(AffectedFlowsTest, LinkFaultStrandsBothDirections) {
  Fixture fx;
  const NodeId src = fx.ft.host(0);
  const NodeId dst = fx.ft.host(12);
  const FlowId forward = fx.PlaceFlow(src, dst, 10.0);
  const FlowId backward = fx.PlaceFlow(dst, src, 10.0);

  // Fail the first fabric link of the forward flow's path; the backward
  // flow's reverse path shares the cable only if it chose the mirrored
  // route, so assert on the forward flow and on determinism of the rest.
  const topo::Path& path = fx.network.PathOf(forward);
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDown;
  spec.link = path.links[0];
  const auto victims = AffectedFlows(fx.network, spec);
  EXPECT_TRUE(std::find(victims.begin(), victims.end(), forward) !=
              victims.end());
  // Sorted ascending, no duplicates.
  EXPECT_TRUE(std::is_sorted(victims.begin(), victims.end()));
  EXPECT_TRUE(std::adjacent_find(victims.begin(), victims.end()) ==
              victims.end());

  // The host uplink is shared by both directions' endpoints: failing it
  // strands both flows.
  FaultSpec uplink;
  uplink.kind = FaultKind::kLinkDown;
  uplink.link = fx.ft.graph().FindLink(src, path.nodes[1]);
  const auto both = AffectedFlows(fx.network, uplink);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0], std::min(forward, backward));
  EXPECT_EQ(both[1], std::max(forward, backward));
}

TEST(AffectedFlowsTest, SwitchFaultStrandsEveryFlowThroughIt) {
  Fixture fx;
  const FlowId f = fx.PlaceFlow(fx.ft.host(0), fx.ft.host(12), 10.0);
  const topo::Path& path = fx.network.PathOf(f);
  FaultSpec spec;
  spec.kind = FaultKind::kSwitchDown;
  spec.node = path.nodes[path.nodes.size() / 2];  // a core/agg switch
  const auto victims = AffectedFlows(fx.network, spec);
  EXPECT_TRUE(std::find(victims.begin(), victims.end(), f) != victims.end());
}

TEST(AffectedFlowsTest, UpEventsStrandNothing) {
  Fixture fx;
  const FlowId f = fx.PlaceFlow(fx.ft.host(0), fx.ft.host(12), 10.0);
  const topo::Path& path = fx.network.PathOf(f);
  FaultSpec spec;
  spec.kind = FaultKind::kLinkUp;
  spec.link = path.links[0];
  EXPECT_TRUE(AffectedFlows(fx.network, spec).empty());
}

TEST(ApplyFaultStateTest, LinkFaultTakesDownBothDirectionsOfTheCable) {
  Fixture fx;
  const LinkId forward = fx.ft.graph().links()[0].id;
  const topo::Link& l = fx.ft.graph().link(forward);
  const LinkId reverse = fx.ft.graph().FindLink(l.dst, l.src);
  ASSERT_TRUE(reverse.valid());

  FaultSpec down;
  down.kind = FaultKind::kLinkDown;
  down.link = forward;
  ApplyFaultState(fx.network, down);
  EXPECT_FALSE(fx.network.LinkUp(forward));
  EXPECT_FALSE(fx.network.LinkUp(reverse));

  FaultSpec up = down;
  up.kind = FaultKind::kLinkUp;
  ApplyFaultState(fx.network, up);
  EXPECT_TRUE(fx.network.LinkUp(forward));
  EXPECT_TRUE(fx.network.LinkUp(reverse));
  EXPECT_EQ(fx.network.down_link_count(), 0u);
}

TEST(ApplyFaultStateTest, DoesNotRemoveStrandedFlows) {
  Fixture fx;
  const FlowId f = fx.PlaceFlow(fx.ft.host(0), fx.ft.host(12), 10.0);
  FaultSpec spec;
  spec.kind = FaultKind::kSwitchDown;
  spec.node = fx.network.PathOf(f).nodes[1];
  ApplyFaultState(fx.network, spec);
  EXPECT_TRUE(fx.network.HasFlow(f));  // victim fate is the caller's call
  EXPECT_FALSE(fx.network.CheckInvariants());
  fx.network.Remove(f);
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(FlakyApplyTest, HealthyPipelineCommitsEverything) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  consistent::RuleTable rules;
  ApplyAll(rules, consistent::PlanInitialInstall(flow, paths[0], 0));
  const auto schedule =
      consistent::PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);

  FlakyInstallModel healthy;  // p = 0
  RetryPolicy retry;
  Rng rng(1);
  const FlakyApplyResult result =
      ApplyWithFaults(rules, schedule, healthy, retry, rng, 0.001);
  EXPECT_TRUE(result.committed);
  EXPECT_FALSE(result.rolled_back);
  EXPECT_EQ(result.applied_ops, schedule.size());
  EXPECT_EQ(result.retries, 0u);
  EXPECT_DOUBLE_EQ(result.elapsed,
                   0.001 * static_cast<double>(schedule.size()));
  EXPECT_EQ(rules.RuleCountForFlow(flow), paths[1].links.size());
}

TEST(FlakyApplyTest, ExhaustedInstallRollsBackToPreUpdateState) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];
  const auto schedule =
      consistent::PlanTwoPhaseReroute(flow, old_path, new_path, 0);

  FlakyInstallModel flaky;
  flaky.failure_probability = 0.6;
  RetryPolicy retry;
  retry.max_attempts = 2;

  // Sweep seeds until one aborts; each aborted run must restore the exact
  // pre-update table and keep delivering on the old path.
  bool saw_rollback = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    consistent::RuleTable rules;
    ApplyAll(rules, consistent::PlanInitialInstall(flow, old_path, 0));
    Rng rng(seed);
    const FlakyApplyResult result =
        ApplyWithFaults(rules, schedule, flaky, retry, rng);
    if (!result.rolled_back) continue;
    saw_rollback = true;
    EXPECT_FALSE(result.committed);
    EXPECT_GT(result.retries, 0u);
    EXPECT_EQ(rules.RuleCountForFlow(flow), old_path.links.size());
    EXPECT_EQ(rules.IngressVersion(flow), 0u);
    const auto fwd = ForwardPacket(fx.ft.graph(), rules, flow,
                                   old_path.source(), old_path.destination());
    EXPECT_EQ(fwd.outcome, consistent::ForwardOutcome::kDelivered);
    EXPECT_EQ(fwd.hops, old_path.nodes);
  }
  EXPECT_TRUE(saw_rollback);
}

TEST(FlakyApplyTest, PastCommitPointRollsForwardToNewPath) {
  // Installs only fail in phase 1; with the flip applied the remaining ops
  // are flips/removes, which never fail — so any run that reaches the flip
  // must commit and land on the new path.
  Fixture fx;
  const FlowId flow{2};
  const auto& paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(13));
  const auto schedule =
      consistent::PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);

  FlakyInstallModel flaky;
  flaky.failure_probability = 0.3;
  RetryPolicy retry;
  retry.max_attempts = 5;

  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    consistent::RuleTable rules;
    ApplyAll(rules, consistent::PlanInitialInstall(flow, paths[0], 0));
    Rng rng(seed);
    const FlakyApplyResult result =
        ApplyWithFaults(rules, schedule, flaky, retry, rng);
    ASSERT_TRUE(result.committed != result.rolled_back);
    if (!result.committed) continue;
    const auto fwd = ForwardPacket(fx.ft.graph(), rules, flow,
                                   paths[1].source(), paths[1].destination());
    EXPECT_EQ(fwd.outcome, consistent::ForwardOutcome::kDelivered);
    EXPECT_EQ(fwd.hops, paths[1].nodes);
  }
}

}  // namespace
}  // namespace nu::fault
