// Fault subsystem: deterministic fault plans, the injector's flaky-install
// sampling, victim computation / fault-state application on the network,
// and the rule-level flaky apply with rollback.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "consistent/two_phase.h"
#include "fault/flaky_apply.h"
#include "fault/injector.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::fault {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  FlowId PlaceFlow(NodeId src, NodeId dst, Mbps demand,
                   std::size_t path_index = 0) {
    const auto& paths = provider.Paths(src, dst);
    flow::Flow f;
    f.src = src;
    f.dst = dst;
    f.demand = demand;
    f.duration = 10.0;
    return network.Place(std::move(f), paths.at(path_index));
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

TEST(FaultPlanTest, SpecsStaySortedByTime) {
  FaultPlan plan;
  plan.AddLinkDown(5.0, LinkId{3});
  plan.AddSwitchDown(1.0, NodeId{2});
  plan.AddLinkUp(3.0, LinkId{3});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.specs()[0].time, 1.0);
  EXPECT_DOUBLE_EQ(plan.specs()[1].time, 3.0);
  EXPECT_DOUBLE_EQ(plan.specs()[2].time, 5.0);
}

TEST(FaultPlanTest, EqualTimesKeepInsertionOrder) {
  FaultPlan plan;
  plan.AddLinkDown(2.0, LinkId{1});
  plan.AddLinkDown(2.0, LinkId{2});
  plan.AddLinkDown(2.0, LinkId{3});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.specs()[0].link, LinkId{1});
  EXPECT_EQ(plan.specs()[1].link, LinkId{2});
  EXPECT_EQ(plan.specs()[2].link, LinkId{3});
}

TEST(FaultPlanTest, OutageSchedulesDownThenUp) {
  FaultPlan plan;
  plan.AddLinkOutage(1.0, 4.0, LinkId{7});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kLinkUp);
  EXPECT_DOUBLE_EQ(plan.specs()[1].time, 5.0);

  FaultPlan permanent;
  // A non-positive outage is a plan-build error; permanent failures are
  // spelled AddSwitchDown.
  EXPECT_THROW(permanent.AddSwitchOutage(1.0, 0.0, NodeId{3}),
               FaultPlanError);
  permanent.AddSwitchDown(1.0, NodeId{3});
  EXPECT_EQ(permanent.size(), 1u);
}

TEST(RandomLinkFaultPlanTest, DeterministicAndFabricOnly) {
  Fixture fx;
  RandomLinkFaultOptions options;
  options.failures = 3;

  Rng rng_a(11);
  Rng rng_b(11);
  const FaultPlan a = MakeRandomLinkFaultPlan(fx.ft.graph(), options, rng_a);
  const FaultPlan b = MakeRandomLinkFaultPlan(fx.ft.graph(), options, rng_b);
  ASSERT_EQ(a.size(), 6u);  // 3 outages = 3 downs + 3 ups
  ASSERT_EQ(a.size(), b.size());
  std::set<LinkId::rep_type> victims;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].link, b.specs()[i].link);
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    const topo::Link& l = fx.ft.graph().link(a.specs()[i].link);
    EXPECT_NE(fx.ft.graph().node(l.src).role, topo::NodeRole::kHost);
    EXPECT_NE(fx.ft.graph().node(l.dst).role, topo::NodeRole::kHost);
    if (a.specs()[i].kind == FaultKind::kLinkDown) {
      victims.insert(a.specs()[i].link.value());
    }
  }
  EXPECT_EQ(victims.size(), 3u);  // distinct cables
}

TEST(FaultPlanValidationTest, RejectsNonPositiveOutages) {
  FaultPlan plan;
  EXPECT_THROW(plan.AddLinkOutage(1.0, 0.0, LinkId{1}), FaultPlanError);
  EXPECT_THROW(plan.AddLinkOutage(1.0, -2.0, LinkId{1}), FaultPlanError);
  EXPECT_THROW(plan.AddSwitchOutage(1.0, -1.0, NodeId{1}), FaultPlanError);
  EXPECT_THROW(plan.AddLinkDown(-0.5, LinkId{1}), FaultPlanError);
  EXPECT_TRUE(plan.empty());  // failed adds leave the plan untouched
}

TEST(FaultPlanValidationTest, RejectsInvalidIdsAtBuildTime) {
  FaultPlan plan;
  EXPECT_THROW(plan.AddLinkDown(1.0, LinkId::invalid()), FaultPlanError);
  EXPECT_THROW(plan.AddSwitchDown(1.0, NodeId::invalid()), FaultPlanError);
  EXPECT_THROW(plan.AddGroupDown(1.0, 0), FaultPlanError);  // no groups yet
}

TEST(FaultPlanValidationTest, RejectsEmptyAndMisnamedGroups) {
  FaultPlan plan;
  EXPECT_THROW(plan.AddGroup(SharedRiskGroup{}), FaultPlanError);
  SharedRiskGroup unnamed;
  unnamed.nodes.push_back(NodeId{1});
  EXPECT_THROW(plan.AddGroup(unnamed), FaultPlanError);
  SharedRiskGroup spaced;
  spaced.name = "pod 0";  // whitespace would break the text format
  spaced.nodes.push_back(NodeId{1});
  EXPECT_THROW(plan.AddGroup(spaced), FaultPlanError);
}

TEST(FaultPlanValidationTest, ValidateRejectsNonexistentTopologyIds) {
  Fixture fx;
  const auto last_link =
      static_cast<LinkId::rep_type>(fx.ft.graph().link_count());
  FaultPlan bad_link;
  bad_link.AddLinkDown(1.0, LinkId{last_link});
  EXPECT_THROW((void)bad_link.Validate(fx.ft.graph()), FaultPlanError);

  FaultPlan bad_node;
  bad_node.AddSwitchDown(
      1.0, NodeId{static_cast<NodeId::rep_type>(fx.ft.graph().node_count())});
  EXPECT_THROW((void)bad_node.Validate(fx.ft.graph()), FaultPlanError);

  FaultPlan bad_group;
  SharedRiskGroup group;
  group.name = "bogus";
  group.links.push_back(LinkId{last_link});
  bad_group.AddGroupDown(1.0, bad_group.AddGroup(group));
  EXPECT_THROW((void)bad_group.Validate(fx.ft.graph()), FaultPlanError);

  FaultPlan good;
  good.AddLinkOutage(1.0, 2.0, LinkId{0});
  EXPECT_NO_THROW((void)good.Validate(fx.ft.graph()));
}

TEST(FaultPlanTest, RollingDrainStaggersGroupMembers) {
  FaultPlan plan;
  SharedRiskGroup group;
  group.name = "batch";
  group.nodes = {NodeId{1}, NodeId{2}};
  group.links = {LinkId{5}};
  const std::size_t idx = plan.AddGroup(group);
  plan.AddRollingDrain(10.0, 0.5, 1.0, idx);
  // Each of the 3 members expands to a primitive down + up pair.
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kSwitchDown);
  EXPECT_EQ(plan.specs()[0].node, NodeId{1});
  EXPECT_DOUBLE_EQ(plan.specs()[0].time, 10.0);
  // Nodes first (declaration order), then links, `stagger` apart.
  EXPECT_DOUBLE_EQ(plan.specs()[1].time, 10.5);
  EXPECT_EQ(plan.specs()[1].node, NodeId{2});
  // At t=11.0 the first node's up (inserted earlier) precedes the link's
  // down — equal times keep insertion order.
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kSwitchUp);
  EXPECT_EQ(plan.specs()[2].node, NodeId{1});
  EXPECT_DOUBLE_EQ(plan.specs()[2].time, 11.0);
  const FaultSpec& link_down = plan.specs()[3];
  EXPECT_EQ(link_down.kind, FaultKind::kLinkDown);
  EXPECT_EQ(link_down.link, LinkId{5});
  EXPECT_DOUBLE_EQ(link_down.time, 11.0);
  EXPECT_EQ(plan.specs()[5].kind, FaultKind::kLinkUp);
  EXPECT_DOUBLE_EQ(plan.specs()[5].time, 12.0);
}

TEST(GroupFaultTest, GroupDownIsOneEpochBumpAcrossAllMembers) {
  Fixture fx;
  // Pod 0's switches plus one explicit fabric cable.
  SharedRiskGroup group;
  group.name = "pod0";
  group.nodes = {fx.ft.edge(0, 0), fx.ft.edge(0, 1), fx.ft.agg(0, 0),
                 fx.ft.agg(0, 1)};
  group.links = {fx.ft.graph().FindLink(fx.ft.agg(1, 0), fx.ft.core(0))};
  FaultPlan plan;
  const std::size_t idx = plan.AddGroup(group);
  plan.AddGroupOutage(1.0, 2.0, idx);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kGroupDown);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kGroupUp);

  const std::uint64_t before = fx.network.topology_epoch();
  ApplyFaultState(fx.network, plan.specs()[0], plan.groups());
  EXPECT_EQ(fx.network.topology_epoch(), before + 1);  // ONE transition
  for (NodeId node : group.nodes) EXPECT_FALSE(fx.network.NodeUp(node));
  for (LinkId link : group.links) EXPECT_FALSE(fx.network.LinkUp(link));

  ApplyFaultState(fx.network, plan.specs()[1], plan.groups());
  EXPECT_EQ(fx.network.topology_epoch(), before + 2);
  for (NodeId node : group.nodes) EXPECT_TRUE(fx.network.NodeUp(node));
  for (LinkId link : group.links) EXPECT_TRUE(fx.network.LinkUp(link));
}

TEST(GroupFaultTest, AffectedFlowsSweepsEveryMember) {
  Fixture fx;
  // One flow through pod 0's edge switch, one crossing the named cable,
  // one entirely outside the group.
  const FlowId inside = fx.PlaceFlow(fx.ft.host(0), fx.ft.host(2), 5.0);
  const FlowId outside = fx.PlaceFlow(fx.ft.host(8), fx.ft.host(9), 5.0);

  SharedRiskGroup group;
  group.name = "edge0";
  group.nodes = {fx.ft.edge(0, 0)};
  FaultPlan plan;
  plan.AddGroupDown(1.0, plan.AddGroup(group));

  const std::vector<FlowId> victims =
      AffectedFlows(fx.network, plan.specs()[0], plan.groups());
  EXPECT_NE(std::find(victims.begin(), victims.end(), inside), victims.end());
  EXPECT_EQ(std::find(victims.begin(), victims.end(), outside),
            victims.end());
}

TEST(InjectorTest, StormWindowOverridesBaselineModel) {
  FaultConfig config;
  // Healthy, jitter-free baseline: outside a storm every install succeeds
  // first try with latency factor exactly 1.
  config.retry.max_attempts = 2;
  config.retry.base_delay = 0.01;
  FlakyStorm storm;
  storm.start = 10.0;
  storm.duration = 5.0;
  storm.model.latency_jitter_frac = 0.5;  // jitter only inside the window
  config.storms.push_back(storm);
  FaultInjector injector(config, 99);

  // Outside the window the baseline model applies.
  EXPECT_DOUBLE_EQ(injector.SampleInstall(0.1, 0.0).latency_factor, 1.0);
  EXPECT_DOUBLE_EQ(injector.SampleInstall(0.1, 15.0).latency_factor,
                   1.0);  // end exclusive
  // Inside it, the storm's degraded model governs: jittered latency.
  const InstallTrial in_storm = injector.SampleInstall(0.1, 10.0);
  EXPECT_TRUE(in_storm.success);
  EXPECT_GT(in_storm.latency_factor, 1.0);
  EXPECT_LT(in_storm.latency_factor, 1.5);
  EXPECT_GT(injector.SampleInstall(0.1, 14.9).latency_factor, 1.0);
}

TEST(InjectorTest, DisabledModelPassesThrough) {
  FaultConfig config;  // flaky disabled
  FaultInjector injector(config, 42);
  const InstallTrial trial = injector.SampleInstall(0.5);
  EXPECT_TRUE(trial.success);
  EXPECT_EQ(trial.attempts, 1u);
  EXPECT_DOUBLE_EQ(trial.wasted_delay, 0.0);
  EXPECT_DOUBLE_EQ(trial.latency_factor, 1.0);
}

TEST(InjectorTest, SamplingIsDeterministicPerSeed) {
  FaultConfig config;
  config.flaky.failure_probability = 0.3;
  config.flaky.latency_jitter_frac = 0.2;
  FaultInjector a(config, 7);
  FaultInjector b(config, 7);
  for (int i = 0; i < 200; ++i) {
    const InstallTrial ta = a.SampleInstall(0.1);
    const InstallTrial tb = b.SampleInstall(0.1);
    EXPECT_EQ(ta.attempts, tb.attempts);
    EXPECT_EQ(ta.success, tb.success);
    EXPECT_DOUBLE_EQ(ta.wasted_delay, tb.wasted_delay);
    EXPECT_DOUBLE_EQ(ta.latency_factor, tb.latency_factor);
  }
}

TEST(InjectorTest, HighFailureRateEventuallyExhaustsRetries) {
  FaultConfig config;
  config.flaky.failure_probability = 0.9;
  config.retry.max_attempts = 3;
  FaultInjector injector(config, 13);
  std::size_t failures = 0;
  std::size_t retries = 0;
  for (int i = 0; i < 300; ++i) {
    const InstallTrial trial = injector.SampleInstall(0.1);
    EXPECT_LE(trial.attempts, 3u);
    if (!trial.success) {
      ++failures;
      EXPECT_EQ(trial.attempts, 3u);
      // Two failed attempt latencies plus two backoff waits were spent.
      EXPECT_GT(trial.wasted_delay, 0.2);
    }
    if (trial.attempts > 1) ++retries;
  }
  EXPECT_GT(failures, 0u);
  EXPECT_GT(retries, 0u);
}

TEST(InjectorTest, JitterStretchesLatencyWithinBounds) {
  FaultConfig config;
  config.flaky.latency_jitter_frac = 0.5;  // failures off: jitter only
  FaultInjector injector(config, 3);
  for (int i = 0; i < 100; ++i) {
    const InstallTrial trial = injector.SampleInstall(1.0);
    EXPECT_TRUE(trial.success);
    EXPECT_GE(trial.latency_factor, 1.0);
    EXPECT_LT(trial.latency_factor, 1.5);
  }
}

TEST(AffectedFlowsTest, LinkFaultStrandsBothDirections) {
  Fixture fx;
  const NodeId src = fx.ft.host(0);
  const NodeId dst = fx.ft.host(12);
  const FlowId forward = fx.PlaceFlow(src, dst, 10.0);
  const FlowId backward = fx.PlaceFlow(dst, src, 10.0);

  // Fail the first fabric link of the forward flow's path; the backward
  // flow's reverse path shares the cable only if it chose the mirrored
  // route, so assert on the forward flow and on determinism of the rest.
  const topo::Path& path = fx.network.PathOf(forward);
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDown;
  spec.link = path.links[0];
  const auto victims = AffectedFlows(fx.network, spec);
  EXPECT_TRUE(std::find(victims.begin(), victims.end(), forward) !=
              victims.end());
  // Sorted ascending, no duplicates.
  EXPECT_TRUE(std::is_sorted(victims.begin(), victims.end()));
  EXPECT_TRUE(std::adjacent_find(victims.begin(), victims.end()) ==
              victims.end());

  // The host uplink is shared by both directions' endpoints: failing it
  // strands both flows.
  FaultSpec uplink;
  uplink.kind = FaultKind::kLinkDown;
  uplink.link = fx.ft.graph().FindLink(src, path.nodes[1]);
  const auto both = AffectedFlows(fx.network, uplink);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0], std::min(forward, backward));
  EXPECT_EQ(both[1], std::max(forward, backward));
}

TEST(AffectedFlowsTest, SwitchFaultStrandsEveryFlowThroughIt) {
  Fixture fx;
  const FlowId f = fx.PlaceFlow(fx.ft.host(0), fx.ft.host(12), 10.0);
  const topo::Path& path = fx.network.PathOf(f);
  FaultSpec spec;
  spec.kind = FaultKind::kSwitchDown;
  spec.node = path.nodes[path.nodes.size() / 2];  // a core/agg switch
  const auto victims = AffectedFlows(fx.network, spec);
  EXPECT_TRUE(std::find(victims.begin(), victims.end(), f) != victims.end());
}

TEST(AffectedFlowsTest, UpEventsStrandNothing) {
  Fixture fx;
  const FlowId f = fx.PlaceFlow(fx.ft.host(0), fx.ft.host(12), 10.0);
  const topo::Path& path = fx.network.PathOf(f);
  FaultSpec spec;
  spec.kind = FaultKind::kLinkUp;
  spec.link = path.links[0];
  EXPECT_TRUE(AffectedFlows(fx.network, spec).empty());
}

TEST(ApplyFaultStateTest, LinkFaultTakesDownBothDirectionsOfTheCable) {
  Fixture fx;
  const LinkId forward = fx.ft.graph().links()[0].id;
  const topo::Link& l = fx.ft.graph().link(forward);
  const LinkId reverse = fx.ft.graph().FindLink(l.dst, l.src);
  ASSERT_TRUE(reverse.valid());

  FaultSpec down;
  down.kind = FaultKind::kLinkDown;
  down.link = forward;
  ApplyFaultState(fx.network, down);
  EXPECT_FALSE(fx.network.LinkUp(forward));
  EXPECT_FALSE(fx.network.LinkUp(reverse));

  FaultSpec up = down;
  up.kind = FaultKind::kLinkUp;
  ApplyFaultState(fx.network, up);
  EXPECT_TRUE(fx.network.LinkUp(forward));
  EXPECT_TRUE(fx.network.LinkUp(reverse));
  EXPECT_EQ(fx.network.down_link_count(), 0u);
}

TEST(ApplyFaultStateTest, DoesNotRemoveStrandedFlows) {
  Fixture fx;
  const FlowId f = fx.PlaceFlow(fx.ft.host(0), fx.ft.host(12), 10.0);
  FaultSpec spec;
  spec.kind = FaultKind::kSwitchDown;
  spec.node = fx.network.PathOf(f).nodes[1];
  ApplyFaultState(fx.network, spec);
  EXPECT_TRUE(fx.network.HasFlow(f));  // victim fate is the caller's call
  EXPECT_FALSE(fx.network.CheckInvariants());
  fx.network.Remove(f);
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(FlakyApplyTest, HealthyPipelineCommitsEverything) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  consistent::RuleTable rules;
  ApplyAll(rules, consistent::PlanInitialInstall(flow, paths[0], 0));
  const auto schedule =
      consistent::PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);

  FlakyInstallModel healthy;  // p = 0
  RetryPolicy retry;
  Rng rng(1);
  const FlakyApplyResult result =
      ApplyWithFaults(rules, schedule, healthy, retry, rng, 0.001);
  EXPECT_TRUE(result.committed);
  EXPECT_FALSE(result.rolled_back);
  EXPECT_EQ(result.applied_ops, schedule.size());
  EXPECT_EQ(result.retries, 0u);
  EXPECT_DOUBLE_EQ(result.elapsed,
                   0.001 * static_cast<double>(schedule.size()));
  EXPECT_EQ(rules.RuleCountForFlow(flow), paths[1].links.size());
}

TEST(FlakyApplyTest, ExhaustedInstallRollsBackToPreUpdateState) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];
  const auto schedule =
      consistent::PlanTwoPhaseReroute(flow, old_path, new_path, 0);

  FlakyInstallModel flaky;
  flaky.failure_probability = 0.6;
  RetryPolicy retry;
  retry.max_attempts = 2;

  // Sweep seeds until one aborts; each aborted run must restore the exact
  // pre-update table and keep delivering on the old path.
  bool saw_rollback = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    consistent::RuleTable rules;
    ApplyAll(rules, consistent::PlanInitialInstall(flow, old_path, 0));
    Rng rng(seed);
    const FlakyApplyResult result =
        ApplyWithFaults(rules, schedule, flaky, retry, rng);
    if (!result.rolled_back) continue;
    saw_rollback = true;
    EXPECT_FALSE(result.committed);
    EXPECT_GT(result.retries, 0u);
    EXPECT_EQ(rules.RuleCountForFlow(flow), old_path.links.size());
    EXPECT_EQ(rules.IngressVersion(flow), 0u);
    const auto fwd = ForwardPacket(fx.ft.graph(), rules, flow,
                                   old_path.source(), old_path.destination());
    EXPECT_EQ(fwd.outcome, consistent::ForwardOutcome::kDelivered);
    EXPECT_EQ(fwd.hops, old_path.nodes);
  }
  EXPECT_TRUE(saw_rollback);
}

TEST(FlakyApplyTest, PastCommitPointRollsForwardToNewPath) {
  // Installs only fail in phase 1; with the flip applied the remaining ops
  // are flips/removes, which never fail — so any run that reaches the flip
  // must commit and land on the new path.
  Fixture fx;
  const FlowId flow{2};
  const auto& paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(13));
  const auto schedule =
      consistent::PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);

  FlakyInstallModel flaky;
  flaky.failure_probability = 0.3;
  RetryPolicy retry;
  retry.max_attempts = 5;

  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    consistent::RuleTable rules;
    ApplyAll(rules, consistent::PlanInitialInstall(flow, paths[0], 0));
    Rng rng(seed);
    const FlakyApplyResult result =
        ApplyWithFaults(rules, schedule, flaky, retry, rng);
    ASSERT_TRUE(result.committed != result.rolled_back);
    if (!result.committed) continue;
    const auto fwd = ForwardPacket(fx.ft.graph(), rules, flow,
                                   paths[1].source(), paths[1].destination());
    EXPECT_EQ(fwd.outcome, consistent::ForwardOutcome::kDelivered);
    EXPECT_EQ(fwd.hops, paths[1].nodes);
  }
}

}  // namespace
}  // namespace nu::fault
