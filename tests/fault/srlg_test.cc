// Shared-risk-group derivation: the canonical Fat-Tree / leaf-spine
// catalogs, their deterministic ordering, and id validation.
#include <gtest/gtest.h>

#include <set>

#include "fault/srlg.h"
#include "topo/fat_tree.h"
#include "topo/leaf_spine.h"

namespace nu::fault {
namespace {

TEST(SrlgTest, FatTreeCatalogShape) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const std::vector<SharedRiskGroup> groups = DeriveFatTreeSrlgs(ft);
  // k pods + k/2 core planes.
  ASSERT_EQ(groups.size(), 4u + 2u);
  for (std::size_t pod = 0; pod < 4; ++pod) {
    EXPECT_EQ(groups[pod].name, "pod" + std::to_string(pod));
    // k/2 edge + k/2 aggregation switches, hosts excluded.
    EXPECT_EQ(groups[pod].nodes.size(), 4u);
    EXPECT_TRUE(groups[pod].links.empty());
  }
  EXPECT_EQ(groups[4].name, "core-plane0");
  EXPECT_EQ(groups[5].name, "core-plane1");
  EXPECT_EQ(groups[4].nodes.size(), 2u);
  EXPECT_EQ(groups[5].nodes.size(), 2u);
}

TEST(SrlgTest, FatTreeGroupsAreDisjointAndValid) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 6, .link_capacity = 100.0});
  const std::vector<SharedRiskGroup> groups = DeriveFatTreeSrlgs(ft);
  std::set<NodeId::rep_type> seen;
  for (const SharedRiskGroup& group : groups) {
    EXPECT_FALSE(group.empty());
    EXPECT_TRUE(GroupIdsValid(group, ft.graph())) << group.name;
    for (NodeId node : group.nodes) {
      EXPECT_TRUE(seen.insert(node.value()).second)
          << "node " << node.value() << " in two groups";
    }
  }
  // Every non-host switch is covered: k pods x k switches + (k/2)^2 cores.
  EXPECT_EQ(seen.size(), 6u * 6u + 9u);
}

TEST(SrlgTest, DerivationIsDeterministic) {
  const topo::FatTree a(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTree b(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  EXPECT_EQ(DeriveFatTreeSrlgs(a), DeriveFatTreeSrlgs(b));
}

TEST(SrlgTest, LeafSpineCatalog) {
  const topo::LeafSpine ls(
      topo::LeafSpineConfig{.leaves = 4, .spines = 2, .hosts_per_leaf = 2});
  const std::vector<SharedRiskGroup> groups = DeriveLeafSpineSrlgs(ls);
  ASSERT_EQ(groups.size(), 2u + 4u);
  EXPECT_EQ(groups[0].name, "spine0");
  EXPECT_EQ(groups[2].name, "leaf0");
  for (const SharedRiskGroup& group : groups) {
    EXPECT_EQ(group.size(), 1u);
    EXPECT_TRUE(GroupIdsValid(group, ls.graph()));
  }
}

TEST(SrlgTest, GroupIdsValidRejectsOutOfRange) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  SharedRiskGroup group;
  group.name = "bogus";
  group.nodes.push_back(NodeId{static_cast<NodeId::rep_type>(
      ft.graph().node_count())});
  EXPECT_FALSE(GroupIdsValid(group, ft.graph()));
  group.nodes.clear();
  group.links.push_back(LinkId::invalid());
  EXPECT_FALSE(GroupIdsValid(group, ft.graph()));
}

}  // namespace
}  // namespace nu::fault
