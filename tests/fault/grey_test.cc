// Grey-failure model: compact spec parsing/formatting round-trips,
// validation, and the deterministic first-match SampleGrey draw.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "fault/fault_plan.h"

namespace nu::fault {
namespace {

TEST(GreyModelTest, ParseSpecForms) {
  const GreyFailureSpec bare = ParseGreySpec("acklie:0.3");
  EXPECT_EQ(bare.kind, GreyKind::kAckLie);
  EXPECT_EQ(bare.probability, 0.3);
  EXPECT_EQ(bare.min_delay, 0.0);
  EXPECT_FALSE(bare.node.valid());

  const GreyFailureSpec delayed = ParseGreySpec("straggler:0.5:0.25:1.5");
  EXPECT_EQ(delayed.kind, GreyKind::kStraggler);
  EXPECT_EQ(delayed.min_delay, 0.25);
  EXPECT_EQ(delayed.max_delay, 1.5);

  const GreyFailureSpec windowed = ParseGreySpec("loss:0.1:1:4:2:6");
  EXPECT_EQ(windowed.kind, GreyKind::kRuleLoss);
  EXPECT_EQ(windowed.start, 2.0);
  EXPECT_EQ(windowed.duration, 6.0);

  const GreyFailureSpec targeted = ParseGreySpec("acklie:0.2:0:0:0:0:5");
  EXPECT_TRUE(targeted.node.valid());
  EXPECT_EQ(targeted.node, NodeId{5});
  EXPECT_FALSE(ParseGreySpec("acklie:0.2:0:0:0:0:-1").node.valid());
}

TEST(GreyModelTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)ParseGreySpec(""), FaultPlanError);
  EXPECT_THROW((void)ParseGreySpec("acklie"), FaultPlanError);
  EXPECT_THROW((void)ParseGreySpec("warp:0.3"), FaultPlanError);
  EXPECT_THROW((void)ParseGreySpec("acklie:x"), FaultPlanError);
  EXPECT_THROW((void)ParseGreySpec("acklie:0.3:1"), FaultPlanError);  // 3 fields
}

TEST(GreyModelTest, ValidateRejectsBadSpecs) {
  GreyFailureModel model;
  model.specs.push_back(ParseGreySpec("acklie:0.5"));
  EXPECT_NO_THROW((void)model.Validate());

  model.specs[0].probability = 1.5;
  EXPECT_THROW((void)model.Validate(), FaultPlanError);
  model.specs[0].probability = 0.5;

  // Delayed kinds need max_delay > 0; inverted windows are rejected.
  model.specs.push_back(ParseGreySpec("straggler:0.5:0.25:1.5"));
  model.specs[1].min_delay = 0.0;
  model.specs[1].max_delay = 0.0;
  EXPECT_THROW((void)model.Validate(), FaultPlanError);
  model.specs[1].min_delay = 1.5;
  model.specs[1].max_delay = 0.5;
  EXPECT_THROW((void)model.Validate(), FaultPlanError);
}

TEST(GreyModelTest, SpecAndModelRoundTrip) {
  for (const std::string text :
       {"acklie:0.3", "straggler:0.5:0.25:1.5", "loss:0.1:1:4:2:6",
        "acklie:0.2:0:0:0:0:5"}) {
    EXPECT_EQ(FormatGreySpec(ParseGreySpec(text)), text) << text;
  }
  const std::string joined = "acklie:0.3+loss:0.1:1:4";
  const GreyFailureModel model = ParseGreyModel(joined);
  ASSERT_EQ(model.specs.size(), 2u);
  EXPECT_EQ(FormatGreyModel(model), joined);
  EXPECT_TRUE(ParseGreyModel("").specs.empty());
  EXPECT_FALSE(ParseGreyModel("").enabled());
}

TEST(GreyModelTest, SampleIsDeterministicPerSeed) {
  const GreyFailureModel model =
      ParseGreyModel("acklie:0.4+straggler:0.3:0.5:1+loss:0.2:1:2");
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 200; ++i) {
    const Seconds now = 0.1 * static_cast<double>(i);
    const GreyOutcome oa = SampleGrey(model, NodeId{3}, now, a);
    const GreyOutcome ob = SampleGrey(model, NodeId{3}, now, b);
    EXPECT_EQ(oa.kind, ob.kind);
    EXPECT_EQ(oa.delay, ob.delay);
  }
}

TEST(GreyModelTest, FirstMatchingSpecWins) {
  // probability 1 on the first spec: the second can never fire.
  const GreyFailureModel model = ParseGreyModel("acklie:1+loss:1:1:2");
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleGrey(model, NodeId{1}, 0.0, rng).kind,
              GreyOutcome::Kind::kAckLie);
  }
}

TEST(GreyModelTest, WindowAndTargetFilters) {
  // Window [2, 6) on switch 5 only.
  const GreyFailureModel model = ParseGreyModel("acklie:1:0:0:2:4:5");
  Rng rng(7);
  EXPECT_EQ(SampleGrey(model, NodeId{5}, 1.0, rng).kind,
            GreyOutcome::Kind::kApplied);  // before the window
  EXPECT_EQ(SampleGrey(model, NodeId{5}, 2.0, rng).kind,
            GreyOutcome::Kind::kAckLie);
  EXPECT_EQ(SampleGrey(model, NodeId{5}, 6.0, rng).kind,
            GreyOutcome::Kind::kApplied);  // window end is exclusive
  EXPECT_EQ(SampleGrey(model, NodeId{4}, 3.0, rng).kind,
            GreyOutcome::Kind::kApplied);  // different switch
}

TEST(GreyModelTest, DelayedKindsSampleInsideTheirWindow) {
  const GreyFailureModel model = ParseGreyModel("straggler:1:0.5:1.5");
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const GreyOutcome out = SampleGrey(model, NodeId{2}, 0.0, rng);
    ASSERT_EQ(out.kind, GreyOutcome::Kind::kStraggler);
    EXPECT_GE(out.delay, 0.5);
    EXPECT_LT(out.delay, 1.5);
  }
}

TEST(GreyModelTest, FaultConfigEnabledIncludesGrey) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
  config.grey = ParseGreyModel("acklie:0.1");
  EXPECT_TRUE(config.enabled());
}

}  // namespace
}  // namespace nu::fault
