// Overload-to-cascade engine: the stress monitor's threshold + hold-time
// model, the secondary-failure budget, depth tracking, and state
// serialization.
#include <gtest/gtest.h>

#include "common/binio.h"
#include "fault/cascade.h"
#include "guard/overload.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::fault {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  /// Saturates one fabric link (edge -> agg) to `fraction` of capacity and
  /// returns it.
  LinkId Saturate(double fraction) {
    const NodeId edge = ft.edge(0, 0);
    const NodeId agg = ft.agg(0, 0);
    const LinkId link = ft.graph().FindLink(edge, agg);
    flow::Flow f;
    f.src = edge;
    f.dst = agg;
    f.demand = fraction * ft.graph().link(link).capacity;
    f.duration = 100.0;
    topo::Path path;
    path.nodes = {edge, agg};
    path.links = {link};
    network.Place(std::move(f), path);
    return link;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

CascadeConfig TestConfig() {
  CascadeConfig config;
  config.max_secondary_failures = 2;
  config.utilization_threshold = 0.9;
  config.hold_time = 1.0;
  config.outage = 2.0;
  return config;
}

TEST(CascadeTest, TripsOnlyAfterHoldTime) {
  Fixture fx;
  const LinkId hot = fx.Saturate(0.95);
  CascadeEngine engine(TestConfig());
  engine.OnPrimaryFault();
  EXPECT_TRUE(engine.Observe(fx.network, 0.0).empty());  // episode starts
  EXPECT_TRUE(engine.Observe(fx.network, 0.5).empty());  // still holding
  const std::vector<CascadeEvent> fired = engine.Observe(fx.network, 1.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].link, hot);
  EXPECT_EQ(fired[0].depth, 2u);  // primary was depth 1
  EXPECT_EQ(engine.fired(), 1u);
  EXPECT_EQ(engine.max_depth(), 2u);
  // Latched: the same sustained episode does not re-fire.
  EXPECT_TRUE(engine.Observe(fx.network, 2.0).empty());
}

TEST(CascadeTest, BelowThresholdNeverTrips) {
  Fixture fx;
  fx.Saturate(0.5);
  CascadeEngine engine(TestConfig());
  for (double t = 0.0; t < 5.0; t += 0.5) {
    EXPECT_TRUE(engine.Observe(fx.network, t).empty());
  }
  EXPECT_EQ(engine.fired(), 0u);
}

TEST(CascadeTest, BudgetBoundsSecondaryFailures) {
  Fixture fx;
  fx.Saturate(0.95);
  CascadeConfig config = TestConfig();
  config.max_secondary_failures = 0;  // disabled entirely
  CascadeEngine disabled(config);
  EXPECT_TRUE(disabled.Observe(fx.network, 0.0).empty());
  EXPECT_TRUE(disabled.Observe(fx.network, 2.0).empty());
}

TEST(CascadeTest, CascadeWithoutPrimaryStillFiresAtDepthTwo) {
  // Overload can cascade even with no plan fault outstanding (pure load
  // spike); depth floors at 2 — it is still a secondary phenomenon.
  Fixture fx;
  fx.Saturate(0.95);
  CascadeEngine engine(TestConfig());
  (void)engine.Observe(fx.network, 0.0);
  const std::vector<CascadeEvent> fired = engine.Observe(fx.network, 1.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].depth, 2u);
}

TEST(CascadeTest, StateRoundTripsThroughSnapshot) {
  Fixture fx;
  fx.Saturate(0.95);
  CascadeEngine engine(TestConfig());
  engine.OnPrimaryFault();
  (void)engine.Observe(fx.network, 0.0);
  (void)engine.Observe(fx.network, 1.0);
  ASSERT_EQ(engine.fired(), 1u);

  BinWriter w;
  engine.SaveState(w);
  CascadeEngine restored(TestConfig());
  BinReader r(w.buffer());
  restored.LoadState(r);
  EXPECT_EQ(restored.fired(), engine.fired());
  EXPECT_EQ(restored.max_depth(), engine.max_depth());
  // The restored monitor remembers the latched episode too.
  EXPECT_TRUE(restored.Observe(fx.network, 2.0).empty());
}

TEST(LinkStressMonitorTest, DownLinksClearEpisodes) {
  Fixture fx;
  const LinkId hot = fx.Saturate(0.95);
  guard::LinkStressMonitor monitor({0.9, 1.0});
  EXPECT_TRUE(monitor.Observe(fx.network, 0.0).empty());
  fx.network.SetLinkUp(hot, false);
  // The down link cannot trip: its episode is cleared while it is out.
  EXPECT_TRUE(monitor.Observe(fx.network, 1.5).empty());
  fx.network.SetLinkUp(hot, true);
  // Fresh episode after revival: needs a fresh hold interval.
  EXPECT_TRUE(monitor.Observe(fx.network, 2.0).empty());
  EXPECT_EQ(monitor.Observe(fx.network, 3.0).size(), 1u);
}

}  // namespace
}  // namespace nu::fault
