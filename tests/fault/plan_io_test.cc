// Fault-plan text serialization: exact round-trips, platform-independent
// bytes (pinned by a golden file), and clear errors on malformed input.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/fault_plan.h"
#include "topo/fat_tree.h"

namespace nu::fault {
namespace {

namespace fs = std::filesystem;

FaultPlan SamplePlan() {
  FaultPlan plan;
  SharedRiskGroup pod;
  pod.name = "pod0";
  pod.nodes = {NodeId{1}, NodeId{2}};
  SharedRiskGroup plane;
  plane.name = "core-plane1";
  plane.nodes = {NodeId{7}};
  plane.links = {LinkId{3}, LinkId{4}};
  const std::size_t pod_idx = plan.AddGroup(pod);
  const std::size_t plane_idx = plan.AddGroup(plane);
  plan.AddLinkOutage(0.5, 2.25, LinkId{11});
  plan.AddSwitchDown(1.0, NodeId{5});
  plan.AddGroupOutage(1.5, 3.0, pod_idx);
  plan.AddRollingDrain(4.0, 0.5, 1.0, plane_idx);
  return plan;
}

TEST(PlanIoTest, RoundTripsExactly) {
  const FaultPlan plan = SamplePlan();
  std::stringstream buf;
  plan.SaveText(buf);
  const FaultPlan loaded = FaultPlan::LoadText(buf);
  EXPECT_EQ(plan, loaded);
  // Second generation byte-identical to the first: the format is a fixed
  // point, not merely semantically stable.
  std::ostringstream first;
  plan.SaveText(first);
  std::ostringstream second;
  loaded.SaveText(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(PlanIoTest, MatchesGoldenBytes) {
  // Pinned across platforms: times serialize via shortest round-trip
  // formatting, so these bytes must not depend on locale or long-double
  // quirks. Regenerate only for an intentional format change:
  //   NU_REGEN_PLAN_GOLDEN=1 build/tests/test_fault
  //       --gtest_filter='*MatchesGoldenBytes*'  (one command line)
  const fs::path golden =
      fs::path(__FILE__).parent_path() / "golden" / "sample_plan.txt";
  std::ostringstream got;
  SamplePlan().SaveText(got);
  const char* regen = std::getenv("NU_REGEN_PLAN_GOLDEN");
  if (regen != nullptr && regen[0] != '\0' && regen[0] != '0') {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << golden;
    out << got.str();
    GTEST_SKIP() << "golden regenerated into " << golden;
  }
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << golden;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got.str(), want.str());
}

TEST(PlanIoTest, LoadAcceptsCommentsAndBlankLines) {
  std::stringstream in(
      "netupdate-fault-plan v1\n"
      "\n"
      "# a hand-written plan\n"
      "link-down t=1 link=3\n"
      "\n"
      "link-up t=2.5 link=3\n");
  const FaultPlan plan = FaultPlan::LoadText(in);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kLinkDown);
  EXPECT_DOUBLE_EQ(plan.specs()[1].time, 2.5);
}

TEST(PlanIoTest, LoadRejectsMalformedInput) {
  const auto load = [](const std::string& text) {
    std::stringstream in(text);
    return FaultPlan::LoadText(in);
  };
  EXPECT_THROW((void)load("not-a-plan v1\n"), FaultPlanError);
  EXPECT_THROW((void)load("netupdate-fault-plan v2\n"), FaultPlanError);
  EXPECT_THROW((void)load("netupdate-fault-plan v1\nbogus t=1 link=2\n"),
               FaultPlanError);
  EXPECT_THROW((void)load("netupdate-fault-plan v1\nlink-down t=x link=2\n"),
               FaultPlanError);
  // A group fault referencing an undeclared group index.
  EXPECT_THROW((void)load("netupdate-fault-plan v1\ngroup-down t=1 group=0\n"),
               FaultPlanError);
}

TEST(PlanIoTest, FileRoundTrip) {
  const fs::path dir =
      fs::temp_directory_path() / "nu_plan_io_test";
  fs::create_directories(dir);
  const fs::path path = dir / "plan.txt";
  const FaultPlan plan = SamplePlan();
  plan.SaveFile(path.string());
  EXPECT_EQ(plan, FaultPlan::LoadFile(path.string()));
  fs::remove_all(dir);
}

TEST(PlanIoTest, RandomSrlgPlanRoundTripsWithFixedSeed) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  Rng rng(1234);
  RandomSrlgFaultOptions options;
  options.incidents = 2;
  const FaultPlan plan =
      MakeRandomSrlgFaultPlan(DeriveFatTreeSrlgs(ft), options, rng);
  std::stringstream buf;
  plan.SaveText(buf);
  EXPECT_EQ(plan, FaultPlan::LoadText(buf));
}

}  // namespace
}  // namespace nu::fault
