#include "sched/flow_level.h"

#include <gtest/gtest.h>

#include <set>

namespace nu::sched {
namespace {

flow::Flow MakeFlow(NodeId src, NodeId dst) {
  flow::Flow f;
  f.src = src;
  f.dst = dst;
  f.demand = 1.0;
  f.duration = 1.0;
  return f;
}

std::vector<update::UpdateEvent> ThreeEvents() {
  std::vector<update::UpdateEvent> events;
  // Event 0: 3 flows, event 1: 1 flow, event 2: 2 flows.
  events.emplace_back(
      EventId{0}, 0.0,
      std::vector<flow::Flow>{MakeFlow(NodeId{0}, NodeId{1}),
                              MakeFlow(NodeId{0}, NodeId{2}),
                              MakeFlow(NodeId{0}, NodeId{3})});
  events.emplace_back(EventId{1}, 0.0,
                      std::vector<flow::Flow>{MakeFlow(NodeId{1}, NodeId{2})});
  events.emplace_back(
      EventId{2}, 0.0,
      std::vector<flow::Flow>{MakeFlow(NodeId{2}, NodeId{3}),
                              MakeFlow(NodeId{2}, NodeId{4})});
  return events;
}

TEST(InterleaveFlowsTest, RoundRobinOrder) {
  const auto events = ThreeEvents();
  const auto queue = InterleaveFlows(events);
  ASSERT_EQ(queue.size(), 6u);
  // Round 0: (e0,f0), (e1,f0), (e2,f0); round 1: (e0,f1), (e2,f1);
  // round 2: (e0,f2).
  EXPECT_EQ(queue[0].event->id(), EventId{0});
  EXPECT_EQ(queue[0].flow_index, 0u);
  EXPECT_EQ(queue[1].event->id(), EventId{1});
  EXPECT_EQ(queue[2].event->id(), EventId{2});
  EXPECT_EQ(queue[3].event->id(), EventId{0});
  EXPECT_EQ(queue[3].flow_index, 1u);
  EXPECT_EQ(queue[4].event->id(), EventId{2});
  EXPECT_EQ(queue[4].flow_index, 1u);
  EXPECT_EQ(queue[5].event->id(), EventId{0});
  EXPECT_EQ(queue[5].flow_index, 2u);
}

TEST(InterleaveFlowsTest, CoversAllFlowsExactlyOnce) {
  const auto events = ThreeEvents();
  const auto queue = InterleaveFlows(events);
  std::set<std::pair<EventId, std::size_t>> seen;
  for (const FlowLevelItem& item : queue) {
    EXPECT_TRUE(seen.emplace(item.event->id(), item.flow_index).second);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(InterleaveFlowsTest, EmptyInput) {
  EXPECT_TRUE(InterleaveFlows({}).empty());
}

TEST(ConcatenateFlowsTest, EventMajorOrder) {
  const auto events = ThreeEvents();
  const auto queue = ConcatenateFlows(events);
  ASSERT_EQ(queue.size(), 6u);
  EXPECT_EQ(queue[0].event->id(), EventId{0});
  EXPECT_EQ(queue[2].event->id(), EventId{0});
  EXPECT_EQ(queue[3].event->id(), EventId{1});
  EXPECT_EQ(queue[4].event->id(), EventId{2});
}

}  // namespace
}  // namespace nu::sched
