#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sched/factory.h"

namespace nu::sched {
namespace {

/// Scripted context: costs and co-feasibility come from tables, so scheduler
/// logic is tested in isolation from the network machinery.
class FakeContext final : public SchedulingContext {
 public:
  FakeContext(std::vector<Mbps> costs, std::uint64_t seed = 1)
      : costs_(std::move(costs)), rng_(seed) {
    for (std::size_t i = 0; i < costs_.size(); ++i) {
      queue_.push_back(QueuedEvent{nullptr});
    }
  }

  /// Variant with real events (schedulers that read flow counts need them).
  FakeContext(std::vector<Mbps> costs,
              const std::vector<update::UpdateEvent>& events,
              std::uint64_t seed = 1)
      : costs_(std::move(costs)), rng_(seed) {
    for (const update::UpdateEvent& e : events) {
      queue_.push_back(QueuedEvent{&e});
    }
  }

  void SetCoFeasible(std::size_t index, bool value) {
    co_feasible_[index] = value;
  }

  [[nodiscard]] std::span<const QueuedEvent> Queue() const override {
    return queue_;
  }

  Mbps ProbeCost(std::size_t index) override {
    ++cost_probes_;
    probed_.push_back(index);
    return costs_.at(index);
  }

  bool ProbeCoFeasible(std::span<const std::size_t> /*selected*/,
                       std::size_t index) override {
    ++cofeasibility_probes_;
    const auto it = co_feasible_.find(index);
    return it != co_feasible_.end() && it->second;
  }

  Rng& rng() override { return rng_; }

  std::size_t cost_probes_ = 0;
  std::size_t cofeasibility_probes_ = 0;
  std::vector<std::size_t> probed_;

 private:
  std::vector<Mbps> costs_;
  std::vector<QueuedEvent> queue_;
  std::map<std::size_t, bool> co_feasible_;
  Rng rng_;
};

TEST(FifoSchedulerTest, AlwaysPicksHeadWithoutProbing) {
  FifoScheduler fifo;
  FakeContext ctx({50.0, 1.0, 2.0});
  const Decision d = fifo.Decide(ctx);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 0u);
  EXPECT_EQ(ctx.cost_probes_, 0u);
}

TEST(ReorderSchedulerTest, ProbesEverythingPicksCheapest) {
  ReorderScheduler reorder;
  FakeContext ctx({50.0, 7.0, 3.0, 9.0});
  const Decision d = reorder.Decide(ctx);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 2u);
  EXPECT_EQ(ctx.cost_probes_, 4u);
}

TEST(ReorderSchedulerTest, TieGoesToEarlierArrival) {
  ReorderScheduler reorder;
  FakeContext ctx({5.0, 5.0, 5.0});
  const Decision d = reorder.Decide(ctx);
  EXPECT_EQ(d.selected[0], 0u);
}

TEST(LmtfSchedulerTest, SingleEventQueueNoSampling) {
  LmtfScheduler lmtf(LmtfConfig{.alpha = 4});
  FakeContext ctx({42.0});
  const Decision d = lmtf.Decide(ctx);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 0u);
  EXPECT_EQ(ctx.cost_probes_, 1u);  // head only
}

TEST(LmtfSchedulerTest, ProbesAlphaPlusOne) {
  LmtfScheduler lmtf(LmtfConfig{.alpha = 4});
  FakeContext ctx({10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0});
  (void)lmtf.Decide(ctx);
  EXPECT_EQ(ctx.cost_probes_, 5u);
}

TEST(LmtfSchedulerTest, SamplesCappedByQueueSize) {
  LmtfScheduler lmtf(LmtfConfig{.alpha = 10});
  FakeContext ctx({1.0, 2.0, 3.0});
  (void)lmtf.Decide(ctx);
  EXPECT_EQ(ctx.cost_probes_, 3u);  // whole queue
}

TEST(LmtfSchedulerTest, PicksHeadWhenCheapest) {
  LmtfScheduler lmtf(LmtfConfig{.alpha = 4});
  FakeContext ctx({1.0, 10.0, 10.0, 10.0, 10.0});
  const Decision d = lmtf.Decide(ctx);
  EXPECT_EQ(d.selected[0], 0u);
}

TEST(LmtfSchedulerTest, BeatsHeadOfLineBlocking) {
  // Heavy head, everything else cheap: with alpha >= 1 and queue of 2,
  // LMTF must select the cheap event.
  LmtfScheduler lmtf(LmtfConfig{.alpha = 2});
  FakeContext ctx({1000.0, 1.0});
  const Decision d = lmtf.Decide(ctx);
  EXPECT_EQ(d.selected[0], 1u);
}

TEST(LmtfSchedulerTest, HeadAlwaysAmongCandidates) {
  LmtfScheduler lmtf(LmtfConfig{.alpha = 2});
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    FakeContext ctx({5.0, 100.0, 100.0, 100.0, 100.0, 100.0}, seed);
    const Decision d = lmtf.Decide(ctx);
    // Head is cheapest overall, so whatever was sampled, head wins.
    EXPECT_EQ(d.selected[0], 0u);
  }
}

TEST(LmtfSchedulerTest, SampledSetVariesAcrossRounds) {
  LmtfScheduler lmtf(LmtfConfig{.alpha = 1});
  FakeContext ctx({100.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
  std::set<std::size_t> winners;
  for (int i = 0; i < 50; ++i) {
    const Decision d = lmtf.Decide(ctx);
    winners.insert(d.selected[0]);
  }
  // With one random sample per round, different cheap events win over time.
  EXPECT_GT(winners.size(), 2u);
}

TEST(PlmtfSchedulerTest, CoSchedulesFeasibleCandidates) {
  PlmtfScheduler plmtf(LmtfConfig{.alpha = 4});
  FakeContext ctx({10.0, 5.0, 7.0, 8.0, 9.0});  // queue of 5, all sampled
  ctx.SetCoFeasible(0, true);
  ctx.SetCoFeasible(2, true);
  ctx.SetCoFeasible(3, false);
  ctx.SetCoFeasible(4, false);
  const Decision d = plmtf.Decide(ctx);
  // Cheapest is index 1; co-feasible 0 and 2 join, in arrival order.
  ASSERT_EQ(d.selected.size(), 3u);
  EXPECT_EQ(d.selected[0], 1u);
  EXPECT_EQ(d.selected[1], 0u);
  EXPECT_EQ(d.selected[2], 2u);
}

TEST(PlmtfSchedulerTest, FallsBackToLmtfWhenNothingCoFeasible) {
  PlmtfScheduler plmtf(LmtfConfig{.alpha = 4});
  FakeContext ctx({10.0, 5.0, 7.0});
  const Decision d = plmtf.Decide(ctx);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 1u);
}

TEST(PlmtfSchedulerTest, DisplacedHeadGetsFirstOpportunisticChance) {
  PlmtfScheduler plmtf(LmtfConfig{.alpha = 4});
  FakeContext ctx({100.0, 1.0, 50.0, 50.0, 50.0});
  ctx.SetCoFeasible(0, true);  // the heavy displaced head can run too
  const Decision d = plmtf.Decide(ctx);
  ASSERT_GE(d.selected.size(), 2u);
  EXPECT_EQ(d.selected[0], 1u);
  EXPECT_EQ(d.selected[1], 0u);  // arrival order: head first
}

std::vector<update::UpdateEvent> EventsWithFlowCounts(
    const std::vector<std::size_t>& counts) {
  std::vector<update::UpdateEvent> events;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::vector<flow::Flow> flows;
    for (std::size_t j = 0; j < counts[i]; ++j) {
      flow::Flow f;
      f.src = NodeId{0};
      f.dst = NodeId{1};
      f.demand = 1.0;
      f.duration = 1.0;
      flows.push_back(f);
    }
    events.emplace_back(EventId{i}, 0.0, std::move(flows));
  }
  return events;
}

TEST(SjfSchedulerTest, PicksSmallestWithoutProbing) {
  SjfScheduler sjf(LmtfConfig{.alpha = 4});
  const auto events = EventsWithFlowCounts({10, 3, 7, 1, 5});
  FakeContext ctx({0, 0, 0, 0, 0}, events);
  const Decision d = sjf.Decide(ctx);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 3u);          // the 1-flow event
  EXPECT_EQ(ctx.cost_probes_, 0u);       // never probes costs
}

TEST(SjfSchedulerTest, SingleEventQueue) {
  SjfScheduler sjf(LmtfConfig{.alpha = 2});
  const auto events = EventsWithFlowCounts({4});
  FakeContext ctx({0}, events);
  EXPECT_EQ(sjf.Decide(ctx).selected[0], 0u);
}

TEST(SjfSchedulerTest, TieKeepsHead) {
  SjfScheduler sjf(LmtfConfig{.alpha = 4});
  const auto events = EventsWithFlowCounts({5, 5, 5});
  FakeContext ctx({0, 0, 0}, events);
  EXPECT_EQ(sjf.Decide(ctx).selected[0], 0u);
}

TEST(IsValidDecisionTest, Checks) {
  EXPECT_FALSE(IsValidDecision(Decision{}, 3));
  EXPECT_TRUE(IsValidDecision(Decision{.selected = {0}}, 3));
  EXPECT_FALSE(IsValidDecision(Decision{.selected = {3}}, 3));
  EXPECT_FALSE(IsValidDecision(Decision{.selected = {1, 1}}, 3));
  EXPECT_TRUE(IsValidDecision(Decision{.selected = {2, 0, 1}}, 3));
}

TEST(FactoryTest, MakesEveryKind) {
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kReorder, SchedulerKind::kLmtf,
        SchedulerKind::kPlmtf, SchedulerKind::kSjf}) {
    const auto scheduler = MakeScheduler(kind);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_STREQ(scheduler->name(), ToString(kind));
  }
}

TEST(FactoryTest, ParsesNames) {
  EXPECT_EQ(ParseSchedulerKind("fifo"), SchedulerKind::kFifo);
  EXPECT_EQ(ParseSchedulerKind("lmtf"), SchedulerKind::kLmtf);
  EXPECT_EQ(ParseSchedulerKind("p-lmtf"), SchedulerKind::kPlmtf);
  EXPECT_EQ(ParseSchedulerKind("plmtf"), SchedulerKind::kPlmtf);
  EXPECT_EQ(ParseSchedulerKind("reorder"), SchedulerKind::kReorder);
  EXPECT_EQ(ParseSchedulerKind("sjf"), SchedulerKind::kSjf);
  EXPECT_EQ(ParseSchedulerKind("sjf-size"), SchedulerKind::kSjf);
}

TEST(FactoryDeathTest, UnknownNameDies) {
  EXPECT_DEATH(static_cast<void>(ParseSchedulerKind("bogus")), "NU_CHECK");
}

}  // namespace
}  // namespace nu::sched
