#include "update/planner.h"

#include <gtest/gtest.h>

#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::update {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()),
        planner(provider) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration = 5.0) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  [[nodiscard]] UpdateEvent MakeEvent(EventId id,
                                      std::vector<flow::Flow> flows) const {
    return UpdateEvent(id, 0.0, std::move(flows));
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
  EventPlanner planner;
};

TEST(EventPlannerTest, PlanOnEmptyNetworkIsFreeAndFeasible) {
  Fixture fx;
  const UpdateEvent event = fx.MakeEvent(
      EventId{1}, {fx.MakeFlow(0, 8, 30.0), fx.MakeFlow(1, 9, 40.0)});
  const EventPlan plan = fx.planner.Plan(fx.network, event);
  EXPECT_TRUE(plan.fully_feasible);
  EXPECT_DOUBLE_EQ(plan.migrated_traffic, 0.0);
  EXPECT_EQ(plan.migration_moves, 0u);
  EXPECT_EQ(plan.placeable_count(), 2u);
  // Pure probe: network untouched.
  EXPECT_EQ(fx.network.placed_flow_count(), 0u);
}

TEST(EventPlannerTest, PlanCountsIntraEventContention) {
  Fixture fx;
  // Two 60 Mbps flows from the SAME host: its 100 Mbps uplink fits only one.
  const UpdateEvent event = fx.MakeEvent(
      EventId{1}, {fx.MakeFlow(0, 8, 60.0), fx.MakeFlow(0, 9, 60.0)});
  const EventPlan plan = fx.planner.Plan(fx.network, event);
  EXPECT_FALSE(plan.fully_feasible);
  EXPECT_EQ(plan.placeable_count(), 1u);
}

TEST(EventPlannerTest, ExecutePlacesFlows) {
  Fixture fx;
  const UpdateEvent event = fx.MakeEvent(
      EventId{1}, {fx.MakeFlow(0, 8, 30.0), fx.MakeFlow(1, 9, 40.0)});
  const ExecutionResult result = fx.planner.Execute(fx.network, event);
  EXPECT_TRUE(result.plan.fully_feasible);
  EXPECT_EQ(result.placed_flows.size(), 2u);
  EXPECT_TRUE(result.deferred_flows.empty());
  EXPECT_EQ(fx.network.placed_flow_count(), 2u);
  for (FlowId id : result.placed_flows) {
    EXPECT_EQ(fx.network.FlowOf(id).event, EventId{1});
    EXPECT_EQ(fx.network.FlowOf(id).origin, flow::FlowOrigin::kUpdateEvent);
  }
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(EventPlannerTest, ExecuteTriggersMigrationWhenNeeded) {
  Fixture fx;
  // Saturate 3 of 4 inter-pod-ish choices between host0's pod and pod 2:
  // fill every path of host1->host8 to 70 so host0->host8 (demand 60)
  // congests everywhere and must migrate something.
  const auto& blocker_paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(9));
  for (const topo::Path& p : blocker_paths) {
    flow::Flow f = fx.MakeFlow(1, 9, 15.0);
    if (fx.network.CanPlace(f.demand, p)) fx.network.Place(std::move(f), p);
  }
  // Now load host0's uplink-adjacent fabric so direct placement fails:
  // fill edge0->agg links via host1 flows... simpler: occupy all 4 paths of
  // host0->host8 partially via host1->host8 (shares edge0->agg and beyond).
  const auto& shared_paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(8));
  for (const topo::Path& p : shared_paths) {
    flow::Flow f = fx.MakeFlow(1, 8, 50.0);
    if (fx.network.CanPlace(f.demand, p)) fx.network.Place(std::move(f), p);
  }

  const UpdateEvent event =
      fx.MakeEvent(EventId{2}, {fx.MakeFlow(0, 8, 60.0)});
  const bool direct_possible =
      net::CanAdmit(fx.network, fx.provider, fx.ft.host(0), fx.ft.host(8),
                    60.0);
  const ExecutionResult result = fx.planner.Execute(fx.network, event);
  if (!direct_possible) {
    EXPECT_GT(result.plan.migrated_traffic, 0.0);
    EXPECT_GE(result.plan.flows_needing_migration, 1u);
  }
  EXPECT_TRUE(result.plan.fully_feasible);
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(EventPlannerTest, PlanMatchesExecuteOnSameState) {
  Fixture fx;
  const UpdateEvent event = fx.MakeEvent(
      EventId{3}, {fx.MakeFlow(0, 8, 30.0), fx.MakeFlow(2, 10, 45.0),
                   fx.MakeFlow(5, 12, 20.0)});
  const EventPlan probe = fx.planner.Plan(fx.network, event);
  const ExecutionResult exec = fx.planner.Execute(fx.network, event);
  EXPECT_EQ(probe.fully_feasible, exec.plan.fully_feasible);
  EXPECT_DOUBLE_EQ(probe.migrated_traffic, exec.plan.migrated_traffic);
  EXPECT_EQ(probe.migration_moves, exec.plan.migration_moves);
  ASSERT_EQ(probe.actions.size(), exec.plan.actions.size());
  for (std::size_t i = 0; i < probe.actions.size(); ++i) {
    EXPECT_EQ(probe.actions[i].path, exec.plan.actions[i].path);
  }
}

TEST(EventPlannerTest, DeferredFlowsReported) {
  Fixture fx;
  // Fill host 0's uplink completely; a new flow from host 0 can never fit.
  const auto& p = fx.provider.Paths(fx.ft.host(0), fx.ft.host(3));
  flow::Flow filler = fx.MakeFlow(0, 3, 100.0);
  fx.network.Place(std::move(filler), p[0]);
  const UpdateEvent event =
      fx.MakeEvent(EventId{4}, {fx.MakeFlow(0, 8, 10.0)});
  const ExecutionResult result = fx.planner.Execute(fx.network, event);
  EXPECT_FALSE(result.plan.fully_feasible);
  ASSERT_EQ(result.deferred_flows.size(), 1u);
  EXPECT_EQ(result.deferred_flows[0], 0u);
  EXPECT_TRUE(result.placed_flows.empty());
}

TEST(EventPlannerTest, PlaceFlowDirect) {
  Fixture fx;
  Mbps migrated = 0.0;
  const auto id = fx.planner.PlaceFlow(fx.network, fx.MakeFlow(0, 8, 40.0),
                                       &migrated);
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(migrated, 0.0);
  EXPECT_EQ(fx.network.placed_flow_count(), 1u);
}

TEST(EventPlannerTest, PlaceFlowFailsWhenImpossible) {
  Fixture fx;
  const auto& p = fx.provider.Paths(fx.ft.host(0), fx.ft.host(3));
  flow::Flow filler = fx.MakeFlow(0, 3, 100.0);
  fx.network.Place(std::move(filler), p[0]);
  const auto id = fx.planner.PlaceFlow(fx.network, fx.MakeFlow(0, 8, 10.0));
  EXPECT_FALSE(id.has_value());
  EXPECT_EQ(fx.network.placed_flow_count(), 1u);
}

TEST(EventPlannerTest, CostIsCumulativeAcrossFlows) {
  Fixture fx;
  // Congest both agg choices for pod-0 pairs with big blockers, then plan an
  // event of two same-pod flows that each require migration.
  const auto& b1 = fx.provider.Paths(fx.ft.host(1), fx.ft.host(3));
  for (const topo::Path& p : b1) {
    flow::Flow f = fx.MakeFlow(1, 3, 70.0);
    if (fx.network.CanPlace(f.demand, p)) fx.network.Place(std::move(f), p);
  }
  const UpdateEvent event = fx.MakeEvent(
      EventId{9}, {fx.MakeFlow(0, 2, 50.0), fx.MakeFlow(0, 2, 40.0)});
  const EventPlan plan = fx.planner.Plan(fx.network, event);
  if (plan.flows_needing_migration >= 2) {
    EXPECT_GT(plan.migrated_traffic, 70.0);  // at least two blockers moved
  }
  SUCCEED();
}

}  // namespace
}  // namespace nu::update
