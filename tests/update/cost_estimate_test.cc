#include "update/cost_estimate.h"

#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/planner.h"

namespace nu::update {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  FlowId PlaceOn(const topo::Path& path, Mbps demand) {
    flow::Flow f;
    f.src = path.source();
    f.dst = path.destination();
    f.demand = demand;
    f.duration = 10.0;
    return network.Place(std::move(f), path);
  }

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

TEST(QuickCostEstimateTest, ZeroOnEmptyNetwork) {
  Fixture fx;
  const UpdateEvent event(EventId{1}, 0.0,
                          {fx.MakeFlow(0, 8, 30.0), fx.MakeFlow(1, 9, 40.0)});
  const QuickCostResult result =
      QuickCostEstimate(fx.network, fx.provider, event);
  EXPECT_DOUBLE_EQ(result.deficit_sum, 0.0);
  EXPECT_EQ(result.flows_with_deficit, 0u);
  EXPECT_EQ(result.likely_blocked, 0u);
  EXPECT_DOUBLE_EQ(QuickCostScore(fx.network, fx.provider, event), 0.0);
}

TEST(QuickCostEstimateTest, DeficitWhenAllPathsCongested) {
  // Two parallel routes a-m0-b / a-m1-b (100 Mbps); each mid->b link
  // carries an 80 Mbps blocker placed directly (m_i -> b), so both
  // candidate routes of a->b are 30 short for a 50 Mbps flow.
  topo::Graph g;
  const NodeId a = g.AddNode(topo::NodeRole::kHost);
  const NodeId b = g.AddNode(topo::NodeRole::kHost);
  const NodeId m0 = g.AddNode(topo::NodeRole::kGeneric);
  const NodeId m1 = g.AddNode(topo::NodeRole::kGeneric);
  g.AddBidirectional(a, m0, 100.0);
  g.AddBidirectional(m0, b, 100.0);
  g.AddBidirectional(a, m1, 100.0);
  g.AddBidirectional(m1, b, 100.0);
  net::Network network(g);
  const topo::KspPathProvider provider(g, 2);
  for (const NodeId mid : {m0, m1}) {
    flow::Flow blocker;
    blocker.src = mid;
    blocker.dst = b;
    blocker.demand = 80.0;
    blocker.duration = 1.0;
    const std::array<NodeId, 2> seq{mid, b};
    network.Place(std::move(blocker), g.MakePath(seq));
  }

  flow::Flow f;
  f.src = a;
  f.dst = b;
  f.demand = 50.0;
  f.duration = 1.0;
  const UpdateEvent event(EventId{1}, 0.0, {f});
  const QuickCostResult result = QuickCostEstimate(network, provider, event);
  EXPECT_EQ(result.flows_with_deficit, 1u);
  // Best candidate deficit: 50 - 20 = 30.
  EXPECT_NEAR(result.deficit_sum, 30.0, 1e-9);
  EXPECT_EQ(result.likely_blocked, 0u);  // 80 Mbps is movable
}

TEST(QuickCostEstimateTest, StructuralBlockDetected) {
  Fixture fx;
  // Saturate host 0's uplink with its own traffic: nothing can migrate off
  // a host's single link from the flow's own perspective... but the
  // traffic IS on the link, so movable covers it; use a demand larger than
  // capacity instead to force a structural shortfall.
  const UpdateEvent event(EventId{1}, 0.0, {fx.MakeFlow(0, 8, 150.0)});
  const QuickCostResult result =
      QuickCostEstimate(fx.network, fx.provider, event);
  EXPECT_EQ(result.likely_blocked, 1u);
  EXPECT_GT(QuickCostScore(fx.network, fx.provider, event),
            result.deficit_sum);
}

TEST(QuickCostEstimateTest, LowerBoundsExactPlanCost) {
  // On random congested instances the quick estimate never exceeds the
  // exact plan's migrated traffic... except when intra-event contention
  // makes the plan cheaper paths unavailable; compare against plan cost +
  // tolerance on single-flow events where the bound is strict.
  Fixture fx;
  Rng rng(4242);
  // Keep the two blockers' sum under host 1's 100 Mbps uplink.
  for (const topo::Path& p : fx.provider.Paths(fx.ft.host(1), fx.ft.host(3))) {
    fx.PlaceOn(p, rng.Uniform(30.0, 49.0));
  }
  const EventPlanner planner(fx.provider);
  int exercised = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const double demand = rng.Uniform(55.0, 95.0);
    const UpdateEvent event(EventId{static_cast<EventId::rep_type>(trial)},
                            0.0, {fx.MakeFlow(0, 2, demand)});
    const QuickCostResult quick =
        QuickCostEstimate(fx.network, fx.provider, event);
    const EventPlan plan = planner.Plan(fx.network, event);
    if (!plan.fully_feasible || plan.migrated_traffic == 0.0) continue;
    ++exercised;
    EXPECT_LE(quick.deficit_sum, plan.migrated_traffic + 1e-6)
        << "estimate must lower-bound the real migrated traffic";
  }
  EXPECT_GT(exercised, 0);
}

TEST(QuickCostEstimateTest, OrderCorrelatesWithExactCost) {
  // A cheap event (fits outright) must score below an expensive one
  // (requires migration) — the property LMTF ranking needs.
  Fixture fx;
  for (const topo::Path& p : fx.provider.Paths(fx.ft.host(1), fx.ft.host(3))) {
    fx.PlaceOn(p, 49.0);
  }
  const UpdateEvent cheap(EventId{1}, 0.0, {fx.MakeFlow(4, 6, 10.0)});
  const UpdateEvent pricey(EventId{2}, 0.0, {fx.MakeFlow(0, 2, 60.0)});
  EXPECT_LT(QuickCostScore(fx.network, fx.provider, cheap),
            QuickCostScore(fx.network, fx.provider, pricey));
}

}  // namespace
}  // namespace nu::update
