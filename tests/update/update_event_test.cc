#include "update/update_event.h"

#include <gtest/gtest.h>

namespace nu::update {
namespace {

std::vector<flow::Flow> TwoFlows() {
  flow::Flow a;
  a.src = NodeId{0};
  a.dst = NodeId{1};
  a.demand = 10.0;
  a.duration = 3.0;
  flow::Flow b;
  b.src = NodeId{2};
  b.dst = NodeId{3};
  b.demand = 20.0;
  b.duration = 7.0;
  return {a, b};
}

TEST(UpdateEventTest, BasicAccessors) {
  const UpdateEvent e(EventId{5}, 1.5, TwoFlows(), EventKind::kVmMigration);
  EXPECT_EQ(e.id(), EventId{5});
  EXPECT_DOUBLE_EQ(e.arrival_time(), 1.5);
  EXPECT_EQ(e.kind(), EventKind::kVmMigration);
  EXPECT_EQ(e.flow_count(), 2u);
}

TEST(UpdateEventTest, FlowsTaggedWithEvent) {
  const UpdateEvent e(EventId{5}, 0.0, TwoFlows());
  for (const flow::Flow& f : e.flows()) {
    EXPECT_EQ(f.event, EventId{5});
    EXPECT_EQ(f.origin, flow::FlowOrigin::kUpdateEvent);
  }
}

TEST(UpdateEventTest, Aggregates) {
  const UpdateEvent e(EventId{1}, 0.0, TwoFlows());
  EXPECT_DOUBLE_EQ(e.TotalDemand(), 30.0);
  EXPECT_DOUBLE_EQ(e.MaxFlowDuration(), 7.0);
  EXPECT_DOUBLE_EQ(e.TotalVolume(), 10.0 * 3.0 + 20.0 * 7.0);
}

TEST(UpdateEventTest, DebugStringMentionsKind) {
  const UpdateEvent e(EventId{1}, 0.0, TwoFlows(), EventKind::kSwitchUpgrade);
  EXPECT_NE(e.DebugString().find("switch-upgrade"), std::string::npos);
}

TEST(UpdateEventDeathTest, RejectsEmptyFlows) {
  EXPECT_DEATH(UpdateEvent(EventId{1}, 0.0, {}), "Precondition");
}

TEST(UpdateEventDeathTest, RejectsInvalidId) {
  EXPECT_DEATH(UpdateEvent(EventId::invalid(), 0.0, TwoFlows()),
               "Precondition");
}

TEST(EventKindTest, Names) {
  EXPECT_STREQ(ToString(EventKind::kGeneric), "generic");
  EXPECT_STREQ(ToString(EventKind::kFailureReroute), "failure-reroute");
}

}  // namespace
}  // namespace nu::update
