// Differential tests pinning the batched candidate scorer and the SoA scan
// kernels to the historical scalar implementations, bit for bit. The
// reference copies below are the pre-batching code verbatim (per-call
// vector scratch, early-exit candidate loop, per-link virtual reads); the
// production paths must reproduce their doubles exactly — the probe-cost
// cache and the sharded argmin both assume a score computed twice is the
// same double, and the golden layout tests assume admission tie-breaks
// never move. Every EXPECT on a double here is exact equality on purpose.
//
// The kernel differentials (dispatch vs net::scalar::*) are what make the
// NU_SIMD build tiers interchangeable: under -DNU_SIMD=OFF they compare the
// scalar dispatch against itself (trivially green), under SSE2/AVX2 they
// compare the vector kernels against the always-compiled scalar reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "net/admission.h"
#include "net/network.h"
#include "net/overlay.h"
#include "net/residual_scan.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/cost_estimate.h"
#include "update/update_event.h"

namespace nu::update {
namespace {

// --- Reference: the pre-batching scalar estimator, copied verbatim -------

namespace reference {

class ResidualScratch {
 public:
  explicit ResidualScratch(const net::NetworkView& network)
      : network_(&network),
        value_(network.graph().link_count(), 0.0),
        known_(network.graph().link_count(), 0) {}

  Mbps Get(LinkId lid) {
    const auto i = lid.value();
    if (known_[i] == 0) {
      value_[i] = network_->Residual(lid);
      known_[i] = 1;
    }
    return value_[i];
  }

 private:
  const net::NetworkView* network_;
  std::vector<Mbps> value_;
  std::vector<char> known_;
};

struct PathDeficit {
  Mbps deficit = 0.0;
  Mbps movable = 0.0;
};

PathDeficit DeficitOn(const net::NetworkView& network,
                      ResidualScratch& residuals, const topo::Path& path,
                      Mbps demand) {
  PathDeficit result;
  for (LinkId lid : path.links) {
    const Mbps residual = residuals.Get(lid);
    if (ApproxGe(residual, demand)) continue;
    const Mbps link_deficit = demand - residual;
    if (link_deficit > result.deficit) {
      result.deficit = link_deficit;
      const topo::Link& link = network.graph().link(lid);
      result.movable = link.capacity - residual;
    }
  }
  return result;
}

QuickCostResult QuickCostEstimate(const net::NetworkView& network,
                                  const topo::PathProvider& paths,
                                  const UpdateEvent& event) {
  QuickCostResult result;
  ResidualScratch residuals(network);
  for (const flow::Flow& f : event.flows()) {
    const std::vector<topo::Path>& candidates = paths.Paths(f.src, f.dst);
    if (candidates.empty()) {
      ++result.likely_blocked;
      continue;
    }
    Mbps best_deficit = std::numeric_limits<double>::infinity();
    Mbps movable_at_best = 0.0;
    for (const topo::Path& p : candidates) {
      const PathDeficit d = DeficitOn(network, residuals, p, f.demand);
      if (d.deficit < best_deficit) {
        best_deficit = d.deficit;
        movable_at_best = d.movable;
        if (best_deficit <= kBandwidthEpsilon) break;  // fits outright
      }
    }
    if (best_deficit <= kBandwidthEpsilon) continue;
    ++result.flows_with_deficit;
    result.deficit_sum += best_deficit;
    if (best_deficit > movable_at_best + kBandwidthEpsilon) {
      ++result.likely_blocked;
    }
  }
  return result;
}

Mbps QuickCostScore(const net::NetworkView& network,
                    const topo::PathProvider& paths,
                    const UpdateEvent& event) {
  const QuickCostResult estimate =
      reference::QuickCostEstimate(network, paths, event);
  Mbps score = estimate.deficit_sum;
  if (estimate.likely_blocked > 0 && event.flow_count() > 0) {
    const Mbps mean_demand =
        event.TotalDemand() / static_cast<double>(event.flow_count());
    score += 10.0 * mean_demand * static_cast<double>(estimate.likely_blocked);
  }
  return score;
}

// Pre-batching admission loops, copied verbatim.

std::optional<topo::Path> FindFeasiblePath(const net::NetworkView& network,
                                           const topo::PathProvider& paths,
                                           NodeId src, NodeId dst, Mbps demand,
                                           net::PathSelection selection) {
  const std::vector<topo::Path>& candidates = paths.Paths(src, dst);
  const topo::Path* best = nullptr;
  Mbps best_bottleneck = 0.0;
  Mbps best_total = 0.0;
  auto total_residual = [&network](const topo::Path& p) {
    Mbps total = 0.0;
    for (LinkId lid : p.links) total += network.Residual(lid);
    return total;
  };
  for (const topo::Path& p : candidates) {
    if (!network.CanPlace(demand, p)) continue;
    switch (selection) {
      case net::PathSelection::kFirstFit:
        return p;
      case net::PathSelection::kWidest: {
        const Mbps b = net::BottleneckResidual(network, p);
        const Mbps t = total_residual(p);
        if (best == nullptr || b > best_bottleneck ||
            (b == best_bottleneck && t > best_total)) {
          best = &p;
          best_bottleneck = b;
          best_total = t;
        }
        break;
      }
      case net::PathSelection::kBestFit: {
        const Mbps b = net::BottleneckResidual(network, p);
        const Mbps t = total_residual(p);
        if (best == nullptr || b < best_bottleneck ||
            (b == best_bottleneck && t < best_total)) {
          best = &p;
          best_bottleneck = b;
          best_total = t;
        }
        break;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

const topo::Path& LeastCongestedPath(const net::NetworkView& network,
                                     const topo::PathProvider& paths,
                                     NodeId src, NodeId dst, Mbps demand) {
  const std::vector<topo::Path>& candidates = paths.Paths(src, dst);
  const topo::Path* best = &candidates.front();
  std::size_t best_congested = network.CongestedLinks(demand, *best).size();
  Mbps best_bottleneck = net::BottleneckResidual(network, *best);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const topo::Path& p = candidates[i];
    const std::size_t congested = network.CongestedLinks(demand, p).size();
    const Mbps bottleneck = net::BottleneckResidual(network, p);
    if (congested < best_congested ||
        (congested == best_congested && bottleneck > best_bottleneck)) {
      best = &p;
      best_congested = congested;
      best_bottleneck = bottleneck;
    }
  }
  return *best;
}

}  // namespace reference

// --- Randomized fixture ---------------------------------------------------

/// Fat tree with randomized congestion. ForcePlace drives some links all
/// the way into overcommit so the estimator's structural-blocked branch and
/// negative residuals are exercised, not just mild deficits.
struct RandomFixture {
  explicit RandomFixture(std::uint64_t seed)
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()),
        rng(seed) {
    const std::size_t hosts = ft.host_count();
    const int placements = 20 + static_cast<int>(rng.Index(20));
    for (int i = 0; i < placements; ++i) {
      flow::Flow f;
      f.src = ft.host(rng.Index(hosts));
      do {
        f.dst = ft.host(rng.Index(hosts));
      } while (f.dst == f.src);
      f.demand = rng.Uniform(5.0, 70.0);
      f.duration = 100.0;
      const auto& paths = provider.Paths(f.src, f.dst);
      const topo::Path& p = paths[rng.Index(paths.size())];
      if (i % 4 == 0) {
        network.ForcePlace(std::move(f), p);  // may overcommit
      } else if (network.CanPlace(f.demand, p)) {
        network.Place(std::move(f), p);
      }
    }
  }

  UpdateEvent RandomEvent(std::uint64_t id) {
    const std::size_t hosts = ft.host_count();
    std::vector<flow::Flow> flows;
    const std::size_t n = 1 + rng.Index(5);
    for (std::size_t j = 0; j < n; ++j) {
      flow::Flow f;
      f.src = ft.host(rng.Index(hosts));
      do {
        f.dst = ft.host(rng.Index(hosts));
      } while (f.dst == f.src);
      f.demand = rng.Uniform(1.0, 90.0);
      f.duration = 5.0;
      flows.push_back(f);
    }
    return UpdateEvent(EventId{id}, 0.0, std::move(flows));
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
  Rng rng;
};

void ExpectSameEstimate(const net::NetworkView& view, RandomFixture& fx,
                        const UpdateEvent& event, Arena& scratch) {
  const QuickCostResult ref =
      reference::QuickCostEstimate(view, fx.provider, event);
  const QuickCostResult got =
      QuickCostEstimate(view, fx.provider, event, scratch);
  EXPECT_EQ(got.deficit_sum, ref.deficit_sum);  // exact, not DOUBLE_EQ
  EXPECT_EQ(got.likely_blocked, ref.likely_blocked);
  EXPECT_EQ(got.flows_with_deficit, ref.flows_with_deficit);
  EXPECT_EQ(QuickCostScore(view, fx.provider, event, scratch),
            reference::QuickCostScore(view, fx.provider, event));
}

TEST(BatchedScoringTest, BitIdenticalToScalarReferenceOnFlatNetwork) {
  Arena scratch;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomFixture fx(seed);
    ASSERT_NE(fx.network.ResidualData(), nullptr);  // SoA fast path active
    for (std::uint64_t e = 1; e <= 20; ++e) {
      ExpectSameEstimate(fx.network, fx, fx.RandomEvent(e), scratch);
    }
  }
}

TEST(BatchedScoringTest, BitIdenticalToScalarReferenceOnOverlay) {
  // Copy-on-write overlays expose no flat residual array, forcing the
  // estimator through the memoized virtual-read fallback.
  Arena scratch;
  for (std::uint64_t seed = 101; seed <= 104; ++seed) {
    RandomFixture fx(seed);
    net::NetworkOverlay overlay(fx.network);
    ASSERT_EQ(overlay.ResidualData(), nullptr);
    // Dirty a few links so the overlay's patched residuals differ from the
    // base (the memo must read through the override, not the base array).
    for (int i = 0; i < 4; ++i) {
      flow::Flow f;
      f.src = fx.ft.host(fx.rng.Index(fx.ft.host_count()));
      do {
        f.dst = fx.ft.host(fx.rng.Index(fx.ft.host_count()));
      } while (f.dst == f.src);
      f.demand = 10.0;
      f.duration = 5.0;
      const auto& paths = fx.provider.Paths(f.src, f.dst);
      const topo::Path& p = paths[fx.rng.Index(paths.size())];
      if (overlay.CanPlace(f.demand, p)) overlay.Place(std::move(f), p);
    }
    for (std::uint64_t e = 1; e <= 12; ++e) {
      ExpectSameEstimate(overlay, fx, fx.RandomEvent(e), scratch);
    }
  }
}

TEST(BatchedScoringTest, AdmissionMatchesReferenceLoops) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    RandomFixture fx(seed);
    const std::size_t hosts = fx.ft.host_count();
    for (int trial = 0; trial < 60; ++trial) {
      const NodeId src = fx.ft.host(fx.rng.Index(hosts));
      NodeId dst = src;
      while (dst == src) dst = fx.ft.host(fx.rng.Index(hosts));
      const Mbps demand = fx.rng.Uniform(1.0, 110.0);  // sometimes infeasible
      for (const net::PathSelection sel :
           {net::PathSelection::kFirstFit, net::PathSelection::kWidest,
            net::PathSelection::kBestFit}) {
        const auto ref = reference::FindFeasiblePath(fx.network, fx.provider,
                                                     src, dst, demand, sel);
        const topo::Path* got = net::FindFeasiblePathPtr(
            fx.network, fx.provider, src, dst, demand, sel);
        ASSERT_EQ(got != nullptr, ref.has_value());
        if (got != nullptr) {
          EXPECT_EQ(got->links, ref->links);  // same winner, same tie-break
        }
      }
      const topo::Path& lc_ref = reference::LeastCongestedPath(
          fx.network, fx.provider, src, dst, demand);
      const topo::Path& lc_got =
          net::LeastCongestedPath(fx.network, fx.provider, src, dst, demand);
      EXPECT_EQ(&lc_got, &lc_ref);  // pointer-identical: same candidate slot
    }
  }
}

// --- Kernel differentials: dispatch vs always-compiled scalar -------------

struct KernelArrays {
  std::vector<Mbps> residual;
  std::vector<Mbps> load;
  std::vector<Mbps> capacity;
};

KernelArrays RandomArrays(Rng& rng, std::size_t n) {
  KernelArrays a;
  a.residual.reserve(n);
  a.load.reserve(n);
  a.capacity.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Mbps cap = 100.0;
    // Quantize half the values so exact ties and exact demand hits occur.
    Mbps used = rng.Uniform(-10.0, 120.0);
    if (rng.Index(2) == 0) used = std::floor(used);
    a.capacity.push_back(cap);
    a.load.push_back(used);
    // Mostly consistent residual; occasionally skewed to trip the
    // conservation check in ScanCapacityViolations.
    Mbps res = cap - used;
    if (rng.Index(8) == 0) res += rng.Uniform(-1.0, 1.0);
    a.residual.push_back(res);
  }
  return a;
}

TEST(ScanKernelTest, DispatchMatchesScalarBitwise) {
  Rng rng(42);
  // Sizes straddle every vector-width remainder (AVX2 = 4 doubles/lane).
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{4}, std::size_t{5},
                              std::size_t{7}, std::size_t{8}, std::size_t{15},
                              std::size_t{16}, std::size_t{33},
                              std::size_t{100}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const KernelArrays a = RandomArrays(rng, n);
      Mbps demand = rng.Uniform(0.0, 100.0);
      if (rng.Index(2) == 0) demand = std::floor(demand);
      const Mbps* row = a.residual.data();

      EXPECT_EQ(net::CountCongested(row, n, demand),
                net::scalar::CountCongested(row, n, demand));
      EXPECT_EQ(net::MinValue(row, n), net::scalar::MinValue(row, n));
      if (n > 0) {
        const net::WorstDeficit got = net::MaxDeficit(row, n, demand);
        const net::WorstDeficit ref = net::scalar::MaxDeficit(row, n, demand);
        EXPECT_EQ(got.deficit, ref.deficit);
        EXPECT_EQ(got.index, ref.index);  // first occurrence of the max
        EXPECT_EQ(got.residual, ref.residual);
      }
      for (const bool allow_overcommit : {false, true}) {
        std::vector<std::uint32_t> got, ref;
        net::ScanCapacityViolations(a.residual.data(), a.load.data(),
                                    a.capacity.data(), n, allow_overcommit,
                                    kBandwidthEpsilon, 7, got);
        net::scalar::ScanCapacityViolations(a.residual.data(), a.load.data(),
                                            a.capacity.data(), n,
                                            allow_overcommit,
                                            kBandwidthEpsilon, 7, ref);
        EXPECT_EQ(got, ref);
      }
    }
  }
}

TEST(ScanKernelTest, MaxDeficitPrefersFirstOfEqualMaxima) {
  // Hand-built tie: links 1 and 3 share the exact worst residual.
  const Mbps row[] = {50.0, 10.0, 30.0, 10.0, 60.0};
  const net::WorstDeficit got = net::MaxDeficit(row, 5, 40.0);
  EXPECT_EQ(got.index, 1u);
  EXPECT_EQ(got.deficit, 30.0);
  EXPECT_EQ(got.residual, 10.0);
}

TEST(ScanKernelTest, BackendReportsActiveTier) {
  const std::string backend = net::SimdBackend();
  EXPECT_TRUE(backend == "avx2" || backend == "sse2" || backend == "scalar")
      << backend;
}

}  // namespace
}  // namespace nu::update
