#include "update/transition.h"

#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/event_generator.h"

namespace nu::update {
namespace {

/// Three parallel 2-hop routes a-m{0,1,2}-b, capacity 10 each.
struct ParallelRoutes {
  ParallelRoutes() {
    a = graph.AddNode(topo::NodeRole::kHost);
    b = graph.AddNode(topo::NodeRole::kHost);
    for (int i = 0; i < 3; ++i) {
      const NodeId m = graph.AddNode(topo::NodeRole::kGeneric);
      graph.AddBidirectional(a, m, 10.0);
      graph.AddBidirectional(m, b, 10.0);
      mids.push_back(m);
    }
  }

  [[nodiscard]] topo::Path Route(int i) const {
    const std::array<NodeId, 3> seq{a, mids[static_cast<std::size_t>(i)], b};
    return graph.MakePath(seq);
  }

  FlowId PlaceOn(net::Network& net, int route, Mbps demand) const {
    flow::Flow f;
    f.src = a;
    f.dst = b;
    f.demand = demand;
    f.duration = 1.0;
    return net.Place(std::move(f), Route(route));
  }

  topo::Graph graph;
  NodeId a, b;
  std::vector<NodeId> mids;
};

TEST(TransitionTest, TrivialWhenTargetsAlreadyCurrent) {
  ParallelRoutes pr;
  net::Network net(pr.graph);
  const FlowId f = pr.PlaceOn(net, 0, 5.0);
  TargetConfig targets{{f.value(), pr.Route(0)}};
  const topo::KspPathProvider provider(pr.graph, 3);
  const TransitionPlan plan = PlanTransition(net, provider, targets);
  EXPECT_TRUE(plan.complete);
  EXPECT_TRUE(plan.steps.empty());
}

TEST(TransitionTest, IndependentMovesOrderedGreedily) {
  ParallelRoutes pr;
  net::Network net(pr.graph);
  const FlowId f1 = pr.PlaceOn(net, 0, 5.0);
  const FlowId f2 = pr.PlaceOn(net, 1, 5.0);
  TargetConfig targets{{f1.value(), pr.Route(2)},
                       {f2.value(), pr.Route(0)}};
  const topo::KspPathProvider provider(pr.graph, 3);
  const TransitionPlan plan = PlanTransition(net, provider, targets);
  ASSERT_TRUE(plan.complete);
  EXPECT_EQ(plan.DetourCount(), 0u);
  ApplyTransition(net, plan);
  EXPECT_EQ(net.PathOf(f1), pr.Route(2));
  EXPECT_EQ(net.PathOf(f2), pr.Route(0));
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(TransitionTest, SwapDeadlockResolvedByDetour) {
  // f1 and f2 must exchange routes 0 and 1; each fully occupies its route,
  // so neither direct move fits — the classic consistent-migration
  // deadlock. Route 2 provides the escape hatch.
  ParallelRoutes pr;
  net::Network net(pr.graph);
  const FlowId f1 = pr.PlaceOn(net, 0, 10.0);
  const FlowId f2 = pr.PlaceOn(net, 1, 10.0);
  TargetConfig targets{{f1.value(), pr.Route(1)},
                       {f2.value(), pr.Route(0)}};
  const topo::KspPathProvider provider(pr.graph, 3);
  const TransitionPlan plan = PlanTransition(net, provider, targets);
  ASSERT_TRUE(plan.complete);
  EXPECT_GE(plan.DetourCount(), 1u);
  ApplyTransition(net, plan);
  EXPECT_EQ(net.PathOf(f1), pr.Route(1));
  EXPECT_EQ(net.PathOf(f2), pr.Route(0));
  EXPECT_TRUE(net.CheckInvariants());
}

TEST(TransitionTest, SwapWithoutDetoursFails) {
  ParallelRoutes pr;
  net::Network net(pr.graph);
  const FlowId f1 = pr.PlaceOn(net, 0, 10.0);
  const FlowId f2 = pr.PlaceOn(net, 1, 10.0);
  // Occupy route 2 so no escape exists even with detours allowed.
  pr.PlaceOn(net, 2, 10.0);
  TargetConfig targets{{f1.value(), pr.Route(1)},
                       {f2.value(), pr.Route(0)}};
  const topo::KspPathProvider provider(pr.graph, 3);
  const TransitionPlan plan = PlanTransition(net, provider, targets);
  EXPECT_FALSE(plan.complete);
  EXPECT_EQ(plan.stuck.size(), 2u);

  TransitionOptions no_detours;
  no_detours.allow_detours = false;
  net::Network net2(pr.graph);
  const FlowId g1 = pr.PlaceOn(net2, 0, 10.0);
  const FlowId g2 = pr.PlaceOn(net2, 1, 10.0);
  TargetConfig targets2{{g1.value(), pr.Route(1)},
                        {g2.value(), pr.Route(0)}};
  const TransitionPlan plan2 =
      PlanTransition(net2, provider, targets2, no_detours);
  EXPECT_FALSE(plan2.complete);
}

TEST(TransitionTest, EveryStepFeasibleWhenReplayed) {
  ParallelRoutes pr;
  net::Network net(pr.graph);
  const FlowId f1 = pr.PlaceOn(net, 0, 10.0);
  const FlowId f2 = pr.PlaceOn(net, 1, 10.0);
  TargetConfig targets{{f1.value(), pr.Route(1)},
                       {f2.value(), pr.Route(0)}};
  const topo::KspPathProvider provider(pr.graph, 3);
  const TransitionPlan plan = PlanTransition(net, provider, targets);
  ASSERT_TRUE(plan.complete);
  // Replay one step at a time; invariants must hold at every intermediate
  // state (congestion-free transition).
  for (const TransitionStep& step : plan.steps) {
    ASSERT_TRUE(net.CanReroute(step.flow, step.path));
    net.Reroute(step.flow, step.path);
    ASSERT_TRUE(net.CheckInvariants());
  }
}

TEST(NodeDrainTest, DrainsCoreSwitchCongestionFree) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  net::Network net(ft.graph());
  Rng rng(606);
  // Load the fabric; some flows cross core(0).
  for (int i = 0; i < 60; ++i) {
    const NodeId src = ft.host(rng.Index(ft.host_count()));
    NodeId dst = ft.host(rng.Index(ft.host_count()));
    if (src == dst) continue;
    const auto& paths = provider.Paths(src, dst);
    const topo::Path& path = paths[rng.Index(paths.size())];
    const double demand = rng.Uniform(5.0, 30.0);
    if (!net.CanPlace(demand, path)) continue;
    flow::Flow f;
    f.src = src;
    f.dst = dst;
    f.demand = demand;
    f.duration = 1.0;
    net.Place(std::move(f), path);
  }
  const NodeId core = ft.core(0);
  const std::size_t crossing = FlowsThroughNode(net, core).size();
  ASSERT_GT(crossing, 0u) << "fixture never loaded the core";

  const TransitionPlan plan = PlanNodeDrain(net, provider, core);
  EXPECT_TRUE(plan.complete);
  // Apply step-by-step: congestion-free at every intermediate state.
  for (const TransitionStep& step : plan.steps) {
    ASSERT_TRUE(net.CanReroute(step.flow, step.path));
    net.Reroute(step.flow, step.path);
    ASSERT_TRUE(net.CheckInvariants());
  }
  EXPECT_TRUE(FlowsThroughNode(net, core).empty());
}

TEST(NodeDrainTest, ReportsUnmovableFlows) {
  // Flows behind an edge switch cannot avoid it: draining edge(0,0) must
  // report the host-0/1 flows as stuck instead of moving them.
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  net::Network net(ft.graph());
  flow::Flow f;
  f.src = ft.host(0);
  f.dst = ft.host(8);
  f.demand = 10.0;
  f.duration = 1.0;
  net.Place(std::move(f), provider.Paths(ft.host(0), ft.host(8))[0]);

  const TransitionPlan plan = PlanNodeDrain(net, provider, ft.edge(0, 0));
  EXPECT_FALSE(plan.complete);
  ASSERT_EQ(plan.stuck.size(), 1u);
  EXPECT_TRUE(plan.steps.empty());
}

TEST(TransitionPropertyTest, RandomTargetsOnFatTreeAreSound) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  Rng rng(505);
  for (int trial = 0; trial < 15; ++trial) {
    net::Network net(ft.graph());
    // Random placed flows with random alternate targets.
    TargetConfig targets;
    for (int i = 0; i < 25; ++i) {
      const NodeId src = ft.host(rng.Index(ft.host_count()));
      NodeId dst = ft.host(rng.Index(ft.host_count()));
      if (src == dst) continue;
      const auto& paths = provider.Paths(src, dst);
      const topo::Path& initial = paths[rng.Index(paths.size())];
      const double demand = rng.Uniform(5.0, 40.0);
      if (!net.CanPlace(demand, initial)) continue;
      flow::Flow f;
      f.src = src;
      f.dst = dst;
      f.demand = demand;
      f.duration = 1.0;
      const FlowId id = net.Place(std::move(f), initial);
      targets[id.value()] = paths[rng.Index(paths.size())];
    }
    const TransitionPlan plan = PlanTransition(net, provider, targets);
    // Sound regardless of completeness: applying must keep invariants and
    // leave completed flows on their targets.
    ApplyTransition(net, plan);
    EXPECT_TRUE(net.CheckInvariants());
    if (plan.complete) {
      for (const auto& [rep, target] : targets) {
        EXPECT_EQ(net.PathOf(FlowId{rep}), target);
      }
    } else {
      for (FlowId id : plan.stuck) {
        EXPECT_TRUE(targets.contains(id.value()));
      }
    }
  }
}

}  // namespace
}  // namespace nu::update
