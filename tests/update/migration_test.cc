#include "update/migration.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::update {
namespace {

// ---------- SelectCoverSet (pure min-sum subset cover) ----------

double SumOf(const std::vector<std::size_t>& chosen,
             const std::vector<double>& weights) {
  double s = 0.0;
  for (std::size_t i : chosen) s += weights[i];
  return s;
}

class AllStrategies
    : public ::testing::TestWithParam<MigrationStrategy> {};

TEST_P(AllStrategies, CoversTheDeficit) {
  const std::vector<double> weights{5.0, 3.0, 8.0, 2.0, 7.0};
  const auto chosen = SelectCoverSet(weights, 10.0, GetParam());
  ASSERT_TRUE(chosen.has_value());
  EXPECT_GE(SumOf(*chosen, weights), 10.0);
}

TEST_P(AllStrategies, EmptyWhenDeficitNonPositive) {
  const std::vector<double> weights{1.0, 2.0};
  const auto chosen = SelectCoverSet(weights, 0.0, GetParam());
  ASSERT_TRUE(chosen.has_value());
  EXPECT_TRUE(chosen->empty());
}

TEST_P(AllStrategies, InfeasibleWhenTotalTooSmall) {
  const std::vector<double> weights{1.0, 2.0};
  EXPECT_FALSE(SelectCoverSet(weights, 4.0, GetParam()).has_value());
}

TEST_P(AllStrategies, ExactlyFullSetWhenNeeded) {
  const std::vector<double> weights{1.0, 2.0, 3.0};
  const auto chosen = SelectCoverSet(weights, 6.0, GetParam());
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AllStrategies,
    ::testing::Values(MigrationStrategy::kGreedyLargestFirst,
                      MigrationStrategy::kBestFitDecreasing,
                      MigrationStrategy::kLocalSearch,
                      MigrationStrategy::kExactSmall));

TEST(SelectCoverSetTest, BestFitPrefersSmallestSingleCover) {
  // Deficit 4: singles >= 4 are {8, 5, 4.5}; best-fit should take 4.5.
  const std::vector<double> weights{8.0, 5.0, 4.5, 2.0, 1.0};
  const auto chosen =
      SelectCoverSet(weights, 4.0, MigrationStrategy::kBestFitDecreasing);
  ASSERT_TRUE(chosen.has_value());
  ASSERT_EQ(chosen->size(), 1u);
  EXPECT_DOUBLE_EQ(weights[(*chosen)[0]], 4.5);
}

TEST(SelectCoverSetTest, ExactBeatsOrMatchesGreedyAlways) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + rng.Index(10);
    std::vector<double> weights;
    for (std::size_t i = 0; i < n; ++i) {
      weights.push_back(rng.Uniform(0.5, 20.0));
    }
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    const double deficit = rng.Uniform(0.1, total);
    const auto exact =
        SelectCoverSet(weights, deficit, MigrationStrategy::kExactSmall);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(SumOf(*exact, weights), deficit);
    for (const MigrationStrategy heuristic :
         {MigrationStrategy::kGreedyLargestFirst,
          MigrationStrategy::kBestFitDecreasing,
          MigrationStrategy::kLocalSearch}) {
      const auto h = SelectCoverSet(weights, deficit, heuristic);
      ASSERT_TRUE(h.has_value());
      EXPECT_LE(SumOf(*exact, weights), SumOf(*h, weights) + 1e-9)
          << "exact worse than " << ToString(heuristic);
    }
  }
}

TEST(SelectCoverSetTest, LocalSearchNoWorseThanBestFit) {
  Rng rng(88);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 4 + rng.Index(12);
    std::vector<double> weights;
    for (std::size_t i = 0; i < n; ++i) {
      weights.push_back(rng.Uniform(0.5, 20.0));
    }
    const double deficit = rng.Uniform(
        0.1, std::accumulate(weights.begin(), weights.end(), 0.0));
    const auto bfd =
        SelectCoverSet(weights, deficit, MigrationStrategy::kBestFitDecreasing);
    const auto ls =
        SelectCoverSet(weights, deficit, MigrationStrategy::kLocalSearch);
    ASSERT_TRUE(bfd.has_value());
    ASSERT_TRUE(ls.has_value());
    EXPECT_LE(SumOf(*ls, weights), SumOf(*bfd, weights) + 1e-9);
  }
}

TEST(SelectCoverSetTest, ExactSolvesKnownHardInstance) {
  // Deficit 10 over {6, 5, 5, 4}: greedy-largest takes {6,5}=11,
  // optimum is {5,5}=10 (or {6,4}=10).
  const std::vector<double> weights{6.0, 5.0, 5.0, 4.0};
  const auto exact =
      SelectCoverSet(weights, 10.0, MigrationStrategy::kExactSmall);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(SumOf(*exact, weights), 10.0);
}

// ---------- MigrationOptimizer on real networks ----------

struct FatTreeFixture {
  FatTreeFixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  FlowId PlaceOn(const topo::Path& path, Mbps demand) {
    flow::Flow f;
    f.src = path.source();
    f.dst = path.destination();
    f.demand = demand;
    f.duration = 10.0;
    return network.Place(std::move(f), path);
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

TEST(MigrationOptimizerTest, NoMigrationWhenPathFree) {
  FatTreeFixture fx;
  const MigrationOptimizer optimizer(fx.provider);
  const auto& path = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8))[0];
  const MigrationPlan plan = optimizer.Plan(fx.network, 50.0, path);
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_DOUBLE_EQ(plan.migrated_traffic, 0.0);
}

TEST(MigrationOptimizerTest, MigratesBlockerOffSharedFabricLink) {
  FatTreeFixture fx;
  const MigrationOptimizer optimizer(fx.provider);
  // Desired: host0 -> host2 (same pod, different edge), via agg A.
  const auto& candidates = fx.provider.Paths(fx.ft.host(0), fx.ft.host(2));
  ASSERT_EQ(candidates.size(), 2u);
  // Blocker from host1 (same edge as host0) occupies BOTH agg paths'
  // edge0->agg links? No — place blockers on each agg path so that the
  // desired path lacks capacity but the blocker can be migrated.
  // Occupy agg path 0 with 80 Mbps from host1 -> host3.
  const auto& blocker_candidates =
      fx.provider.Paths(fx.ft.host(1), fx.ft.host(3));
  const FlowId blocker = fx.PlaceOn(blocker_candidates[0], 80.0);
  // The desired path shares edge0->agg0 with the blocker; ask for 50.
  const topo::Path desired = candidates[0];
  ASSERT_FALSE(fx.network.CanPlace(50.0, desired));

  const MigrationPlan plan = optimizer.Plan(fx.network, 50.0, desired);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].flow, blocker);
  EXPECT_DOUBLE_EQ(plan.migrated_traffic, 80.0);

  // Applying the plan makes the desired path feasible on the live network.
  MigrationOptimizer::Apply(fx.network, plan);
  EXPECT_TRUE(fx.network.CanPlace(50.0, desired));
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(MigrationOptimizerTest, PicksCheapestSufficientBlocker) {
  FatTreeFixture fx;
  const MigrationOptimizer optimizer(fx.provider);
  const auto& candidates = fx.provider.Paths(fx.ft.host(0), fx.ft.host(2));
  const topo::Path desired = candidates[0];
  // Two blockers share the desired path's edge0->agg0 link: 60 and 30 Mbps.
  const auto& blocker_candidates =
      fx.provider.Paths(fx.ft.host(1), fx.ft.host(3));
  fx.PlaceOn(blocker_candidates[0], 60.0);
  const FlowId small = fx.PlaceOn(blocker_candidates[0], 30.0);
  // Residual on that link = 10; need 40 -> deficit 30. The 30 Mbps blocker
  // alone suffices and is cheapest.
  const MigrationPlan plan = optimizer.Plan(fx.network, 40.0, desired);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].flow, small);
  EXPECT_DOUBLE_EQ(plan.migrated_traffic, 30.0);
}

TEST(MigrationOptimizerTest, InfeasibleWhenBlockersCannotMove) {
  FatTreeFixture fx;
  const MigrationOptimizer optimizer(fx.provider);
  // Saturate host0's own uplink (the only path out): migration cannot help
  // because the blocker shares the single host link.
  const auto& single = fx.provider.Paths(fx.ft.host(0), fx.ft.host(1));
  ASSERT_EQ(single.size(), 1u);
  fx.PlaceOn(single[0], 90.0);
  const MigrationPlan plan = optimizer.Plan(fx.network, 50.0, single[0]);
  EXPECT_FALSE(plan.feasible);
}

TEST(MigrationOptimizerTest, MigrationKeepsNetworkCongestionFree) {
  FatTreeFixture fx;
  const MigrationOptimizer optimizer(fx.provider);
  Rng rng(123);
  // Load the fabric with random feasible flows.
  std::vector<FlowId> placed;
  for (int i = 0; i < 60; ++i) {
    const auto src = fx.ft.host(rng.Index(fx.ft.host_count()));
    auto dst = fx.ft.host(rng.Index(fx.ft.host_count()));
    if (src == dst) continue;
    const double demand = rng.Uniform(5.0, 40.0);
    const auto& paths = fx.provider.Paths(src, dst);
    const auto& path = paths[rng.Index(paths.size())];
    if (fx.network.CanPlace(demand, path)) {
      flow::Flow f;
      f.src = src;
      f.dst = dst;
      f.demand = demand;
      f.duration = 5.0;
      placed.push_back(fx.network.Place(std::move(f), path));
    }
  }
  ASSERT_TRUE(fx.network.CheckInvariants());

  // Plan migrations for many new demands; whenever feasible, applying the
  // plan must leave the network congestion-free and admit the new flow.
  int feasible_plans = 0;
  for (int i = 0; i < 40; ++i) {
    const auto src = fx.ft.host(rng.Index(fx.ft.host_count()));
    auto dst = fx.ft.host(rng.Index(fx.ft.host_count()));
    if (src == dst) continue;
    const double demand = rng.Uniform(30.0, 80.0);
    const auto& paths = fx.provider.Paths(src, dst);
    const topo::Path& desired = paths[rng.Index(paths.size())];
    if (fx.network.CanPlace(demand, desired)) continue;  // nothing to test
    net::Network scratch = fx.network;
    const MigrationPlan plan = optimizer.Plan(scratch, demand, desired);
    if (!plan.feasible) continue;
    ++feasible_plans;
    MigrationOptimizer::Apply(scratch, plan);
    EXPECT_TRUE(scratch.CanPlace(demand, desired));
    EXPECT_TRUE(scratch.CheckInvariants());
    EXPECT_GT(plan.migrated_traffic, 0.0);
  }
  EXPECT_GT(feasible_plans, 0) << "fixture never exercised migration";
}

TEST(MigrationOptimizerTest, MovesOrderedApplicableSequentially) {
  FatTreeFixture fx;
  const MigrationOptimizer optimizer(fx.provider);
  const auto& candidates = fx.provider.Paths(fx.ft.host(0), fx.ft.host(2));
  const topo::Path desired = candidates[0];
  const auto& blocker_paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(3));
  fx.PlaceOn(blocker_paths[0], 50.0);
  fx.PlaceOn(blocker_paths[0], 45.0);
  const MigrationPlan plan = optimizer.Plan(fx.network, 99.0, desired);
  ASSERT_TRUE(plan.feasible);
  // Apply one-by-one: every intermediate state stays congestion-free.
  for (const MigrationMove& move : plan.moves) {
    fx.network.Reroute(move.flow,
                       fx.network.path_registry().Get(move.new_path));
    EXPECT_TRUE(fx.network.CheckInvariants());
  }
  EXPECT_TRUE(fx.network.CanPlace(99.0, desired));
}

TEST(FindRerouteTargetTest, AvoidsForbiddenLinks) {
  FatTreeFixture fx;
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(2));
  const FlowId id = fx.PlaceOn(paths[0], 10.0);
  std::unordered_set<LinkId::rep_type> forbidden;
  for (LinkId l : paths[1].links) forbidden.insert(l.value());
  // The only other candidate path is paths[1], fully forbidden.
  const auto target =
      FindRerouteTarget(fx.network, fx.provider, id, forbidden);
  EXPECT_FALSE(target.has_value());
}

TEST(FindRerouteTargetTest, PicksWidestAlternative) {
  FatTreeFixture fx;
  // Inter-pod flow with 4 candidate paths on k=4.
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  ASSERT_EQ(paths.size(), 4u);
  const FlowId id = fx.PlaceOn(paths[0], 10.0);
  // Narrow path 1 by loading its core switch with a flow to a DIFFERENT
  // destination host (so only p1's core links are narrowed, not the shared
  // destination host link).
  const topo::Path& p1 = paths[1];
  flow::Flow narrow;
  narrow.src = fx.ft.host(4);
  narrow.dst = fx.ft.host(10);
  narrow.demand = 70.0;
  narrow.duration = 1.0;
  // Find a candidate of host4->host10 sharing p1's core.
  for (const topo::Path& q :
       fx.provider.Paths(fx.ft.host(4), fx.ft.host(10))) {
    if (q.nodes[3] == p1.nodes[3]) {
      fx.network.Place(std::move(narrow), q);
      break;
    }
  }
  const auto target = FindRerouteTarget(fx.network, fx.provider, id, {});
  ASSERT_TRUE(target.has_value());
  EXPECT_NE(target->nodes[3], p1.nodes[3]) << "picked the narrowed path";
}

}  // namespace
}  // namespace nu::update
