#include "update/event_generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/benson.h"
#include "update/planner.h"

namespace nu::update {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0}),
        provider(ft),
        network(ft.graph()),
        flows(ft.hosts(), Rng(11)) {}

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
  trace::BensonGenerator flows;
};

TEST(EventGeneratorTest, FlowCountWithinRange) {
  Fixture fx;
  EventGenerator gen(fx.flows, Rng(1));
  SyntheticEventConfig config;
  config.min_flows = 10;
  config.max_flows = 100;
  for (int i = 0; i < 50; ++i) {
    const UpdateEvent e = gen.Next(0.0, config);
    EXPECT_GE(e.flow_count(), 10u);
    EXPECT_LE(e.flow_count(), 100u);
  }
}

TEST(EventGeneratorTest, IdsUniqueAndIncreasing) {
  Fixture fx;
  EventGenerator gen(fx.flows, Rng(2));
  SyntheticEventConfig config;
  config.min_flows = 1;
  config.max_flows = 2;
  EventId last = gen.Next(0.0, config).id();
  for (int i = 0; i < 20; ++i) {
    const EventId id = gen.Next(0.0, config).id();
    EXPECT_GT(id, last);
    last = id;
  }
}

TEST(EventGeneratorTest, BatchAtTimeZero) {
  Fixture fx;
  EventGenerator gen(fx.flows, Rng(3));
  const auto events = gen.Batch(10, SyntheticEventConfig{});
  ASSERT_EQ(events.size(), 10u);
  for (const UpdateEvent& e : events) {
    EXPECT_DOUBLE_EQ(e.arrival_time(), 0.0);
  }
}

TEST(EventGeneratorTest, BatchWithInterarrival) {
  Fixture fx;
  EventGenerator gen(fx.flows, Rng(4));
  const auto events = gen.Batch(20, SyntheticEventConfig{}, 5.0);
  Seconds prev = -1.0;
  for (const UpdateEvent& e : events) {
    EXPECT_GT(e.arrival_time(), prev);
    prev = e.arrival_time();
  }
  EXPECT_GT(events.back().arrival_time(), 0.0);
}

TEST(FlowsThroughNodeTest, FindsCrossingFlows) {
  Fixture fx;
  // Place an inter-pod flow; it crosses exactly one core.
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  flow::Flow f;
  f.src = fx.ft.host(0);
  f.dst = fx.ft.host(8);
  f.demand = 10.0;
  f.duration = 1.0;
  fx.network.Place(std::move(f), paths[0]);
  const NodeId core = paths[0].nodes[3];
  EXPECT_EQ(FlowsThroughNode(fx.network, core).size(), 1u);
  // A core not on the path sees nothing.
  const NodeId other_core = paths[1].nodes[3];
  EXPECT_TRUE(FlowsThroughNode(fx.network, other_core).empty());
}

TEST(SwitchUpgradeEventTest, ReplacementsMatchOriginals) {
  Fixture fx;
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  for (int i = 0; i < 3; ++i) {
    flow::Flow f;
    f.src = fx.ft.host(0);
    f.dst = fx.ft.host(8);
    f.demand = 10.0 + i;
    f.duration = 2.0;
    fx.network.Place(std::move(f), paths[0]);
  }
  const NodeId core = paths[0].nodes[3];
  const UpdateEvent event =
      MakeSwitchUpgradeEvent(EventId{1}, 0.0, fx.network, core);
  EXPECT_EQ(event.kind(), EventKind::kSwitchUpgrade);
  EXPECT_EQ(event.flow_count(), 3u);
  EXPECT_DOUBLE_EQ(event.TotalDemand(), 10.0 + 11.0 + 12.0);
}

TEST(SwitchUpgradeEventTest, EndToEndUpgradeDrainsSwitch) {
  Fixture fx;
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  for (int i = 0; i < 4; ++i) {
    flow::Flow f;
    f.src = fx.ft.host(0);
    f.dst = fx.ft.host(8);
    f.demand = 20.0;
    f.duration = 2.0;
    fx.network.Place(std::move(f), paths[0]);
  }
  const NodeId core = paths[0].nodes[3];
  const auto affected = FlowsThroughNode(fx.network, core);
  const UpdateEvent event =
      MakeSwitchUpgradeEvent(EventId{1}, 0.0, fx.network, core);
  RemoveFlows(fx.network, affected);
  EXPECT_TRUE(FlowsThroughNode(fx.network, core).empty());

  // Re-place the replacement flows avoiding the upgraded core.
  const topo::NodeAvoidingPathProvider avoiding(fx.provider, core);
  const EventPlanner planner(avoiding);
  const ExecutionResult result = planner.Execute(fx.network, event);
  EXPECT_TRUE(result.plan.fully_feasible);
  EXPECT_TRUE(FlowsThroughNode(fx.network, core).empty());
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(SwitchFailureEventTest, ReplacesEveryFlowThroughTheDeadSwitch) {
  Fixture fx;
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  for (int i = 0; i < 3; ++i) {
    flow::Flow f;
    f.src = fx.ft.host(0);
    f.dst = fx.ft.host(8);
    f.demand = 10.0 + i;
    f.duration = 2.0;
    fx.network.Place(std::move(f), paths[0]);
  }
  const NodeId core = paths[0].nodes[3];
  const UpdateEvent event =
      MakeSwitchFailureEvent(EventId{5}, 1.5, fx.network, core);
  EXPECT_EQ(event.kind(), EventKind::kFailureReroute);
  EXPECT_DOUBLE_EQ(event.arrival_time(), 1.5);
  EXPECT_EQ(event.flow_count(), 3u);
  EXPECT_DOUBLE_EQ(event.TotalDemand(), 10.0 + 11.0 + 12.0);
}

TEST(SwitchFailureEventDeathTest, RejectsSwitchNothingCrosses) {
  Fixture fx;
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  const NodeId idle_core = paths[1].nodes[3];
  EXPECT_DEATH(MakeSwitchFailureEvent(EventId{6}, 0.0, fx.network, idle_core),
               "Precondition");
}

TEST(LinkFailureEventTest, ReplacesFlowsOnBothDirections) {
  Fixture fx;
  // Forward flow host0->host8 via core paths[0]; reverse flow host8->host0
  // through the same cable.
  const auto& fwd_paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  flow::Flow fwd;
  fwd.src = fx.ft.host(0);
  fwd.dst = fx.ft.host(8);
  fwd.demand = 10.0;
  fwd.duration = 2.0;
  fx.network.Place(std::move(fwd), fwd_paths[0]);

  // The agg->core link of that path.
  const LinkId cable = fwd_paths[0].links[2];
  const topo::Link& l = fx.ft.graph().link(cable);
  const LinkId reverse = fx.ft.graph().FindLink(l.dst, l.src);
  // A flow using the reverse direction: host8 -> host0 via the same core.
  for (const topo::Path& p :
       fx.provider.Paths(fx.ft.host(8), fx.ft.host(0))) {
    if (std::find(p.links.begin(), p.links.end(), reverse) != p.links.end()) {
      flow::Flow rev;
      rev.src = fx.ft.host(8);
      rev.dst = fx.ft.host(0);
      rev.demand = 5.0;
      rev.duration = 2.0;
      fx.network.Place(std::move(rev), p);
      break;
    }
  }

  EXPECT_EQ(FlowsThroughLink(fx.network, cable).size(), 2u);
  const UpdateEvent event =
      MakeLinkFailureEvent(EventId{3}, 0.0, fx.network, cable);
  EXPECT_EQ(event.kind(), EventKind::kFailureReroute);
  EXPECT_EQ(event.flow_count(), 2u);
  EXPECT_DOUBLE_EQ(event.TotalDemand(), 15.0);
}

TEST(LinkFailureEventTest, EndToEndRerouteAvoidsFailedCable) {
  Fixture fx;
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(8));
  for (int i = 0; i < 3; ++i) {
    flow::Flow f;
    f.src = fx.ft.host(0);
    f.dst = fx.ft.host(8);
    f.demand = 20.0;
    f.duration = 2.0;
    fx.network.Place(std::move(f), paths[0]);
  }
  const LinkId cable = paths[0].links[2];
  const auto affected = FlowsThroughLink(fx.network, cable);
  const UpdateEvent event =
      MakeLinkFailureEvent(EventId{4}, 0.0, fx.network, cable);
  RemoveFlows(fx.network, affected);

  const topo::LinkAvoidingPathProvider avoiding(fx.provider, cable);
  const EventPlanner planner(avoiding);
  const ExecutionResult result = planner.Execute(fx.network, event);
  EXPECT_TRUE(result.plan.fully_feasible);
  EXPECT_TRUE(FlowsThroughLink(fx.network, cable).empty());
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(VmMigrationEventTest, StreamsSizedByVolume) {
  const VmMigrationConfig config{
      .streams = 4, .stream_demand = 100.0, .vm_volume = 8000.0};
  const UpdateEvent event = MakeVmMigrationEvent(
      EventId{2}, 1.0, NodeId{0}, NodeId{5}, config);
  EXPECT_EQ(event.kind(), EventKind::kVmMigration);
  EXPECT_EQ(event.flow_count(), 4u);
  // 8000 Mb over 4 x 100 Mbps = 20 s each.
  for (const flow::Flow& f : event.flows()) {
    EXPECT_DOUBLE_EQ(f.duration, 20.0);
    EXPECT_DOUBLE_EQ(f.demand, 100.0);
    EXPECT_EQ(f.src, NodeId{0});
    EXPECT_EQ(f.dst, NodeId{5});
  }
  EXPECT_DOUBLE_EQ(event.TotalVolume(), 8000.0);
}

TEST(VmMigrationEventDeathTest, RejectsSameHost) {
  EXPECT_DEATH(MakeVmMigrationEvent(EventId{1}, 0.0, NodeId{0}, NodeId{0},
                                    VmMigrationConfig{}),
               "Precondition");
}

}  // namespace
}  // namespace nu::update
