// Reconciler passes: detection, repair through the grey pipeline, backoff
// and abandonment, quarantine escalation, drift streaks for the auditor,
// pruning of stale intent, and snapshot round-trips.
#include <gtest/gtest.h>

#include <vector>

#include "common/binio.h"
#include "net/network.h"
#include "recon/reconciler.h"
#include "topo/fat_tree.h"

namespace nu::recon {
namespace {

ReconcilerConfig FastConfig() {
  ReconcilerConfig config;
  config.enabled = true;
  config.retry.max_attempts = 3;
  config.health.ewma_alpha = 0.5;
  return config;
}

fault::GreyFailureModel Always(fault::GreyKind kind, Seconds min_delay = 0.0,
                               Seconds max_delay = 0.0) {
  fault::GreyFailureSpec spec;
  spec.kind = kind;
  spec.probability = 1.0;
  spec.min_delay = min_delay;
  spec.max_delay = max_delay;
  fault::GreyFailureModel model;
  model.specs.push_back(spec);
  return model;
}

TEST(ReconcilerTest, HealthyPipelineRepairsEverythingInOnePass) {
  Reconciler recon(FastConfig());
  net::DataplaneState dp;
  dp.AddDivergence(NodeId{3}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  dp.AddDivergence(NodeId{3}, FlowId{2}, net::RuleFault::kAckLie, 0.5);
  Rng rng(1);

  // Empty grey model: every re-issue applies immediately.
  const PassResult result =
      recon.Pass(Reconciler::CollectDrift(dp), dp, {}, 2.0, rng);

  EXPECT_TRUE(dp.empty());
  EXPECT_TRUE(result.deferred.empty());
  EXPECT_TRUE(result.quarantine.empty());
  EXPECT_EQ(result.drifting_switches, 1u);
  const ReconStats& stats = recon.stats();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.drift_detected, 2u);
  EXPECT_EQ(stats.repairs_succeeded, 2u);
  EXPECT_EQ(stats.repair_failures, 0u);
  // Latencies measured from each entry's `since` to the pass time.
  ASSERT_EQ(stats.repair_latency.count(), 2u);
  EXPECT_NEAR(stats.repair_latency.mean(), (2.0 + 1.5) / 2.0, 1e-12);
}

TEST(ReconcilerTest, PermaLiarExhaustsBudgetAndIsAbandoned) {
  Reconciler recon(FastConfig());
  net::DataplaneState dp;
  dp.AddDivergence(NodeId{4}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  const fault::GreyFailureModel liar = Always(fault::GreyKind::kAckLie);
  Rng rng(1);

  // Pass times spaced beyond the worst jittered backoff so every pass gets
  // a live repair attempt; max_attempts=3 means the third failure abandons.
  for (int pass = 1; pass <= 3; ++pass) {
    recon.Pass(Reconciler::CollectDrift(dp), dp, liar,
               10.0 * static_cast<double>(pass), rng);
  }
  EXPECT_EQ(dp.active_count(), 0u);
  EXPECT_EQ(dp.abandoned_count(), 1u);
  const ReconStats& stats = recon.stats();
  EXPECT_EQ(stats.repair_attempts, 3u);
  EXPECT_EQ(stats.repair_failures, 3u);
  EXPECT_EQ(stats.rules_abandoned, 1u);
  EXPECT_EQ(stats.repairs_succeeded, 0u);

  // An abandoned rule no longer draws repair attempts.
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 40.0, rng);
  EXPECT_EQ(recon.stats().repair_attempts, 3u);
}

TEST(ReconcilerTest, BackoffDefersRetriesWithinTheWindow) {
  Reconciler recon(FastConfig());
  net::DataplaneState dp;
  dp.AddDivergence(NodeId{4}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  const fault::GreyFailureModel liar = Always(fault::GreyKind::kAckLie);
  Rng rng(1);

  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 1.0, rng);
  ASSERT_EQ(recon.stats().repair_attempts, 1u);
  // base_delay=0.05 with 10% jitter: the next attempt is at least 1.045.
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 1.01, rng);
  EXPECT_EQ(recon.stats().repair_attempts, 1u);  // still backing off
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 2.0, rng);
  EXPECT_EQ(recon.stats().repair_attempts, 2u);
}

TEST(ReconcilerTest, StragglerRepairDefersTheApply) {
  Reconciler recon(FastConfig());
  net::DataplaneState dp;
  dp.AddDivergence(NodeId{4}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  const fault::GreyFailureModel slow =
      Always(fault::GreyKind::kStraggler, 0.5, 1.0);
  Rng rng(1);

  const PassResult result =
      recon.Pass(Reconciler::CollectDrift(dp), dp, slow, 2.0, rng);
  ASSERT_EQ(result.deferred.size(), 1u);
  EXPECT_EQ(result.deferred[0].kind, DeferredGrey::Kind::kApply);
  EXPECT_EQ(result.deferred[0].node, NodeId{4});
  EXPECT_EQ(result.deferred[0].flow, FlowId{1});
  EXPECT_GE(result.deferred[0].time, 2.5);
  EXPECT_LT(result.deferred[0].time, 3.0);
  // The entry stays divergent but in flight; no re-issue next pass.
  ASSERT_NE(dp.Find(NodeId{4}, FlowId{1}), nullptr);
  EXPECT_TRUE(dp.Find(NodeId{4}, FlowId{1})->pending_apply);
  recon.Pass(Reconciler::CollectDrift(dp), dp, slow, 2.2, rng);
  EXPECT_EQ(recon.stats().repair_attempts, 1u);
}

TEST(ReconcilerTest, RuleLossRepairSucceedsThenSchedulesEviction) {
  Reconciler recon(FastConfig());
  net::DataplaneState dp;
  dp.AddDivergence(NodeId{4}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  const fault::GreyFailureModel lossy =
      Always(fault::GreyKind::kRuleLoss, 1.0, 2.0);
  Rng rng(1);

  const PassResult result =
      recon.Pass(Reconciler::CollectDrift(dp), dp, lossy, 3.0, rng);
  EXPECT_TRUE(dp.empty());  // applied now...
  ASSERT_EQ(result.deferred.size(), 1u);  // ...but evicted again later
  EXPECT_EQ(result.deferred[0].kind, DeferredGrey::Kind::kLoss);
  EXPECT_GE(result.deferred[0].time, 4.0);
  EXPECT_LT(result.deferred[0].time, 5.0);
  EXPECT_EQ(recon.stats().repairs_succeeded, 1u);
}

TEST(ReconcilerTest, RepeatedIncidentsQuarantineTheSwitch) {
  Reconciler recon(FastConfig());
  net::DataplaneState dp;
  dp.AddDivergence(NodeId{7}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  const fault::GreyFailureModel liar = Always(fault::GreyKind::kAckLie);
  Rng rng(1);

  // alpha=0.5 reaches the 0.85 quarantine threshold on the third
  // consecutive incident pass.
  std::vector<NodeId> quarantined;
  for (int pass = 1; pass <= 3; ++pass) {
    // Keep the entry alive: re-add after abandonment so every pass sees
    // the switch drifting (a fresh lie each time).
    dp.AddDivergence(NodeId{7},
                     FlowId{static_cast<FlowId::rep_type>(pass + 1)},
                     net::RuleFault::kAckLie, 0.0);
    const PassResult result =
        recon.Pass(Reconciler::CollectDrift(dp), dp, liar,
                   10.0 * static_cast<double>(pass), rng);
    for (const NodeId n : result.quarantine) quarantined.push_back(n);
  }
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0], NodeId{7});
  EXPECT_EQ(recon.stats().switches_quarantined, 1u);
  EXPECT_EQ(recon.health().LevelOf(NodeId{7}), HealthLevel::kQuarantined);
  // Quarantined switches are excluded from drift streaks (excused).
  EXPECT_TRUE(recon.DriftStreaks().empty());
}

TEST(ReconcilerTest, DriftStreaksTrackConsecutivePassesOnly) {
  ReconcilerConfig config = FastConfig();
  config.health.quarantine_threshold = 1.5;  // never quarantine
  Reconciler recon(config);
  net::DataplaneState dp;
  const fault::GreyFailureModel liar = Always(fault::GreyKind::kAckLie);
  Rng rng(1);

  dp.AddDivergence(NodeId{5}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 10.0, rng);
  dp.AddDivergence(NodeId{5}, FlowId{2}, net::RuleFault::kAckLie, 0.0);
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 20.0, rng);
  std::vector<DriftStreak> streaks = recon.DriftStreaks();
  ASSERT_EQ(streaks.size(), 1u);
  EXPECT_EQ(streaks[0].node, NodeId{5});
  EXPECT_EQ(streaks[0].passes, 2u);

  // A clean pass resets the streak.
  for (const FlowId f : dp.DivergentFlowsOn(NodeId{5})) {
    dp.Resolve(NodeId{5}, f);
  }
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 30.0, rng);
  EXPECT_TRUE(recon.DriftStreaks().empty());
}

TEST(ReconcilerTest, PruneDropsEntriesWithoutIntent) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const net::Network network(ft.graph());
  net::DataplaneState dp;
  // No flow in the network backs these entries: all stale.
  dp.AddDivergence(NodeId{1}, FlowId{10}, net::RuleFault::kAckLie, 0.0);
  dp.AddDivergence(NodeId{2}, FlowId{11}, net::RuleFault::kRuleLoss, 0.0);
  Reconciler::Prune(network, dp);
  EXPECT_TRUE(dp.empty());
}

TEST(ReconcilerTest, SaveLoadRoundTrip) {
  Reconciler recon(FastConfig());
  net::DataplaneState dp;
  dp.AddDivergence(NodeId{4}, FlowId{1}, net::RuleFault::kAckLie, 0.0);
  dp.AddDivergence(NodeId{6}, FlowId{2}, net::RuleFault::kAckLie, 0.0);
  const fault::GreyFailureModel liar = Always(fault::GreyKind::kAckLie);
  Rng rng(1);
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 1.0, rng);
  recon.Pass(Reconciler::CollectDrift(dp), dp, liar, 12.0, rng);

  BinWriter w;
  recon.SaveState(w);
  BinReader r(w.buffer());
  Reconciler loaded(FastConfig());
  loaded.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(loaded == recon);
  EXPECT_EQ(loaded.stats().passes, recon.stats().passes);
  EXPECT_EQ(loaded.stats().repair_failures, recon.stats().repair_failures);
  EXPECT_EQ(loaded.stats().repair_latency.count(),
            recon.stats().repair_latency.count());
  EXPECT_EQ(loaded.DriftStreaks().size(), recon.DriftStreaks().size());
}

}  // namespace
}  // namespace nu::recon
