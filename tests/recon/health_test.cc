// SwitchHealthTracker: the EWMA escalation ladder behind the reconciler.
// Scores climb on incidents and decay on clean passes, quarantine latches,
// and the epoch counter bumps exactly on usable-boundary crossings.
#include <gtest/gtest.h>

#include "common/binio.h"
#include "recon/health.h"

namespace nu::recon {
namespace {

HealthConfig Fast() {
  HealthConfig config;
  config.ewma_alpha = 0.5;  // fast ladder for short tests
  config.suspect_threshold = 0.2;
  config.degrade_threshold = 0.55;
  config.quarantine_threshold = 0.85;
  return config;
}

TEST(HealthTest, UnknownSwitchesAreHealthyAndUsable) {
  const SwitchHealthTracker tracker;
  EXPECT_EQ(tracker.LevelOf(NodeId{5}), HealthLevel::kHealthy);
  EXPECT_EQ(tracker.ScoreOf(NodeId{5}), 0.0);
  EXPECT_TRUE(tracker.IsUsable(NodeId{5}));
  EXPECT_FALSE(tracker.any_unusable());
}

TEST(HealthTest, IncidentsEscalateThroughTheLadder) {
  SwitchHealthTracker tracker(Fast());
  // alpha=0.5: scores 0.5, 0.75, 0.875 -> suspect, degraded, quarantined.
  EXPECT_EQ(tracker.Observe(NodeId{1}, true), HealthLevel::kSuspect);
  EXPECT_TRUE(tracker.IsUsable(NodeId{1}));
  EXPECT_EQ(tracker.Observe(NodeId{1}, true), HealthLevel::kDegraded);
  EXPECT_FALSE(tracker.IsUsable(NodeId{1}));
  EXPECT_EQ(tracker.degraded_count(), 1u);
  EXPECT_EQ(tracker.Observe(NodeId{1}, true), HealthLevel::kQuarantined);
  EXPECT_EQ(tracker.quarantined_count(), 1u);
  EXPECT_EQ(tracker.degraded_count(), 0u);  // moved up, not double-counted
  EXPECT_EQ(tracker.ever_degraded(), 1u);
  EXPECT_TRUE(tracker.any_unusable());
}

TEST(HealthTest, CleanObservationsDecayButQuarantineLatches) {
  SwitchHealthTracker tracker(Fast());
  tracker.Observe(NodeId{1}, true);
  tracker.Observe(NodeId{1}, true);
  ASSERT_EQ(tracker.LevelOf(NodeId{1}), HealthLevel::kDegraded);
  // One clean pass: 0.75 -> 0.375, back below the degrade threshold.
  EXPECT_EQ(tracker.Observe(NodeId{1}, false), HealthLevel::kSuspect);
  EXPECT_TRUE(tracker.IsUsable(NodeId{1}));

  // Push to quarantine, then observe clean forever: the level never drops.
  SwitchHealthTracker latched(Fast());
  for (int i = 0; i < 3; ++i) latched.Observe(NodeId{2}, true);
  ASSERT_EQ(latched.LevelOf(NodeId{2}), HealthLevel::kQuarantined);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(latched.Observe(NodeId{2}, false), HealthLevel::kQuarantined);
  }
  EXPECT_EQ(latched.quarantined_count(), 1u);
}

TEST(HealthTest, EpochBumpsOnUsableBoundaryCrossingsOnly) {
  SwitchHealthTracker tracker(Fast());
  const std::uint64_t e0 = tracker.epoch();
  tracker.Observe(NodeId{1}, true);  // healthy -> suspect: still usable
  EXPECT_EQ(tracker.epoch(), e0);
  tracker.Observe(NodeId{1}, true);  // suspect -> degraded: crossed
  const std::uint64_t e1 = tracker.epoch();
  EXPECT_GT(e1, e0);
  tracker.Observe(NodeId{1}, false);  // degraded -> suspect: crossed back
  EXPECT_GT(tracker.epoch(), e1);
}

TEST(HealthTest, QuarantineAboveOneNeverFires) {
  HealthConfig config = Fast();
  config.quarantine_threshold = 1.5;  // disabled: EWMA can never reach it
  SwitchHealthTracker tracker(config);
  for (int i = 0; i < 100; ++i) tracker.Observe(NodeId{1}, true);
  EXPECT_EQ(tracker.LevelOf(NodeId{1}), HealthLevel::kDegraded);
  EXPECT_EQ(tracker.quarantined_count(), 0u);
}

TEST(HealthTest, SaveLoadRoundTrip) {
  SwitchHealthTracker tracker(Fast());
  tracker.Observe(NodeId{1}, true);
  tracker.Observe(NodeId{1}, true);
  tracker.Observe(NodeId{4}, true);
  tracker.Observe(NodeId{4}, false);
  BinWriter w;
  tracker.SaveState(w);
  BinReader r(w.buffer());
  SwitchHealthTracker loaded(Fast());
  loaded.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(loaded == tracker);
  EXPECT_EQ(loaded.LevelOf(NodeId{1}), HealthLevel::kDegraded);
  EXPECT_EQ(loaded.epoch(), tracker.epoch());
}

}  // namespace
}  // namespace nu::recon
