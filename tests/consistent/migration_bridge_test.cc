#include "consistent/migration_bridge.h"

#include <gtest/gtest.h>

#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::consistent {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  FlowId PlaceOn(const topo::Path& path, Mbps demand) {
    flow::Flow f;
    f.src = path.source();
    f.dst = path.destination();
    f.demand = demand;
    f.duration = 10.0;
    return network.Place(std::move(f), path);
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

TEST(VersionTrackerTest, StartsAtZeroAndBumps) {
  VersionTracker tracker;
  EXPECT_EQ(tracker.Current(FlowId{1}), 0u);
  EXPECT_EQ(tracker.Bump(FlowId{1}), 1u);
  EXPECT_EQ(tracker.Current(FlowId{1}), 1u);
  EXPECT_EQ(tracker.Bump(FlowId{1}), 2u);
  EXPECT_EQ(tracker.Current(FlowId{2}), 0u);  // independent flows
}

TEST(MigrationBridgeTest, RealizesPlanConsistently) {
  Fixture fx;
  // Blocker on the desired path forces one migration.
  const auto& blocker_paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(3));
  const FlowId blocker = fx.PlaceOn(blocker_paths[0], 60.0);
  const auto& desired = fx.provider.Paths(fx.ft.host(0), fx.ft.host(2))[0];

  const update::MigrationOptimizer optimizer(fx.provider);
  const update::MigrationPlan plan = optimizer.Plan(fx.network, 90.0, desired);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.moves.size(), 1u);

  VersionTracker versions;
  RuleTable rules;
  ApplyAll(rules, PlanForPlacement(blocker, fx.network.PathOf(blocker),
                                   versions));
  const auto schedule = PlanForMigration(fx.network, plan, versions);
  EXPECT_EQ(versions.Current(blocker), 1u);  // bumped by the reroute

  // Every prefix keeps the blocker's packets delivered on one whole path.
  const topo::Path old_path = fx.network.PathOf(blocker);
  const topo::Path& new_path =
      fx.network.path_registry().Get(plan.moves[0].new_path);
  for (std::size_t prefix = 0; prefix <= schedule.size(); ++prefix) {
    RuleTable step = rules;
    for (std::size_t i = 0; i < prefix; ++i) Apply(step, schedule[i]);
    const auto fwd = ForwardPacket(fx.ft.graph(), step, blocker,
                                   fx.ft.host(1), fx.ft.host(3));
    ASSERT_EQ(fwd.outcome, ForwardOutcome::kDelivered) << "prefix " << prefix;
    ASSERT_TRUE(fwd.hops == old_path.nodes || fwd.hops == new_path.nodes);
  }
}

TEST(MigrationBridgeTest, RuleOpCountMatchesSchedule) {
  Fixture fx;
  const auto& blocker_paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(3));
  fx.PlaceOn(blocker_paths[0], 60.0);
  const auto& desired = fx.provider.Paths(fx.ft.host(0), fx.ft.host(2))[0];
  const update::MigrationOptimizer optimizer(fx.provider);
  const update::MigrationPlan plan = optimizer.Plan(fx.network, 90.0, desired);
  ASSERT_TRUE(plan.feasible);

  VersionTracker versions;
  const auto schedule = PlanForMigration(fx.network, plan, versions);
  // RuleOpCount = migrations + placement (desired path hops + tag).
  const std::size_t expected =
      schedule.size() + desired.links.size() + 1;
  EXPECT_EQ(RuleOpCount(plan, fx.network, desired.links.size()), expected);
}

TEST(MigrationBridgeTest, EmptyPlanOnlyPlacesNewFlow) {
  Fixture fx;
  const auto& path = fx.provider.Paths(fx.ft.host(0), fx.ft.host(2))[0];
  update::MigrationPlan plan;
  plan.feasible = true;
  VersionTracker versions;
  EXPECT_TRUE(PlanForMigration(fx.network, plan, versions).empty());
  EXPECT_EQ(RuleOpCount(plan, fx.network, path.links.size()),
            path.links.size() + 1);
}

}  // namespace
}  // namespace nu::consistent
