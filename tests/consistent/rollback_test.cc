// Abort/rollback coverage for two-phase updates: a rule install that fails
// mid-schedule (before the ingress flip) must leave the table restorable to
// the exact pre-update state, and every intermediate rollback state must
// stay per-packet consistent.
#include <gtest/gtest.h>

#include "consistent/two_phase.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::consistent {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft) {}

  RuleTable WithInitialPath(FlowId flow, const topo::Path& path) {
    RuleTable rules;
    ApplyAll(rules, PlanInitialInstall(flow, path, 0));
    return rules;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
};

/// True when the table holds exactly the old path's version-0 rules for
/// `flow` and its ingress still stamps version 0 — i.e. the pre-update
/// state.
bool EqualsPreUpdateState(const RuleTable& rules, FlowId flow,
                          const topo::Path& old_path,
                          const topo::Path& new_path) {
  if (rules.RuleCountForFlow(flow) != old_path.links.size()) return false;
  if (rules.IngressVersion(flow) != 0) return false;
  for (std::size_t i = 0; i < old_path.links.size(); ++i) {
    const auto rule = rules.Lookup(old_path.nodes[i], flow, 0);
    if (!rule.has_value() || *rule != old_path.links[i]) return false;
  }
  // No stray v1 rules anywhere on the new path.
  for (std::size_t i = 0; i < new_path.links.size(); ++i) {
    if (rules.Lookup(new_path.nodes[i], flow, 1).has_value()) return false;
  }
  return true;
}

TEST(RollbackTest, CanRollbackOnlyBeforeTheFlip) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  ASSERT_GE(paths.size(), 2u);
  const auto schedule = PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);
  const std::size_t phase1 = paths[1].links.size();  // installs before flip

  for (std::size_t applied = 0; applied <= phase1; ++applied) {
    EXPECT_TRUE(CanRollback(schedule, applied)) << "applied " << applied;
  }
  for (std::size_t applied = phase1 + 1; applied <= schedule.size();
       ++applied) {
    EXPECT_FALSE(CanRollback(schedule, applied)) << "applied " << applied;
  }
}

TEST(RollbackTest, RestoresPreUpdateTableFromEveryPhase1Prefix) {
  // Simulate the install pipeline dying after each possible number of
  // phase-1 ops; rollback must reproduce the pre-update table exactly.
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];
  const auto schedule = PlanTwoPhaseReroute(flow, old_path, new_path, 0);
  const std::size_t phase1 = new_path.links.size();

  for (std::size_t applied = 0; applied <= phase1; ++applied) {
    RuleTable rules = fx.WithInitialPath(flow, old_path);
    for (std::size_t i = 0; i < applied; ++i) Apply(rules, schedule[i]);

    const auto undo = PlanRollback(schedule, applied);
    EXPECT_EQ(undo.size(), applied);
    ApplyAll(rules, undo);

    EXPECT_TRUE(EqualsPreUpdateState(rules, flow, old_path, new_path))
        << "rollback from prefix " << applied;
    const auto fwd = ForwardPacket(fx.ft.graph(), rules, flow,
                                   old_path.source(), old_path.destination());
    EXPECT_EQ(fwd.outcome, ForwardOutcome::kDelivered);
    EXPECT_EQ(fwd.hops, old_path.nodes);
  }
}

TEST(RollbackTest, EveryIntermediateRollbackStateIsConsistent) {
  // Per-packet consistency must hold not just after the rollback finishes
  // but after every individual undo op — packets keep flowing while the
  // controller unwinds.
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];
  const auto schedule = PlanTwoPhaseReroute(flow, old_path, new_path, 0);
  const std::size_t phase1 = new_path.links.size();

  RuleTable rules = fx.WithInitialPath(flow, old_path);
  for (std::size_t i = 0; i < phase1; ++i) Apply(rules, schedule[i]);

  const auto undo = PlanRollback(schedule, phase1);
  for (const RuleOp& op : undo) {
    Apply(rules, op);
    const auto fwd = ForwardPacket(fx.ft.graph(), rules, flow,
                                   old_path.source(), old_path.destination());
    ASSERT_EQ(fwd.outcome, ForwardOutcome::kDelivered);
    ASSERT_EQ(fwd.hops, old_path.nodes) << "rollback strayed off old path";
  }
}

TEST(RollbackTest, RollbackOpsAreReverseOrderRemoves) {
  Fixture fx;
  const FlowId flow{2};
  const auto& paths = fx.provider.Paths(fx.ft.host(1), fx.ft.host(13));
  const auto schedule = PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);
  const std::size_t applied = paths[1].links.size();

  const auto undo = PlanRollback(schedule, applied);
  ASSERT_EQ(undo.size(), applied);
  for (std::size_t i = 0; i < undo.size(); ++i) {
    EXPECT_EQ(undo[i].kind, RuleOpKind::kRemove);
    // Reverse application order: undo[i] undoes schedule[applied - 1 - i].
    const RuleOp& original = schedule[applied - 1 - i];
    EXPECT_EQ(undo[i].sw, original.sw);
    EXPECT_EQ(undo[i].version, original.version);
  }
}

}  // namespace
}  // namespace nu::consistent
