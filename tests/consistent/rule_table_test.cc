#include "consistent/rule_table.h"

#include <gtest/gtest.h>

#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::consistent {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft) {}

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
};

TEST(RuleTableTest, InstallLookupRemove) {
  Fixture fx;
  RuleTable rules;
  const FlowId flow{1};
  const NodeId sw = fx.ft.edge(0, 0);
  const LinkId out = fx.ft.graph().OutLinks(sw)[0];
  EXPECT_FALSE(rules.Lookup(sw, flow, 0).has_value());
  rules.Install(sw, flow, 0, out);
  ASSERT_TRUE(rules.Lookup(sw, flow, 0).has_value());
  EXPECT_EQ(*rules.Lookup(sw, flow, 0), out);
  // Different version is a different rule.
  EXPECT_FALSE(rules.Lookup(sw, flow, 1).has_value());
  rules.Remove(sw, flow, 0);
  EXPECT_FALSE(rules.Lookup(sw, flow, 0).has_value());
  EXPECT_EQ(rules.RuleCount(), 0u);
}

TEST(RuleTableTest, RuleCountsPerFlow) {
  Fixture fx;
  RuleTable rules;
  const NodeId sw = fx.ft.edge(0, 0);
  const LinkId out = fx.ft.graph().OutLinks(sw)[0];
  rules.Install(sw, FlowId{1}, 0, out);
  rules.Install(sw, FlowId{1}, 1, out);
  rules.Install(sw, FlowId{2}, 0, out);
  EXPECT_EQ(rules.RuleCount(), 3u);
  EXPECT_EQ(rules.RuleCountForFlow(FlowId{1}), 2u);
  EXPECT_EQ(rules.RuleCountForFlow(FlowId{2}), 1u);
}

TEST(RuleTableTest, IngressVersion) {
  RuleTable rules;
  rules.SetIngressVersion(FlowId{5}, 3);
  EXPECT_EQ(rules.IngressVersion(FlowId{5}), 3u);
  rules.SetIngressVersion(FlowId{5}, 4);
  EXPECT_EQ(rules.IngressVersion(FlowId{5}), 4u);
}

TEST(RuleTableDeathTest, UnknownIngressDies) {
  RuleTable rules;
  EXPECT_DEATH((void)rules.IngressVersion(FlowId{9}), "Precondition");
}

TEST(ForwardPacketTest, DeliversAlongInstalledPath) {
  Fixture fx;
  RuleTable rules;
  const FlowId flow{1};
  const auto& path = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12))[0];
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    rules.Install(path.nodes[i], flow, 0, path.links[i]);
  }
  rules.SetIngressVersion(flow, 0);
  const ForwardResult result = ForwardPacket(
      fx.ft.graph(), rules, flow, path.source(), path.destination());
  EXPECT_EQ(result.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(result.hops, path.nodes);
  EXPECT_EQ(result.version, 0u);
}

TEST(ForwardPacketTest, DropsWithoutRules) {
  Fixture fx;
  RuleTable rules;
  rules.SetIngressVersion(FlowId{1}, 0);
  const ForwardResult result = ForwardPacket(fx.ft.graph(), rules, FlowId{1},
                                             fx.ft.host(0), fx.ft.host(12));
  EXPECT_EQ(result.outcome, ForwardOutcome::kDropped);
  EXPECT_EQ(result.hops.size(), 1u);
}

TEST(ForwardPacketTest, DetectsLoop) {
  Fixture fx;
  RuleTable rules;
  const FlowId flow{1};
  // edge(0,0) -> agg(0,0) -> edge(0,0): a 2-node loop.
  const NodeId e = fx.ft.edge(0, 0);
  const NodeId a = fx.ft.agg(0, 0);
  rules.Install(e, flow, 0, fx.ft.graph().FindLink(e, a));
  rules.Install(a, flow, 0, fx.ft.graph().FindLink(a, e));
  // Start at the host attached to e.
  rules.Install(fx.ft.host(0), flow, 0,
                fx.ft.graph().FindLink(fx.ft.host(0), e));
  rules.SetIngressVersion(flow, 0);
  const ForwardResult result = ForwardPacket(fx.ft.graph(), rules, flow,
                                             fx.ft.host(0), fx.ft.host(12));
  EXPECT_EQ(result.outcome, ForwardOutcome::kLooped);
}

TEST(ForwardPacketTest, VersionSelectsPath) {
  Fixture fx;
  RuleTable rules;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 0; i < paths[0].links.size(); ++i) {
    rules.Install(paths[0].nodes[i], flow, 0, paths[0].links[i]);
  }
  for (std::size_t i = 0; i < paths[1].links.size(); ++i) {
    rules.Install(paths[1].nodes[i], flow, 1, paths[1].links[i]);
  }
  rules.SetIngressVersion(flow, 0);
  EXPECT_EQ(ForwardPacket(fx.ft.graph(), rules, flow, fx.ft.host(0),
                          fx.ft.host(12))
                .hops,
            paths[0].nodes);
  rules.SetIngressVersion(flow, 1);
  EXPECT_EQ(ForwardPacket(fx.ft.graph(), rules, flow, fx.ft.host(0),
                          fx.ft.host(12))
                .hops,
            paths[1].nodes);
}

}  // namespace
}  // namespace nu::consistent
