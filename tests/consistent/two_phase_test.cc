#include "consistent/two_phase.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::consistent {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft) {}

  /// Installs a flow's initial path (version 0) and returns the table.
  RuleTable WithInitialPath(FlowId flow, const topo::Path& path) {
    RuleTable rules;
    ApplyAll(rules, PlanInitialInstall(flow, path, 0));
    return rules;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
};

/// True when `hops` equals exactly one of the two paths' node sequences.
bool OnExactlyOnePath(const std::vector<NodeId>& hops, const topo::Path& a,
                      const topo::Path& b) {
  return hops == a.nodes || hops == b.nodes;
}

TEST(InitialInstallTest, DeliversImmediately) {
  Fixture fx;
  const FlowId flow{1};
  const auto& path = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12))[0];
  RuleTable rules = fx.WithInitialPath(flow, path);
  const auto result = ForwardPacket(fx.ft.graph(), rules, flow, path.source(),
                                    path.destination());
  EXPECT_EQ(result.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(rules.RuleCountForFlow(flow), path.links.size());
}

TEST(TwoPhaseTest, EveryPrefixIsPerPacketConsistent) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  ASSERT_GE(paths.size(), 2u);
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];

  const auto schedule = PlanTwoPhaseReroute(flow, old_path, new_path, 0);
  for (std::size_t prefix = 0; prefix <= schedule.size(); ++prefix) {
    RuleTable rules = fx.WithInitialPath(flow, old_path);
    for (std::size_t i = 0; i < prefix; ++i) Apply(rules, schedule[i]);
    const auto result = ForwardPacket(fx.ft.graph(), rules, flow,
                                      old_path.source(),
                                      old_path.destination());
    EXPECT_EQ(result.outcome, ForwardOutcome::kDelivered)
        << "prefix " << prefix;
    EXPECT_TRUE(OnExactlyOnePath(result.hops, old_path, new_path))
        << "prefix " << prefix << " mixed paths";
  }
}

TEST(TwoPhaseTest, FinalStateUsesNewPathOnly) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];
  RuleTable rules = fx.WithInitialPath(flow, old_path);
  ApplyAll(rules, PlanTwoPhaseReroute(flow, old_path, new_path, 0));
  const auto result = ForwardPacket(fx.ft.graph(), rules, flow,
                                    new_path.source(), new_path.destination());
  EXPECT_EQ(result.hops, new_path.nodes);
  // Old rules garbage-collected: rule count equals the new path's rules.
  EXPECT_EQ(rules.RuleCountForFlow(flow), new_path.links.size());
}

TEST(TwoPhaseTest, OpCountMatchesFormula) {
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const auto schedule = PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);
  EXPECT_EQ(schedule.size(),
            paths[1].links.size() + 1 + paths[0].links.size());
}

TEST(TwoPhaseTest, PeakRuleOccupancyIsBothPaths) {
  // Transient TCAM cost of consistency: right after the flip, both
  // versions' rules coexist.
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  RuleTable rules = fx.WithInitialPath(flow, paths[0]);
  const auto schedule = PlanTwoPhaseReroute(flow, paths[0], paths[1], 0);
  std::size_t peak = rules.RuleCountForFlow(flow);
  for (const RuleOp& op : schedule) {
    Apply(rules, op);
    peak = std::max(peak, rules.RuleCountForFlow(flow));
  }
  EXPECT_EQ(peak, paths[0].links.size() + paths[1].links.size());
}

TEST(DirectRerouteTest, SomePrefixViolatesConsistency) {
  // The naive in-place update must exhibit at least one intermediate state
  // where the packet drops, loops, or takes a mixed path — the anomaly
  // two-phase update exists to prevent.
  Fixture fx;
  const FlowId flow{1};
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];

  const auto schedule = PlanDirectReroute(flow, old_path, new_path, 0);
  bool violated = false;
  for (std::size_t prefix = 0; prefix <= schedule.size(); ++prefix) {
    RuleTable rules = fx.WithInitialPath(flow, old_path);
    for (std::size_t i = 0; i < prefix; ++i) Apply(rules, schedule[i]);
    const auto result = ForwardPacket(fx.ft.graph(), rules, flow,
                                      old_path.source(),
                                      old_path.destination());
    if (result.outcome != ForwardOutcome::kDelivered ||
        !OnExactlyOnePath(result.hops, old_path, new_path)) {
      violated = true;
      break;
    }
  }
  EXPECT_TRUE(violated)
      << "naive reroute happened to be consistent on this pair — pick "
         "diverging paths";
}

TEST(TwoPhasePropertyTest, ConsistentOnRandomPathPairs) {
  Fixture fx;
  Rng rng(314);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId src = fx.ft.host(rng.Index(fx.ft.host_count()));
    NodeId dst = fx.ft.host(rng.Index(fx.ft.host_count()));
    if (src == dst) continue;
    const auto& paths = fx.provider.Paths(src, dst);
    if (paths.size() < 2) continue;
    const topo::Path& a = paths[rng.Index(paths.size())];
    const topo::Path& b = paths[rng.Index(paths.size())];
    if (a == b) continue;
    const FlowId flow{static_cast<FlowId::rep_type>(trial)};
    const auto schedule = PlanTwoPhaseReroute(flow, a, b, 7);
    for (std::size_t prefix = 0; prefix <= schedule.size(); ++prefix) {
      RuleTable rules;
      ApplyAll(rules, PlanInitialInstall(flow, a, 7));
      for (std::size_t i = 0; i < prefix; ++i) Apply(rules, schedule[i]);
      const auto result = ForwardPacket(fx.ft.graph(), rules, flow, src, dst);
      ASSERT_EQ(result.outcome, ForwardOutcome::kDelivered);
      ASSERT_TRUE(OnExactlyOnePath(result.hops, a, b));
    }
  }
}

TEST(ScheduleDurationTest, LinearInOps) {
  Fixture fx;
  const auto& paths = fx.provider.Paths(fx.ft.host(0), fx.ft.host(12));
  const auto schedule = PlanTwoPhaseReroute(FlowId{1}, paths[0], paths[1], 0);
  EXPECT_DOUBLE_EQ(ScheduleDuration(schedule, 0.002),
                   0.002 * static_cast<double>(schedule.size()));
  EXPECT_DOUBLE_EQ(ScheduleDuration({}, 1.0), 0.0);
}

}  // namespace
}  // namespace nu::consistent
