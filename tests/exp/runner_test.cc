#include "exp/runner.h"

#include <gtest/gtest.h>

namespace nu::exp {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.4;
  config.event_count = 4;
  config.min_flows_per_event = 2;
  config.max_flows_per_event = 6;
  config.seed = 7;
  config.sim.cost_model.plan_time_per_flow = 0.001;
  return config;
}

TEST(RunnerTest, RunSchedulerProducesCompleteResult) {
  const Workload w(SmallConfig());
  const sim::SimResult result = RunScheduler(w, sched::SchedulerKind::kFifo);
  EXPECT_EQ(result.records.size(), 4u);
  EXPECT_GT(result.report.avg_ect, 0.0);
  EXPECT_GE(result.report.tail_ect, result.report.avg_ect);
}

TEST(RunnerTest, FlowLevelBaselineRuns) {
  const Workload w(SmallConfig());
  const sim::SimResult result = RunFlowLevel(w);
  EXPECT_EQ(result.records.size(), 4u);
  EXPECT_GT(result.report.avg_ect, 0.0);
}

TEST(MeanReportTest, AveragesFields) {
  metrics::Report a, b;
  a.avg_ect = 2.0;
  a.tail_ect = 4.0;
  a.total_cost = 10.0;
  b.avg_ect = 4.0;
  b.tail_ect = 8.0;
  b.total_cost = 30.0;
  const std::vector<metrics::Report> reports{a, b};
  const metrics::Report mean = MeanReport(reports);
  EXPECT_DOUBLE_EQ(mean.avg_ect, 3.0);
  EXPECT_DOUBLE_EQ(mean.tail_ect, 6.0);
  EXPECT_DOUBLE_EQ(mean.total_cost, 20.0);
}

TEST(CompareSchedulersTest, ProducesAllRequestedEntries) {
  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};
  const ComparisonResult result =
      CompareSchedulers(SmallConfig(), kinds, /*include_flow_level=*/true,
                        /*trials=*/2);
  EXPECT_EQ(result.mean_by_name.size(), 4u);
  EXPECT_TRUE(result.mean_by_name.contains("fifo"));
  EXPECT_TRUE(result.mean_by_name.contains("lmtf"));
  EXPECT_TRUE(result.mean_by_name.contains("p-lmtf"));
  EXPECT_TRUE(result.mean_by_name.contains(kFlowLevelName));
  for (const auto& [name, trials] : result.trials_by_name) {
    EXPECT_EQ(trials.size(), 2u) << name;
  }
}

TEST(CompareSchedulersTest, DeterministicAcrossCalls) {
  const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kFifo};
  const auto a = CompareSchedulers(SmallConfig(), kinds, false, 1);
  const auto b = CompareSchedulers(SmallConfig(), kinds, false, 1);
  EXPECT_DOUBLE_EQ(a.mean_by_name.at("fifo").avg_ect,
                   b.mean_by_name.at("fifo").avg_ect);
}

}  // namespace
}  // namespace nu::exp
