#include "exp/runner.h"

#include <gtest/gtest.h>

namespace nu::exp {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.4;
  config.event_count = 5;
  config.min_flows_per_event = 3;
  config.max_flows_per_event = 10;
  config.seed = 123;
  return config;
}

TEST(WorkloadTest, BuildsConfiguredPieces) {
  const Workload w(SmallConfig());
  EXPECT_EQ(w.fat_tree().k(), 4u);
  EXPECT_EQ(w.events().size(), 5u);
  EXPECT_GE(w.background().achieved_utilization, 0.4);
  EXPECT_TRUE(w.network().CheckInvariants());
  for (const auto& e : w.events()) {
    EXPECT_GE(e.flow_count(), 3u);
    EXPECT_LE(e.flow_count(), 10u);
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  const Workload a(SmallConfig());
  const Workload b(SmallConfig());
  EXPECT_EQ(a.background().placed_flows, b.background().placed_flows);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].flow_count(), b.events()[i].flow_count());
    EXPECT_DOUBLE_EQ(a.events()[i].TotalDemand(),
                     b.events()[i].TotalDemand());
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  ExperimentConfig c1 = SmallConfig();
  ExperimentConfig c2 = SmallConfig();
  c2.seed = 456;
  const Workload a(c1);
  const Workload b(c2);
  // Background placement counts almost surely differ.
  EXPECT_NE(a.events()[0].TotalDemand(), b.events()[0].TotalDemand());
}

TEST(WorkloadTest, TraceFamiliesAllBuild) {
  for (const TraceFamily family :
       {TraceFamily::kYahooLike, TraceFamily::kBenson, TraceFamily::kUniform}) {
    ExperimentConfig config = SmallConfig();
    config.background_trace = family;
    const Workload w(config);
    EXPECT_GT(w.background().placed_flows, 0u) << ToString(family);
  }
}

TEST(WorkloadTest, LeafSpineTopologyBuilds) {
  ExperimentConfig config = SmallConfig();
  config.topology = TopologyKind::kLeafSpine;
  config.leaf_spine_leaves = 4;
  config.leaf_spine_spines = 2;
  config.leaf_spine_hosts_per_leaf = 4;
  const Workload w(config);
  EXPECT_EQ(w.leaf_spine().hosts().size(), 16u);
  EXPECT_EQ(w.hosts().size(), 16u);
  EXPECT_GT(w.background().placed_flows, 0u);
  EXPECT_EQ(w.events().size(), config.event_count);
  EXPECT_TRUE(w.network().CheckInvariants());
}

TEST(WorkloadDeathTest, WrongTopologyAccessorDies) {
  const Workload w(SmallConfig());  // fat-tree
  EXPECT_DEATH((void)w.leaf_spine(), "Precondition");
}

TEST(WorkloadTest, LeafSpineSchedulersRun) {
  ExperimentConfig config = SmallConfig();
  config.topology = TopologyKind::kLeafSpine;
  config.leaf_spine_leaves = 4;
  config.leaf_spine_spines = 2;
  config.leaf_spine_hosts_per_leaf = 4;
  const Workload w(config);
  const sim::SimResult result = RunScheduler(w, sched::SchedulerKind::kPlmtf);
  EXPECT_EQ(result.records.size(), config.event_count);
}

TEST(ConfigTest, ToStringCoversEnums) {
  EXPECT_STREQ(ToString(TopologyKind::kFatTree), "fat-tree");
  EXPECT_STREQ(ToString(TopologyKind::kLeafSpine), "leaf-spine");
  EXPECT_STREQ(ToString(TraceFamily::kYahooLike), "yahoo-like");
  EXPECT_STREQ(ToString(TraceFamily::kBenson), "benson");
  EXPECT_STREQ(ToString(TraceFamily::kUniform), "uniform");
}

TEST(MakeTrafficGeneratorTest, NamesMatch) {
  const Workload w(SmallConfig());
  Rng rng(1);
  EXPECT_STREQ(MakeTrafficGenerator(TraceFamily::kYahooLike,
                                    w.hosts(), rng)
                   ->name(),
               "yahoo-like");
  EXPECT_STREQ(
      MakeTrafficGenerator(TraceFamily::kBenson, w.hosts(), rng)
          ->name(),
      "benson");
  EXPECT_STREQ(
      MakeTrafficGenerator(TraceFamily::kUniform, w.hosts(), rng)
          ->name(),
      "uniform");
}

}  // namespace
}  // namespace nu::exp
