// Chaos campaigns: deterministic scenario generation, byte-identical
// replays across all three schedulers, ddmin shrinking of an injected bug
// down to a handful of fault events, and exact round-trips of the repro
// artifact format.
#include <gtest/gtest.h>

#include <array>

#include "exp/chaos.h"

namespace nu::exp {
namespace {

ChaosOptions QuickOptions() {
  ChaosOptions options;
  options.seed = 11;
  options.trials = 3;
  options.fat_tree_k = 4;
  options.event_count = 4;
  options.check_determinism = false;  // individual tests opt back in
  options.max_shrink_runs = 24;
  return options;
}

TEST(ChaosTest, TrialScenariosAreDeterministic) {
  const ChaosOptions options = QuickOptions();
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const ChaosScenario a = MakeTrialScenario(options, trial);
    const ChaosScenario b = MakeTrialScenario(options, trial);
    EXPECT_EQ(a, b) << "trial " << trial;
    EXPECT_EQ(SerializeArtifact(a), SerializeArtifact(b));
  }
  // Distinct trials draw distinct seeds (scenario generation actually
  // advances with the trial index).
  EXPECT_NE(MakeTrialScenario(options, 0).seed,
            MakeTrialScenario(options, 1).seed);
}

TEST(ChaosTest, ScenarioRunsAreByteIdenticalForEveryScheduler) {
  const std::array<sched::SchedulerKind, 3> kinds = {
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};
  ChaosScenario scenario = MakeTrialScenario(QuickOptions(), 1);
  for (sched::SchedulerKind kind : kinds) {
    scenario.scheduler = kind;
    const std::string first = NormalizedReportCsv(RunScenario(scenario));
    const std::string second = NormalizedReportCsv(RunScenario(scenario));
    EXPECT_EQ(first, second)
        << "nondeterministic under " << sched::ToString(kind);
  }
}

TEST(ChaosTest, CleanCampaignReportsNoFailures) {
  ChaosOptions options = QuickOptions();
  options.check_determinism = true;
  const ChaosCampaignResult result = RunChaosCampaign(options);
  EXPECT_EQ(result.trials_run, options.trials);
  EXPECT_TRUE(result.failures.empty());
}

TEST(ChaosTest, InjectedBugShrinksToAHandfulOfFaultEvents) {
  ChaosOptions options = QuickOptions();
  options.trials = 6;
  options.inject_bug = true;
  const ChaosCampaignResult result = RunChaosCampaign(options);
  ASSERT_FALSE(result.failures.empty());
  for (const ChaosFailure& failure : result.failures) {
    EXPECT_EQ(failure.verdict.oracle, "injected-bug");
    EXPECT_LE(failure.scenario.plan.size(), 3u)
        << "trial " << failure.trial << " did not shrink: "
        << failure.scenario.plan.DebugString();
    EXPECT_LE(failure.shrink_runs, options.max_shrink_runs);
    // The artifact is the minimized scenario, verbatim.
    EXPECT_EQ(failure.artifact, SerializeArtifact(failure.scenario));
    // Replaying the artifact reproduces the same verdict.
    const ChaosScenario replayed = ParseArtifact(failure.artifact);
    EXPECT_EQ(replayed, failure.scenario);
    const ChaosVerdict verdict = JudgeScenario(replayed, options);
    EXPECT_TRUE(verdict.failed);
    EXPECT_EQ(verdict.oracle, failure.verdict.oracle);
  }
}

TEST(ChaosTest, ShrinkKeepsTheFailingOracle) {
  ChaosOptions options = QuickOptions();
  options.inject_bug = true;
  // Find a failing trial first.
  std::size_t failing_trial = options.trials;
  for (std::size_t trial = 0; trial < 6; ++trial) {
    const ChaosScenario scenario = MakeTrialScenario(options, trial);
    if (JudgeScenario(scenario, options).failed) {
      failing_trial = trial;
      break;
    }
  }
  ASSERT_LT(failing_trial, 6u) << "no trial tripped the injected bug";
  const ChaosScenario failing = MakeTrialScenario(options, failing_trial);
  std::size_t runs = 0;
  const ChaosScenario shrunk = ShrinkScenario(failing, options, &runs);
  EXPECT_GT(runs, 0u);
  EXPECT_LE(shrunk.plan.size(), failing.plan.size());
  EXPECT_LE(shrunk.event_count, failing.event_count);
  const ChaosVerdict verdict = JudgeScenario(shrunk, options);
  EXPECT_TRUE(verdict.failed);
  EXPECT_EQ(verdict.oracle, "injected-bug");
}

TEST(ChaosTest, ArtifactRoundTripsExactly) {
  for (std::size_t trial = 0; trial < 3; ++trial) {
    const ChaosScenario scenario = MakeTrialScenario(QuickOptions(), trial);
    const std::string text = SerializeArtifact(scenario);
    const ChaosScenario parsed = ParseArtifact(text);
    EXPECT_EQ(parsed, scenario) << "trial " << trial;
    // Fixed point: serialize(parse(text)) == text.
    EXPECT_EQ(SerializeArtifact(parsed), text);
  }
}

TEST(ChaosTest, GreyScenariosRoundTripAndRunConverged) {
  // Pinning --grey= forces the model onto every trial; the artifact must
  // carry it and replay it, and the drift-convergence oracle must hold.
  ChaosOptions options = QuickOptions();
  options.grey = fault::ParseGreyModel("acklie:0.2+loss:0.1:0.5:2");
  const ChaosScenario scenario = MakeTrialScenario(options, 0);
  EXPECT_EQ(fault::FormatGreyModel(scenario.grey),
            fault::FormatGreyModel(options.grey));

  const std::string text = SerializeArtifact(scenario);
  EXPECT_NE(text.find("\ngrey acklie:0.2+loss:0.1:0.5:2\n"),
            std::string::npos);
  const ChaosScenario parsed = ParseArtifact(text);
  EXPECT_EQ(parsed, scenario);
  EXPECT_EQ(SerializeArtifact(parsed), text);

  const sim::SimResult run = RunScenario(scenario);
  EXPECT_GT(run.report.drift_checks, 0u);
  EXPECT_LE(run.report.drift_residual_rules, run.report.drift_rules_abandoned);
  const ChaosVerdict verdict = JudgeScenario(scenario, options);
  EXPECT_FALSE(verdict.failed) << verdict.oracle << ": " << verdict.detail;
}

TEST(ChaosTest, GreylessArtifactsOmitTheGreyLine) {
  // Old artifacts predate the grey key; scenarios without a model must
  // serialize to exactly the old bytes.
  ChaosOptions options = QuickOptions();
  options.seed = 17;  // a seed whose trial 0 draws no grey model
  ChaosScenario scenario = MakeTrialScenario(options, 0);
  scenario.grey = fault::GreyFailureModel{};
  const std::string text = SerializeArtifact(scenario);
  EXPECT_EQ(text.find("\ngrey "), std::string::npos);
  EXPECT_EQ(ParseArtifact(text), scenario);
}

TEST(ChaosTest, ParseArtifactRejectsMalformedInput) {
  const ChaosScenario scenario = MakeTrialScenario(QuickOptions(), 0);
  const std::string good = SerializeArtifact(scenario);
  EXPECT_THROW((void)ParseArtifact(""), ChaosError);
  EXPECT_THROW((void)ParseArtifact("netupdate-chaos-repro v2\n"), ChaosError);
  EXPECT_THROW((void)ParseArtifact("netupdate-chaos-repro v1\nseed x\n"),
               ChaosError);
  EXPECT_THROW(
      (void)ParseArtifact("netupdate-chaos-repro v1\nscheduler warp\n"),
      ChaosError);
  // Truncation anywhere — header-only, or mid-plan — is rejected.
  EXPECT_THROW((void)ParseArtifact("netupdate-chaos-repro v1\n"), ChaosError);
  const std::string truncated = good.substr(0, good.rfind("plan") + 5);
  EXPECT_THROW((void)ParseArtifact(truncated), ChaosError);
  // So is trailing garbage after the embedded plan.
  EXPECT_THROW((void)ParseArtifact(good + "trailing garbage\n"), ChaosError);
  // A grey model that fails to parse or validate is rejected up front.
  const std::string::size_type header_end = good.find('\n') + 1;
  const std::string bad_grey =
      good.substr(0, header_end) + "grey warp:1\n" + good.substr(header_end);
  EXPECT_THROW((void)ParseArtifact(bad_grey), ChaosError);
  const std::string invalid_grey =
      good.substr(0, header_end) + "grey acklie:1.5\n" + good.substr(header_end);
  EXPECT_THROW((void)ParseArtifact(invalid_grey), ChaosError);
}

TEST(ChaosTest, CampaignIsAPureFunctionOfItsOptions) {
  ChaosOptions options = QuickOptions();
  options.inject_bug = true;
  options.trials = 4;
  const ChaosCampaignResult a = RunChaosCampaign(options);
  const ChaosCampaignResult b = RunChaosCampaign(options);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].trial, b.failures[i].trial);
    EXPECT_EQ(a.failures[i].artifact, b.failures[i].artifact);
    EXPECT_EQ(a.failures[i].shrink_runs, b.failures[i].shrink_runs);
  }
}

}  // namespace
}  // namespace nu::exp
