// Token-bucket admission budgets: lazy refill in virtual time, burst caps,
// weight scaling, tenant isolation, and snapshot round-tripping.
#include "guard/tenant_budget.h"

#include <gtest/gtest.h>

namespace nu::guard {
namespace {

TEST(TokenBucketTest, BurstThenRefill) {
  TokenBucket bucket(/*rate=*/1.0, /*burst=*/2.0);
  // Starts full: the burst drains, then the empty bucket rejects.
  EXPECT_TRUE(bucket.TryTake(0.0));
  EXPECT_TRUE(bucket.TryTake(0.0));
  EXPECT_FALSE(bucket.TryTake(0.0));
  // 1 token/s refill: at t=0.5 still short, at t=1.0 one token is back.
  EXPECT_FALSE(bucket.TryTake(0.5));
  EXPECT_TRUE(bucket.TryTake(1.5));
  EXPECT_FALSE(bucket.TryTake(1.5));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate=*/10.0, /*burst=*/3.0);
  // A long idle period must not bank more than `burst` tokens.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(100.0), 3.0);
  EXPECT_TRUE(bucket.TryTake(100.0));
  EXPECT_TRUE(bucket.TryTake(100.0));
  EXPECT_TRUE(bucket.TryTake(100.0));
  EXPECT_FALSE(bucket.TryTake(100.0));
}

TEST(TokenBucketTest, UnderRateTrafficIsNeverThrottled) {
  TokenBucket bucket(/*rate=*/2.0, /*burst=*/1.0);
  // One event per second against a 2/s budget: always admitted.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(bucket.TryTake(static_cast<Seconds>(i))) << "t=" << i;
  }
}

TEST(TokenBucketTest, SaveLoadRoundTrip) {
  TokenBucket bucket(/*rate=*/1.5, /*burst=*/4.0);
  ASSERT_TRUE(bucket.TryTake(2.0));
  ASSERT_TRUE(bucket.TryTake(2.0));

  BinWriter w;
  bucket.SaveState(w);
  TokenBucket restored(1.5, 4.0);
  BinReader r(w.buffer());
  restored.LoadState(r);

  EXPECT_DOUBLE_EQ(restored.TokensAt(2.0), bucket.TokensAt(2.0));
  EXPECT_DOUBLE_EQ(restored.TokensAt(3.0), bucket.TokensAt(3.0));
}

TenantBudgetConfig EnabledConfig() {
  TenantBudgetConfig config;
  config.enabled = true;
  config.default_rate = 1.0;
  config.default_burst = 2.0;
  return config;
}

TEST(TenantBudgetsTest, DisabledAdmitsEverything) {
  TenantBudgets budgets(TenantBudgetConfig{}, {1.0, 1.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(budgets.Admit(TenantId{0}, 0.0));
  }
}

TEST(TenantBudgetsTest, UntaggedAndOutOfRosterAdmit) {
  TenantBudgets budgets(EnabledConfig(), {1.0});
  EXPECT_TRUE(budgets.Admit(TenantId{}, 0.0));    // untagged (offline event)
  EXPECT_TRUE(budgets.Admit(TenantId{7}, 0.0));   // out of roster
}

TEST(TenantBudgetsTest, WeightsScaleRateAndBurst) {
  // weight 2.0 => 2x refill rate and 2x burst capacity.
  TenantBudgets budgets(EnabledConfig(), {1.0, 2.0});
  EXPECT_DOUBLE_EQ(budgets.bucket(TenantId{0}).rate(), 1.0);
  EXPECT_DOUBLE_EQ(budgets.bucket(TenantId{0}).burst(), 2.0);
  EXPECT_DOUBLE_EQ(budgets.bucket(TenantId{1}).rate(), 2.0);
  EXPECT_DOUBLE_EQ(budgets.bucket(TenantId{1}).burst(), 4.0);
}

TEST(TenantBudgetsTest, OneTenantBlastingDoesNotStarveTheOther) {
  TenantBudgets budgets(EnabledConfig(), {1.0, 1.0});
  // Tenant 0 blasts at t=0 until rejected; tenant 1's bucket is untouched.
  int admitted = 0;
  while (budgets.Admit(TenantId{0}, 0.0)) ++admitted;
  EXPECT_EQ(admitted, 2);  // its burst
  EXPECT_TRUE(budgets.Admit(TenantId{1}, 0.0));
  EXPECT_TRUE(budgets.Admit(TenantId{1}, 0.0));
  EXPECT_FALSE(budgets.Admit(TenantId{1}, 0.0));
}

TEST(TenantBudgetsTest, SaveLoadRoundTrip) {
  TenantBudgets budgets(EnabledConfig(), {1.0, 3.0});
  ASSERT_TRUE(budgets.Admit(TenantId{0}, 1.0));
  ASSERT_TRUE(budgets.Admit(TenantId{1}, 1.0));

  BinWriter w;
  budgets.SaveState(w);
  TenantBudgets restored(EnabledConfig(), {1.0, 3.0});
  BinReader r(w.buffer());
  restored.LoadState(r);

  ASSERT_EQ(restored.tenant_count(), 2u);
  EXPECT_DOUBLE_EQ(restored.bucket(TenantId{0}).TokensAt(1.0),
                   budgets.bucket(TenantId{0}).TokensAt(1.0));
  EXPECT_DOUBLE_EQ(restored.bucket(TenantId{1}).TokensAt(1.0),
                   budgets.bucket(TenantId{1}).TokensAt(1.0));
}

}  // namespace
}  // namespace nu::guard
