// Runtime invariant auditor: clean states pass, deliberately corrupted
// states (overcommitted links, blackholed paths, broken event conservation)
// are detected — throwing in fail-fast mode, counting in log-and-count mode.
#include "guard/auditor.h"

#include <gtest/gtest.h>

#include <array>
#include <optional>

namespace nu::guard {
namespace {

struct Fixture {
  Fixture() {
    a = graph.AddNode(topo::NodeRole::kHost);
    b = graph.AddNode(topo::NodeRole::kHost);
    graph.AddBidirectional(a, b, 100.0);
    network.emplace(graph);
  }

  [[nodiscard]] topo::Path AbPath() const {
    const std::array<NodeId, 2> seq{a, b};
    return graph.MakePath(seq);
  }

  [[nodiscard]] flow::Flow MakeFlow(Mbps demand) const {
    flow::Flow f;
    f.src = a;
    f.dst = b;
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  topo::Graph graph;
  NodeId a, b;
  std::optional<net::Network> network;
};

AuditorConfig Mode(AuditMode mode) {
  AuditorConfig config;
  config.enabled = true;
  config.mode = mode;
  return config;
}

/// Accounting where every arrived event sits in a legal bucket.
QueueAccounting Balanced() {
  QueueAccounting acct;
  acct.arrived = 3;
  acct.queued = 1;
  acct.completed = 1;
  acct.shed = 1;
  return acct;
}

TEST(AuditorTest, CleanStatePassesBothModes) {
  Fixture fx;
  fx.network->Place(fx.MakeFlow(60.0), fx.AbPath());
  for (const auto mode : {AuditMode::kLogAndCount, AuditMode::kFailFast}) {
    Auditor auditor(Mode(mode));
    EXPECT_EQ(auditor.Audit(*fx.network, Balanced()), 0u);
    EXPECT_EQ(auditor.audits_run(), 1u);
    EXPECT_TRUE(auditor.violations().empty());
  }
}

TEST(AuditorTest, FailFastThrowsOnOvercommittedLink) {
  // Deliberate corruption: force-place past capacity without the simulator
  // reporting a forced placement — the auditor must fire.
  Fixture fx;
  fx.network->ForcePlace(fx.MakeFlow(150.0), fx.AbPath());
  Auditor auditor(Mode(AuditMode::kFailFast));
  try {
    (void)auditor.Audit(*fx.network, Balanced());
    FAIL() << "expected AuditFailure";
  } catch (const AuditFailure& failure) {
    EXPECT_EQ(failure.violation().invariant, "capacity");
    EXPECT_NE(std::string(failure.what()).find("capacity"),
              std::string::npos);
  }
}

TEST(AuditorTest, LogAndCountSurvivesOvercommittedLink) {
  Fixture fx;
  fx.network->ForcePlace(fx.MakeFlow(150.0), fx.AbPath());
  Auditor auditor(Mode(AuditMode::kLogAndCount));
  // Overcommit is two capacity violations (reserved > capacity, negative
  // residual) on the a->b direction.
  EXPECT_EQ(auditor.Audit(*fx.network, Balanced()), 2u);
  EXPECT_EQ(auditor.violations().size(), 2u);
  for (const AuditViolation& v : auditor.violations()) {
    EXPECT_EQ(v.invariant, "capacity");
  }
}

TEST(AuditorTest, ForcedPlacementsRelaxCapacityChecks) {
  // When the simulator itself reports deadlock-breaking forced placements,
  // the resulting overcommit is expected and must not count as corruption.
  Fixture fx;
  fx.network->ForcePlace(fx.MakeFlow(150.0), fx.AbPath());
  Auditor auditor(Mode(AuditMode::kFailFast));
  EXPECT_EQ(auditor.Audit(*fx.network, Balanced(), /*forced_placements=*/1),
            0u);
}

TEST(AuditorTest, DetectsBlackholeThroughDownLink) {
  // Deliberate corruption: a placed flow's path crosses a link that went
  // down without the fault layer removing the flow.
  Fixture fx;
  fx.network->Place(fx.MakeFlow(40.0), fx.AbPath());
  fx.network->SetLinkUp(fx.AbPath().links[0], false);

  Auditor counting(Mode(AuditMode::kLogAndCount));
  EXPECT_EQ(counting.Audit(*fx.network, Balanced()), 1u);
  EXPECT_EQ(counting.violations()[0].invariant, "coherence");

  Auditor failing(Mode(AuditMode::kFailFast));
  EXPECT_THROW((void)failing.Audit(*fx.network, Balanced()), AuditFailure);
}

TEST(AuditorTest, DetectsEventConservationLeak) {
  Fixture fx;
  QueueAccounting acct;
  acct.arrived = 5;
  acct.completed = 2;
  acct.shed = 1;  // two events unaccounted for
  Auditor auditor(Mode(AuditMode::kLogAndCount));
  EXPECT_EQ(auditor.Audit(*fx.network, acct), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, "accounting");
}

TEST(AuditorTest, DetectsQueueBoundOverflow) {
  Fixture fx;
  QueueAccounting acct;
  acct.arrived = 5;
  acct.queued = 5;
  acct.queue_capacity = 3;
  Auditor auditor(Mode(AuditMode::kLogAndCount));
  EXPECT_EQ(auditor.Audit(*fx.network, acct), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, "accounting");
}

TEST(AuditorTest, ViolationsCarryRoundAndTopologyEpoch) {
  Fixture fx;
  fx.network->ForcePlace(fx.MakeFlow(150.0), fx.AbPath());
  Auditor auditor(Mode(AuditMode::kLogAndCount));
  ASSERT_GT(auditor.Audit(*fx.network, Balanced(), 0,
                          AuditContext{.round = 7, .topology_epoch = 3}),
            0u);
  for (const AuditViolation& v : auditor.violations()) {
    EXPECT_EQ(v.round, 7u);
    EXPECT_EQ(v.topology_epoch, 3u);
  }
  // A later pass stamps ITS context — records pin the pass that found them.
  (void)auditor.Audit(*fx.network, Balanced(), 0,
                      AuditContext{.round = 9, .topology_epoch = 4});
  EXPECT_EQ(auditor.violations().back().round, 9u);
  EXPECT_EQ(auditor.violations().back().topology_epoch, 4u);
  // The default context marks an out-of-round pass.
  Auditor fresh(Mode(AuditMode::kLogAndCount));
  (void)fresh.Audit(*fx.network, Balanced());
  EXPECT_EQ(fresh.violations().front().round, 0u);
}

TEST(AuditorTest, FailFastFailureCarriesContext) {
  Fixture fx;
  fx.network->ForcePlace(fx.MakeFlow(150.0), fx.AbPath());
  Auditor auditor(Mode(AuditMode::kFailFast));
  try {
    (void)auditor.Audit(*fx.network, Balanced(), 0,
                        AuditContext{.round = 5, .topology_epoch = 2});
    FAIL() << "expected AuditFailure";
  } catch (const AuditFailure& failure) {
    EXPECT_EQ(failure.violation().round, 5u);
    EXPECT_EQ(failure.violation().topology_epoch, 2u);
  }
}

TEST(AuditorTest, ViolationsAccumulateAcrossPasses) {
  Fixture fx;
  fx.network->ForcePlace(fx.MakeFlow(150.0), fx.AbPath());
  Auditor auditor(Mode(AuditMode::kLogAndCount));
  (void)auditor.Audit(*fx.network, Balanced());
  (void)auditor.Audit(*fx.network, Balanced());
  EXPECT_EQ(auditor.audits_run(), 2u);
  EXPECT_EQ(auditor.violations().size(), 4u);
}

}  // namespace
}  // namespace nu::guard
