// Sharded audit passes and shard pressure aggregation. The sharded audit
// twins recompute the same invariants over per-shard slices; they must find
// exactly the same violations, in the same order, with the same text, as
// the serial pass — on clean states and on deliberately corrupted ones.
#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "guard/auditor.h"
#include "guard/shard_pressure.h"
#include "net/network.h"
#include "topo/fat_tree.h"

namespace nu::guard {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  /// Places `count` flows across pods on their first available path.
  void Populate(std::size_t count, Mbps demand) {
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId src = ft.host(i % 16);
      const NodeId dst = ft.host((i + 7) % 16);
      const auto paths = ft.HostPaths(src, dst);
      ASSERT_FALSE(paths.empty());
      network.Place(MakeFlow(i % 16, (i + 7) % 16, demand), paths.front());
    }
  }

  topo::FatTree ft;
  net::Network network;
};

QueueAccounting Balanced() {
  QueueAccounting acct;
  acct.arrived = 2;
  acct.queued = 1;
  acct.completed = 1;
  return acct;
}

ShardAuditRuntime MakeRuntime(ThreadPool& pool, std::size_t shards) {
  ShardAuditRuntime rt;
  rt.pool = &pool;
  rt.shards = shards;
  return rt;
}

// Clean state: the sharded pass finds nothing, exactly like the serial one,
// and invokes the fan-out hook once per parallel region (capacity load,
// capacity findings, coherence findings).
TEST(ShardAuditTest, CleanStateMatchesSerial) {
  Fixture fx;
  fx.Populate(24, 5.0);
  ThreadPool pool(4);
  std::size_t fanouts = 0;
  ShardAuditRuntime rt = MakeRuntime(pool, 4);
  rt.on_fanout = [&](std::span<const double>, double) { ++fanouts; };

  AuditorConfig config;
  config.enabled = true;
  Auditor serial(config);
  Auditor sharded(config);
  EXPECT_EQ(serial.Audit(fx.network, Balanced()), 0u);
  EXPECT_EQ(sharded.Audit(fx.network, Balanced(), 0, {}, &rt), 0u);
  EXPECT_TRUE(sharded.violations().empty());
  EXPECT_GT(fanouts, 0u);
}

// Injected corruption (overcommitted link via ForcePlace): the sharded
// pass reports the same violations as the serial pass — same count, same
// invariant tags, same detail text, same order.
TEST(ShardAuditTest, CorruptionFindingsMatchSerialExactly) {
  Fixture serial_fx;
  Fixture sharded_fx;
  for (Fixture* fx : {&serial_fx, &sharded_fx}) {
    fx->Populate(12, 5.0);
    // Overcommit one edge uplink without declaring a forced placement.
    const auto paths = fx->ft.HostPaths(fx->ft.host(0), fx->ft.host(15));
    ASSERT_FALSE(paths.empty());
    fx->network.ForcePlace(fx->MakeFlow(0, 15, 500.0), paths.front());
  }

  AuditorConfig config;
  config.enabled = true;
  Auditor serial(config);
  Auditor sharded(config);
  ThreadPool pool(3);
  const ShardAuditRuntime rt = MakeRuntime(pool, 4);

  const std::size_t serial_found = serial.Audit(serial_fx.network, Balanced());
  const std::size_t sharded_found =
      sharded.Audit(sharded_fx.network, Balanced(), 0, {}, &rt);
  ASSERT_GT(serial_found, 0u);
  ASSERT_EQ(sharded_found, serial_found);
  ASSERT_EQ(sharded.violations().size(), serial.violations().size());
  for (std::size_t i = 0; i < serial.violations().size(); ++i) {
    EXPECT_EQ(sharded.violations()[i].invariant,
              serial.violations()[i].invariant);
    EXPECT_EQ(sharded.violations()[i].detail, serial.violations()[i].detail);
  }
}

// Fail-fast: the FIRST violation the sharded pass throws is the same one
// the serial pass throws — canonical order includes the abort point.
TEST(ShardAuditTest, FailFastThrowsSameFirstViolation) {
  Fixture serial_fx;
  Fixture sharded_fx;
  for (Fixture* fx : {&serial_fx, &sharded_fx}) {
    fx->Populate(8, 5.0);
    const auto paths = fx->ft.HostPaths(fx->ft.host(2), fx->ft.host(13));
    ASSERT_FALSE(paths.empty());
    fx->network.ForcePlace(fx->MakeFlow(2, 13, 400.0), paths.front());
  }
  AuditorConfig config;
  config.enabled = true;
  config.mode = AuditMode::kFailFast;
  ThreadPool pool(4);
  const ShardAuditRuntime rt = MakeRuntime(pool, 4);

  std::optional<AuditViolation> serial_first;
  std::optional<AuditViolation> sharded_first;
  try {
    (void)Auditor(config).Audit(serial_fx.network, Balanced());
  } catch (const AuditFailure& f) {
    serial_first = f.violation();
  }
  try {
    (void)Auditor(config).Audit(sharded_fx.network, Balanced(), 0, {}, &rt);
  } catch (const AuditFailure& f) {
    sharded_first = f.violation();
  }
  ASSERT_TRUE(serial_first.has_value());
  ASSERT_TRUE(sharded_first.has_value());
  EXPECT_EQ(sharded_first->invariant, serial_first->invariant);
  EXPECT_EQ(sharded_first->detail, serial_first->detail);
}

// An inactive runtime (null pool or one shard) falls back to the serial
// pass — Audit accepts the pointer but nothing fans out.
TEST(ShardAuditTest, InactiveRuntimeFallsBackToSerial) {
  Fixture fx;
  fx.Populate(6, 5.0);
  ShardAuditRuntime inactive;  // no pool
  EXPECT_FALSE(inactive.Active());
  AuditorConfig config;
  config.enabled = true;
  Auditor auditor(config);
  EXPECT_EQ(auditor.Audit(fx.network, Balanced(), 0, {}, &inactive), 0u);

  ThreadPool pool(2);
  ShardAuditRuntime one_shard = MakeRuntime(pool, 1);
  EXPECT_FALSE(one_shard.Active());
}

// Pressure aggregation: the global queue pressure is the sum of per-shard
// depths, with capacity and shed totals passed through untouched.
TEST(ShardPressureTest, AggregatesDepthsExactly) {
  const std::vector<std::size_t> depths{3, 0, 5, 2};
  const sched::QueuePressure p = AggregateShardPressure(depths, 16, 4);
  EXPECT_EQ(p.length, 10u);
  EXPECT_EQ(p.capacity, 16u);
  EXPECT_EQ(p.shed_total, 4u);
  EXPECT_FALSE(p.Overloaded());

  const std::vector<std::size_t> heavy{8, 9};
  EXPECT_TRUE(AggregateShardPressure(heavy, 16, 0).Overloaded());

  const std::vector<std::size_t> empty;
  EXPECT_EQ(AggregateShardPressure(empty, 0, 0).length, 0u);
}

}  // namespace
}  // namespace nu::guard
