// Watchdog behavior under SUSTAINED overload: events arrive far faster than
// the fabric drains them against deadlines tight enough that executions
// overrun — the watchdog must keep requeueing with escalating backoff and
// quarantine the poison events instead of livelocking the round loop, and
// the whole lossy regime must stay deterministic.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/runner.h"
#include "metrics/export.h"

namespace nu::guard {
namespace {

exp::ExperimentConfig OverloadConfig(std::uint64_t seed) {
  exp::ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.6;
  config.event_count = 20;
  config.min_flows_per_event = 6;
  config.max_flows_per_event = 16;
  config.alpha = 4;
  config.background_churn = true;
  config.mean_interarrival = 0.05;  // ~20 events/s into a ~1 event/s fabric
  config.seed = seed;

  // Deadlines tight enough that overloaded executions overrun them.
  config.sim.guard.deadline.base_deadline = 0.4;
  config.sim.guard.deadline.per_flow_deadline = 0.02;
  config.sim.guard.deadline.max_failures = 3;
  config.sim.guard.deadline.requeue_backoff = 0.25;
  config.sim.guard.deadline.backoff_factor = 2.0;
  config.sim.guard.deadline.max_backoff = 2.0;
  config.sim.guard.auditor.enabled = true;
  config.sim.guard.auditor.mode = AuditMode::kLogAndCount;
  config.sim.guard.auditor.cadence = 8;
  return config;
}

TEST(WatchdogOverloadTest, RequeuesEscalateAndPoisonEventsQuarantine) {
  const exp::ExperimentConfig config = OverloadConfig(501);
  const exp::Workload workload(config);
  const sim::SimResult result =
      exp::RunScheduler(workload, sched::SchedulerKind::kPlmtf);

  // The overload regime actually bit: deadlines were missed and events were
  // requeued (each miss short of the budget is one backoff requeue).
  EXPECT_GT(result.report.deadline_misses, 0u);
  EXPECT_GT(result.report.events_requeued, 0u);
  // Poison events left the loop instead of livelocking it.
  EXPECT_GT(result.report.events_quarantined, 0u);
  // ...and the run still terminated with clean audits.
  EXPECT_TRUE(result.violations.empty());

  // Per-event invariants: a quarantined event burned its whole failure
  // budget; nobody exceeded it; every event reached a terminal state.
  const std::size_t max_failures = config.sim.guard.deadline.max_failures;
  std::size_t quarantined = 0;
  for (const metrics::EventRecord& record : result.records) {
    EXPECT_NE(record.status, metrics::TerminalStatus::kPending)
        << "event " << record.event;
    EXPECT_LE(record.deadline_misses, max_failures);
    if (record.status == metrics::TerminalStatus::kQuarantined) {
      ++quarantined;
      EXPECT_EQ(record.deadline_misses, max_failures)
          << "event " << record.event;
    }
  }
  EXPECT_EQ(quarantined, result.report.events_quarantined);
}

TEST(WatchdogOverloadTest, BoundedQueueComposesWithWatchdog) {
  // Bounded queue on top: shed-costliest absorbs arrivals the watchdog
  // never sees, the queue stays inside its bound, and completed + shed +
  // quarantined accounts for every event.
  exp::ExperimentConfig config = OverloadConfig(502);
  config.sim.guard.overload.max_queue_length = 6;
  config.sim.guard.overload.policy = OverloadPolicy::kShedCostliest;
  const exp::Workload workload(config);
  const sim::SimResult result =
      exp::RunScheduler(workload, sched::SchedulerKind::kPlmtf);

  EXPECT_LE(result.guard_stats.max_queue_length, 6u);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.report.events_completed + result.report.events_shed +
                result.report.events_quarantined,
            config.event_count);
}

TEST(WatchdogOverloadTest, SustainedOverloadStaysDeterministic) {
  // The escalation ladder (miss -> backoff -> requeue -> quarantine) draws
  // nothing from any Rng: identical seeds reproduce identical records.
  const exp::ExperimentConfig config = OverloadConfig(503);
  auto run_csv = [&config]() {
    const exp::Workload workload(config);
    const sim::SimResult result =
        exp::RunScheduler(workload, sched::SchedulerKind::kLmtf);
    std::ostringstream out;
    metrics::WriteRecordsCsv(out, result.records);
    return out.str();
  };
  EXPECT_EQ(run_csv(), run_csv());
}

}  // namespace
}  // namespace nu::guard
