// Overload admission control: policy parsing and shed-victim selection on a
// full queue (reject-new tail drop, shed-oldest head drop, shed-costliest
// cost-ranked drop).
#include "guard/overload.h"

#include <gtest/gtest.h>

#include <array>
#include <optional>

#include "topo/path_provider.h"

namespace nu::guard {
namespace {

struct Fixture {
  Fixture() {
    a = graph.AddNode(topo::NodeRole::kHost);
    b = graph.AddNode(topo::NodeRole::kHost);
    graph.AddBidirectional(a, b, 100.0);
    provider.emplace(graph, 2);
    network.emplace(graph);
  }

  [[nodiscard]] flow::Flow MakeFlow(Mbps demand) const {
    flow::Flow f;
    f.src = a;
    f.dst = b;
    f.demand = demand;
    f.duration = 1.0;
    return f;
  }

  [[nodiscard]] update::UpdateEvent Event(std::uint64_t id,
                                          Mbps demand) const {
    return update::UpdateEvent(EventId{id}, 0.0, {MakeFlow(demand)});
  }

  /// Occupies `demand` of the a->b capacity so later flows see a deficit.
  void Occupy(Mbps demand) {
    const std::array<NodeId, 2> seq{a, b};
    network->Place(MakeFlow(demand), graph.MakePath(seq));
  }

  topo::Graph graph;
  NodeId a, b;
  std::optional<topo::KspPathProvider> provider;
  std::optional<net::Network> network;
};

TEST(OverloadPolicyTest, ToStringParseRoundTrips) {
  for (const auto policy :
       {OverloadPolicy::kRejectNew, OverloadPolicy::kShedOldest,
        OverloadPolicy::kShedCostliest}) {
    EXPECT_EQ(ParseOverloadPolicy(ToString(policy)), policy);
  }
}

TEST(OverloadConfigTest, ZeroBoundDisables) {
  OverloadConfig config;
  EXPECT_FALSE(config.enabled());
  config.max_queue_length = 1;
  EXPECT_TRUE(config.enabled());
}

TEST(ChooseShedVictimTest, RejectNewAlwaysShedsIncoming) {
  Fixture fx;
  const OverloadConfig config{1, OverloadPolicy::kRejectNew};
  const update::UpdateEvent queued = fx.Event(0, 10.0);
  const update::UpdateEvent incoming = fx.Event(1, 10.0);
  const std::array<const update::UpdateEvent*, 1> queue{&queued};
  EXPECT_EQ(ChooseShedVictim(config, queue, incoming, *fx.network,
                             *fx.provider),
            std::nullopt);
}

TEST(ChooseShedVictimTest, ShedOldestPicksTheHead) {
  Fixture fx;
  const OverloadConfig config{2, OverloadPolicy::kShedOldest};
  const update::UpdateEvent q0 = fx.Event(0, 10.0);
  const update::UpdateEvent q1 = fx.Event(1, 10.0);
  const update::UpdateEvent incoming = fx.Event(2, 10.0);
  const std::array<const update::UpdateEvent*, 2> queue{&q0, &q1};
  EXPECT_EQ(ChooseShedVictim(config, queue, incoming, *fx.network,
                             *fx.provider),
            std::optional<std::size_t>{0});
}

TEST(ChooseShedVictimTest, ShedCostliestPicksLargestDeficit) {
  Fixture fx;
  fx.Occupy(90.0);  // residual 10: demand > 10 has a deficit
  const OverloadConfig config{2, OverloadPolicy::kShedCostliest};
  const update::UpdateEvent cheap = fx.Event(0, 5.0);     // fits: score 0
  const update::UpdateEvent costly = fx.Event(1, 95.0);   // deficit 85
  const update::UpdateEvent incoming = fx.Event(2, 20.0);  // deficit 10
  const std::array<const update::UpdateEvent*, 2> queue{&cheap, &costly};
  EXPECT_EQ(ChooseShedVictim(config, queue, incoming, *fx.network,
                             *fx.provider),
            std::optional<std::size_t>{1});
}

TEST(ChooseShedVictimTest, ShedCostliestShedsIncomingOnTie) {
  Fixture fx;  // empty network: every candidate fits, all scores 0
  const OverloadConfig config{2, OverloadPolicy::kShedCostliest};
  const update::UpdateEvent q0 = fx.Event(0, 5.0);
  const update::UpdateEvent q1 = fx.Event(1, 5.0);
  const update::UpdateEvent incoming = fx.Event(2, 5.0);
  const std::array<const update::UpdateEvent*, 2> queue{&q0, &q1};
  EXPECT_EQ(ChooseShedVictim(config, queue, incoming, *fx.network,
                             *fx.provider),
            std::nullopt);
}

TEST(ChooseShedVictimTest, ShedCostliestShedsIncomingWhenCostliest) {
  Fixture fx;
  fx.Occupy(90.0);
  const OverloadConfig config{2, OverloadPolicy::kShedCostliest};
  const update::UpdateEvent q0 = fx.Event(0, 5.0);
  const update::UpdateEvent q1 = fx.Event(1, 20.0);
  const update::UpdateEvent incoming = fx.Event(2, 95.0);
  const std::array<const update::UpdateEvent*, 2> queue{&q0, &q1};
  EXPECT_EQ(ChooseShedVictim(config, queue, incoming, *fx.network,
                             *fx.provider),
            std::nullopt);
}

}  // namespace
}  // namespace nu::guard
