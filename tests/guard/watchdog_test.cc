// Deadline budgets, escalating requeue backoff, and the poison-quarantine
// decision of the stuck-event watchdog.
#include "guard/watchdog.h"

#include <gtest/gtest.h>

namespace nu::guard {
namespace {

DeadlineConfig TestConfig() {
  DeadlineConfig config;
  config.base_deadline = 2.0;
  config.per_flow_deadline = 0.5;
  config.max_failures = 3;
  config.requeue_backoff = 0.5;
  config.backoff_factor = 2.0;
  config.max_backoff = 1.5;
  return config;
}

TEST(DeadlineConfigTest, ZeroBaseDisables) {
  DeadlineConfig config;
  EXPECT_FALSE(config.enabled());
  config.base_deadline = 1.0;
  EXPECT_TRUE(config.enabled());
}

TEST(DeadlineConfigTest, DeadlineScalesWithFlowCount) {
  const DeadlineConfig config = TestConfig();
  EXPECT_DOUBLE_EQ(config.DeadlineFor(0), 2.0);
  EXPECT_DOUBLE_EQ(config.DeadlineFor(1), 2.5);
  EXPECT_DOUBLE_EQ(config.DeadlineFor(10), 7.0);
}

TEST(DeadlineConfigTest, BackoffEscalatesAndCaps) {
  const DeadlineConfig config = TestConfig();
  EXPECT_DOUBLE_EQ(config.BackoffAfter(1), 0.5);
  EXPECT_DOUBLE_EQ(config.BackoffAfter(2), 1.0);
  EXPECT_DOUBLE_EQ(config.BackoffAfter(3), 1.5);  // 2.0 capped at max_backoff
  EXPECT_DOUBLE_EQ(config.BackoffAfter(7), 1.5);
}

TEST(WatchdogTest, QuarantinesAfterFailureBudget) {
  Watchdog watchdog(TestConfig());
  const EventId event{1};
  EXPECT_FALSE(watchdog.RecordMiss(event));
  EXPECT_FALSE(watchdog.RecordMiss(event));
  EXPECT_TRUE(watchdog.RecordMiss(event));  // third miss: poison
  EXPECT_EQ(watchdog.failures(event), 3u);
}

TEST(WatchdogTest, FailureCountsArePerEvent) {
  Watchdog watchdog(TestConfig());
  EXPECT_FALSE(watchdog.RecordMiss(EventId{1}));
  EXPECT_FALSE(watchdog.RecordMiss(EventId{2}));
  EXPECT_EQ(watchdog.failures(EventId{1}), 1u);
  EXPECT_EQ(watchdog.failures(EventId{2}), 1u);
  EXPECT_EQ(watchdog.failures(EventId{3}), 0u);
}

TEST(WatchdogTest, RequeueDelayTracksMissCount) {
  Watchdog watchdog(TestConfig());
  const EventId event{4};
  (void)watchdog.RecordMiss(event);
  EXPECT_DOUBLE_EQ(watchdog.RequeueDelay(event), 0.5);
  (void)watchdog.RecordMiss(event);
  EXPECT_DOUBLE_EQ(watchdog.RequeueDelay(event), 1.0);
}

}  // namespace
}  // namespace nu::guard
