// Qualitative reproduction checks: the directional claims of the paper's
// evaluation must hold on seeded k=4 workloads (the benches then measure the
// magnitudes at the paper's k=8 scale). Each check averages a few seeds so a
// single unlucky draw cannot flip the sign.
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace nu::exp {
namespace {

ExperimentConfig BaseConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.65;
  config.event_count = 10;
  config.min_flows_per_event = 2;
  config.max_flows_per_event = 20;  // heterogeneous: heavy + light events
  config.alpha = 4;
  config.seed = seed;
  config.sim.cost_model.plan_time_per_flow = 0.002;
  return config;
}

ComparisonResult RunAll(std::uint64_t seed, std::size_t trials = 3) {
  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};
  return CompareSchedulers(BaseConfig(seed), kinds, /*include_flow_level=*/true,
                           trials);
}

TEST(PaperShapesTest, LmtfReducesAvgEctVsFifo) {
  const auto result = RunAll(301);
  EXPECT_LT(result.mean_by_name.at("lmtf").avg_ect,
            result.mean_by_name.at("fifo").avg_ect);
}

TEST(PaperShapesTest, PlmtfReducesAvgEctVsLmtf) {
  const auto result = RunAll(302);
  EXPECT_LT(result.mean_by_name.at("p-lmtf").avg_ect,
            result.mean_by_name.at("lmtf").avg_ect);
}

TEST(PaperShapesTest, PlmtfLargeReductionVsFifo) {
  // The paper reports 69-80% average-ECT reduction; require a substantial
  // (>30%) reduction at this smaller scale.
  const auto result = RunAll(303);
  const double reduction =
      ReductionVs(result.mean_by_name.at("fifo").avg_ect,
                  result.mean_by_name.at("p-lmtf").avg_ect);
  EXPECT_GT(reduction, 0.3);
}

TEST(PaperShapesTest, EventLevelBeatsFlowLevelOnAvgEct) {
  // The paper's "event-level scheduling method" in Figs. 4/5 is its
  // cost-aware scheduler; P-LMTF is our strongest instance of it. Average
  // ECT must be clearly lower than flow-level interleaving; the tail must
  // not be meaningfully worse (both methods do the same total update work,
  // so without capacity blocking the tails tie).
  const auto result = RunAll(304);
  EXPECT_LT(result.mean_by_name.at("p-lmtf").avg_ect,
            result.mean_by_name.at(kFlowLevelName).avg_ect);
  EXPECT_LE(result.mean_by_name.at("p-lmtf").tail_ect,
            result.mean_by_name.at(kFlowLevelName).tail_ect * 1.25);
}

TEST(PaperShapesTest, PlanTimeOrderingFifoLowestLmtfHighest) {
  // Fig. 6(d): FIFO cheapest; LMTF most expensive; P-LMTF in between
  // (it amortizes probing over multiple executions per round).
  const auto result = RunAll(305);
  const double fifo = result.mean_by_name.at("fifo").total_plan_time;
  const double lmtf = result.mean_by_name.at("lmtf").total_plan_time;
  const double plmtf = result.mean_by_name.at("p-lmtf").total_plan_time;
  EXPECT_LT(fifo, lmtf);
  EXPECT_LT(fifo, plmtf);
  EXPECT_LT(plmtf, lmtf);
}

TEST(PaperShapesTest, PlmtfReducesQueuingDelay) {
  // Fig. 8: P-LMTF cuts both average and worst-case queuing delay vs FIFO.
  const auto result = RunAll(306);
  EXPECT_LT(result.mean_by_name.at("p-lmtf").avg_queuing_delay,
            result.mean_by_name.at("fifo").avg_queuing_delay);
  EXPECT_LT(result.mean_by_name.at("p-lmtf").worst_queuing_delay,
            result.mean_by_name.at("fifo").worst_queuing_delay);
}

TEST(PaperShapesTest, AlphaTwoAlreadyHelps) {
  // Section IV-B: even alpha = 2 captures most of the sampling benefit.
  ExperimentConfig config = BaseConfig(307);
  config.alpha = 2;
  const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kFifo,
                                                sched::SchedulerKind::kLmtf};
  const auto result = CompareSchedulers(config, kinds, false, 3);
  EXPECT_LT(result.mean_by_name.at("lmtf").avg_ect,
            result.mean_by_name.at("fifo").avg_ect);
}

}  // namespace
}  // namespace nu::exp
