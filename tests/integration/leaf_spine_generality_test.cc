// Generality: the update abstraction, migration optimizer and schedulers
// only see PathProvider + Network, so they must work unchanged on a
// leaf-spine fabric (and the qualitative scheduler ordering should carry
// over).
#include <gtest/gtest.h>

#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/leaf_spine.h"
#include "topo/path_provider.h"
#include "trace/background.h"
#include "trace/benson.h"
#include "trace/yahoo_like.h"
#include "update/event_generator.h"

namespace nu {
namespace {

struct LeafSpineFixture {
  LeafSpineFixture()
      : fabric(topo::LeafSpineConfig{.leaves = 6,
                                     .spines = 4,
                                     .hosts_per_leaf = 4,
                                     .host_link_capacity = 1000.0,
                                     .fabric_link_capacity = 1000.0}),
        provider(fabric),
        network(fabric.graph()) {
    trace::YahooLikeGenerator gen(fabric.hosts(), Rng(31));
    trace::BackgroundOptions options;
    options.target_utilization = 0.6;
    options.target_fabric_utilization = true;
    options.link_headroom = 0.05;
    options.host_link_headroom = 0.3;
    options.random_path_seed = 99;
    trace::InjectBackground(network, provider, gen, options);
  }

  std::vector<update::UpdateEvent> MakeEvents(std::size_t count) {
    trace::BensonGenerator flows(fabric.hosts(), Rng(32));
    update::EventGenerator gen(flows, Rng(33));
    update::SyntheticEventConfig shape;
    shape.min_flows = 5;
    shape.max_flows = 25;
    return gen.Batch(count, shape);
  }

  topo::LeafSpine fabric;
  topo::LeafSpinePathProvider provider;
  net::Network network;
};

TEST(LeafSpineGeneralityTest, AllSchedulersCompleteOnLeafSpine) {
  LeafSpineFixture fx;
  const auto events = fx.MakeEvents(8);
  sim::SimConfig config;
  config.seed = 5;
  sim::Simulator simulator(fx.network, fx.provider, config);
  for (const auto kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
        sched::SchedulerKind::kPlmtf}) {
    const auto scheduler = sched::MakeScheduler(kind);
    const sim::SimResult result = simulator.Run(*scheduler, events);
    EXPECT_EQ(result.records.size(), 8u) << sched::ToString(kind);
    for (const auto& rec : result.records) {
      EXPECT_GE(rec.completion, rec.exec_start);
    }
  }
}

TEST(LeafSpineGeneralityTest, MigrationWorksOnLeafSpine) {
  LeafSpineFixture fx;
  const update::MigrationOptimizer optimizer(fx.provider);
  // Probe many (demand, path) combinations; every feasible plan must be
  // sound (same property as on Fat-Trees).
  Rng rng(44);
  int feasible = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = fx.fabric.host(rng.Index(24));
    NodeId dst = fx.fabric.host(rng.Index(24));
    if (src == dst) continue;
    const auto& paths = fx.provider.Paths(src, dst);
    const topo::Path& desired = paths[rng.Index(paths.size())];
    const double demand = rng.Uniform(50.0, 400.0);
    net::Network scratch = fx.network;
    const auto plan = optimizer.Plan(scratch, demand, desired);
    if (!plan.feasible) continue;
    ++feasible;
    update::MigrationOptimizer::Apply(scratch, plan);
    EXPECT_TRUE(scratch.CanPlace(demand, desired));
    EXPECT_TRUE(scratch.CheckInvariants());
  }
  EXPECT_GT(feasible, 0);
}

TEST(LeafSpineGeneralityTest, PlmtfNoWorseThanFifoOnAverage) {
  LeafSpineFixture fx;
  const auto events = fx.MakeEvents(10);
  sim::SimConfig config;
  config.seed = 6;
  sim::Simulator simulator(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  sched::PlmtfScheduler plmtf(sched::LmtfConfig{.alpha = 4});
  const auto rf = simulator.Run(fifo, events);
  const auto rp = simulator.Run(plmtf, events);
  EXPECT_LE(rp.report.avg_ect, rf.report.avg_ect * 1.05);
}

}  // namespace
}  // namespace nu
