// Soak test: run every scheduler (and the flow-level baseline) on moderate
// workloads with full invariant validation turned on — the network's
// congestion-free accounting is re-verified from scratch after every
// occurrence batch, under churn, migrations, co-scheduling, and deferred
// retries all at once.
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace nu::exp {
namespace {

ExperimentConfig SoakConfig(std::uint64_t seed, bool churn) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.7;
  config.event_count = 12;
  config.min_flows_per_event = 5;
  config.max_flows_per_event = 25;
  config.alpha = 4;
  config.seed = seed;
  config.background_churn = churn;
  config.sim.validate_invariants = true;
  return config;
}

class SoakTest : public ::testing::TestWithParam<sched::SchedulerKind> {};

TEST_P(SoakTest, InvariantsHoldThroughoutWithChurn) {
  const Workload workload(SoakConfig(41, true));
  const sim::SimResult result = RunScheduler(workload, GetParam());
  EXPECT_EQ(result.records.size(), 12u);
}

TEST_P(SoakTest, InvariantsHoldThroughoutStatic) {
  const Workload workload(SoakConfig(43, false));
  const sim::SimResult result = RunScheduler(workload, GetParam());
  EXPECT_EQ(result.records.size(), 12u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SoakTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kReorder,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf,
                                           sched::SchedulerKind::kSjf));

TEST(SoakTest, FlowLevelInvariantsHold) {
  const Workload with_churn(SoakConfig(47, true));
  EXPECT_EQ(RunFlowLevel(with_churn).records.size(), 12u);
  const Workload without(SoakConfig(53, false));
  EXPECT_EQ(RunFlowLevel(without).records.size(), 12u);
}

TEST(SoakTest, QuickProbesInvariantsHold) {
  ExperimentConfig config = SoakConfig(59, true);
  config.sim.quick_cost_probes = true;
  const Workload workload(config);
  EXPECT_EQ(RunScheduler(workload, sched::SchedulerKind::kLmtf).records.size(),
            12u);
}

}  // namespace
}  // namespace nu::exp
