// Soak test: run every scheduler (and the flow-level baseline) on moderate
// workloads with full invariant validation turned on — the network's
// congestion-free accounting is re-verified from scratch after every
// occurrence batch, under churn, migrations, co-scheduling, and deferred
// retries all at once.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "fault/fault_plan.h"

namespace nu::exp {
namespace {

ExperimentConfig SoakConfig(std::uint64_t seed, bool churn) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.7;
  config.event_count = 12;
  config.min_flows_per_event = 5;
  config.max_flows_per_event = 25;
  config.alpha = 4;
  config.seed = seed;
  config.background_churn = churn;
  config.sim.validate_invariants = true;
  return config;
}

class SoakTest : public ::testing::TestWithParam<sched::SchedulerKind> {};

TEST_P(SoakTest, InvariantsHoldThroughoutWithChurn) {
  const Workload workload(SoakConfig(41, true));
  const sim::SimResult result = RunScheduler(workload, GetParam());
  EXPECT_EQ(result.records.size(), 12u);
}

TEST_P(SoakTest, InvariantsHoldThroughoutStatic) {
  const Workload workload(SoakConfig(43, false));
  const sim::SimResult result = RunScheduler(workload, GetParam());
  EXPECT_EQ(result.records.size(), 12u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SoakTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kReorder,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf,
                                           sched::SchedulerKind::kSjf));

TEST(SoakTest, FlowLevelInvariantsHold) {
  const Workload with_churn(SoakConfig(47, true));
  EXPECT_EQ(RunFlowLevel(with_churn).records.size(), 12u);
  const Workload without(SoakConfig(53, false));
  EXPECT_EQ(RunFlowLevel(without).records.size(), 12u);
}

/// The ISSUE's robustness acceptance run: random fabric-link outages plus
/// flaky installs, full invariant validation after every occurrence batch,
/// and nonzero fault counters in the exported report.
TEST(SoakTest, FaultInjectionSoakStaysConsistent) {
  ExperimentConfig config = SoakConfig(61, true);
  {
    // Sample victim cables from the workload's own graph; the same seed
    // rebuilds the identical graph below.
    const Workload probe(config);
    Rng fault_rng(config.seed ^ 0xFA17ULL);
    fault::RandomLinkFaultOptions options;
    options.failures = 3;
    options.first_failure = 0.5;
    options.spacing = 1.5;
    options.outage = 3.0;
    config.sim.faults.plan = fault::MakeRandomLinkFaultPlan(
        probe.network().graph(), options, fault_rng);
  }
  config.sim.faults.flaky.failure_probability = 0.25;
  config.sim.faults.flaky.latency_jitter_frac = 0.2;
  config.sim.faults.retry.max_attempts = 3;
  config.sim.faults.retry.base_delay = 0.02;

  const Workload workload(config);
  const sim::SimResult result =
      RunScheduler(workload, sched::SchedulerKind::kLmtf);
  // Invariants were re-verified after every occurrence batch (NU_CHECK
  // aborts on violation), and every event still completed.
  EXPECT_EQ(result.records.size(), 12u);
  EXPECT_EQ(result.fault_stats.link_failures, 3u);
  EXPECT_GT(result.fault_stats.installs_attempted, 0u);
  EXPECT_GT(result.fault_stats.installs_retried, 0u);
  EXPECT_EQ(result.report.installs_retried,
            result.fault_stats.installs_retried);
}

/// Same soak under aggressive flakiness and a stingy retry budget so the
/// abort+rollback path is exercised repeatedly across rounds.
TEST(SoakTest, AbortHeavySoakStillCompletesEverything) {
  ExperimentConfig config = SoakConfig(67, false);
  config.sim.faults.flaky.failure_probability = 0.6;
  config.sim.faults.flaky.latency_jitter_frac = 0.3;
  config.sim.faults.retry.max_attempts = 2;
  config.sim.faults.retry.base_delay = 0.02;

  const Workload workload(config);
  const sim::SimResult result =
      RunScheduler(workload, sched::SchedulerKind::kPlmtf);
  EXPECT_EQ(result.records.size(), 12u);
  EXPECT_GT(result.fault_stats.events_aborted, 0u);
  EXPECT_GT(result.fault_stats.installs_failed, 0u);
  EXPECT_GT(result.fault_stats.recovery_latency.count(), 0u);
}

TEST(SoakTest, QuickProbesInvariantsHold) {
  ExperimentConfig config = SoakConfig(59, true);
  config.sim.quick_cost_probes = true;
  const Workload workload(config);
  EXPECT_EQ(RunScheduler(workload, sched::SchedulerKind::kLmtf).records.size(),
            12u);
}

}  // namespace
}  // namespace nu::exp
