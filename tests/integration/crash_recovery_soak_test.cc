// Crash-recovery soak: generated workloads (churn on, flaky installs,
// auditor verifying invariants after every occurrence batch) crashed at
// several rounds and both crash points, across seeds and schedulers. Every
// recovery must reproduce the uninterrupted run's records byte-for-byte
// with a clean audit — the determinism oracle at workload scale, including
// the churn-generator fast-forward path that unit fixtures don't reach.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "exp/runner.h"
#include "metrics/export.h"
#include "sim/simulator.h"

namespace nu::exp {
namespace {

namespace fs = std::filesystem;

ExperimentConfig SoakConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.7;
  config.event_count = 10;
  config.min_flows_per_event = 4;
  config.max_flows_per_event = 15;
  config.alpha = 4;
  config.seed = seed;
  config.background_churn = true;
  config.sim.validate_invariants = true;
  config.sim.faults.flaky.failure_probability = 0.2;
  config.sim.faults.flaky.latency_jitter_frac = 0.15;
  config.sim.faults.retry.max_attempts = 3;
  config.sim.faults.retry.base_delay = 0.02;
  config.sim.guard.auditor.enabled = true;
  config.sim.guard.auditor.cadence = 8;
  return config;
}

/// RunScheduler's wiring (seed derivation + churn factory), but on a
/// caller-owned Simulator so the soak can Resume after a crash.
sim::Simulator MakeSimulator(const Workload& workload,
                             const sim::SimConfig& sim_config) {
  sim::SimConfig config = sim_config;
  config.seed = workload.config().seed ^ 0x5eedULL;
  config.churn.enabled = workload.config().background_churn;
  config.churn.placement = workload.background_options();
  sim::Simulator simulator(workload.network(), workload.paths(), config);
  if (config.churn.enabled) {
    simulator.SetChurnFactory([&workload](std::uint64_t seed) {
      return MakeTrafficGenerator(workload.config().background_trace,
                                  workload.hosts(), Rng(seed));
    });
  }
  return simulator;
}

std::string RecordsCsv(const sim::SimResult& result) {
  std::ostringstream out;
  metrics::WriteRecordsCsv(out, result.records);
  return out.str();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() / ("nu_ckpt_soak_" + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

struct SoakCase {
  std::uint64_t seed;
  sched::SchedulerKind kind;
};

class CrashRecoverySoakTest : public ::testing::TestWithParam<SoakCase> {};

TEST_P(CrashRecoverySoakTest, RandomCrashesRecoverBitIdentical) {
  const auto [seed, kind] = GetParam();
  const Workload workload(SoakConfig(seed));
  const std::string tag =
      std::to_string(seed) + "_" + sched::ToString(kind);

  // Uninterrupted checkpointed reference.
  TempDir ref_dir("ref_" + tag);
  sim::SimConfig sim_config = workload.config().sim;
  sim_config.checkpoint.dir = ref_dir.str();
  sim_config.checkpoint.cadence = 2;
  const auto scheduler = sched::MakeScheduler(
      kind, sched::LmtfConfig{.alpha = workload.config().alpha});
  sim::Simulator reference_sim = MakeSimulator(workload, sim_config);
  const sim::SimResult reference =
      reference_sim.Run(*scheduler, workload.events());
  ASSERT_GE(reference.rounds, 3u);
  EXPECT_EQ(reference.report.audit_violations, 0u);
  const std::string want = RecordsCsv(reference);

  // Crash at an early, a middle, and the final round, alternating points.
  const std::size_t crash_rounds[] = {1, reference.rounds / 2,
                                      reference.rounds};
  fault::CrashPoint point = fault::CrashPoint::kBeforeRound;
  for (const std::size_t crash_round : crash_rounds) {
    if (crash_round == 0) continue;
    const std::string case_tag = tag + "_r" + std::to_string(crash_round);
    TempDir dir(case_tag);
    sim::SimConfig crash_config = sim_config;
    crash_config.checkpoint.dir = dir.str();
    crash_config.faults.crash.at_round = crash_round;
    crash_config.faults.crash.point = point;
    point = point == fault::CrashPoint::kBeforeRound
                ? fault::CrashPoint::kMidRound
                : fault::CrashPoint::kBeforeRound;

    {
      sim::Simulator sim = MakeSimulator(workload, crash_config);
      const auto crashed_sched = sched::MakeScheduler(
          kind, sched::LmtfConfig{.alpha = workload.config().alpha});
      EXPECT_THROW((void)sim.Run(*crashed_sched, workload.events()),
                   fault::ControllerCrash)
          << case_tag;
    }
    sim::Simulator sim = MakeSimulator(workload, crash_config);
    const auto resumed_sched = sched::MakeScheduler(
        kind, sched::LmtfConfig{.alpha = workload.config().alpha});
    const sim::SimResult recovered =
        sim.Resume(*resumed_sched, workload.events());
    EXPECT_TRUE(recovered.recovery.recovered) << case_tag;
    EXPECT_EQ(RecordsCsv(recovered), want) << case_tag;
    EXPECT_EQ(recovered.report.audit_violations, 0u) << case_tag;
    EXPECT_EQ(recovered.rounds, reference.rounds) << case_tag;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSchedulers, CrashRecoverySoakTest,
    ::testing::Values(SoakCase{101, sched::SchedulerKind::kFifo},
                      SoakCase{211, sched::SchedulerKind::kLmtf},
                      SoakCase{307, sched::SchedulerKind::kPlmtf}),
    [](const ::testing::TestParamInfo<SoakCase>& param) {
      std::string name = "seed" + std::to_string(param.param.seed) + "_" +
                         sched::ToString(param.param.kind);
      for (char& c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace nu::exp
