// Golden-value regression pins: a fixed seeded workload must keep producing
// exactly these aggregates. The library is deterministic by design, so any
// drift here means an intentional behavior change — update the constants
// (regenerate by printing the reports for seed 1234 below) and mention the
// change in EXPERIMENTS.md, or an accidental one — fix the code.
//
// Tolerances are relative 1e-6: tight enough to catch any algorithmic
// change, loose enough for cross-compiler floating-point association
// differences in the statistics accumulators.
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace nu::exp {
namespace {

ExperimentConfig GoldenConfig() {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.6;
  config.event_count = 8;
  config.min_flows_per_event = 4;
  config.max_flows_per_event = 16;
  config.alpha = 4;
  config.seed = 1234;
  return config;
}

void ExpectNear(double expected, double actual, const char* what) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-6 + 1e-9) << what;
}

TEST(GoldenTest, FifoAggregates) {
  const Workload w(GoldenConfig());
  const auto r = RunScheduler(w, sched::SchedulerKind::kFifo).report;
  ExpectNear(1.718171, r.avg_ect, "fifo avg ect");
  ExpectNear(3.221092, r.tail_ect, "fifo tail ect");
  ExpectNear(10.757873, r.total_cost, "fifo cost");
  ExpectNear(0.046000, r.total_plan_time, "fifo plan time");
}

TEST(GoldenTest, LmtfAggregates) {
  const Workload w(GoldenConfig());
  const auto r = RunScheduler(w, sched::SchedulerKind::kLmtf).report;
  ExpectNear(1.211207, r.avg_ect, "lmtf avg ect");
  ExpectNear(3.277654, r.tail_ect, "lmtf tail ect");
  ExpectNear(55.600862, r.total_cost, "lmtf cost");
  ExpectNear(0.163000, r.total_plan_time, "lmtf plan time");
}

TEST(GoldenTest, PlmtfAggregates) {
  const Workload w(GoldenConfig());
  const auto r = RunScheduler(w, sched::SchedulerKind::kPlmtf).report;
  ExpectNear(0.624633, r.avg_ect, "p-lmtf avg ect");
  ExpectNear(2.521763, r.tail_ect, "p-lmtf tail ect");
  ExpectNear(1.510524, r.total_cost, "p-lmtf cost");
  ExpectNear(0.067900, r.total_plan_time, "p-lmtf plan time");
}

TEST(GoldenTest, FlowLevelAggregates) {
  const Workload w(GoldenConfig());
  const auto r = RunFlowLevel(w).report;
  ExpectNear(3.313337, r.avg_ect, "flow-level avg ect");
  ExpectNear(3.703445, r.tail_ect, "flow-level tail ect");
}

TEST(GoldenTest, HeadlineOrderingHolds) {
  // The pinned values themselves encode the paper's headline ordering;
  // assert it explicitly so the intent survives constant updates.
  const Workload w(GoldenConfig());
  const double fifo = RunScheduler(w, sched::SchedulerKind::kFifo).report.avg_ect;
  const double lmtf = RunScheduler(w, sched::SchedulerKind::kLmtf).report.avg_ect;
  const double plmtf =
      RunScheduler(w, sched::SchedulerKind::kPlmtf).report.avg_ect;
  const double flow = RunFlowLevel(w).report.avg_ect;
  EXPECT_LT(plmtf, lmtf);
  EXPECT_LT(lmtf, fifo);
  EXPECT_LT(fifo, flow);
}

}  // namespace
}  // namespace nu::exp
