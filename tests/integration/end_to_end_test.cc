// End-to-end integration: the full pipeline (topology -> background trace ->
// event generation -> scheduling -> simulation -> reporting) on a k=4
// Fat-Tree, exercising every scheduler including the flow-level baseline.
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace nu::exp {
namespace {

ExperimentConfig Config(double utilization, std::size_t events,
                        std::uint64_t seed = 17) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = utilization;
  config.event_count = events;
  config.min_flows_per_event = 3;
  config.max_flows_per_event = 12;
  config.seed = seed;
  config.sim.cost_model.plan_time_per_flow = 0.002;
  return config;
}

TEST(EndToEndTest, AllSchedulersCompleteAllEvents) {
  const Workload w(Config(0.6, 8));
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kReorder,
        sched::SchedulerKind::kLmtf, sched::SchedulerKind::kPlmtf}) {
    const sim::SimResult result = RunScheduler(w, kind);
    EXPECT_EQ(result.records.size(), 8u) << sched::ToString(kind);
    for (const auto& rec : result.records) {
      EXPECT_GE(rec.exec_start, rec.arrival) << sched::ToString(kind);
      EXPECT_GE(rec.completion, rec.exec_start) << sched::ToString(kind);
    }
    EXPECT_GT(result.report.makespan, 0.0);
  }
}

TEST(EndToEndTest, FlowLevelCompletesToo) {
  const Workload w(Config(0.6, 8));
  const sim::SimResult result = RunFlowLevel(w);
  EXPECT_EQ(result.records.size(), 8u);
}

TEST(EndToEndTest, CostsConsistentBetweenRecordsAndReport) {
  const Workload w(Config(0.65, 6));
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf}) {
    const sim::SimResult result = RunScheduler(w, kind);
    double sum = 0.0;
    for (const auto& rec : result.records) sum += rec.cost;
    EXPECT_NEAR(result.report.total_cost, sum, 1e-6);
  }
}

TEST(EndToEndTest, HigherUtilizationRaisesCost) {
  // Migration cost should (weakly) grow with background pressure — compare
  // a nearly idle fabric against a heavily loaded one across several seeds.
  double low_cost = 0.0, high_cost = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const Workload low(Config(0.1, 6, 100 + static_cast<std::uint64_t>(t)));
    const Workload high(Config(0.85, 6, 100 + static_cast<std::uint64_t>(t)));
    low_cost += RunScheduler(low, sched::SchedulerKind::kFifo).report.total_cost;
    high_cost +=
        RunScheduler(high, sched::SchedulerKind::kFifo).report.total_cost;
  }
  EXPECT_LE(low_cost, high_cost);
}

TEST(EndToEndTest, ReorderNeverCostsMoreProbesThanQueueSquared) {
  const Workload w(Config(0.5, 6));
  const sim::SimResult result =
      RunScheduler(w, sched::SchedulerKind::kReorder);
  EXPECT_LE(result.cost_probes, 6u * 6u);
  EXPECT_GE(result.cost_probes, 6u);  // at least one probe per event
}

TEST(EndToEndTest, LmtfProbesBoundedByAlphaPlusOnePerRound) {
  ExperimentConfig config = Config(0.5, 10);
  config.alpha = 3;
  const Workload w(config);
  const sim::SimResult result = RunScheduler(w, sched::SchedulerKind::kLmtf);
  EXPECT_LE(result.cost_probes, result.rounds * 4u);
}

TEST(EndToEndTest, EventLevelFasterThanFlowLevelOnAverage) {
  // The paper's headline qualitative claim (Figs. 4/5): event-level
  // scheduling (its cost-aware scheduler; P-LMTF here) yields lower average
  // ECT than per-flow interleaving.
  double event_level = 0.0, flow_level = 0.0;
  for (int t = 0; t < 3; ++t) {
    const Workload w(Config(0.65, 8, 200 + static_cast<std::uint64_t>(t)));
    event_level +=
        RunScheduler(w, sched::SchedulerKind::kPlmtf).report.avg_ect;
    flow_level += RunFlowLevel(w).report.avg_ect;
  }
  EXPECT_LT(event_level, flow_level);
}

}  // namespace
}  // namespace nu::exp
