#include "trace/background.h"

#include <gtest/gtest.h>

#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/uniform.h"
#include "trace/yahoo_like.h"

namespace nu::trace {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0}),
        provider(ft),
        network(ft.graph()) {}

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

TEST(BackgroundTest, ReachesModerateUtilization) {
  Fixture fx;
  YahooLikeGenerator gen(fx.ft.hosts(), Rng(1));
  BackgroundOptions options;
  options.target_utilization = 0.3;
  const BackgroundResult result =
      InjectBackground(fx.network, fx.provider, gen, options);
  EXPECT_GE(result.achieved_utilization, 0.3);
  EXPECT_GT(result.placed_flows, 0u);
  EXPECT_TRUE(fx.network.CheckInvariants());
}

TEST(BackgroundTest, NetworkStaysCongestionFree) {
  Fixture fx;
  YahooLikeGenerator gen(fx.ft.hosts(), Rng(2));
  BackgroundOptions options;
  options.target_utilization = 0.6;
  InjectBackground(fx.network, fx.provider, gen, options);
  for (const auto& link : fx.ft.graph().links()) {
    EXPECT_GE(fx.network.Residual(link.id), -1e-6);
  }
}

TEST(BackgroundTest, StopsWhenSaturated) {
  Fixture fx;
  // Huge uniform flows quickly wedge admission before 95% utilization.
  UniformSpec spec;
  spec.min_demand = 400.0;
  spec.max_demand = 900.0;
  UniformGenerator gen(fx.ft.hosts(), Rng(3), spec);
  BackgroundOptions options;
  options.target_utilization = 0.95;
  options.max_consecutive_failures = 50;
  const BackgroundResult result =
      InjectBackground(fx.network, fx.provider, gen, options);
  EXPECT_GT(result.rejected_flows, 0u);
  EXPECT_LT(result.achieved_utilization, 0.95);
}

TEST(BackgroundTest, DeterministicForSeed) {
  Fixture a, b;
  YahooLikeGenerator ga(a.ft.hosts(), Rng(7));
  YahooLikeGenerator gb(b.ft.hosts(), Rng(7));
  BackgroundOptions options;
  options.target_utilization = 0.4;
  const auto ra = InjectBackground(a.network, a.provider, ga, options);
  const auto rb = InjectBackground(b.network, b.provider, gb, options);
  EXPECT_EQ(ra.placed_flows, rb.placed_flows);
  EXPECT_DOUBLE_EQ(ra.achieved_utilization, rb.achieved_utilization);
}

TEST(BackgroundTest, ZeroTargetPlacesNothing) {
  Fixture fx;
  YahooLikeGenerator gen(fx.ft.hosts(), Rng(4));
  BackgroundOptions options;
  options.target_utilization = 0.0;
  const auto result = InjectBackground(fx.network, fx.provider, gen, options);
  EXPECT_EQ(result.placed_flows, 0u);
}

}  // namespace
}  // namespace nu::trace
