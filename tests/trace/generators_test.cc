#include <gtest/gtest.h>

#include <set>

#include "topo/fat_tree.h"
#include "trace/benson.h"
#include "trace/ip_mapper.h"
#include "trace/uniform.h"
#include "trace/yahoo_like.h"

namespace nu::trace {
namespace {

topo::FatTree SmallTree() {
  return topo::FatTree(topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0});
}

TEST(YahooLikeGeneratorTest, ProducesValidFlows) {
  const auto ft = SmallTree();
  YahooLikeGenerator gen(ft.hosts(), Rng(1));
  std::set<NodeId> hosts(ft.hosts().begin(), ft.hosts().end());
  for (int i = 0; i < 5000; ++i) {
    const FlowSpec spec = gen.Next();
    EXPECT_NE(spec.src, spec.dst);
    EXPECT_TRUE(hosts.contains(spec.src));
    EXPECT_TRUE(hosts.contains(spec.dst));
    EXPECT_GT(spec.demand, 0.0);
    EXPECT_GT(spec.duration, 0.0);
  }
}

TEST(YahooLikeGeneratorTest, DeterministicPerSeed) {
  const auto ft = SmallTree();
  YahooLikeGenerator a(ft.hosts(), Rng(9));
  YahooLikeGenerator b(ft.hosts(), Rng(9));
  for (int i = 0; i < 100; ++i) {
    const FlowSpec fa = a.Next();
    const FlowSpec fb = b.Next();
    EXPECT_EQ(fa.src, fb.src);
    EXPECT_EQ(fa.dst, fb.dst);
    EXPECT_DOUBLE_EQ(fa.demand, fb.demand);
    EXPECT_DOUBLE_EQ(fa.duration, fb.duration);
  }
}

TEST(YahooLikeGeneratorTest, EndpointsCoverAllHosts) {
  const auto ft = SmallTree();
  YahooLikeGenerator gen(ft.hosts(), Rng(2));
  std::set<NodeId> seen;
  for (int i = 0; i < 5000; ++i) {
    const FlowSpec spec = gen.Next();
    seen.insert(spec.src);
    seen.insert(spec.dst);
  }
  EXPECT_EQ(seen.size(), ft.host_count());
}

TEST(BensonGeneratorTest, RackLocalityBias) {
  const auto ft = SmallTree();
  BensonConfig config;
  config.rack_locality = 0.8;
  config.rack_size = 2;  // k/2 hosts per edge switch for k=4
  BensonGenerator gen(ft.hosts(), Rng(3), config);
  int local = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const FlowSpec spec = gen.Next();
    EXPECT_NE(spec.src, spec.dst);
    const std::size_t src_rack = ft.HostIndex(spec.src) / 2;
    const std::size_t dst_rack = ft.HostIndex(spec.dst) / 2;
    if (src_rack == dst_rack) ++local;
  }
  // 80% targeted locality plus incidental random hits.
  EXPECT_GT(static_cast<double>(local) / n, 0.7);
}

TEST(BensonGeneratorTest, ZeroLocalityMostlyRemote) {
  const auto ft = SmallTree();
  BensonConfig config;
  config.rack_locality = 0.0;
  config.rack_size = 2;
  BensonGenerator gen(ft.hosts(), Rng(4), config);
  int local = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const FlowSpec spec = gen.Next();
    if (ft.HostIndex(spec.src) / 2 == ft.HostIndex(spec.dst) / 2) ++local;
  }
  // Random remote pick hits the same rack with p = 1/15 for 16 hosts.
  EXPECT_LT(static_cast<double>(local) / n, 0.12);
}

TEST(UniformGeneratorTest, WithinConfiguredRanges) {
  const auto ft = SmallTree();
  UniformSpec spec;
  spec.min_demand = 5.0;
  spec.max_demand = 15.0;
  spec.min_duration = 2.0;
  spec.max_duration = 4.0;
  UniformGenerator gen(ft.hosts(), Rng(5), spec);
  for (int i = 0; i < 5000; ++i) {
    const FlowSpec f = gen.Next();
    EXPECT_GE(f.demand, 5.0);
    EXPECT_LE(f.demand, 15.0);
    EXPECT_GE(f.duration, 2.0);
    EXPECT_LE(f.duration, 4.0);
  }
}

TEST(RandomHostPairTest, DistinctAndUniform) {
  const auto ft = SmallTree();
  Rng rng(6);
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 20000; ++i) {
    const auto [src, dst] = RandomHostPair(ft.hosts(), rng);
    EXPECT_NE(src, dst);
    pairs.emplace(src, dst);
  }
  // 16 hosts -> 240 ordered pairs; all should appear.
  EXPECT_EQ(pairs.size(), 240u);
}

TEST(IpMapperTest, StableAndInRange) {
  const auto ft = SmallTree();
  const IpMapper mapper(ft.hosts());
  const NodeId a = mapper.Map("10.0.0.1");
  EXPECT_EQ(a, mapper.Map("10.0.0.1"));
  std::set<NodeId> hosts(ft.hosts().begin(), ft.hosts().end());
  EXPECT_TRUE(hosts.contains(a));
}

TEST(IpMapperTest, PairNeverCollides) {
  const auto ft = SmallTree();
  const IpMapper mapper(ft.hosts());
  for (int i = 0; i < 1000; ++i) {
    const std::string ip = "192.168.0." + std::to_string(i);
    const auto [src, dst] = mapper.MapPair(ip, ip);
    EXPECT_NE(src, dst);
  }
}

TEST(HashIpTest, DifferentStringsUsuallyDiffer) {
  EXPECT_NE(HashIp("10.0.0.1"), HashIp("10.0.0.2"));
  EXPECT_EQ(HashIp("x"), HashIp("x"));
}

}  // namespace
}  // namespace nu::trace
