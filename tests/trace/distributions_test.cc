#include "trace/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace nu::trace {
namespace {

TEST(HeavyTailSpecTest, RespectsClamps) {
  HeavyTailSpec spec;
  spec.body_mu = 0.0;
  spec.body_sigma = 2.0;
  spec.elephant_fraction = 0.5;
  spec.tail_scale = 10.0;
  spec.tail_shape = 1.1;
  spec.min_value = 1.0;
  spec.max_value = 50.0;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double v = spec.Sample(rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 50.0);
  }
}

TEST(HeavyTailSpecTest, ElephantFractionZeroIsPureLognormal) {
  HeavyTailSpec spec;
  spec.body_mu = 1.0;
  spec.body_sigma = 0.5;
  spec.elephant_fraction = 0.0;
  spec.tail_scale = 1e9;  // would be obvious if sampled
  spec.max_value = 1e12;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(spec.Sample(rng), 1e6);
  }
}

TEST(HeavyTailSpecTest, HeavyTailHasHighMaxToMedianRatio) {
  const TrafficSpec spec = YahooLikeSpec();
  Rng rng(3);
  std::vector<double> demands;
  for (int i = 0; i < 50000; ++i) demands.push_back(spec.demand.Sample(rng));
  std::sort(demands.begin(), demands.end());
  const double median = demands[demands.size() / 2];
  const double p999 = demands[static_cast<std::size_t>(
      0.999 * static_cast<double>(demands.size()))];
  // Heavy tail: the 99.9th percentile dwarfs the median.
  EXPECT_GT(p999 / median, 20.0);
}

TEST(TrafficSpecTest, YahooDemandsWithinLinkCapacity) {
  const TrafficSpec spec = YahooLikeSpec();
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    const double d = spec.demand.Sample(rng);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 800.0);  // capped below 1 Gbps
  }
}

TEST(TrafficSpecTest, BensonSmallerThanYahooOnAverage) {
  Rng rng1(5), rng2(5);
  const TrafficSpec yahoo = YahooLikeSpec();
  const TrafficSpec benson = BensonSpec();
  double yahoo_sum = 0.0, benson_sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    yahoo_sum += yahoo.demand.Sample(rng1);
    benson_sum += benson.demand.Sample(rng2);
  }
  EXPECT_GT(yahoo_sum / n, benson_sum / n);
}

TEST(TrafficSpecTest, DurationsPositiveAndBounded) {
  const TrafficSpec spec = BensonSpec();
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    const double d = spec.duration.Sample(rng);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 180.0);
  }
}

}  // namespace
}  // namespace nu::trace
