#include "trace/trace_loader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/fat_tree.h"
#include "trace/yahoo_like.h"

namespace nu::trace {
namespace {

TEST(ParseTraceCsvTest, HeaderWithDemand) {
  const auto records = ParseTraceCsv(
      "src_ip,dst_ip,demand_mbps,duration_s\n"
      "10.0.0.1,10.0.0.2,25.5,3.0\n"
      "10.0.0.3,10.0.0.4,1.0,60.0\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].src_ip, "10.0.0.1");
  EXPECT_DOUBLE_EQ(records[0].demand, 25.5);
  EXPECT_DOUBLE_EQ(records[1].duration, 60.0);
}

TEST(ParseTraceCsvTest, HeaderWithBytesDerivesDemand) {
  // 1 MB over 8 seconds = 1e6 * 8 bits / 1e6 / 8 s = 1 Mbps.
  const auto records = ParseTraceCsv(
      "src_ip,dst_ip,bytes,duration_s\n"
      "a,b,1000000,8\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NEAR(records[0].demand, 1.0, 1e-9);
}

TEST(ParseTraceCsvTest, HeaderlessPositional) {
  const auto records = ParseTraceCsv("a,b,10,5\nc,d,20,1\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].demand, 10.0);
}

TEST(ParseTraceCsvTest, SkipsDegenerateRecords) {
  const auto records = ParseTraceCsv(
      "src_ip,dst_ip,demand_mbps,duration_s\n"
      "a,a,10,5\n"      // self loop
      "a,b,0,5\n"       // zero demand
      "a,b,10,0\n"      // zero duration
      "a,b,10,5\n");    // valid
  ASSERT_EQ(records.size(), 1u);
}

TEST(ParseTraceCsvTest, SkipsComments) {
  const auto records = ParseTraceCsv("# comment line\na,b,10,5\n");
  EXPECT_EQ(records.size(), 1u);
}

TEST(WriteTraceCsvTest, RoundTripsThroughLoader) {
  std::vector<TraceRecord> records{
      {"10.0.0.1", "10.0.0.2", 25.5, 3.0},
      {"10.0.0.3", "10.0.0.4", 1.25, 60.0},
  };
  std::ostringstream out;
  WriteTraceCsv(out, records);
  const auto parsed = ParseTraceCsv(out.str());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].src_ip, "10.0.0.1");
  EXPECT_DOUBLE_EQ(parsed[0].demand, 25.5);
  EXPECT_DOUBLE_EQ(parsed[1].duration, 60.0);
}

TEST(SampleTraceTest, ExportsGeneratorWorkload) {
  const topo::FatTree ft(
      topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  trace::YahooLikeGenerator gen(ft.hosts(), Rng(42));
  const auto records = SampleTrace(gen, 50);
  ASSERT_EQ(records.size(), 50u);
  for (const TraceRecord& rec : records) {
    EXPECT_NE(rec.src_ip, rec.dst_ip);
    EXPECT_GT(rec.demand, 0.0);
    EXPECT_GT(rec.duration, 0.0);
  }
  // Exported workload replays cleanly.
  std::ostringstream out;
  WriteTraceCsv(out, records);
  const auto parsed = ParseTraceCsv(out.str());
  EXPECT_EQ(parsed.size(), 50u);
  TraceReplayGenerator replay(parsed, ft.hosts());
  const FlowSpec spec = replay.Next();
  EXPECT_NE(spec.src, spec.dst);
}

TEST(TraceReplayGeneratorTest, CyclesAndMapsHosts) {
  const topo::FatTree ft(
      topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  std::vector<TraceRecord> records{
      {"1.1.1.1", "2.2.2.2", 10.0, 2.0},
      {"3.3.3.3", "4.4.4.4", 20.0, 4.0},
  };
  TraceReplayGenerator gen(records, ft.hosts());
  EXPECT_EQ(gen.record_count(), 2u);
  const FlowSpec first = gen.Next();
  const FlowSpec second = gen.Next();
  const FlowSpec third = gen.Next();  // wraps to record 0
  EXPECT_DOUBLE_EQ(first.demand, 10.0);
  EXPECT_DOUBLE_EQ(second.demand, 20.0);
  EXPECT_EQ(third.src, first.src);
  EXPECT_NE(first.src, first.dst);
}

}  // namespace
}  // namespace nu::trace
