// Property tests for the migration optimizer over randomized networks and
// loads: every feasible plan must actually free the desired path, keep the
// network congestion-free at every intermediate step, never move the same
// flow twice, and report its cost truthfully.
#include <gtest/gtest.h>

#include <set>

#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "topo/random_graph.h"
#include "update/migration.h"

namespace nu::update {
namespace {

struct RandomLoad {
  static void Fill(net::Network& network, const topo::PathProvider& provider,
                   std::span<const NodeId> endpoints, Rng& rng,
                   int attempts) {
    for (int i = 0; i < attempts; ++i) {
      const NodeId src = endpoints[rng.Index(endpoints.size())];
      const NodeId dst = endpoints[rng.Index(endpoints.size())];
      if (src == dst) continue;
      const auto& paths = provider.Paths(src, dst);
      if (paths.empty()) continue;
      const topo::Path& path = paths[rng.Index(paths.size())];
      const double demand = rng.Uniform(5.0, 50.0);
      if (!network.CanPlace(demand, path)) continue;
      flow::Flow f;
      f.src = src;
      f.dst = dst;
      f.demand = demand;
      f.duration = rng.Uniform(1.0, 10.0);
      network.Place(std::move(f), path);
    }
  }
};

class MigrationPropertyTest
    : public ::testing::TestWithParam<MigrationStrategy> {};

TEST_P(MigrationPropertyTest, FeasiblePlansAreSoundOnFatTree) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  const topo::FatTreePathProvider provider(ft);
  MigrationOptions options;
  options.strategy = GetParam();
  const MigrationOptimizer optimizer(provider, options);

  int feasible_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    net::Network network(ft.graph());
    RandomLoad::Fill(network, provider, ft.hosts(), rng, 150);
    ASSERT_TRUE(network.CheckInvariants());

    const NodeId src = ft.host(rng.Index(ft.host_count()));
    NodeId dst = ft.host(rng.Index(ft.host_count()));
    if (src == dst) continue;
    const double demand = rng.Uniform(20.0, 90.0);
    const auto& paths = provider.Paths(src, dst);
    const topo::Path& desired = paths[rng.Index(paths.size())];

    const MigrationPlan plan = optimizer.Plan(network, demand, desired);
    if (!plan.feasible) continue;
    ++feasible_count;

    // Cost equals the sum of move traffic.
    double sum = 0.0;
    std::set<FlowId> moved;
    for (const MigrationMove& move : plan.moves) {
      sum += move.traffic;
      EXPECT_TRUE(moved.insert(move.flow).second) << "flow moved twice";
      EXPECT_DOUBLE_EQ(move.traffic, network.FlowOf(move.flow).demand);
    }
    EXPECT_NEAR(sum, plan.migrated_traffic, 1e-9);

    // Applying move-by-move keeps every intermediate state congestion-free
    // and ends with the desired path feasible.
    for (const MigrationMove& move : plan.moves) {
      network.Reroute(move.flow, network.path_registry().Get(move.new_path));
      ASSERT_TRUE(network.CheckInvariants());
    }
    EXPECT_TRUE(network.CanPlace(demand, desired));

    // No move lands on the desired path.
    for (const MigrationMove& move : plan.moves) {
      for (LinkId moved_link : network.path_registry().Get(move.new_path).links) {
        for (LinkId desired_link : desired.links) {
          EXPECT_NE(moved_link, desired_link);
        }
      }
    }
  }
  EXPECT_GT(feasible_count, 0) << "property never exercised";
}

TEST_P(MigrationPropertyTest, FeasiblePlansAreSoundOnRandomGraphs) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  MigrationOptions options;
  options.strategy = GetParam();

  int feasible_count = 0;
  for (int trial = 0; trial < 15; ++trial) {
    topo::RandomGraphConfig graph_config;
    graph_config.nodes = 12;
    graph_config.edge_probability = 0.3;
    graph_config.min_capacity = 100.0;
    graph_config.max_capacity = 100.0;
    const topo::Graph graph = BuildRandomConnectedGraph(graph_config, rng);
    const topo::KspPathProvider provider(graph, 4);
    const MigrationOptimizer optimizer(provider, options);

    std::vector<NodeId> nodes;
    for (const auto& n : graph.nodes()) nodes.push_back(n.id);

    net::Network network(graph);
    RandomLoad::Fill(network, provider, nodes, rng, 60);

    const NodeId src = nodes[rng.Index(nodes.size())];
    NodeId dst = nodes[rng.Index(nodes.size())];
    if (src == dst) continue;
    const auto& paths = provider.Paths(src, dst);
    if (paths.empty()) continue;
    const double demand = rng.Uniform(30.0, 90.0);
    const topo::Path& desired = paths[rng.Index(paths.size())];

    const MigrationPlan plan = optimizer.Plan(network, demand, desired);
    if (!plan.feasible) continue;
    ++feasible_count;
    MigrationOptimizer::Apply(network, plan);
    EXPECT_TRUE(network.CanPlace(demand, desired));
    EXPECT_TRUE(network.CheckInvariants());
  }
  // Random graphs with tight capacity should exercise at least one feasible
  // migration across the trials (seeded, so deterministic).
  EXPECT_GE(feasible_count, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MigrationPropertyTest,
    ::testing::Values(MigrationStrategy::kGreedyLargestFirst,
                      MigrationStrategy::kBestFitDecreasing,
                      MigrationStrategy::kLocalSearch,
                      MigrationStrategy::kExactSmall));

TEST(MigrationCostOrderingTest, SmarterStrategiesNeverCostMorePerLink) {
  // On single-congested-link instances the strategies' per-link selections
  // are directly comparable: exact <= local-search <= best-fit (holds
  // because they optimize the same one-shot cover).
  Rng rng(3000);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 3 + rng.Index(12);
    std::vector<double> weights;
    for (std::size_t i = 0; i < n; ++i) {
      weights.push_back(rng.Uniform(1.0, 30.0));
    }
    double total = 0.0;
    for (double w : weights) total += w;
    const double deficit = rng.Uniform(1.0, total);

    auto cost = [&](MigrationStrategy s) {
      const auto sel = SelectCoverSet(weights, deficit, s);
      double sum = 0.0;
      for (std::size_t i : *sel) sum += weights[i];
      return sum;
    };
    const double exact = cost(MigrationStrategy::kExactSmall);
    const double local = cost(MigrationStrategy::kLocalSearch);
    const double bfd = cost(MigrationStrategy::kBestFitDecreasing);
    EXPECT_LE(exact, local + 1e-9);
    EXPECT_LE(local, bfd + 1e-9);
    EXPECT_GE(exact, deficit);
  }
}

}  // namespace
}  // namespace nu::update
