// Simulator-level invariants over randomized workloads: every event
// completes exactly once, causality holds (arrival <= exec_start <=
// completion), reports agree with records, and scheduler choice never breaks
// bookkeeping.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "metrics/fairness.h"

namespace nu::exp {
namespace {

ExperimentConfig RandomizedConfig(Rng& rng) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = rng.Uniform(0.2, 0.7);
  config.event_count = 2 + rng.Index(8);
  config.min_flows_per_event = 1 + rng.Index(3);
  config.max_flows_per_event =
      config.min_flows_per_event + rng.Index(10);
  config.alpha = 1 + rng.Index(5);
  config.seed = rng.Next();
  config.mean_interarrival = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.5, 5.0);
  config.sim.cost_model.plan_time_per_flow = 0.002;
  return config;
}

class SimulatorPropertyTest
    : public ::testing::TestWithParam<sched::SchedulerKind> {};

TEST_P(SimulatorPropertyTest, InvariantsHoldOnRandomWorkloads) {
  Rng rng(555 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const ExperimentConfig config = RandomizedConfig(rng);
    const Workload workload(config);
    const sim::SimResult result = RunScheduler(workload, GetParam());

    ASSERT_EQ(result.records.size(), config.event_count);
    double total_cost = 0.0;
    for (const auto& rec : result.records) {
      EXPECT_GE(rec.exec_start, rec.arrival);
      EXPECT_GE(rec.completion, rec.exec_start);
      EXPECT_GE(rec.cost, 0.0);
      EXPECT_GT(rec.flow_count, 0u);
      total_cost += rec.cost;
    }
    EXPECT_NEAR(result.report.total_cost, total_cost, 1e-6);
    EXPECT_GE(result.report.tail_ect, result.report.avg_ect - 1e-9);
    EXPECT_GE(result.report.worst_queuing_delay,
              result.report.avg_queuing_delay - 1e-9);
    EXPECT_GE(result.rounds, 1u);
    EXPECT_LE(result.rounds, config.event_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, SimulatorPropertyTest,
    ::testing::Values(sched::SchedulerKind::kFifo,
                      sched::SchedulerKind::kReorder,
                      sched::SchedulerKind::kLmtf,
                      sched::SchedulerKind::kPlmtf));

TEST(FlowLevelPropertyTest, InvariantsHoldOnRandomWorkloads) {
  Rng rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    const ExperimentConfig config = RandomizedConfig(rng);
    const Workload workload(config);
    const sim::SimResult result = RunFlowLevel(workload);
    ASSERT_EQ(result.records.size(), config.event_count);
    for (const auto& rec : result.records) {
      EXPECT_GE(rec.exec_start, rec.arrival);
      EXPECT_GE(rec.completion, rec.exec_start);
    }
  }
}

TEST(FairnessPropertyTest, FifoIsAlwaysOrderPerfect) {
  // FIFO must never invert arrival order, whatever the workload.
  Rng rng(888);
  for (int trial = 0; trial < 6; ++trial) {
    const ExperimentConfig config = RandomizedConfig(rng);
    const Workload workload(config);
    const sim::SimResult result =
        RunScheduler(workload, sched::SchedulerKind::kFifo);
    const metrics::FairnessReport fairness =
        metrics::ComputeFairness(result.records);
    EXPECT_DOUBLE_EQ(fairness.order_violation, 0.0);
    EXPECT_EQ(fairness.worst_pushback, 0u);
  }
}

TEST(FairnessPropertyTest, SamplingSchedulersBoundedByReorder) {
  // LMTF inspects only alpha+1 candidates per round, so its displacement is
  // bounded; sanity-check the fairness metrics stay in range on real runs.
  Rng rng(889);
  for (int trial = 0; trial < 6; ++trial) {
    const ExperimentConfig config = RandomizedConfig(rng);
    const Workload workload(config);
    for (const auto kind :
         {sched::SchedulerKind::kLmtf, sched::SchedulerKind::kPlmtf}) {
      const sim::SimResult result = RunScheduler(workload, kind);
      const metrics::FairnessReport fairness =
          metrics::ComputeFairness(result.records);
      EXPECT_GE(fairness.order_violation, 0.0);
      EXPECT_LE(fairness.order_violation, 1.0);
      EXPECT_LE(fairness.worst_pushback, config.event_count);
      EXPECT_GT(fairness.jain_queuing_delay, 0.0);
      EXPECT_LE(fairness.jain_queuing_delay, 1.0 + 1e-9);
    }
  }
}

TEST(SeedSensitivityTest, DifferentSimSeedsOnlyAffectSampling) {
  // FIFO ignores the RNG entirely, so sim seed must not change its result.
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.5;
  config.event_count = 5;
  config.seed = 31;
  const Workload workload(config);

  sim::SimConfig a = config.sim;
  a.seed = 1;
  sim::SimConfig b = config.sim;
  b.seed = 2;
  sim::Simulator sim_a(workload.network(), workload.paths(), a);
  sim::Simulator sim_b(workload.network(), workload.paths(), b);
  sched::FifoScheduler fifo_a, fifo_b;
  const auto ra = sim_a.Run(fifo_a, workload.events());
  const auto rb = sim_b.Run(fifo_b, workload.events());
  EXPECT_DOUBLE_EQ(ra.report.avg_ect, rb.report.avg_ect);
  EXPECT_DOUBLE_EQ(ra.report.total_cost, rb.report.total_cost);
}

}  // namespace
}  // namespace nu::exp
