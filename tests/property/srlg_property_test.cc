// Correlated-failure property: random SRLG fault plans (pod power events,
// core-plane losses, rolling drains) x random workloads, with the runtime
// invariant auditor on — every event reaches a terminal state and the
// auditor records ZERO violations after recovery, for all three of the
// paper's schedulers.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "fault/srlg.h"

namespace nu::exp {
namespace {

ExperimentConfig RandomizedConfig(Rng& rng) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = rng.Uniform(0.3, 0.6);
  config.event_count = 4 + rng.Index(6);
  config.min_flows_per_event = 1 + rng.Index(3);
  config.max_flows_per_event = config.min_flows_per_event + rng.Index(6);
  config.alpha = 1 + rng.Index(4);
  config.seed = rng.Next();
  config.mean_interarrival = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.2, 1.5);
  config.sim.cost_model.plan_time_per_flow = 0.002;
  return config;
}

class SrlgPropertyTest
    : public ::testing::TestWithParam<sched::SchedulerKind> {};

TEST_P(SrlgPropertyTest, ZeroViolationsAfterCorrelatedRecovery) {
  Rng rng(2026 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 5; ++trial) {
    const ExperimentConfig config = RandomizedConfig(rng);
    const Workload workload(config);

    sim::SimConfig sim_config = config.sim;
    sim_config.seed = config.seed;
    // A random correlated-failure schedule over the canonical Fat-Tree
    // SRLG catalog: every incident recovers within the run (outage > 0),
    // so the terminal audit judges the POST-recovery state.
    fault::RandomSrlgFaultOptions fault_options;
    fault_options.incidents = 1 + rng.Index(2);
    fault_options.first_failure = rng.Uniform(0.2, 1.0);
    fault_options.spacing = rng.Uniform(1.0, 3.0);
    fault_options.outage = rng.Uniform(1.0, 3.0);
    fault_options.drain_probability = 0.4;
    fault_options.drain_stagger = rng.Uniform(0.2, 0.8);
    sim_config.faults.plan = fault::MakeRandomSrlgFaultPlan(
        fault::DeriveFatTreeSrlgs(workload.fat_tree()), fault_options, rng);
    sim_config.faults.plan.Validate(workload.network().graph());
    sim_config.faults.flaky.failure_probability = rng.Uniform(0.0, 0.2);
    sim_config.faults.retry.max_attempts = 3;
    sim_config.faults.retry.base_delay = 0.01;
    sim_config.guard.auditor.enabled = true;
    sim_config.guard.auditor.mode = guard::AuditMode::kLogAndCount;
    sim_config.guard.auditor.cadence = 4 + rng.Index(8);

    sim::Simulator sim(workload.network(), workload.paths(), sim_config);
    const auto scheduler =
        sched::MakeScheduler(GetParam(), sched::LmtfConfig{config.alpha});
    const sim::SimResult result = sim.Run(*scheduler, workload.events());

    ASSERT_EQ(result.records.size(), config.event_count);
    for (const auto& rec : result.records) {
      EXPECT_TRUE(rec.terminal()) << "event left pending, trial " << trial;
    }
    EXPECT_TRUE(result.violations.empty())
        << "trial " << trial << ": " << result.violations.size()
        << " violations, first at round " << result.violations[0].round
        << " epoch " << result.violations[0].topology_epoch;
    EXPECT_EQ(result.guard_stats.audit_violations, 0u) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SrlgPropertyTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf));

}  // namespace
}  // namespace nu::exp
