// Guard-level property: random workloads x random fault plans, with the
// overload guard, watchdog, and auditor all enabled — every event reaches a
// terminal state, the bounded queue never exceeds its bound, and the
// runtime invariant auditor finds ZERO violations at the end of every run,
// for all three of the paper's schedulers.
#include <gtest/gtest.h>

#include <array>

#include "exp/runner.h"
#include "fault/fault_plan.h"

namespace nu::exp {
namespace {

ExperimentConfig RandomizedConfig(Rng& rng) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = rng.Uniform(0.3, 0.7);
  config.event_count = 4 + rng.Index(8);
  config.min_flows_per_event = 1 + rng.Index(3);
  config.max_flows_per_event = config.min_flows_per_event + rng.Index(8);
  config.alpha = 1 + rng.Index(4);
  config.seed = rng.Next();
  config.mean_interarrival = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.2, 2.0);
  config.sim.cost_model.plan_time_per_flow = 0.002;
  return config;
}

/// Guard settings tight enough to actually engage under faults: a small
/// queue bound, deadlines a blocked event will overrun, and the auditor on
/// a short cadence in log-and-count mode (violations must be COUNTED, not
/// thrown, so a buggy invariant would fail the assertions below visibly).
void EnableGuard(sim::SimConfig& config, Rng& rng) {
  config.guard.overload.max_queue_length = 3 + rng.Index(6);
  const std::array<guard::OverloadPolicy, 3> policies = {
      guard::OverloadPolicy::kRejectNew, guard::OverloadPolicy::kShedOldest,
      guard::OverloadPolicy::kShedCostliest};
  config.guard.overload.policy = policies[rng.Index(policies.size())];
  config.guard.deadline.base_deadline = rng.Uniform(2.0, 6.0);
  config.guard.deadline.per_flow_deadline = 0.2;
  config.guard.deadline.max_failures = 2 + rng.Index(3);
  config.guard.deadline.requeue_backoff = 0.25;
  config.guard.auditor.enabled = true;
  config.guard.auditor.mode = guard::AuditMode::kLogAndCount;
  config.guard.auditor.cadence = 4 + rng.Index(12);
}

class GuardPropertyTest
    : public ::testing::TestWithParam<sched::SchedulerKind> {};

TEST_P(GuardPropertyTest, AuditorStaysSilentUnderChaos) {
  Rng rng(4242 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const ExperimentConfig config = RandomizedConfig(rng);
    const Workload workload(config);

    sim::SimConfig sim_config = config.sim;
    sim_config.seed = config.seed;
    // Random link outages plus a flaky install pipeline.
    fault::RandomLinkFaultOptions fault_options;
    fault_options.failures = 1 + rng.Index(3);
    fault_options.first_failure = rng.Uniform(0.1, 1.0);
    fault_options.spacing = rng.Uniform(0.5, 2.0);
    fault_options.outage = rng.Bernoulli(0.7) ? rng.Uniform(1.0, 4.0) : -1.0;
    sim_config.faults.plan = fault::MakeRandomLinkFaultPlan(
        workload.network().graph(), fault_options, rng);
    sim_config.faults.flaky.failure_probability = rng.Uniform(0.0, 0.3);
    sim_config.faults.retry.max_attempts = 3;
    sim_config.faults.retry.base_delay = 0.01;
    EnableGuard(sim_config, rng);

    sim::Simulator sim(workload.network(), workload.paths(), sim_config);
    const auto scheduler =
        sched::MakeScheduler(GetParam(), sched::LmtfConfig{config.alpha});
    const sim::SimResult result = sim.Run(*scheduler, workload.events());

    ASSERT_EQ(result.records.size(), config.event_count);
    std::size_t completed = 0, shed = 0, quarantined = 0;
    for (const auto& rec : result.records) {
      ASSERT_TRUE(rec.terminal());
      switch (rec.status) {
        case metrics::TerminalStatus::kCompleted:
          ++completed;
          EXPECT_GE(rec.completion, rec.exec_start);
          break;
        case metrics::TerminalStatus::kQuarantined:
          ++quarantined;
          EXPECT_GT(rec.deadline_misses, 0u);
          break;
        default:
          ++shed;  // kShed or kAborted
          break;
      }
    }
    EXPECT_EQ(completed + shed + quarantined, config.event_count);
    EXPECT_EQ(completed, result.report.events_completed);
    // The bounded queue must never have exceeded its bound.
    EXPECT_LE(result.guard_stats.max_queue_length,
              sim_config.guard.overload.max_queue_length);
    // The acceptance property: a healthy simulator audits clean, every
    // trial, every scheduler, faults or not.
    EXPECT_GT(result.guard_stats.audits_run, 0u);
    EXPECT_EQ(result.guard_stats.audit_violations, 0u)
        << "scheduler=" << ToString(GetParam()) << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, GuardPropertyTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf));

}  // namespace
}  // namespace nu::exp
