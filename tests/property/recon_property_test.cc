// Grey-failure property: random grey models (lying acks, stragglers,
// silent rule loss; mixed windows and per-switch targeting) x random
// workloads, reconciler on — every run converges to zero unexcused drift,
// the auditor records no violations, every event terminates, and reruns
// are byte-identical, for all three of the paper's schedulers.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/runner.h"
#include "metrics/export.h"

namespace nu::exp {
namespace {

ExperimentConfig RandomizedConfig(Rng& rng) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = rng.Uniform(0.3, 0.6);
  config.event_count = 4 + rng.Index(6);
  config.min_flows_per_event = 1 + rng.Index(3);
  config.max_flows_per_event = config.min_flows_per_event + rng.Index(6);
  config.alpha = 1 + rng.Index(4);
  config.seed = rng.Next();
  config.mean_interarrival = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.2, 1.5);
  config.sim.cost_model.plan_time_per_flow = 0.002;
  return config;
}

/// 1-3 random specs; ~1/4 are windowed, probabilities kept moderate so a
/// straggler/loss storm cannot outpace the repair budget by construction.
fault::GreyFailureModel RandomGreyModel(Rng& rng) {
  fault::GreyFailureModel model;
  const std::size_t count = 1 + rng.Index(3);
  for (std::size_t i = 0; i < count; ++i) {
    fault::GreyFailureSpec spec;
    switch (rng.Index(3)) {
      case 0:
        spec.kind = fault::GreyKind::kAckLie;
        spec.probability = rng.Uniform(0.05, 0.3);
        break;
      case 1:
        spec.kind = fault::GreyKind::kStraggler;
        spec.probability = rng.Uniform(0.05, 0.4);
        spec.min_delay = rng.Uniform(0.05, 0.3);
        spec.max_delay = spec.min_delay + rng.Uniform(0.1, 1.0);
        break;
      default:
        spec.kind = fault::GreyKind::kRuleLoss;
        spec.probability = rng.Uniform(0.05, 0.2);
        spec.min_delay = rng.Uniform(0.2, 1.0);
        spec.max_delay = spec.min_delay + rng.Uniform(0.5, 2.0);
        break;
    }
    if (rng.Bernoulli(0.25)) {
      spec.start = rng.Uniform(0.0, 1.0);
      spec.duration = rng.Uniform(0.5, 3.0);
    }
    model.specs.push_back(spec);
  }
  return model.Validate();
}

std::string RecordsCsv(const sim::SimResult& result) {
  std::ostringstream out;
  metrics::WriteRecordsCsv(out, result.records);
  return out.str();
}

class ReconPropertyTest
    : public ::testing::TestWithParam<sched::SchedulerKind> {};

TEST_P(ReconPropertyTest, RandomGreyRunsConvergeDeterministically) {
  Rng rng(20260809 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 5; ++trial) {
    const ExperimentConfig config = RandomizedConfig(rng);
    const Workload workload(config);

    sim::SimConfig sim_config = config.sim;
    sim_config.seed = config.seed;
    sim_config.faults.grey = RandomGreyModel(rng);
    sim_config.recon.enabled = true;
    sim_config.guard.auditor.enabled = true;
    sim_config.guard.auditor.mode = guard::AuditMode::kLogAndCount;
    sim_config.guard.auditor.cadence = 4 + rng.Index(8);

    const auto run = [&] {
      sim::Simulator sim(workload.network(), workload.paths(), sim_config);
      const auto scheduler =
          sched::MakeScheduler(GetParam(), sched::LmtfConfig{config.alpha});
      return sim.Run(*scheduler, workload.events());
    };
    const sim::SimResult result = run();
    const std::string label =
        "trial " + std::to_string(trial) + " grey " +
        fault::FormatGreyModel(sim_config.faults.grey);

    ASSERT_EQ(result.records.size(), config.event_count) << label;
    for (const auto& rec : result.records) {
      EXPECT_TRUE(rec.terminal()) << "event left pending, " << label;
    }
    // Convergence: the drain gate held, so the only divergence a run may
    // end with is what the reconciler explicitly gave up on.
    EXPECT_LE(result.report.drift_residual_rules,
              result.report.drift_rules_abandoned)
        << label;
    EXPECT_TRUE(result.violations.empty())
        << label << ": " << result.violations.size() << " violations";
    EXPECT_EQ(result.guard_stats.audit_violations, 0u) << label;

    // Determinism: the identical config replays to identical bytes.
    EXPECT_EQ(RecordsCsv(result), RecordsCsv(run())) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ReconPropertyTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf));

}  // namespace
}  // namespace nu::exp
