// Graph/topology property tests over random instances.
#include <gtest/gtest.h>

#include "topo/fat_tree.h"
#include "topo/ksp.h"
#include "topo/random_graph.h"
#include "topo/shortest_path.h"

namespace nu::topo {
namespace {

TEST(RandomGraphPropertyTest, AlwaysStronglyConnected) {
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    RandomGraphConfig config;
    config.nodes = 2 + rng.Index(30);
    config.edge_probability = rng.Uniform(0.0, 0.5);
    const Graph g = BuildRandomConnectedGraph(config, rng);
    EXPECT_TRUE(IsStronglyConnected(g))
        << "trial " << trial << " nodes " << config.nodes;
  }
}

TEST(RandomGraphPropertyTest, CapacitiesWithinRange) {
  Rng rng(11);
  RandomGraphConfig config;
  config.nodes = 20;
  config.min_capacity = 50.0;
  config.max_capacity = 150.0;
  const Graph g = BuildRandomConnectedGraph(config, rng);
  for (const Link& l : g.links()) {
    EXPECT_GE(l.capacity, 50.0);
    EXPECT_LE(l.capacity, 150.0);
  }
}

TEST(RandomGraphPropertyTest, BfsDistancesSymmetricOnBidirectionalGraphs) {
  Rng rng(12);
  RandomGraphConfig config;
  config.nodes = 15;
  config.edge_probability = 0.2;
  const Graph g = BuildRandomConnectedGraph(config, rng);
  for (NodeId::rep_type s = 0; s < 5; ++s) {
    const auto from_s = BfsDistances(g, NodeId{s});
    for (NodeId::rep_type t = 0; t < g.node_count(); ++t) {
      const auto from_t = BfsDistances(g, NodeId{t});
      EXPECT_EQ(from_s[t], from_t[s]);
    }
  }
}

TEST(RandomGraphPropertyTest, DijkstraNeverLongerThanAnyKspPath) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    RandomGraphConfig config;
    config.nodes = 12;
    config.edge_probability = 0.3;
    const Graph g = BuildRandomConnectedGraph(config, rng);
    const NodeId src{0};
    const NodeId dst{static_cast<NodeId::rep_type>(g.node_count() - 1)};
    const auto best = DijkstraShortestPath(g, src, dst);
    ASSERT_TRUE(best.has_value());
    for (const Path& p : YenKShortestPaths(g, src, dst, 5)) {
      EXPECT_LE(best->hop_count(), p.hop_count());
    }
  }
}

TEST(FatTreePropertyTest, AllHostPairsHaveExpectedPathCounts) {
  const FatTree ft(FatTreeConfig{.k = 6, .link_capacity = 1000.0});
  Rng rng(14);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t a = rng.Index(ft.host_count());
    std::size_t b = rng.Index(ft.host_count());
    if (a == b) continue;
    const NodeId src = ft.host(a);
    const NodeId dst = ft.host(b);
    const auto paths = ft.HostPaths(src, dst);
    const std::size_t half = ft.k() / 2;
    std::size_t expected = 0;
    if (ft.PodOfHost(src) != ft.PodOfHost(dst)) {
      expected = half * half;
    } else if (ft.EdgeIndexOfHost(src) != ft.EdgeIndexOfHost(dst)) {
      expected = half;
    } else {
      expected = 1;
    }
    EXPECT_EQ(paths.size(), expected);
    for (const Path& p : paths) {
      EXPECT_TRUE(ft.graph().IsValidPath(p));
      EXPECT_EQ(p.source(), src);
      EXPECT_EQ(p.destination(), dst);
    }
  }
}

TEST(FatTreePropertyTest, EnumeratedPathsAreLinkDisjointInTheCore) {
  // Any two inter-pod paths between the same host pair differ in their core
  // switch, hence in their agg->core->agg links.
  const FatTree ft(FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const auto paths = ft.HostPaths(ft.host(0), ft.host(12));
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].nodes[3], paths[j].nodes[3]);
    }
  }
}

}  // namespace
}  // namespace nu::topo
