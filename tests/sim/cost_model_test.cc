#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace nu::sim {
namespace {

TEST(CostModelTest, ProbeTimeLinearInFlows) {
  CostModel model;
  model.plan_time_per_flow = 0.01;
  EXPECT_DOUBLE_EQ(model.ProbeTime(0), 0.0);
  EXPECT_DOUBLE_EQ(model.ProbeTime(10), 0.1);
  EXPECT_DOUBLE_EQ(model.ProbeTime(100), 1.0);
}

TEST(CostModelTest, CoFeasibilityIsFractionOfProbe) {
  CostModel model;
  model.plan_time_per_flow = 0.01;
  model.cofeasibility_factor = 0.2;
  EXPECT_DOUBLE_EQ(model.CoFeasibilityTime(50),
                   0.2 * model.ProbeTime(50));
}

TEST(CostModelTest, MigrationTimeScalesWithTraffic) {
  CostModel model;
  model.migration_rate = 2000.0;
  EXPECT_DOUBLE_EQ(model.MigrationTime(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.MigrationTime(1000.0), 0.5);
  EXPECT_DOUBLE_EQ(model.MigrationTime(4000.0), 2.0);
}

TEST(CostModelTest, InstallTimeLinearInFlows) {
  CostModel model;
  model.install_time_per_flow = 0.05;
  EXPECT_DOUBLE_EQ(model.InstallTime(0), 0.0);
  EXPECT_DOUBLE_EQ(model.InstallTime(20), 1.0);
}

TEST(CostModelDeathTest, ZeroMigrationRateDies) {
  CostModel model;
  model.migration_rate = 0.0;
  EXPECT_DEATH(static_cast<void>(model.MigrationTime(1.0)), "Precondition");
}

}  // namespace
}  // namespace nu::sim
