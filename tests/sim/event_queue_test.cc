#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>

namespace nu::sim {
namespace {

TEST(TimelineQueueTest, PopsInTimeOrder) {
  TimelineQueue<int> q;
  q.Push(3.0, 3);
  q.Push(1.0, 1);
  q.Push(2.0, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.NextTime(), 1.0);
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(TimelineQueueTest, TiesPopInInsertionOrder) {
  TimelineQueue<std::string> q;
  q.Push(5.0, "first");
  q.Push(5.0, "second");
  q.Push(5.0, "third");
  EXPECT_EQ(q.Pop().payload, "first");
  EXPECT_EQ(q.Pop().payload, "second");
  EXPECT_EQ(q.Pop().payload, "third");
}

TEST(TimelineQueueTest, InterleavedPushPop) {
  TimelineQueue<int> q;
  q.Push(10.0, 10);
  q.Push(1.0, 1);
  EXPECT_EQ(q.Pop().payload, 1);
  q.Push(5.0, 5);
  EXPECT_EQ(q.Pop().payload, 5);
  EXPECT_EQ(q.Pop().payload, 10);
}

TEST(TimelineQueueTest, EntryCarriesTime) {
  TimelineQueue<int> q;
  q.Push(7.5, 42);
  const auto entry = q.Pop();
  EXPECT_DOUBLE_EQ(entry.time, 7.5);
  EXPECT_EQ(entry.payload, 42);
}

TEST(TimelineQueueDeathTest, PopEmptyDies) {
  TimelineQueue<int> q;
  EXPECT_DEATH(q.Pop(), "Precondition");
  EXPECT_DEATH(static_cast<void>(q.NextTime()), "Precondition");
}

}  // namespace
}  // namespace nu::sim
