#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/factory.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/background.h"
#include "trace/yahoo_like.h"

namespace nu::sim {
namespace {

struct Fixture {
  explicit Fixture(double utilization = 0.0)
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {
    if (utilization > 0.0) {
      trace::YahooLikeGenerator gen(ft.hosts(), Rng(99));
      trace::BackgroundOptions options;
      options.target_utilization = utilization;
      trace::InjectBackground(network, provider, gen, options);
    }
  }

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  [[nodiscard]] update::UpdateEvent Event(
      std::uint64_t id, Seconds arrival,
      std::vector<flow::Flow> flows) const {
    return update::UpdateEvent(EventId{id}, arrival, std::move(flows));
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

SimConfig FastConfig() {
  SimConfig config;
  config.cost_model.plan_time_per_flow = 0.001;
  config.cost_model.migration_rate = 10000.0;
  config.cost_model.install_time_per_flow = 0.05;  // tests assume this scale
  config.seed = 7;
  return config;
}

TEST(SimulatorTest, SingleEventCompletes) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {fx.MakeFlow(0, 8, 10.0, 5.0),
                                     fx.MakeFlow(1, 9, 10.0, 3.0)}));
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  ASSERT_EQ(result.records.size(), 1u);
  const auto& rec = result.records[0];
  EXPECT_DOUBLE_EQ(rec.arrival, 0.0);
  EXPECT_GT(rec.exec_start, 0.0);  // plan time elapsed
  // Completion = exec start + install time for 2 flows (no migration).
  EXPECT_NEAR(rec.completion, rec.exec_start + 2 * 0.05, 1e-9);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.forced_placements, 0u);
  EXPECT_DOUBLE_EQ(rec.cost, 0.0);  // empty network, no migration
}

TEST(SimulatorTest, FifoRunsSequentially) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 3; ++i) {
    events.push_back(
        fx.Event(i, 0.0, {fx.MakeFlow(i, 8 + i, 10.0, 4.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  ASSERT_EQ(result.records.size(), 3u);
  // FIFO order: completions strictly increasing, each round waits for the
  // previous event to finish.
  EXPECT_LT(result.records[0].completion, result.records[1].completion);
  EXPECT_LT(result.records[1].completion, result.records[2].completion);
  EXPECT_GE(result.records[1].exec_start, result.records[0].completion);
  EXPECT_GE(result.records[2].exec_start, result.records[1].completion);
  EXPECT_EQ(result.rounds, 3u);
  // Every event's ECT at least its own installation time.
  for (const auto& rec : result.records) {
    EXPECT_GE(rec.Ect(), 0.05);
  }
}

TEST(SimulatorTest, DeterministicForSeed) {
  Fixture fx(0.4);
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 5; ++i) {
    events.push_back(fx.Event(i, 0.0,
                              {fx.MakeFlow(i, 10, 20.0, 2.0),
                               fx.MakeFlow(i + 1, 11, 15.0, 3.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::LmtfScheduler a(sched::LmtfConfig{.alpha = 2});
  sched::LmtfScheduler b(sched::LmtfConfig{.alpha = 2});
  const SimResult ra = sim.Run(a, events);
  const SimResult rb = sim.Run(b, events);
  EXPECT_DOUBLE_EQ(ra.report.avg_ect, rb.report.avg_ect);
  EXPECT_DOUBLE_EQ(ra.report.total_cost, rb.report.total_cost);
  EXPECT_DOUBLE_EQ(ra.report.total_plan_time, rb.report.total_plan_time);
}

TEST(SimulatorTest, RunsDoNotMutateInitialNetwork) {
  Fixture fx(0.3);
  const std::size_t flows_before = fx.network.placed_flow_count();
  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {fx.MakeFlow(0, 8, 10.0, 1.0)}));
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  (void)sim.Run(fifo, events);
  EXPECT_EQ(fx.network.placed_flow_count(), flows_before);
}

TEST(SimulatorTest, LaterArrivalWaits) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {fx.MakeFlow(0, 8, 10.0, 2.0)}));
  events.push_back(fx.Event(1, 100.0, {fx.MakeFlow(1, 9, 10.0, 2.0)}));
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_GE(result.records[1].exec_start, 100.0);
  // The idle gap means event 1's queuing delay is tiny.
  EXPECT_LT(result.records[1].QueuingDelay(), 1.0);
}

TEST(SimulatorTest, PlmtfExecutesMultipleEventsPerRound) {
  Fixture fx;
  // Five tiny events on an empty network: massively co-feasible.
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 5; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 8 + i, 5.0, 3.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::PlmtfScheduler plmtf(sched::LmtfConfig{.alpha = 4});
  const SimResult result = sim.Run(plmtf, events);
  EXPECT_LT(result.rounds, 5u);
  EXPECT_GT(result.cofeasibility_probes, 0u);
  // Parallel rounds: fewer decision points means less plan time and lower
  // average ECT than five sequential rounds would produce.
  sched::FifoScheduler fifo;
  const SimResult sequential = sim.Run(fifo, events);
  EXPECT_LT(result.report.avg_ect, sequential.report.avg_ect);
}

TEST(SimulatorTest, FifoNeverProbesCosts) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 3; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 8, 5.0, 1.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);
  EXPECT_EQ(result.cost_probes, 0u);
  EXPECT_EQ(result.cofeasibility_probes, 0u);
  EXPECT_GT(result.report.total_plan_time, 0.0);  // execution planning
}

TEST(SimulatorTest, LmtfPlanTimeExceedsFifo) {
  Fixture fx(0.5);
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 8; ++i) {
    events.push_back(fx.Event(i, 0.0,
                              {fx.MakeFlow(i, 12, 10.0, 2.0),
                               fx.MakeFlow(i, 13, 10.0, 2.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  sched::LmtfScheduler lmtf(sched::LmtfConfig{.alpha = 4});
  const SimResult rf = sim.Run(fifo, events);
  const SimResult rl = sim.Run(lmtf, events);
  EXPECT_GT(rl.report.total_plan_time, rf.report.total_plan_time);
}

TEST(SimulatorTest, OversizedFlowIsForcePlacedEventually) {
  Fixture fx;
  // 150 Mbps demand can never fit a 100 Mbps fabric.
  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {fx.MakeFlow(0, 8, 150.0, 1.0)}));
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);
  EXPECT_EQ(result.forced_placements, 1u);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_GE(result.records[0].completion, result.records[0].exec_start);
}

TEST(SimulatorTest, FlowLevelCompletesAllEvents) {
  Fixture fx(0.4);
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 4; ++i) {
    events.push_back(fx.Event(i, 0.0,
                              {fx.MakeFlow(i, 8, 10.0, 2.0),
                               fx.MakeFlow(i + 2, 9, 10.0, 2.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  const SimResult result = sim.RunFlowLevel(events);
  ASSERT_EQ(result.records.size(), 4u);
  for (const auto& rec : result.records) {
    EXPECT_GE(rec.completion, rec.exec_start);
    EXPECT_GE(rec.exec_start, rec.arrival);
  }
  EXPECT_GT(result.report.makespan, 0.0);
}

TEST(SimulatorTest, FlowLevelInterleavingDelaysFirstEvent) {
  Fixture fx;
  // Event 0 has many flows; events 1-3 one each. Under flow-level RR, event
  // 0's last flow dispatches near the end, so its ECT exceeds the
  // event-level FIFO ECT.
  std::vector<update::UpdateEvent> events;
  std::vector<flow::Flow> many;
  for (int i = 0; i < 8; ++i) {
    many.push_back(fx.MakeFlow(0, 8, 5.0, 1.0));
  }
  events.push_back(fx.Event(0, 0.0, std::move(many)));
  for (std::uint64_t i = 1; i < 4; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 9, 5.0, 1.0)}));
  }
  SimConfig config = FastConfig();
  config.cost_model.plan_time_per_flow = 0.5;  // make dispatch order visible
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult event_level = sim.Run(fifo, events);
  const SimResult flow_level = sim.RunFlowLevel(events);
  // Event-level FIFO finishes event 0 before touching 1-3.
  EXPECT_LT(event_level.records[0].completion,
            flow_level.records[0].completion);
}

TEST(SimulatorTest, PlmtfRoundLogShowsParallelRounds) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 6; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 10 + i % 4, 5.0, 2.0)}));
  }
  SimConfig config = FastConfig();
  config.keep_round_log = true;
  Simulator sim(fx.network, fx.provider, config);
  sched::PlmtfScheduler plmtf(sched::LmtfConfig{.alpha = 4});
  const SimResult result = sim.Run(plmtf, events);
  ASSERT_FALSE(result.round_log.empty());
  std::size_t executed = 0;
  bool any_parallel = false;
  for (const RoundLogEntry& round : result.round_log) {
    executed += round.executed.size();
    if (round.executed.size() > 1) any_parallel = true;
    EXPECT_GE(round.plan_time, 0.0);
  }
  EXPECT_EQ(executed, 6u);      // every event appears exactly once
  EXPECT_TRUE(any_parallel);    // tiny events on an empty net co-schedule
}

TEST(SimulatorTest, TailPercentileConfig) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 4; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 8, 5.0, 1.0)}));
  }
  SimConfig max_tail = FastConfig();
  SimConfig median_tail = FastConfig();
  median_tail.tail_percentile = 0.5;
  sched::FifoScheduler fifo;
  const SimResult rmax =
      Simulator(fx.network, fx.provider, max_tail).Run(fifo, events);
  const SimResult rmed =
      Simulator(fx.network, fx.provider, median_tail).Run(fifo, events);
  EXPECT_GT(rmax.report.tail_ect, rmed.report.tail_ect);
}

TEST(SimulatorTest, StaggeredArrivalsNeverRunBeforeArrival) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 6; ++i) {
    events.push_back(fx.Event(i, static_cast<double>(i) * 0.5,
                              {fx.MakeFlow(i, 9, 5.0, 1.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::LmtfScheduler lmtf(sched::LmtfConfig{.alpha = 2});
  const SimResult result = sim.Run(lmtf, events);
  for (const auto& rec : result.records) {
    EXPECT_GE(rec.exec_start, rec.arrival);
  }
}

TEST(SimulatorTest, FlowLevelStaggeredArrivals) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 4; ++i) {
    events.push_back(fx.Event(i, static_cast<double>(i) * 2.0,
                              {fx.MakeFlow(i, 9, 5.0, 1.0),
                               fx.MakeFlow(i, 10, 5.0, 1.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  const SimResult result = sim.RunFlowLevel(events);
  ASSERT_EQ(result.records.size(), 4u);
  for (const auto& rec : result.records) {
    EXPECT_GE(rec.exec_start, rec.arrival);
    EXPECT_GE(rec.completion, rec.exec_start);
  }
}

TEST(SimulatorTest, QuickProbesReducePlanTime) {
  Fixture fx(0.5);
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 8; ++i) {
    events.push_back(fx.Event(i, 0.0,
                              {fx.MakeFlow(i, 12, 10.0, 2.0),
                               fx.MakeFlow(i, 13, 10.0, 2.0)}));
  }
  SimConfig exact = FastConfig();
  SimConfig quick = FastConfig();
  quick.quick_cost_probes = true;

  sched::LmtfScheduler lmtf_a(sched::LmtfConfig{.alpha = 4});
  sched::LmtfScheduler lmtf_b(sched::LmtfConfig{.alpha = 4});
  const SimResult exact_result =
      Simulator(fx.network, fx.provider, exact).Run(lmtf_a, events);
  const SimResult quick_result =
      Simulator(fx.network, fx.provider, quick).Run(lmtf_b, events);

  EXPECT_EQ(quick_result.records.size(), 8u);
  EXPECT_LT(quick_result.report.total_plan_time,
            exact_result.report.total_plan_time);
  // Probe counts identical: sampling structure does not change.
  EXPECT_EQ(quick_result.cost_probes, exact_result.cost_probes);
}

TEST(SimulatorTest, ReportAggregatesMatchRecords) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 3; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 8 + i, 10.0, 2.0)}));
  }
  Simulator sim(fx.network, fx.provider, FastConfig());
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);
  double sum_ect = 0.0, max_ect = 0.0;
  for (const auto& rec : result.records) {
    sum_ect += rec.Ect();
    max_ect = std::max(max_ect, rec.Ect());
  }
  EXPECT_NEAR(result.report.avg_ect, sum_ect / 3.0, 1e-9);
  EXPECT_NEAR(result.report.tail_ect, max_ect, 1e-9);
}

TEST(SimulatorTest, RoundLogRecordsExecutions) {
  Fixture fx;
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 2; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 8, 5.0, 1.0)}));
  }
  SimConfig config = FastConfig();
  config.keep_round_log = true;
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);
  ASSERT_EQ(result.round_log.size(), 2u);
  EXPECT_EQ(result.round_log[0].executed.size(), 1u);
  EXPECT_EQ(result.round_log[0].executed[0], EventId{0});
  EXPECT_EQ(result.round_log[1].executed[0], EventId{1});
}

}  // namespace
}  // namespace nu::sim
