// Simulator under the overload guard: bounded queues shed observably,
// deadline overruns abort + roll back + requeue with backoff, poison events
// land in quarantine, the auditor sees zero violations on healthy runs, and
// a generously-configured guard never perturbs a run's results.
#include <gtest/gtest.h>

#include <array>
#include <optional>

#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::sim {
namespace {

/// Fat-tree fixture for multi-path workloads.
struct TreeFixture {
  TreeFixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  [[nodiscard]] update::UpdateEvent Event(std::uint64_t id, Seconds arrival,
                                          std::vector<flow::Flow> flows) const {
    return update::UpdateEvent(EventId{id}, arrival, std::move(flows));
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

/// Two hosts, one 100 Mbps cable: lets tests exhaust capacity exactly.
struct BottleneckFixture {
  BottleneckFixture() {
    a = graph.AddNode(topo::NodeRole::kHost);
    b = graph.AddNode(topo::NodeRole::kHost);
    graph.AddBidirectional(a, b, 100.0);
    provider.emplace(graph, 2);
    network.emplace(graph);
  }

  [[nodiscard]] flow::Flow MakeFlow(Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = a;
    f.dst = b;
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  /// Permanently occupies `demand` (no churn: background never departs).
  void OccupyForever(Mbps demand) {
    flow::Flow f = MakeFlow(demand, 1e9);
    f.origin = flow::FlowOrigin::kBackground;
    const std::array<NodeId, 2> seq{a, b};
    network->Place(std::move(f), graph.MakePath(seq));
  }

  topo::Graph graph;
  NodeId a, b;
  std::optional<topo::KspPathProvider> provider;
  std::optional<net::Network> network;
};

SimConfig FastConfig() {
  SimConfig config;
  config.cost_model.plan_time_per_flow = 0.001;
  config.cost_model.migration_rate = 10000.0;
  config.cost_model.install_time_per_flow = 0.01;
  config.seed = 11;
  config.validate_invariants = true;
  return config;
}

metrics::TerminalStatus StatusOf(const SimResult& result, std::uint64_t id) {
  for (const auto& rec : result.records) {
    if (rec.event == EventId{id}) return rec.status;
  }
  ADD_FAILURE() << "no record for event " << id;
  return metrics::TerminalStatus::kPending;
}

TEST(GuardSimTest, RejectNewShedsArrivalsBeyondBound) {
  TreeFixture fx;
  SimConfig config = FastConfig();
  config.guard.overload.max_queue_length = 1;
  config.guard.overload.policy = guard::OverloadPolicy::kRejectNew;

  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 3; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 8 + i, 10.0, 1.0)}));
  }
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(StatusOf(result, 0), metrics::TerminalStatus::kCompleted);
  EXPECT_EQ(StatusOf(result, 1), metrics::TerminalStatus::kShed);
  EXPECT_EQ(StatusOf(result, 2), metrics::TerminalStatus::kShed);
  EXPECT_EQ(result.guard_stats.events_shed, 2u);
  EXPECT_EQ(result.guard_stats.max_queue_length, 1u);
  EXPECT_EQ(result.report.events_completed, 1u);
  EXPECT_EQ(result.report.events_shed, 2u);
}

TEST(GuardSimTest, ShedOldestKeepsTheFreshestArrival) {
  TreeFixture fx;
  SimConfig config = FastConfig();
  config.guard.overload.max_queue_length = 1;
  config.guard.overload.policy = guard::OverloadPolicy::kShedOldest;

  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 3; ++i) {
    events.push_back(fx.Event(i, 0.0, {fx.MakeFlow(i, 8 + i, 10.0, 1.0)}));
  }
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  EXPECT_EQ(StatusOf(result, 0), metrics::TerminalStatus::kShed);
  EXPECT_EQ(StatusOf(result, 1), metrics::TerminalStatus::kShed);
  EXPECT_EQ(StatusOf(result, 2), metrics::TerminalStatus::kCompleted);
  EXPECT_EQ(result.guard_stats.events_shed, 2u);
}

TEST(GuardSimTest, WatchdogQuarantinesPermanentlyBlockedEvent) {
  BottleneckFixture fx;
  fx.OccupyForever(100.0);  // the event's flow can never fit
  SimConfig config = FastConfig();
  config.guard.deadline.base_deadline = 1.0;
  config.guard.deadline.max_failures = 3;
  config.guard.deadline.requeue_backoff = 0.5;

  std::vector<update::UpdateEvent> events;
  events.push_back(update::UpdateEvent(EventId{0}, 0.0,
                                       {fx.MakeFlow(50.0, 5.0)}));
  Simulator sim(*fx.network, *fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].status, metrics::TerminalStatus::kQuarantined);
  EXPECT_EQ(result.records[0].deadline_misses, 3u);
  EXPECT_EQ(result.guard_stats.deadline_misses, 3u);
  EXPECT_EQ(result.guard_stats.events_requeued, 2u);
  EXPECT_EQ(result.guard_stats.events_quarantined, 1u);
  EXPECT_EQ(result.report.events_quarantined, 1u);
  EXPECT_EQ(result.forced_placements, 0u);  // quarantine, not force-place
}

TEST(GuardSimTest, WatchdogAbortRollsBackPlacements) {
  // Event 0 installs its 30 Mbps flow (1 s install) but blocks forever on a
  // 200 Mbps flow; its deadline (1.2 s) fires after the install lands, so
  // the abort must roll the INSTALLED placement back. Event 1 (single flow,
  // 1 s install, 1.2 s deadline) then needs 80 Mbps — it only completes if
  // the rollback really freed event 0's 30 Mbps.
  BottleneckFixture fx;
  SimConfig config = FastConfig();
  config.cost_model.install_time_per_flow = 1.0;
  config.guard.deadline.base_deadline = 1.2;
  config.guard.deadline.max_failures = 1;  // quarantine on the first miss
  config.guard.auditor.enabled = true;
  config.guard.auditor.cadence = 1;

  std::vector<update::UpdateEvent> events;
  events.push_back(update::UpdateEvent(
      EventId{0}, 0.0, {fx.MakeFlow(30.0, 5.0), fx.MakeFlow(200.0, 5.0)}));
  events.push_back(update::UpdateEvent(EventId{1}, 5.0,
                                       {fx.MakeFlow(80.0, 1.0)}));
  Simulator sim(*fx.network, *fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  EXPECT_EQ(StatusOf(result, 0), metrics::TerminalStatus::kQuarantined);
  EXPECT_EQ(StatusOf(result, 1), metrics::TerminalStatus::kCompleted);
  EXPECT_EQ(result.guard_stats.deadline_misses, 1u);
  EXPECT_EQ(result.guard_stats.events_quarantined, 1u);
  EXPECT_GT(result.guard_stats.audits_run, 0u);
  EXPECT_EQ(result.guard_stats.audit_violations, 0u);
}

TEST(GuardSimTest, RequeuedEventCompletesOnceCapacityReturns) {
  // Event 0 blocks on a flow that only fits after the short-lived
  // background load departs; its first attempt times out, the second (after
  // backoff) succeeds — exercising abort -> requeue -> re-execute -> done.
  BottleneckFixture fx;
  SimConfig config = FastConfig();
  config.guard.deadline.base_deadline = 1.0;
  config.guard.deadline.max_failures = 5;
  config.guard.deadline.requeue_backoff = 2.0;

  std::vector<update::UpdateEvent> events;
  // An 80 Mbps event flow (duration 1) occupies the link until t=2.01-ish.
  events.push_back(update::UpdateEvent(EventId{0}, 0.0,
                                       {fx.MakeFlow(80.0, 2.0)}));
  // This 50 Mbps flow cannot fit beside it: blocks, times out at ~1, parks
  // until ~3, then fits (the 80 Mbps flow departed at ~2).
  events.push_back(update::UpdateEvent(EventId{1}, 0.0,
                                       {fx.MakeFlow(50.0, 1.0)}));
  Simulator sim(*fx.network, *fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  EXPECT_EQ(StatusOf(result, 0), metrics::TerminalStatus::kCompleted);
  EXPECT_EQ(StatusOf(result, 1), metrics::TerminalStatus::kCompleted);
  EXPECT_GE(result.guard_stats.deadline_misses, 1u);
  EXPECT_GE(result.guard_stats.events_requeued, 1u);
  EXPECT_EQ(result.guard_stats.events_quarantined, 0u);
}

TEST(GuardSimTest, GenerousGuardNeverPerturbsResults) {
  // Guard fully on but with limits no healthy run hits: records must be
  // bit-identical to the guard-off run, and the auditor must stay silent.
  TreeFixture fx;
  SimConfig off = FastConfig();
  SimConfig on = FastConfig();
  on.guard.overload.max_queue_length = 1000;
  on.guard.deadline.base_deadline = 1e6;
  on.guard.auditor.enabled = true;
  on.guard.auditor.cadence = 2;
  on.guard.auditor.mode = guard::AuditMode::kFailFast;  // any violation aborts

  auto run = [&](const SimConfig& config) {
    std::vector<update::UpdateEvent> events;
    for (std::uint64_t i = 0; i < 4; ++i) {
      events.push_back(fx.Event(i, 0.5 * static_cast<double>(i),
                                {fx.MakeFlow(i, 8 + i, 20.0, 2.0),
                                 fx.MakeFlow(i + 4, 12 + i, 20.0, 2.0)}));
    }
    Simulator sim(fx.network, fx.provider, config);
    sched::LmtfScheduler lmtf;
    return sim.Run(lmtf, events);
  };

  const SimResult base = run(off);
  const SimResult guarded = run(on);
  ASSERT_EQ(base.records.size(), guarded.records.size());
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    EXPECT_EQ(base.records[i].event, guarded.records[i].event);
    EXPECT_DOUBLE_EQ(base.records[i].exec_start,
                     guarded.records[i].exec_start);
    EXPECT_DOUBLE_EQ(base.records[i].completion,
                     guarded.records[i].completion);
    EXPECT_DOUBLE_EQ(base.records[i].cost, guarded.records[i].cost);
  }
  EXPECT_DOUBLE_EQ(base.report.avg_ect, guarded.report.avg_ect);
  EXPECT_DOUBLE_EQ(base.report.total_cost, guarded.report.total_cost);
  EXPECT_GT(guarded.guard_stats.audits_run, 0u);
  EXPECT_EQ(guarded.guard_stats.audit_violations, 0u);
  EXPECT_EQ(guarded.guard_stats.events_shed, 0u);
  EXPECT_EQ(guarded.guard_stats.deadline_misses, 0u);
}

TEST(GuardSimTest, BoundedQueueStaysBoundedUnderBurst) {
  TreeFixture fx;
  SimConfig config = FastConfig();
  config.cost_model.plan_time_per_flow = 0.05;  // slow rounds: queue builds
  config.guard.overload.max_queue_length = 4;
  config.guard.overload.policy = guard::OverloadPolicy::kShedCostliest;
  config.guard.auditor.enabled = true;
  config.guard.auditor.cadence = 8;

  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 20; ++i) {
    events.push_back(fx.Event(i, 0.01 * static_cast<double>(i),
                              {fx.MakeFlow(i % 8, 8 + i % 8, 10.0, 2.0)}));
  }
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  ASSERT_EQ(result.records.size(), 20u);
  EXPECT_LE(result.guard_stats.max_queue_length, 4u);
  EXPECT_GT(result.guard_stats.events_shed, 0u);
  std::size_t completed = 0;
  for (const auto& rec : result.records) {
    EXPECT_TRUE(rec.terminal());
    if (rec.status == metrics::TerminalStatus::kCompleted) ++completed;
  }
  EXPECT_EQ(completed + result.guard_stats.events_shed, 20u);
  EXPECT_EQ(result.guard_stats.audit_violations, 0u);
}

}  // namespace
}  // namespace nu::sim
