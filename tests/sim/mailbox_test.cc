#include "sim/mailbox.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <future>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace nu::sim {
namespace {

// Messages posted in a deliberately scrambled real-time order come back in
// the canonical (shard, seq) order.
TEST(ShardMailboxTest, DrainSortsByShardThenSeq) {
  ShardMailbox<std::string> box;
  box.BeginRound(0);
  box.Post(2, 0, "s2m0");
  box.Post(0, 1, "s0m1");
  box.Post(1, 0, "s1m0");
  box.Post(0, 0, "s0m0");
  box.Post(2, 1, "s2m1");
  const auto drained = box.DrainRound(0);
  ASSERT_EQ(drained.size(), 5u);
  EXPECT_EQ(drained[0].payload, "s0m0");
  EXPECT_EQ(drained[1].payload, "s0m1");
  EXPECT_EQ(drained[2].payload, "s1m0");
  EXPECT_EQ(drained[3].payload, "s2m0");
  EXPECT_EQ(drained[4].payload, "s2m1");
  EXPECT_EQ(box.total_posted(), 5u);
}

// Concurrent posters (the real usage: one task per shard on the pool)
// cannot perturb the drain order, whatever interleaving the OS picks.
TEST(ShardMailboxTest, ConcurrentPostsDrainDeterministically) {
  ShardMailbox<std::size_t> box;
  ThreadPool pool(4);
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kPerShard = 50;
  for (std::uint64_t round = 0; round < 3; ++round) {
    box.BeginRound(round);
    std::vector<std::future<void>> tasks;
    for (std::size_t s = 0; s < kShards; ++s) {
      tasks.push_back(pool.Submit([&box, s] {
        for (std::size_t i = 0; i < kPerShard; ++i) {
          box.Post(s, i, s * kPerShard + i);
        }
      }));
    }
    for (auto& t : tasks) t.get();
    const auto drained = box.DrainRound(round);
    ASSERT_EQ(drained.size(), kShards * kPerShard);
    for (std::size_t i = 0; i < drained.size(); ++i) {
      EXPECT_EQ(drained[i].shard, i / kPerShard);
      EXPECT_EQ(drained[i].seq, i % kPerShard);
      EXPECT_EQ(drained[i].payload, i);
    }
  }
  EXPECT_EQ(box.total_posted(), 3u * kShards * kPerShard);
}

// Round barrier: posting outside an open round, draining the wrong round,
// reopening without draining, and non-increasing round ids all abort — a
// straggler task crossing the barrier is a bug, never a tolerated state.
TEST(ShardMailboxDeathTest, BarrierViolationsAbort) {
  EXPECT_DEATH(
      {
        ShardMailbox<int> box;
        box.Post(0, 0, 1);  // no round open
      },
      "open_");
  EXPECT_DEATH(
      {
        ShardMailbox<int> box;
        box.BeginRound(0);
        (void)box.DrainRound(1);  // wrong round
      },
      "current_round_");
  EXPECT_DEATH(
      {
        ShardMailbox<int> box;
        box.BeginRound(0);
        box.BeginRound(1);  // reopen without draining
      },
      "open_");
  EXPECT_DEATH(
      {
        ShardMailbox<int> box;
        box.BeginRound(5);
        (void)box.DrainRound(5);
        box.BeginRound(5);  // rounds must strictly increase
      },
      "round");
}

// Draining an empty round is fine (every shard may hit the cache).
TEST(ShardMailboxTest, EmptyRoundDrainsEmpty) {
  ShardMailbox<int> box;
  box.BeginRound(7);
  EXPECT_TRUE(box.DrainRound(7).empty());
  box.BeginRound(8);
  box.Post(0, 0, 42);
  EXPECT_EQ(box.DrainRound(8).size(), 1u);
}

}  // namespace
}  // namespace nu::sim
