// Differential tests for the probe fast path (docs/model.md §9): the
// copy-on-write overlay, the epoch-keyed probe cache, and parallel
// candidate probing must all be behaviorally invisible — identical
// decisions, records, ECT/fairness metrics, and guard audit counts to the
// legacy deep-copy baseline; only wall-clock and the probe counters differ.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "exp/runner.h"
#include "metrics/export.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/background.h"
#include "trace/yahoo_like.h"
#include "update/planner.h"

namespace nu::sim {
namespace {

struct Fixture {
  explicit Fixture(double utilization = 0.5)
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {
    if (utilization > 0.0) {
      trace::YahooLikeGenerator gen(ft.hosts(), Rng(99));
      trace::BackgroundOptions options;
      options.target_utilization = utilization;
      trace::InjectBackground(network, provider, gen, options);
    }
    // A queue with contention: staggered arrivals, mixed sizes, so LMTF /
    // P-LMTF actually probe, defer, and co-schedule.
    Rng rng(21);
    std::uint64_t id = 0;
    for (int e = 0; e < 10; ++e) {
      std::vector<flow::Flow> flows;
      const std::size_t n = 1 + rng.Index(3);
      for (std::size_t i = 0; i < n; ++i) {
        flow::Flow f;
        f.src = ft.host(rng.Index(ft.host_count()));
        do {
          f.dst = ft.host(rng.Index(ft.host_count()));
        } while (f.dst == f.src);
        f.demand = 5.0 + rng.Uniform(0.0, 20.0);
        f.duration = 0.5 + rng.Uniform(0.0, 2.0);
        flows.push_back(f);
      }
      events.push_back(update::UpdateEvent(
          EventId{id}, 0.1 * static_cast<double>(id), std::move(flows)));
      ++id;
    }
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
  std::vector<update::UpdateEvent> events;
};

SimConfig BaseConfig() {
  SimConfig config;
  config.cost_model.plan_time_per_flow = 0.001;
  config.cost_model.migration_rate = 10000.0;
  config.cost_model.install_time_per_flow = 0.05;
  config.seed = 7;
  return config;
}

SimResult RunWith(const Fixture& fx, SimConfig config,
                  sched::SchedulerKind kind) {
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler =
      sched::MakeScheduler(kind, sched::LmtfConfig{.alpha = 3});
  return sim.Run(*scheduler, fx.events);
}

std::string RecordsCsv(const SimResult& result) {
  std::ostringstream os;
  metrics::WriteRecordsCsv(os, result.records);
  return os.str();
}

/// Everything an operator can observe except the probe-implementation
/// counters must be identical.
void ExpectBehaviorIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(RecordsCsv(a), RecordsCsv(b));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.cost_probes, b.cost_probes);
  EXPECT_EQ(a.cofeasibility_probes, b.cofeasibility_probes);
  EXPECT_EQ(a.forced_placements, b.forced_placements);
  EXPECT_EQ(a.report.event_count, b.report.event_count);
  EXPECT_EQ(a.report.avg_ect, b.report.avg_ect);
  EXPECT_EQ(a.report.tail_ect, b.report.tail_ect);
  EXPECT_EQ(a.report.avg_queuing_delay, b.report.avg_queuing_delay);
  EXPECT_EQ(a.report.worst_queuing_delay, b.report.worst_queuing_delay);
  EXPECT_EQ(a.report.total_cost, b.report.total_cost);
  EXPECT_EQ(a.report.total_plan_time, b.report.total_plan_time);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.total_deferred_flows, b.report.total_deferred_flows);
}

TEST(ProbeFastPathTest, OverlayMatchesLegacyAllSchedulers) {
  const Fixture fx;
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
        sched::SchedulerKind::kPlmtf}) {
    SimConfig legacy = BaseConfig();
    legacy.probe_fast_path = false;
    SimConfig fast = BaseConfig();
    fast.probe_fast_path = true;
    fast.probe_cost_cache = false;
    const SimResult a = RunWith(fx, legacy, kind);
    const SimResult b = RunWith(fx, fast, kind);
    SCOPED_TRACE(sched::ToString(kind));
    ExpectBehaviorIdentical(a, b);
    EXPECT_EQ(a.probe_stats.overlay_probes, 0u);
    EXPECT_EQ(b.probe_stats.legacy_probe_copies, 0u);
    if (kind != sched::SchedulerKind::kFifo) {
      EXPECT_GT(b.probe_stats.overlay_probes, 0u);
      EXPECT_GT(a.probe_stats.legacy_probe_copies, 0u);
      EXPECT_GT(b.probe_stats.overlay_bytes_saved, 0.0);
    }
  }
}

TEST(ProbeFastPathTest, CacheMatchesUncachedAllSchedulers) {
  const Fixture fx;
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
        sched::SchedulerKind::kPlmtf}) {
    SimConfig uncached = BaseConfig();
    uncached.probe_cost_cache = false;
    SimConfig cached = BaseConfig();
    cached.probe_cost_cache = true;
    const SimResult a = RunWith(fx, uncached, kind);
    const SimResult b = RunWith(fx, cached, kind);
    SCOPED_TRACE(sched::ToString(kind));
    ExpectBehaviorIdentical(a, b);
    if (kind != sched::SchedulerKind::kFifo) {
      // The probed winner's plan is replayed at execution time.
      EXPECT_GT(b.probe_stats.exec_plan_reuses, 0u);
      EXPECT_GT(b.probe_stats.probe_cache_misses, 0u);
    }
  }
}

TEST(ProbeFastPathTest, ParallelProbingMatchesSequential) {
  const Fixture fx;
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kLmtf, sched::SchedulerKind::kPlmtf}) {
    SimConfig sequential = BaseConfig();
    sequential.probe_parallelism = 0;
    SimConfig parallel = BaseConfig();
    parallel.probe_parallelism = 3;
    const SimResult a = RunWith(fx, sequential, kind);
    const SimResult b = RunWith(fx, parallel, kind);
    SCOPED_TRACE(sched::ToString(kind));
    ExpectBehaviorIdentical(a, b);
    EXPECT_GT(b.probe_stats.parallel_probe_batches, 0u);
    EXPECT_EQ(a.probe_stats.parallel_probe_batches, 0u);
  }
}

TEST(ProbeFastPathTest, QuickProbesMatchLegacyAndCache) {
  const Fixture fx;
  SimConfig legacy = BaseConfig();
  legacy.quick_cost_probes = true;
  legacy.probe_fast_path = false;
  SimConfig fast = BaseConfig();
  fast.quick_cost_probes = true;
  const SimResult a = RunWith(fx, legacy, sched::SchedulerKind::kLmtf);
  const SimResult b = RunWith(fx, fast, sched::SchedulerKind::kLmtf);
  ExpectBehaviorIdentical(a, b);
  // Quick probes cache scores but never plans; the winner is re-planned at
  // execution, so no plan replay may happen.
  EXPECT_EQ(b.probe_stats.exec_plan_reuses, 0u);
}

TEST(ProbeFastPathTest, GuardAndFaultRunsStayIdentical) {
  const Fixture fx;
  auto guarded = [](bool fast_path) {
    SimConfig config = BaseConfig();
    config.probe_fast_path = fast_path;
    config.probe_cost_cache = fast_path;
    config.faults.flaky.failure_probability = 0.2;
    config.faults.retry.max_attempts = 3;
    config.guard.overload.max_queue_length = 6;
    config.guard.deadline.base_deadline = 5.0;
    config.guard.deadline.max_failures = 3;
    config.guard.auditor.enabled = true;
    config.guard.auditor.cadence = 2;
    config.guard.auditor.mode = guard::AuditMode::kFailFast;
    return config;
  };
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kLmtf, sched::SchedulerKind::kPlmtf}) {
    const SimResult a = RunWith(fx, guarded(false), kind);
    const SimResult b = RunWith(fx, guarded(true), kind);
    SCOPED_TRACE(sched::ToString(kind));
    ExpectBehaviorIdentical(a, b);
    EXPECT_EQ(a.guard_stats.audits_run, b.guard_stats.audits_run);
    EXPECT_EQ(a.guard_stats.audit_violations, b.guard_stats.audit_violations);
    EXPECT_EQ(a.guard_stats.events_shed, b.guard_stats.events_shed);
    EXPECT_EQ(a.guard_stats.deadline_misses, b.guard_stats.deadline_misses);
    EXPECT_EQ(a.fault_stats.installs_attempted, b.fault_stats.installs_attempted);
    EXPECT_EQ(a.fault_stats.installs_failed, b.fault_stats.installs_failed);
    EXPECT_EQ(a.fault_stats.events_aborted, b.fault_stats.events_aborted);
  }
}

TEST(ProbeFastPathTest, Fig6WorkloadHasZeroDriftAcrossAllModes) {
  // The acceptance workload: the Fig. 6 experiment pipeline (exp::Workload,
  // scaled down for test time). Legacy, overlay, cached, and parallel modes
  // must produce identical records and ECT metrics for every scheduler.
  exp::ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.7;
  config.event_count = 12;
  config.min_flows_per_event = 3;
  config.max_flows_per_event = 12;
  config.alpha = 3;
  config.seed = 606;
  const exp::Workload workload(config);

  auto run = [&](sched::SchedulerKind kind, bool fast, bool cache,
                 std::size_t par) {
    exp::ExperimentConfig c = config;
    c.sim.probe_fast_path = fast;
    c.sim.probe_cost_cache = cache;
    c.sim.probe_parallelism = par;
    Simulator sim(workload.network(), workload.paths(), c.sim);
    const auto scheduler =
        sched::MakeScheduler(kind, sched::LmtfConfig{.alpha = config.alpha});
    return sim.Run(*scheduler, workload.events());
  };

  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
        sched::SchedulerKind::kPlmtf}) {
    SCOPED_TRACE(sched::ToString(kind));
    const SimResult legacy = run(kind, false, false, 0);
    const SimResult overlay = run(kind, true, false, 0);
    const SimResult cached = run(kind, true, true, 0);
    const SimResult parallel = run(kind, true, true, 3);
    ExpectBehaviorIdentical(legacy, overlay);
    ExpectBehaviorIdentical(legacy, cached);
    ExpectBehaviorIdentical(legacy, parallel);
  }
}

TEST(ProbeFastPathTest, PlannerOverlayPlanMatchesDeepCopyPlan) {
  const Fixture fx;
  const update::EventPlanner planner(fx.provider, {},
                                     net::PathSelection::kWidest);
  for (const update::UpdateEvent& event : fx.events) {
    const update::EventPlan fast = planner.Plan(fx.network, event);
    const update::EventPlan legacy = planner.PlanLegacyCopy(fx.network, event);
    ASSERT_EQ(fast.actions.size(), legacy.actions.size());
    EXPECT_EQ(fast.fully_feasible, legacy.fully_feasible);
    EXPECT_EQ(fast.migrated_traffic, legacy.migrated_traffic);
    for (std::size_t i = 0; i < fast.actions.size(); ++i) {
      EXPECT_EQ(fast.actions[i].placeable, legacy.actions[i].placeable);
      EXPECT_EQ(fast.actions[i].flow_index, legacy.actions[i].flow_index);
      if (fast.actions[i].placeable) {
        EXPECT_EQ(fast.actions[i].path, legacy.actions[i].path);
      }
      ASSERT_EQ(fast.actions[i].migration.moves.size(),
                legacy.actions[i].migration.moves.size());
      for (std::size_t m = 0; m < fast.actions[i].migration.moves.size();
           ++m) {
        EXPECT_EQ(fast.actions[i].migration.moves[m].flow,
                  legacy.actions[i].migration.moves[m].flow);
        EXPECT_EQ(fast.actions[i].migration.moves[m].new_path,
                  legacy.actions[i].migration.moves[m].new_path);
        EXPECT_EQ(fast.actions[i].migration.moves[m].traffic,
                  legacy.actions[i].migration.moves[m].traffic);
      }
    }
  }
}

}  // namespace
}  // namespace nu::sim
