// The sharded engine's determinism oracle: a pod-sharded run must produce
// byte-identical per-event records and (wall-clock-normalized) report CSVs
// to the plain single-shard run — per scheduler, with fault injection and
// the auditor enabled, at EVERY worker thread count. The coordinator is the
// only thread that mutates simulation state and consumes worker results in
// the mailbox's canonical order, so nothing observable may depend on how
// the OS schedules the pool.
//
// Own main(): `--quick` restricts the sweep to 2 worker threads (the CI
// sharded-smoke job runs this binary under TSan, where the full sweep is
// needlessly slow; two threads already exercise every lock and barrier).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.h"
#include "metrics/export.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::sim {

/// Set by main() when the binary is invoked with --quick.
bool quick_mode = false;

namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

/// Wide workload with deliberate cross-pod flows (src and dst pods differ
/// for most flows), staggered arrivals, and enough rounds for several
/// probe fan-outs per scheduler.
std::vector<update::UpdateEvent> MakeEvents(const Fixture& fx) {
  std::vector<update::UpdateEvent> events;
  std::uint64_t id = 0;
  for (std::size_t wave = 0; wave < 5; ++wave) {
    for (std::size_t i = 0; i < 3; ++i) {
      std::vector<flow::Flow> flows;
      const std::size_t count = 2 + (wave + i) % 3;
      for (std::size_t f = 0; f < count; ++f) {
        // Hosts 16 per k=4 tree; src/dst straddle pods on purpose.
        flows.push_back(fx.MakeFlow((id * 3 + f) % 16, (id * 3 + f + 7) % 16,
                                    6.0 + static_cast<double>(f),
                                    15.0 + static_cast<double>(wave) * 4.0));
      }
      events.emplace_back(EventId{id}, 0.3 * static_cast<double>(wave) +
                                           0.08 * static_cast<double>(i),
                          std::move(flows));
      ++id;
    }
  }
  return events;
}

/// Faults + auditor + overload guard + watchdog on: the oracle must hold in
/// the lossy regime, where audits run the sharded twins and probes replan
/// against fault-mutated state.
SimConfig OracleConfig(const Fixture& fx) {
  SimConfig config;
  config.seed = 20260808;
  config.cost_model.plan_time_per_flow = 0.002;
  config.cost_model.install_time_per_flow = 0.05;
  config.validate_invariants = true;
  config.faults.plan.AddLinkOutage(0.5, 2.0,
                                   fx.ft.graph().OutLinks(fx.ft.host(0))[0]);
  config.faults.flaky.failure_probability = 0.15;
  config.faults.flaky.latency_jitter_frac = 0.1;
  config.faults.retry.max_attempts = 3;
  config.faults.retry.base_delay = 0.05;
  config.guard.overload.max_queue_length = 8;
  config.guard.deadline.base_deadline = 5.0;
  config.guard.deadline.per_flow_deadline = 1.0;
  config.guard.deadline.requeue_backoff = 0.5;
  config.guard.deadline.max_failures = 3;
  config.guard.auditor.enabled = true;
  config.guard.auditor.cadence = 4;
  return config;
}

std::string RecordsCsv(const SimResult& result) {
  std::ostringstream out;
  metrics::WriteRecordsCsv(out, result.records);
  return out.str();
}

/// Report CSV with the host-measurement columns zeroed (same normalization
/// as the crash-recovery oracle): probe wall seconds are real elapsed time
/// and legitimately differ run to run; every logical column must match
/// exactly.
std::string NormalizedReportCsv(const SimResult& result) {
  metrics::Report report = result.report;
  report.probe_wall_seconds = 0.0;
  std::ostringstream out;
  metrics::WriteReportCsv(out, report);
  return out.str();
}

SimResult RunWith(const Fixture& fx, const SimConfig& config,
                  sched::SchedulerKind kind,
                  std::span<const update::UpdateEvent> events) {
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(kind);
  return sim.Run(*scheduler, events);
}

class ShardDeterminismTest
    : public ::testing::TestWithParam<sched::SchedulerKind> {};

// The differential proper: sharded(k pods, T threads) == unsharded, for
// T in {1,2,4,8}, byte for byte.
TEST_P(ShardDeterminismTest, ShardedMatchesUnshardedAtAnyThreadCount) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  const SimConfig plain = OracleConfig(fx);
  // The fixture network's interned-path registry is shared across runs and
  // grows on first use; overlay_bytes_saved samples its footprint. Warm it
  // with a discarded run so the reference and every sharded run observe
  // the same fully-grown registry.
  (void)RunWith(fx, plain, GetParam(), events);
  const SimResult baseline = RunWith(fx, plain, GetParam(), events);
  const std::string want_records = RecordsCsv(baseline);
  const std::string want_report = NormalizedReportCsv(baseline);
  ASSERT_GE(baseline.rounds, 3u);
  EXPECT_FALSE(baseline.shard_stats.enabled);

  const std::vector<std::size_t> thread_counts =
      quick_mode ? std::vector<std::size_t>{2}
                 : std::vector<std::size_t>{1, 2, 4, 8};
  for (const std::size_t threads : thread_counts) {
    SimConfig sharded = plain;
    sharded.shards = fx.ft.pod_count();
    sharded.shard_threads = threads;
    const SimResult result = RunWith(fx, sharded, GetParam(), events);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(RecordsCsv(result), want_records);
    EXPECT_EQ(NormalizedReportCsv(result), want_report);
    EXPECT_EQ(result.rounds, baseline.rounds);
    EXPECT_EQ(result.violations.size(), baseline.violations.size());
    EXPECT_TRUE(result.shard_stats.enabled);
    EXPECT_EQ(result.shard_stats.shards, fx.ft.pod_count());
    EXPECT_EQ(result.shard_stats.threads, threads);
  }
}

// The logical shard counters are part of the determinism contract: thread
// count must not change a single one of them.
TEST_P(ShardDeterminismTest, LogicalCountersAreThreadCountInvariant) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  SimConfig config = OracleConfig(fx);
  config.shards = fx.ft.pod_count();

  config.shard_threads = 1;
  const SimResult one = RunWith(fx, config, GetParam(), events);
  config.shard_threads = quick_mode ? 2 : 8;
  const SimResult many = RunWith(fx, config, GetParam(), events);

  EXPECT_EQ(one.shard_stats.probe_fanouts, many.shard_stats.probe_fanouts);
  EXPECT_EQ(one.shard_stats.probe_tasks, many.shard_stats.probe_tasks);
  EXPECT_EQ(one.shard_stats.audit_fanouts, many.shard_stats.audit_fanouts);
  EXPECT_EQ(one.shard_stats.audit_tasks, many.shard_stats.audit_tasks);
  EXPECT_EQ(one.shard_stats.mailbox_messages,
            many.shard_stats.mailbox_messages);
  EXPECT_EQ(one.shard_stats.cross_shard_events,
            many.shard_stats.cross_shard_events);
  EXPECT_EQ(one.shard_stats.argmin_merges, many.shard_stats.argmin_merges);
  // The workload straddles pods, and the auditor ran sharded passes.
  EXPECT_GT(one.shard_stats.cross_shard_events, 0u);
  EXPECT_GT(one.shard_stats.audit_fanouts, 0u);
}

// With a lying dataplane and the reconciler on, drift collection runs
// through the shard mailbox — sharded reconciliation must still match the
// unsharded run byte for byte at every thread count.
TEST_P(ShardDeterminismTest, GreyReconciliationIsThreadCountInvariant) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  SimConfig plain = OracleConfig(fx);
  plain.faults.grey = fault::ParseGreyModel(
      "acklie:0.2+straggler:0.25:0.1:0.5+loss:0.1:0.5:1.5");
  plain.recon.enabled = true;
  (void)RunWith(fx, plain, GetParam(), events);  // warm the path registry
  const SimResult baseline = RunWith(fx, plain, GetParam(), events);
  const std::string want_records = RecordsCsv(baseline);
  const std::string want_report = NormalizedReportCsv(baseline);
  ASSERT_GT(baseline.report.drift_rules_detected, 0u);

  const std::vector<std::size_t> thread_counts =
      quick_mode ? std::vector<std::size_t>{2}
                 : std::vector<std::size_t>{1, 2, 4, 8};
  for (const std::size_t threads : thread_counts) {
    SimConfig sharded = plain;
    sharded.shards = fx.ft.pod_count();
    sharded.shard_threads = threads;
    const SimResult result = RunWith(fx, sharded, GetParam(), events);
    SCOPED_TRACE("grey threads=" + std::to_string(threads));
    EXPECT_EQ(RecordsCsv(result), want_records);
    EXPECT_EQ(NormalizedReportCsv(result), want_report);
    EXPECT_TRUE(result.shard_stats.enabled);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, ShardDeterminismTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf));

}  // namespace
}  // namespace nu::sim

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") nu::sim::quick_mode = true;
  }
  return RUN_ALL_TESTS();
}
