// Tests for background churn: replacement placement, stationarity, and
// interaction with the schedulers.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "sched/factory.h"
#include "trace/yahoo_like.h"

namespace nu::sim {
namespace {

exp::ExperimentConfig ChurnConfigBase(bool churn) {
  exp::ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.6;
  config.event_count = 5;
  config.min_flows_per_event = 3;
  config.max_flows_per_event = 10;
  config.seed = 77;
  config.background_churn = churn;
  return config;
}

TEST(ChurnTest, RunsCompleteWithChurn) {
  const exp::Workload w(ChurnConfigBase(true));
  const SimResult result = exp::RunScheduler(w, sched::SchedulerKind::kFifo);
  EXPECT_EQ(result.records.size(), 5u);
  for (const auto& rec : result.records) {
    EXPECT_GE(rec.completion, rec.exec_start);
  }
}

TEST(ChurnTest, StaticBackgroundAlsoCompletes) {
  const exp::Workload w(ChurnConfigBase(false));
  const SimResult result = exp::RunScheduler(w, sched::SchedulerKind::kFifo);
  EXPECT_EQ(result.records.size(), 5u);
}

TEST(ChurnTest, DeterministicAcrossRuns) {
  const exp::Workload w(ChurnConfigBase(true));
  const SimResult a = exp::RunScheduler(w, sched::SchedulerKind::kLmtf);
  const SimResult b = exp::RunScheduler(w, sched::SchedulerKind::kLmtf);
  EXPECT_DOUBLE_EQ(a.report.avg_ect, b.report.avg_ect);
  EXPECT_DOUBLE_EQ(a.report.total_cost, b.report.total_cost);
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan);
}

TEST(ChurnTest, ChurnChangesOutcomeVsStatic) {
  // Congested setup (many chunky events) so background dynamics matter.
  auto congested = [](bool churn) {
    exp::ExperimentConfig config = ChurnConfigBase(churn);
    config.utilization = 0.8;
    config.event_count = 10;
    config.min_flows_per_event = 10;
    config.max_flows_per_event = 40;
    return config;
  };
  const exp::Workload with_churn(congested(true));
  const exp::Workload without(congested(false));
  const SimResult a = exp::RunScheduler(with_churn, sched::SchedulerKind::kFifo);
  const SimResult b = exp::RunScheduler(without, sched::SchedulerKind::kFifo);
  // Identical workloads, different dynamics: results should differ unless
  // the run is trivially unblocked AND cost-free (not at 80% utilization).
  EXPECT_TRUE(a.report.avg_ect != b.report.avg_ect ||
              a.report.total_cost != b.report.total_cost);
}

TEST(ChurnTest, FlowLevelWorksWithChurn) {
  const exp::Workload w(ChurnConfigBase(true));
  const SimResult result = exp::RunFlowLevel(w);
  EXPECT_EQ(result.records.size(), 5u);
}

TEST(ChurnTest, MissingFactoryDies) {
  const exp::Workload w(ChurnConfigBase(true));
  SimConfig config = w.config().sim;
  config.churn.enabled = true;
  Simulator simulator(w.network(), w.paths(), config);  // no factory set
  sched::FifoScheduler fifo;
  EXPECT_DEATH((void)simulator.Run(fifo, w.events()), "NU_CHECK");
}

}  // namespace
}  // namespace nu::sim
