// Simulator under correlated (SRLG) group faults: a pod power event fires
// as ONE group incident (not per-element failures), strands every flow in
// the pod, and the victims recover once the group comes back — with the
// SRLG-specific recovery latencies reported separately. Fixed seeds
// reproduce group-fault runs bit-for-bit.
#include <gtest/gtest.h>

#include "fault/srlg.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::sim {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

SimConfig SlowInstallConfig() {
  SimConfig config;
  config.cost_model.plan_time_per_flow = 0.001;
  config.cost_model.migration_rate = 10000.0;
  config.cost_model.install_time_per_flow = 1.0;  // faults hit mid-install
  config.seed = 7;
  config.validate_invariants = true;
  return config;
}

/// Pod 0 loses power at t=0.5 for 2 s while two of its flows are still
/// installing.
SimConfig PodOutageConfig(const Fixture& fx) {
  SimConfig config = SlowInstallConfig();
  fault::FaultPlan& plan = config.faults.plan;
  std::size_t pod0 = fault::kNoGroup;
  for (const fault::SharedRiskGroup& group :
       fault::DeriveFatTreeSrlgs(fx.ft)) {
    const std::size_t idx = plan.AddGroup(group);
    if (group.name == "pod0") pod0 = idx;
  }
  plan.AddGroupOutage(0.5, 2.0, pod0);
  return config;
}

std::vector<update::UpdateEvent> PodFlows(const Fixture& fx) {
  std::vector<update::UpdateEvent> events;
  events.push_back(update::UpdateEvent(
      EventId{0}, 0.0,
      {fx.MakeFlow(0, 12, 10.0, 50.0), fx.MakeFlow(2, 13, 10.0, 50.0)}));
  return events;
}

TEST(SrlgSimTest, PodOutageIsOneGroupIncident) {
  Fixture fx;
  const SimConfig config = PodOutageConfig(fx);
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, PodFlows(fx));

  // One correlated incident — NOT four switch failures. The group counter
  // is the only failure counter that moves.
  EXPECT_EQ(result.fault_stats.group_faults, 1u);
  EXPECT_EQ(result.fault_stats.switch_failures, 0u);
  EXPECT_EQ(result.fault_stats.link_failures, 0u);
  // Both flows source in pod 0, so the sweep strands both.
  EXPECT_EQ(result.fault_stats.flows_killed, 2u);
  EXPECT_GE(result.fault_stats.events_replanned, 1u);
  EXPECT_EQ(result.report.group_faults, 1u);
}

TEST(SrlgSimTest, VictimsRecoverAfterGroupUpWithSrlgLatencies) {
  Fixture fx;
  const SimConfig config = PodOutageConfig(fx);
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, PodFlows(fx));

  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].status, metrics::TerminalStatus::kCompleted);
  // A pod power event leaves its hosts with NO surviving path: recovery can
  // only start once the group comes back at t=2.5, so every SRLG recovery
  // latency is at least the outage remaining after the fault.
  ASSERT_EQ(result.fault_stats.srlg_recovery_latency.count(), 2u);
  EXPECT_GE(result.fault_stats.srlg_recovery_latency.min(), 2.0);
  // SRLG recoveries are a subset of all recoveries, and they surface in the
  // report's dedicated columns.
  EXPECT_GE(result.fault_stats.recovery_latency.count(), 2u);
  EXPECT_GT(result.report.srlg_recovery_latency_mean, 0.0);
  EXPECT_GE(result.report.srlg_recovery_latency_p99,
            result.report.srlg_recovery_latency_mean);
}

TEST(SrlgSimTest, GroupFaultRunsAreDeterministic) {
  const auto run = [] {
    Fixture fx;
    SimConfig config = PodOutageConfig(fx);
    config.faults.flaky.failure_probability = 0.2;  // exercise the rng too
    config.faults.retry.max_attempts = 3;
    config.faults.retry.base_delay = 0.05;
    Simulator sim(fx.network, fx.provider, config);
    sched::FifoScheduler fifo;
    return sim.Run(fifo, PodFlows(fx));
  };
  const SimResult a = run();
  const SimResult b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
    EXPECT_EQ(a.records[i].replans, b.records[i].replans);
  }
  EXPECT_EQ(a.fault_stats.flows_killed, b.fault_stats.flows_killed);
  EXPECT_EQ(a.fault_stats.group_faults, b.fault_stats.group_faults);
  EXPECT_EQ(a.fault_stats.srlg_recovery_latency.count(),
            b.fault_stats.srlg_recovery_latency.count());
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(SrlgSimTest, AuditorStaysSilentAcrossGroupFaults) {
  Fixture fx;
  SimConfig config = PodOutageConfig(fx);
  config.guard.auditor.enabled = true;
  config.guard.auditor.mode = guard::AuditMode::kLogAndCount;
  config.guard.auditor.cadence = 4;
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, PodFlows(fx));
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.guard_stats.audit_violations, 0u);
}

}  // namespace
}  // namespace nu::sim
