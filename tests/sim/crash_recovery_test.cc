// The checkpoint subsystem's determinism oracle: crash a fixed-seed run at
// ANY round (pre-round and mid-round), recover it, and require the final
// per-event records CSV to be byte-identical — and the report CSV identical
// after normalizing the per-process wall-clock/recovery columns — to the
// uninterrupted run. Swept across fifo/lmtf/p-lmtf with fault injection and
// the guard subsystem enabled, so recovery is exercised against the
// gnarliest state the simulator can hold (deferred flows, retries, watchdog
// generations, fault timelines).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/journal.h"
#include "fault/fault_plan.h"
#include "metrics/export.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

namespace nu::sim {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

/// A workload wide enough to produce several rounds under every scheduler:
/// staggered arrivals, mixed flow counts, overlapping lifetimes.
std::vector<update::UpdateEvent> MakeEvents(const Fixture& fx) {
  std::vector<update::UpdateEvent> events;
  std::uint64_t id = 0;
  for (std::size_t wave = 0; wave < 4; ++wave) {
    for (std::size_t i = 0; i < 2; ++i) {
      std::vector<flow::Flow> flows;
      const std::size_t count = 2 + (wave + i) % 3;
      for (std::size_t f = 0; f < count; ++f) {
        flows.push_back(fx.MakeFlow((id + f) % 16, (id + f + 5) % 16,
                                    8.0 + static_cast<double>(f),
                                    20.0 + static_cast<double>(wave) * 5.0));
      }
      events.emplace_back(EventId{id}, 0.4 * static_cast<double>(wave) +
                                           0.1 * static_cast<double>(i),
                          std::move(flows));
      ++id;
    }
  }
  return events;
}

/// Faults + guard on: the determinism oracle must hold in the lossy regime
/// too, where flows die mid-install and the watchdog rolls attempts back.
SimConfig OracleConfig(const Fixture& fx) {
  SimConfig config;
  config.seed = 20260805;
  config.cost_model.plan_time_per_flow = 0.002;
  config.cost_model.install_time_per_flow = 0.05;
  config.validate_invariants = true;
  config.faults.plan.AddLinkOutage(0.6, 2.0,
                                   fx.ft.graph().OutLinks(fx.ft.host(0))[0]);
  config.faults.flaky.failure_probability = 0.2;
  config.faults.flaky.latency_jitter_frac = 0.15;
  config.faults.retry.max_attempts = 3;
  config.faults.retry.base_delay = 0.05;
  config.guard.overload.max_queue_length = 6;
  config.guard.deadline.base_deadline = 5.0;
  config.guard.deadline.per_flow_deadline = 1.0;
  config.guard.deadline.requeue_backoff = 0.5;
  config.guard.deadline.max_failures = 3;
  config.guard.auditor.enabled = true;
  config.guard.auditor.cadence = 4;
  return config;
}

std::string RecordsCsv(const SimResult& result) {
  std::ostringstream out;
  metrics::WriteRecordsCsv(out, result.records);
  return out.str();
}

/// Report CSV with the per-process columns zeroed: real wall-clock and
/// what-this-process-did recovery counters legitimately differ between an
/// uninterrupted run and a crash+recover pair. Every OTHER column —
/// including the deterministic ckpt_snapshots/ckpt_wal_records totals and
/// all probe counters — must match exactly.
std::string NormalizedReportCsv(const SimResult& result) {
  metrics::Report report = result.report;
  report.probe_wall_seconds = 0.0;
  // overlay_bytes_saved sums Network::ApproxStateBytes(), which counts
  // vector CAPACITIES — an allocation artifact that differs between a
  // network grown in place and one rebuilt from a snapshot.
  report.overlay_bytes_saved = 0.0;
  report.ckpt_recoveries = 0;
  report.ckpt_wal_replayed = 0;
  report.ckpt_snapshot_bytes = 0.0;
  report.ckpt_snapshot_wall_seconds = 0.0;
  report.ckpt_recovery_wall_seconds = 0.0;
  std::ostringstream out;
  metrics::WriteReportCsv(out, report);
  return out.str();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() / ("nu_crash_recovery_" + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

SimResult RunWith(const Fixture& fx, const SimConfig& config,
                  sched::SchedulerKind kind,
                  std::span<const update::UpdateEvent> events) {
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(kind);
  return sim.Run(*scheduler, events);
}

class CrashRecoveryTest : public ::testing::TestWithParam<sched::SchedulerKind> {
};

/// Enabling checkpointing (without crashing) must not change any scheduling
/// outcome: the per-event records are byte-identical to the plain run, and
/// nothing is drawn from any Rng.
TEST_P(CrashRecoveryTest, CheckpointingIsObservationallyTransparent) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  const SimConfig plain = OracleConfig(fx);
  const SimResult baseline = RunWith(fx, plain, GetParam(), events);

  TempDir dir("transparent_" + std::string(ToString(GetParam())));
  SimConfig with_ckpt = plain;
  with_ckpt.checkpoint.dir = dir.path().string();
  with_ckpt.checkpoint.cadence = 1;
  const SimResult checkpointed = RunWith(fx, with_ckpt, GetParam(), events);

  EXPECT_EQ(RecordsCsv(checkpointed), RecordsCsv(baseline));
  EXPECT_EQ(checkpointed.rounds, baseline.rounds);
  EXPECT_GT(checkpointed.report.ckpt_snapshots, 0u);
  EXPECT_GT(checkpointed.report.ckpt_wal_records, 0u);
  EXPECT_FALSE(checkpointed.recovery.recovered);
}

/// The oracle proper: for every crash round and both crash points, the
/// crashed-and-recovered run reproduces the uninterrupted checkpointed run
/// bit-for-bit.
TEST_P(CrashRecoveryTest, CrashAtAnyRoundRecoversBitIdentical) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  const sched::SchedulerKind kind = GetParam();

  TempDir ref_dir("ref_" + std::string(ToString(kind)));
  SimConfig ref_config = OracleConfig(fx);
  ref_config.checkpoint.dir = ref_dir.path().string();
  ref_config.checkpoint.cadence = 2;
  const SimResult reference = RunWith(fx, ref_config, kind, events);
  const std::string want_records = RecordsCsv(reference);
  const std::string want_report = NormalizedReportCsv(reference);
  ASSERT_GE(reference.rounds, 3u);

  for (const fault::CrashPoint point :
       {fault::CrashPoint::kBeforeRound, fault::CrashPoint::kMidRound}) {
    for (std::size_t crash_round = 1; crash_round <= reference.rounds;
         ++crash_round) {
      const std::string tag =
          std::string(ToString(kind)) + "_r" + std::to_string(crash_round) +
          (point == fault::CrashPoint::kMidRound ? "_mid" : "_pre");
      TempDir dir(tag);
      SimConfig config = ref_config;
      config.checkpoint.dir = dir.path().string();
      config.faults.crash.at_round = crash_round;
      config.faults.crash.point = point;

      Simulator sim(fx.network, fx.provider, config);
      const auto scheduler = sched::MakeScheduler(kind);
      EXPECT_THROW((void)sim.Run(*scheduler, events), fault::ControllerCrash)
          << tag;

      // Recover with a FRESH simulator and scheduler — nothing survives the
      // crash in memory, only the checkpoint directory.
      Simulator recovered_sim(fx.network, fx.provider, config);
      const auto recovered_sched = sched::MakeScheduler(kind);
      const SimResult recovered =
          recovered_sim.Resume(*recovered_sched, events);

      EXPECT_TRUE(recovered.recovery.recovered) << tag;
      EXPECT_EQ(RecordsCsv(recovered), want_records) << tag;
      EXPECT_EQ(NormalizedReportCsv(recovered), want_report) << tag;
      EXPECT_EQ(recovered.report.ckpt_recoveries, 1u) << tag;
      if (point == fault::CrashPoint::kMidRound) {
        // kMidRound tears the record being written; recovery must have
        // truncated it rather than replayed it.
        EXPECT_GT(recovered.recovery.torn_bytes_truncated, 0u) << tag;
      }
    }
  }
}

/// Crash-during-repair: the oracle with a lying dataplane and the
/// reconciler on. Mid-repair state (tracked divergence, retry backoff,
/// health EWMAs, in-flight grey applies, the armed reconcile tick) all
/// rides the snapshot; killing the run at every round must still replay to
/// identical bytes.
TEST_P(CrashRecoveryTest, CrashDuringRepairRecoversBitIdentical) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  const sched::SchedulerKind kind = GetParam();

  TempDir ref_dir("grey_ref_" + std::string(ToString(kind)));
  SimConfig ref_config = OracleConfig(fx);
  ref_config.faults.grey = fault::ParseGreyModel(
      "acklie:0.25+straggler:0.3:0.1:0.5+loss:0.15:0.5:1.5");
  ref_config.recon.enabled = true;
  ref_config.checkpoint.dir = ref_dir.path().string();
  ref_config.checkpoint.cadence = 2;
  const SimResult reference = RunWith(fx, ref_config, kind, events);
  const std::string want_records = RecordsCsv(reference);
  const std::string want_report = NormalizedReportCsv(reference);
  ASSERT_GE(reference.rounds, 3u);
  // The run must actually have been drifting, or this proves nothing.
  ASSERT_GT(reference.report.drift_rules_detected, 0u);
  ASSERT_GT(reference.report.drift_repairs, 0u);

  for (const fault::CrashPoint point :
       {fault::CrashPoint::kBeforeRound, fault::CrashPoint::kMidRound}) {
    for (std::size_t crash_round = 1; crash_round <= reference.rounds;
         ++crash_round) {
      const std::string tag =
          "grey_" + std::string(ToString(kind)) + "_r" +
          std::to_string(crash_round) +
          (point == fault::CrashPoint::kMidRound ? "_mid" : "_pre");
      TempDir dir(tag);
      SimConfig config = ref_config;
      config.checkpoint.dir = dir.path().string();
      config.faults.crash.at_round = crash_round;
      config.faults.crash.point = point;

      Simulator sim(fx.network, fx.provider, config);
      const auto scheduler = sched::MakeScheduler(kind);
      EXPECT_THROW((void)sim.Run(*scheduler, events), fault::ControllerCrash)
          << tag;

      Simulator recovered_sim(fx.network, fx.provider, config);
      const auto recovered_sched = sched::MakeScheduler(kind);
      const SimResult recovered =
          recovered_sim.Resume(*recovered_sched, events);

      EXPECT_TRUE(recovered.recovery.recovered) << tag;
      EXPECT_EQ(RecordsCsv(recovered), want_records) << tag;
      EXPECT_EQ(NormalizedReportCsv(recovered), want_report) << tag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, CrashRecoveryTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf));

/// A corrupt newest snapshot must not end recovery: the restore falls back
/// to the previous snapshot and replays its (longer) journal instead.
TEST(CrashRecoveryFallbackTest, CorruptNewestSnapshotFallsBackAndRecovers) {
  const Fixture fx;
  const auto events = MakeEvents(fx);

  TempDir ref_dir("fallback_ref");
  SimConfig config = OracleConfig(fx);
  config.checkpoint.dir = ref_dir.path().string();
  config.checkpoint.cadence = 1;
  const SimResult reference =
      RunWith(fx, config, sched::SchedulerKind::kLmtf, events);
  ASSERT_GE(reference.rounds, 4u);

  TempDir dir("fallback");
  config.checkpoint.dir = dir.path().string();
  config.faults.crash.at_round = 4;
  {
    Simulator sim(fx.network, fx.provider, config);
    const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kLmtf);
    EXPECT_THROW((void)sim.Run(*scheduler, events), fault::ControllerCrash);
  }
  const auto rounds = ckpt::ListSnapshotRounds(dir.path());
  ASSERT_GE(rounds.size(), 2u);
  // Flip one payload byte of the newest snapshot.
  const fs::path newest = ckpt::SnapshotPath(dir.path(), rounds.front());
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    char c = 0;
    f.seekg(30);
    f.get(c);
    f.seekp(30);
    f.put(static_cast<char>(c ^ 0x20));
  }

  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kLmtf);
  const SimResult recovered = sim.Resume(*scheduler, events);
  EXPECT_TRUE(recovered.recovery.recovered);
  EXPECT_EQ(recovered.recovery.snapshots_skipped, 1u);
  EXPECT_EQ(recovered.recovery.snapshot_round, rounds[1]);
  EXPECT_EQ(RecordsCsv(recovered), RecordsCsv(reference));
}

/// A corrupted journal record must fail recovery loudly — an older snapshot
/// would silently skip verification, so this is not a fallback case.
TEST(CrashRecoveryFallbackTest, CorruptJournalFailsLoudly) {
  const Fixture fx;
  const auto events = MakeEvents(fx);

  TempDir dir("wal_corrupt");
  SimConfig config = OracleConfig(fx);
  config.checkpoint.dir = dir.path().string();
  config.checkpoint.cadence = 10'000;  // one snapshot, one long journal
  config.faults.crash.at_round = 3;
  {
    Simulator sim(fx.network, fx.provider, config);
    const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kFifo);
    EXPECT_THROW((void)sim.Run(*scheduler, events), fault::ControllerCrash);
  }
  const fs::path wal = ckpt::JournalPath(dir.path(), 0);
  ASSERT_GT(fs::file_size(wal), 20u);
  {
    // Flip a payload byte of the FIRST record (offset 10 sits inside its
    // payload: 8 bytes of framing + op + subject).
    std::fstream f(wal, std::ios::binary | std::ios::in | std::ios::out);
    char c = 0;
    f.seekg(10);
    f.get(c);
    f.seekp(10);
    f.put(static_cast<char>(c ^ 0x01));
  }
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kFifo);
  EXPECT_THROW((void)sim.Resume(*scheduler, events), ckpt::JournalCorruption);
}

/// A journal record that passes its CRC but does not match re-execution is
/// a divergence: the oracle's whole point is that this throws rather than
/// silently producing different results.
TEST(CrashRecoveryFallbackTest, TamperedJournalRecordIsADivergence) {
  const Fixture fx;
  const auto events = MakeEvents(fx);

  TempDir dir("wal_tamper");
  SimConfig config = OracleConfig(fx);
  config.checkpoint.dir = dir.path().string();
  config.checkpoint.cadence = 10'000;
  config.faults.crash.at_round = 3;
  {
    Simulator sim(fx.network, fx.provider, config);
    const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kFifo);
    EXPECT_THROW((void)sim.Run(*scheduler, events), fault::ControllerCrash);
  }
  const fs::path wal = ckpt::JournalPath(dir.path(), 0);
  const ckpt::JournalContents contents = ckpt::ReadJournal(wal);
  ASSERT_FALSE(contents.records.empty());
  // Re-frame the first record with a modified value and a VALID checksum.
  ckpt::WalRecord tampered = contents.records.front();
  tampered.value += 1.0;
  std::string bytes = ckpt::EncodeWalFrame(tampered);
  {
    std::fstream f(wal, std::ios::binary | std::ios::in | std::ios::out);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kFifo);
  EXPECT_THROW((void)sim.Resume(*scheduler, events), RecoveryError);
}

TEST(CrashRecoveryFallbackTest, ResumeWithoutCheckpointDirThrows) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  SimConfig config = OracleConfig(fx);
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kFifo);
  EXPECT_THROW((void)sim.Resume(*scheduler, events), RecoveryError);
}

TEST(CrashRecoveryFallbackTest, ResumeFromEmptyDirThrows) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  TempDir dir("empty");
  SimConfig config = OracleConfig(fx);
  config.checkpoint.dir = dir.path().string();
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(sched::SchedulerKind::kFifo);
  EXPECT_THROW((void)sim.Resume(*scheduler, events), RecoveryError);
}

}  // namespace
}  // namespace nu::sim
