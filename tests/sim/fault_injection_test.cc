// Simulator under fault injection: mid-round link/switch failures strand
// in-flight update flows and force replanning on surviving paths; flaky
// installs retry and abort; fixed seeds reproduce runs bit-for-bit.
#include <gtest/gtest.h>

#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/planner.h"

namespace nu::sim {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  [[nodiscard]] update::UpdateEvent Event(
      std::uint64_t id, Seconds arrival, std::vector<flow::Flow> flows) const {
    return update::UpdateEvent(EventId{id}, arrival, std::move(flows));
  }

  /// The path the simulator's planner will choose for `flow` on the empty
  /// network — lets tests aim a fault at a link the flow actually uses.
  [[nodiscard]] topo::Path PlannedPath(const flow::Flow& flow,
                                       const SimConfig& config) const {
    net::Network copy = network;
    const update::EventPlanner planner(provider, config.migration_options,
                                       config.path_selection);
    Mbps migrated = 0.0;
    const auto placed = planner.PlaceFlow(copy, flow, &migrated);
    NU_CHECK(placed.has_value());
    return copy.PathOf(*placed);
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

SimConfig SlowInstallConfig() {
  SimConfig config;
  config.cost_model.plan_time_per_flow = 0.001;
  config.cost_model.migration_rate = 10000.0;
  config.cost_model.install_time_per_flow = 1.0;  // faults can hit mid-install
  config.seed = 7;
  config.validate_invariants = true;
  return config;
}

TEST(FaultInjectionTest, MidInstallLinkFailureForcesReplanning) {
  Fixture fx;
  SimConfig config = SlowInstallConfig();
  const flow::Flow flow = fx.MakeFlow(0, 12, 10.0, 50.0);
  // Fail a fabric link of the path the planner will pick, while the
  // install (1 s) is still in flight.
  const topo::Path planned = fx.PlannedPath(flow, config);
  config.faults.plan.AddLinkDown(0.5, planned.links[1]);

  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {flow}));
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.fault_stats.link_failures, 1u);
  EXPECT_EQ(result.fault_stats.flows_killed, 1u);
  EXPECT_EQ(result.fault_stats.events_replanned, 1u);
  EXPECT_EQ(result.records[0].replans, 1u);
  EXPECT_EQ(result.forced_placements, 0u);  // surviving paths existed
  // The replacement was re-placed at the fault time and reinstalled one
  // install latency later.
  ASSERT_EQ(result.fault_stats.recovery_latency.count(), 1u);
  EXPECT_NEAR(result.fault_stats.recovery_latency.mean(), 1.0, 1e-9);
  EXPECT_NEAR(result.records[0].completion, 1.5, 1e-6);
  EXPECT_EQ(result.report.events_replanned, 1u);
}

TEST(FaultInjectionTest, SwitchFailureStrandsAndRecovers) {
  Fixture fx;
  SimConfig config = SlowInstallConfig();
  const flow::Flow flow = fx.MakeFlow(0, 12, 10.0, 50.0);
  const topo::Path planned = fx.PlannedPath(flow, config);
  // Kill the aggregation switch (second node) mid-install; the pod has a
  // second aggregation switch, so a surviving path exists.
  config.faults.plan.AddSwitchDown(0.5, planned.nodes[2]);

  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {flow}));
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  EXPECT_EQ(result.fault_stats.switch_failures, 1u);
  EXPECT_EQ(result.fault_stats.flows_killed, 1u);
  EXPECT_EQ(result.fault_stats.events_replanned, 1u);
  EXPECT_EQ(result.forced_placements, 0u);
}

TEST(FaultInjectionTest, FaultAfterCompletionKillsWithoutReplanning) {
  Fixture fx;
  SimConfig config = SlowInstallConfig();
  const flow::Flow flow = fx.MakeFlow(0, 12, 10.0, 50.0);
  const topo::Path planned = fx.PlannedPath(flow, config);
  // Event 0's install finishes ~1.0 s after exec start; fail its link after
  // that: the event is complete, so its flow just dies — no replanning, no
  // re-deferral. Event 1 (hosts in other pods, disjoint from the dead link)
  // keeps the simulation alive past the fault time.
  config.faults.plan.AddLinkDown(2.0, planned.links[1]);

  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {flow}));
  events.push_back(fx.Event(1, 3.0, {fx.MakeFlow(4, 8, 10.0, 50.0)}));
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  EXPECT_EQ(result.fault_stats.flows_killed, 1u);
  EXPECT_EQ(result.fault_stats.events_replanned, 0u);
  EXPECT_EQ(result.fault_stats.recovery_latency.count(), 0u);
  EXPECT_NEAR(result.records[0].completion, result.records[0].exec_start + 1.0,
              1e-6);
}

TEST(FaultInjectionTest, FlakyInstallsRetryAndAbort) {
  Fixture fx;
  SimConfig config = SlowInstallConfig();
  config.cost_model.install_time_per_flow = 0.05;
  config.faults.flaky.failure_probability = 0.7;
  config.faults.flaky.latency_jitter_frac = 0.2;
  config.faults.retry.max_attempts = 2;
  config.faults.retry.base_delay = 0.01;

  std::vector<update::UpdateEvent> events;
  std::vector<flow::Flow> flows;
  for (std::size_t i = 0; i < 6; ++i) {
    flows.push_back(fx.MakeFlow(i, 8 + i, 10.0, 5.0));
  }
  events.push_back(fx.Event(0, 0.0, std::move(flows)));
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_GT(result.fault_stats.installs_attempted, 0u);
  EXPECT_GT(result.fault_stats.installs_retried, 0u);
  EXPECT_GT(result.fault_stats.installs_failed, 0u);
  EXPECT_GT(result.fault_stats.events_aborted, 0u);
  EXPECT_EQ(result.records[0].aborts, result.fault_stats.events_aborted);
  // Aborted flows recovered: their disruption -> reinstall latencies exist.
  EXPECT_GT(result.fault_stats.recovery_latency.count(), 0u);
  // Counters agree: every attempt beyond a batch's first is a retry.
  EXPECT_GE(result.fault_stats.installs_attempted,
            result.fault_stats.installs_retried);
  EXPECT_EQ(result.report.installs_retried,
            result.fault_stats.installs_retried);
}

TEST(FaultInjectionTest, FixedSeedFaultRunsAreBitReproducible) {
  Fixture fx;
  SimConfig config = SlowInstallConfig();
  config.cost_model.install_time_per_flow = 0.2;
  config.faults.flaky.failure_probability = 0.3;
  config.faults.flaky.latency_jitter_frac = 0.25;
  const flow::Flow probe = fx.MakeFlow(0, 12, 10.0, 40.0);
  const topo::Path planned = fx.PlannedPath(probe, config);
  config.faults.plan.AddLinkOutage(0.3, 2.0, planned.links[1]);

  auto run = [&] {
    std::vector<update::UpdateEvent> events;
    for (std::uint64_t i = 0; i < 4; ++i) {
      events.push_back(fx.Event(i, 0.0,
                                {fx.MakeFlow(i, 8 + i, 10.0, 40.0),
                                 fx.MakeFlow(i + 4, 12 + i, 10.0, 40.0)}));
    }
    Simulator sim(fx.network, fx.provider, config);
    sched::FifoScheduler fifo;
    return sim.Run(fifo, events);
  };

  const SimResult a = run();
  const SimResult b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].event, b.records[i].event);
    EXPECT_DOUBLE_EQ(a.records[i].completion, b.records[i].completion);
    EXPECT_DOUBLE_EQ(a.records[i].exec_start, b.records[i].exec_start);
    EXPECT_DOUBLE_EQ(a.records[i].cost, b.records[i].cost);
    EXPECT_EQ(a.records[i].aborts, b.records[i].aborts);
    EXPECT_EQ(a.records[i].replans, b.records[i].replans);
  }
  EXPECT_EQ(a.fault_stats.installs_attempted,
            b.fault_stats.installs_attempted);
  EXPECT_EQ(a.fault_stats.installs_retried, b.fault_stats.installs_retried);
  EXPECT_EQ(a.fault_stats.flows_killed, b.fault_stats.flows_killed);
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan);
  EXPECT_DOUBLE_EQ(a.report.recovery_latency_mean,
                   b.report.recovery_latency_mean);
}

TEST(FaultInjectionTest, LinkOutageRecoversCapacityForDeferredFlows) {
  // Saturate the only surviving capacity so the replanned victim must wait
  // for the link-up before it can reinstall.
  Fixture fx;
  SimConfig config = SlowInstallConfig();
  const flow::Flow flow = fx.MakeFlow(0, 12, 10.0, 50.0);
  const topo::Path planned = fx.PlannedPath(flow, config);
  config.faults.plan.AddLinkOutage(0.5, 3.0, planned.links[1]);

  std::vector<update::UpdateEvent> events;
  events.push_back(fx.Event(0, 0.0, {flow}));
  Simulator sim(fx.network, fx.provider, config);
  sched::FifoScheduler fifo;
  const SimResult result = sim.Run(fifo, events);

  // Whether the flow replans around the outage or waits it out, the run
  // must finish consistently with the counters agreeing.
  EXPECT_EQ(result.fault_stats.link_failures, 1u);
  EXPECT_EQ(result.fault_stats.flows_killed, 1u);
  EXPECT_EQ(result.records.size(), 1u);
}

}  // namespace
}  // namespace nu::sim
