// Grey failures + reconciliation end to end: lying switches drift, the
// periodic read-back repairs them, runs converge to zero unexcused residual
// drift, quarantine drains perma-liars, the auditor's drift bound catches a
// reconciler that spins without escalating, and everything is bit-identical
// across reruns. Enabling the subsystem with a healthy dataplane must not
// perturb a run at all (disabled-subsystems-draw-nothing).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "metrics/export.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/planner.h"

namespace nu::sim {
namespace {

struct Fixture {
  Fixture()
      : ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0}),
        provider(ft),
        network(ft.graph()) {}

  [[nodiscard]] flow::Flow MakeFlow(std::size_t src, std::size_t dst,
                                    Mbps demand, Seconds duration) const {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = demand;
    f.duration = duration;
    return f;
  }

  topo::FatTree ft;
  topo::FatTreePathProvider provider;
  net::Network network;
};

std::vector<update::UpdateEvent> MakeEvents(const Fixture& fx) {
  std::vector<update::UpdateEvent> events;
  std::uint64_t id = 0;
  for (std::size_t wave = 0; wave < 4; ++wave) {
    for (std::size_t i = 0; i < 2; ++i) {
      std::vector<flow::Flow> flows;
      const std::size_t count = 2 + (wave + i) % 3;
      for (std::size_t f = 0; f < count; ++f) {
        flows.push_back(fx.MakeFlow((id + f) % 16, (id + f + 5) % 16,
                                    8.0 + static_cast<double>(f),
                                    20.0 + static_cast<double>(wave) * 5.0));
      }
      events.emplace_back(EventId{id}, 0.4 * static_cast<double>(wave) +
                                           0.1 * static_cast<double>(i),
                          std::move(flows));
      ++id;
    }
  }
  return events;
}

SimConfig GreyConfig() {
  SimConfig config;
  config.seed = 20260809;
  config.cost_model.plan_time_per_flow = 0.002;
  config.cost_model.install_time_per_flow = 0.05;
  config.validate_invariants = true;
  config.faults.grey =
      fault::ParseGreyModel("acklie:0.25+straggler:0.3:0.1:0.5+loss:0.15:0.5:1.5");
  config.recon.enabled = true;
  config.guard.auditor.enabled = true;
  config.guard.auditor.cadence = 4;
  return config;
}

SimResult RunWith(const Fixture& fx, const SimConfig& config,
                  sched::SchedulerKind kind,
                  std::span<const update::UpdateEvent> events) {
  Simulator sim(fx.network, fx.provider, config);
  const auto scheduler = sched::MakeScheduler(kind);
  return sim.Run(*scheduler, events);
}

std::string RecordsCsv(const SimResult& result) {
  std::ostringstream out;
  metrics::WriteRecordsCsv(out, result.records);
  return out.str();
}

std::string NormalizedReportCsv(const SimResult& result) {
  metrics::Report report = result.report;
  report.probe_wall_seconds = 0.0;
  report.overlay_bytes_saved = 0.0;
  std::ostringstream out;
  metrics::WriteReportCsv(out, report);
  return out.str();
}

class ReconSimTest : public ::testing::TestWithParam<sched::SchedulerKind> {};

/// The tentpole invariant: a lossy grey run converges. Every divergence is
/// either repaired or explicitly abandoned — active drift at end of run
/// would have deadlocked the drain gate or shown up as excess residual.
TEST_P(ReconSimTest, GreyRunConvergesToExcusedResidualOnly) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  const SimResult result = RunWith(fx, GreyConfig(), GetParam(), events);

  const metrics::Report& rep = result.report;
  EXPECT_GT(rep.drift_checks, 0u);
  EXPECT_GT(rep.grey_ack_lies + rep.grey_stragglers + rep.grey_rules_lost, 0u);
  EXPECT_GT(rep.drift_rules_detected, 0u);
  EXPECT_GT(rep.drift_repairs, 0u);
  // Residual divergence is exactly the abandoned entries still present —
  // nothing active survived the drain gate.
  EXPECT_LE(rep.drift_residual_rules, rep.drift_rules_abandoned);
  EXPECT_TRUE(result.violations.empty()) << result.violations.size();
  EXPECT_EQ(result.records.size(), events.size());
}

TEST_P(ReconSimTest, GreyRunsAreBitIdentical) {
  const Fixture fx;
  const auto events = MakeEvents(fx);
  const SimResult a = RunWith(fx, GreyConfig(), GetParam(), events);
  const SimResult b = RunWith(fx, GreyConfig(), GetParam(), events);
  EXPECT_EQ(RecordsCsv(a), RecordsCsv(b));
  EXPECT_EQ(NormalizedReportCsv(a), NormalizedReportCsv(b));
}

/// Reconciler on, dataplane honest: no draws, no drift, and the run is
/// byte-identical to one with the subsystem off entirely.
TEST_P(ReconSimTest, HonestDataplaneIsObservationallyTransparent) {
  const Fixture fx;
  const auto events = MakeEvents(fx);

  SimConfig plain;
  plain.seed = 20260809;
  plain.cost_model.plan_time_per_flow = 0.002;
  plain.cost_model.install_time_per_flow = 0.05;
  plain.validate_invariants = true;
  const SimResult baseline = RunWith(fx, plain, GetParam(), events);

  SimConfig with_recon = plain;
  with_recon.recon.enabled = true;
  const SimResult reconciled = RunWith(fx, with_recon, GetParam(), events);

  EXPECT_EQ(RecordsCsv(reconciled), RecordsCsv(baseline));
  EXPECT_EQ(reconciled.report.drift_checks, 0u);
  EXPECT_EQ(reconciled.report.drift_rules_detected, 0u);
  // Every issued rule verified on the spot; nothing ever drifted.
  EXPECT_GT(reconciled.recon_stats.rules_issued, 0u);
  EXPECT_EQ(reconciled.recon_stats.rules_verified,
            reconciled.recon_stats.rules_issued);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ReconSimTest,
                         ::testing::Values(sched::SchedulerKind::kFifo,
                                           sched::SchedulerKind::kLmtf,
                                           sched::SchedulerKind::kPlmtf));

/// A switch that lies on every install is quarantined and drained like a
/// switch-down fault; its residual drift is dropped with it.
TEST(ReconQuarantineTest, PermaLiarIsQuarantinedAndDrained) {
  const Fixture fx;
  SimConfig config;
  config.seed = 7;
  config.cost_model.plan_time_per_flow = 0.001;
  config.cost_model.install_time_per_flow = 0.05;
  config.validate_invariants = true;
  config.recon.enabled = true;
  // One incident pass is enough to quarantine: the EWMA jumps straight
  // past the threshold.
  config.recon.health.ewma_alpha = 0.9;

  // Aim total ack-lies at the aggregation switch the planner will route
  // through; the pod has a second one, so draining the liar leaves a
  // surviving path for the flow.
  const flow::Flow flow = fx.MakeFlow(0, 12, 10.0, 50.0);
  net::Network probe_net = fx.network;
  const update::EventPlanner planner(fx.provider, config.migration_options,
                                     config.path_selection);
  Mbps migrated = 0.0;
  const auto placed = planner.PlaceFlow(probe_net, flow, &migrated);
  ASSERT_TRUE(placed.has_value());
  const NodeId liar = probe_net.PathOf(*placed).nodes[2];
  config.faults.grey = fault::ParseGreyModel(
      "acklie:1:0:0:0:0:" + std::to_string(liar.value()));

  std::vector<update::UpdateEvent> events;
  events.emplace_back(EventId{0}, 0.0, std::vector<flow::Flow>{flow});
  const SimResult result =
      RunWith(fx, config, sched::SchedulerKind::kLmtf, events);

  EXPECT_EQ(result.report.switches_quarantined, 1u);
  EXPECT_GE(result.fault_stats.switch_failures, 1u);  // the synthetic drain
  // The quarantined switch took its divergence with it.
  EXPECT_EQ(result.report.drift_residual_rules, 0u);
  EXPECT_TRUE(result.violations.empty());
}

/// With quarantine disabled, a perma-liar must trip the auditor's
/// bounded-drift invariant instead of spinning silently.
TEST(ReconAuditTest, UnboundedDriftIsAnAuditViolation) {
  const Fixture fx;
  SimConfig config;
  config.seed = 7;
  config.cost_model.plan_time_per_flow = 0.001;
  config.cost_model.install_time_per_flow = 0.05;
  config.faults.grey = fault::ParseGreyModel("acklie:1");
  config.recon.enabled = true;
  config.recon.period = 0.05;
  config.recon.health.quarantine_threshold = 2.0;  // never quarantine
  config.recon.max_passes_at_drift = 2;
  config.guard.auditor.enabled = true;
  config.guard.auditor.mode = guard::AuditMode::kLogAndCount;
  config.guard.auditor.cadence = 1;

  std::vector<update::UpdateEvent> events;
  events.emplace_back(
      EventId{0}, 0.0,
      std::vector<flow::Flow>{fx.MakeFlow(0, 12, 10.0, 30.0)});
  const SimResult result =
      RunWith(fx, config, sched::SchedulerKind::kFifo, events);

  bool saw_drift = false;
  for (const guard::AuditViolation& v : result.violations) {
    if (v.invariant == "drift") saw_drift = true;
  }
  EXPECT_TRUE(saw_drift) << result.violations.size()
                         << " violations, none from the drift invariant";
  // The run still terminates: every rule's repair budget ran out.
  EXPECT_GT(result.report.drift_rules_abandoned, 0u);
}

}  // namespace
}  // namespace nu::sim
