// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build an 8-pod Fat-Tree (the paper's testbed).
//   2. Fill it with Yahoo!-like background traffic to 70% utilization.
//   3. Generate a queue of update events.
//   4. Schedule them with FIFO and with P-LMTF and compare the paper's
//      headline metrics.
//
// Run:  ./quickstart
#include <cstdio>

#include "common/table.h"
#include "exp/runner.h"

int main() {
  using namespace nu;

  // 1-3. The experiment harness bundles topology + background + events.
  exp::ExperimentConfig config;
  config.fat_tree_k = 8;          // 80 switches, 128 hosts
  config.utilization = 0.7;       // background load target
  config.event_count = 20;        // queued update events
  config.min_flows_per_event = 10;
  config.max_flows_per_event = 100;
  config.alpha = 4;               // LMTF/P-LMTF sample size
  config.seed = 1;

  std::printf("building workload (k=%zu fat-tree, %.0f%% utilization)...\n",
              config.fat_tree_k, config.utilization * 100.0);
  const exp::Workload workload(config);
  std::printf("  background flows placed: %zu (utilization %.1f%%)\n",
              workload.background().placed_flows,
              workload.background().achieved_utilization * 100.0);
  std::printf("  update events queued:    %zu\n\n", workload.events().size());

  // 4. Run the two schedulers on identical copies of the network.
  const sim::SimResult fifo =
      exp::RunScheduler(workload, sched::SchedulerKind::kFifo);
  const sim::SimResult plmtf =
      exp::RunScheduler(workload, sched::SchedulerKind::kPlmtf);

  AsciiTable table({"metric", "fifo", "p-lmtf", "reduction"});
  auto row = [&table](const char* name, double baseline, double ours) {
    table.Row()
        .Cell(name)
        .Cell(baseline, 2)
        .Cell(ours, 2)
        .Cell(PercentString(ReductionVs(baseline, ours)));
  };
  row("avg ECT (s)", fifo.report.avg_ect, plmtf.report.avg_ect);
  row("tail ECT (s)", fifo.report.tail_ect, plmtf.report.tail_ect);
  row("total update cost (Mbps migrated)", fifo.report.total_cost,
      plmtf.report.total_cost);
  row("avg queuing delay (s)", fifo.report.avg_queuing_delay,
      plmtf.report.avg_queuing_delay);
  table.Print();

  std::printf(
      "\nplan time: fifo %.2f s vs p-lmtf %.2f s (ratio %.2fx); rounds %zu "
      "vs %zu\n",
      fifo.report.total_plan_time, plmtf.report.total_plan_time,
      plmtf.report.total_plan_time / fifo.report.total_plan_time, fifo.rounds,
      plmtf.rounds);
  return 0;
}
