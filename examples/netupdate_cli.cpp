// netupdate_cli — run any experiment the library supports from the command
// line and print the paper's five metrics per scheduler, optionally as CSV.
//
//   ./netupdate_cli --events=30 --utilization=0.7 --alpha=4
//       --schedulers=fifo,lmtf,p-lmtf --flow-level --trials=3 --csv
//
// Flags (defaults in brackets):
//   --topology=fat-tree|leaf-spine [fat-tree]   --k=8       fat-tree pods
//   --utilization=0.7    target fabric utilization
//   --events=20          queued update events
//   --min-flows=10 --max-flows=100               flows per event
//   --alpha=4            LMTF/P-LMTF sample size
//   --trials=1           workload seeds averaged
//   --seed=1             base seed
//   --schedulers=...     comma list of fifo,reorder,lmtf,p-lmtf [all]
//   --flow-level         include the flow-level baseline
//   --static-background  disable background churn (Fig. 7 setting)
//   --quick-probes       estimate-based LMTF cost probes (~10x cheaper)
//   --trace=yahoo-like|benson|uniform [yahoo-like]
//   --csv                emit CSV instead of an ASCII table
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/csv.h"
#include "common/flags.h"
#include "common/table.h"
#include "exp/runner.h"

using namespace nu;

namespace {

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  std::istringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

exp::TraceFamily ParseTrace(const std::string& name) {
  if (name == "yahoo-like") return exp::TraceFamily::kYahooLike;
  if (name == "benson") return exp::TraceFamily::kBenson;
  if (name == "uniform") return exp::TraceFamily::kUniform;
  std::fprintf(stderr, "unknown trace family: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.Has("help")) {
    std::printf("see the header comment of examples/netupdate_cli.cpp\n");
    return 0;
  }

  exp::ExperimentConfig config;
  const std::string topology = flags.GetString("topology", "fat-tree");
  if (topology == "leaf-spine") {
    config.topology = exp::TopologyKind::kLeafSpine;
  } else if (topology != "fat-tree") {
    std::fprintf(stderr, "unknown topology: %s\n", topology.c_str());
    return 2;
  }
  config.fat_tree_k = flags.GetUint("k", 8);
  config.utilization = flags.GetDouble("utilization", 0.7);
  config.event_count = flags.GetUint("events", 20);
  config.min_flows_per_event = flags.GetUint("min-flows", 10);
  config.max_flows_per_event = flags.GetUint("max-flows", 100);
  config.alpha = flags.GetUint("alpha", 4);
  config.seed = flags.GetUint("seed", 1);
  config.background_trace = ParseTrace(flags.GetString("trace", "yahoo-like"));
  config.background_churn = !flags.GetBool("static-background", false);
  config.sim.quick_cost_probes = flags.GetBool("quick-probes", false);
  const std::size_t trials = flags.GetUint("trials", 1);
  const bool include_flow_level = flags.GetBool("flow-level", false);
  const bool as_csv = flags.GetBool("csv", false);

  std::vector<sched::SchedulerKind> kinds;
  for (const std::string& name : SplitCommaList(
           flags.GetString("schedulers", "fifo,reorder,lmtf,p-lmtf"))) {
    kinds.push_back(sched::ParseSchedulerKind(name));
  }

  const auto unknown = flags.UnqueriedFlags();
  if (!unknown.empty()) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
    }
    return 2;
  }

  const exp::ComparisonResult result =
      exp::CompareSchedulers(config, kinds, include_flow_level, trials);

  const std::vector<std::string> headers{
      "scheduler",        "avg_ect_s",  "tail_ect_s", "total_cost_mbps",
      "plan_time_s",      "avg_qdelay_s", "worst_qdelay_s", "makespan_s"};
  if (as_csv) {
    CsvWriter writer(std::cout);
    writer.WriteRow(headers);
    for (const auto& [name, r] : result.mean_by_name) {
      writer.WriteRow({name, FormatDouble(r.avg_ect, 3),
                       FormatDouble(r.tail_ect, 3),
                       FormatDouble(r.total_cost, 1),
                       FormatDouble(r.total_plan_time, 3),
                       FormatDouble(r.avg_queuing_delay, 3),
                       FormatDouble(r.worst_queuing_delay, 3),
                       FormatDouble(r.makespan, 3)});
    }
    return 0;
  }

  std::printf("%s k=%zu util=%.2f events=%zu flows=[%zu,%zu] alpha=%zu "
              "trials=%zu churn=%s trace=%s\n\n",
              exp::ToString(config.topology), config.fat_tree_k,
              config.utilization, config.event_count,
              config.min_flows_per_event, config.max_flows_per_event,
              config.alpha, trials, config.background_churn ? "on" : "off",
              exp::ToString(config.background_trace));
  AsciiTable table(headers);
  for (const auto& [name, r] : result.mean_by_name) {
    table.Row()
        .Cell(name)
        .Cell(r.avg_ect, 2)
        .Cell(r.tail_ect, 2)
        .Cell(r.total_cost, 0)
        .Cell(r.total_plan_time, 2)
        .Cell(r.avg_queuing_delay, 2)
        .Cell(r.worst_queuing_delay, 2)
        .Cell(r.makespan, 2);
  }
  table.Print();
  return 0;
}
