// netupdate_cli — run any experiment the library supports from the command
// line and print the paper's five metrics per scheduler, optionally as CSV.
//
//   ./netupdate_cli --events=30 --utilization=0.7 --alpha=4
//       --schedulers=fifo,lmtf,p-lmtf --flow-level --trials=3 --csv
//
// Flags (defaults in brackets):
//   --topology=fat-tree|leaf-spine [fat-tree]   --k=8       fat-tree pods
//   --utilization=0.7    target fabric utilization
//   --events=20          queued update events
//   --min-flows=10 --max-flows=100               flows per event
//   --alpha=4            LMTF/P-LMTF sample size
//   --trials=1           workload seeds averaged
//   --seed=1             base seed
//   --schedulers=...     comma list of fifo,reorder,lmtf,p-lmtf [all]
//   --flow-level         include the flow-level baseline
//   --static-background  disable background churn (Fig. 7 setting)
//   --quick-probes       estimate-based LMTF cost probes (~10x cheaper)
//   --trace=yahoo-like|benson|uniform [yahoo-like]
//   --csv                emit CSV instead of an ASCII table
//
// Checkpointing (single scheduler, single trial — see docs/model.md §11):
//   --checkpoint-dir=DIR      write snapshots + journals into DIR
//   --checkpoint-cadence=N    snapshot every N scheduling rounds [1]
//   --crash-at-round=N        inject a controller crash at round N (demo)
//   --resume                  recover from DIR and finish the crashed run
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/csv.h"
#include "common/flags.h"
#include "common/table.h"
#include "exp/runner.h"

using namespace nu;

namespace {

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  std::istringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

exp::TraceFamily ParseTrace(const std::string& name) {
  if (name == "yahoo-like") return exp::TraceFamily::kYahooLike;
  if (name == "benson") return exp::TraceFamily::kBenson;
  if (name == "uniform") return exp::TraceFamily::kUniform;
  std::fprintf(stderr, "unknown trace family: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.Has("help")) {
    std::printf("see the header comment of examples/netupdate_cli.cpp\n");
    return 0;
  }

  exp::ExperimentConfig config;
  const std::string topology = flags.GetString("topology", "fat-tree");
  if (topology == "leaf-spine") {
    config.topology = exp::TopologyKind::kLeafSpine;
  } else if (topology != "fat-tree") {
    std::fprintf(stderr, "unknown topology: %s\n", topology.c_str());
    return 2;
  }
  config.fat_tree_k = flags.GetUint("k", 8);
  config.utilization = flags.GetDouble("utilization", 0.7);
  config.event_count = flags.GetUint("events", 20);
  config.min_flows_per_event = flags.GetUint("min-flows", 10);
  config.max_flows_per_event = flags.GetUint("max-flows", 100);
  config.alpha = flags.GetUint("alpha", 4);
  config.seed = flags.GetUint("seed", 1);
  config.background_trace = ParseTrace(flags.GetString("trace", "yahoo-like"));
  config.background_churn = !flags.GetBool("static-background", false);
  config.sim.quick_cost_probes = flags.GetBool("quick-probes", false);
  const std::size_t trials = flags.GetUint("trials", 1);
  const bool include_flow_level = flags.GetBool("flow-level", false);
  const bool as_csv = flags.GetBool("csv", false);

  std::vector<sched::SchedulerKind> kinds;
  for (const std::string& name : SplitCommaList(
           flags.GetString("schedulers", "fifo,reorder,lmtf,p-lmtf"))) {
    kinds.push_back(sched::ParseSchedulerKind(name));
  }

  ckpt::CheckpointConfig checkpoint;
  checkpoint.dir = flags.GetString("checkpoint-dir", "");
  checkpoint.cadence = flags.GetUint("checkpoint-cadence", 1);
  config.sim.faults.crash.at_round = flags.GetUint("crash-at-round", 0);
  const bool resume = flags.GetBool("resume", false);

  const auto unknown = flags.UnqueriedFlags();
  if (!unknown.empty()) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
    }
    return 2;
  }

  // Checkpointing runs one scheduler on one workload: recovery is defined
  // against a single deterministic run, not an averaged comparison.
  if (checkpoint.enabled() || resume) {
    if (!checkpoint.enabled()) {
      std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
      return 2;
    }
    if (kinds.size() != 1 || trials != 1) {
      std::fprintf(stderr,
                   "--checkpoint-dir requires exactly one --schedulers entry "
                   "and --trials=1\n");
      return 2;
    }
    const exp::Workload workload(config);
    sim::SimResult run;
    try {
      run = exp::RunSchedulerCheckpointed(workload, kinds[0], checkpoint,
                                          resume);
    } catch (const fault::ControllerCrash& crash) {
      std::fprintf(stderr, "%s; rerun with --resume to recover\n",
                   crash.what());
      return 3;
    } catch (const sim::RecoveryError& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 4;
    }
    const metrics::Report& r = run.report;
    std::printf("%s: avg_ect=%.3f tail_ect=%.3f makespan=%.3f rounds=%zu\n",
                sched::ToString(kinds[0]), r.avg_ect, r.tail_ect, r.makespan,
                run.rounds);
    std::printf("checkpoint: snapshots=%zu wal_records=%zu snapshot_mb=%.2f\n",
                r.ckpt_snapshots, r.ckpt_wal_records,
                r.ckpt_snapshot_bytes / 1e6);
    if (run.recovery.recovered) {
      std::printf(
          "recovery: snapshot_round=%llu replayed=%llu torn_bytes=%llu "
          "snapshots_skipped=%llu wall_s=%.3f\n",
          static_cast<unsigned long long>(run.recovery.snapshot_round),
          static_cast<unsigned long long>(run.recovery.wal_records_replayed),
          static_cast<unsigned long long>(run.recovery.torn_bytes_truncated),
          static_cast<unsigned long long>(run.recovery.snapshots_skipped),
          run.recovery.recovery_wall_seconds);
    }
    return 0;
  }

  const exp::ComparisonResult result =
      exp::CompareSchedulers(config, kinds, include_flow_level, trials);

  const std::vector<std::string> headers{
      "scheduler",        "avg_ect_s",  "tail_ect_s", "total_cost_mbps",
      "plan_time_s",      "avg_qdelay_s", "worst_qdelay_s", "makespan_s"};
  if (as_csv) {
    CsvWriter writer(std::cout);
    writer.WriteRow(headers);
    for (const auto& [name, r] : result.mean_by_name) {
      writer.WriteRow({name, FormatDouble(r.avg_ect, 3),
                       FormatDouble(r.tail_ect, 3),
                       FormatDouble(r.total_cost, 1),
                       FormatDouble(r.total_plan_time, 3),
                       FormatDouble(r.avg_queuing_delay, 3),
                       FormatDouble(r.worst_queuing_delay, 3),
                       FormatDouble(r.makespan, 3)});
    }
    return 0;
  }

  std::printf("%s k=%zu util=%.2f events=%zu flows=[%zu,%zu] alpha=%zu "
              "trials=%zu churn=%s trace=%s\n\n",
              exp::ToString(config.topology), config.fat_tree_k,
              config.utilization, config.event_count,
              config.min_flows_per_event, config.max_flows_per_event,
              config.alpha, trials, config.background_churn ? "on" : "off",
              exp::ToString(config.background_trace));
  AsciiTable table(headers);
  for (const auto& [name, r] : result.mean_by_name) {
    table.Row()
        .Cell(name)
        .Cell(r.avg_ect, 2)
        .Cell(r.tail_ect, 2)
        .Cell(r.total_cost, 0)
        .Cell(r.total_plan_time, 2)
        .Cell(r.avg_queuing_delay, 2)
        .Cell(r.worst_queuing_delay, 2)
        .Cell(r.makespan, 2);
  }
  table.Print();
  return 0;
}
