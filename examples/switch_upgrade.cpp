// Switch-upgrade scenario: drain a core switch for maintenance, two ways.
//
//   A. Congestion-free in-place drain (update::PlanNodeDrain): order the
//      reroutes of every flow crossing the switch so that no intermediate
//      state overloads a link — the flows never stop transmitting.
//   B. Event-level replacement (the update-event abstraction): model the
//      upgrade as an UpdateEvent whose flows replace the affected ones,
//      planned by the EventPlanner with migration.
//
// Both leave the switch carrying zero flows; A is the production drain
// path, B demonstrates how upgrades feed the paper's event queue.
//
// Run:  ./switch_upgrade
#include <cstdio>

#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/background.h"
#include "trace/yahoo_like.h"
#include "update/event_generator.h"
#include "update/planner.h"
#include "update/transition.h"

using namespace nu;

namespace {

/// Builds the loaded network; returns the busiest core switch.
NodeId BusiestCore(const topo::FatTree& ft, const net::Network& network) {
  NodeId busiest = ft.core(0);
  std::size_t busiest_count = 0;
  for (std::size_t c = 0; c < ft.core_count(); ++c) {
    const std::size_t count =
        update::FlowsThroughNode(network, ft.core(c)).size();
    if (count > busiest_count) {
      busiest_count = count;
      busiest = ft.core(c);
    }
  }
  return busiest;
}

}  // namespace

int main() {
  topo::FatTree ft(topo::FatTreeConfig{.k = 8, .link_capacity = 1000.0});
  topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());

  trace::YahooLikeGenerator gen(ft.hosts(), Rng(7));
  trace::BackgroundOptions options;
  options.target_utilization = 0.5;
  options.random_path_seed = 7;  // hash placement loads cores unevenly
  const auto background =
      trace::InjectBackground(network, provider, gen, options);
  std::printf("background: %zu flows, %.1f%% utilization\n",
              background.placed_flows,
              background.achieved_utilization * 100.0);

  const NodeId busiest = BusiestCore(ft, network);
  const std::size_t affected =
      update::FlowsThroughNode(network, busiest).size();
  std::printf("upgrading %s: %zu flows must move\n\n",
              ft.graph().node(busiest).name.c_str(), affected);

  // --- A: congestion-free in-place drain ---
  {
    net::Network drained = network;
    const update::TransitionPlan plan =
        update::PlanNodeDrain(drained, provider, busiest);
    std::printf("[A] drain plan: %zu reroute steps (%zu detours), "
                "complete=%s, stuck=%zu\n",
                plan.steps.size(), plan.DetourCount(),
                plan.complete ? "yes" : "no", plan.stuck.size());
    update::ApplyTransition(drained, plan);
    std::printf("[A] flows still crossing after drain: %zu; network "
                "consistent: %s\n\n",
                update::FlowsThroughNode(drained, busiest).size(),
                drained.CheckInvariants() ? "yes" : "NO");
  }

  // --- B: the event-level view (feeds the paper's update queue) ---
  {
    net::Network replaced = network;
    const auto affected_ids = update::FlowsThroughNode(replaced, busiest);
    const update::UpdateEvent event =
        update::MakeSwitchUpgradeEvent(EventId{1}, 0.0, replaced, busiest);
    update::RemoveFlows(replaced, affected_ids);
    const topo::NodeAvoidingPathProvider avoiding(provider, busiest);
    const update::EventPlanner planner(avoiding);
    const update::ExecutionResult result = planner.Execute(replaced, event);
    std::printf("[B] upgrade event: %zu flows, Cost(U) = %.1f Mbps over %zu "
                "moves, %zu deferred\n",
                event.flow_count(), result.plan.migrated_traffic,
                result.plan.migration_moves, result.deferred_flows.size());
    std::printf("[B] flows still crossing: %zu; network consistent: %s\n",
                update::FlowsThroughNode(replaced, busiest).size(),
                replaced.CheckInvariants() ? "yes" : "NO");
  }
  return 0;
}
