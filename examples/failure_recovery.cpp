// Failure-recovery scenario: a sequence of cable failures, each producing a
// failure-reroute update event (the "network failures" trigger from the
// paper's introduction). Every affected flow is re-placed on a path avoiding
// the failed cable, with local migration freeing capacity where needed.
//
// Run:  ./failure_recovery
#include <cstdio>

#include "common/rng.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/background.h"
#include "trace/yahoo_like.h"
#include "update/event_generator.h"
#include "update/planner.h"

using namespace nu;

int main() {
  topo::FatTree ft(topo::FatTreeConfig{.k = 8, .link_capacity = 1000.0});
  topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());

  trace::YahooLikeGenerator gen(ft.hosts(), Rng(13));
  trace::BackgroundOptions options;
  options.target_utilization = 0.55;
  options.random_path_seed = 13;
  const auto background =
      trace::InjectBackground(network, provider, gen, options);
  std::printf("background: %zu flows, %.1f%% utilization\n\n",
              background.placed_flows,
              background.achieved_utilization * 100.0);

  // Fail three busy agg->core cables in sequence; recover after each.
  Rng rng(29);
  for (std::uint64_t episode = 0; episode < 3; ++episode) {
    // Pick the busiest currently-working agg->core cable.
    LinkId victim = LinkId::invalid();
    std::size_t victim_flows = 0;
    for (const topo::Link& l : ft.graph().links()) {
      const bool agg_core =
          ft.graph().node(l.src).role == topo::NodeRole::kAggSwitch &&
          ft.graph().node(l.dst).role == topo::NodeRole::kCoreSwitch;
      if (!agg_core) continue;
      const std::size_t crossing =
          update::FlowsThroughLink(network, l.id).size();
      if (crossing > victim_flows) {
        victim_flows = crossing;
        victim = l.id;
      }
    }
    if (!victim.valid() || victim_flows == 0) break;
    const topo::Link& cable = ft.graph().link(victim);
    std::printf("episode %llu: cable %s -> %s fails, %zu flows affected\n",
                static_cast<unsigned long long>(episode),
                ft.graph().node(cable.src).name.c_str(),
                ft.graph().node(cable.dst).name.c_str(), victim_flows);

    // Build the failure event, drop the dead flows, re-place avoiding the
    // cable.
    const auto affected = update::FlowsThroughLink(network, victim);
    const update::UpdateEvent event = update::MakeLinkFailureEvent(
        EventId{episode}, 0.0, network, victim);
    update::RemoveFlows(network, affected);

    const topo::LinkAvoidingPathProvider avoiding(provider, victim);
    const update::EventPlanner planner(avoiding);
    const update::ExecutionResult result = planner.Execute(network, event);
    std::printf("  recovered %zu/%zu flows; Cost(U) = %.1f Mbps over %zu "
                "migrations; %zu deferred\n",
                result.placed_flows.size(), event.flow_count(),
                result.plan.migrated_traffic, result.plan.migration_moves,
                result.deferred_flows.size());
    std::printf("  flows still on failed cable: %zu; network consistent: %s\n",
                update::FlowsThroughLink(network, victim).size(),
                network.CheckInvariants() ? "yes" : "NO");
  }
  return 0;
}
