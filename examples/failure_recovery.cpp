// Failure-recovery scenario, end to end: a seeded plan of cable outages and
// a flaky rule-install pipeline injected into the event-level simulator.
// Faults strand in-flight update flows mid-round; the simulator re-plans
// them on surviving paths, retries flaky installs with exponential backoff,
// and aborts+rolls back batches whose retries run out. The same machinery is
// then shown at the rule level: a two-phase schedule that dies before the
// ingress flip rolls back to the exact pre-update table.
//
// Run:  ./failure_recovery
#include <cstdio>

#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "fault/flaky_apply.h"
#include "sched/factory.h"

using namespace nu;

namespace {

void SimulatorUnderFaults() {
  std::printf("--- event-level simulation under faults ---\n");
  exp::ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.6;
  config.event_count = 12;
  config.min_flows_per_event = 5;
  config.max_flows_per_event = 25;
  config.alpha = 4;
  config.background_churn = true;
  config.seed = 31;

  {
    // Three random fabric cables fail during the run, 4 s outages each.
    const exp::Workload probe(config);
    Rng fault_rng(config.seed ^ 0xFA17ULL);
    fault::RandomLinkFaultOptions outages;
    outages.failures = 3;
    outages.first_failure = 1.0;
    outages.spacing = 2.0;
    outages.outage = 4.0;
    config.sim.faults.plan = fault::MakeRandomLinkFaultPlan(
        probe.network().graph(), outages, fault_rng);
  }
  config.sim.faults.flaky.failure_probability = 0.3;
  config.sim.faults.flaky.latency_jitter_frac = 0.2;
  config.sim.faults.retry.max_attempts = 3;
  config.sim.validate_invariants = true;  // re-verified after every batch

  for (const fault::FaultSpec& spec : config.sim.faults.plan.specs()) {
    std::printf("  t=%5.1f  %s\n", spec.time,
                spec.kind == fault::FaultKind::kLinkDown ? "link DOWN"
                                                         : "link UP");
  }

  const exp::Workload workload(config);
  const sim::SimResult result =
      exp::RunScheduler(workload, sched::SchedulerKind::kLmtf);
  const metrics::Report& r = result.report;
  std::printf("\n  %zu/%zu events completed, makespan %.1f s\n",
              result.records.size(), workload.events().size(), r.makespan);
  std::printf("  installs: %zu attempted, %zu retried, %zu exhausted\n",
              r.installs_attempted, r.installs_retried, r.installs_failed);
  std::printf("  recovery: %zu batch aborts (rolled back), %zu replans, "
              "%zu flows killed\n",
              r.events_aborted, r.events_replanned, r.flows_killed);
  if (r.flows_killed > 0 || r.events_aborted > 0) {
    std::printf("  disruption -> reinstall latency: mean %.2f s, p99 %.2f s\n",
                r.recovery_latency_mean, r.recovery_latency_p99);
  }
  std::printf("  invariants held after every occurrence batch\n\n");
}

void RuleLevelRollback() {
  std::printf("--- rule-level abort & rollback (two-phase) ---\n");
  topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  topo::FatTreePathProvider provider(ft);
  const FlowId flow{1};
  const auto& paths = provider.Paths(ft.host(0), ft.host(12));
  const topo::Path& old_path = paths[0];
  const topo::Path& new_path = paths[1];

  consistent::RuleTable rules;
  ApplyAll(rules, consistent::PlanInitialInstall(flow, old_path, 0));
  const auto schedule =
      consistent::PlanTwoPhaseReroute(flow, old_path, new_path, 0);
  std::printf("  two-phase reroute: %zu ops (%zu installs before the flip)\n",
              schedule.size(), new_path.links.size());

  // A pipeline this flaky with one retry per op will eventually exhaust a
  // budget; scan seeds for the first aborting run to show the rollback.
  fault::FlakyInstallModel flaky;
  flaky.failure_probability = 0.6;
  RetryPolicy retry;
  retry.max_attempts = 2;
  for (std::uint64_t seed = 0;; ++seed) {
    consistent::RuleTable attempt = rules;
    Rng rng(seed);
    const fault::FlakyApplyResult outcome =
        fault::ApplyWithFaults(attempt, schedule, flaky, retry, rng, 0.01);
    if (!outcome.rolled_back) continue;
    std::printf("  seed %llu: aborted after %zu attempts (%zu retries), "
                "%zu ops undone\n",
                static_cast<unsigned long long>(seed), outcome.attempts,
                outcome.retries, outcome.applied_ops);
    const auto fwd = ForwardPacket(ft.graph(), attempt, flow,
                                   old_path.source(), old_path.destination());
    std::printf("  post-rollback packet: %s via the OLD path (%zu rules, "
                "ingress v%u)\n",
                fwd.outcome == consistent::ForwardOutcome::kDelivered
                    ? "delivered"
                    : "LOST",
                attempt.RuleCountForFlow(flow), attempt.IngressVersion(flow));
    break;
  }

  // A healthy pipeline commits the same schedule.
  consistent::RuleTable healthy = rules;
  Rng rng(7);
  const fault::FlakyApplyResult ok = fault::ApplyWithFaults(
      healthy, schedule, fault::FlakyInstallModel{}, retry, rng, 0.01);
  std::printf("  healthy pipeline: committed=%s in %zu attempts, %.2f s\n",
              ok.committed ? "yes" : "no", ok.attempts, ok.elapsed);
}

}  // namespace

int main() {
  SimulatorUnderFaults();
  RuleLevelRollback();
  return 0;
}
