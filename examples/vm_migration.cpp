// VM-migration scenario: a batch of VM moves becomes a queue of update
// events (one per VM, several bulk state-transfer streams each) that the
// inter-event schedulers must order — the "VM migration" trigger from the
// paper's introduction.
//
// Run:  ./vm_migration
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/background.h"
#include "trace/yahoo_like.h"
#include "update/event_generator.h"

int main() {
  using namespace nu;

  topo::FatTree ft(topo::FatTreeConfig{.k = 8, .link_capacity = 1000.0});
  topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());

  trace::YahooLikeGenerator gen(ft.hosts(), Rng(21));
  trace::BackgroundOptions options;
  options.target_utilization = 0.6;
  trace::InjectBackground(network, provider, gen, options);

  // A consolidation wave: 12 VMs leave a "drained" rack for random targets.
  // Mixed VM sizes make the event queue heterogeneous, the regime where
  // LMTF-style scheduling matters.
  Rng rng(99);
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t vm = 0; vm < 12; ++vm) {
    const NodeId old_host = ft.host(vm % 4);  // first rack
    const NodeId new_host = ft.host(16 + rng.Index(ft.host_count() - 16));
    update::VmMigrationConfig config;
    config.streams = 2 + rng.Index(4);
    config.stream_demand = 80.0 + 40.0 * static_cast<double>(rng.Index(4));
    config.vm_volume = 2000.0 * static_cast<double>(1 + rng.Index(8));
    events.push_back(update::MakeVmMigrationEvent(EventId{vm}, 0.0, old_host,
                                                  new_host, config));
  }

  std::printf("migrating %zu VMs (%.0f Mb to %.0f Mb of state each)\n\n",
              events.size(), 2000.0, 16000.0);

  sim::SimConfig sim_config;
  sim_config.seed = 5;
  sim::Simulator simulator(network, provider, sim_config);

  AsciiTable table({"scheduler", "avg ECT (s)", "tail ECT (s)",
                    "cost (Mbps)", "plan time (s)", "rounds"});
  for (const auto kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
        sched::SchedulerKind::kPlmtf}) {
    const auto scheduler = sched::MakeScheduler(kind);
    const sim::SimResult result = simulator.Run(*scheduler, events);
    table.Row()
        .Cell(sched::ToString(kind))
        .Cell(result.report.avg_ect, 2)
        .Cell(result.report.tail_ect, 2)
        .Cell(result.report.total_cost, 1)
        .Cell(result.report.total_plan_time, 2)
        .Cell(result.rounds);
  }
  table.Print();
  std::printf("\nP-LMTF co-schedules compatible VM moves, so heavy VMs no "
              "longer block light ones.\n");
  return 0;
}
