// Consistent-update demo: a congested flow insertion triggers a migration
// plan; we realize the plan as a two-phase rule schedule and show that a
// packet forwarded at EVERY intermediate step stays on exactly one version's
// path — and that the naive in-place reroute breaks.
//
// Run:  ./consistent_update
#include <cstdio>

#include "consistent/migration_bridge.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

using namespace nu;

namespace {

const char* OutcomeName(consistent::ForwardOutcome outcome) {
  switch (outcome) {
    case consistent::ForwardOutcome::kDelivered:
      return "delivered";
    case consistent::ForwardOutcome::kDropped:
      return "DROPPED";
    case consistent::ForwardOutcome::kLooped:
      return "LOOPED";
  }
  return "?";
}

}  // namespace

int main() {
  topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());

  // A blocker occupies the desired path of a new 90 Mbps flow.
  const auto& blocker_paths = provider.Paths(ft.host(1), ft.host(3));
  flow::Flow blocker;
  blocker.src = ft.host(1);
  blocker.dst = ft.host(3);
  blocker.demand = 60.0;
  blocker.duration = 100.0;
  const FlowId blocker_id = network.Place(blocker, blocker_paths[0]);

  const auto& desired = provider.Paths(ft.host(0), ft.host(2))[0];
  std::printf("new flow host0->host2 needs 90 Mbps; desired path residual "
              "%.0f Mbps -> migration required\n",
              network.Residual(desired.links[1]));

  const update::MigrationOptimizer optimizer(provider);
  const update::MigrationPlan plan = optimizer.Plan(network, 90.0, desired);
  std::printf("migration plan: %zu move(s), %.0f Mbps migrated, feasible=%s\n",
              plan.moves.size(), plan.migrated_traffic,
              plan.feasible ? "yes" : "no");

  // Realize the plan on the data plane with two-phase consistency.
  consistent::VersionTracker versions;
  consistent::RuleTable rules;
  consistent::ApplyAll(
      rules, consistent::PlanForPlacement(blocker_id,
                                          network.PathOf(blocker_id),
                                          versions));
  const auto schedule = consistent::PlanForMigration(network, plan, versions);
  std::printf("\ntwo-phase schedule: %zu rule ops (%.1f ms at 2 ms/op)\n",
              schedule.size(),
              consistent::ScheduleDuration(schedule, 0.002) * 1000.0);

  const topo::Path& old_path = network.PathOf(blocker_id);
  const topo::Path& new_path =
      network.path_registry().Get(plan.moves[0].new_path);
  int consistent_steps = 0;
  for (std::size_t prefix = 0; prefix <= schedule.size(); ++prefix) {
    consistent::RuleTable step = rules;
    for (std::size_t i = 0; i < prefix; ++i) {
      consistent::Apply(step, schedule[i]);
    }
    const auto fwd = consistent::ForwardPacket(ft.graph(), step, blocker_id,
                                               ft.host(1), ft.host(3));
    const bool on_one_path =
        fwd.hops == old_path.nodes || fwd.hops == new_path.nodes;
    if (fwd.outcome == consistent::ForwardOutcome::kDelivered && on_one_path) {
      ++consistent_steps;
    }
  }
  std::printf("per-packet consistency: %d/%zu intermediate states safe\n",
              consistent_steps, schedule.size() + 1);

  // The naive baseline: overwrite rules in place.
  const auto naive = consistent::PlanDirectReroute(blocker_id, old_path,
                                                   new_path, 0);
  std::printf("\nnaive in-place reroute (%zu ops):\n", naive.size());
  for (std::size_t prefix = 0; prefix <= naive.size(); ++prefix) {
    consistent::RuleTable step = rules;
    for (std::size_t i = 0; i < prefix; ++i) {
      consistent::Apply(step, naive[i]);
    }
    const auto fwd = consistent::ForwardPacket(ft.graph(), step, blocker_id,
                                               ft.host(1), ft.host(3));
    const bool on_one_path =
        fwd.hops == old_path.nodes || fwd.hops == new_path.nodes;
    if (fwd.outcome != consistent::ForwardOutcome::kDelivered ||
        !on_one_path) {
      std::printf("  after op %zu: packet %s%s  <-- anomaly two-phase "
                  "prevents\n",
                  prefix, OutcomeName(fwd.outcome),
                  on_one_path ? "" : " (mixed path)");
    }
  }
  return 0;
}
