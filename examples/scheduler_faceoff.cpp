// Scheduler face-off: every policy in the library (flow-level baseline,
// FIFO, full reorder, LMTF, P-LMTF) on one identical workload, with a
// per-event timeline so the head-of-line-blocking story of the paper's
// Figs. 2-3 is visible in the output.
//
// Run:  ./scheduler_faceoff [seed]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "exp/runner.h"
#include "metrics/gantt.h"

int main(int argc, char** argv) {
  using namespace nu;

  exp::ExperimentConfig config;
  config.fat_tree_k = 8;
  config.utilization = 0.7;
  config.event_count = 15;
  config.min_flows_per_event = 10;
  config.max_flows_per_event = 100;
  config.alpha = 4;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  config.sim.keep_round_log = true;

  std::printf("workload seed %llu: %zu events, utilization target %.0f%%\n\n",
              static_cast<unsigned long long>(config.seed),
              config.event_count, config.utilization * 100.0);
  const exp::Workload workload(config);

  AsciiTable summary({"scheduler", "avg ECT", "tail ECT", "cost", "plan time",
                      "avg q-delay", "worst q-delay"});
  auto add = [&summary](const char* name, const metrics::Report& r) {
    summary.Row()
        .Cell(name)
        .Cell(r.avg_ect, 1)
        .Cell(r.tail_ect, 1)
        .Cell(r.total_cost, 0)
        .Cell(r.total_plan_time, 2)
        .Cell(r.avg_queuing_delay, 1)
        .Cell(r.worst_queuing_delay, 1);
  };

  add("flow-level", exp::RunFlowLevel(workload).report);
  sim::SimResult fifo_result;
  sim::SimResult plmtf_result;
  for (const auto kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kReorder,
        sched::SchedulerKind::kLmtf, sched::SchedulerKind::kSjf,
        sched::SchedulerKind::kPlmtf}) {
    const sim::SimResult result = exp::RunScheduler(workload, kind);
    add(sched::ToString(kind), result.report);
    if (kind == sched::SchedulerKind::kFifo) fifo_result = result;
    if (kind == sched::SchedulerKind::kPlmtf) plmtf_result = result;
  }
  summary.Print();

  std::printf("\nFIFO timeline:\n%s",
              metrics::RenderGantt(fifo_result.records).c_str());
  std::printf("\nP-LMTF timeline (note the parallel rounds):\n%s",
              metrics::RenderGantt(plmtf_result.records).c_str());

  std::printf("\nP-LMTF round timeline (parallel rounds marked by multiple "
              "events):\n");
  for (std::size_t i = 0; i < plmtf_result.round_log.size(); ++i) {
    const auto& round = plmtf_result.round_log[i];
    std::printf("  round %2zu at t=%8.2fs (plan %5.2fs): events [", i,
                round.decision_time, round.plan_time);
    for (std::size_t j = 0; j < round.executed.size(); ++j) {
      std::printf("%s%llu", j ? ", " : "",
                  static_cast<unsigned long long>(round.executed[j].value()));
    }
    std::printf("]%s\n", round.executed.size() > 1 ? "  <-- opportunistic" : "");
  }
  return 0;
}
