// Robustness bench — grey failures & dataplane reconciliation at the scale
// tier (k=16 Fat-Tree, 50k background flows). Sweeps the grey-failure rate
// from an honest dataplane up to heavy lying/straggling/rule loss and
// reports what the anti-entropy reconciler costs and delivers per
// scheduler: end-to-end wall time against the recon-off baseline, the
// drift funnel (injected -> detected -> repaired -> abandoned ->
// quarantined -> residual), and divergence-onset -> repair latency.
//
// Two built-in acceptance checks land in the JSON:
//   * honest_runs_draw_nothing — recon on + honest dataplane performs zero
//     drift checks (the subsystem arms itself only when grey events fire),
//   * converged_at_every_rate — residual divergence never exceeds the
//     explicitly abandoned rules at any point of the sweep.
//
// Run:  ./bench_reconcile [--quick] [--csv=PATH] [--txt=PATH] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "fault/fault_plan.h"
#include "metrics/report.h"
#include "net/admission.h"
#include "net/network.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/update_event.h"

using namespace nu;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fills `network` with `count` random-pair background flows (the grey
/// model leaves background traffic reliable; the flows are here so drift
/// detection and repair run against production-sized hot state).
std::size_t InjectFlows(net::Network& network, const topo::FatTree& ft,
                        const topo::PathProvider& provider, std::size_t count,
                        Rng& rng) {
  std::size_t placed = 0;
  std::size_t attempts = 0;
  const std::size_t hosts = ft.host_count();
  while (placed < count && attempts < count * 20) {
    ++attempts;
    const NodeId src = ft.host(rng.Index(hosts));
    const NodeId dst = ft.host(rng.Index(hosts));
    if (src == dst) continue;
    const Mbps demand = 0.5 + rng.Uniform(0.0, 1.5);
    if (const auto path =
            net::FindFeasiblePath(network, provider, src, dst, demand,
                                  net::PathSelection::kFirstFit)) {
      flow::Flow f;
      f.src = src;
      f.dst = dst;
      f.demand = demand;
      f.duration = 1e6;  // steady-state backdrop, never departs
      f.origin = flow::FlowOrigin::kBackground;
      network.Place(f, *path);
      ++placed;
    }
  }
  return placed;
}

std::vector<update::UpdateEvent> MakeEvents(const topo::FatTree& ft,
                                            std::size_t count, Rng& rng) {
  std::vector<update::UpdateEvent> events;
  events.reserve(count);
  const std::size_t hosts = ft.host_count();
  for (std::uint64_t e = 0; e < count; ++e) {
    std::vector<flow::Flow> flows;
    const std::size_t flows_per_event = 4 + rng.Index(4);
    for (std::size_t i = 0; i < flows_per_event; ++i) {
      flow::Flow f;
      f.src = ft.host(rng.Index(hosts));
      while ((f.dst = ft.host(rng.Index(hosts))) == f.src) {
      }
      f.demand = 1.0 + rng.Uniform(0.0, 2.0);
      f.duration = 10.0 + rng.Uniform(0.0, 20.0);
      flows.push_back(f);
    }
    events.push_back(update::UpdateEvent(
        EventId{e}, 0.2 * static_cast<double>(e), std::move(flows)));
  }
  return events;
}

/// A mixed grey model scaled by `rate`: half the rate lies about acks, the
/// full rate straggles, half silently drops rules later.
fault::GreyFailureModel GreyAtRate(double rate) {
  fault::GreyFailureModel model;
  if (rate <= 0.0) return model;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "acklie:%.3f+straggler:%.3f:0.1:0.5+loss:%.3f:0.5:1.5",
                rate / 2.0, rate, rate / 2.0);
  return fault::ParseGreyModel(buf).Validate();
}

struct BenchRow {
  std::string mode;       // "recon-off", "honest", or the grey rate
  std::string scheduler;
  double rate = 0.0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double overhead_pct = 0.0;  // vs the recon-off baseline, same scheduler
  metrics::Report report;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--quick") return true;
    }
    return false;
  }();
  const std::size_t k = bench::ArgOr(argc, argv, "k", quick ? 8 : 16);
  const std::size_t flow_target =
      bench::ArgOr(argc, argv, "flows", quick ? 5'000 : 50'000);
  const std::size_t event_count =
      bench::ArgOr(argc, argv, "events", quick ? 40 : 150);
  const std::string json_path =
      bench::ArgOrStr(argc, argv, "json", "BENCH_reconcile.json");
  const std::string csv_path = bench::ArgOrStr(argc, argv, "csv", "");
  const std::string txt_path = bench::ArgOrStr(argc, argv, "txt", "");

  bench::PrintHeader(
      "Robustness: grey failures & dataplane drift reconciliation",
      quick ? "quick sweep (CI): k=8, 5k background flows"
            : "k=16 Fat-Tree, 50k background flows, grey-rate sweep");

  topo::FatTree ft(topo::FatTreeConfig{
      .k = k, .link_capacity = quick ? 2000.0 : 4000.0});
  topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());
  Rng inject_rng(777);
  const auto inject_start = Clock::now();
  const std::size_t placed =
      InjectFlows(network, ft, provider, flow_target, inject_rng);
  network.ShrinkToFit();
  std::printf("injected %zu/%zu background flows in %.2fs\n", placed,
              flow_target, SecondsSince(inject_start));

  Rng event_rng(4242);
  const auto events = MakeEvents(ft, event_count, event_rng);

  const std::vector<double> rates{0.0, 0.05, 0.1, 0.2, 0.4};
  const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kFifo,
                                                sched::SchedulerKind::kLmtf,
                                                sched::SchedulerKind::kPlmtf};

  AsciiTable table({"mode", "scheduler", "wall s", "events/s", "overhead %",
                    "checks", "detected", "repaired", "abandoned", "quar",
                    "residual", "rep mean (s)", "rep p99 (s)"});
  std::vector<BenchRow> rows;
  std::vector<double> baseline_wall(kinds.size(), 0.0);

  const auto run_point = [&](const std::string& mode, double rate,
                             bool recon_on, std::size_t kind_idx) {
    sim::SimConfig config;
    config.seed = 20260809;
    config.cost_model.plan_time_per_flow = 0.002;
    config.cost_model.install_time_per_flow = 0.05;
    config.faults.grey = GreyAtRate(rate);
    config.recon.enabled = recon_on;
    config.guard.auditor.enabled = true;
    config.guard.auditor.cadence = quick ? 20 : 50;

    sim::Simulator simulator(network, provider, config);
    const auto scheduler = sched::MakeScheduler(kinds[kind_idx]);
    const auto start = Clock::now();
    const sim::SimResult result = simulator.Run(*scheduler, events);

    BenchRow row;
    row.mode = mode;
    row.scheduler = sched::ToString(kinds[kind_idx]);
    row.rate = rate;
    row.wall_seconds = SecondsSince(start);
    row.events_per_sec =
        row.wall_seconds > 0.0
            ? static_cast<double>(result.report.event_count) / row.wall_seconds
            : 0.0;
    if (mode == "recon-off") {
      baseline_wall[kind_idx] = row.wall_seconds;
    } else if (baseline_wall[kind_idx] > 0.0) {
      row.overhead_pct = (row.wall_seconds / baseline_wall[kind_idx] - 1.0) *
                         100.0;
    }
    row.report = result.report;
    const metrics::Report& r = row.report;
    table.Row()
        .Cell(row.mode)
        .Cell(row.scheduler)
        .Cell(row.wall_seconds, 2)
        .Cell(row.events_per_sec, 1)
        .Cell(row.overhead_pct, 1)
        .Cell(r.drift_checks)
        .Cell(r.drift_rules_detected)
        .Cell(r.drift_repairs)
        .Cell(r.drift_rules_abandoned)
        .Cell(r.switches_quarantined)
        .Cell(r.drift_residual_rules)
        .Cell(r.drift_repair_mean, 3)
        .Cell(r.drift_repair_p99, 3);
    rows.push_back(row);
    std::printf("%-9s %-7s %.2fs, %zu detected, %zu repaired, %zu residual\n",
                row.mode.c_str(), row.scheduler.c_str(), row.wall_seconds,
                r.drift_rules_detected, r.drift_repairs,
                r.drift_residual_rules);
  };

  for (std::size_t i = 0; i < kinds.size(); ++i) {
    run_point("recon-off", 0.0, /*recon_on=*/false, i);
  }
  for (const double rate : rates) {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      run_point(rate == 0.0 ? "honest"
                            : "grey-" + std::to_string(rate).substr(0, 4),
                rate, /*recon_on=*/true, i);
    }
  }
  table.Print();
  bench::MaybeWriteCsv(table, csv_path);
  if (!txt_path.empty()) {
    std::ofstream txt(txt_path);
    txt << table.Render();
    std::printf("txt written: %s\n", txt_path.c_str());
  }

  bool honest_runs_draw_nothing = true;
  bool converged_at_every_rate = true;
  for (const BenchRow& row : rows) {
    if (row.mode == "honest" && row.report.drift_checks != 0) {
      honest_runs_draw_nothing = false;
    }
    if (row.report.drift_residual_rules > row.report.drift_rules_abandoned) {
      converged_at_every_rate = false;
    }
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"bench\": \"reconcile\",\n"
         << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
         << "  \"k\": " << k << ",\n"
         << "  \"background_flows\": " << placed << ",\n"
         << "  \"events\": " << event_count << ",\n"
         << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const BenchRow& row = rows[i];
      const metrics::Report& r = row.report;
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"mode\": \"%s\", \"scheduler\": \"%s\", \"rate\": %.3f, "
          "\"wall_seconds\": %.3f, \"events_per_sec\": %.1f, "
          "\"overhead_pct\": %.1f, \"drift_checks\": %zu, "
          "\"detected\": %zu, \"repaired\": %zu, \"abandoned\": %zu, "
          "\"quarantined\": %zu, \"residual\": %zu, "
          "\"repair_mean\": %.4f, \"repair_p99\": %.4f}%s\n",
          row.mode.c_str(), row.scheduler.c_str(), row.rate,
          row.wall_seconds, row.events_per_sec, row.overhead_pct,
          r.drift_checks, r.drift_rules_detected, r.drift_repairs,
          r.drift_rules_abandoned, r.switches_quarantined,
          r.drift_residual_rules, r.drift_repair_mean, r.drift_repair_p99,
          i + 1 < rows.size() ? "," : "");
      json << buf;
    }
    json << "  ],\n"
         << "  \"acceptance\": {\"honest_runs_draw_nothing\": "
         << (honest_runs_draw_nothing ? "true" : "false")
         << ", \"converged_at_every_rate\": "
         << (converged_at_every_rate ? "true" : "false") << "}\n"
         << "}\n";
    std::printf("json written: %s\n", json_path.c_str());
  }

  bench::PrintFooter(
      "honest runs never arm the reconciler (zero checks, zero overhead "
      "beyond noise); wall time and the drift funnel grow with the grey "
      "rate while residual stays bounded by abandonment — the drain gate "
      "holds convergence at every rate; repair latency tracks the "
      "reconcile period plus straggler delay, not the grey rate");
  // The sweep's own acceptance: a regression here should fail CI loudly.
  if (!honest_runs_draw_nothing || !converged_at_every_rate) {
    std::fprintf(stderr, "acceptance FAILED: honest=%d converged=%d\n",
                 honest_runs_draw_nothing, converged_at_every_rate);
    return 1;
  }
  return 0;
}
