// Fig. 6 — LMTF and P-LMTF against FIFO as the number of queued events grows
// (10..50), alpha = 4, utilization fluctuating 50-70%, events of 10-100
// flows:
//   (a) reduction in total update cost,
//   (b) reduction in average ECT,
//   (c) reduction in tail ECT,
//   (d) total plan time (per method, and as a ratio to FIFO).
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 6: LMTF / P-LMTF vs FIFO (cost, avg ECT, tail ECT, plan time)",
      "8-pod Fat-Tree, 10..50 events of 10-100 flows, alpha=4, util 50-70%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 5);

  AsciiTable cost({"events", "LMTF cost red.", "P-LMTF cost red."});
  AsciiTable avg({"events", "LMTF avg-ECT red.", "P-LMTF avg-ECT red."});
  AsciiTable tail({"events", "LMTF tail-ECT red.", "P-LMTF tail-ECT red."});
  AsciiTable plan({"events", "FIFO plan (s)", "LMTF plan (s)",
                   "P-LMTF plan (s)", "LMTF/FIFO", "P-LMTF/FIFO"});

  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};

  for (std::size_t events = 10; events <= 50; events += 10) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    // The paper's background "fluctuates between 50% and 70%"; our static
    // target sits in the upper middle of that band.
    config.utilization = 0.65;
    config.event_count = events;
    config.min_flows_per_event = 10;
    config.max_flows_per_event = 100;
    config.alpha = 4;
    config.seed = 6000 + events;

    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, false, trials);
    const auto& fifo = result.mean_by_name.at("fifo");
    const auto& lmtf = result.mean_by_name.at("lmtf");
    const auto& plmtf = result.mean_by_name.at("p-lmtf");

    cost.Row()
        .Cell(events)
        .Cell(PercentString(ReductionVs(fifo.total_cost, lmtf.total_cost)))
        .Cell(PercentString(ReductionVs(fifo.total_cost, plmtf.total_cost)));
    avg.Row()
        .Cell(events)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, lmtf.avg_ect)))
        .Cell(PercentString(ReductionVs(fifo.avg_ect, plmtf.avg_ect)));
    tail.Row()
        .Cell(events)
        .Cell(PercentString(ReductionVs(fifo.tail_ect, lmtf.tail_ect)))
        .Cell(PercentString(ReductionVs(fifo.tail_ect, plmtf.tail_ect)));
    plan.Row()
        .Cell(events)
        .Cell(fifo.total_plan_time, 2)
        .Cell(lmtf.total_plan_time, 2)
        .Cell(plmtf.total_plan_time, 2)
        .Cell(lmtf.total_plan_time / fifo.total_plan_time, 2)
        .Cell(plmtf.total_plan_time / fifo.total_plan_time, 2);
  }

  std::printf("(a) reduction in total update cost vs FIFO\n");
  cost.Print();
  std::printf("(b) reduction in average ECT vs FIFO\n");
  avg.Print();
  std::printf("(c) reduction in tail ECT vs FIFO\n");
  tail.Print();
  std::printf("(d) total plan time\n");
  plan.Print();
  bench::PrintFooter(
      "paper: P-LMTF cost reduction 34-45% (LMTF smaller); avg-ECT reduction "
      "69-80% (P-LMTF) vs 22-36% (LMTF); tail-ECT 35-48% vs 5-26%; plan time "
      "LMTF ~4.5x and P-LMTF ~2x FIFO");
  return 0;
}
