// Ablation D — P-LMTF's co-scheduling migration allowance: how much
// migration may an opportunistically co-scheduled event pay? 0 = only free
// wins (lowest cost, least parallelism); infinity = any fully feasible
// candidate (most parallelism, cost approaches eager execution).
#include <cmath>
#include <limits>

#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation: P-LMTF co-scheduling migration allowance",
      "8-pod Fat-Tree, 30 events of 10-100 flows, alpha=4, util 65%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  exp::ExperimentConfig base;
  base.fat_tree_k = 8;
  base.utilization = 0.65;
  base.event_count = 30;
  base.min_flows_per_event = 10;
  base.max_flows_per_event = 100;
  base.alpha = 4;
  base.seed = 15000;

  // FIFO anchor for the reductions.
  const std::vector<sched::SchedulerKind> fifo_only{
      sched::SchedulerKind::kFifo};
  const auto fifo_result = exp::CompareSchedulers(base, fifo_only, false,
                                                  trials);
  const auto& fifo = fifo_result.mean_by_name.at("fifo");

  AsciiTable table({"allowance (Mbps)", "avg ECT (s)", "avg-ECT red.",
                    "cost (Mbps)", "cost red.", "plan/FIFO"});
  const double allowances[] = {0.0, 50.0, 100.0, 200.0, 400.0,
                               std::numeric_limits<double>::infinity()};
  const std::vector<sched::SchedulerKind> plmtf_only{
      sched::SchedulerKind::kPlmtf};
  for (double allowance : allowances) {
    exp::ExperimentConfig config = base;
    config.sim.plmtf_co_migration_allowance = allowance;
    const auto result =
        exp::CompareSchedulers(config, plmtf_only, false, trials);
    const auto& r = result.mean_by_name.at("p-lmtf");
    table.Row()
        .Cell(std::isinf(allowance) ? std::string("inf")
                                    : FormatDouble(allowance, 0))
        .Cell(r.avg_ect, 1)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, r.avg_ect)))
        .Cell(r.total_cost, 0)
        .Cell(PercentString(ReductionVs(fifo.total_cost, r.total_cost)))
        .Cell(r.total_plan_time / fifo.total_plan_time, 2);
  }
  table.Print();
  bench::PrintFooter(
      "avg ECT improves with allowance (more parallelism) while cost "
      "reduction degrades; the default (100 Mbps) balances the two");
  return 0;
}
