// Ablation F — quick (estimate-based) cost probes. LMTF's plan-time
// overhead is almost entirely probe planning; update::QuickCostScore ranks
// candidates from per-flow deficit lookups at ~10% of the cost, and the
// winner is fully planned only at execution. How much ECT/cost fidelity do
// the cheap probes give up, and how much plan time do they save?
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

namespace {

metrics::Report RunLmtf(const exp::ExperimentConfig& config,
                        std::size_t trials) {
  const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kLmtf};
  return exp::CompareSchedulers(config, kinds, false, trials)
      .mean_by_name.at("lmtf");
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation: exact vs quick (estimate-based) LMTF cost probes",
      "8-pod Fat-Tree, 30 events of 10-100 flows, alpha=4, util sweep");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  AsciiTable table({"utilization", "probe mode", "avg ECT (s)",
                    "avg-ECT red. vs FIFO", "cost (Mbps)", "plan/FIFO"});

  for (double utilization : {0.55, 0.7, 0.85}) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    config.utilization = utilization;
    config.event_count = 30;
    config.min_flows_per_event = 10;
    config.max_flows_per_event = 100;
    config.alpha = 4;
    config.seed = 19000 + static_cast<std::uint64_t>(utilization * 100);

    const std::vector<sched::SchedulerKind> fifo_only{
        sched::SchedulerKind::kFifo};
    const auto fifo = exp::CompareSchedulers(config, fifo_only, false, trials)
                          .mean_by_name.at("fifo");

    exp::ExperimentConfig quick_config = config;
    quick_config.sim.quick_cost_probes = true;
    const metrics::Report exact = RunLmtf(config, trials);
    const metrics::Report quick = RunLmtf(quick_config, trials);

    for (const auto& [mode, r] :
         {std::pair<const char*, const metrics::Report&>{"exact", exact},
          std::pair<const char*, const metrics::Report&>{"quick", quick}}) {
      table.Row()
          .Cell(utilization, 2)
          .Cell(std::string(mode))
          .Cell(r.avg_ect, 1)
          .Cell(PercentString(ReductionVs(fifo.avg_ect, r.avg_ect)))
          .Cell(r.total_cost, 0)
          .Cell(r.total_plan_time / fifo.total_plan_time, 2);
    }
  }
  table.Print();
  bench::PrintFooter(
      "quick probes cut LMTF's plan-time multiple from ~5x to ~1.5x and "
      "even improve avg ECT (cheaper probes shorten every round); the "
      "estimate's blind spot is migration-set structure, so its cost "
      "savings can be smaller at high utilization");
  return 0;
}
