// Robustness bench — fault injection & recovery. A fixed random plan of
// fabric-link outages plus a sweep of the flaky-install failure probability,
// run through the event-level schedulers. Reports how ECT and makespan
// degrade with fault intensity and what the recovery machinery did about it
// (retries, aborts+rollbacks, replans, per-flow recovery latency).
//
// A second table runs correlated (SRLG) regimes — pod power events,
// core-plane losses, rolling maintenance drains, and a pod outage with the
// overload cascade armed — and reports the group-fault counters and the
// SRLG-specific recovery latencies.
//
// Run:  ./bench_fault_recovery [--trials=N] [--csv=PATH] [--srlg-csv=PATH]
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "fault/srlg.h"

using namespace nu;

namespace {

exp::ExperimentConfig BaseConfig(std::uint64_t seed) {
  exp::ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.6;
  config.event_count = 20;
  config.min_flows_per_event = 5;
  config.max_flows_per_event = 40;
  config.alpha = 4;
  config.background_churn = true;
  config.seed = seed;
  return config;
}

metrics::Report RunPoint(double flaky_p, sched::SchedulerKind kind,
                         std::size_t trials) {
  std::vector<metrics::Report> reports;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    exp::ExperimentConfig config = BaseConfig(23000 + trial);
    {
      // Sample victim cables from the workload's own graph; rebuilding the
      // workload from the same seed below reproduces that graph exactly.
      const exp::Workload probe(config);
      Rng fault_rng(config.seed ^ 0xFA17ULL);
      fault::RandomLinkFaultOptions outages;
      outages.failures = 3;
      outages.first_failure = 1.0;
      outages.spacing = 2.0;
      outages.outage = 4.0;
      config.sim.faults.plan = fault::MakeRandomLinkFaultPlan(
          probe.network().graph(), outages, fault_rng);
    }
    config.sim.faults.flaky.failure_probability = flaky_p;
    config.sim.faults.flaky.latency_jitter_frac = 0.2;
    config.sim.faults.retry.max_attempts = 4;
    config.sim.faults.retry.base_delay = 0.05;

    const exp::Workload workload(config);
    reports.push_back(exp::RunScheduler(workload, kind).report);
  }
  return exp::MeanReport(reports);
}

/// Correlated-failure regimes for the SRLG table.
enum class SrlgRegime { kPodOutage, kPlaneLoss, kRollingDrain, kPodCascade };

const char* ToString(SrlgRegime regime) {
  switch (regime) {
    case SrlgRegime::kPodOutage: return "pod-outage";
    case SrlgRegime::kPlaneLoss: return "plane-loss";
    case SrlgRegime::kRollingDrain: return "rolling-drain";
    case SrlgRegime::kPodCascade: return "pod+cascade";
  }
  return "?";
}

metrics::Report RunSrlgPoint(SrlgRegime regime, sched::SchedulerKind kind,
                             std::size_t trials) {
  std::vector<metrics::Report> reports;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    exp::ExperimentConfig config = BaseConfig(27000 + trial);
    {
      // Derive the canonical SRLG catalog from the workload's own fabric.
      const exp::Workload probe(config);
      fault::FaultPlan& plan = config.sim.faults.plan;
      std::size_t pod = fault::kNoGroup;
      std::size_t plane = fault::kNoGroup;
      for (const fault::SharedRiskGroup& group :
           fault::DeriveFatTreeSrlgs(probe.fat_tree())) {
        const std::size_t idx = plan.AddGroup(group);
        if (group.name == "pod1") pod = idx;
        if (group.name == "core-plane0") plane = idx;
      }
      switch (regime) {
        case SrlgRegime::kPodOutage:
          plan.AddGroupOutage(1.0, 3.0, pod);
          break;
        case SrlgRegime::kPlaneLoss:
          plan.AddGroupOutage(1.0, 3.0, plane);
          break;
        case SrlgRegime::kRollingDrain:
          plan.AddRollingDrain(1.0, 0.5, 1.5, pod);
          break;
        case SrlgRegime::kPodCascade:
          plan.AddGroupOutage(1.0, 3.0, pod);
          config.sim.faults.cascade.max_secondary_failures = 4;
          config.sim.faults.cascade.utilization_threshold = 0.95;
          config.sim.faults.cascade.hold_time = 0.5;
          config.sim.faults.cascade.outage = 2.0;
          break;
      }
    }
    config.sim.faults.flaky.failure_probability = 0.1;
    config.sim.faults.retry.max_attempts = 4;
    config.sim.faults.retry.base_delay = 0.05;

    const exp::Workload workload(config);
    reports.push_back(exp::RunScheduler(workload, kind).report);
  }
  return exp::MeanReport(reports);
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Robustness: fault injection & recovery",
      "4-pod Fat-Tree, 20 events, 3 random fabric-link outages (4 s each), "
      "flaky-install probability sweep, churn on");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  AsciiTable table({"flaky p", "scheduler", "avg ECT (s)", "makespan (s)",
                    "attempts", "retried", "aborted", "replanned", "killed",
                    "rec mean (s)", "rec p99 (s)"});
  const std::vector<double> probabilities{0.0, 0.1, 0.3, 0.5};
  const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kFifo,
                                                sched::SchedulerKind::kLmtf,
                                                sched::SchedulerKind::kPlmtf};
  for (double p : probabilities) {
    for (sched::SchedulerKind kind : kinds) {
      const metrics::Report r = RunPoint(p, kind, trials);
      table.Row()
          .Cell(p, 1)
          .Cell(std::string(sched::ToString(kind)))
          .Cell(r.avg_ect, 1)
          .Cell(r.makespan, 1)
          .Cell(r.installs_attempted)
          .Cell(r.installs_retried)
          .Cell(r.events_aborted)
          .Cell(r.events_replanned)
          .Cell(r.flows_killed)
          .Cell(r.recovery_latency_mean, 2)
          .Cell(r.recovery_latency_p99, 2);
    }
  }
  table.Print();
  bench::MaybeWriteCsv(table, bench::ArgOrStr(argc, argv, "csv", ""));

  bench::PrintHeader(
      "Robustness: correlated (SRLG) failures",
      "4-pod Fat-Tree, 20 events, one correlated incident per run (pod power "
      "event, core-plane loss, rolling drain, or pod outage with the overload "
      "cascade armed), flaky p=0.1, churn on");
  AsciiTable srlg_table({"regime", "scheduler", "avg ECT (s)", "makespan (s)",
                         "grp faults", "cascades", "depth", "killed",
                         "srlg rec mean (s)", "srlg rec p99 (s)"});
  const std::vector<SrlgRegime> regimes{
      SrlgRegime::kPodOutage, SrlgRegime::kPlaneLoss,
      SrlgRegime::kRollingDrain, SrlgRegime::kPodCascade};
  for (SrlgRegime regime : regimes) {
    for (sched::SchedulerKind kind : kinds) {
      const metrics::Report r = RunSrlgPoint(regime, kind, trials);
      srlg_table.Row()
          .Cell(std::string(ToString(regime)))
          .Cell(std::string(sched::ToString(kind)))
          .Cell(r.avg_ect, 1)
          .Cell(r.makespan, 1)
          .Cell(r.group_faults)
          .Cell(r.cascade_failures)
          .Cell(r.cascade_depth_max)
          .Cell(r.flows_killed)
          .Cell(r.srlg_recovery_latency_mean, 2)
          .Cell(r.srlg_recovery_latency_p99, 2);
    }
  }
  srlg_table.Print();
  bench::MaybeWriteCsv(srlg_table, bench::ArgOrStr(argc, argv, "srlg-csv", ""));
  bench::PrintFooter(
      "ECT and makespan grow with flaky probability (retry backoff + aborted "
      "rounds); retried/aborted counters scale with p while replans/kills "
      "stay fixed by the outage plan; recovery latency stays bounded because "
      "victims re-plan immediately on surviving paths. SRLG table: a pod "
      "power event counts as ONE group fault; its hosts have no surviving "
      "path, so srlg recovery latency ~= the outage; a rolling drain expands "
      "to element faults (zero group faults); arming the cascade under load "
      "adds secondary failures at depth >= 2 and more kills");
  return 0;
}
