// Robustness bench — fault injection & recovery. A fixed random plan of
// fabric-link outages plus a sweep of the flaky-install failure probability,
// run through the event-level schedulers. Reports how ECT and makespan
// degrade with fault intensity and what the recovery machinery did about it
// (retries, aborts+rollbacks, replans, per-flow recovery latency).
//
// Run:  ./bench_fault_recovery [--trials=N] [--csv=PATH]
#include <vector>

#include "bench_common.h"
#include "exp/runner.h"
#include "fault/fault_plan.h"

using namespace nu;

namespace {

exp::ExperimentConfig BaseConfig(std::uint64_t seed) {
  exp::ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.6;
  config.event_count = 20;
  config.min_flows_per_event = 5;
  config.max_flows_per_event = 40;
  config.alpha = 4;
  config.background_churn = true;
  config.seed = seed;
  return config;
}

metrics::Report RunPoint(double flaky_p, sched::SchedulerKind kind,
                         std::size_t trials) {
  std::vector<metrics::Report> reports;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    exp::ExperimentConfig config = BaseConfig(23000 + trial);
    {
      // Sample victim cables from the workload's own graph; rebuilding the
      // workload from the same seed below reproduces that graph exactly.
      const exp::Workload probe(config);
      Rng fault_rng(config.seed ^ 0xFA17ULL);
      fault::RandomLinkFaultOptions outages;
      outages.failures = 3;
      outages.first_failure = 1.0;
      outages.spacing = 2.0;
      outages.outage = 4.0;
      config.sim.faults.plan = fault::MakeRandomLinkFaultPlan(
          probe.network().graph(), outages, fault_rng);
    }
    config.sim.faults.flaky.failure_probability = flaky_p;
    config.sim.faults.flaky.latency_jitter_frac = 0.2;
    config.sim.faults.retry.max_attempts = 4;
    config.sim.faults.retry.base_delay = 0.05;

    const exp::Workload workload(config);
    reports.push_back(exp::RunScheduler(workload, kind).report);
  }
  return exp::MeanReport(reports);
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Robustness: fault injection & recovery",
      "4-pod Fat-Tree, 20 events, 3 random fabric-link outages (4 s each), "
      "flaky-install probability sweep, churn on");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  AsciiTable table({"flaky p", "scheduler", "avg ECT (s)", "makespan (s)",
                    "attempts", "retried", "aborted", "replanned", "killed",
                    "rec mean (s)", "rec p99 (s)"});
  const std::vector<double> probabilities{0.0, 0.1, 0.3, 0.5};
  const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kFifo,
                                                sched::SchedulerKind::kLmtf,
                                                sched::SchedulerKind::kPlmtf};
  for (double p : probabilities) {
    for (sched::SchedulerKind kind : kinds) {
      const metrics::Report r = RunPoint(p, kind, trials);
      table.Row()
          .Cell(p, 1)
          .Cell(std::string(sched::ToString(kind)))
          .Cell(r.avg_ect, 1)
          .Cell(r.makespan, 1)
          .Cell(r.installs_attempted)
          .Cell(r.installs_retried)
          .Cell(r.events_aborted)
          .Cell(r.events_replanned)
          .Cell(r.flows_killed)
          .Cell(r.recovery_latency_mean, 2)
          .Cell(r.recovery_latency_p99, 2);
    }
  }
  table.Print();
  bench::MaybeWriteCsv(table, bench::ArgOrStr(argc, argv, "csv", ""));
  bench::PrintFooter(
      "ECT and makespan grow with flaky probability (retry backoff + aborted "
      "rounds); retried/aborted counters scale with p while replans/kills "
      "stay fixed by the outage plan; recovery latency stays bounded because "
      "victims re-plan immediately on surviving paths");
  return 0;
}
