// Fig. 3 — The didactic FIFO vs cost-reorder example: three events with
// execution time 1 s each and update costs (expressed in seconds) of 4, 1,
// and 1. FIFO yields average ECT (5+7+9)/3 = 7 s; ordering by update cost
// yields (2+4+9)/3 = 5 s with the same tail.
//
// We reproduce it with the real simulator: a tiny network where event U1
// requires migrating 4 cost-units of background traffic while U2/U3 require
// 1 each, and the cost model maps 1 cost-unit to 1 second.
#include "bench_common.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"

using namespace nu;

namespace {

/// Three events with (migration cost, execution time) = (4,1), (1,1), (1,1)
/// in seconds, scheduled analytically as in the figure.
void Analytic() {
  const double costs[3] = {4.0, 1.0, 1.0};
  auto simulate = [&](const std::vector<int>& order) {
    double t = 0.0;
    std::vector<double> completion(3);
    for (int i : order) {
      t += costs[i] + 1.0;
      completion[static_cast<std::size_t>(i)] = t;
    }
    double sum = 0.0, tail = 0.0;
    for (double c : completion) {
      sum += c;
      tail = std::max(tail, c);
    }
    std::printf("  completions U1=%.0fs U2=%.0fs U3=%.0fs -> avg %.2fs, "
                "tail %.0fs\n",
                completion[0], completion[1], completion[2], sum / 3.0, tail);
  };
  std::printf("FIFO order (U1, U2, U3):\n");
  simulate({0, 1, 2});
  std::printf("cost order (U2, U3, U1):\n");
  simulate({1, 2, 0});
}

/// The same story through the real machinery: a congested fabric forces U1
/// to migrate twice the background traffic of U2/U3.
///
/// Setup (k=4, 100 Mbps links, same-pod host pairs with 2 candidate paths):
///   U1 = host0->host2 (pod 0): both agg paths carry 2x20 Mbps blockers from
///        host1->host3, so a 90 Mbps flow has a 30 Mbps deficit and must
///        migrate two blockers (cost 40 Mbps).
///   U2 = host4->host6, U3 = host8->host10 (pods 1, 2): one 20 Mbps blocker
///        per path, deficit 10 Mbps, one blocker migrates (cost 20 Mbps).
/// With migration_rate = 20 Mbps/s those costs become 2 s vs 1 s of
/// migration time, against 1 s of execution per event.
void Simulated() {
  topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 100.0});
  topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());

  // Loads every candidate path of (src, dst) with `per_path` static 20 Mbps
  // blockers.
  auto block = [&](std::size_t src, std::size_t dst, int per_path) {
    for (const topo::Path& p : provider.Paths(ft.host(src), ft.host(dst))) {
      for (int i = 0; i < per_path; ++i) {
        flow::Flow f;
        f.src = ft.host(src);
        f.dst = ft.host(dst);
        f.demand = 20.0;
        f.duration = 1e6;  // background is static
        if (network.CanPlace(f.demand, p)) network.Place(std::move(f), p);
      }
    }
  };
  block(1, 3, 2);   // pod 0: heavy interference for U1
  block(5, 7, 1);   // pod 1: light interference for U2
  block(9, 11, 1);  // pod 2: light interference for U3

  auto event = [&](std::uint64_t id, std::size_t src, std::size_t dst) {
    flow::Flow f;
    f.src = ft.host(src);
    f.dst = ft.host(dst);
    f.demand = 90.0;  // exceeds the blocked residual on every path
    f.duration = 1.0;
    return update::UpdateEvent(EventId{id}, 0.0, {f});
  };
  std::vector<update::UpdateEvent> events;
  events.push_back(event(1, 0, 2));
  events.push_back(event(2, 4, 6));
  events.push_back(event(3, 8, 10));

  sim::SimConfig config;
  config.cost_model.plan_time_per_flow = 0.0001;
  config.cost_model.migration_rate = 20.0;       // 20 Mbps migrated = 1 s
  config.cost_model.install_time_per_flow = 1.0;  // execution time = 1 s
  config.seed = 2;
  sim::Simulator simulator(network, provider, config);

  AsciiTable table({"scheduler", "U1 ECT", "U2 ECT", "U3 ECT", "avg ECT",
                    "tail ECT"});
  for (const auto kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kReorder}) {
    const auto scheduler = sched::MakeScheduler(kind);
    const sim::SimResult result = simulator.Run(*scheduler, events);
    table.Row()
        .Cell(sched::ToString(kind))
        .Cell(result.records[0].Ect(), 2)
        .Cell(result.records[1].Ect(), 2)
        .Cell(result.records[2].Ect(), 2)
        .Cell(result.report.avg_ect, 2)
        .Cell(result.report.tail_ect, 2);
  }
  table.Print();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3: LMTF-style reordering reduces average ECT against FIFO",
      "three events, execution 1 s each, update costs 4/1/1 s");
  Analytic();
  std::printf("\nsimulated on a real k=4 Fat-Tree (migration rate scaled so "
              "cost maps to seconds):\n");
  Simulated();
  bench::PrintFooter(
      "reordering by cost cuts average ECT (paper: 7 s -> 5 s) while tail "
      "ECT stays the same");
  return 0;
}
