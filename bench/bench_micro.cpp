// Microbenchmarks (google-benchmark) of the library's hot paths: path
// enumeration, admission checks, migration planning, event cost probes, and
// network copies (the what-if primitive every probe relies on).
#include <benchmark/benchmark.h>

#include "exp/workload.h"
#include "net/admission.h"
#include "topo/ksp.h"
#include "update/planner.h"

namespace {

using namespace nu;

const exp::Workload& SharedWorkload() {
  static const exp::Workload* workload = [] {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    config.utilization = 0.7;
    config.event_count = 10;
    config.seed = 42;
    return new exp::Workload(config);
  }();
  return *workload;
}

void BM_FatTreePathEnumeration(benchmark::State& state) {
  const topo::FatTree ft(topo::FatTreeConfig{
      .k = static_cast<std::size_t>(state.range(0)), .link_capacity = 1000.0});
  const NodeId src = ft.host(0);
  const NodeId dst = ft.host(ft.host_count() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ft.HostPaths(src, dst));
  }
}
BENCHMARK(BM_FatTreePathEnumeration)->Arg(4)->Arg(8)->Arg(16);

void BM_YenKsp(benchmark::State& state) {
  const topo::FatTree ft(topo::FatTreeConfig{.k = 4, .link_capacity = 1000.0});
  const NodeId src = ft.host(0);
  const NodeId dst = ft.host(ft.host_count() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::YenKShortestPaths(
        ft.graph(), src, dst, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_YenKsp)->Arg(1)->Arg(4)->Arg(8);

void BM_AdmissionCheck(benchmark::State& state) {
  const exp::Workload& w = SharedWorkload();
  Rng rng(1);
  const auto hosts = w.hosts();
  for (auto _ : state) {
    const NodeId src = hosts[rng.Index(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.Index(hosts.size())];
    benchmark::DoNotOptimize(
        net::CanAdmit(w.network(), w.paths(), src, dst, 50.0));
  }
}
BENCHMARK(BM_AdmissionCheck);

void BM_NetworkCopy(benchmark::State& state) {
  const exp::Workload& w = SharedWorkload();
  for (auto _ : state) {
    net::Network copy = w.network();
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_NetworkCopy);

void BM_EventCostProbe(benchmark::State& state) {
  const exp::Workload& w = SharedWorkload();
  const update::EventPlanner planner(w.paths());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& event = w.events()[i % w.events().size()];
    benchmark::DoNotOptimize(planner.Plan(w.network(), event));
    ++i;
  }
}
BENCHMARK(BM_EventCostProbe);

void BM_MigrationPlan(benchmark::State& state) {
  const exp::Workload& w = SharedWorkload();
  const update::MigrationOptimizer optimizer(w.paths());
  Rng rng(2);
  const auto hosts = w.hosts();
  for (auto _ : state) {
    const NodeId src = hosts[rng.Index(hosts.size())];
    NodeId dst = hosts[rng.Index(hosts.size())];
    if (src == dst) continue;
    const auto& paths = w.paths().Paths(src, dst);
    benchmark::DoNotOptimize(
        optimizer.Plan(w.network(), 200.0, paths[rng.Index(paths.size())]));
  }
}
BENCHMARK(BM_MigrationPlan);

void BM_SelectCoverSet(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights;
  for (int i = 0; i < 20; ++i) weights.push_back(rng.Uniform(1.0, 50.0));
  const auto strategy =
      static_cast<update::MigrationStrategy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        update::SelectCoverSet(weights, 120.0, strategy));
  }
}
BENCHMARK(BM_SelectCoverSet)
    ->Arg(static_cast<int>(update::MigrationStrategy::kGreedyLargestFirst))
    ->Arg(static_cast<int>(update::MigrationStrategy::kBestFitDecreasing))
    ->Arg(static_cast<int>(update::MigrationStrategy::kLocalSearch))
    ->Arg(static_cast<int>(update::MigrationStrategy::kExactSmall));

}  // namespace

BENCHMARK_MAIN();
