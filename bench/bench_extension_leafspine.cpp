// Extension bench — generality across fabrics. The paper evaluates on a
// Fat-Tree only; every algorithm here sees fabrics through PathProvider +
// Network, so the scheduling deltas should carry over to a leaf-spine Clos.
// Same workload shape on both topologies, side by side.
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

namespace {

void RunTopology(exp::TopologyKind topology, std::size_t trials) {
  exp::ExperimentConfig config;
  config.topology = topology;
  config.fat_tree_k = 8;                // 128 hosts
  config.leaf_spine_leaves = 16;        // 128 hosts
  config.leaf_spine_spines = 8;
  config.leaf_spine_hosts_per_leaf = 8;
  config.utilization = 0.65;
  config.event_count = 30;
  config.min_flows_per_event = 10;
  config.max_flows_per_event = 100;
  config.alpha = 4;
  config.seed = 20000;

  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};
  const exp::ComparisonResult result =
      exp::CompareSchedulers(config, kinds, false, trials);
  const auto& fifo = result.mean_by_name.at("fifo");

  std::printf("--- %s (128 hosts, util 65%%) ---\n",
              exp::ToString(topology));
  AsciiTable table({"scheduler", "avg ECT (s)", "avg-ECT red.",
                    "tail ECT (s)", "tail red.", "plan/FIFO"});
  for (const char* name : {"fifo", "lmtf", "p-lmtf"}) {
    const auto& r = result.mean_by_name.at(name);
    table.Row()
        .Cell(std::string(name))
        .Cell(r.avg_ect, 1)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, r.avg_ect)))
        .Cell(r.tail_ect, 1)
        .Cell(PercentString(ReductionVs(fifo.tail_ect, r.tail_ect)))
        .Cell(fifo.total_plan_time > 0.0
                  ? r.total_plan_time / fifo.total_plan_time
                  : 0.0,
              2);
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Extension: scheduler deltas across fabric families",
      "identical 30-event workload shape on a Fat-Tree and a leaf-spine");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);
  RunTopology(exp::TopologyKind::kFatTree, trials);
  RunTopology(exp::TopologyKind::kLeafSpine, trials);
  bench::PrintFooter(
      "P-LMTF's large reductions carry over unchanged to the leaf-spine; "
      "LMTF's smaller margin is noise-sensitive on fabrics whose fat spine "
      "links rarely force migration (less cost signal to order by)");
  return 0;
}
