// Ablation A — The power of d choices in LMTF: sweep the sample size alpha
// from 0 (= FIFO) through 8 and to the full queue (= the intrinsic reorder
// scheduler). The paper claims alpha = 2 already captures most of the gain
// (Section IV-B, citing Mitzenmacher's power-of-two-choices result).
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation: LMTF sample size alpha (power of d choices)",
      "8-pod Fat-Tree, 30 events of 10-100 flows, utilization 60%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  exp::ExperimentConfig base;
  base.fat_tree_k = 8;
  base.utilization = 0.6;
  base.event_count = 30;
  base.min_flows_per_event = 10;
  base.max_flows_per_event = 100;
  base.seed = 11000;

  // FIFO anchor (alpha = 0) and reorder anchor (alpha = queue).
  const std::vector<sched::SchedulerKind> anchors{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kReorder};
  const exp::ComparisonResult anchor_result =
      exp::CompareSchedulers(base, anchors, false, trials);
  const auto& fifo = anchor_result.mean_by_name.at("fifo");
  const auto& reorder = anchor_result.mean_by_name.at("reorder");

  AsciiTable table({"alpha", "avg ECT (s)", "avg-ECT red. vs FIFO",
                    "plan time (s)", "plan/FIFO"});
  table.Row()
      .Cell(std::string("0 (fifo)"))
      .Cell(fifo.avg_ect, 1)
      .Cell(PercentString(0.0))
      .Cell(fifo.total_plan_time, 2)
      .Cell(1.0, 2);

  for (std::size_t alpha = 1; alpha <= 8; ++alpha) {
    exp::ExperimentConfig config = base;
    config.alpha = alpha;
    const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kLmtf};
    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, false, trials);
    const auto& lmtf = result.mean_by_name.at("lmtf");
    table.Row()
        .Cell(alpha)
        .Cell(lmtf.avg_ect, 1)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, lmtf.avg_ect)))
        .Cell(lmtf.total_plan_time, 2)
        .Cell(lmtf.total_plan_time / fifo.total_plan_time, 2);
  }
  table.Row()
      .Cell(std::string("queue (reorder)"))
      .Cell(reorder.avg_ect, 1)
      .Cell(PercentString(ReductionVs(fifo.avg_ect, reorder.avg_ect)))
      .Cell(reorder.total_plan_time, 2)
      .Cell(reorder.total_plan_time / fifo.total_plan_time, 2);
  table.Print();
  bench::PrintFooter(
      "gains grow steeply to alpha~2 then flatten, while plan time grows "
      "linearly; full reorder buys little extra ECT for much more plan time");
  return 0;
}
