// Fig. 1 — Success probability of accommodating a flow of an update event
// WITHOUT migrating other flows, as link utilization grows, on an 8-pod
// Fat-Tree, under (a) the Yahoo!-like trace and (b) the random trace.
//
// The paper's point: past ~50% utilization, plain admission increasingly
// fails, motivating local migration.
#include "bench_common.h"
#include "exp/workload.h"
#include "net/admission.h"
#include "trace/background.h"

using namespace nu;

namespace {

void RunTrace(exp::TraceFamily family, std::size_t trials,
              std::size_t probes_per_point) {
  std::printf("--- trace: %s ---\n", exp::ToString(family));
  AsciiTable table({"utilization", "success probability"});

  for (double target = 0.1; target <= 0.91; target += 0.1) {
    double success_sum = 0.0;
    std::size_t samples = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const topo::FatTree ft(
          topo::FatTreeConfig{.k = 8, .link_capacity = 1000.0});
      const topo::FatTreePathProvider provider(ft);
      net::Network network(ft.graph());
      Rng rng(1000 * trial + static_cast<std::uint64_t>(target * 100));
      const auto generator =
          exp::MakeTrafficGenerator(family, ft.hosts(), rng.Fork());
      trace::BackgroundOptions options;
      options.target_utilization = target;
      trace::InjectBackground(network, provider, *generator, options);

      // Probe: can a fresh trace flow be admitted with no migration?
      const auto prober =
          exp::MakeTrafficGenerator(family, ft.hosts(), rng.Fork());
      for (std::size_t p = 0; p < probes_per_point; ++p) {
        const trace::FlowSpec spec = prober->Next();
        if (net::CanAdmit(network, provider, spec.src, spec.dst,
                          spec.demand)) {
          success_sum += 1.0;
        }
        ++samples;
      }
    }
    table.Row()
        .Cell(target, 1)
        .Cell(success_sum / static_cast<double>(samples), 3);
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 1: success probability of inserting a flow (no migration)",
      "8-pod Fat-Tree, 1 Gbps links; background injected to each utilization "
      "level, then fresh trace flows probed for admission");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);
  const std::size_t probes = bench::ArgOr(argc, argv, "probes", 300);
  RunTrace(exp::TraceFamily::kYahooLike, trials, probes);
  RunTrace(exp::TraceFamily::kUniform, trials, probes);
  bench::PrintFooter(
      "success probability decreases monotonically with utilization for both "
      "traces, approaching a small value near 90% utilization");
  return 0;
}
