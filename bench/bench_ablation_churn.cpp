// Ablation C — Background dynamics: static background (the paper's Fig. 7
// setting) vs churning background (Section III-C: "the update queue is in
// flux due to the changed network traffic"). Churn is what lets LMTF harvest
// cheap execution moments, so its cost reductions should collapse without
// it, while P-LMTF's parallelism gains persist.
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

namespace {

void RunMode(bool churn, std::size_t trials) {
  std::printf("--- background: %s ---\n", churn ? "churning" : "static");
  AsciiTable table({"scheduler", "avg ECT (s)", "avg-ECT red.", "cost (Mbps)",
                    "cost red."});
  exp::ExperimentConfig config;
  config.fat_tree_k = 8;
  config.utilization = 0.65;
  config.event_count = 30;
  config.min_flows_per_event = 10;
  config.max_flows_per_event = 100;
  config.alpha = 4;
  config.background_churn = churn;
  config.seed = 14000;

  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};
  const exp::ComparisonResult result =
      exp::CompareSchedulers(config, kinds, false, trials);
  const auto& fifo = result.mean_by_name.at("fifo");
  for (const char* name : {"fifo", "lmtf", "p-lmtf"}) {
    const auto& r = result.mean_by_name.at(name);
    table.Row()
        .Cell(std::string(name))
        .Cell(r.avg_ect, 1)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, r.avg_ect)))
        .Cell(r.total_cost, 0)
        .Cell(PercentString(ReductionVs(fifo.total_cost, r.total_cost)));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation: static vs churning background traffic",
      "8-pod Fat-Tree, 30 events of 10-100 flows, alpha=4, util 65%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);
  RunMode(true, trials);
  RunMode(false, trials);
  bench::PrintFooter(
      "with churn, LMTF's cost reduction is large (it executes events at "
      "cheap moments); with static background cost is order-insensitive and "
      "the schedulers' ECT gains come from ordering/parallelism alone");
  return 0;
}
