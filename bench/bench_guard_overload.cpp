// Robustness bench — overload guard chaos soak. Drives the simulator well
// past its service rate (arrival-gap sweep down to several times overload)
// while fabric links fail and installs flake, with the FULL guard stack on:
// bounded queue with shed-costliest admission control, per-event soft
// deadlines with escalating-backoff requeue and poison quarantine, and the
// runtime invariant auditor in log-and-count mode on a short cadence.
//
// This is the acceptance soak for the guard subsystem: every cell must
// terminate with the queue inside its bound and ZERO audit violations —
// the binary aborts (NU_CHECK) otherwise, so a red run cannot be committed
// to results/ unnoticed.
//
// Run:  ./bench_guard_overload [--trials=N] [--csv=PATH]
#include <vector>

#include "bench_common.h"
#include "exp/runner.h"
#include "fault/fault_plan.h"

using namespace nu;

namespace {

/// Arrival gap at which the system roughly keeps up (measured; the 1x row
/// below confirms it sheds little). Overload factor f divides this gap, so
/// f=2 means events arrive twice as fast as they can be served.
constexpr double kBaseGapSeconds = 1.0;

exp::ExperimentConfig BaseConfig(std::uint64_t seed, double overload) {
  exp::ExperimentConfig config;
  config.fat_tree_k = 4;
  config.utilization = 0.6;
  config.event_count = 30;
  config.min_flows_per_event = 5;
  config.max_flows_per_event = 30;
  config.alpha = 4;
  config.background_churn = true;
  config.mean_interarrival = kBaseGapSeconds / overload;
  config.seed = seed;

  // The guard stack under test.
  config.sim.guard.overload.max_queue_length = 8;
  config.sim.guard.overload.policy = guard::OverloadPolicy::kShedCostliest;
  config.sim.guard.deadline.base_deadline = 3.0;
  config.sim.guard.deadline.per_flow_deadline = 0.1;
  config.sim.guard.deadline.max_failures = 3;
  config.sim.guard.deadline.requeue_backoff = 0.25;
  config.sim.guard.auditor.enabled = true;
  config.sim.guard.auditor.mode = guard::AuditMode::kLogAndCount;
  config.sim.guard.auditor.cadence = 8;
  return config;
}

metrics::Report RunPoint(double overload, sched::SchedulerKind kind,
                         std::size_t trials) {
  std::vector<metrics::Report> reports;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    exp::ExperimentConfig config = BaseConfig(31000 + trial, overload);
    {
      // Same victim-sampling trick as bench_fault_recovery: probe the graph
      // the seeded workload will build, then rebuild it identically.
      const exp::Workload probe(config);
      Rng fault_rng(config.seed ^ 0x6A4DULL);
      fault::RandomLinkFaultOptions outages;
      outages.failures = 3;
      outages.first_failure = 1.0;
      outages.spacing = 2.0;
      outages.outage = 4.0;
      config.sim.faults.plan = fault::MakeRandomLinkFaultPlan(
          probe.network().graph(), outages, fault_rng);
    }
    config.sim.faults.flaky.failure_probability = 0.2;
    config.sim.faults.retry.max_attempts = 4;
    config.sim.faults.retry.base_delay = 0.05;

    const exp::Workload workload(config);
    const sim::SimResult result = exp::RunScheduler(workload, kind);

    // The soak's pass/fail line: bounded queue, clean audits, every trial.
    NU_CHECK(result.guard_stats.max_queue_length <=
             config.sim.guard.overload.max_queue_length);
    NU_CHECK(result.guard_stats.audits_run > 0);
    NU_CHECK(result.guard_stats.audit_violations == 0);
    reports.push_back(result.report);
  }
  return exp::MeanReport(reports);
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Robustness: overload guard chaos soak",
      "4-pod Fat-Tree, 30 events, queue bound 8 (shed-costliest), deadlines "
      "+ quarantine, auditor on cadence 8, 3 link outages + 20% flaky "
      "installs, arrival-rate overload sweep");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  AsciiTable table({"overload", "scheduler", "completed", "shed",
                    "quarantined", "misses", "requeued", "max queue",
                    "audits", "violations", "avg ECT (s)", "makespan (s)"});
  const std::vector<double> overloads{1.0, 2.0, 4.0};
  const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kFifo,
                                                sched::SchedulerKind::kLmtf,
                                                sched::SchedulerKind::kPlmtf};
  for (double overload : overloads) {
    for (sched::SchedulerKind kind : kinds) {
      const metrics::Report r = RunPoint(overload, kind, trials);
      table.Row()
          .Cell(overload, 1)
          .Cell(std::string(sched::ToString(kind)))
          .Cell(r.events_completed)
          .Cell(r.events_shed)
          .Cell(r.events_quarantined)
          .Cell(r.deadline_misses)
          .Cell(r.events_requeued)
          .Cell(r.max_queue_length)
          .Cell(r.audits_run)
          .Cell(r.audit_violations)
          .Cell(r.avg_ect, 1)
          .Cell(r.makespan, 1);
    }
  }
  table.Print();
  bench::MaybeWriteCsv(table, bench::ArgOrStr(argc, argv, "csv", ""));
  bench::PrintFooter(
      "shed/misses grow with the overload factor while max queue stays at "
      "the bound and violations stay 0; LMTF-family schedulers complete more "
      "events than FIFO at the same overload because shed-costliest plus "
      "cost-aware ordering drains cheap events first");
  return 0;
}
