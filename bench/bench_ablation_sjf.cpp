// Ablation E — does LMTF's cost probing earn its plan time? Compare LMTF
// against SJF-by-size (same sampling, candidates ranked by flow count, zero
// probes). If event size alone predicted service time, SJF would match LMTF
// for free; when migration cost varies independently of size — congested
// fabric, background churn — the cost probe pays for itself.
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation: LMTF cost probing vs free size-based SJF",
      "8-pod Fat-Tree, 30 events of 10-100 flows, alpha=4, util sweep");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  AsciiTable table({"utilization", "FIFO avg ECT", "SJF-size avg ECT",
                    "LMTF avg ECT", "SJF red.", "LMTF red.",
                    "LMTF cost red.", "SJF cost red."});
  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kSjf,
      sched::SchedulerKind::kLmtf};

  for (double utilization : {0.4, 0.55, 0.7, 0.85}) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    config.utilization = utilization;
    config.event_count = 30;
    config.min_flows_per_event = 10;
    config.max_flows_per_event = 100;
    config.alpha = 4;
    config.seed = 17000 + static_cast<std::uint64_t>(utilization * 100);

    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, false, trials);
    const auto& fifo = result.mean_by_name.at("fifo");
    const auto& sjf = result.mean_by_name.at("sjf-size");
    const auto& lmtf = result.mean_by_name.at("lmtf");
    table.Row()
        .Cell(utilization, 2)
        .Cell(fifo.avg_ect, 1)
        .Cell(sjf.avg_ect, 1)
        .Cell(lmtf.avg_ect, 1)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, sjf.avg_ect)))
        .Cell(PercentString(ReductionVs(fifo.avg_ect, lmtf.avg_ect)))
        .Cell(PercentString(ReductionVs(fifo.total_cost, lmtf.total_cost)))
        .Cell(PercentString(ReductionVs(fifo.total_cost, sjf.total_cost)));
  }
  table.Print();
  bench::PrintFooter(
      "at low utilization SJF rivals LMTF for free (size ~ service time); "
      "as utilization grows, migration dominates service and only the cost "
      "probe sees it — LMTF pulls ahead on ECT and dramatically on cost");
  return 0;
}
