// Shared helpers for the figure-reproduction bench binaries: consistent
// headers, normalized series, and CSV emission next to the ASCII tables so
// results can be re-plotted.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"

namespace nu::bench {

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", figure, description);
  std::printf("==============================================================\n");
}

inline void PrintFooter(const char* expectation) {
  std::printf("expected shape: %s\n\n", expectation);
}

/// Normalizes a series by its own maximum (the paper's Figs. 4/5 plot values
/// "divided by the maximum value of the flow-level method").
inline std::vector<double> NormalizeByMax(const std::vector<double>& values,
                                          double max_value) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(max_value > 0.0 ? v / max_value : 0.0);
  }
  return out;
}

/// Parses "--trials=N" style overrides so CI can run the benches fast while
/// the default regenerates paper-quality curves.
inline std::size_t ArgOr(int argc, char** argv, const char* prefix,
                         std::size_t fallback) {
  const std::string needle = std::string("--") + prefix + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(needle, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + needle.size(), nullptr, 10));
    }
  }
  return fallback;
}

/// Parses "--name=value" string overrides (e.g. "--csv=out.csv").
inline std::string ArgOrStr(int argc, char** argv, const char* prefix,
                            std::string fallback) {
  const std::string needle = std::string("--") + prefix + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(needle, 0) == 0) {
      return arg.substr(needle.size());
    }
  }
  return fallback;
}

/// Writes the table's machine-readable twin when "--csv=PATH" was given;
/// a no-op otherwise so the default run stays side-effect free.
inline void MaybeWriteCsv(const AsciiTable& table, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open csv output: %s\n", path.c_str());
    return;
  }
  table.WriteCsv(out);
  std::printf("csv written: %s\n", path.c_str());
}

}  // namespace nu::bench
