// Shared helpers for the figure-reproduction bench binaries: consistent
// headers, normalized series, and CSV emission next to the ASCII tables so
// results can be re-plotted.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"

namespace nu::bench {

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", figure, description);
  std::printf("==============================================================\n");
}

inline void PrintFooter(const char* expectation) {
  std::printf("expected shape: %s\n\n", expectation);
}

/// Normalizes a series by its own maximum (the paper's Figs. 4/5 plot values
/// "divided by the maximum value of the flow-level method").
inline std::vector<double> NormalizeByMax(const std::vector<double>& values,
                                          double max_value) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(max_value > 0.0 ? v / max_value : 0.0);
  }
  return out;
}

/// Parses "--trials=N" style overrides so CI can run the benches fast while
/// the default regenerates paper-quality curves.
inline std::size_t ArgOr(int argc, char** argv, const char* prefix,
                         std::size_t fallback) {
  const std::string needle = std::string("--") + prefix + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(needle, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + needle.size(), nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace nu::bench
