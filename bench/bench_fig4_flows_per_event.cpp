// Fig. 4 — Average and tail ECT of 10 update events, flow-level vs
// event-level scheduling, as the average number of flows per event grows
// from 15 to 75, network utilization ~= 70%. Values are normalized by the
// maximum of the flow-level method, as in the paper.
#include <algorithm>

#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 4: flow-level vs event-level ECT vs flows-per-event",
      "8-pod Fat-Tree, 10 events, utilization ~70%, avg flows/event 15..75");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  struct Point {
    std::size_t avg_flows;
    double flow_avg, flow_tail, event_avg, event_tail;
  };
  std::vector<Point> points;
  double flow_avg_max = 0.0, flow_tail_max = 0.0;

  for (std::size_t avg_flows = 15; avg_flows <= 75; avg_flows += 10) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    config.utilization = 0.7;
    config.event_count = 10;
    // "average number of flows" f with a +-5 spread.
    config.min_flows_per_event = avg_flows - 5;
    config.max_flows_per_event = avg_flows + 5;
    config.seed = 4000 + avg_flows;

    const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kPlmtf};
    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, /*include_flow_level=*/true,
                               trials);
    const auto& flow = result.mean_by_name.at(exp::kFlowLevelName);
    const auto& event = result.mean_by_name.at("p-lmtf");
    points.push_back(Point{avg_flows, flow.avg_ect, flow.tail_ect,
                           event.avg_ect, event.tail_ect});
    flow_avg_max = std::max(flow_avg_max, flow.avg_ect);
    flow_tail_max = std::max(flow_tail_max, flow.tail_ect);
  }

  AsciiTable table({"avg flows/event", "flow-level avg (norm)",
                    "event-level avg (norm)", "flow-level tail (norm)",
                    "event-level tail (norm)", "avg speedup", "tail speedup"});
  for (const Point& p : points) {
    table.Row()
        .Cell(p.avg_flows)
        .Cell(p.flow_avg / flow_avg_max, 3)
        .Cell(p.event_avg / flow_avg_max, 3)
        .Cell(p.flow_tail / flow_tail_max, 3)
        .Cell(p.event_tail / flow_tail_max, 3)
        .Cell(p.flow_avg / p.event_avg, 2)
        .Cell(p.flow_tail / p.event_tail, 2);
  }
  table.Print();
  bench::PrintFooter(
      "event-level average ECT up to ~10x lower and tail ECT up to ~6x lower "
      "than flow-level; flow-level curves climb steeply past ~35 flows/event");
  return 0;
}
