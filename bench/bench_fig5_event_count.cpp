// Fig. 5 — Average and tail ECT of flow-level vs event-level scheduling as
// the number of queued update events grows (10..50), each event with 10-100
// flows, utilization 70%. Normalized by the flow-level maximum.
#include <algorithm>

#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 5: flow-level vs event-level ECT vs number of events",
      "8-pod Fat-Tree, 10..50 events of 10-100 flows, utilization 70%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  struct Point {
    std::size_t events;
    double flow_avg, flow_tail, event_avg, event_tail;
  };
  std::vector<Point> points;
  double flow_avg_max = 0.0, flow_tail_max = 0.0;

  for (std::size_t events = 10; events <= 50; events += 10) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    config.utilization = 0.7;
    config.event_count = events;
    config.min_flows_per_event = 10;
    config.max_flows_per_event = 100;
    config.seed = 5000 + events;

    const std::vector<sched::SchedulerKind> kinds{sched::SchedulerKind::kPlmtf};
    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, true, trials);
    const auto& flow = result.mean_by_name.at(exp::kFlowLevelName);
    const auto& event = result.mean_by_name.at("p-lmtf");
    points.push_back(Point{events, flow.avg_ect, flow.tail_ect, event.avg_ect,
                           event.tail_ect});
    flow_avg_max = std::max(flow_avg_max, flow.avg_ect);
    flow_tail_max = std::max(flow_tail_max, flow.tail_ect);
  }

  AsciiTable table({"events", "flow-level avg (norm)", "event-level avg (norm)",
                    "flow-level tail (norm)", "event-level tail (norm)",
                    "avg speedup", "tail speedup"});
  for (const Point& p : points) {
    table.Row()
        .Cell(p.events)
        .Cell(p.flow_avg / flow_avg_max, 3)
        .Cell(p.event_avg / flow_avg_max, 3)
        .Cell(p.flow_tail / flow_tail_max, 3)
        .Cell(p.event_tail / flow_tail_max, 3)
        .Cell(p.flow_avg / p.event_avg, 2)
        .Cell(p.flow_tail / p.event_tail, 2);
  }
  table.Print();
  bench::PrintFooter(
      "both methods grow with queue length; event-level stays ~5x (avg) and "
      "~2x (tail) below flow-level on average, with flow-level jumping "
      "around 30 events");
  return 0;
}
