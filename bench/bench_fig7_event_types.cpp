// Fig. 7 — P-LMTF's reduction vs FIFO in average and tail ECT for two event
// types under network utilization 50-90%:
//   * heterogeneous events: 10-100 flows each,
//   * synchronous events:   50-60 flows each.
// 30 events, alpha = 4, static background (the background flows never
// depart in our simulator, matching the paper's setup).
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

namespace {

void RunType(const char* label, std::size_t min_flows, std::size_t max_flows,
             std::size_t trials) {
  std::printf("--- %s events (%zu-%zu flows) ---\n", label, min_flows,
              max_flows);
  AsciiTable table({"utilization", "avg-ECT reduction", "tail-ECT reduction"});
  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kPlmtf};

  for (double utilization = 0.5; utilization <= 0.91; utilization += 0.1) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    config.utilization = utilization;
    config.event_count = 30;
    config.min_flows_per_event = min_flows;
    config.max_flows_per_event = max_flows;
    config.alpha = 4;
    // "For this set of experiments ... we keep the background traffic
    // static" (Section V-D).
    config.background_churn = false;
    config.seed = 7000 + static_cast<std::uint64_t>(utilization * 100);

    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, false, trials);
    const auto& fifo = result.mean_by_name.at("fifo");
    const auto& plmtf = result.mean_by_name.at("p-lmtf");
    table.Row()
        .Cell(utilization, 1)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, plmtf.avg_ect)))
        .Cell(PercentString(ReductionVs(fifo.tail_ect, plmtf.tail_ect)));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 7: P-LMTF vs FIFO by event type and utilization",
      "8-pod Fat-Tree, 30 events, alpha=4, utilization 50..90%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 2);
  RunType("heterogeneous", 10, 100, trials);
  RunType("synchronous", 50, 60, trials);
  bench::PrintFooter(
      "paper: heterogeneous 60-70% avg / 40-60% tail reduction; synchronous "
      "40-50% / 30-50%; both largely insensitive to utilization");
  return 0;
}
