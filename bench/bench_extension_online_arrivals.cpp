// Extension bench — online arrivals. The paper's evaluation queues every
// event at t=0; production update queues receive events over time. Sweep the
// mean inter-arrival gap from saturation (0 s, the paper's regime) toward an
// idle system and watch where scheduling stops mattering: when events arrive
// slower than they are served, every policy degenerates to "execute on
// arrival" and FIFO is optimal for free.
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Extension: online event arrivals (inter-arrival sweep)",
      "8-pod Fat-Tree, 30 events of 10-100 flows, alpha=4, util 65%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  AsciiTable table({"mean gap (s)", "FIFO avg ECT", "LMTF avg ECT",
                    "P-LMTF avg ECT", "LMTF red.", "P-LMTF red.",
                    "FIFO avg q-delay"});
  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};

  for (double gap : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    config.utilization = 0.65;
    config.event_count = 30;
    config.min_flows_per_event = 10;
    config.max_flows_per_event = 100;
    config.alpha = 4;
    config.mean_interarrival = gap;
    config.seed = 18000 + static_cast<std::uint64_t>(gap * 10);

    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, false, trials);
    const auto& fifo = result.mean_by_name.at("fifo");
    const auto& lmtf = result.mean_by_name.at("lmtf");
    const auto& plmtf = result.mean_by_name.at("p-lmtf");
    table.Row()
        .Cell(gap, 1)
        .Cell(fifo.avg_ect, 1)
        .Cell(lmtf.avg_ect, 1)
        .Cell(plmtf.avg_ect, 1)
        .Cell(PercentString(ReductionVs(fifo.avg_ect, lmtf.avg_ect)))
        .Cell(PercentString(ReductionVs(fifo.avg_ect, plmtf.avg_ect)))
        .Cell(fifo.avg_queuing_delay, 1);
  }
  table.Print();
  bench::PrintFooter(
      "reductions are largest at gap 0 (the paper's saturated queue) and "
      "shrink as arrivals slow; once FIFO's queuing delay approaches zero, "
      "there is no queue to schedule and all policies converge");
  return 0;
}
