// Robustness bench — online serving brownout sweep. Calibrates the
// fabric's service rate with a closed batch, then drives the open-loop
// Poisson arrival stream at offered loads from half capacity to 3x while a
// pod-wide SRLG outage lands mid-run, with the full serve stack on:
// per-tenant token-bucket admission, deadline-aware rejection, the brownout
// controller's degradation ladder, and the invariant auditor in
// log-and-count mode.
//
// This is the acceptance soak for the serve subsystem: every load must
// terminate with ZERO audit violations, and every overloaded cell (>= 2x)
// must both reach Shedding and recover to Healthy with the excess absorbed
// by rejections/sheds — the binary aborts (NU_CHECK) otherwise, so a red
// run cannot be committed to results/ unnoticed.
//
// Run:  ./bench_serve [--seed=S] [--csv=PATH]
#include <vector>

#include "bench_common.h"
#include "exp/serve.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Robustness: online serving brownout sweep",
      "4-pod Fat-Tree, 60 s Poisson stream, two tenants (premium prio 2 / "
      "besteffort prio 0), token-bucket admission + deadline rejection, "
      "brownout ladder over bounded queue (16, shed-costliest), pod0 SRLG "
      "outage at t=20 for 10 s, auditor log-and-count");

  exp::ServeCampaignConfig campaign = exp::DefaultServeCampaign(/*rate=*/1.0);
  campaign.exp.seed = bench::ArgOr(argc, argv, "seed", campaign.exp.seed);
  campaign.pod_outage = true;

  const std::vector<double> loads{0.5, 1.0, 2.0, 3.0};
  const std::vector<exp::ServeSweepPoint> points =
      exp::RunServeSweep(campaign, loads, /*calibrate=*/true);

  AsciiTable table({"load", "rate/s", "arrivals", "admitted", "completed",
                    "rejected", "shed", "slo miss", "p50", "p99", "p999",
                    "jain ECT", "transitions", "final", "violations"});
  for (const exp::ServeSweepPoint& point : points) {
    const serve::ServeSummary& s = point.result.serve;
    const std::size_t rejected =
        s.rejected_budget + s.rejected_deadline + s.rejected_priority;

    // The soak's pass/fail line: clean audits at every load; overloaded
    // cells must walk the ladder down to Shedding AND climb back out.
    NU_CHECK(point.result.violations.empty());
    if (point.offered_load >= 2.0) {
      NU_CHECK(s.reached_shedding && "overloaded cell never shed");
      NU_CHECK(s.recovered_healthy && "brownout never recovered");
      NU_CHECK(rejected + s.shed_queue > 0 && "excess load not absorbed");
    }

    table.Row()
        .Cell(point.offered_load, 1)
        .Cell(point.rate, 2)
        .Cell(s.arrivals)
        .Cell(s.admitted)
        .Cell(s.completed)
        .Cell(rejected)
        .Cell(s.shed_queue)
        .Cell(s.slo_misses)
        .Cell(s.ect_p50, 2)
        .Cell(s.ect_p99, 2)
        .Cell(s.ect_p999, 2)
        .Cell(s.jain_ect, 3)
        .Cell(s.transitions)
        .Cell(std::string(serve::ToString(s.final_state)))
        .Cell(point.result.violations.size());
  }
  table.Print();
  bench::MaybeWriteCsv(table, bench::ArgOrStr(argc, argv, "csv", ""));
  bench::PrintFooter(
      "admitted count saturates near capacity while rejections/sheds absorb "
      "the excess above 1x; overloaded rows reach Shedding during the pod "
      "outage and end Healthy (hysteresis ladder, one level per transition); "
      "violations stay 0 and admitted-tail ECT stays bounded at every load");
  return 0;
}
