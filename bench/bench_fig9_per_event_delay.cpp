// Fig. 9 — Per-event queuing delay of 30 queued events under FIFO, LMTF and
// P-LMTF (utilization 50-70%, alpha = 4): the per-event view behind Fig. 8's
// aggregates. Events are listed in arrival order; the paper plots the
// per-event reduction against FIFO.
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 9: per-event queuing delay, 30 events",
      "8-pod Fat-Tree, 30 events of 10-100 flows, alpha=4, util 50-70%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 1);
  (void)trials;  // per-event view uses a single seeded workload

  exp::ExperimentConfig config;
  config.fat_tree_k = 8;
  config.utilization = 0.6;
  config.event_count = 30;
  config.min_flows_per_event = 10;
  config.max_flows_per_event = 100;
  config.alpha = 4;
  config.seed = 9001;

  const exp::Workload workload(config);
  const sim::SimResult fifo =
      exp::RunScheduler(workload, sched::SchedulerKind::kFifo);
  const sim::SimResult lmtf =
      exp::RunScheduler(workload, sched::SchedulerKind::kLmtf);
  const sim::SimResult plmtf =
      exp::RunScheduler(workload, sched::SchedulerKind::kPlmtf);

  AsciiTable table({"event", "flows", "FIFO delay (s)", "LMTF delay (s)",
                    "P-LMTF delay (s)", "LMTF red.", "P-LMTF red."});
  std::size_t lmtf_wins = 0, plmtf_wins = 0;
  for (std::size_t i = 0; i < fifo.records.size(); ++i) {
    const double f = fifo.records[i].QueuingDelay();
    const double l = lmtf.records[i].QueuingDelay();
    const double p = plmtf.records[i].QueuingDelay();
    if (l < f) ++lmtf_wins;
    if (p < f) ++plmtf_wins;
    table.Row()
        .Cell(i)
        .Cell(fifo.records[i].flow_count)
        .Cell(f, 1)
        .Cell(l, 1)
        .Cell(p, 1)
        .Cell(PercentString(ReductionVs(f, l), 0))
        .Cell(PercentString(ReductionVs(f, p), 0));
  }
  table.Print();
  std::printf("events with reduced delay: LMTF %zu/30, P-LMTF %zu/30\n",
              lmtf_wins, plmtf_wins);
  bench::PrintFooter(
      "most events see lower queuing delay than FIFO; P-LMTF dominates LMTF "
      "because displaced heavy events run opportunistically");
  return 0;
}
