// Extension bench — quantifying the paper's fairness narrative. The paper
// claims (without numbers) that LMTF "relaxes fairness slightly" and that
// P-LMTF's opportunistic updating "improves fairness to some extent" over
// LMTF while improving efficiency further. This bench scores all schedulers
// on order fairness (1 - fraction of inverted event pairs), displacement,
// and Jain's index over queuing delays, against their efficiency.
#include "bench_common.h"
#include "exp/runner.h"
#include "metrics/fairness.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Extension: fairness vs efficiency across schedulers",
      "8-pod Fat-Tree, 30 events of 10-100 flows, alpha=4, util 65%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 3);

  exp::ExperimentConfig config;
  config.fat_tree_k = 8;
  config.utilization = 0.65;
  config.event_count = 30;
  config.min_flows_per_event = 10;
  config.max_flows_per_event = 100;
  config.alpha = 4;
  config.seed = 16000;

  AsciiTable table({"scheduler", "avg ECT (s)", "order fairness",
                    "mean displacement", "worst pushback", "Jain (q-delay)"});

  for (const auto kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kReorder,
        sched::SchedulerKind::kLmtf, sched::SchedulerKind::kPlmtf}) {
    double avg_ect = 0.0, order_fairness = 0.0, displacement = 0.0,
           jain = 0.0;
    std::size_t worst = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      exp::ExperimentConfig trial_config = config;
      trial_config.seed = config.seed + trial;
      const exp::Workload workload(trial_config);
      const sim::SimResult result = exp::RunScheduler(workload, kind);
      const metrics::FairnessReport fairness =
          metrics::ComputeFairness(result.records);
      avg_ect += result.report.avg_ect;
      order_fairness += fairness.OrderFairness();
      displacement += fairness.mean_displacement;
      jain += fairness.jain_queuing_delay;
      worst = std::max(worst, fairness.worst_pushback);
    }
    const auto n = static_cast<double>(trials);
    table.Row()
        .Cell(sched::ToString(kind))
        .Cell(avg_ect / n, 1)
        .Cell(order_fairness / n, 3)
        .Cell(displacement / n, 2)
        .Cell(worst)
        .Cell(jain / n, 3);
  }
  table.Print();
  bench::PrintFooter(
      "FIFO is perfectly order-fair but slow; LMTF trades order fairness "
      "for speed. P-LMTF's fairness recovery shows up in the DELAY "
      "dimension (every event's queuing delay shrinks, including the "
      "displaced heavy ones — see bench_fig9), not in pairwise ordering: "
      "opportunistic updating executes sampled events early, which trades "
      "order inversions for much lower absolute waiting. Jain's index is "
      "highest for FIFO because FIFO makes everyone wait long, equally — "
      "the classic fairness-vs-efficiency tension the paper navigates");
  return 0;
}
