// Scale tier: k=16 Fat-Tree with 50k+ background flows driven through
// fifo/lmtf/p-lmtf end to end — the regime where mutable-state layout, not
// probe cost, decides throughput (ROADMAP "production scale"; cf. the
// ever-larger instances of Cerny et al. and Amiri et al.).
//
// Measures per scheduler: end-to-end simulation wall time and events/sec
// (with background churn and the runtime auditor on, so departures,
// replacements, and full-state audits all hit the hot state), plus the peak
// mutable-state bytes of the loaded network:
//   * approx_state_bytes      — Network::ApproxStateBytes() of this build,
//   * legacy_layout_bytes_est — an analytic estimate of the SAME logical
//     state under the legacy layout (unordered_map flow table + placements,
//     a deep topo::Path copy per flow, u64 link-flow entries), counting the
//     map node/bucket and heap-block overheads the legacy
//     ApproxStateBytes() omitted. Both builds compute both numbers, so the
//     old-vs-new bytes comparison is built in.
//
// Wall-time old-vs-new uses a pinned baseline run: the pre-change build
// wrote results/bench_scale_baseline.json; pass
// --baseline=results/bench_scale_baseline.json and the comparison (ratios +
// acceptance booleans: >=3x bytes reduction, >=2x speedup) lands in
// BENCH_scale.json. Workload generation is fully seeded, so both builds
// simulate identical logical states.
//
// The traffic matrix is sparse and skewed (a hot set of host pairs, most
// of them rack- or pod-local), as DC measurement studies report — which is
// also what makes path interning pay: flows share candidate paths.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "exp/runner.h"
#include "metrics/report.h"
#include "net/admission.h"
#include "net/network.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "trace/generator.h"
#include "update/update_event.h"

using namespace nu;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A sparse, skewed traffic matrix: flows are drawn from a fixed hot set of
/// host pairs, weighted toward rack- and pod-local destinations. Shared by
/// initial injection and churn replacements so the pair universe stays
/// stable through the run.
class LocalityGenerator final : public trace::TrafficGenerator {
 public:
  LocalityGenerator(const topo::FatTree& ft, std::size_t hot_pairs, Rng rng)
      : rng_(rng) {
    pairs_.reserve(hot_pairs);
    const std::size_t hosts = ft.host_count();
    while (pairs_.size() < hot_pairs) {
      const NodeId src = ft.host(rng_.Index(hosts));
      // 40% rack-local, 30% pod-local, 30% anywhere: the locality mix DC
      // traces report, and three distinct path-universe shapes (1, (k/2),
      // and (k/2)^2 candidate paths).
      const double roll = rng_.Uniform01();
      NodeId dst = src;
      for (std::size_t guard = 0; dst == src && guard < 64; ++guard) {
        if (roll < 0.4) {
          dst = RandomHostSameEdge(ft, src);
        } else if (roll < 0.7) {
          dst = RandomHostSamePod(ft, src);
        } else {
          dst = ft.host(rng_.Index(hosts));
        }
      }
      if (dst != src) pairs_.push_back({src, dst});
    }
  }

  [[nodiscard]] trace::FlowSpec Next() override {
    // Skew toward the front of the hot set (sum of two uniforms folds the
    // mass toward low indices, a cheap heavy-head approximation).
    const double u = rng_.Uniform01() * rng_.Uniform01();
    const auto idx = static_cast<std::size_t>(
        u * static_cast<double>(pairs_.size()));
    const auto& [src, dst] = pairs_[std::min(idx, pairs_.size() - 1)];
    trace::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.demand = 0.5 + rng_.Uniform(0.0, 1.5);
    spec.duration = 5.0 + rng_.Uniform(0.0, 10.0);
    return spec;
  }

  [[nodiscard]] const char* name() const override { return "locality"; }

 private:
  [[nodiscard]] NodeId RandomHostSameEdge(const topo::FatTree& ft,
                                          NodeId src) {
    const std::size_t base =
        ft.HostIndex(src) / (ft.config().k / 2) * (ft.config().k / 2);
    return ft.host(base + rng_.Index(ft.config().k / 2));
  }
  [[nodiscard]] NodeId RandomHostSamePod(const topo::FatTree& ft, NodeId src) {
    const std::size_t per_pod =
        (ft.config().k / 2) * (ft.config().k / 2);
    const std::size_t base = ft.HostIndex(src) / per_pod * per_pod;
    return ft.host(base + rng_.Index(per_pod));
  }

  Rng rng_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;
};

/// Fills `network` with `count` background flows from `gen`.
std::size_t InjectFlows(net::Network& network,
                        const topo::PathProvider& provider,
                        trace::TrafficGenerator& gen, std::size_t count) {
  std::size_t placed = 0;
  std::size_t attempts = 0;
  while (placed < count && attempts < count * 20) {
    ++attempts;
    trace::FlowSpec spec = gen.Next();
    if (const auto path =
            net::FindFeasiblePath(network, provider, spec.src, spec.dst,
                                  spec.demand, net::PathSelection::kFirstFit)) {
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      f.origin = flow::FlowOrigin::kBackground;
      network.Place(f, *path);
      ++placed;
    }
  }
  return placed;
}

/// Size of a glibc-malloc heap block serving an `n`-byte request: 8-byte
/// chunk header, 16-byte granularity, 32-byte minimum chunk.
std::size_t MallocBlock(std::size_t n) {
  return std::max<std::size_t>(32, (n + 8 + 15) & ~std::size_t{15});
}

struct StateStats {
  std::size_t placed_flows = 0;
  std::size_t link_entries = 0;
  std::size_t unique_paths = 0;
  std::size_t approx_state_bytes = 0;
  std::size_t legacy_layout_bytes_est = 0;
};

/// Analytic byte cost of the legacy hot-state layout holding this network's
/// logical state — what a build before the dense-store/interning change
/// would allocate. Counted honestly: unordered_map heap nodes (key + value
/// + chain pointer per element) and bucket arrays, a deep topo::Path per
/// placement (two heap vectors), u64 link-flow entries.
StateStats MeasureState(const net::Network& network) {
  StateStats s;
  s.approx_state_bytes = network.ApproxStateBytes();
  const topo::Graph& graph = network.graph();
  std::size_t bytes = graph.link_count() * sizeof(Mbps) +  // residual_
                      graph.link_count() + graph.node_count();  // up flags
  bytes += graph.link_count() * sizeof(std::vector<FlowId>);  // link_flows_
  std::set<std::pair<std::vector<NodeId>, std::vector<LinkId>>> uniq;
  for (const FlowId id : network.PlacedFlows()) {
    ++s.placed_flows;
    const topo::Path& p = network.PathOf(id);
    s.link_entries += p.links.size();
    uniq.insert({p.nodes, p.links});
    // placements_ map node: u64 key + topo::Path (two inline vectors) +
    // chain pointer; then the two heap blocks the vectors own.
    bytes += MallocBlock(sizeof(std::uint64_t) + sizeof(topo::Path) +
                         sizeof(void*));
    bytes += MallocBlock(p.nodes.size() * sizeof(NodeId));
    bytes += MallocBlock(p.links.size() * sizeof(LinkId));
    // FlowTable map node: u64 key + Flow + chain pointer.
    bytes += MallocBlock(sizeof(std::uint64_t) + sizeof(flow::Flow) +
                         sizeof(void*));
  }
  s.unique_paths = uniq.size();
  bytes += s.link_entries * sizeof(FlowId);  // u64 per link-flow entry
  // Two unordered_maps' bucket arrays (~1 pointer per element at load
  // factor 1 — a deliberately conservative floor).
  bytes += 2 * s.placed_flows * sizeof(void*);
  s.legacy_layout_bytes_est = bytes;
  return s;
}

std::vector<update::UpdateEvent> MakeEvents(trace::TrafficGenerator& gen,
                                            std::size_t count,
                                            std::size_t flows_per_event) {
  std::vector<update::UpdateEvent> events;
  events.reserve(count);
  for (std::uint64_t e = 0; e < count; ++e) {
    std::vector<flow::Flow> flows;
    flows.reserve(flows_per_event);
    for (std::size_t i = 0; i < flows_per_event; ++i) {
      const trace::FlowSpec spec = gen.Next();
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      flows.push_back(f);
    }
    events.push_back(update::UpdateEvent(EventId{e}, 0.0, std::move(flows)));
  }
  return events;
}

struct RunRow {
  std::string scheduler;
  std::size_t events = 0;
  std::size_t rounds = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

/// One modeled thread-count point of the sharded tier.
struct ShardThreadRow {
  std::size_t threads = 0;
  double modeled_wall_seconds = 0.0;
  double modeled_events_per_sec = 0.0;
  /// modeled(1 thread) / modeled(this thread count).
  double modeled_speedup = 0.0;
};

/// One scheduler's sharded-tier measurement: the unsharded reference run,
/// the sharded run's measured wall/parallel split, and the modeled
/// thread-count sweep derived from per-task busy seconds (see ShardStats —
/// the deterministic shard s -> worker s % T assignment makes the modeled
/// makespan a pure function of the measured busy times, so a 1-core host
/// can report what a T-core host would see; the serial remainder is
/// identical either way).
struct ShardRow {
  std::string scheduler;
  std::size_t events = 0;
  std::size_t rounds = 0;
  double unsharded_wall_seconds = 0.0;
  double sharded_wall_seconds = 0.0;
  double fanout_wall_seconds = 0.0;
  /// sharded_wall - fanout_wall: the part no thread count helps.
  double serial_seconds = 0.0;
  std::uint64_t probe_fanouts = 0;
  std::uint64_t audit_fanouts = 0;
  std::uint64_t cross_shard_events = 0;
  std::vector<ShardThreadRow> sweep;
  double speedup_8t = 0.0;
};

bool HasFlag(int argc, char** argv, const char* flag) {
  const std::string needle = std::string("--") + flag;
  for (int i = 1; i < argc; ++i) {
    if (needle == argv[i]) return true;
  }
  return false;
}

/// Pulls `"key": <number>` out of a JSON text — enough to read the pinned
/// baseline this bench itself wrote.
std::optional<double> JsonNumber(const std::string& text,
                                 const std::string& key, std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "quick");
  const std::size_t k = bench::ArgOr(argc, argv, "k", quick ? 8 : 16);
  const std::size_t flow_target =
      bench::ArgOr(argc, argv, "flows", quick ? 5'000 : 50'000);
  const std::size_t event_count =
      bench::ArgOr(argc, argv, "events", quick ? 40 : 200);
  const std::string json_path =
      bench::ArgOrStr(argc, argv, "json", "BENCH_scale.json");
  const std::string csv_path = bench::ArgOrStr(argc, argv, "csv", "");
  const std::string txt_path = bench::ArgOrStr(argc, argv, "txt", "");
  const std::string baseline_path = bench::ArgOrStr(argc, argv, "baseline", "");

  bench::PrintHeader(
      "Scale tier: end-to-end simulation at k=16 / 50k background flows",
      quick ? "quick sweep (CI): k=8, 5k flows" :
              "k=16 Fat-Tree, 50k background flows, churn + auditor on");

  // Capacity sized so the hot-pair host uplinks absorb the skewed matrix.
  topo::FatTree ft(topo::FatTreeConfig{
      .k = k, .link_capacity = quick ? 2000.0 : 4000.0});
  topo::FatTreePathProvider provider(ft);
  const std::size_t hot_pairs = flow_target / 25;

  net::Network network(ft.graph());
  LocalityGenerator inject_gen(ft, hot_pairs, Rng(777));
  auto inject_start = Clock::now();
  const std::size_t placed =
      InjectFlows(network, provider, inject_gen, flow_target);
  const double inject_seconds = SecondsSince(inject_start);
  std::printf("injected %zu/%zu flows in %.2fs (%zu hot pairs)\n", placed,
              flow_target, inject_seconds, hot_pairs);

  // Bulk injection grows vectors geometrically; drop the slack so the
  // measured bytes reflect steady-state storage, not growth headroom.
  network.ShrinkToFit();
  const StateStats state = MeasureState(network);
  const double builtin_bytes_reduction =
      state.approx_state_bytes > 0
          ? static_cast<double>(state.legacy_layout_bytes_est) /
                static_cast<double>(state.approx_state_bytes)
          : 0.0;
  std::printf(
      "state: %.1f MiB (this build), %.1f MiB legacy-layout estimate, "
      "%zu unique paths, %zu link entries\n",
      static_cast<double>(state.approx_state_bytes) / (1024.0 * 1024.0),
      static_cast<double>(state.legacy_layout_bytes_est) / (1024.0 * 1024.0),
      state.unique_paths, state.link_entries);

  // End-to-end runs: churn on (departures draw replacements from the same
  // hot-pair matrix) and the invariant auditor on a coarse cadence, so
  // every subsystem that scans the hot state contributes.
  LocalityGenerator event_gen(ft, hot_pairs, Rng(4242));
  const auto events = MakeEvents(event_gen, event_count, 5);

  sim::SimConfig config;
  config.seed = 20260805;
  config.guard.auditor.enabled = true;
  config.guard.auditor.cadence = quick ? 1000 : 500;
  config.churn.enabled = true;
  config.churn.placement.max_flows = flow_target * 2;

  AsciiTable table({"scheduler", "events", "rounds", "wall s", "events/s"});
  std::vector<RunRow> rows;
  double total_wall = 0.0;
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
        sched::SchedulerKind::kPlmtf}) {
    sim::Simulator simulator(network, provider, config);
    simulator.SetChurnFactory([&ft, hot_pairs](std::uint64_t seed) {
      return std::make_unique<LocalityGenerator>(ft, hot_pairs, Rng(seed));
    });
    const auto scheduler = sched::MakeScheduler(kind);
    const auto start = Clock::now();
    const sim::SimResult result = simulator.Run(*scheduler, events);
    RunRow row;
    row.scheduler = sched::ToString(kind);
    row.events = result.report.event_count;
    row.rounds = result.rounds;
    row.wall_seconds = SecondsSince(start);
    row.events_per_sec =
        row.wall_seconds > 0.0
            ? static_cast<double>(row.events) / row.wall_seconds
            : 0.0;
    total_wall += row.wall_seconds;
    table.Row()
        .Cell(row.scheduler)
        .Cell(row.events)
        .Cell(row.rounds)
        .Cell(row.wall_seconds, 2)
        .Cell(row.events_per_sec, 1);
    rows.push_back(row);
    std::printf("%-7s %zu events, %zu rounds, %.2fs (%.1f events/s)\n",
                row.scheduler.c_str(), row.events, row.rounds,
                row.wall_seconds, row.events_per_sec);
  }

  // --- Pod-sharded tier: k=32 / 500k flows, thread-count sweep ---
  //
  // A separate, bigger fabric: one shard per pod, churn OFF (replacement
  // draws are coordinator work and would dilute the parallel fraction this
  // tier exists to measure), auditor ON at a dense cadence (full-state
  // audits and probe planning are the fan-out work). Each scheduler runs
  // once unsharded (the reference) and once sharded; the sharded run's
  // ShardStats carry per-task busy seconds, from which the modeled
  // thread-count sweep is computed (see ShardRow).
  const std::size_t shard_k =
      bench::ArgOr(argc, argv, "shard-k", quick ? 8 : 32);
  const std::size_t shard_flows =
      bench::ArgOr(argc, argv, "shard-flows", quick ? 5'000 : 500'000);
  const std::size_t shard_events =
      bench::ArgOr(argc, argv, "shard-events", quick ? 20 : 60);

  topo::FatTree shard_ft(topo::FatTreeConfig{
      .k = shard_k, .link_capacity = quick ? 2000.0 : 8000.0});
  topo::FatTreePathProvider shard_provider(shard_ft);
  const std::size_t shard_hot_pairs = shard_flows / 25;
  net::Network shard_network(shard_ft.graph());
  LocalityGenerator shard_inject(shard_ft, shard_hot_pairs, Rng(1337));
  const auto shard_inject_start = Clock::now();
  const std::size_t shard_placed =
      InjectFlows(shard_network, shard_provider, shard_inject, shard_flows);
  shard_network.ShrinkToFit();
  std::printf("\nshard tier: k=%zu, injected %zu/%zu flows in %.2fs, "
              "%zu shards\n",
              shard_k, shard_placed, shard_flows,
              SecondsSince(shard_inject_start), shard_ft.pod_count());

  LocalityGenerator shard_event_gen(shard_ft, shard_hot_pairs, Rng(2424));
  const auto shard_run_events =
      MakeEvents(shard_event_gen, shard_events, 5);

  sim::SimConfig shard_config;
  shard_config.seed = 20260809;
  shard_config.guard.auditor.enabled = true;
  shard_config.guard.auditor.cadence = quick ? 4 : 2;
  shard_config.churn.enabled = false;

  std::vector<ShardRow> shard_rows;
  for (const sched::SchedulerKind kind :
       {sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
        sched::SchedulerKind::kPlmtf}) {
    ShardRow srow;
    srow.scheduler = sched::ToString(kind);
    {
      sim::Simulator simulator(shard_network, shard_provider, shard_config);
      const auto scheduler = sched::MakeScheduler(kind);
      const auto start = Clock::now();
      const sim::SimResult result =
          simulator.Run(*scheduler, shard_run_events);
      srow.unsharded_wall_seconds = SecondsSince(start);
      srow.events = result.report.event_count;
      srow.rounds = result.rounds;
    }
    sim::SimConfig sharded = shard_config;
    sharded.shards = shard_ft.pod_count();
    sharded.shard_threads = 1;  // 1-core host: measure busy times unnoisy
    {
      sim::Simulator simulator(shard_network, shard_provider, sharded);
      const auto scheduler = sched::MakeScheduler(kind);
      const auto start = Clock::now();
      const sim::SimResult result =
          simulator.Run(*scheduler, shard_run_events);
      srow.sharded_wall_seconds = SecondsSince(start);
      const metrics::ShardStats& ss = result.shard_stats;
      srow.fanout_wall_seconds = ss.fanout_wall_seconds;
      srow.serial_seconds =
          std::max(0.0, srow.sharded_wall_seconds - ss.fanout_wall_seconds);
      srow.probe_fanouts = ss.probe_fanouts;
      srow.audit_fanouts = ss.audit_fanouts;
      srow.cross_shard_events = ss.cross_shard_events;
      for (std::size_t i = 0; i < metrics::kShardModelThreads.size(); ++i) {
        ShardThreadRow t;
        t.threads = metrics::kShardModelThreads[i];
        t.modeled_wall_seconds =
            srow.serial_seconds + ss.modeled_parallel_seconds[i];
        t.modeled_events_per_sec =
            t.modeled_wall_seconds > 0.0
                ? static_cast<double>(srow.events) / t.modeled_wall_seconds
                : 0.0;
        srow.sweep.push_back(t);
      }
      const double one_thread = srow.sweep.front().modeled_wall_seconds;
      for (ShardThreadRow& t : srow.sweep) {
        t.modeled_speedup = t.modeled_wall_seconds > 0.0
                                ? one_thread / t.modeled_wall_seconds
                                : 0.0;
      }
      srow.speedup_8t = srow.sweep.back().modeled_speedup;
    }
    std::printf("%-7s sharded %.2fs (unsharded %.2fs, parallel %.2fs, "
                "serial %.2fs) -> modeled 8t speedup %.2fx\n",
                srow.scheduler.c_str(), srow.sharded_wall_seconds,
                srow.unsharded_wall_seconds, srow.fanout_wall_seconds,
                srow.serial_seconds, srow.speedup_8t);
    shard_rows.push_back(std::move(srow));
  }
  double min_speedup_8t = 0.0;
  for (const ShardRow& srow : shard_rows) {
    min_speedup_8t = min_speedup_8t == 0.0
                         ? srow.speedup_8t
                         : std::min(min_speedup_8t, srow.speedup_8t);
  }

  AsciiTable shard_table({"scheduler", "ev/s 1t", "ev/s 2t", "ev/s 4t",
                          "ev/s 8t", "speedup 8t"});
  for (const ShardRow& srow : shard_rows) {
    auto& r = shard_table.Row().Cell(srow.scheduler);
    for (const ShardThreadRow& t : srow.sweep) {
      r.Cell(t.modeled_events_per_sec, 1);
    }
    r.Cell(srow.speedup_8t, 2);
  }

  // Pinned-baseline comparison (wall time cannot be measured across two
  // layouts inside one binary; bytes can — and are, above).
  double baseline_total_wall = 0.0;
  double baseline_approx_bytes = 0.0;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string text = buf.str();
      const auto wall = JsonNumber(text, "total_wall_seconds");
      const auto bytes = JsonNumber(text, "approx_state_bytes");
      if (wall && bytes) {
        baseline_total_wall = *wall;
        baseline_approx_bytes = *bytes;
        have_baseline = true;
      }
    }
    if (!have_baseline) {
      std::fprintf(stderr, "cannot read baseline: %s\n",
                   baseline_path.c_str());
    }
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"scale\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"k\": " << k
       << ",\n  \"background_flows\": " << placed
       << ",\n  \"hot_pairs\": " << hot_pairs
       << ",\n  \"inject_seconds\": " << FormatDouble(inject_seconds, 2)
       << ",\n  \"state\": {\"approx_state_bytes\": "
       << state.approx_state_bytes << ", \"legacy_layout_bytes_est\": "
       << state.legacy_layout_bytes_est << ", \"unique_paths\": "
       << state.unique_paths << ", \"link_entries\": " << state.link_entries
       << ", \"placed_flows\": " << state.placed_flows
       << ", \"builtin_bytes_reduction\": "
       << FormatDouble(builtin_bytes_reduction, 2) << "},\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& row = rows[i];
    json << "    {\"scheduler\": \"" << row.scheduler
         << "\", \"events\": " << row.events << ", \"rounds\": " << row.rounds
         << ", \"wall_seconds\": " << FormatDouble(row.wall_seconds, 3)
         << ", \"events_per_sec\": " << FormatDouble(row.events_per_sec, 1)
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"total_wall_seconds\": " << FormatDouble(total_wall, 3);
  // Sharded tier. host_cores records the machine that measured the busy
  // times; the sweep's wall numbers are the modeled critical path (serial
  // remainder + busiest-worker makespan under shard s -> worker s % T),
  // not multi-core measurements.
  json << ",\n  \"shards\": {\n    \"host_cores\": "
       << std::thread::hardware_concurrency()
       << ",\n    \"note\": \"modeled critical path from measured per-shard "
          "busy seconds (deterministic shard->worker assignment s % T); "
          "not a multi-core wall measurement\""
       << ",\n    \"k\": " << shard_k
       << ",\n    \"background_flows\": " << shard_placed
       << ",\n    \"shard_count\": " << shard_ft.pod_count()
       << ",\n    \"events\": " << shard_events
       << ",\n    \"rows\": [\n";
  for (std::size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardRow& srow = shard_rows[i];
    json << "      {\"scheduler\": \"" << srow.scheduler
         << "\", \"events\": " << srow.events
         << ", \"rounds\": " << srow.rounds
         << ", \"unsharded_wall_seconds\": "
         << FormatDouble(srow.unsharded_wall_seconds, 3)
         << ", \"sharded_wall_seconds\": "
         << FormatDouble(srow.sharded_wall_seconds, 3)
         << ", \"fanout_wall_seconds\": "
         << FormatDouble(srow.fanout_wall_seconds, 3)
         << ", \"serial_seconds\": " << FormatDouble(srow.serial_seconds, 3)
         << ", \"probe_fanouts\": " << srow.probe_fanouts
         << ", \"audit_fanouts\": " << srow.audit_fanouts
         << ", \"cross_shard_events\": " << srow.cross_shard_events
         << ",\n       \"threads\": [";
    for (std::size_t t = 0; t < srow.sweep.size(); ++t) {
      const ShardThreadRow& tr = srow.sweep[t];
      json << (t > 0 ? ", " : "") << "{\"threads\": " << tr.threads
           << ", \"modeled_wall_seconds\": "
           << FormatDouble(tr.modeled_wall_seconds, 3)
           << ", \"modeled_events_per_sec\": "
           << FormatDouble(tr.modeled_events_per_sec, 1)
           << ", \"modeled_speedup\": "
           << FormatDouble(tr.modeled_speedup, 2) << "}";
    }
    json << "],\n       \"speedup_8t\": " << FormatDouble(srow.speedup_8t, 2)
         << "}" << (i + 1 < shard_rows.size() ? "," : "") << "\n";
  }
  json << "    ],\n    \"min_speedup_8t\": " << FormatDouble(min_speedup_8t, 2)
       << ",\n    \"meets_5x_8t\": "
       << (min_speedup_8t >= 5.0 ? "true" : "false") << "\n  }";
  if (have_baseline) {
    const double speedup =
        total_wall > 0.0 ? baseline_total_wall / total_wall : 0.0;
    json << ",\n  \"comparison\": {\"baseline\": \"" << baseline_path
         << "\", \"baseline_total_wall_seconds\": "
         << FormatDouble(baseline_total_wall, 3)
         << ", \"baseline_approx_state_bytes\": "
         << FormatDouble(baseline_approx_bytes, 0)
         << ", \"speedup_end_to_end\": " << FormatDouble(speedup, 2)
         << ", \"bytes_reduction\": "
         << FormatDouble(builtin_bytes_reduction, 2)
         << ", \"meets_2x_speedup\": " << (speedup >= 2.0 ? "true" : "false")
         << ", \"meets_3x_bytes\": "
         << (builtin_bytes_reduction >= 3.0 ? "true" : "false") << "}";
    std::printf("vs baseline: %.2fx end-to-end speedup, %.2fx bytes "
                "reduction\n", speedup, builtin_bytes_reduction);
  }
  json << "\n}\n";
  json.close();
  std::printf("json written: %s\n", json_path.c_str());

  table.Print();
  std::printf("sharded tier (modeled thread-count sweep, %zu shards):\n",
              shard_ft.pod_count());
  shard_table.Print();
  if (!txt_path.empty()) {
    std::ofstream txt(txt_path);
    txt << table.Render() << "\n" << shard_table.Render();
    std::printf("txt written: %s\n", txt_path.c_str());
  }
  bench::MaybeWriteCsv(table, csv_path);
  if (!csv_path.empty()) {
    // The sharded tier's machine-readable twin rides next to the main CSV.
    const std::size_t dot = csv_path.rfind('.');
    const std::string shards_csv =
        dot == std::string::npos ? csv_path + "_shards"
                                 : csv_path.substr(0, dot) + "_shards" +
                                       csv_path.substr(dot);
    bench::MaybeWriteCsv(shard_table, shards_csv);
  }
  bench::PrintFooter(
      "events/sec is bounded by hot-state traversal (audits, departures, "
      "link-flow scans): the dense id-indexed stores and interned paths "
      "cut both the bytes a scan touches and the per-read hashing, so the "
      "post-change build clears 2x end-to-end and 3x state bytes");
  return 0;
}
