// Fig. 2 — The didactic flow-level vs event-level ordering example: three
// update events whose flows are either interleaved (flow-level, Fig. 2a) or
// grouped (event-level, Fig. 2b). With unit-duration flows the paper
// computes average ECTs 32/3 vs 22/3.
//
// We reproduce the arithmetic with the library's own queue-construction
// helpers, dispatching one flow per time slot as in the figure.
#include <algorithm>
#include <map>

#include "bench_common.h"
#include "sched/flow_level.h"

using namespace nu;

namespace {

flow::Flow UnitFlow() {
  flow::Flow f;
  f.src = NodeId{0};
  f.dst = NodeId{1};
  f.demand = 1.0;
  f.duration = 1.0;
  return f;
}

/// Dispatch one flow per slot; an event completes when its last flow's slot
/// ends. Returns completion time per event id.
std::map<EventId, double> SlotSchedule(
    const std::vector<sched::FlowLevelItem>& queue) {
  std::map<EventId, double> completion;
  double slot = 0.0;
  for (const sched::FlowLevelItem& item : queue) {
    slot += 1.0;
    completion[item.event->id()] =
        std::max(completion[item.event->id()], slot);
  }
  return completion;
}

double AverageEct(const std::map<EventId, double>& completions) {
  double sum = 0.0;
  for (const auto& [_, t] : completions) sum += t;
  return sum / static_cast<double>(completions.size());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 2: update order of flows, flow-level vs event-level",
      "3 events with 3/4/5 unit flows; one flow dispatched per slot");

  std::vector<update::UpdateEvent> events;
  for (std::uint64_t i = 0; i < 3; ++i) {
    // Explicit fill: the vector(n, value) constructor trips a GCC 12
    // -Wstringop-overflow false positive at -O3.
    std::vector<flow::Flow> flows;
    for (std::uint64_t f = 0; f < 3 + i; ++f) flows.push_back(UnitFlow());
    events.emplace_back(EventId{i}, 0.0, std::move(flows));
  }

  const auto interleaved = sched::InterleaveFlows(events);
  const auto grouped = sched::ConcatenateFlows(events);
  const auto flow_level = SlotSchedule(interleaved);
  const auto event_level = SlotSchedule(grouped);

  AsciiTable table({"event", "flows", "flow-level ECT", "event-level ECT"});
  for (const auto& e : events) {
    table.Row()
        .Cell(std::to_string(e.id().value()))
        .Cell(e.flow_count())
        .Cell(flow_level.at(e.id()), 0)
        .Cell(event_level.at(e.id()), 0);
  }
  table.Print();

  std::printf("average ECT: flow-level %.2f vs event-level %.2f\n",
              AverageEct(flow_level), AverageEct(event_level));
  std::printf(
      "paper's figure (its own interleaving of the same 3/4/5 instance): "
      "flow-level (9+11+12)/3 = %.2f, event-level (3+7+12)/3 = %.2f\n",
      32.0 / 3.0, 22.0 / 3.0);
  bench::PrintFooter(
      "event-level grouping lowers average ECT (22/3 < 32/3); tail ECT equal "
      "because total work is identical");
  return AverageEct(event_level) < AverageEct(flow_level) ? 0 : 1;
}
