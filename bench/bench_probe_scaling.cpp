// Probe fast-path scaling: how much does a single what-if cost probe cost as
// the background-flow count grows, per probing mode?
//
//   legacy   — deep-copies the whole network per probe (the pre-overlay code
//              path, kept behind SimConfig::probe_fast_path=false),
//   overlay  — plans on a copy-on-write NetworkOverlay (the default),
//   parallel — the overlay probes of one round's alpha candidates evaluated
//              concurrently on a thread pool (per-probe wall time),
//   cached   — an epoch-keyed probe-cost cache hit (the re-probe price when
//              the network state has not changed).
//
// Deep-copy cost is O(total state), overlay cost is O(state touched), so the
// gap must widen with the background-flow count; the acceptance bar is a
// >= 5x legacy/overlay ratio at the largest sweep point. Emits an ASCII
// table (+ optional txt/csv twins) and BENCH_probe.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/admission.h"
#include "net/network.h"
#include "net/overlay.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/planner.h"
#include "update/update_event.h"

using namespace nu;

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

flow::Flow RandomFlow(const topo::FatTree& ft, Rng& rng, Mbps lo, Mbps hi) {
  flow::Flow f;
  f.src = ft.host(rng.Index(ft.host_count()));
  do {
    f.dst = ft.host(rng.Index(ft.host_count()));
  } while (f.dst == f.src);
  f.demand = lo + rng.Uniform(0.0, hi - lo);
  f.duration = 1.0;
  return f;
}

/// Fills `network` with `count` placeable background flows.
void InjectFlows(net::Network& network, const topo::FatTree& ft,
                 const topo::PathProvider& provider, std::size_t count,
                 Rng& rng) {
  std::size_t placed = 0;
  std::size_t attempts = 0;
  while (placed < count && attempts < count * 20) {
    ++attempts;
    const flow::Flow f = RandomFlow(ft, rng, 1.0, 5.0);
    if (const auto path =
            net::FindFeasiblePath(network, provider, f.src, f.dst, f.demand,
                                  net::PathSelection::kWidest)) {
      network.Place(f, *path);
      ++placed;
    }
  }
}

std::vector<update::UpdateEvent> MakeEvents(const topo::FatTree& ft,
                                            std::size_t count,
                                            std::size_t flows_per_event,
                                            Rng& rng) {
  std::vector<update::UpdateEvent> events;
  for (std::uint64_t e = 0; e < count; ++e) {
    std::vector<flow::Flow> flows;
    for (std::size_t i = 0; i < flows_per_event; ++i) {
      flows.push_back(RandomFlow(ft, rng, 2.0, 8.0));
    }
    events.push_back(update::UpdateEvent(EventId{e}, 0.0, std::move(flows)));
  }
  return events;
}

struct ModeTimes {
  double legacy_us = 0.0;
  double overlay_us = 0.0;
  double parallel_us = 0.0;
  double cached_us = 0.0;
};

/// Mean per-probe wall time of each mode over `reps` rounds of `alpha`
/// candidate probes.
ModeTimes TimeProbes(const net::Network& network,
                     const update::EventPlanner& planner,
                     std::span<const update::UpdateEvent> events,
                     std::size_t alpha, std::size_t reps) {
  ModeTimes t;
  const std::size_t n = alpha * reps;

  auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < alpha; ++i) {
      (void)planner.PlanLegacyCopy(network, events[i]);
    }
  }
  t.legacy_us = MicrosSince(start) / static_cast<double>(n);

  start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < alpha; ++i) {
      (void)planner.Plan(network, events[i]);
    }
  }
  t.overlay_us = MicrosSince(start) / static_cast<double>(n);

  {
    ThreadPool pool(alpha);
    start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      std::vector<std::future<update::EventPlan>> pending;
      pending.reserve(alpha);
      for (std::size_t i = 0; i < alpha; ++i) {
        const update::UpdateEvent& event = events[i];
        pending.push_back(pool.Submit(
            [&planner, &network, &event] {
              return planner.Plan(network, event);
            }));
      }
      for (auto& f : pending) (void)f.get();
    }
    t.parallel_us = MicrosSince(start) / static_cast<double>(n);
  }

  // A cache hit is an unordered_map find plus an epoch compare — time it
  // against the same event-id key set the simulator would use.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, Mbps>> cache;
  for (std::size_t i = 0; i < alpha; ++i) {
    cache[events[i].id().value()] = {network.state_epoch(), 1.0};
  }
  double sink = 0.0;
  const std::size_t cached_reps = reps * 1000;
  start = Clock::now();
  for (std::size_t r = 0; r < cached_reps; ++r) {
    for (std::size_t i = 0; i < alpha; ++i) {
      const auto it = cache.find(events[i].id().value());
      if (it != cache.end() && it->second.first == network.state_epoch()) {
        sink += it->second.second;
      }
    }
  }
  t.cached_us =
      MicrosSince(start) / static_cast<double>(cached_reps * alpha);
  if (sink < 0.0) std::printf("unreachable %f\n", sink);
  return t;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  const std::string needle = std::string("--") + flag;
  for (int i = 1; i < argc; ++i) {
    if (needle == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "quick");
  bench::PrintHeader(
      "Probe fast path: per-probe wall time vs background-flow count",
      quick ? "8-pod Fat-Tree, quick sweep (CI)"
            : "8-pod Fat-Tree, flows x alpha sweep, 5-flow events");

  const std::vector<std::size_t> flow_counts =
      quick ? std::vector<std::size_t>{250, 1000}
            : std::vector<std::size_t>{500, 1000, 2000, 5000};
  const std::vector<std::size_t> alphas{2, 4, 8};
  const std::size_t reps = bench::ArgOr(argc, argv, "reps", quick ? 5 : 20);
  const std::string json_path =
      bench::ArgOrStr(argc, argv, "json", "BENCH_probe.json");
  const std::string csv_path = bench::ArgOrStr(argc, argv, "csv", "");
  const std::string txt_path = bench::ArgOrStr(argc, argv, "txt", "");

  // Capacity scaled so even the 5k-flow point places fully (demand <= 5).
  topo::FatTree ft(topo::FatTreeConfig{.k = 8, .link_capacity = 10000.0});
  topo::FatTreePathProvider provider(ft);
  const update::EventPlanner planner(provider, {},
                                     net::PathSelection::kWidest);

  AsciiTable table({"bg flows", "alpha", "copy KiB", "legacy us/probe",
                    "overlay us/probe", "speedup", "parallel us/probe",
                    "cached us/probe"});

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"probe_scaling\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"rows\": [\n";
  double final_speedup = 0.0;
  bool first_row = true;

  for (std::size_t flows : flow_counts) {
    net::Network network(ft.graph());
    Rng rng(4242);
    InjectFlows(network, ft, provider, flows, rng);
    const auto events = MakeEvents(ft, alphas.back(), 5, rng);
    const double copy_kib =
        static_cast<double>(network.ApproxStateBytes()) / 1024.0;

    for (std::size_t alpha : alphas) {
      const ModeTimes t = TimeProbes(network, planner, events, alpha, reps);
      const double speedup =
          t.overlay_us > 0.0 ? t.legacy_us / t.overlay_us : 0.0;
      if (flows == flow_counts.back() && alpha == alphas.back()) {
        final_speedup = speedup;
      }
      table.Row()
          .Cell(flows)
          .Cell(alpha)
          .Cell(copy_kib, 0)
          .Cell(t.legacy_us, 1)
          .Cell(t.overlay_us, 1)
          .Cell(speedup, 1)
          .Cell(t.parallel_us, 1)
          .Cell(t.cached_us, 4);

      if (!first_row) json << ",\n";
      first_row = false;
      json << "    {\"background_flows\": " << flows
           << ", \"alpha\": " << alpha << ", \"copy_bytes\": "
           << network.ApproxStateBytes()
           << ", \"legacy_us_per_probe\": " << FormatDouble(t.legacy_us, 3)
           << ", \"overlay_us_per_probe\": " << FormatDouble(t.overlay_us, 3)
           << ", \"parallel_us_per_probe\": "
           << FormatDouble(t.parallel_us, 3)
           << ", \"cached_us_per_probe\": " << FormatDouble(t.cached_us, 5)
           << ", \"speedup_vs_legacy\": " << FormatDouble(speedup, 2) << "}";
    }
  }

  json << "\n  ],\n  \"acceptance\": {\"max_flows\": " << flow_counts.back()
       << ", \"speedup_vs_legacy\": " << FormatDouble(final_speedup, 2)
       << ", \"meets_5x\": " << (final_speedup >= 5.0 ? "true" : "false")
       << "}\n}\n";
  json.close();
  std::printf("json written: %s\n", json_path.c_str());

  table.Print();
  if (!txt_path.empty()) {
    std::ofstream txt(txt_path);
    txt << table.Render();
    std::printf("txt written: %s\n", txt_path.c_str());
  }
  bench::MaybeWriteCsv(table, csv_path);
  bench::PrintFooter(
      "legacy grows linearly with the background-flow count (deep copy is "
      "O(total state)); overlay stays flat (O(state touched)), so the "
      "speedup widens with scale and clears 5x at the largest point; "
      "parallel divides the overlay time by ~alpha workers; cached hits "
      "are O(1) map lookups, orders of magnitude below either");
  if (final_speedup < 5.0 && !quick) {
    std::fprintf(stderr, "ACCEPTANCE FAILED: speedup %.2f < 5.0\n",
                 final_speedup);
    return 1;
  }
  return 0;
}
