// Hot-loop microbenchmarks for the SoA/arena pass: each phase pits a
// production hot path against a pinned copy of its pre-change
// implementation on the scale tier (k=16 Fat-Tree, 50k background flows;
// --quick drops to k=8 / 5k for CI smoke).
//
//   congestion_scan  — gathered residual row + branch-free CountCongested
//                      kernel vs the materializing CongestedLinks() vector
//                      (what LeastCongestedPath used to call per candidate).
//   batched_scoring  — arena-backed batched QuickCostScore vs the legacy
//                      per-call-vector scalar estimator (verbatim copy).
//   residual_update  — Place/Remove against the flat SoA residual store vs
//                      the same cycle through a copy-on-write overlay.
//   arena_vs_malloc  — the scorer's per-round scratch shape from a warmed
//                      arena vs fresh heap vectors every round.
//
// The batched scorer and the scan kernels are bit-identical to the legacy
// code (tests/update/batched_scoring_test.cc), so the speedups here are
// pure data-layout and allocation wins. Acceptance (landed in the JSON):
// congestion_scan and batched_scoring must clear 3x at the full tier.
//
// Run:  ./bench_hotloops [--quick] [--csv=PATH] [--txt=PATH] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/arena.h"
#include "common/rng.h"
#include "net/admission.h"
#include "net/network.h"
#include "net/overlay.h"
#include "net/residual_scan.h"
#include "topo/fat_tree.h"
#include "topo/path_provider.h"
#include "update/cost_estimate.h"
#include "update/update_event.h"

using namespace nu;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool HasFlag(int argc, char** argv, const char* flag) {
  const std::string needle = std::string("--") + flag;
  for (int i = 1; i < argc; ++i) {
    if (needle == argv[i]) return true;
  }
  return false;
}

// --- Legacy scalar estimator, pinned verbatim (pre-batching baseline) ----

namespace legacy {

class ResidualScratch {
 public:
  explicit ResidualScratch(const net::NetworkView& network)
      : network_(&network),
        value_(network.graph().link_count(), 0.0),
        known_(network.graph().link_count(), 0) {}

  Mbps Get(LinkId lid) {
    const auto i = lid.value();
    if (known_[i] == 0) {
      value_[i] = network_->Residual(lid);
      known_[i] = 1;
    }
    return value_[i];
  }

 private:
  const net::NetworkView* network_;
  std::vector<Mbps> value_;
  std::vector<char> known_;
};

struct PathDeficit {
  Mbps deficit = 0.0;
  Mbps movable = 0.0;
};

PathDeficit DeficitOn(const net::NetworkView& network,
                      ResidualScratch& residuals, const topo::Path& path,
                      Mbps demand) {
  PathDeficit result;
  for (LinkId lid : path.links) {
    const Mbps residual = residuals.Get(lid);
    if (ApproxGe(residual, demand)) continue;
    const Mbps link_deficit = demand - residual;
    if (link_deficit > result.deficit) {
      result.deficit = link_deficit;
      const topo::Link& link = network.graph().link(lid);
      result.movable = link.capacity - residual;
    }
  }
  return result;
}

update::QuickCostResult QuickCostEstimate(const net::NetworkView& network,
                                          const topo::PathProvider& paths,
                                          const update::UpdateEvent& event) {
  update::QuickCostResult result;
  ResidualScratch residuals(network);
  for (const flow::Flow& f : event.flows()) {
    const std::vector<topo::Path>& candidates = paths.Paths(f.src, f.dst);
    if (candidates.empty()) {
      ++result.likely_blocked;
      continue;
    }
    Mbps best_deficit = std::numeric_limits<double>::infinity();
    Mbps movable_at_best = 0.0;
    for (const topo::Path& p : candidates) {
      const PathDeficit d = DeficitOn(network, residuals, p, f.demand);
      if (d.deficit < best_deficit) {
        best_deficit = d.deficit;
        movable_at_best = d.movable;
        if (best_deficit <= kBandwidthEpsilon) break;
      }
    }
    if (best_deficit <= kBandwidthEpsilon) continue;
    ++result.flows_with_deficit;
    result.deficit_sum += best_deficit;
    if (best_deficit > movable_at_best + kBandwidthEpsilon) {
      ++result.likely_blocked;
    }
  }
  return result;
}

Mbps QuickCostScore(const net::NetworkView& network,
                    const topo::PathProvider& paths,
                    const update::UpdateEvent& event) {
  const update::QuickCostResult estimate =
      legacy::QuickCostEstimate(network, paths, event);
  Mbps score = estimate.deficit_sum;
  if (estimate.likely_blocked > 0 && event.flow_count() > 0) {
    const Mbps mean_demand =
        event.TotalDemand() / static_cast<double>(event.flow_count());
    score += 10.0 * mean_demand * static_cast<double>(estimate.likely_blocked);
  }
  return score;
}

}  // namespace legacy

std::size_t InjectFlows(net::Network& network, const topo::FatTree& ft,
                        const topo::PathProvider& provider, std::size_t count,
                        Rng& rng) {
  std::size_t placed = 0;
  std::size_t attempts = 0;
  const std::size_t hosts = ft.host_count();
  while (placed < count && attempts < count * 20) {
    ++attempts;
    const NodeId src = ft.host(rng.Index(hosts));
    const NodeId dst = ft.host(rng.Index(hosts));
    if (src == dst) continue;
    const Mbps demand = 0.5 + rng.Uniform(0.0, 1.5);
    if (const topo::Path* path =
            net::FindFeasiblePathPtr(network, provider, src, dst, demand,
                                     net::PathSelection::kFirstFit)) {
      flow::Flow f;
      f.src = src;
      f.dst = dst;
      f.demand = demand;
      f.duration = 1e6;
      f.origin = flow::FlowOrigin::kBackground;
      network.Place(f, *path);
      ++placed;
    }
  }
  return placed;
}

std::vector<update::UpdateEvent> MakeEvents(const topo::FatTree& ft,
                                            std::size_t count, Rng& rng) {
  std::vector<update::UpdateEvent> events;
  events.reserve(count);
  const std::size_t hosts = ft.host_count();
  for (std::uint64_t e = 0; e < count; ++e) {
    std::vector<flow::Flow> flows;
    // The paper's Fig. 4 event-size sweep: 1..8 new flows per event.
    const std::size_t flows_per_event = 1 + rng.Index(8);
    for (std::size_t i = 0; i < flows_per_event; ++i) {
      flow::Flow f;
      f.src = ft.host(rng.Index(hosts));
      while ((f.dst = ft.host(rng.Index(hosts))) == f.src) {
      }
      f.demand = 1.0 + rng.Uniform(0.0, 2.0);
      f.duration = 10.0;
      flows.push_back(f);
    }
    events.push_back(update::UpdateEvent(EventId{e + 1}, 0.0, std::move(flows)));
  }
  return events;
}

struct PhaseResult {
  std::string phase;
  double baseline_ns = 0.0;  // per operation
  double new_ns = 0.0;
  double speedup = 0.0;
  std::string unit;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "quick");
  const std::size_t k = bench::ArgOr(argc, argv, "k", quick ? 8 : 16);
  const std::size_t flow_target =
      bench::ArgOr(argc, argv, "flows", quick ? 5'000 : 50'000);
  const std::string csv_path = bench::ArgOrStr(argc, argv, "csv", "");
  const std::string txt_path = bench::ArgOrStr(argc, argv, "txt", "");
  const std::string json_path =
      bench::ArgOrStr(argc, argv, "json", "BENCH_hotloops.json");

  bench::PrintHeader(
      "hot-loop microbenchmarks (SoA residual scan / batched scoring / arena)",
      quick ? "quick tier (CI): k=8, 5k flows"
            : "scale tier: k=16 Fat-Tree, 50k background flows");
  std::printf("simd backend: %s\n\n", net::SimdBackend());

  topo::FatTree ft(
      topo::FatTreeConfig{.k = k, .link_capacity = quick ? 2000.0 : 4000.0});
  topo::FatTreePathProvider provider(ft);
  net::Network network(ft.graph());
  Rng rng(2024);
  const auto inject_start = Clock::now();
  const std::size_t placed =
      InjectFlows(network, ft, provider, flow_target, rng);
  std::printf("injected %zu background flows in %.1fs (%zu links)\n\n", placed,
              SecondsSince(inject_start), ft.graph().link_count());

  std::vector<PhaseResult> results;
  // Per-phase trial counts tuned so each phase runs O(1s) at full tier.
  const std::size_t scan_trials = quick ? 20'000 : 200'000;
  const std::size_t score_sweeps = quick ? 50 : 200;
  const std::size_t update_cycles = quick ? 20'000 : 100'000;
  const std::size_t arena_rounds = quick ? 50'000 : 500'000;

  // --- Phase 1: congestion scan ------------------------------------------
  {
    // Full-store congestion census: how many links cannot take `demand`.
    // Baseline is the pre-change access pattern — a virtual Residual() read
    // and an epsilon compare per link (what the auditor, the stress
    // monitor, and admission's per-link loops all did); the new path runs
    // the branch-free CountCongested kernel straight over the flat SoA
    // residual array.
    const std::size_t n = ft.graph().link_count();
    std::vector<Mbps> demands;
    demands.reserve(scan_trials);
    for (std::size_t i = 0; i < scan_trials; ++i) {
      demands.push_back(0.5 + rng.Uniform(0.0, 3.0));
    }

    const net::NetworkView& view = network;  // force virtual dispatch
    std::size_t sink_base = 0;
    const auto base_start = Clock::now();
    for (const Mbps demand : demands) {
      std::size_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const LinkId lid{static_cast<LinkId::rep_type>(i)};
        if (!ApproxGe(view.Residual(lid), demand)) ++count;
      }
      sink_base += count;
    }
    const double base_s = SecondsSince(base_start);

    const Mbps* flat = network.ResidualData();
    std::size_t sink_new = 0;
    const auto new_start = Clock::now();
    for (const Mbps demand : demands) {
      sink_new += net::CountCongested(flat, n, demand);
    }
    const double new_s = SecondsSince(new_start);
    if (sink_base != sink_new) {
      std::fprintf(stderr, "congestion_scan mismatch: %zu vs %zu\n", sink_base,
                   sink_new);
      return 1;
    }
    results.push_back({"congestion_scan",
                       base_s * 1e9 / static_cast<double>(scan_trials),
                       new_s * 1e9 / static_cast<double>(scan_trials),
                       base_s / new_s, "ns/census"});
  }

  // --- Phase 2: batched scoring ------------------------------------------
  {
    const std::vector<update::UpdateEvent> events =
        MakeEvents(ft, quick ? 32 : 64, rng);

    Mbps sink_base = 0.0;
    const auto base_start = Clock::now();
    for (std::size_t s = 0; s < score_sweeps; ++s) {
      for (const update::UpdateEvent& e : events) {
        sink_base += legacy::QuickCostScore(network, provider, e);
      }
    }
    const double base_s = SecondsSince(base_start);

    Arena arena;
    Mbps sink_new = 0.0;
    const auto new_start = Clock::now();
    for (std::size_t s = 0; s < score_sweeps; ++s) {
      for (const update::UpdateEvent& e : events) {
        sink_new += update::QuickCostScore(network, provider, e, arena);
      }
    }
    const double new_s = SecondsSince(new_start);
    if (sink_base != sink_new) {  // bit-identity doubles as a correctness check
      std::fprintf(stderr, "batched_scoring mismatch: %.17g vs %.17g\n",
                   sink_base, sink_new);
      return 1;
    }
    const double calls =
        static_cast<double>(score_sweeps) * static_cast<double>(events.size());
    results.push_back({"batched_scoring", base_s * 1e9 / calls,
                       new_s * 1e9 / calls, base_s / new_s, "ns/event"});
  }

  // --- Phase 3: residual update (SoA store vs COW overlay) ---------------
  {
    // One long inter-pod path, cycled Place/Remove. The overlay pays the
    // hash-patch lookups the flat store avoids.
    const NodeId src = ft.host(0);
    const NodeId dst = ft.host(ft.host_count() - 1);
    const topo::Path& path = provider.Paths(src, dst).front();
    flow::Flow proto;
    proto.src = src;
    proto.dst = dst;
    proto.demand = 0.25;
    proto.duration = 1e6;

    const auto base_start = Clock::now();
    {
      net::NetworkOverlay overlay(network);
      for (std::size_t i = 0; i < update_cycles; ++i) {
        const FlowId id = overlay.Place(proto, path);
        overlay.Remove(id);
      }
    }
    const double overlay_s = SecondsSince(base_start);

    const auto new_start = Clock::now();
    for (std::size_t i = 0; i < update_cycles; ++i) {
      const FlowId id = network.Place(proto, path);
      network.Remove(id);
    }
    const double flat_s = SecondsSince(new_start);
    results.push_back({"residual_update",
                       overlay_s * 1e9 / static_cast<double>(update_cycles),
                       flat_s * 1e9 / static_cast<double>(update_cycles),
                       overlay_s / flat_s, "ns/place+remove"});
  }

  // --- Phase 4: arena vs malloc ------------------------------------------
  {
    // The scorer's per-round scratch shape: a WorstDeficit accumulator row
    // plus a residual row per flow of an 8-flow event.
    constexpr std::size_t kFlows = 8;
    constexpr std::size_t kCandidates = 16;
    constexpr std::size_t kRow = 12;

    double sink_base = 0.0;
    const auto base_start = Clock::now();
    for (std::size_t r = 0; r < arena_rounds; ++r) {
      for (std::size_t f = 0; f < kFlows; ++f) {
        std::vector<net::WorstDeficit> worst(kCandidates);
        std::vector<Mbps> row(kRow);
        row[r % kRow] = static_cast<double>(r);
        worst[r % kCandidates].deficit = row[r % kRow];
        sink_base += worst[r % kCandidates].deficit;
      }
    }
    const double malloc_s = SecondsSince(base_start);

    Arena arena;
    double sink_new = 0.0;
    const auto new_start = Clock::now();
    for (std::size_t r = 0; r < arena_rounds; ++r) {
      arena.Reset();
      for (std::size_t f = 0; f < kFlows; ++f) {
        net::WorstDeficit* worst = arena.AllocArray<net::WorstDeficit>(kCandidates);
        Mbps* row = arena.AllocArray<Mbps>(kRow);
        row[r % kRow] = static_cast<double>(r);
        worst[r % kCandidates] = net::WorstDeficit{};
        worst[r % kCandidates].deficit = row[r % kRow];
        sink_new += worst[r % kCandidates].deficit;
      }
    }
    const double arena_s = SecondsSince(new_start);
    if (sink_base != sink_new) {
      std::fprintf(stderr, "arena phase mismatch\n");
      return 1;
    }
    results.push_back({"arena_vs_malloc",
                       malloc_s * 1e9 / static_cast<double>(arena_rounds),
                       arena_s * 1e9 / static_cast<double>(arena_rounds),
                       malloc_s / arena_s, "ns/round"});
  }

  AsciiTable table({"phase", "baseline", "new", "speedup", "unit"});
  for (const PhaseResult& r : results) {
    table.AddRow({r.phase, FormatDouble(r.baseline_ns, 1),
                  FormatDouble(r.new_ns, 1), FormatDouble(r.speedup, 2),
                  r.unit});
  }
  table.Print();
  if (!txt_path.empty()) {
    std::ofstream txt(txt_path);
    txt << table.Render();
    std::printf("txt written: %s\n", txt_path.c_str());
  }
  bench::MaybeWriteCsv(table, csv_path);

  double scan_speedup = 0.0;
  double scoring_speedup = 0.0;
  for (const PhaseResult& r : results) {
    if (r.phase == "congestion_scan") scan_speedup = r.speedup;
    if (r.phase == "batched_scoring") scoring_speedup = r.speedup;
  }
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"hotloops\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"k\": " << k
       << ",\n  \"background_flows\": " << placed
       << ",\n  \"links\": " << ft.graph().link_count()
       << ",\n  \"simd_backend\": \"" << net::SimdBackend() << "\""
       << ",\n  \"phases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    json << "    {\"phase\": \"" << r.phase << "\", \"baseline_ns\": "
         << FormatDouble(r.baseline_ns, 1)
         << ", \"new_ns\": " << FormatDouble(r.new_ns, 1)
         << ", \"speedup\": " << FormatDouble(r.speedup, 2) << ", \"unit\": \""
         << r.unit << "\"}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  // Acceptance gates only bind at the full tier; the quick tier runs tiny
  // inputs where fixed overheads dominate.
  json << "  ],\n  \"acceptance\": {\n    \"tier_is_full\": "
       << (quick ? "false" : "true")
       << ",\n    \"meets_scan_3x\": " << (scan_speedup >= 3.0 ? "true" : "false")
       << ",\n    \"meets_scoring_3x\": "
       << (scoring_speedup >= 3.0 ? "true" : "false") << "\n  }\n}\n";
  json.close();
  std::printf("json written: %s\n", json_path.c_str());

  bench::PrintFooter(
      "all four phases favor the new path: the batched scorer and the "
      "gathered-row congestion scan clear 3x at the full tier (no per-call "
      "link-count vectors, branch-free kernels over contiguous rows), the "
      "flat SoA store beats the COW overlay on place/remove, and warmed "
      "arena scratch beats fresh heap vectors per round");
  return 0;
}
