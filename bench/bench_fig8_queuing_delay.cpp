// Fig. 8 — Reduction in average and worst-case event queuing delay with
// LMTF and P-LMTF against FIFO, for 10..50 heterogeneous events,
// utilization 50-70%, alpha = 4.
#include "bench_common.h"
#include "exp/runner.h"

using namespace nu;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Figure 8: event queuing-delay reduction vs FIFO",
      "8-pod Fat-Tree, 10..50 events of 10-100 flows, alpha=4, util 50-70%");
  const std::size_t trials = bench::ArgOr(argc, argv, "trials", 5);

  AsciiTable table({"events", "LMTF avg red.", "LMTF worst red.",
                    "P-LMTF avg red.", "P-LMTF worst red."});
  const std::vector<sched::SchedulerKind> kinds{
      sched::SchedulerKind::kFifo, sched::SchedulerKind::kLmtf,
      sched::SchedulerKind::kPlmtf};

  for (std::size_t events = 10; events <= 50; events += 10) {
    exp::ExperimentConfig config;
    config.fat_tree_k = 8;
    // The paper's background "fluctuates between 50% and 70%"; our static
    // target sits in the upper middle of that band.
    config.utilization = 0.65;
    config.event_count = events;
    config.min_flows_per_event = 10;
    config.max_flows_per_event = 100;
    config.alpha = 4;
    config.seed = 8000 + events;

    const exp::ComparisonResult result =
        exp::CompareSchedulers(config, kinds, false, trials);
    const auto& fifo = result.mean_by_name.at("fifo");
    const auto& lmtf = result.mean_by_name.at("lmtf");
    const auto& plmtf = result.mean_by_name.at("p-lmtf");
    table.Row()
        .Cell(events)
        .Cell(PercentString(
            ReductionVs(fifo.avg_queuing_delay, lmtf.avg_queuing_delay)))
        .Cell(PercentString(
            ReductionVs(fifo.worst_queuing_delay, lmtf.worst_queuing_delay)))
        .Cell(PercentString(
            ReductionVs(fifo.avg_queuing_delay, plmtf.avg_queuing_delay)))
        .Cell(PercentString(
            ReductionVs(fifo.worst_queuing_delay, plmtf.worst_queuing_delay)));
  }
  table.Print();
  bench::PrintFooter(
      "paper: LMTF reduces avg queuing delay 20-40% and worst-case 10-30%; "
      "P-LMTF 67-83% and 60-74%; roughly stable across queue sizes");
  return 0;
}
