// Ablation B — Migration-set strategies: compare greedy-largest-first,
// best-fit-decreasing (the paper's approximation flavour), local search, and
// the exact branch-and-bound oracle on (1) pure cover instances and (2) full
// event planning, measuring migrated traffic and wall-clock planning cost.
#include <chrono>

#include "bench_common.h"
#include "exp/workload.h"
#include "update/planner.h"

using namespace nu;

namespace {

void CoverInstances() {
  std::printf("--- pure min-sum cover instances (vs exact optimum) ---\n");
  AsciiTable table({"strategy", "mean overshoot vs exact", "worst overshoot"});
  Rng rng(12000);
  // Pre-generate instances so every strategy sees the same ones.
  struct Instance {
    std::vector<double> weights;
    double deficit;
  };
  std::vector<Instance> instances;
  for (int i = 0; i < 300; ++i) {
    Instance inst;
    const std::size_t n = 4 + rng.Index(14);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      inst.weights.push_back(rng.Uniform(1.0, 50.0));
      total += inst.weights.back();
    }
    inst.deficit = rng.Uniform(1.0, total);
    instances.push_back(std::move(inst));
  }

  auto cost_of = [](const Instance& inst, update::MigrationStrategy s) {
    const auto sel = update::SelectCoverSet(inst.weights, inst.deficit, s);
    double sum = 0.0;
    for (std::size_t i : *sel) sum += inst.weights[i];
    return sum;
  };

  for (const auto strategy : {update::MigrationStrategy::kGreedyLargestFirst,
                              update::MigrationStrategy::kBestFitDecreasing,
                              update::MigrationStrategy::kLocalSearch}) {
    double overshoot_sum = 0.0, overshoot_worst = 0.0;
    for (const Instance& inst : instances) {
      const double exact =
          cost_of(inst, update::MigrationStrategy::kExactSmall);
      const double heuristic = cost_of(inst, strategy);
      const double overshoot = heuristic / exact - 1.0;
      overshoot_sum += overshoot;
      overshoot_worst = std::max(overshoot_worst, overshoot);
    }
    table.Row()
        .Cell(update::ToString(strategy))
        .Cell(PercentString(overshoot_sum /
                            static_cast<double>(instances.size())))
        .Cell(PercentString(overshoot_worst));
  }
  table.Print();
}

void EventPlanning(std::size_t trials) {
  std::printf("--- full event planning on a loaded k=8 Fat-Tree ---\n");
  AsciiTable table({"strategy", "mean Cost(U) (Mbps)", "mean moves",
                    "plan wall-clock (ms/event)"});
  for (const auto strategy : {update::MigrationStrategy::kGreedyLargestFirst,
                              update::MigrationStrategy::kBestFitDecreasing,
                              update::MigrationStrategy::kLocalSearch,
                              update::MigrationStrategy::kExactSmall}) {
    double cost_sum = 0.0;
    double move_sum = 0.0;
    double ms_sum = 0.0;
    std::size_t planned = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      exp::ExperimentConfig config;
      config.fat_tree_k = 8;
      config.utilization = 0.7;
      config.event_count = 10;
      config.min_flows_per_event = 10;
      config.max_flows_per_event = 60;
      config.seed = 13000 + trial;
      const exp::Workload workload(config);

      update::MigrationOptions options;
      options.strategy = strategy;
      const update::EventPlanner planner(workload.paths(), options);
      for (const auto& event : workload.events()) {
        const auto start = std::chrono::steady_clock::now();
        const update::EventPlan plan =
            planner.Plan(workload.network(), event);
        const auto elapsed = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start);
        cost_sum += plan.migrated_traffic;
        move_sum += static_cast<double>(plan.migration_moves);
        ms_sum += elapsed.count();
        ++planned;
      }
    }
    const auto n = static_cast<double>(planned);
    table.Row()
        .Cell(update::ToString(strategy))
        .Cell(cost_sum / n, 1)
        .Cell(move_sum / n, 2)
        .Cell(ms_sum / n, 2);
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation: migration-set selection strategies",
      "cover-instance optimality gap + end-to-end event planning cost");
  CoverInstances();
  EventPlanning(bench::ArgOr(argc, argv, "trials", 2));
  bench::PrintFooter(
      "best-fit-decreasing sits within a few percent of exact at a fraction "
      "of the planning cost; greedy-largest-first migrates notably more");
  return 0;
}
