// Controller-vs-dataplane divergence tracking for the grey-failure model.
//
// The controller's INTENDED state is the network's placement table (a flow's
// rules live on every non-host node of its path). The switches' APPLIED
// state can silently lag it: an ack-lie never applies the rule, a straggler
// applies it late, a rule loss evicts it after the fact. Rather than mirror
// the full applied rule table (O(flows x diameter), and redundant — applied
// state equals intended state almost everywhere), DataplaneState stores only
// the DIVERGENCE: the sparse set of (switch, flow) rules whose applied state
// differs from intent, with the cause and the time divergence began.
//
// Rule lifecycle (docs/model.md §16): issued -> acked -> applied ->
// verified. Every issue is acked (grey switches lie rather than reject —
// loud rejection is the flaky-install model's job); a rule is applied when
// the switch actually holds it, and verified once a reconcile pass has
// confirmed it. Divergence entries are exactly the issued-but-not-applied
// (or applied-then-evicted) rules.
//
// Everything here is plain deterministic bookkeeping: std::map keyed by raw
// ids so iteration order is canonical, which keeps reconcile passes (and the
// RNG draws they make) bit-identical across runs, snapshots, and shard
// counts.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/binio.h"
#include "common/types.h"

namespace nu::net {

/// Why a rule's applied state diverges from intent.
enum class RuleFault : std::uint8_t { kAckLie, kStraggler, kRuleLoss };

[[nodiscard]] const char* ToString(RuleFault cause);

/// One divergent rule on one switch.
struct DivergentRule {
  RuleFault cause = RuleFault::kAckLie;
  /// Virtual time the divergence began (issue time for lies/stragglers,
  /// eviction time for losses) — repair latency is measured from here.
  Seconds since = 0.0;
  /// True once a reconcile pass has observed this entry (read-back
  /// detection); only detected entries are repaired.
  bool detected = false;
  /// True while a straggler apply (original or repair re-issue) is
  /// scheduled to land; the reconciler does not re-issue a rule that is
  /// already in flight.
  bool pending_apply = false;
  /// Repair re-issues attempted so far.
  std::uint32_t repair_attempts = 0;
  /// True once the reconciler has given up (attempt budget exhausted).
  /// Abandoned rules stay divergent but no longer gate run drain — they
  /// are reported as residual drift instead of looping forever.
  bool abandoned = false;
};

/// Sparse divergence set with a per-flow reverse index. All mutators keep
/// the two maps consistent; iteration is ascending (switch, flow).
class DataplaneState {
 public:
  /// Records that `flow`'s rule on `node` is divergent. No-op if an entry
  /// already exists (first cause wins — a rule can't diverge twice without
  /// being repaired in between). Returns true when a new entry was added.
  bool AddDivergence(NodeId node, FlowId flow, RuleFault cause, Seconds now);

  /// Removes the entry (the applied state caught up with intent: straggler
  /// landed, repair succeeded). Returns the removed entry, or nullptr-like
  /// false if none existed.
  bool Resolve(NodeId node, FlowId flow);

  [[nodiscard]] bool IsDivergent(NodeId node, FlowId flow) const;
  [[nodiscard]] const DivergentRule* Find(NodeId node, FlowId flow) const;

  // Entry mutators (all no-ops on a missing entry). Abandonment must go
  // through MarkAbandoned so the active/abandoned counters stay exact.
  void MarkDetected(NodeId node, FlowId flow);
  void SetPendingApply(NodeId node, FlowId flow, bool pending);
  /// Increments and returns the entry's repair attempt count (0 if the
  /// entry does not exist).
  std::uint32_t RecordRepairAttempt(NodeId node, FlowId flow);
  void MarkAbandoned(NodeId node, FlowId flow);

  /// Drops every entry of `flow` (the flow left the network; intent is
  /// gone, so there is nothing to diverge from).
  void DropFlow(FlowId flow);

  /// Drops every entry on `node` (the switch was quarantined and drained;
  /// its residual drift is excused by the explicit quarantine).
  void DropNode(NodeId node);

  /// Entries whose divergence is still live, i.e. not abandoned. This is
  /// the quantity the simulator drains to zero before a grey run may end.
  [[nodiscard]] std::size_t active_count() const { return active_; }
  /// Abandoned entries (attempt budget exhausted; reported as residual).
  [[nodiscard]] std::size_t abandoned_count() const { return abandoned_; }
  [[nodiscard]] std::size_t total_count() const { return active_ + abandoned_; }
  [[nodiscard]] bool empty() const { return total_count() == 0; }

  /// Ascending switch ids that currently hold divergent rules.
  [[nodiscard]] std::vector<NodeId> DriftingNodes() const;

  /// Ascending flow ids divergent on `node`.
  [[nodiscard]] std::vector<FlowId> DivergentFlowsOn(NodeId node) const;

  /// Visits every entry in ascending (switch, flow) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [node, rules] : by_node_) {
      for (const auto& [flow, entry] : rules) {
        fn(NodeId{node}, FlowId{flow}, entry);
      }
    }
  }

  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

  friend bool operator==(const DataplaneState& a, const DataplaneState& b);

 private:
  void Account(const DivergentRule& entry, int delta);

  std::map<NodeId::rep_type, std::map<FlowId::rep_type, DivergentRule>>
      by_node_;
  std::map<FlowId::rep_type, std::vector<NodeId::rep_type>> by_flow_;
  std::size_t active_ = 0;
  std::size_t abandoned_ = 0;
};

}  // namespace nu::net
