#include "net/residual_scan.h"

#include <cmath>
#include <limits>

// Backend selection. NU_SIMD_ENABLED is defined by src/CMakeLists.txt when
// the NU_SIMD cache variable is truthy; "avx2" additionally compiles this
// one translation unit with -mavx2 (the flag is per-file on purpose — a
// global -mavx2 would let the compiler contract mul+add into FMAs elsewhere
// and perturb golden-pinned outputs).
#if defined(NU_SIMD_ENABLED) && defined(__AVX2__)
#define NU_SCAN_AVX2 1
#include <immintrin.h>
#elif defined(NU_SIMD_ENABLED) && defined(__SSE2__)
#define NU_SCAN_SSE2 1
#include <emmintrin.h>
#endif

namespace nu::net {

namespace scalar {

void GatherResiduals(const Mbps* soa, std::span<const LinkId> links,
                     Mbps* out) {
  for (std::size_t i = 0; i < links.size(); ++i) {
    out[i] = soa[links[i].value()];
  }
}

std::size_t CountCongested(const Mbps* row, std::size_t n, Mbps demand) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += (row[i] + kBandwidthEpsilon < demand) ? 1u : 0u;
  }
  return count;
}

WorstDeficit MaxDeficit(const Mbps* row, std::size_t n, Mbps demand) {
  WorstDeficit r;
  for (std::size_t i = 0; i < n; ++i) {
    if (row[i] + kBandwidthEpsilon < demand) {
      const Mbps d = demand - row[i];
      if (d > r.deficit) {
        r.deficit = d;
        r.index = i;
        r.residual = row[i];
      }
    }
  }
  return r;
}

Mbps MinValue(const Mbps* row, std::size_t n) {
  Mbps min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) min = std::min(min, row[i]);
  return min;
}

void ScanCapacityViolations(const Mbps* residual, const Mbps* load,
                            const Mbps* capacity, std::size_t n,
                            bool allow_overcommit, double eps,
                            std::uint32_t index_base,
                            std::vector<std::uint32_t>& flagged) {
  for (std::size_t i = 0; i < n; ++i) {
    bool bad = std::abs((capacity[i] - load[i]) - residual[i]) > eps;
    if (!allow_overcommit) {
      bad = bad || load[i] > capacity[i] + eps || residual[i] < -eps;
    }
    if (bad) flagged.push_back(index_base + static_cast<std::uint32_t>(i));
  }
}

}  // namespace scalar

// Gathering is memory-bound indexed loads either way; one definition
// serves every backend.
void GatherResiduals(const Mbps* soa, std::span<const LinkId> links,
                     Mbps* out) {
  scalar::GatherResiduals(soa, links, out);
}

#if defined(NU_SCAN_AVX2)

const char* SimdBackend() { return "avx2"; }

std::size_t CountCongested(const Mbps* row, std::size_t n, Mbps demand) {
  const __m256d veps = _mm256_set1_pd(kBandwidthEpsilon);
  const __m256d vdemand = _mm256_set1_pd(demand);
  // Compare masks are all-ones int64 lanes; subtracting them accumulates
  // per-lane hit counts without a movemask/popcount in the loop.
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d c0 = _mm256_cmp_pd(
        _mm256_add_pd(_mm256_loadu_pd(row + i), veps), vdemand, _CMP_LT_OQ);
    const __m256d c1 = _mm256_cmp_pd(
        _mm256_add_pd(_mm256_loadu_pd(row + i + 4), veps), vdemand,
        _CMP_LT_OQ);
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(c0));
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(c1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d c = _mm256_cmp_pd(
        _mm256_add_pd(_mm256_loadu_pd(row + i), veps), vdemand, _CMP_LT_OQ);
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(c));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t count =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) count += (row[i] + kBandwidthEpsilon < demand) ? 1u : 0u;
  return count;
}

WorstDeficit MaxDeficit(const Mbps* row, std::size_t n, Mbps demand) {
  const __m256d veps = _mm256_set1_pd(kBandwidthEpsilon);
  const __m256d vdemand = _mm256_set1_pd(demand);
  __m256d vmax = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(row + i);
    const __m256d congested =
        _mm256_cmp_pd(_mm256_add_pd(v, veps), vdemand, _CMP_LT_OQ);
    // Deficit where congested, 0.0 elsewhere; congested deficits are
    // > epsilon > 0, so the zero lanes never win the max.
    const __m256d deficit =
        _mm256_and_pd(_mm256_sub_pd(vdemand, v), congested);
    vmax = _mm256_max_pd(vmax, deficit);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  Mbps max = std::max(std::max(lanes[0], lanes[1]),
                      std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    if (row[i] + kBandwidthEpsilon < demand) {
      max = std::max(max, demand - row[i]);
    }
  }
  WorstDeficit r;
  if (max <= 0.0) return r;
  // First position attaining the max — the strict-greater scalar scan's
  // pick. Subtraction is exact per lane, so equality rescan is safe.
  for (std::size_t j = 0; j < n; ++j) {
    if (row[j] + kBandwidthEpsilon < demand && demand - row[j] == max) {
      r.deficit = max;
      r.index = j;
      r.residual = row[j];
      return r;
    }
  }
  return r;  // unreachable
}

Mbps MinValue(const Mbps* row, std::size_t n) {
  __m256d vmin = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vmin = _mm256_min_pd(vmin, _mm256_loadu_pd(row + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmin);
  Mbps min = std::min(std::min(lanes[0], lanes[1]),
                      std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) min = std::min(min, row[i]);
  return min;
}

void ScanCapacityViolations(const Mbps* residual, const Mbps* load,
                            const Mbps* capacity, std::size_t n,
                            bool allow_overcommit, double eps,
                            std::uint32_t index_base,
                            std::vector<std::uint32_t>& flagged) {
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d vneg_eps = _mm256_set1_pd(-eps);
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(
      static_cast<long long>(0x7fffffffffffffffULL)));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d res = _mm256_loadu_pd(residual + i);
    const __m256d ld = _mm256_loadu_pd(load + i);
    const __m256d cap = _mm256_loadu_pd(capacity + i);
    const __m256d diff = _mm256_sub_pd(_mm256_sub_pd(cap, ld), res);
    __m256d bad = _mm256_cmp_pd(_mm256_and_pd(diff, abs_mask), veps,
                                _CMP_GT_OQ);
    if (!allow_overcommit) {
      const __m256d over =
          _mm256_cmp_pd(ld, _mm256_add_pd(cap, veps), _CMP_GT_OQ);
      const __m256d negative = _mm256_cmp_pd(res, vneg_eps, _CMP_LT_OQ);
      bad = _mm256_or_pd(bad, _mm256_or_pd(over, negative));
    }
    unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(bad));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      flagged.push_back(index_base + static_cast<std::uint32_t>(i + lane));
      mask &= mask - 1;
    }
  }
  if (i < n) {
    scalar::ScanCapacityViolations(residual + i, load + i, capacity + i,
                                   n - i, allow_overcommit, eps,
                                   index_base + static_cast<std::uint32_t>(i),
                                   flagged);
  }
}

#elif defined(NU_SCAN_SSE2)

const char* SimdBackend() { return "sse2"; }

std::size_t CountCongested(const Mbps* row, std::size_t n, Mbps demand) {
  const __m128d veps = _mm_set1_pd(kBandwidthEpsilon);
  const __m128d vdemand = _mm_set1_pd(demand);
  // Compare masks are all-ones int64 lanes; subtracting them accumulates
  // per-lane hit counts without a movemask/popcount in the loop.
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d c0 =
        _mm_cmplt_pd(_mm_add_pd(_mm_loadu_pd(row + i), veps), vdemand);
    const __m128d c1 =
        _mm_cmplt_pd(_mm_add_pd(_mm_loadu_pd(row + i + 2), veps), vdemand);
    acc = _mm_sub_epi64(acc, _mm_castpd_si128(c0));
    acc = _mm_sub_epi64(acc, _mm_castpd_si128(c1));
  }
  for (; i + 2 <= n; i += 2) {
    const __m128d c =
        _mm_cmplt_pd(_mm_add_pd(_mm_loadu_pd(row + i), veps), vdemand);
    acc = _mm_sub_epi64(acc, _mm_castpd_si128(c));
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  std::size_t count = static_cast<std::size_t>(lanes[0] + lanes[1]);
  for (; i < n; ++i) count += (row[i] + kBandwidthEpsilon < demand) ? 1u : 0u;
  return count;
}

WorstDeficit MaxDeficit(const Mbps* row, std::size_t n, Mbps demand) {
  const __m128d veps = _mm_set1_pd(kBandwidthEpsilon);
  const __m128d vdemand = _mm_set1_pd(demand);
  __m128d vmax = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(row + i);
    const __m128d congested = _mm_cmplt_pd(_mm_add_pd(v, veps), vdemand);
    const __m128d deficit = _mm_and_pd(_mm_sub_pd(vdemand, v), congested);
    vmax = _mm_max_pd(vmax, deficit);
  }
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, vmax);
  Mbps max = std::max(lanes[0], lanes[1]);
  for (; i < n; ++i) {
    if (row[i] + kBandwidthEpsilon < demand) {
      max = std::max(max, demand - row[i]);
    }
  }
  WorstDeficit r;
  if (max <= 0.0) return r;
  for (std::size_t j = 0; j < n; ++j) {
    if (row[j] + kBandwidthEpsilon < demand && demand - row[j] == max) {
      r.deficit = max;
      r.index = j;
      r.residual = row[j];
      return r;
    }
  }
  return r;  // unreachable
}

Mbps MinValue(const Mbps* row, std::size_t n) {
  __m128d vmin = _mm_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vmin = _mm_min_pd(vmin, _mm_loadu_pd(row + i));
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, vmin);
  Mbps min = std::min(lanes[0], lanes[1]);
  for (; i < n; ++i) min = std::min(min, row[i]);
  return min;
}

void ScanCapacityViolations(const Mbps* residual, const Mbps* load,
                            const Mbps* capacity, std::size_t n,
                            bool allow_overcommit, double eps,
                            std::uint32_t index_base,
                            std::vector<std::uint32_t>& flagged) {
  const __m128d veps = _mm_set1_pd(eps);
  const __m128d vneg_eps = _mm_set1_pd(-eps);
  const __m128d abs_mask = _mm_castsi128_pd(_mm_set1_epi64x(
      static_cast<long long>(0x7fffffffffffffffULL)));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d res = _mm_loadu_pd(residual + i);
    const __m128d ld = _mm_loadu_pd(load + i);
    const __m128d cap = _mm_loadu_pd(capacity + i);
    const __m128d diff = _mm_sub_pd(_mm_sub_pd(cap, ld), res);
    __m128d bad = _mm_cmpgt_pd(_mm_and_pd(diff, abs_mask), veps);
    if (!allow_overcommit) {
      const __m128d over = _mm_cmpgt_pd(ld, _mm_add_pd(cap, veps));
      const __m128d negative = _mm_cmplt_pd(res, vneg_eps);
      bad = _mm_or_pd(bad, _mm_or_pd(over, negative));
    }
    unsigned mask = static_cast<unsigned>(_mm_movemask_pd(bad));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      flagged.push_back(index_base + static_cast<std::uint32_t>(i + lane));
      mask &= mask - 1;
    }
  }
  if (i < n) {
    scalar::ScanCapacityViolations(residual + i, load + i, capacity + i,
                                   n - i, allow_overcommit, eps,
                                   index_base + static_cast<std::uint32_t>(i),
                                   flagged);
  }
}

#else  // NU_SIMD off (or a non-x86 target): dispatch to the reference loops.

const char* SimdBackend() { return "scalar"; }

std::size_t CountCongested(const Mbps* row, std::size_t n, Mbps demand) {
  return scalar::CountCongested(row, n, demand);
}

WorstDeficit MaxDeficit(const Mbps* row, std::size_t n, Mbps demand) {
  return scalar::MaxDeficit(row, n, demand);
}

Mbps MinValue(const Mbps* row, std::size_t n) {
  return scalar::MinValue(row, n);
}

void ScanCapacityViolations(const Mbps* residual, const Mbps* load,
                            const Mbps* capacity, std::size_t n,
                            bool allow_overcommit, double eps,
                            std::uint32_t index_base,
                            std::vector<std::uint32_t>& flagged) {
  scalar::ScanCapacityViolations(residual, load, capacity, n,
                                 allow_overcommit, eps, index_base, flagged);
}

#endif

}  // namespace nu::net
