#include "net/overlay.h"

#include <algorithm>

#include "common/check.h"
#include "common/types.h"

namespace nu::net {

NetworkOverlay::NetworkOverlay(const NetworkView& base)
    : base_(&base), next_id_(base.FlowIdUpperBound()) {}

Mbps NetworkOverlay::Residual(LinkId link) const {
  const auto it = residual_.find(link.value());
  if (it != residual_.end()) return it->second;
  return base_->Residual(link);
}

bool NetworkOverlay::HasFlow(FlowId id) const {
  if (added_flows_.contains(id.value())) return true;
  if (removed_.contains(id.value())) return false;
  return base_->HasFlow(id);
}

const flow::Flow& NetworkOverlay::FlowOf(FlowId id) const {
  const auto it = added_flows_.find(id.value());
  if (it != added_flows_.end()) return it->second;
  NU_EXPECTS(!removed_.contains(id.value()));
  return base_->FlowOf(id);
}

const topo::Path& NetworkOverlay::PathOf(FlowId id) const {
  const auto it = paths_.find(id.value());
  if (it != paths_.end()) return it->second;
  NU_EXPECTS(!removed_.contains(id.value()));
  return base_->PathOf(id);
}

std::vector<FlowId> NetworkOverlay::FlowsOnLink(LinkId link) const {
  const auto it = link_flows_.find(link.value());
  if (it == link_flows_.end()) return base_->FlowsOnLink(link);
  std::vector<FlowId> flows = it->second;
  std::sort(flows.begin(), flows.end());
  return flows;
}

std::size_t NetworkOverlay::FlowCountOnLink(LinkId link) const {
  const auto it = link_flows_.find(link.value());
  if (it == link_flows_.end()) return base_->FlowCountOnLink(link);
  return it->second.size();
}

bool NetworkOverlay::FlowUsesLink(FlowId flow, LinkId link) const {
  const auto it = link_flows_.find(link.value());
  if (it == link_flows_.end()) return base_->FlowUsesLink(flow, link);
  const auto& flows = it->second;
  return std::find(flows.begin(), flows.end(), flow) != flows.end();
}

Mbps& NetworkOverlay::ResidualSlot(LinkId link) {
  const auto [it, inserted] = residual_.try_emplace(link.value(), 0.0);
  if (inserted) it->second = base_->Residual(link);
  return it->second;
}

std::vector<FlowId>& NetworkOverlay::LinkFlowsSlot(LinkId link) {
  const auto [it, inserted] = link_flows_.try_emplace(link.value());
  if (inserted) it->second = base_->FlowsOnLink(link);
  return it->second;
}

void NetworkOverlay::Occupy(const topo::Path& path, Mbps demand, FlowId id) {
  for (LinkId lid : path.links) {
    ResidualSlot(lid) -= demand;
    LinkFlowsSlot(lid).push_back(id);
  }
}

void NetworkOverlay::Release(const topo::Path& path, Mbps demand, FlowId id) {
  for (LinkId lid : path.links) {
    ResidualSlot(lid) += demand;
    auto& flows = LinkFlowsSlot(lid);
    const auto it = std::find(flows.begin(), flows.end(), id);
    NU_CHECK(it != flows.end());
    flows.erase(it);
  }
}

FlowId NetworkOverlay::Place(flow::Flow flow, const topo::Path& path) {
  NU_EXPECTS(graph().IsValidPath(path));
  NU_EXPECTS(path.source() == flow.src);
  NU_EXPECTS(path.destination() == flow.dst);
  NU_EXPECTS(CanPlace(flow.demand, path));
  // Mirror FlowTable::Add's registration checks and id assignment.
  NU_EXPECTS(flow.demand > 0.0);
  NU_EXPECTS(flow.duration >= 0.0);
  NU_EXPECTS(flow.src != flow.dst);
  const FlowId id{next_id_++};
  const Mbps demand = flow.demand;
  flow.id = id;
  added_flows_.emplace(id.value(), std::move(flow));
  Occupy(path, demand, id);
  paths_.emplace(id.value(), path);
  return id;
}

void NetworkOverlay::Reroute(FlowId id, const topo::Path& new_path) {
  NU_EXPECTS(HasFlow(id));
  const flow::Flow& f = FlowOf(id);
  NU_EXPECTS(graph().IsValidPath(new_path));
  NU_EXPECTS(new_path.source() == f.src);
  NU_EXPECTS(new_path.destination() == f.dst);
  const Mbps demand = f.demand;
  // Release first so the flow's own bandwidth on shared links counts toward
  // the feasibility of the new path (same order as Network::Reroute).
  const topo::Path old_path = PathOf(id);
  Release(old_path, demand, id);
  NU_CHECK(CanPlace(demand, new_path));
  Occupy(new_path, demand, id);
  paths_[id.value()] = new_path;
}

void NetworkOverlay::Remove(FlowId id) {
  NU_EXPECTS(HasFlow(id));
  const Mbps demand = FlowOf(id).demand;
  const topo::Path path = PathOf(id);
  Release(path, demand, id);
  if (added_flows_.erase(id.value()) == 0) removed_.insert(id.value());
  paths_.erase(id.value());
}

std::size_t NetworkOverlay::ApproxDeltaBytes() const {
  std::size_t bytes = residual_.size() * (sizeof(Mbps) + sizeof(LinkId)) +
                      removed_.size() * sizeof(FlowId) +
                      added_flows_.size() * sizeof(flow::Flow);
  for (const auto& [_, flows] : link_flows_) {
    bytes += sizeof(flows) + flows.capacity() * sizeof(FlowId);
  }
  for (const auto& [_, path] : paths_) {
    bytes += sizeof(path) + path.links.capacity() * sizeof(LinkId) +
             path.nodes.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace nu::net
