#include "net/overlay.h"

#include <algorithm>

#include "common/check.h"
#include "common/types.h"

namespace nu::net {

NetworkOverlay::NetworkOverlay(const NetworkView& base)
    : base_(&base), next_id_(base.FlowIdUpperBound()) {}

Mbps NetworkOverlay::Residual(LinkId link) const {
  const auto it = residual_.find(link.value());
  if (it != residual_.end()) return it->second;
  return base_->Residual(link);
}

bool NetworkOverlay::HasFlow(FlowId id) const {
  if (added_flows_.contains(id.value())) return true;
  if (removed_.contains(id.value())) return false;
  return base_->HasFlow(id);
}

const flow::Flow& NetworkOverlay::FlowOf(FlowId id) const {
  const auto it = added_flows_.find(id.value());
  if (it != added_flows_.end()) return it->second;
  NU_EXPECTS(!removed_.contains(id.value()));
  return base_->FlowOf(id);
}

PathRef NetworkOverlay::PathRefOf(FlowId id) const {
  const auto it = paths_.find(id.value());
  if (it != paths_.end()) return it->second;
  NU_EXPECTS(!removed_.contains(id.value()));
  return base_->PathRefOf(id);
}

std::span<const std::uint32_t> NetworkOverlay::LinkFlowIds(
    LinkId link) const {
  const auto it = link_flows_.find(link.value());
  if (it == link_flows_.end()) return base_->LinkFlowIds(link);
  return it->second;
}

Mbps& NetworkOverlay::ResidualSlot(LinkId link) {
  const auto [it, inserted] = residual_.try_emplace(link.value(), 0.0);
  if (inserted) it->second = base_->Residual(link);
  return it->second;
}

std::vector<std::uint32_t>& NetworkOverlay::LinkFlowsSlot(LinkId link) {
  const auto [it, inserted] = link_flows_.try_emplace(link.value());
  if (inserted) {
    const std::span<const std::uint32_t> base_ids = base_->LinkFlowIds(link);
    it->second.assign(base_ids.begin(), base_ids.end());
  }
  return it->second;
}

void NetworkOverlay::Occupy(const topo::Path& path, Mbps demand, FlowId id) {
  const auto rep = static_cast<std::uint32_t>(id.value());
  for (LinkId lid : path.links) {
    ResidualSlot(lid) -= demand;
    auto& flows = LinkFlowsSlot(lid);
    flows.insert(std::lower_bound(flows.begin(), flows.end(), rep), rep);
  }
}

void NetworkOverlay::Release(const topo::Path& path, Mbps demand, FlowId id) {
  const auto rep = static_cast<std::uint32_t>(id.value());
  for (LinkId lid : path.links) {
    ResidualSlot(lid) += demand;
    auto& flows = LinkFlowsSlot(lid);
    const auto it = std::lower_bound(flows.begin(), flows.end(), rep);
    NU_CHECK(it != flows.end() && *it == rep);
    flows.erase(it);
  }
}

FlowId NetworkOverlay::Place(flow::Flow flow, const topo::Path& path) {
  NU_EXPECTS(graph().IsValidPath(path));
  NU_EXPECTS(path.source() == flow.src);
  NU_EXPECTS(path.destination() == flow.dst);
  NU_EXPECTS(CanPlace(flow.demand, path));
  // Mirror FlowTable::Add's registration checks and id assignment.
  NU_EXPECTS(flow.demand > 0.0);
  NU_EXPECTS(flow.duration >= 0.0);
  NU_EXPECTS(flow.src != flow.dst);
  const FlowId id{next_id_++};
  const Mbps demand = flow.demand;
  flow.id = id;
  added_flows_.emplace(id.value(), std::move(flow));
  Occupy(path, demand, id);
  paths_.emplace(id.value(), path_registry().Intern(path));
  return id;
}

void NetworkOverlay::Reroute(FlowId id, const topo::Path& new_path) {
  NU_EXPECTS(HasFlow(id));
  const flow::Flow& f = FlowOf(id);
  NU_EXPECTS(graph().IsValidPath(new_path));
  NU_EXPECTS(new_path.source() == f.src);
  NU_EXPECTS(new_path.destination() == f.dst);
  const Mbps demand = f.demand;
  // Release first so the flow's own bandwidth on shared links counts toward
  // the feasibility of the new path (same order as Network::Reroute).
  const PathRef old_ref = PathRefOf(id);
  Release(path_registry().Get(old_ref), demand, id);
  NU_CHECK(CanPlace(demand, new_path));
  Occupy(new_path, demand, id);
  paths_[id.value()] = path_registry().Intern(new_path);
}

void NetworkOverlay::Remove(FlowId id) {
  NU_EXPECTS(HasFlow(id));
  const Mbps demand = FlowOf(id).demand;
  const PathRef ref = PathRefOf(id);
  Release(path_registry().Get(ref), demand, id);
  if (added_flows_.erase(id.value()) == 0) removed_.insert(id.value());
  paths_.erase(id.value());
}

std::size_t NetworkOverlay::ApproxDeltaBytes() const {
  std::size_t bytes = residual_.size() * (sizeof(Mbps) + sizeof(LinkId)) +
                      removed_.size() * sizeof(FlowId) +
                      added_flows_.size() * sizeof(flow::Flow) +
                      paths_.size() * (sizeof(FlowId) + sizeof(PathRef));
  for (const auto& [_, flows] : link_flows_) {
    bytes += sizeof(flows) + flows.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace nu::net
