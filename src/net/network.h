// Network: mutable network state = topology graph + placed flows + per-link
// residual bandwidth. This is the object every algorithm in the paper reads
// and writes: admission checks, congested-link detection (Definition 1),
// migration, and update execution all go through it.
//
// Network is copyable on purpose, but planners normally evaluate what-if
// scenarios (LMTF cost probes, P-LMTF co-schedulability) against a
// copy-on-write NetworkOverlay (net/overlay.h) and commit only the chosen
// plan to the real instance; deep copies remain as the legacy baseline.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/binio.h"
#include "flow/flow_table.h"
#include "net/network_view.h"
#include "topo/graph.h"

namespace nu::net {

class Network final : public MutableNetwork {
 public:
  explicit Network(const topo::Graph& graph);

  [[nodiscard]] const topo::Graph& graph() const override { return *graph_; }
  [[nodiscard]] const flow::FlowTable& flows() const { return flows_; }

  /// Residual bandwidth c_{i,j} of a link.
  [[nodiscard]] Mbps Residual(LinkId link) const override;

  /// Utilization of a link in [0, 1].
  [[nodiscard]] double Utilization(LinkId link) const;

  /// Mean utilization over all links.
  [[nodiscard]] double AverageUtilization() const;

  /// Mean utilization over links that carry at least one flow.
  [[nodiscard]] double ActiveLinkUtilization() const;

  /// Mean utilization over fabric links (links not incident to a host) —
  /// "network utilization" in the core-contended sense. Falls back to
  /// AverageUtilization() when the graph has no fabric links.
  [[nodiscard]] double FabricUtilization() const;

  // CanPlace / CongestedLinks / CanReroute are inherited from NetworkView,
  // implemented once over the virtual primitives so overlays share their
  // exact feasibility semantics.

  /// Registers and places a flow on `path`. Requires feasibility
  /// (CanPlace). Returns the assigned flow id.
  FlowId Place(flow::Flow flow, const topo::Path& path) override;

  /// Places even if it would congest links (residual may go negative).
  /// Exists for experiments that study congestion; invariant checking then
  /// reports the congested links.
  FlowId ForcePlace(flow::Flow flow, const topo::Path& path);

  /// Removes a flow, releasing its bandwidth.
  void Remove(FlowId id) override;

  /// Moves an existing flow to `new_path`. Requires the flow to exist and
  /// CanReroute to hold.
  void Reroute(FlowId id, const topo::Path& new_path) override;

  /// Current path of a placed flow.
  [[nodiscard]] const topo::Path& PathOf(FlowId id) const override;

  /// Ids of flows currently traversing `link` (ascending id order).
  [[nodiscard]] std::vector<FlowId> FlowsOnLink(LinkId link) const override;

  /// Number of flows currently traversing `link`.
  [[nodiscard]] std::size_t FlowCountOnLink(LinkId link) const override;

  /// True when `flow` crosses `link`.
  [[nodiscard]] bool FlowUsesLink(FlowId flow, LinkId link) const override;

  /// All placed flow ids (ascending).
  [[nodiscard]] std::vector<FlowId> PlacedFlows() const;

  [[nodiscard]] std::size_t placed_flow_count() const {
    return placements_.size();
  }

  /// True when no link has negative residual and internal accounting is
  /// consistent (recomputing residuals from placements matches the
  /// incremental values). O(V + E + flows * diameter).
  [[nodiscard]] bool CheckInvariants() const;

  // --- Fault state -------------------------------------------------------
  // Links and switches can be administratively down (fault injection). A
  // down element revokes its capacity: no placement, reroute, or candidate
  // path may cross it. Flows already crossing a failing element are NOT
  // removed implicitly — the fault layer computes the victim set first and
  // removes/replans them explicitly, so every state change stays visible.

  /// Marks one directed link up or down. Idempotent; bumps the topology
  /// epoch on an actual change.
  void SetLinkUp(LinkId link, bool up);
  [[nodiscard]] bool LinkUp(LinkId link) const override;

  /// Marks a node (switch) up or down. A down node kills every path through
  /// it. Idempotent; bumps the topology epoch on an actual change.
  void SetNodeUp(NodeId node, bool up);
  [[nodiscard]] bool NodeUp(NodeId node) const override;

  /// True when every link and node of `path` is up. Always true while no
  /// element is down (cheap fast path).
  [[nodiscard]] bool PathAlive(const topo::Path& path) const override;

  /// Monotonic counter bumped on every up/down transition — lets path
  /// caches (topo::PredicatePathProvider) invalidate precisely when the
  /// live topology changes.
  [[nodiscard]] std::uint64_t topology_epoch() const { return epoch_; }

  /// Monotonic counter bumped on ANY state mutation — placements, removals,
  /// reroutes, and up/down transitions alike. Two reads of this network
  /// under the same state epoch observe identical state, so probe-cost
  /// caches key on it.
  [[nodiscard]] std::uint64_t state_epoch() const { return state_epoch_; }

  [[nodiscard]] std::size_t down_link_count() const { return down_links_; }
  [[nodiscard]] std::size_t down_node_count() const { return down_nodes_; }

  /// True when a flow with this id is placed in this network instance.
  /// Plans computed against a what-if view may reference flows (the planned
  /// event's own placements) that do not exist in the original.
  [[nodiscard]] bool HasFlow(FlowId id) const override {
    return flows_.Contains(id);
  }

  /// Read access to a placed flow's descriptor.
  [[nodiscard]] const flow::Flow& FlowOf(FlowId id) const override {
    return flows_.Get(id);
  }

  /// Next flow id this network would assign (see NetworkView).
  [[nodiscard]] FlowId::rep_type FlowIdUpperBound() const override {
    return flows_.peek_next_id();
  }

  /// Rough byte footprint of the mutable state a deep copy would duplicate
  /// (residuals, link-flow lists, placements, flow table). Feeds the
  /// overlay_bytes_saved probe statistic.
  [[nodiscard]] std::size_t ApproxStateBytes() const;

  // --- Checkpointing -----------------------------------------------------

  /// CRC32 over the graph's structure (node roles, link endpoints and
  /// capacities). Snapshots embed it so a restore against a different
  /// topology fails loudly instead of decoding garbage.
  [[nodiscard]] std::uint32_t TopologyFingerprint() const;

  /// Serializes the complete mutable state. Link-flow lists are written
  /// verbatim (their relative order is part of the state: Release() keeps
  /// relative order, so a restored network must reproduce it exactly);
  /// unordered maps are written in ascending-key order for a canonical
  /// byte stream.
  void SaveState(BinWriter& w) const;

  /// Restores state serialized by SaveState. The graph itself is not
  /// persisted — the caller reconstructs it and this network must already
  /// be bound to an identical graph (checked via TopologyFingerprint).
  void LoadState(BinReader& r);

 private:
  void Occupy(const topo::Path& path, Mbps demand, FlowId id);
  void Release(const topo::Path& path, Mbps demand, FlowId id);

  const topo::Graph* graph_;
  flow::FlowTable flows_;
  std::vector<Mbps> residual_;                      // by LinkId
  std::vector<std::vector<FlowId>> link_flows_;     // by LinkId, unsorted
  std::unordered_map<FlowId::rep_type, topo::Path> placements_;
  std::vector<char> link_up_;                       // by LinkId
  std::vector<char> node_up_;                       // by NodeId
  std::size_t down_links_ = 0;
  std::size_t down_nodes_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t state_epoch_ = 0;
};

}  // namespace nu::net
