// Network: mutable network state = topology graph + placed flows + per-link
// residual bandwidth. This is the object every algorithm in the paper reads
// and writes: admission checks, congested-link detection (Definition 1),
// migration, and update execution all go through it.
//
// Hot-state layout: flows live in a dense id-indexed slot store
// (flow/flow_table.h), each placement is a 32-bit PathRef into a shared
// append-only topo::PathRegistry (one deep copy per DISTINCT path in the
// whole world, not per flow), and per-link flow lists are ascending-sorted
// 32-bit id vectors served as allocation-free spans. Ids are monotonic and
// never reused, which is what makes dense slots and sorted lists canonical.
//
// Network is copyable on purpose (copies share the registry, so PathRefs
// remain valid across ScopedTransaction saves and legacy deep-copy probes),
// but planners normally evaluate what-if scenarios against a copy-on-write
// NetworkOverlay (net/overlay.h) and commit only the chosen plan to the
// real instance.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/binio.h"
#include "flow/flow_table.h"
#include "net/network_view.h"
#include "topo/graph.h"
#include "topo/path_registry.h"

namespace nu::net {

class Network final : public MutableNetwork {
 public:
  explicit Network(const topo::Graph& graph);

  [[nodiscard]] const topo::Graph& graph() const override { return *graph_; }
  [[nodiscard]] const flow::FlowTable& flows() const { return flows_; }

  /// The shared path-interning registry (see NetworkView::path_registry).
  [[nodiscard]] topo::PathRegistry& path_registry() const override {
    return *registry_;
  }

  /// Residual bandwidth c_{i,j} of a link.
  [[nodiscard]] Mbps Residual(LinkId link) const override;

  /// The residual store IS a flat array here (updated incrementally by
  /// Occupy/Release); expose it for the SoA scan kernels.
  [[nodiscard]] const Mbps* ResidualData() const override {
    return residual_.data();
  }

  /// Flat structure-of-arrays rows indexed by LinkId value, for batched
  /// scans (guard::Auditor's capacity pass, bench_hotloops). The capacity
  /// row is derived from the graph at construction — it is not serialized
  /// (snapshot format unchanged) and not counted by ApproxStateBytes (it
  /// duplicates immutable graph data, so deep copies could share it).
  [[nodiscard]] std::span<const Mbps> ResidualArray() const {
    return residual_;
  }
  [[nodiscard]] std::span<const Mbps> CapacityArray() const {
    return capacity_;
  }

  /// Utilization of a link in [0, 1].
  [[nodiscard]] double Utilization(LinkId link) const;

  /// Mean utilization over all links.
  [[nodiscard]] double AverageUtilization() const;

  /// Mean utilization over links that carry at least one flow.
  [[nodiscard]] double ActiveLinkUtilization() const;

  /// Mean utilization over fabric links (links not incident to a host) —
  /// "network utilization" in the core-contended sense. Falls back to
  /// AverageUtilization() when the graph has no fabric links.
  [[nodiscard]] double FabricUtilization() const;

  // CanPlace / CongestedLinks / CanReroute and the FlowsOnLink family are
  // inherited from NetworkView, implemented once over the virtual
  // primitives so overlays share their exact feasibility semantics.

  /// Registers and places a flow on `path`. Requires feasibility
  /// (CanPlace). Returns the assigned flow id.
  FlowId Place(flow::Flow flow, const topo::Path& path) override;

  /// Places even if it would congest links (residual may go negative).
  /// Exists for experiments that study congestion; invariant checking then
  /// reports the congested links.
  FlowId ForcePlace(flow::Flow flow, const topo::Path& path);

  /// Removes a flow, releasing its bandwidth.
  void Remove(FlowId id) override;

  /// Moves an existing flow to `new_path`. Requires the flow to exist and
  /// CanReroute to hold.
  void Reroute(FlowId id, const topo::Path& new_path) override;

  /// Interned ref of a placed flow's current path.
  [[nodiscard]] PathRef PathRefOf(FlowId id) const override;

  /// Raw ids of flows on `link`, ascending, allocation-free.
  [[nodiscard]] std::span<const std::uint32_t> LinkFlowIds(
      LinkId link) const override;

  /// All placed flow ids (ascending).
  [[nodiscard]] std::vector<FlowId> PlacedFlows() const;

  /// Calls `fn(FlowId, const flow::Flow&, const topo::Path&)` for every
  /// placed flow in ascending-id order. Cache-linear slot scan — the
  /// iteration auditors and invariant checks should use at scale.
  template <typename Fn>
  void ForEachPlacement(Fn&& fn) const {
    for (std::size_t i = 0; i < placements_.size(); ++i) {
      const PathRef ref = placements_[i];
      if (!ref.valid()) continue;
      const FlowId id{static_cast<FlowId::rep_type>(i)};
      fn(id, flows_.Get(id), registry_->Get(ref));
    }
  }

  /// Range form of ForEachPlacement over placement slots [begin, end).
  /// Slot indices ARE flow ids, so disjoint ranges partition the placements
  /// and concatenating ranges in ascending order reproduces the full scan —
  /// the property the sharded auditor's fan-out relies on.
  template <typename Fn>
  void ForEachPlacementInRange(std::size_t begin, std::size_t end,
                               Fn&& fn) const {
    end = std::min(end, placements_.size());
    for (std::size_t i = begin; i < end; ++i) {
      const PathRef ref = placements_[i];
      if (!ref.valid()) continue;
      const FlowId id{static_cast<FlowId::rep_type>(i)};
      fn(id, flows_.Get(id), registry_->Get(ref));
    }
  }

  /// Upper bound (exclusive) of placement slot indices — the end of the
  /// dense slot array, including holes left by departed flows.
  [[nodiscard]] std::size_t placement_slot_count() const {
    return placements_.size();
  }

  [[nodiscard]] std::size_t placed_flow_count() const { return placed_count_; }

  /// True when no link has negative residual and internal accounting is
  /// consistent (recomputing residuals from placements matches the
  /// incremental values). O(V + E + flows * diameter).
  [[nodiscard]] bool CheckInvariants() const;

  // --- Fault state -------------------------------------------------------
  // Links and switches can be administratively down (fault injection). A
  // down element revokes its capacity: no placement, reroute, or candidate
  // path may cross it. Flows already crossing a failing element are NOT
  // removed implicitly — the fault layer computes the victim set first and
  // removes/replans them explicitly, so every state change stays visible.

  /// Marks one directed link up or down. Idempotent; bumps the topology
  /// epoch on an actual change.
  void SetLinkUp(LinkId link, bool up);
  [[nodiscard]] bool LinkUp(LinkId link) const override;

  /// Marks a node (switch) up or down. A down node kills every path through
  /// it. Idempotent; bumps the topology epoch on an actual change.
  void SetNodeUp(NodeId node, bool up);
  [[nodiscard]] bool NodeUp(NodeId node) const override;

  /// Flips a whole set of links and nodes (a shared-risk group) in ONE
  /// topology transition: the epoch counters bump at most once no matter
  /// how many elements actually change. Idempotent per element.
  void SetElementsUp(std::span<const LinkId> links,
                     std::span<const NodeId> nodes, bool up);

  /// True when every link and node of `path` is up. Always true while no
  /// element is down (cheap fast path).
  [[nodiscard]] bool PathAlive(const topo::Path& path) const override;

  /// Monotonic counter bumped on every up/down transition — lets path
  /// caches (topo::PredicatePathProvider) invalidate precisely when the
  /// live topology changes.
  [[nodiscard]] std::uint64_t topology_epoch() const { return epoch_; }

  /// Monotonic counter bumped on ANY state mutation — placements, removals,
  /// reroutes, and up/down transitions alike. Two reads of this network
  /// under the same state epoch observe identical state, so probe-cost
  /// caches key on it.
  [[nodiscard]] std::uint64_t state_epoch() const { return state_epoch_; }

  [[nodiscard]] std::size_t down_link_count() const { return down_links_; }
  [[nodiscard]] std::size_t down_node_count() const { return down_nodes_; }

  /// True when a flow with this id is placed in this network instance.
  /// Plans computed against a what-if view may reference flows (the planned
  /// event's own placements) that do not exist in the original.
  [[nodiscard]] bool HasFlow(FlowId id) const override {
    return flows_.Contains(id);
  }

  /// Read access to a placed flow's descriptor.
  [[nodiscard]] const flow::Flow& FlowOf(FlowId id) const override {
    return flows_.Get(id);
  }

  /// Next flow id this network would assign (see NetworkView).
  [[nodiscard]] FlowId::rep_type FlowIdUpperBound() const override {
    return flows_.peek_next_id();
  }

  /// Honest byte footprint of the mutable state a deep copy would duplicate:
  /// residual/liveness arrays, link-flow id vectors, the dense placement-ref
  /// and flow-slot stores, and the shared path registry's storage (chunks,
  /// per-path vectors, dedup index). Feeds the overlay_bytes_saved probe
  /// statistic and the scale-tier bytes comparison.
  [[nodiscard]] std::size_t ApproxStateBytes() const;

  /// Releases the slack capacity bulk loading left in the dense stores
  /// (vector growth doubles). Call after a large initial injection so the
  /// footprint reflects the loaded state, not the load pattern.
  void ShrinkToFit();

  // --- Checkpointing -----------------------------------------------------

  /// CRC32 over the graph's structure (node roles, link endpoints and
  /// capacities). Snapshots embed it so a restore against a different
  /// topology fails loudly instead of decoding garbage.
  [[nodiscard]] std::uint32_t TopologyFingerprint() const;

  /// Serializes the complete mutable state (snapshot payload format v2).
  /// Link-flow lists are written in their canonical ascending order. Paths
  /// are written as a per-snapshot used-paths table (distinct paths in
  /// first-use order over ascending flow ids) plus a table index per
  /// placement — raw PathRef values never reach the wire, because ref
  /// numbering depends on interning order (parallel probing may intern in
  /// any order) while the table depends only on the logical state.
  void SaveState(BinWriter& w) const;

  /// Restores state serialized by SaveState. The graph itself is not
  /// persisted — the caller reconstructs it and this network must already
  /// be bound to an identical graph (checked via TopologyFingerprint).
  /// Table entries are re-interned into the live registry.
  void LoadState(BinReader& r);

 private:
  void Occupy(const topo::Path& path, Mbps demand, FlowId id);
  void Release(const topo::Path& path, Mbps demand, FlowId id);
  /// Records `ref` as flow `id`'s placement, growing the dense store.
  void StorePlacement(FlowId id, PathRef ref);

  const topo::Graph* graph_;
  std::shared_ptr<topo::PathRegistry> registry_;
  flow::FlowTable flows_;
  std::vector<Mbps> residual_;  // by LinkId
  /// Immutable per-link capacities mirrored from the graph (SoA row for
  /// batched scans; see CapacityArray()).
  std::vector<Mbps> capacity_;  // by LinkId
  /// Flow ids on each link, ascending (canonical), 32-bit reps.
  std::vector<std::vector<std::uint32_t>> link_flows_;  // by LinkId
  /// Path ref of each placed flow, indexed by flow id; invalid() = absent.
  std::vector<PathRef> placements_;
  std::size_t placed_count_ = 0;
  std::vector<char> link_up_;  // by LinkId
  std::vector<char> node_up_;  // by NodeId
  std::size_t down_links_ = 0;
  std::size_t down_nodes_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t state_epoch_ = 0;
};

}  // namespace nu::net
