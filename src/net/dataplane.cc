#include "net/dataplane.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace nu::net {

const char* ToString(RuleFault cause) {
  switch (cause) {
    case RuleFault::kAckLie:
      return "ack-lie";
    case RuleFault::kStraggler:
      return "straggler";
    case RuleFault::kRuleLoss:
      return "rule-loss";
  }
  return "?";
}

void DataplaneState::Account(const DivergentRule& entry, int delta) {
  std::size_t& bucket = entry.abandoned ? abandoned_ : active_;
  if (delta > 0) {
    bucket += static_cast<std::size_t>(delta);
  } else {
    NU_CHECK(bucket >= static_cast<std::size_t>(-delta));
    bucket -= static_cast<std::size_t>(-delta);
  }
}

bool DataplaneState::AddDivergence(NodeId node, FlowId flow, RuleFault cause,
                                   Seconds now) {
  auto& rules = by_node_[node.value()];
  auto [it, inserted] = rules.try_emplace(flow.value());
  if (!inserted) return false;
  it->second.cause = cause;
  it->second.since = now;
  Account(it->second, +1);
  auto& nodes = by_flow_[flow.value()];
  const auto pos = std::lower_bound(nodes.begin(), nodes.end(), node.value());
  nodes.insert(pos, node.value());
  return true;
}

bool DataplaneState::Resolve(NodeId node, FlowId flow) {
  const auto node_it = by_node_.find(node.value());
  if (node_it == by_node_.end()) return false;
  const auto rule_it = node_it->second.find(flow.value());
  if (rule_it == node_it->second.end()) return false;
  Account(rule_it->second, -1);
  node_it->second.erase(rule_it);
  if (node_it->second.empty()) by_node_.erase(node_it);
  const auto flow_it = by_flow_.find(flow.value());
  NU_CHECK(flow_it != by_flow_.end());
  auto& nodes = flow_it->second;
  nodes.erase(std::find(nodes.begin(), nodes.end(), node.value()));
  if (nodes.empty()) by_flow_.erase(flow_it);
  return true;
}

bool DataplaneState::IsDivergent(NodeId node, FlowId flow) const {
  return Find(node, flow) != nullptr;
}

const DivergentRule* DataplaneState::Find(NodeId node, FlowId flow) const {
  const auto node_it = by_node_.find(node.value());
  if (node_it == by_node_.end()) return nullptr;
  const auto rule_it = node_it->second.find(flow.value());
  if (rule_it == node_it->second.end()) return nullptr;
  return &rule_it->second;
}

void DataplaneState::MarkDetected(NodeId node, FlowId flow) {
  auto* entry = const_cast<DivergentRule*>(Find(node, flow));
  if (entry != nullptr) entry->detected = true;
}

void DataplaneState::SetPendingApply(NodeId node, FlowId flow, bool pending) {
  auto* entry = const_cast<DivergentRule*>(Find(node, flow));
  if (entry != nullptr) entry->pending_apply = pending;
}

std::uint32_t DataplaneState::RecordRepairAttempt(NodeId node, FlowId flow) {
  auto* entry = const_cast<DivergentRule*>(Find(node, flow));
  if (entry == nullptr) return 0;
  return ++entry->repair_attempts;
}

void DataplaneState::MarkAbandoned(NodeId node, FlowId flow) {
  auto* entry = const_cast<DivergentRule*>(Find(node, flow));
  if (entry == nullptr || entry->abandoned) return;
  Account(*entry, -1);
  entry->abandoned = true;
  Account(*entry, +1);
}

void DataplaneState::DropFlow(FlowId flow) {
  const auto flow_it = by_flow_.find(flow.value());
  if (flow_it == by_flow_.end()) return;
  for (const NodeId::rep_type node : flow_it->second) {
    const auto node_it = by_node_.find(node);
    NU_CHECK(node_it != by_node_.end());
    const auto rule_it = node_it->second.find(flow.value());
    NU_CHECK(rule_it != node_it->second.end());
    Account(rule_it->second, -1);
    node_it->second.erase(rule_it);
    if (node_it->second.empty()) by_node_.erase(node_it);
  }
  by_flow_.erase(flow_it);
}

void DataplaneState::DropNode(NodeId node) {
  const auto node_it = by_node_.find(node.value());
  if (node_it == by_node_.end()) return;
  for (const auto& [flow, entry] : node_it->second) {
    Account(entry, -1);
    const auto flow_it = by_flow_.find(flow);
    NU_CHECK(flow_it != by_flow_.end());
    auto& nodes = flow_it->second;
    nodes.erase(std::find(nodes.begin(), nodes.end(), node.value()));
    if (nodes.empty()) by_flow_.erase(flow_it);
  }
  by_node_.erase(node_it);
}

std::vector<NodeId> DataplaneState::DriftingNodes() const {
  std::vector<NodeId> out;
  out.reserve(by_node_.size());
  for (const auto& [node, rules] : by_node_) out.push_back(NodeId{node});
  return out;
}

std::vector<FlowId> DataplaneState::DivergentFlowsOn(NodeId node) const {
  std::vector<FlowId> out;
  const auto node_it = by_node_.find(node.value());
  if (node_it == by_node_.end()) return out;
  out.reserve(node_it->second.size());
  for (const auto& [flow, entry] : node_it->second) out.push_back(FlowId{flow});
  return out;
}

void DataplaneState::SaveState(BinWriter& w) const {
  w.Size(by_node_.size());
  for (const auto& [node, rules] : by_node_) {
    w.U32(node);
    w.Size(rules.size());
    for (const auto& [flow, entry] : rules) {
      w.U64(flow);
      w.U8(static_cast<std::uint8_t>(entry.cause));
      w.F64(entry.since);
      w.Bool(entry.detected);
      w.Bool(entry.pending_apply);
      w.U32(entry.repair_attempts);
      w.Bool(entry.abandoned);
    }
  }
}

void DataplaneState::LoadState(BinReader& r) {
  by_node_.clear();
  by_flow_.clear();
  active_ = 0;
  abandoned_ = 0;
  const std::size_t nodes = r.Size();
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId::rep_type node = r.U32();
    const std::size_t rules = r.Size();
    for (std::size_t j = 0; j < rules; ++j) {
      const FlowId::rep_type flow = r.U64();
      DivergentRule entry;
      const std::uint8_t cause = r.U8();
      if (cause > static_cast<std::uint8_t>(RuleFault::kRuleLoss)) {
        throw CorruptInput("bad rule-fault cause");
      }
      entry.cause = static_cast<RuleFault>(cause);
      entry.since = r.F64();
      entry.detected = r.Bool();
      entry.pending_apply = r.Bool();
      entry.repair_attempts = r.U32();
      entry.abandoned = r.Bool();
      const auto [it, inserted] = by_node_[node].try_emplace(flow, entry);
      if (!inserted) throw CorruptInput("duplicate divergence entry");
      Account(entry, +1);
      auto& flow_nodes = by_flow_[flow];
      const auto pos =
          std::lower_bound(flow_nodes.begin(), flow_nodes.end(), node);
      flow_nodes.insert(pos, node);
    }
  }
}

bool operator==(const DataplaneState& a, const DataplaneState& b) {
  auto tie = [](const DivergentRule& e) {
    return std::tuple(e.cause, e.since, e.detected, e.pending_apply,
                      e.repair_attempts, e.abandoned);
  };
  if (a.by_node_.size() != b.by_node_.size()) return false;
  auto ia = a.by_node_.begin();
  auto ib = b.by_node_.begin();
  for (; ia != a.by_node_.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if (ia->second.size() != ib->second.size()) return false;
    auto ja = ia->second.begin();
    auto jb = ib->second.begin();
    for (; ja != ia->second.end(); ++ja, ++jb) {
      if (ja->first != jb->first || tie(ja->second) != tie(jb->second)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace nu::net
