#include "net/admission.h"

#include <algorithm>
#include <limits>

#include "common/arena.h"
#include "common/check.h"
#include "net/residual_scan.h"

namespace nu::net {
namespace {

/// Per-thread scratch for the batched candidate scans. Admission runs
/// concurrently on the planner's probe workers, so the arena cannot be a
/// shared static; per-thread is safe (calls never nest) and a warmed arena
/// keeps the steady-state admission path allocation-free.
thread_local Arena t_scan_arena;

/// Gathers `path`'s residual row into `row`: straight indexed loads off the
/// flat array when the view exposes one, virtual reads otherwise (the
/// values are identical either way, so feasibility decisions are too).
void GatherRow(const NetworkView& network, const Mbps* flat,
               std::span<const LinkId> links, Mbps* row) {
  if (flat != nullptr) {
    GatherResiduals(flat, links, row);
    return;
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    row[i] = network.Residual(links[i]);
  }
}

std::size_t MaxLinkCount(const std::vector<topo::Path>& candidates) {
  std::size_t max_links = 0;
  for (const topo::Path& p : candidates) {
    max_links = std::max(max_links, p.links.size());
  }
  return max_links;
}

}  // namespace

Mbps BottleneckResidual(const NetworkView& network, const topo::Path& path) {
  Mbps bottleneck = std::numeric_limits<double>::infinity();
  for (LinkId lid : path.links) {
    bottleneck = std::min(bottleneck, network.Residual(lid));
  }
  return bottleneck;
}

const topo::Path* FindFeasiblePathPtr(const NetworkView& network,
                                      const topo::PathProvider& paths,
                                      NodeId src, NodeId dst, Mbps demand,
                                      PathSelection selection) {
  const std::vector<topo::Path>& candidates = paths.Paths(src, dst);
  if (candidates.empty()) return nullptr;
  Arena& arena = t_scan_arena;
  arena.Reset();
  Mbps* row = arena.AllocArray<Mbps>(MaxLinkCount(candidates));
  const Mbps* flat = network.ResidualData();

  const topo::Path* best = nullptr;
  Mbps best_bottleneck = 0.0;
  Mbps best_total = 0.0;
  for (const topo::Path& p : candidates) {
    if (!network.PathAlive(p)) continue;
    const std::span<const LinkId> links = p.links;
    GatherRow(network, flat, links, row);
    // Feasible iff no link of the row is congested for `demand` — the same
    // ApproxGe predicate CanPlace applies link by link.
    if (CountCongested(row, links.size(), demand) != 0) continue;
    switch (selection) {
      case PathSelection::kFirstFit:
        return &p;
      case PathSelection::kWidest: {
        // Primary: max bottleneck. Secondary: max total residual — in
        // multi-rooted trees every candidate shares the host links, so the
        // bottleneck alone frequently ties and would always pack the first
        // fabric path. The total stays a scalar sum in path-link order:
        // tie-breaks compare exact doubles.
        const Mbps b = MinValue(row, links.size());
        Mbps t = 0.0;
        for (std::size_t i = 0; i < links.size(); ++i) t += row[i];
        if (best == nullptr || b > best_bottleneck ||
            (b == best_bottleneck && t > best_total)) {
          best = &p;
          best_bottleneck = b;
          best_total = t;
        }
        break;
      }
      case PathSelection::kBestFit: {
        const Mbps b = MinValue(row, links.size());
        Mbps t = 0.0;
        for (std::size_t i = 0; i < links.size(); ++i) t += row[i];
        if (best == nullptr || b < best_bottleneck ||
            (b == best_bottleneck && t < best_total)) {
          best = &p;
          best_bottleneck = b;
          best_total = t;
        }
        break;
      }
    }
  }
  return best;
}

std::optional<topo::Path> FindFeasiblePath(const NetworkView& network,
                                           const topo::PathProvider& paths,
                                           NodeId src, NodeId dst, Mbps demand,
                                           PathSelection selection) {
  const topo::Path* best =
      FindFeasiblePathPtr(network, paths, src, dst, demand, selection);
  if (best == nullptr) return std::nullopt;
  return *best;
}

bool CanAdmit(const NetworkView& network, const topo::PathProvider& paths,
              NodeId src, NodeId dst, Mbps demand) {
  return FindFeasiblePathPtr(network, paths, src, dst, demand,
                             PathSelection::kFirstFit) != nullptr;
}

const topo::Path& LeastCongestedPath(const NetworkView& network,
                                     const topo::PathProvider& paths,
                                     NodeId src, NodeId dst, Mbps demand) {
  const std::vector<topo::Path>& candidates = paths.Paths(src, dst);
  NU_EXPECTS(!candidates.empty());
  Arena& arena = t_scan_arena;
  arena.Reset();
  Mbps* row = arena.AllocArray<Mbps>(MaxLinkCount(candidates));
  const Mbps* flat = network.ResidualData();

  const topo::Path* best = nullptr;
  std::size_t best_congested = 0;
  Mbps best_bottleneck = 0.0;
  for (const topo::Path& p : candidates) {
    const std::span<const LinkId> links = p.links;
    GatherRow(network, flat, links, row);
    const std::size_t congested = CountCongested(row, links.size(), demand);
    const Mbps bottleneck = MinValue(row, links.size());
    if (best == nullptr || congested < best_congested ||
        (congested == best_congested && bottleneck > best_bottleneck)) {
      best = &p;
      best_congested = congested;
      best_bottleneck = bottleneck;
    }
  }
  return *best;
}

}  // namespace nu::net
