#include "net/admission.h"

#include <limits>

namespace nu::net {

Mbps BottleneckResidual(const NetworkView& network, const topo::Path& path) {
  Mbps bottleneck = std::numeric_limits<double>::infinity();
  for (LinkId lid : path.links) {
    bottleneck = std::min(bottleneck, network.Residual(lid));
  }
  return bottleneck;
}

std::optional<topo::Path> FindFeasiblePath(const NetworkView& network,
                                           const topo::PathProvider& paths,
                                           NodeId src, NodeId dst, Mbps demand,
                                           PathSelection selection) {
  const std::vector<topo::Path>& candidates = paths.Paths(src, dst);
  const topo::Path* best = nullptr;
  Mbps best_bottleneck = 0.0;
  Mbps best_total = 0.0;
  auto total_residual = [&network](const topo::Path& p) {
    Mbps total = 0.0;
    for (LinkId lid : p.links) total += network.Residual(lid);
    return total;
  };
  for (const topo::Path& p : candidates) {
    if (!network.CanPlace(demand, p)) continue;
    switch (selection) {
      case PathSelection::kFirstFit:
        return p;
      case PathSelection::kWidest: {
        // Primary: max bottleneck. Secondary: max total residual — in
        // multi-rooted trees every candidate shares the host links, so the
        // bottleneck alone frequently ties and would always pack the first
        // fabric path.
        const Mbps b = BottleneckResidual(network, p);
        const Mbps t = total_residual(p);
        if (best == nullptr || b > best_bottleneck ||
            (b == best_bottleneck && t > best_total)) {
          best = &p;
          best_bottleneck = b;
          best_total = t;
        }
        break;
      }
      case PathSelection::kBestFit: {
        const Mbps b = BottleneckResidual(network, p);
        const Mbps t = total_residual(p);
        if (best == nullptr || b < best_bottleneck ||
            (b == best_bottleneck && t < best_total)) {
          best = &p;
          best_bottleneck = b;
          best_total = t;
        }
        break;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

bool CanAdmit(const NetworkView& network, const topo::PathProvider& paths,
              NodeId src, NodeId dst, Mbps demand) {
  return FindFeasiblePath(network, paths, src, dst, demand,
                          PathSelection::kFirstFit)
      .has_value();
}

const topo::Path& LeastCongestedPath(const NetworkView& network,
                                     const topo::PathProvider& paths,
                                     NodeId src, NodeId dst, Mbps demand) {
  const std::vector<topo::Path>& candidates = paths.Paths(src, dst);
  NU_EXPECTS(!candidates.empty());
  const topo::Path* best = &candidates.front();
  std::size_t best_congested = network.CongestedLinks(demand, *best).size();
  Mbps best_bottleneck = BottleneckResidual(network, *best);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const topo::Path& p = candidates[i];
    const std::size_t congested = network.CongestedLinks(demand, p).size();
    const Mbps bottleneck = BottleneckResidual(network, p);
    if (congested < best_congested ||
        (congested == best_congested && bottleneck > best_bottleneck)) {
      best = &p;
      best_congested = congested;
      best_bottleneck = bottleneck;
    }
  }
  return *best;
}

}  // namespace nu::net
