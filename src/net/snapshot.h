// What-if helpers over the copyable Network. LMTF probes the migration cost
// of several candidate events per round and P-LMTF tests co-schedulability;
// both need cheap speculative mutation with guaranteed rollback.
#pragma once

#include <utility>

#include "net/network.h"

namespace nu::net {

/// RAII transaction: take a copy of the network, mutate the live instance
/// freely, and unless Commit() is called the destructor restores the saved
/// state. Non-movable by design — scope it tightly.
class ScopedTransaction {
 public:
  explicit ScopedTransaction(Network& network)
      : network_(network), saved_(network) {}

  ScopedTransaction(const ScopedTransaction&) = delete;
  ScopedTransaction& operator=(const ScopedTransaction&) = delete;
  ScopedTransaction(ScopedTransaction&&) = delete;
  ScopedTransaction& operator=(ScopedTransaction&&) = delete;

  ~ScopedTransaction() {
    if (!committed_) network_ = std::move(saved_);
  }

  /// Keeps the mutations.
  void Commit() { committed_ = true; }

  /// Explicitly discards mutations now (and disarms the destructor).
  void Rollback() {
    network_ = std::move(saved_);
    committed_ = true;  // nothing left to restore
  }

  [[nodiscard]] bool committed() const { return committed_; }

 private:
  Network& network_;
  Network saved_;
  bool committed_ = false;
};

}  // namespace nu::net
