// ScopedTransaction is header-only; this TU exists so the target has a
// compiled artifact and a place for future out-of-line helpers.
#include "net/snapshot.h"
