#include "net/network.h"

#include <algorithm>
#include <cmath>

namespace nu::net {

Network::Network(const topo::Graph& graph) : graph_(&graph) {
  residual_.reserve(graph.link_count());
  for (const topo::Link& l : graph.links()) residual_.push_back(l.capacity);
  link_flows_.resize(graph.link_count());
  link_up_.assign(graph.link_count(), 1);
  node_up_.assign(graph.node_count(), 1);
}

void Network::SetLinkUp(LinkId link, bool up) {
  NU_EXPECTS(link.value() < link_up_.size());
  char& state = link_up_[link.value()];
  if (static_cast<bool>(state) == up) return;
  state = up ? 1 : 0;
  up ? --down_links_ : ++down_links_;
  ++epoch_;
  ++state_epoch_;
}

bool Network::LinkUp(LinkId link) const {
  NU_EXPECTS(link.value() < link_up_.size());
  return link_up_[link.value()] != 0;
}

void Network::SetNodeUp(NodeId node, bool up) {
  NU_EXPECTS(node.value() < node_up_.size());
  char& state = node_up_[node.value()];
  if (static_cast<bool>(state) == up) return;
  state = up ? 1 : 0;
  up ? --down_nodes_ : ++down_nodes_;
  ++epoch_;
  ++state_epoch_;
}

bool Network::NodeUp(NodeId node) const {
  NU_EXPECTS(node.value() < node_up_.size());
  return node_up_[node.value()] != 0;
}

bool Network::PathAlive(const topo::Path& path) const {
  if (down_links_ == 0 && down_nodes_ == 0) return true;
  for (LinkId lid : path.links) {
    if (!LinkUp(lid)) return false;
  }
  for (NodeId nid : path.nodes) {
    if (!NodeUp(nid)) return false;
  }
  return true;
}

Mbps Network::Residual(LinkId link) const {
  NU_EXPECTS(link.value() < residual_.size());
  return residual_[link.value()];
}

double Network::Utilization(LinkId link) const {
  const topo::Link& l = graph_->link(link);
  return 1.0 - Residual(link) / l.capacity;
}

double Network::AverageUtilization() const {
  if (graph_->link_count() == 0) return 0.0;
  double sum = 0.0;
  for (const topo::Link& l : graph_->links()) sum += Utilization(l.id);
  return sum / static_cast<double>(graph_->link_count());
}

double Network::FabricUtilization() const {
  double sum = 0.0;
  std::size_t fabric_links = 0;
  for (const topo::Link& l : graph_->links()) {
    const bool touches_host =
        graph_->node(l.src).role == topo::NodeRole::kHost ||
        graph_->node(l.dst).role == topo::NodeRole::kHost;
    if (touches_host) continue;
    sum += Utilization(l.id);
    ++fabric_links;
  }
  if (fabric_links == 0) return AverageUtilization();
  return sum / static_cast<double>(fabric_links);
}

double Network::ActiveLinkUtilization() const {
  double sum = 0.0;
  std::size_t active = 0;
  for (const topo::Link& l : graph_->links()) {
    if (!link_flows_[l.id.value()].empty()) {
      sum += Utilization(l.id);
      ++active;
    }
  }
  return active == 0 ? 0.0 : sum / static_cast<double>(active);
}

void Network::Occupy(const topo::Path& path, Mbps demand, FlowId id) {
  for (LinkId lid : path.links) {
    residual_[lid.value()] -= demand;
    link_flows_[lid.value()].push_back(id);
  }
}

void Network::Release(const topo::Path& path, Mbps demand, FlowId id) {
  for (LinkId lid : path.links) {
    residual_[lid.value()] += demand;
    auto& flows = link_flows_[lid.value()];
    const auto it = std::find(flows.begin(), flows.end(), id);
    NU_CHECK(it != flows.end());
    flows.erase(it);
  }
}

FlowId Network::Place(flow::Flow flow, const topo::Path& path) {
  NU_EXPECTS(graph_->IsValidPath(path));
  NU_EXPECTS(path.source() == flow.src);
  NU_EXPECTS(path.destination() == flow.dst);
  NU_EXPECTS(CanPlace(flow.demand, path));
  const Mbps demand = flow.demand;
  const FlowId id = flows_.Add(std::move(flow));
  Occupy(path, demand, id);
  placements_.emplace(id.value(), path);
  ++state_epoch_;
  return id;
}

FlowId Network::ForcePlace(flow::Flow flow, const topo::Path& path) {
  NU_EXPECTS(graph_->IsValidPath(path));
  NU_EXPECTS(path.source() == flow.src);
  NU_EXPECTS(path.destination() == flow.dst);
  const Mbps demand = flow.demand;
  const FlowId id = flows_.Add(std::move(flow));
  Occupy(path, demand, id);
  placements_.emplace(id.value(), path);
  ++state_epoch_;
  return id;
}

void Network::Remove(FlowId id) {
  const auto it = placements_.find(id.value());
  NU_EXPECTS(it != placements_.end());
  const Mbps demand = flows_.Get(id).demand;
  Release(it->second, demand, id);
  placements_.erase(it);
  flows_.Remove(id);
  ++state_epoch_;
}

void Network::Reroute(FlowId id, const topo::Path& new_path) {
  const auto it = placements_.find(id.value());
  NU_EXPECTS(it != placements_.end());
  const flow::Flow& f = flows_.Get(id);
  NU_EXPECTS(graph_->IsValidPath(new_path));
  NU_EXPECTS(new_path.source() == f.src);
  NU_EXPECTS(new_path.destination() == f.dst);
  const Mbps demand = f.demand;
  // Release first so the flow's own bandwidth on shared links counts toward
  // the feasibility of the new path.
  topo::Path old_path = std::move(it->second);
  Release(old_path, demand, id);
  NU_CHECK(CanPlace(demand, new_path));
  Occupy(new_path, demand, id);
  it->second = new_path;
  ++state_epoch_;
}

const topo::Path& Network::PathOf(FlowId id) const {
  const auto it = placements_.find(id.value());
  NU_EXPECTS(it != placements_.end());
  return it->second;
}

std::vector<FlowId> Network::FlowsOnLink(LinkId link) const {
  NU_EXPECTS(link.value() < link_flows_.size());
  std::vector<FlowId> flows = link_flows_[link.value()];
  std::sort(flows.begin(), flows.end());
  return flows;
}

std::size_t Network::FlowCountOnLink(LinkId link) const {
  NU_EXPECTS(link.value() < link_flows_.size());
  return link_flows_[link.value()].size();
}

bool Network::FlowUsesLink(FlowId flow, LinkId link) const {
  NU_EXPECTS(link.value() < link_flows_.size());
  const auto& flows = link_flows_[link.value()];
  return std::find(flows.begin(), flows.end(), flow) != flows.end();
}

std::vector<FlowId> Network::PlacedFlows() const {
  std::vector<FlowId> ids;
  ids.reserve(placements_.size());
  for (const auto& [rep, _] : placements_) ids.push_back(FlowId{rep});
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t Network::ApproxStateBytes() const {
  std::size_t bytes = residual_.size() * sizeof(Mbps) + link_up_.size() +
                      node_up_.size();
  for (const auto& flows : link_flows_) {
    bytes += sizeof(flows) + flows.capacity() * sizeof(FlowId);
  }
  for (const auto& [_, path] : placements_) {
    bytes += sizeof(path) + path.links.capacity() * sizeof(LinkId) +
             path.nodes.capacity() * sizeof(NodeId);
  }
  bytes += flows_.size() * sizeof(flow::Flow);
  return bytes;
}

std::uint32_t Network::TopologyFingerprint() const {
  BinWriter w;
  w.Size(graph_->node_count());
  for (const topo::Node& n : graph_->nodes()) {
    w.U8(static_cast<std::uint8_t>(n.role));
  }
  w.Size(graph_->link_count());
  for (const topo::Link& l : graph_->links()) {
    w.U32(l.src.value());
    w.U32(l.dst.value());
    w.F64(l.capacity);
  }
  return Crc32(w.buffer());
}

namespace {

void SavePath(BinWriter& w, const topo::Path& path) {
  w.Size(path.nodes.size());
  for (NodeId n : path.nodes) w.U32(n.value());
  w.Size(path.links.size());
  for (LinkId l : path.links) w.U32(l.value());
}

topo::Path LoadPath(BinReader& r) {
  topo::Path path;
  const std::size_t node_count = r.Size();
  path.nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) path.nodes.push_back(NodeId{r.U32()});
  const std::size_t link_count = r.Size();
  path.links.reserve(link_count);
  for (std::size_t i = 0; i < link_count; ++i) path.links.push_back(LinkId{r.U32()});
  return path;
}

}  // namespace

void Network::SaveState(BinWriter& w) const {
  w.U32(TopologyFingerprint());
  flows_.SaveState(w);
  w.Vec(residual_, [](BinWriter& out, Mbps v) { out.F64(v); });
  w.Size(link_flows_.size());
  for (const auto& flows : link_flows_) {
    w.Vec(flows, [](BinWriter& out, FlowId id) { out.U64(id.value()); });
  }
  std::vector<FlowId::rep_type> placed;
  placed.reserve(placements_.size());
  for (const auto& [rep, _] : placements_) placed.push_back(rep);
  std::sort(placed.begin(), placed.end());
  w.Size(placed.size());
  for (FlowId::rep_type rep : placed) {
    w.U64(rep);
    SavePath(w, placements_.at(rep));
  }
  w.Vec(link_up_, [](BinWriter& out, char v) { out.U8(static_cast<std::uint8_t>(v)); });
  w.Vec(node_up_, [](BinWriter& out, char v) { out.U8(static_cast<std::uint8_t>(v)); });
  w.Size(down_links_);
  w.Size(down_nodes_);
  w.U64(epoch_);
  w.U64(state_epoch_);
}

void Network::LoadState(BinReader& r) {
  const std::uint32_t fingerprint = r.U32();
  NU_CHECK(fingerprint == TopologyFingerprint());
  flows_.LoadState(r);
  residual_ = r.Vec<Mbps>([](BinReader& in) { return in.F64(); });
  NU_CHECK(residual_.size() == graph_->link_count());
  const std::size_t link_count = r.Size();
  NU_CHECK(link_count == graph_->link_count());
  link_flows_.assign(link_count, {});
  for (std::size_t i = 0; i < link_count; ++i) {
    link_flows_[i] = r.Vec<FlowId>([](BinReader& in) { return FlowId{in.U64()}; });
  }
  placements_.clear();
  const std::size_t placed = r.Size();
  placements_.reserve(placed);
  for (std::size_t i = 0; i < placed; ++i) {
    const FlowId::rep_type rep = r.U64();
    const auto [_, inserted] = placements_.emplace(rep, LoadPath(r));
    NU_CHECK(inserted);
  }
  link_up_ = r.Vec<char>([](BinReader& in) { return static_cast<char>(in.U8()); });
  node_up_ = r.Vec<char>([](BinReader& in) { return static_cast<char>(in.U8()); });
  NU_CHECK(link_up_.size() == graph_->link_count());
  NU_CHECK(node_up_.size() == graph_->node_count());
  down_links_ = r.Size();
  down_nodes_ = r.Size();
  epoch_ = r.U64();
  state_epoch_ = r.U64();
}

bool Network::CheckInvariants() const {
  // Recompute residuals from scratch.
  std::vector<Mbps> recomputed;
  recomputed.reserve(graph_->link_count());
  for (const topo::Link& l : graph_->links()) recomputed.push_back(l.capacity);
  for (const auto& [rep, path] : placements_) {
    const flow::Flow& f = flows_.Get(FlowId{rep});
    if (!graph_->IsValidPath(path)) return false;
    if (path.source() != f.src || path.destination() != f.dst) return false;
    // No flow may keep occupying a failed link or switch.
    if (!PathAlive(path)) return false;
    for (LinkId lid : path.links) recomputed[lid.value()] -= f.demand;
  }
  for (std::size_t i = 0; i < residual_.size(); ++i) {
    if (std::abs(recomputed[i] - residual_[i]) > 1e-3) return false;
    if (residual_[i] < -1e-3) return false;  // congestion-free invariant
  }
  // link_flows_ agrees with placements.
  std::size_t total_link_entries = 0;
  for (const auto& flows : link_flows_) total_link_entries += flows.size();
  std::size_t expected_entries = 0;
  for (const auto& [_, path] : placements_) expected_entries += path.links.size();
  if (total_link_entries != expected_entries) return false;
  if (placements_.size() != flows_.size()) return false;
  return true;
}

}  // namespace nu::net
