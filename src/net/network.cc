#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace nu::net {
namespace {

/// Sorted-insert of `rep` into ascending `flows`.
void InsertSorted(std::vector<std::uint32_t>& flows, std::uint32_t rep) {
  flows.insert(std::lower_bound(flows.begin(), flows.end(), rep), rep);
}

/// Sorted-erase of `rep` from ascending `flows`. Aborts if absent.
void EraseSorted(std::vector<std::uint32_t>& flows, std::uint32_t rep) {
  const auto it = std::lower_bound(flows.begin(), flows.end(), rep);
  NU_CHECK(it != flows.end() && *it == rep);
  flows.erase(it);
}

std::uint32_t Rep32(FlowId id) {
  return static_cast<std::uint32_t>(id.value());
}

}  // namespace

Network::Network(const topo::Graph& graph)
    : graph_(&graph), registry_(std::make_shared<topo::PathRegistry>()) {
  residual_.reserve(graph.link_count());
  capacity_.reserve(graph.link_count());
  for (const topo::Link& l : graph.links()) {
    residual_.push_back(l.capacity);
    capacity_.push_back(l.capacity);
  }
  link_flows_.resize(graph.link_count());
  link_up_.assign(graph.link_count(), 1);
  node_up_.assign(graph.node_count(), 1);
}

void Network::SetLinkUp(LinkId link, bool up) {
  NU_EXPECTS(link.value() < link_up_.size());
  char& state = link_up_[link.value()];
  if (static_cast<bool>(state) == up) return;
  state = up ? 1 : 0;
  up ? --down_links_ : ++down_links_;
  ++epoch_;
  ++state_epoch_;
}

bool Network::LinkUp(LinkId link) const {
  NU_EXPECTS(link.value() < link_up_.size());
  return link_up_[link.value()] != 0;
}

void Network::SetNodeUp(NodeId node, bool up) {
  NU_EXPECTS(node.value() < node_up_.size());
  char& state = node_up_[node.value()];
  if (static_cast<bool>(state) == up) return;
  state = up ? 1 : 0;
  up ? --down_nodes_ : ++down_nodes_;
  ++epoch_;
  ++state_epoch_;
}

bool Network::NodeUp(NodeId node) const {
  NU_EXPECTS(node.value() < node_up_.size());
  return node_up_[node.value()] != 0;
}

void Network::SetElementsUp(std::span<const LinkId> links,
                            std::span<const NodeId> nodes, bool up) {
  bool changed = false;
  for (LinkId link : links) {
    NU_EXPECTS(link.value() < link_up_.size());
    char& state = link_up_[link.value()];
    if (static_cast<bool>(state) == up) continue;
    state = up ? 1 : 0;
    up ? --down_links_ : ++down_links_;
    changed = true;
  }
  for (NodeId node : nodes) {
    NU_EXPECTS(node.value() < node_up_.size());
    char& state = node_up_[node.value()];
    if (static_cast<bool>(state) == up) continue;
    state = up ? 1 : 0;
    up ? --down_nodes_ : ++down_nodes_;
    changed = true;
  }
  // One epoch bump for the whole group: a correlated incident is ONE
  // topology transition, so path caches invalidate once, not per element.
  if (changed) {
    ++epoch_;
    ++state_epoch_;
  }
}

bool Network::PathAlive(const topo::Path& path) const {
  if (down_links_ == 0 && down_nodes_ == 0) return true;
  for (LinkId lid : path.links) {
    if (!LinkUp(lid)) return false;
  }
  for (NodeId nid : path.nodes) {
    if (!NodeUp(nid)) return false;
  }
  return true;
}

Mbps Network::Residual(LinkId link) const {
  NU_EXPECTS(link.value() < residual_.size());
  return residual_[link.value()];
}

double Network::Utilization(LinkId link) const {
  const topo::Link& l = graph_->link(link);
  return 1.0 - Residual(link) / l.capacity;
}

double Network::AverageUtilization() const {
  if (graph_->link_count() == 0) return 0.0;
  double sum = 0.0;
  for (const topo::Link& l : graph_->links()) sum += Utilization(l.id);
  return sum / static_cast<double>(graph_->link_count());
}

double Network::FabricUtilization() const {
  double sum = 0.0;
  std::size_t fabric_links = 0;
  for (const topo::Link& l : graph_->links()) {
    const bool touches_host =
        graph_->node(l.src).role == topo::NodeRole::kHost ||
        graph_->node(l.dst).role == topo::NodeRole::kHost;
    if (touches_host) continue;
    sum += Utilization(l.id);
    ++fabric_links;
  }
  if (fabric_links == 0) return AverageUtilization();
  return sum / static_cast<double>(fabric_links);
}

double Network::ActiveLinkUtilization() const {
  double sum = 0.0;
  std::size_t active = 0;
  for (const topo::Link& l : graph_->links()) {
    if (!link_flows_[l.id.value()].empty()) {
      sum += Utilization(l.id);
      ++active;
    }
  }
  return active == 0 ? 0.0 : sum / static_cast<double>(active);
}

void Network::Occupy(const topo::Path& path, Mbps demand, FlowId id) {
  for (LinkId lid : path.links) {
    residual_[lid.value()] -= demand;
    InsertSorted(link_flows_[lid.value()], Rep32(id));
  }
}

void Network::Release(const topo::Path& path, Mbps demand, FlowId id) {
  for (LinkId lid : path.links) {
    residual_[lid.value()] += demand;
    EraseSorted(link_flows_[lid.value()], Rep32(id));
  }
}

void Network::StorePlacement(FlowId id, PathRef ref) {
  const auto index = static_cast<std::size_t>(id.value());
  if (index >= placements_.size()) placements_.resize(index + 1);
  NU_CHECK(!placements_[index].valid());
  placements_[index] = ref;
  ++placed_count_;
}

FlowId Network::Place(flow::Flow flow, const topo::Path& path) {
  NU_EXPECTS(graph_->IsValidPath(path));
  NU_EXPECTS(path.source() == flow.src);
  NU_EXPECTS(path.destination() == flow.dst);
  NU_EXPECTS(CanPlace(flow.demand, path));
  const Mbps demand = flow.demand;
  const FlowId id = flows_.Add(std::move(flow));
  Occupy(path, demand, id);
  StorePlacement(id, registry_->Intern(path));
  ++state_epoch_;
  return id;
}

FlowId Network::ForcePlace(flow::Flow flow, const topo::Path& path) {
  NU_EXPECTS(graph_->IsValidPath(path));
  NU_EXPECTS(path.source() == flow.src);
  NU_EXPECTS(path.destination() == flow.dst);
  const Mbps demand = flow.demand;
  const FlowId id = flows_.Add(std::move(flow));
  Occupy(path, demand, id);
  StorePlacement(id, registry_->Intern(path));
  ++state_epoch_;
  return id;
}

void Network::Remove(FlowId id) {
  const PathRef ref = PathRefOf(id);
  const Mbps demand = flows_.Get(id).demand;
  Release(registry_->Get(ref), demand, id);
  placements_[static_cast<std::size_t>(id.value())] = PathRef::invalid();
  --placed_count_;
  flows_.Remove(id);
  ++state_epoch_;
}

void Network::Reroute(FlowId id, const topo::Path& new_path) {
  const PathRef old_ref = PathRefOf(id);
  const flow::Flow& f = flows_.Get(id);
  NU_EXPECTS(graph_->IsValidPath(new_path));
  NU_EXPECTS(new_path.source() == f.src);
  NU_EXPECTS(new_path.destination() == f.dst);
  const Mbps demand = f.demand;
  // Release first so the flow's own bandwidth on shared links counts toward
  // the feasibility of the new path.
  Release(registry_->Get(old_ref), demand, id);
  NU_CHECK(CanPlace(demand, new_path));
  Occupy(new_path, demand, id);
  placements_[static_cast<std::size_t>(id.value())] =
      registry_->Intern(new_path);
  ++state_epoch_;
}

PathRef Network::PathRefOf(FlowId id) const {
  NU_EXPECTS(id.value() < placements_.size());
  const PathRef ref = placements_[static_cast<std::size_t>(id.value())];
  NU_EXPECTS(ref.valid());
  return ref;
}

std::span<const std::uint32_t> Network::LinkFlowIds(LinkId link) const {
  NU_EXPECTS(link.value() < link_flows_.size());
  return link_flows_[link.value()];
}

std::vector<FlowId> Network::PlacedFlows() const {
  std::vector<FlowId> ids;
  ids.reserve(placed_count_);
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].valid()) {
      ids.push_back(FlowId{static_cast<FlowId::rep_type>(i)});
    }
  }
  return ids;
}

std::size_t Network::ApproxStateBytes() const {
  std::size_t bytes = residual_.capacity() * sizeof(Mbps) +
                      link_up_.capacity() + node_up_.capacity();
  for (const auto& flows : link_flows_) {
    bytes += sizeof(flows) + flows.capacity() * sizeof(std::uint32_t);
  }
  bytes += placements_.capacity() * sizeof(PathRef);
  bytes += flows_.ApproxBytes();
  bytes += registry_->ApproxBytes();
  return bytes;
}

void Network::ShrinkToFit() {
  for (auto& flows : link_flows_) flows.shrink_to_fit();
  placements_.shrink_to_fit();
}

std::uint32_t Network::TopologyFingerprint() const {
  BinWriter w;
  w.Size(graph_->node_count());
  for (const topo::Node& n : graph_->nodes()) {
    w.U8(static_cast<std::uint8_t>(n.role));
  }
  w.Size(graph_->link_count());
  for (const topo::Link& l : graph_->links()) {
    w.U32(l.src.value());
    w.U32(l.dst.value());
    w.F64(l.capacity);
  }
  return Crc32(w.buffer());
}

namespace {

void SavePath(BinWriter& w, const topo::Path& path) {
  w.Size(path.nodes.size());
  for (NodeId n : path.nodes) w.U32(n.value());
  w.Size(path.links.size());
  for (LinkId l : path.links) w.U32(l.value());
}

topo::Path LoadPath(BinReader& r) {
  topo::Path path;
  const std::size_t node_count = r.Size();
  path.nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) path.nodes.push_back(NodeId{r.U32()});
  const std::size_t link_count = r.Size();
  path.links.reserve(link_count);
  for (std::size_t i = 0; i < link_count; ++i) path.links.push_back(LinkId{r.U32()});
  return path;
}

}  // namespace

void Network::SaveState(BinWriter& w) const {
  w.U32(TopologyFingerprint());
  flows_.SaveState(w);
  w.Vec(residual_, [](BinWriter& out, Mbps v) { out.F64(v); });
  w.Size(link_flows_.size());
  for (const auto& flows : link_flows_) {
    w.Vec(flows, [](BinWriter& out, std::uint32_t rep) {
      out.U64(rep);  // U64 on the wire for format stability
    });
  }
  // Used-paths table: distinct paths in first-use order over ascending flow
  // ids. Depends only on the logical state — never on PathRef numbering.
  std::unordered_map<std::uint32_t, std::size_t> table_index;
  std::vector<PathRef> table;
  std::vector<std::pair<std::uint64_t, std::size_t>> placed;  // id, index
  placed.reserve(placed_count_);
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    const PathRef ref = placements_[i];
    if (!ref.valid()) continue;
    const auto [it, inserted] = table_index.emplace(ref.value(), table.size());
    if (inserted) table.push_back(ref);
    placed.emplace_back(static_cast<std::uint64_t>(i), it->second);
  }
  w.Size(table.size());
  for (const PathRef ref : table) SavePath(w, registry_->Get(ref));
  w.Size(placed.size());
  for (const auto& [id, index] : placed) {
    w.U64(id);
    w.Size(index);
  }
  w.Vec(link_up_, [](BinWriter& out, char v) { out.U8(static_cast<std::uint8_t>(v)); });
  w.Vec(node_up_, [](BinWriter& out, char v) { out.U8(static_cast<std::uint8_t>(v)); });
  w.Size(down_links_);
  w.Size(down_nodes_);
  w.U64(epoch_);
  w.U64(state_epoch_);
}

void Network::LoadState(BinReader& r) {
  const std::uint32_t fingerprint = r.U32();
  NU_CHECK(fingerprint == TopologyFingerprint());
  flows_.LoadState(r);
  residual_ = r.Vec<Mbps>([](BinReader& in) { return in.F64(); });
  NU_CHECK(residual_.size() == graph_->link_count());
  const std::size_t link_count = r.Size();
  NU_CHECK(link_count == graph_->link_count());
  link_flows_.assign(link_count, {});
  for (std::size_t i = 0; i < link_count; ++i) {
    link_flows_[i] = r.Vec<std::uint32_t>([](BinReader& in) {
      const std::uint64_t rep = in.U64();
      NU_CHECK(rep < std::numeric_limits<std::uint32_t>::max());
      return static_cast<std::uint32_t>(rep);
    });
    NU_CHECK(std::is_sorted(link_flows_[i].begin(), link_flows_[i].end()));
  }
  // Re-intern the used-paths table into the live registry; ref VALUES are
  // allocated fresh here (and may differ from the saving run's), which is
  // fine — only path contents are state.
  const std::size_t table_size = r.Size();
  std::vector<PathRef> table;
  table.reserve(table_size);
  for (std::size_t i = 0; i < table_size; ++i) {
    table.push_back(registry_->Intern(LoadPath(r)));
  }
  placements_.assign(static_cast<std::size_t>(flows_.peek_next_id()),
                     PathRef::invalid());
  placed_count_ = 0;
  const std::size_t placed = r.Size();
  for (std::size_t i = 0; i < placed; ++i) {
    const std::uint64_t id = r.U64();
    const std::size_t index = r.Size();
    NU_CHECK(index < table.size());
    StorePlacement(FlowId{id}, table[index]);
  }
  link_up_ = r.Vec<char>([](BinReader& in) { return static_cast<char>(in.U8()); });
  node_up_ = r.Vec<char>([](BinReader& in) { return static_cast<char>(in.U8()); });
  NU_CHECK(link_up_.size() == graph_->link_count());
  NU_CHECK(node_up_.size() == graph_->node_count());
  down_links_ = r.Size();
  down_nodes_ = r.Size();
  epoch_ = r.U64();
  state_epoch_ = r.U64();
}

bool Network::CheckInvariants() const {
  // Recompute residuals from scratch.
  std::vector<Mbps> recomputed;
  recomputed.reserve(graph_->link_count());
  for (const topo::Link& l : graph_->links()) recomputed.push_back(l.capacity);
  bool placements_ok = true;
  std::size_t expected_entries = 0;
  ForEachPlacement([&](FlowId, const flow::Flow& f, const topo::Path& path) {
    if (!graph_->IsValidPath(path)) placements_ok = false;
    if (path.source() != f.src || path.destination() != f.dst) {
      placements_ok = false;
    }
    // No flow may keep occupying a failed link or switch.
    if (!PathAlive(path)) placements_ok = false;
    for (LinkId lid : path.links) recomputed[lid.value()] -= f.demand;
    expected_entries += path.links.size();
  });
  if (!placements_ok) return false;
  for (std::size_t i = 0; i < residual_.size(); ++i) {
    if (std::abs(recomputed[i] - residual_[i]) > 1e-3) return false;
    if (residual_[i] < -1e-3) return false;  // congestion-free invariant
  }
  // link_flows_ agrees with placements.
  std::size_t total_link_entries = 0;
  for (const auto& flows : link_flows_) {
    if (!std::is_sorted(flows.begin(), flows.end())) return false;
    total_link_entries += flows.size();
  }
  if (total_link_entries != expected_entries) return false;
  if (placed_count_ != flows_.size()) return false;
  return true;
}

}  // namespace nu::net
