// Admission helpers: given a flow demand and the candidate path set P(f),
// decide whether (and where) the flow fits without migrating anything.
// This is the primitive behind the paper's Fig. 1 (success probability of
// inserting a flow as utilization grows).
#pragma once

#include <optional>

#include "net/network_view.h"
#include "topo/path_provider.h"

namespace nu::net {

/// How to pick among multiple feasible paths.
enum class PathSelection : std::uint8_t {
  /// First feasible path in the provider's deterministic order.
  kFirstFit,
  /// Feasible path maximizing the bottleneck (minimum) residual — spreads
  /// load, the default for background traffic and update flows.
  kWidest,
  /// Feasible path minimizing the bottleneck residual that still fits —
  /// packs flows tightly, useful as an adversarial baseline.
  kBestFit,
};

/// Returns a feasible path for (src, dst, demand) under `selection`, or
/// nullptr when no candidate path has enough residual everywhere. The
/// returned path is owned by the provider (stable until its caches are
/// invalidated — within one planning pass). All candidates are scored in a
/// batched pass over gathered residual rows (net/residual_scan.h) with
/// thread-local arena scratch: no allocation, no optional<Path> deep copy.
/// Tie-breaks are bit-identical to the historical per-link scalar loop
/// (the kWidest total-residual tie-break sums in path-link order on
/// purpose — reassociating it would flip near-tie decisions).
[[nodiscard]] const topo::Path* FindFeasiblePathPtr(
    const NetworkView& network, const topo::PathProvider& paths, NodeId src,
    NodeId dst, Mbps demand, PathSelection selection = PathSelection::kWidest);

/// Copying convenience wrapper over FindFeasiblePathPtr; prefer the pointer
/// form on hot paths.
[[nodiscard]] std::optional<topo::Path> FindFeasiblePath(
    const NetworkView& network, const topo::PathProvider& paths, NodeId src,
    NodeId dst, Mbps demand, PathSelection selection = PathSelection::kWidest);

/// True iff some candidate path can carry `demand` with no migration.
[[nodiscard]] bool CanAdmit(const NetworkView& network,
                            const topo::PathProvider& paths, NodeId src,
                            NodeId dst, Mbps demand);

/// Bottleneck residual of a path: min residual over its links.
[[nodiscard]] Mbps BottleneckResidual(const NetworkView& network,
                                      const topo::Path& path);

/// The candidate path with the fewest congested links for `demand`; used as
/// the "desired path" on which the migration optimizer then works when no
/// path is outright feasible. Ties broken by larger bottleneck residual.
[[nodiscard]] const topo::Path& LeastCongestedPath(
    const NetworkView& network, const topo::PathProvider& paths, NodeId src,
    NodeId dst, Mbps demand);

}  // namespace nu::net
