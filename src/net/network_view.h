// Read and read-write interfaces over network state. Every planning
// algorithm (admission, migration, event planning, quick cost estimation)
// consumes these instead of the concrete Network, so a what-if probe can run
// against a copy-on-write NetworkOverlay (O(touched state)) exactly as it
// runs against the real Network or a deep copy — with bit-identical reads
// and therefore bit-identical decisions.
//
// The virtual methods are the primitives; CanPlace / CongestedLinks /
// CanReroute — and the link-membership reads FlowsOnLink / FlowCountOnLink /
// FlowUsesLink, which are derived from the allocation-free LinkFlowIds()
// span — are implemented once over the primitives so the overlay and the
// concrete network can never diverge on feasibility semantics.
#pragma once

#include <span>
#include <vector>

#include "flow/flow.h"
#include "topo/graph.h"
#include "topo/path_registry.h"

namespace nu::net {

class NetworkView {
 public:
  virtual ~NetworkView() = default;

  [[nodiscard]] virtual const topo::Graph& graph() const = 0;

  /// The path-interning registry this view's PathRefs resolve against.
  /// Shared by the base network, its copies, and every overlay stacked on
  /// it; append-only, so handing out a mutable reference from a const view
  /// is safe (interning never perturbs existing state).
  [[nodiscard]] virtual topo::PathRegistry& path_registry() const = 0;

  /// Residual bandwidth c_{i,j} of a link.
  [[nodiscard]] virtual Mbps Residual(LinkId link) const = 0;

  /// Contiguous per-link residual array indexed by LinkId value, or nullptr
  /// when this view cannot expose one (copy-on-write overlays patch
  /// residuals sparsely). Non-null means element i bitwise-equals
  /// Residual(LinkId{i}) for every link, so the SoA scan kernels
  /// (net/residual_scan.h) read it directly; callers must keep a
  /// Residual()-based fallback for views that return nullptr. Valid until
  /// the next mutation of this view.
  [[nodiscard]] virtual const Mbps* ResidualData() const { return nullptr; }

  [[nodiscard]] virtual bool LinkUp(LinkId link) const = 0;
  [[nodiscard]] virtual bool NodeUp(NodeId node) const = 0;

  /// True when every link and node of `path` is up.
  [[nodiscard]] virtual bool PathAlive(const topo::Path& path) const = 0;

  /// True when a flow with this id is placed in this view.
  [[nodiscard]] virtual bool HasFlow(FlowId id) const = 0;

  /// Read access to a placed flow's descriptor. Requires HasFlow(id).
  [[nodiscard]] virtual const flow::Flow& FlowOf(FlowId id) const = 0;

  /// Interned ref of a placed flow's current path. Requires HasFlow(id).
  [[nodiscard]] virtual PathRef PathRefOf(FlowId id) const = 0;

  /// Raw ids of flows currently traversing `link`, ascending, with no
  /// allocation or copy. Valid until the next mutation of this view.
  [[nodiscard]] virtual std::span<const std::uint32_t> LinkFlowIds(
      LinkId link) const = 0;

  /// Exclusive upper bound on the flow ids this view would assign next: a
  /// Place here (or in any overlay stacked on this view) allocates exactly
  /// this id. Chaining the bound through overlays keeps what-if flow ids
  /// numerically identical to the ids a deep copy would have assigned —
  /// P-LMTF's co-feasibility ownership checks depend on that.
  [[nodiscard]] virtual FlowId::rep_type FlowIdUpperBound() const = 0;

  // --- Derived helpers (shared semantics for Network and overlays) --------

  /// Current path of a placed flow. Requires HasFlow(id). The reference is
  /// owned by the shared registry and outlives this view.
  [[nodiscard]] const topo::Path& PathOf(FlowId id) const {
    return path_registry().Get(PathRefOf(id));
  }

  /// Ids of flows currently traversing `link` (ascending id order).
  /// Materializes a vector; hot paths should use LinkFlowIds().
  [[nodiscard]] std::vector<FlowId> FlowsOnLink(LinkId link) const;

  /// Number of flows currently traversing `link`.
  [[nodiscard]] std::size_t FlowCountOnLink(LinkId link) const {
    return LinkFlowIds(link).size();
  }

  /// True when `flow` crosses `link`. Binary search over the sorted span.
  [[nodiscard]] bool FlowUsesLink(FlowId flow, LinkId link) const;

  /// True iff `path` is alive and every link has residual >= demand
  /// (within epsilon).
  [[nodiscard]] bool CanPlace(Mbps demand, const topo::Path& path) const;

  /// Links of `path` whose residual is below `demand` — the congested set
  /// E^c of Definition 1.
  [[nodiscard]] std::vector<LinkId> CongestedLinks(
      Mbps demand, const topo::Path& path) const;

  /// True iff `new_path` could carry the flow once its own occupancy on
  /// shared links is released — the feasibility predicate of Reroute.
  /// Requires HasFlow(id).
  [[nodiscard]] bool CanReroute(FlowId id, const topo::Path& new_path) const;
};

/// A view that also accepts the three state mutations planning needs. The
/// concrete Network and the copy-on-write NetworkOverlay both implement it,
/// so the planner's mutation core runs unchanged against either.
class MutableNetwork : public NetworkView {
 public:
  /// Registers and places a flow on `path`. Requires feasibility
  /// (CanPlace). Returns the assigned flow id.
  virtual FlowId Place(flow::Flow flow, const topo::Path& path) = 0;

  /// Moves an existing flow to `new_path`. Requires the flow to exist and
  /// the move to be feasible under self-release.
  virtual void Reroute(FlowId id, const topo::Path& new_path) = 0;

  /// Removes a flow, releasing its bandwidth.
  virtual void Remove(FlowId id) = 0;
};

}  // namespace nu::net
