// NetworkOverlay: a copy-on-write delta view over any NetworkView. Reads
// fall through to the base until a link or flow is touched by a mutation;
// from then on the overlay serves its own patched value. This makes a
// what-if probe O(state it touches) instead of O(total network state) —
// the deep copies that used to dominate LMTF/P-LMTF probe cost disappear.
//
// Determinism contract: every read an overlay serves is bit-identical to
// the read a deep copy would have served after the same mutation sequence.
//   * Residual patches store ABSOLUTE values seeded from the base on first
//     touch; subsequent +/- demand operations happen in the same order as
//     they would on a copy, so IEEE arithmetic is identical.
//   * Flow ids are allocated from the base's FlowIdUpperBound(), so the ids
//     a probe assigns match the ids a deep copy would have assigned.
//   * Link-flow patches mirror Network's canonical ascending id lists
//     (sorted insert/erase), served as allocation-free spans.
//   * Paths are stored as PathRefs into the registry shared with the base,
//     so resolved references are identical objects.
//
// Overlays compose: an overlay over an overlay works (the event planner
// stacks one for migration what-ifs inside a co-feasibility scratch).
// The base must outlive the overlay and must not mutate while the overlay
// is alive — probes run against a network frozen for the round.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network_view.h"

namespace nu::net {

class NetworkOverlay final : public MutableNetwork {
 public:
  explicit NetworkOverlay(const NetworkView& base);

  [[nodiscard]] const topo::Graph& graph() const override {
    return base_->graph();
  }
  [[nodiscard]] topo::PathRegistry& path_registry() const override {
    return base_->path_registry();
  }
  [[nodiscard]] Mbps Residual(LinkId link) const override;
  [[nodiscard]] bool LinkUp(LinkId link) const override {
    return base_->LinkUp(link);
  }
  [[nodiscard]] bool NodeUp(NodeId node) const override {
    return base_->NodeUp(node);
  }
  [[nodiscard]] bool PathAlive(const topo::Path& path) const override {
    return base_->PathAlive(path);
  }
  [[nodiscard]] bool HasFlow(FlowId id) const override;
  [[nodiscard]] const flow::Flow& FlowOf(FlowId id) const override;
  [[nodiscard]] PathRef PathRefOf(FlowId id) const override;
  [[nodiscard]] std::span<const std::uint32_t> LinkFlowIds(
      LinkId link) const override;
  [[nodiscard]] FlowId::rep_type FlowIdUpperBound() const override {
    return next_id_;
  }

  FlowId Place(flow::Flow flow, const topo::Path& path) override;
  void Reroute(FlowId id, const topo::Path& new_path) override;
  void Remove(FlowId id) override;

  [[nodiscard]] const NetworkView& base() const { return *base_; }

  /// Rough byte footprint of the delta this overlay holds — what a probe
  /// actually allocated instead of a full copy.
  [[nodiscard]] std::size_t ApproxDeltaBytes() const;

 private:
  /// Absolute residual slot for `link`, seeded from the base on first touch.
  Mbps& ResidualSlot(LinkId link);
  /// Materialized flow list for `link`, seeded from the base on first touch.
  std::vector<std::uint32_t>& LinkFlowsSlot(LinkId link);
  void Occupy(const topo::Path& path, Mbps demand, FlowId id);
  void Release(const topo::Path& path, Mbps demand, FlowId id);

  const NetworkView* base_;
  std::unordered_map<LinkId::rep_type, Mbps> residual_;
  std::unordered_map<LinkId::rep_type, std::vector<std::uint32_t>> link_flows_;
  /// Flows placed through this overlay (not known to the base).
  std::unordered_map<FlowId::rep_type, flow::Flow> added_flows_;
  /// Path refs of added flows and of rerouted base flows.
  std::unordered_map<FlowId::rep_type, PathRef> paths_;
  /// Base flows removed through this overlay.
  std::unordered_set<FlowId::rep_type> removed_;
  FlowId::rep_type next_id_ = 0;
};

}  // namespace nu::net
