// Vectorizable kernels over flat per-link rows (structure-of-arrays): the
// inner arithmetic of congested-link detection, candidate scoring, and the
// auditor's capacity scan, factored out of the virtual NetworkView walkers.
// Callers gather a path's residuals into a contiguous row (straight indexed
// loads when the view exposes ResidualData(), memoized virtual reads
// otherwise) and reduce the row with these kernels.
//
// Two implementations ship in one translation unit:
//   * nu::net::scalar::* — the reference loops, always compiled, used by the
//     differential tests and as the dispatch target when NU_SIMD is OFF;
//   * explicit SSE2/AVX2 paths selected at build time by the NU_SIMD CMake
//     option (see src/CMakeLists.txt), reached through the unqualified
//     entry points below.
//
// Every kernel is bit-identical across backends by construction: the only
// float operations are comparisons, subtraction, min and max — all exactly
// rounded and order-insensitive here (the max/min reductions are over exact
// values, and "first index attaining the max" is recovered by an exact
// equality rescan). No FMA contraction, no reassociated sums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace nu::net {

/// Worst single-link shortfall of placing `demand` on a gathered row.
/// A row position is congested iff row[i] + kBandwidthEpsilon < demand
/// (the complement of ApproxGe, matching NetworkView::CongestedLinks);
/// its deficit is demand - row[i]. `deficit` is 0 when nothing is
/// congested; otherwise `index`/`residual` identify the FIRST position
/// attaining the maximum deficit (strict-greater scan order).
struct WorstDeficit {
  Mbps deficit = 0.0;
  std::size_t index = 0;
  Mbps residual = 0.0;
};

/// Backend compiled into the unqualified entry points:
/// "avx2", "sse2", or "scalar".
[[nodiscard]] const char* SimdBackend();

/// out[i] = soa[links[i]] for every position of the path's link row.
void GatherResiduals(const Mbps* soa, std::span<const LinkId> links,
                     Mbps* out);

/// Number of congested positions (see WorstDeficit for the predicate).
[[nodiscard]] std::size_t CountCongested(const Mbps* row, std::size_t n,
                                         Mbps demand);

/// Worst-link deficit over the row (see WorstDeficit).
[[nodiscard]] WorstDeficit MaxDeficit(const Mbps* row, std::size_t n,
                                      Mbps demand);

/// Minimum over the row; +infinity for an empty row (BottleneckResidual
/// semantics).
[[nodiscard]] Mbps MinValue(const Mbps* row, std::size_t n);

/// Appends to `flagged` the ascending indices i in [0, n) where the
/// auditor's capacity invariants fire:
///   |(capacity[i] - load[i]) - residual[i]| > eps, or (when overcommit is
///   not allowed) load[i] > capacity[i] + eps or residual[i] < -eps.
/// `index_base` is added to every emitted index (sharded slice scans pass
/// their range start).
void ScanCapacityViolations(const Mbps* residual, const Mbps* load,
                            const Mbps* capacity, std::size_t n,
                            bool allow_overcommit, double eps,
                            std::uint32_t index_base,
                            std::vector<std::uint32_t>& flagged);

/// Reference implementations (always scalar, never intrinsic). The
/// dispatch functions above must agree with these bitwise on every input —
/// tests/update/batched_scoring_test.cc enforces it.
namespace scalar {
void GatherResiduals(const Mbps* soa, std::span<const LinkId> links,
                     Mbps* out);
[[nodiscard]] std::size_t CountCongested(const Mbps* row, std::size_t n,
                                         Mbps demand);
[[nodiscard]] WorstDeficit MaxDeficit(const Mbps* row, std::size_t n,
                                      Mbps demand);
[[nodiscard]] Mbps MinValue(const Mbps* row, std::size_t n);
void ScanCapacityViolations(const Mbps* residual, const Mbps* load,
                            const Mbps* capacity, std::size_t n,
                            bool allow_overcommit, double eps,
                            std::uint32_t index_base,
                            std::vector<std::uint32_t>& flagged);
}  // namespace scalar

}  // namespace nu::net
