#include "net/network_view.h"

#include <algorithm>

#include "common/check.h"
#include "common/types.h"

namespace nu::net {

std::vector<FlowId> NetworkView::FlowsOnLink(LinkId link) const {
  const std::span<const std::uint32_t> ids = LinkFlowIds(link);
  std::vector<FlowId> flows;
  flows.reserve(ids.size());
  for (const std::uint32_t rep : ids) flows.push_back(FlowId{rep});
  return flows;
}

bool NetworkView::FlowUsesLink(FlowId flow, LinkId link) const {
  const std::span<const std::uint32_t> ids = LinkFlowIds(link);
  const auto rep = static_cast<std::uint32_t>(flow.value());
  if (rep != flow.value()) return false;  // ids beyond 2^32 are never stored
  return std::binary_search(ids.begin(), ids.end(), rep);
}

bool NetworkView::CanPlace(Mbps demand, const topo::Path& path) const {
  if (!PathAlive(path)) return false;
  for (LinkId lid : path.links) {
    if (!ApproxGe(Residual(lid), demand)) return false;
  }
  return true;
}

std::vector<LinkId> NetworkView::CongestedLinks(Mbps demand,
                                                const topo::Path& path) const {
  std::vector<LinkId> congested;
  for (LinkId lid : path.links) {
    if (!ApproxGe(Residual(lid), demand)) congested.push_back(lid);
  }
  return congested;
}

bool NetworkView::CanReroute(FlowId id, const topo::Path& new_path) const {
  NU_EXPECTS(HasFlow(id));
  const flow::Flow& f = FlowOf(id);
  if (new_path.source() != f.src || new_path.destination() != f.dst) {
    return false;
  }
  if (!PathAlive(new_path)) return false;
  for (LinkId lid : new_path.links) {
    Mbps residual = Residual(lid);
    if (FlowUsesLink(id, lid)) residual += f.demand;
    if (!ApproxGe(residual, f.demand)) return false;
  }
  return true;
}

}  // namespace nu::net
