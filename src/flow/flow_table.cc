#include "flow/flow_table.h"

#include <algorithm>

#include "common/check.h"

namespace nu::flow {

FlowId FlowTable::Add(Flow flow) {
  const FlowId id{next_id_++};
  flow.id = id;
  NU_EXPECTS(flow.demand > 0.0);
  NU_EXPECTS(flow.duration >= 0.0);
  NU_EXPECTS(flow.src != flow.dst);
  flows_.emplace(id.value(), std::move(flow));
  return id;
}

void FlowTable::Remove(FlowId id) {
  const auto erased = flows_.erase(id.value());
  NU_EXPECTS(erased == 1);
}

bool FlowTable::Contains(FlowId id) const {
  return flows_.contains(id.value());
}

const Flow& FlowTable::Get(FlowId id) const {
  const auto it = flows_.find(id.value());
  NU_EXPECTS(it != flows_.end());
  return it->second;
}

Flow& FlowTable::GetMutable(FlowId id) {
  const auto it = flows_.find(id.value());
  NU_EXPECTS(it != flows_.end());
  return it->second;
}

std::vector<FlowId> FlowTable::Ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [rep, _] : flows_) ids.push_back(FlowId{rep});
  std::sort(ids.begin(), ids.end());
  return ids;
}

Mbps FlowTable::TotalDemand() const {
  Mbps total = 0.0;
  for (const auto& [_, f] : flows_) total += f.demand;
  return total;
}

void FlowTable::SaveState(BinWriter& w) const {
  w.U64(next_id_);
  w.Size(flows_.size());
  for (FlowId id : Ids()) {  // ascending ids => canonical byte stream
    const Flow& f = flows_.at(id.value());
    w.U64(f.id.value());
    w.U32(f.src.value());
    w.U32(f.dst.value());
    w.F64(f.demand);
    w.F64(f.duration);
    w.U8(static_cast<std::uint8_t>(f.origin));
    w.U64(f.event.value());
  }
}

void FlowTable::LoadState(BinReader& r) {
  flows_.clear();
  next_id_ = r.U64();
  const std::size_t count = r.Size();
  flows_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Flow f;
    f.id = FlowId{r.U64()};
    f.src = NodeId{r.U32()};
    f.dst = NodeId{r.U32()};
    f.demand = r.F64();
    f.duration = r.F64();
    f.origin = static_cast<FlowOrigin>(r.U8());
    f.event = EventId{r.U64()};
    NU_CHECK(f.id.value() < next_id_);
    const auto [_, inserted] = flows_.emplace(f.id.value(), std::move(f));
    NU_CHECK(inserted);
  }
}

}  // namespace nu::flow
