#include "flow/flow_table.h"

#include <algorithm>

#include "common/check.h"

namespace nu::flow {

FlowId FlowTable::Add(Flow flow) {
  const FlowId id{next_id_++};
  flow.id = id;
  NU_EXPECTS(flow.demand > 0.0);
  NU_EXPECTS(flow.duration >= 0.0);
  NU_EXPECTS(flow.src != flow.dst);
  flows_.emplace(id.value(), std::move(flow));
  return id;
}

void FlowTable::Remove(FlowId id) {
  const auto erased = flows_.erase(id.value());
  NU_EXPECTS(erased == 1);
}

bool FlowTable::Contains(FlowId id) const {
  return flows_.contains(id.value());
}

const Flow& FlowTable::Get(FlowId id) const {
  const auto it = flows_.find(id.value());
  NU_EXPECTS(it != flows_.end());
  return it->second;
}

Flow& FlowTable::GetMutable(FlowId id) {
  const auto it = flows_.find(id.value());
  NU_EXPECTS(it != flows_.end());
  return it->second;
}

std::vector<FlowId> FlowTable::Ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [rep, _] : flows_) ids.push_back(FlowId{rep});
  std::sort(ids.begin(), ids.end());
  return ids;
}

Mbps FlowTable::TotalDemand() const {
  Mbps total = 0.0;
  for (const auto& [_, f] : flows_) total += f.demand;
  return total;
}

}  // namespace nu::flow
