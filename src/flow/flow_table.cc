#include "flow/flow_table.h"

#include <limits>

namespace nu::flow {

FlowId FlowTable::Add(Flow flow) {
  // Dense stores keep 32-bit flow ids in link lists; the allocator staying
  // below 2^32 is a structural property (a run allocating 4 billion flows
  // is far past any supported scale), checked rather than assumed.
  NU_CHECK(next_id_ < std::numeric_limits<std::uint32_t>::max());
  const FlowId id{next_id_++};
  flow.id = id;
  NU_EXPECTS(flow.demand > 0.0);
  NU_EXPECTS(flow.duration >= 0.0);
  NU_EXPECTS(flow.src != flow.dst);
  slots_.push_back(std::move(flow));
  ++live_;
  return id;
}

void FlowTable::Remove(FlowId id) {
  NU_EXPECTS(Contains(id));
  slots_[static_cast<std::size_t>(id.value())] = Flow{};  // tombstone
  --live_;
}

std::vector<FlowId> FlowTable::Ids() const {
  std::vector<FlowId> ids;
  ids.reserve(live_);
  ForEach([&ids](const Flow& f) { ids.push_back(f.id); });
  return ids;
}

Mbps FlowTable::TotalDemand() const {
  Mbps total = 0.0;
  ForEach([&total](const Flow& f) { total += f.demand; });
  return total;
}

std::size_t FlowTable::ApproxBytes() const {
  return slots_.size() * sizeof(Flow);
}

void FlowTable::SaveState(BinWriter& w) const {
  w.U64(next_id_);
  w.Size(live_);
  ForEach([&w](const Flow& f) {  // ascending ids => canonical byte stream
    w.U64(f.id.value());
    w.U32(f.src.value());
    w.U32(f.dst.value());
    w.F64(f.demand);
    w.F64(f.duration);
    w.U8(static_cast<std::uint8_t>(f.origin));
    w.U64(f.event.value());
  });
}

void FlowTable::LoadState(BinReader& r) {
  slots_.clear();
  live_ = 0;
  next_id_ = r.U64();
  NU_CHECK(next_id_ < std::numeric_limits<std::uint32_t>::max());
  slots_.resize(static_cast<std::size_t>(next_id_));
  const std::size_t count = r.Size();
  for (std::size_t i = 0; i < count; ++i) {
    Flow f;
    f.id = FlowId{r.U64()};
    f.src = NodeId{r.U32()};
    f.dst = NodeId{r.U32()};
    f.demand = r.F64();
    f.duration = r.F64();
    f.origin = static_cast<FlowOrigin>(r.U8());
    f.event = EventId{r.U64()};
    NU_CHECK(f.id.value() < next_id_);
    Flow& slot = slots_[static_cast<std::size_t>(f.id.value())];
    NU_CHECK(!slot.id.valid());  // duplicate id in stream
    slot = std::move(f);
    ++live_;
  }
}

}  // namespace nu::flow
