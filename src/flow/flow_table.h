// FlowTable owns flow descriptors and allocates ids. The network layer
// references flows by id only; the table is the single source of truth for
// flow attributes (endpoints, demand, duration, origin).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/binio.h"
#include "flow/flow.h"

namespace nu::flow {

class FlowTable {
 public:
  FlowTable() = default;

  /// Registers a flow; assigns and returns its id (ignores flow.id on input).
  FlowId Add(Flow flow);

  /// Removes a flow. Requires the flow to exist.
  void Remove(FlowId id);

  [[nodiscard]] bool Contains(FlowId id) const;
  [[nodiscard]] const Flow& Get(FlowId id) const;
  [[nodiscard]] Flow& GetMutable(FlowId id);

  [[nodiscard]] std::size_t size() const { return flows_.size(); }

  /// Snapshot of current flow ids (stable iteration order: ascending id).
  [[nodiscard]] std::vector<FlowId> Ids() const;

  /// The id the next Add() will assign (ids are never reused). Lets
  /// what-if overlays allocate ids numerically identical to the ids a copy
  /// of this table would have assigned.
  [[nodiscard]] FlowId::rep_type peek_next_id() const { return next_id_; }

  /// Sum of demands of all registered flows (Mbps).
  [[nodiscard]] Mbps TotalDemand() const;

  /// Serializes the full table (flows in ascending-id order + the id
  /// allocator) for checkpointing.
  void SaveState(BinWriter& w) const;

  /// Restores a table serialized by SaveState, replacing all contents.
  void LoadState(BinReader& r);

 private:
  std::unordered_map<FlowId::rep_type, Flow> flows_;
  FlowId::rep_type next_id_ = 0;
};

}  // namespace nu::flow
