// FlowTable owns flow descriptors and allocates ids. The network layer
// references flows by id only; the table is the single source of truth for
// flow attributes (endpoints, demand, duration, origin).
//
// Storage is a dense id-indexed slot store: ids are monotonic and never
// reused, so flow i lives in slot i and every lookup is O(1) indexing with
// no hashing. Slots are deque chunks, not one vector, so references handed
// out by Get()/FlowOf() stay valid across later Add() calls (the legacy
// unordered_map gave the same stability guarantee). A slot whose flow
// departed keeps only its invalid-id tombstone.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/binio.h"
#include "common/check.h"
#include "flow/flow.h"

namespace nu::flow {

class FlowTable {
 public:
  FlowTable() = default;

  /// Registers a flow; assigns and returns its id (ignores flow.id on input).
  FlowId Add(Flow flow);

  /// Removes a flow. Requires the flow to exist.
  void Remove(FlowId id);

  [[nodiscard]] bool Contains(FlowId id) const {
    return id.value() < slots_.size() &&
           slots_[static_cast<std::size_t>(id.value())].id.valid();
  }

  [[nodiscard]] const Flow& Get(FlowId id) const {
    NU_EXPECTS(Contains(id));
    return slots_[static_cast<std::size_t>(id.value())];
  }

  [[nodiscard]] Flow& GetMutable(FlowId id) {
    NU_EXPECTS(Contains(id));
    return slots_[static_cast<std::size_t>(id.value())];
  }

  [[nodiscard]] std::size_t size() const { return live_; }

  /// Snapshot of current flow ids (stable iteration order: ascending id).
  [[nodiscard]] std::vector<FlowId> Ids() const;

  /// Calls `fn(const Flow&)` for every live flow in ascending-id order.
  /// Cache-linear slot scan, no allocation.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Flow& f : slots_) {
      if (f.id.valid()) fn(f);
    }
  }

  /// The id the next Add() will assign (ids are never reused). Lets
  /// what-if overlays allocate ids numerically identical to the ids a copy
  /// of this table would have assigned.
  [[nodiscard]] FlowId::rep_type peek_next_id() const { return next_id_; }

  /// Sum of demands of all registered flows (Mbps).
  [[nodiscard]] Mbps TotalDemand() const;

  /// Honest byte footprint of the slot store (live and tombstoned slots —
  /// the high-water cost a deep copy would duplicate).
  [[nodiscard]] std::size_t ApproxBytes() const;

  /// Serializes the full table (flows in ascending-id order + the id
  /// allocator) for checkpointing.
  void SaveState(BinWriter& w) const;

  /// Restores a table serialized by SaveState, replacing all contents.
  void LoadState(BinReader& r);

 private:
  /// Slot i holds the flow with id i, or a default Flow (invalid id) if
  /// that flow departed or was never assigned. size() == next_id_.
  std::deque<Flow> slots_;
  std::size_t live_ = 0;
  FlowId::rep_type next_id_ = 0;
};

}  // namespace nu::flow
