// The flow model. A Flow is the unit the paper's abstraction composes:
// background traffic, the new flows of an update event, and migrated flows
// are all Flows. A flow is unsplittable (single path) per the paper's
// congestion-free constraints in Section III-A.
#pragma once

#include <ostream>

#include "common/types.h"
#include "topo/graph.h"

namespace nu::flow {

/// Why a flow exists — used by reports and by event generators.
enum class FlowOrigin : std::uint8_t {
  kBackground,   // injected background traffic
  kUpdateEvent,  // a new flow belonging to an update event
  kMigrated,     // an existing flow moved by the migration optimizer
};

[[nodiscard]] const char* ToString(FlowOrigin origin);

struct Flow {
  FlowId id;
  NodeId src;
  NodeId dst;
  /// Bandwidth demand d^f in Mbps. The flow consumes exactly this much on
  /// every link of its path (unsplit, constant-rate model).
  Mbps demand = 0.0;
  /// Remaining transmission time at `demand` rate, in seconds.
  Seconds duration = 0.0;
  FlowOrigin origin = FlowOrigin::kBackground;
  /// Event this flow belongs to; invalid for background flows.
  EventId event = EventId::invalid();

  /// Traffic volume carried over the whole lifetime (Mb).
  [[nodiscard]] Megabits volume() const { return demand * duration; }
};

std::ostream& operator<<(std::ostream& os, const Flow& flow);

}  // namespace nu::flow
