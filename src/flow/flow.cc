#include "flow/flow.h"

namespace nu::flow {

const char* ToString(FlowOrigin origin) {
  switch (origin) {
    case FlowOrigin::kBackground:
      return "background";
    case FlowOrigin::kUpdateEvent:
      return "update-event";
    case FlowOrigin::kMigrated:
      return "migrated";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Flow& flow) {
  return os << "flow{" << flow.id << " " << flow.src << "->" << flow.dst
            << " " << flow.demand << "Mbps " << flow.duration << "s "
            << ToString(flow.origin) << "}";
}

}  // namespace nu::flow
