// Configuration-transition planning: order a batch of per-flow reroutes so
// that EVERY intermediate state is congestion-free (Dionysus-style
// dependency-aware migration, cited by the paper as "dynamic scheduling of
// network updates"). Given target paths for a set of placed flows, the
// planner emits a step sequence (one reroute per step), greedily moving any
// flow whose target currently fits and, on deadlock (flows whose targets
// mutually occupy each other's capacity), breaking the cycle with a detour
// through a third path when one exists.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "topo/path_provider.h"

namespace nu::update {

/// One reroute of the transition sequence.
struct TransitionStep {
  FlowId flow;
  topo::Path path;
  /// True when this step parks the flow on an intermediate path (deadlock
  /// break) rather than its final target.
  bool detour = false;
};

struct TransitionPlan {
  /// True when every flow reached its target path.
  bool complete = false;
  std::vector<TransitionStep> steps;
  /// Flows left off their targets when incomplete.
  std::vector<FlowId> stuck;

  [[nodiscard]] std::size_t DetourCount() const;
};

struct TransitionOptions {
  /// Attempt deadlock-breaking detours through alternate provider paths.
  bool allow_detours = true;
  /// Bound on greedy rounds (each round scans all pending flows).
  std::size_t max_rounds = 64;
};

/// Target configuration: flow -> desired final path.
using TargetConfig = std::unordered_map<FlowId::rep_type, topo::Path>;

/// Plans against a copy of `network` (pure). Every step of the returned
/// plan is feasible when applied in order from the starting state.
[[nodiscard]] TransitionPlan PlanTransition(
    const net::Network& network, const topo::PathProvider& paths,
    const TargetConfig& targets, const TransitionOptions& options = {});

/// Applies a plan's steps in order to the live network. Aborts if a step is
/// infeasible (the plan must have been computed against this state).
void ApplyTransition(net::Network& network, const TransitionPlan& plan);

/// Drain plan for a switch upgrade: targets every flow crossing `node` at
/// its widest candidate path avoiding the node, then plans the
/// congestion-free transition. Flows with no avoiding path (e.g. behind a
/// single-homed edge switch) are reported in `stuck` without being moved.
[[nodiscard]] TransitionPlan PlanNodeDrain(
    const net::Network& network, const topo::PathProvider& paths, NodeId node,
    const TransitionOptions& options = {});

}  // namespace nu::update
