// Update-event construction: the synthetic heterogeneous/synchronous event
// workloads of the evaluation (events of 10-100 or 50-60 flows drawn from a
// traffic generator), plus domain builders for the update triggers the paper
// motivates — switch upgrades (reroute everything crossing a switch) and VM
// migrations (bulk state-copy flows).
#pragma once

#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "trace/generator.h"
#include "update/update_event.h"

namespace nu::update {

struct SyntheticEventConfig {
  /// Flows per event drawn uniformly from [min_flows, max_flows]; the
  /// paper's heterogeneous events use [10, 100], synchronous ones [50, 60].
  std::size_t min_flows = 10;
  std::size_t max_flows = 100;
  EventKind kind = EventKind::kGeneric;
};

/// Generates update events whose flows come from a TrafficGenerator.
/// Owns the event-id counter so ids are unique per generator.
class EventGenerator {
 public:
  EventGenerator(trace::TrafficGenerator& flow_source, Rng rng);

  /// One event arriving at `arrival_time`.
  [[nodiscard]] UpdateEvent Next(Seconds arrival_time,
                                 const SyntheticEventConfig& config);

  /// `count` events with i.i.d. exponential inter-arrival gaps of mean
  /// `mean_interarrival` (0 = all arrive at t=0, the paper's queue setup).
  [[nodiscard]] std::vector<UpdateEvent> Batch(
      std::size_t count, const SyntheticEventConfig& config,
      Seconds mean_interarrival = 0.0);

 private:
  trace::TrafficGenerator& flow_source_;
  Rng rng_;
  EventId::rep_type next_id_ = 0;
};

/// Ids of placed flows whose path crosses `node` (through any incident
/// link). Basis for switch-upgrade events.
[[nodiscard]] std::vector<FlowId> FlowsThroughNode(const net::Network& network,
                                                   NodeId node);

/// Builds a switch-upgrade event: its flows are replacements for every
/// existing flow crossing `switch_node` (same endpoints/demand/duration).
/// The caller removes the originals (see RemoveFlows) before executing the
/// event with a planner whose path provider avoids the switch.
[[nodiscard]] UpdateEvent MakeSwitchUpgradeEvent(EventId id,
                                                 Seconds arrival_time,
                                                 const net::Network& network,
                                                 NodeId switch_node);

/// Removes the given flows from the network (releasing their bandwidth).
void RemoveFlows(net::Network& network, const std::vector<FlowId>& flows);

struct VmMigrationConfig {
  /// Number of parallel state-transfer streams per VM.
  std::size_t streams = 4;
  /// Per-stream demand (Mbps).
  Mbps stream_demand = 100.0;
  /// VM memory volume to copy (Mb) — determines stream durations.
  Megabits vm_volume = 8000.0;
};

/// Builds a VM-migration event: `streams` equal flows from the old host to
/// the new host sized so their combined volume equals vm_volume.
[[nodiscard]] UpdateEvent MakeVmMigrationEvent(EventId id, Seconds arrival_time,
                                               NodeId old_host, NodeId new_host,
                                               const VmMigrationConfig& config);

/// Ids of placed flows whose path crosses `link` (either direction of the
/// cable). Basis for link-failure events.
[[nodiscard]] std::vector<FlowId> FlowsThroughLink(const net::Network& network,
                                                   LinkId link);

/// Builds a link-failure event: replacement flows for every existing flow
/// crossing the failed cable (both directions). The caller removes the
/// originals (RemoveFlows) and executes the event with a planner whose path
/// provider avoids the link (topo::LinkAvoidingPathProvider).
[[nodiscard]] UpdateEvent MakeLinkFailureEvent(EventId id,
                                               Seconds arrival_time,
                                               const net::Network& network,
                                               LinkId failed_link);

/// Builds a switch-failure event: replacement flows for every existing flow
/// crossing `failed_node`. Unlike a switch upgrade (planned maintenance),
/// the switch is already dead — the caller removes the originals and
/// executes the event with a provider that avoids the node (either
/// topo::NodeAvoidingPathProvider or a fault-aware PredicatePathProvider).
[[nodiscard]] UpdateEvent MakeSwitchFailureEvent(EventId id,
                                                 Seconds arrival_time,
                                                 const net::Network& network,
                                                 NodeId failed_node);

}  // namespace nu::update
