#include "update/planner.h"

#include "common/check.h"

namespace nu::update {

std::size_t EventPlan::placeable_count() const {
  std::size_t count = 0;
  for (const FlowAction& a : actions) {
    if (a.placeable) ++count;
  }
  return count;
}

EventPlanner::EventPlanner(const topo::PathProvider& paths,
                           MigrationOptions migration_options,
                           net::PathSelection path_selection)
    : paths_(paths),
      optimizer_(paths, migration_options),
      path_selection_(path_selection) {}

EventPlan EventPlanner::PlanInto(net::MutableNetwork& state,
                                 const UpdateEvent& event,
                                 std::vector<FlowId>* placed_ids,
                                 bool legacy_migration) const {
  EventPlan plan;
  plan.event = event.id();
  plan.actions.reserve(event.flow_count());
  bool all_placeable = true;

  for (std::size_t i = 0; i < event.flow_count(); ++i) {
    const flow::Flow& f = event.flows()[i];
    FlowAction action;
    action.flow_index = i;

    // 1. Direct admission on a feasible path, if one exists.
    if (const topo::Path* direct = net::FindFeasiblePathPtr(
            state, paths_, f.src, f.dst, f.demand, path_selection_)) {
      action.path = state.path_registry().Intern(*direct);
      action.migration.feasible = true;
      action.placeable = true;
    } else if (paths_.Paths(f.src, f.dst).empty()) {
      // No candidate paths at all (every path dead under fault injection):
      // the flow must wait for the topology to heal.
      action.placeable = false;
      all_placeable = false;
    } else {
      // 2. Locally migrate existing flows off the least congested candidate
      //    path (Definition 1).
      const topo::Path& desired =
          net::LeastCongestedPath(state, paths_, f.src, f.dst, f.demand);
      MigrationPlan migration;
      if (legacy_migration) {
        const auto* concrete = dynamic_cast<const net::Network*>(&state);
        NU_CHECK(concrete != nullptr);
        migration = optimizer_.PlanDeepCopy(*concrete, f.demand, desired);
      } else {
        migration = optimizer_.Plan(state, f.demand, desired);
      }
      if (migration.feasible) {
        action.path = state.path_registry().Intern(desired);
        action.migration = std::move(migration);
        action.placeable = true;
        ++plan.flows_needing_migration;
        plan.migrated_traffic += action.migration.migrated_traffic;
        plan.migration_moves += action.migration.moves.size();
      } else {
        action.placeable = false;
        all_placeable = false;
      }
    }

    if (action.placeable) {
      MigrationOptimizer::Apply(state, action.migration);
      const FlowId id = state.Place(f, state.path_registry().Get(action.path));
      if (placed_ids != nullptr) placed_ids->push_back(id);
    }
    plan.actions.push_back(std::move(action));
  }

  plan.fully_feasible = all_placeable;
  return plan;
}

EventPlan EventPlanner::Plan(const net::NetworkView& network,
                             const UpdateEvent& event) const {
  net::NetworkOverlay scratch(network);
  return PlanInto(scratch, event, nullptr);
}

EventPlan EventPlanner::PlanLegacyCopy(const net::Network& network,
                                       const UpdateEvent& event) const {
  net::Network scratch = network;
  return PlanInto(scratch, event, nullptr, /*legacy_migration=*/true);
}

ExecutionResult EventPlanner::Execute(net::MutableNetwork& network,
                                      const UpdateEvent& event,
                                      bool legacy_migration) const {
  ExecutionResult result;
  result.plan =
      PlanInto(network, event, &result.placed_flows, legacy_migration);
  for (const FlowAction& action : result.plan.actions) {
    if (!action.placeable) result.deferred_flows.push_back(action.flow_index);
  }
  return result;
}

ExecutionResult EventPlanner::ExecuteWithPlan(net::MutableNetwork& network,
                                              const UpdateEvent& event,
                                              EventPlan plan) const {
  ExecutionResult result;
  for (const FlowAction& action : plan.actions) {
    if (!action.placeable) {
      result.deferred_flows.push_back(action.flow_index);
      continue;
    }
    // Place() and Reroute() re-validate feasibility, so a stale plan (state
    // mutated since it was computed) aborts loudly instead of corrupting
    // residuals.
    MigrationOptimizer::Apply(network, action.migration);
    const FlowId id = network.Place(event.flows()[action.flow_index],
                                    network.path_registry().Get(action.path));
    result.placed_flows.push_back(id);
  }
  result.plan = std::move(plan);
  return result;
}

std::optional<FlowId> EventPlanner::PlaceFlow(net::MutableNetwork& network,
                                              flow::Flow flow, Mbps* migrated,
                                              std::size_t* moves) const {
  if (const topo::Path* direct = net::FindFeasiblePathPtr(
          network, paths_, flow.src, flow.dst, flow.demand, path_selection_)) {
    return network.Place(std::move(flow), *direct);
  }
  if (paths_.Paths(flow.src, flow.dst).empty()) return std::nullopt;
  const topo::Path& desired = net::LeastCongestedPath(
      network, paths_, flow.src, flow.dst, flow.demand);
  MigrationPlan migration = optimizer_.Plan(network, flow.demand, desired);
  if (!migration.feasible) return std::nullopt;
  if (migrated != nullptr) *migrated += migration.migrated_traffic;
  if (moves != nullptr) *moves += migration.moves.size();
  MigrationOptimizer::Apply(network, migration);
  return network.Place(std::move(flow), desired);
}

}  // namespace nu::update
