#include "update/event_generator.h"

#include <algorithm>

#include "common/check.h"

namespace nu::update {

EventGenerator::EventGenerator(trace::TrafficGenerator& flow_source, Rng rng)
    : flow_source_(flow_source), rng_(rng) {}

UpdateEvent EventGenerator::Next(Seconds arrival_time,
                                 const SyntheticEventConfig& config) {
  NU_EXPECTS(config.min_flows >= 1);
  NU_EXPECTS(config.max_flows >= config.min_flows);
  const auto flow_count = static_cast<std::size_t>(
      rng_.UniformInt(static_cast<std::int64_t>(config.min_flows),
                      static_cast<std::int64_t>(config.max_flows)));
  std::vector<flow::Flow> flows;
  flows.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    const trace::FlowSpec spec = flow_source_.Next();
    flow::Flow f;
    f.src = spec.src;
    f.dst = spec.dst;
    f.demand = spec.demand;
    f.duration = spec.duration;
    flows.push_back(std::move(f));
  }
  return UpdateEvent(EventId{next_id_++}, arrival_time, std::move(flows),
                     config.kind);
}

std::vector<UpdateEvent> EventGenerator::Batch(
    std::size_t count, const SyntheticEventConfig& config,
    Seconds mean_interarrival) {
  std::vector<UpdateEvent> events;
  events.reserve(count);
  Seconds t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back(Next(t, config));
    if (mean_interarrival > 0.0) {
      t += rng_.Exponential(1.0 / mean_interarrival);
    }
  }
  return events;
}

std::vector<FlowId> FlowsThroughNode(const net::Network& network,
                                     NodeId node) {
  std::vector<FlowId> result;
  for (LinkId lid : network.graph().OutLinks(node)) {
    for (std::uint32_t rep : network.LinkFlowIds(lid)) {
      result.push_back(FlowId{rep});
    }
  }
  for (LinkId lid : network.graph().InLinks(node)) {
    for (std::uint32_t rep : network.LinkFlowIds(lid)) {
      result.push_back(FlowId{rep});
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

UpdateEvent MakeSwitchUpgradeEvent(EventId id, Seconds arrival_time,
                                   const net::Network& network,
                                   NodeId switch_node) {
  const std::vector<FlowId> affected = FlowsThroughNode(network, switch_node);
  NU_EXPECTS(!affected.empty());
  std::vector<flow::Flow> replacements;
  replacements.reserve(affected.size());
  for (FlowId fid : affected) {
    const flow::Flow& original = network.FlowOf(fid);
    flow::Flow replacement;
    replacement.src = original.src;
    replacement.dst = original.dst;
    replacement.demand = original.demand;
    replacement.duration = original.duration;
    replacements.push_back(std::move(replacement));
  }
  return UpdateEvent(id, arrival_time, std::move(replacements),
                     EventKind::kSwitchUpgrade);
}

void RemoveFlows(net::Network& network, const std::vector<FlowId>& flows) {
  for (FlowId fid : flows) network.Remove(fid);
}

std::vector<FlowId> FlowsThroughLink(const net::Network& network,
                                     LinkId link) {
  std::vector<FlowId> result = network.FlowsOnLink(link);
  const topo::Link& l = network.graph().link(link);
  const LinkId reverse = network.graph().FindLink(l.dst, l.src);
  if (reverse.valid()) {
    for (std::uint32_t rep : network.LinkFlowIds(reverse)) {
      result.push_back(FlowId{rep});
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

UpdateEvent MakeLinkFailureEvent(EventId id, Seconds arrival_time,
                                 const net::Network& network,
                                 LinkId failed_link) {
  const std::vector<FlowId> affected = FlowsThroughLink(network, failed_link);
  NU_EXPECTS(!affected.empty());
  std::vector<flow::Flow> replacements;
  replacements.reserve(affected.size());
  for (FlowId fid : affected) {
    const flow::Flow& original = network.FlowOf(fid);
    flow::Flow replacement;
    replacement.src = original.src;
    replacement.dst = original.dst;
    replacement.demand = original.demand;
    replacement.duration = original.duration;
    replacements.push_back(std::move(replacement));
  }
  return UpdateEvent(id, arrival_time, std::move(replacements),
                     EventKind::kFailureReroute);
}

UpdateEvent MakeSwitchFailureEvent(EventId id, Seconds arrival_time,
                                   const net::Network& network,
                                   NodeId failed_node) {
  const std::vector<FlowId> affected = FlowsThroughNode(network, failed_node);
  NU_EXPECTS(!affected.empty());
  std::vector<flow::Flow> replacements;
  replacements.reserve(affected.size());
  for (FlowId fid : affected) {
    const flow::Flow& original = network.FlowOf(fid);
    flow::Flow replacement;
    replacement.src = original.src;
    replacement.dst = original.dst;
    replacement.demand = original.demand;
    replacement.duration = original.duration;
    replacements.push_back(std::move(replacement));
  }
  return UpdateEvent(id, arrival_time, std::move(replacements),
                     EventKind::kFailureReroute);
}

UpdateEvent MakeVmMigrationEvent(EventId id, Seconds arrival_time,
                                 NodeId old_host, NodeId new_host,
                                 const VmMigrationConfig& config) {
  NU_EXPECTS(config.streams >= 1);
  NU_EXPECTS(config.stream_demand > 0.0);
  NU_EXPECTS(config.vm_volume > 0.0);
  NU_EXPECTS(old_host != new_host);
  const Seconds duration =
      config.vm_volume /
      (config.stream_demand * static_cast<double>(config.streams));
  std::vector<flow::Flow> streams;
  streams.reserve(config.streams);
  for (std::size_t i = 0; i < config.streams; ++i) {
    flow::Flow f;
    f.src = old_host;
    f.dst = new_host;
    f.demand = config.stream_demand;
    f.duration = duration;
    streams.push_back(std::move(f));
  }
  return UpdateEvent(id, arrival_time, std::move(streams),
                     EventKind::kVmMigration);
}

}  // namespace nu::update
