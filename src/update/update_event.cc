#include "update/update_event.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace nu::update {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kGeneric:
      return "generic";
    case EventKind::kSwitchUpgrade:
      return "switch-upgrade";
    case EventKind::kVmMigration:
      return "vm-migration";
    case EventKind::kFailureReroute:
      return "failure-reroute";
  }
  return "?";
}

UpdateEvent::UpdateEvent(EventId id, Seconds arrival_time,
                         std::vector<flow::Flow> flows, EventKind kind)
    : id_(id), arrival_time_(arrival_time), kind_(kind),
      flows_(std::move(flows)) {
  NU_EXPECTS(id_.valid());
  NU_EXPECTS(arrival_time_ >= 0.0);
  NU_EXPECTS(!flows_.empty());
  for (flow::Flow& f : flows_) {
    NU_EXPECTS(f.demand > 0.0);
    NU_EXPECTS(f.duration > 0.0);
    f.origin = flow::FlowOrigin::kUpdateEvent;
    f.event = id_;
  }
}

Mbps UpdateEvent::TotalDemand() const {
  Mbps total = 0.0;
  for (const flow::Flow& f : flows_) total += f.demand;
  return total;
}

Seconds UpdateEvent::MaxFlowDuration() const {
  Seconds longest = 0.0;
  for (const flow::Flow& f : flows_) longest = std::max(longest, f.duration);
  return longest;
}

Megabits UpdateEvent::TotalVolume() const {
  Megabits total = 0.0;
  for (const flow::Flow& f : flows_) total += f.volume();
  return total;
}

std::string UpdateEvent::DebugString() const {
  std::ostringstream os;
  os << "event{" << id_ << " " << ToString(kind_) << " t=" << arrival_time_
     << " flows=" << flows_.size() << " demand=" << TotalDemand() << "Mbps"
     << " max_dur=" << MaxFlowDuration() << "s}";
  return os.str();
}

}  // namespace nu::update
