#include "update/migration.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>

#include "common/logging.h"
#include "net/admission.h"

namespace nu::update {
namespace {

/// Weight/index pair ordered by descending weight (ascending index on ties)
/// for deterministic selection.
struct Item {
  double weight;
  std::size_t index;
};

std::vector<Item> SortedDescending(const std::vector<double>& weights) {
  std::vector<Item> items;
  items.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    items.push_back(Item{weights[i], i});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.index < b.index;
  });
  return items;
}

std::vector<std::size_t> LargestFirstCover(const std::vector<Item>& items,
                                           double deficit) {
  std::vector<std::size_t> chosen;
  double sum = 0.0;
  for (const Item& item : items) {
    if (sum >= deficit) break;
    chosen.push_back(item.index);
    sum += item.weight;
  }
  return chosen;
}

/// Removes members whose removal keeps the cover, preferring to drop small
/// members last (iterate ascending weight so big redundant members go first).
void DropRedundant(std::vector<std::size_t>& chosen,
                   const std::vector<double>& weights, double deficit) {
  double sum = 0.0;
  for (std::size_t i : chosen) sum += weights[i];
  // Try dropping in descending-weight order: removing a big flow saves the
  // most migrated traffic.
  std::vector<std::size_t> order = chosen;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  for (std::size_t candidate : order) {
    if (sum - weights[candidate] >= deficit) {
      sum -= weights[candidate];
      chosen.erase(std::find(chosen.begin(), chosen.end(), candidate));
    }
  }
}

std::vector<std::size_t> BestFitDecreasingCover(
    const std::vector<double>& weights, const std::vector<Item>& items,
    double deficit) {
  // Smallest single flow that covers the deficit, if any.
  const Item* best_single = nullptr;
  for (const Item& item : items) {
    if (item.weight >= deficit) {
      best_single = &item;  // items are descending; keep updating -> smallest
    } else {
      break;  // no later item can cover alone
    }
  }
  if (best_single != nullptr) return {best_single->index};
  auto chosen = LargestFirstCover(items, deficit);
  DropRedundant(chosen, weights, deficit);
  return chosen;
}

double SumOf(const std::vector<std::size_t>& chosen,
             const std::vector<double>& weights) {
  double sum = 0.0;
  for (std::size_t i : chosen) sum += weights[i];
  return sum;
}

std::vector<std::size_t> LocalSearchCover(const std::vector<double>& weights,
                                          const std::vector<Item>& items,
                                          double deficit,
                                          std::size_t max_rounds) {
  std::vector<std::size_t> chosen =
      BestFitDecreasingCover(weights, items, deficit);
  std::vector<bool> in_set(weights.size(), false);
  for (std::size_t i : chosen) in_set[i] = true;
  double sum = SumOf(chosen, weights);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;
    // Drop pass.
    for (std::size_t pos = 0; pos < chosen.size();) {
      const std::size_t member = chosen[pos];
      if (sum - weights[member] >= deficit) {
        sum -= weights[member];
        in_set[member] = false;
        chosen.erase(chosen.begin() + static_cast<std::ptrdiff_t>(pos));
        improved = true;
      } else {
        ++pos;
      }
    }
    // Replace pass: swap a member for the smallest outsider that keeps cover.
    for (std::size_t pos = 0; pos < chosen.size(); ++pos) {
      const std::size_t member = chosen[pos];
      std::size_t best_sub = weights.size();
      double best_sub_weight = weights[member];
      for (std::size_t out = 0; out < weights.size(); ++out) {
        if (in_set[out]) continue;
        if (weights[out] >= best_sub_weight) continue;
        if (sum - weights[member] + weights[out] >= deficit) {
          best_sub = out;
          best_sub_weight = weights[out];
        }
      }
      if (best_sub < weights.size()) {
        sum += weights[best_sub] - weights[member];
        in_set[member] = false;
        in_set[best_sub] = true;
        chosen[pos] = best_sub;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return chosen;
}

/// Exact min-sum cover via branch-and-bound over descending weights.
class ExactCoverSolver {
 public:
  ExactCoverSolver(const std::vector<Item>& items, double deficit)
      : items_(items), deficit_(deficit) {
    suffix_sums_.resize(items.size() + 1, 0.0);
    for (std::size_t i = items.size(); i > 0; --i) {
      suffix_sums_[i - 1] = suffix_sums_[i] + items[i - 1].weight;
    }
  }

  std::vector<std::size_t> Solve(std::vector<std::size_t> initial,
                                 double initial_sum) {
    best_ = std::move(initial);
    best_sum_ = initial_sum;
    Recurse(0, 0.0);
    return best_;
  }

 private:
  void Recurse(std::size_t depth, double sum) {
    if (sum >= deficit_) {
      if (sum < best_sum_) {
        best_sum_ = sum;
        best_ = current_;
      }
      return;  // adding more only increases the sum
    }
    if (depth == items_.size()) return;
    // Prune: even taking every remaining item cannot reach the deficit.
    if (sum + suffix_sums_[depth] < deficit_) return;
    // Prune: current sum already no better than the best found.
    if (sum + 1e-12 >= best_sum_) return;

    // Include items_[depth].
    current_.push_back(items_[depth].index);
    Recurse(depth + 1, sum + items_[depth].weight);
    current_.pop_back();
    // Exclude.
    Recurse(depth + 1, sum);
  }

  const std::vector<Item>& items_;
  double deficit_;
  std::vector<double> suffix_sums_;
  std::vector<std::size_t> current_;
  std::vector<std::size_t> best_;
  double best_sum_ = std::numeric_limits<double>::infinity();
};

}  // namespace

const char* ToString(MigrationStrategy strategy) {
  switch (strategy) {
    case MigrationStrategy::kGreedyLargestFirst:
      return "greedy-largest-first";
    case MigrationStrategy::kBestFitDecreasing:
      return "best-fit-decreasing";
    case MigrationStrategy::kLocalSearch:
      return "local-search";
    case MigrationStrategy::kExactSmall:
      return "exact-small";
  }
  return "?";
}

std::optional<std::vector<std::size_t>> SelectCoverSet(
    const std::vector<double>& weights, double deficit,
    MigrationStrategy strategy, const MigrationOptions& options) {
  if (deficit <= 0.0) return std::vector<std::size_t>{};
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total < deficit) return std::nullopt;

  const auto items = SortedDescending(weights);
  switch (strategy) {
    case MigrationStrategy::kGreedyLargestFirst:
      return LargestFirstCover(items, deficit);
    case MigrationStrategy::kBestFitDecreasing:
      return BestFitDecreasingCover(weights, items, deficit);
    case MigrationStrategy::kLocalSearch:
      return LocalSearchCover(weights, items, deficit,
                              options.local_search_rounds);
    case MigrationStrategy::kExactSmall: {
      if (weights.size() > options.exact_limit) {
        return LocalSearchCover(weights, items, deficit,
                                options.local_search_rounds);
      }
      auto seed = LocalSearchCover(weights, items, deficit,
                                   options.local_search_rounds);
      const double seed_sum = SumOf(seed, weights);
      ExactCoverSolver solver(items, deficit);
      return solver.Solve(std::move(seed), seed_sum);
    }
  }
  return std::nullopt;
}

const topo::Path* FindRerouteTargetPtr(const net::NetworkView& network,
                                       const topo::PathProvider& paths,
                                       FlowId flow,
                                       std::span<const char> forbidden_mask) {
  const flow::Flow& f = network.FlowOf(flow);
  const topo::Path& current = network.PathOf(flow);
  const std::vector<topo::Path>& candidates = paths.Paths(f.src, f.dst);

  const topo::Path* best = nullptr;
  Mbps best_bottleneck = 0.0;
  for (const topo::Path& candidate : candidates) {
    if (candidate == current) continue;
    bool usable = true;
    Mbps bottleneck = std::numeric_limits<double>::infinity();
    for (LinkId lid : candidate.links) {
      if (!forbidden_mask.empty() && forbidden_mask[lid.value()] != 0) {
        usable = false;
        break;
      }
      // Self-release: the flow's own occupancy on shared links counts as
      // available when it moves.
      Mbps residual = network.Residual(lid);
      if (network.FlowUsesLink(flow, lid)) residual += f.demand;
      if (!ApproxGe(residual, f.demand)) {
        usable = false;
        break;
      }
      bottleneck = std::min(bottleneck, residual);
    }
    if (!usable) continue;
    if (best == nullptr || bottleneck > best_bottleneck) {
      best = &candidate;
      best_bottleneck = bottleneck;
    }
  }
  return best;
}

std::optional<topo::Path> FindRerouteTarget(
    const net::NetworkView& network, const topo::PathProvider& paths,
    FlowId flow, const std::unordered_set<LinkId::rep_type>& forbidden) {
  std::vector<char> mask;
  if (!forbidden.empty()) {
    mask.assign(network.graph().link_count(), 0);
    for (const LinkId::rep_type rep : forbidden) mask[rep] = 1;
  }
  const topo::Path* best = FindRerouteTargetPtr(network, paths, flow, mask);
  if (best == nullptr) return std::nullopt;
  return *best;
}

MigrationOptimizer::MigrationOptimizer(const topo::PathProvider& paths,
                                       MigrationOptions options)
    : paths_(paths), options_(options) {}

MigrationPlan MigrationOptimizer::Plan(const net::NetworkView& network,
                                       Mbps demand,
                                       const topo::Path& desired_path) const {
  net::NetworkOverlay scratch(network);
  return PlanOn(scratch, demand, desired_path);
}

MigrationPlan MigrationOptimizer::PlanDeepCopy(
    const net::Network& network, Mbps demand,
    const topo::Path& desired_path) const {
  net::Network scratch = network;
  return PlanOn(scratch, demand, desired_path);
}

MigrationPlan MigrationOptimizer::PlanOn(net::MutableNetwork& scratch,
                                         Mbps demand,
                                         const topo::Path& desired_path) const {
  NU_EXPECTS(demand > 0.0);
  MigrationPlan plan;

  if (scratch.CanPlace(demand, desired_path)) {
    plan.feasible = true;
    return plan;
  }

  // Reroute targets must stay off the desired path entirely: touching even a
  // currently-uncongested link of it could create a fresh deficit. Flat
  // byte mask — the reroute scan tests every candidate link against it.
  std::vector<char> forbidden(scratch.graph().link_count(), 0);
  for (LinkId lid : desired_path.links) forbidden[lid.value()] = 1;

  // A congested link's deficit can only shrink as flows leave it, but we
  // re-scan because selections are re-validated; bound the passes.
  constexpr std::size_t kMaxPasses = 4;
  for (std::size_t pass = 0; pass < kMaxPasses; ++pass) {
    const std::vector<LinkId> congested =
        scratch.CongestedLinks(demand, desired_path);
    if (congested.empty()) break;

    bool progressed = false;
    for (LinkId link : congested) {
      double deficit = demand - scratch.Residual(link);
      if (deficit <= kBandwidthEpsilon) continue;

      // Candidate set F_A: flows currently on the congested link that have
      // somewhere else to go. No mutation happens while the span is read.
      const std::span<const std::uint32_t> on_link = scratch.LinkFlowIds(link);
      std::vector<FlowId> movable;
      std::vector<double> weights;
      movable.reserve(on_link.size());
      for (const std::uint32_t rep : on_link) {
        const FlowId fid{rep};
        if (FindRerouteTargetPtr(scratch, paths_, fid, forbidden) != nullptr) {
          movable.push_back(fid);
          weights.push_back(scratch.FlowOf(fid).demand);
        }
      }

      const auto selection =
          SelectCoverSet(weights, deficit, options_.strategy, options_);
      if (!selection.has_value()) {
        plan.feasible = false;
        return plan;
      }

      for (std::size_t idx : *selection) {
        if (deficit <= kBandwidthEpsilon) break;
        const FlowId fid = movable[idx];
        // Re-resolve the target against the *current* scratch state: earlier
        // moves in this selection may have consumed the original target.
        const topo::Path* target =
            FindRerouteTargetPtr(scratch, paths_, fid, forbidden);
        if (target == nullptr) continue;
        const Mbps moved = scratch.FlowOf(fid).demand;
        scratch.Reroute(fid, *target);
        plan.moves.push_back(
            MigrationMove{fid, scratch.PathRefOf(fid), moved});
        plan.migrated_traffic += moved;
        deficit = demand - scratch.Residual(link);
        progressed = true;
      }
      if (deficit > kBandwidthEpsilon) {
        // Selection went stale and could not be completed this pass; the
        // outer loop re-scans. Without progress we are stuck.
        if (!progressed) {
          plan.feasible = false;
          return plan;
        }
      }
    }
    if (!progressed) break;
  }

  plan.feasible = scratch.CanPlace(demand, desired_path);
  return plan;
}

void MigrationOptimizer::Apply(net::MutableNetwork& network,
                               const MigrationPlan& plan) {
  NU_EXPECTS(plan.feasible);
  for (const MigrationMove& move : plan.moves) {
    network.Reroute(move.flow, network.path_registry().Get(move.new_path));
  }
}

}  // namespace nu::update
