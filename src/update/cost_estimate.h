// Quick update-cost estimation. LMTF's per-round probes fully plan alpha+1
// events (migration sets included) just to COMPARE costs — the dominant
// share of its 4-5x plan-time overhead. This estimator approximates Cost(U)
// without planning migrations: per flow, the bandwidth deficit on its best
// candidate path is a lower-bound proxy for the traffic that would have to
// move. The estimate is cheap (no network copies, no cover solving) and
// order-correlates with the exact cost, so a scheduler can rank candidates
// with it and pay for one full plan only at execution.
//
// The estimator scores all of a flow's candidate paths in one batched pass:
// each candidate's residual row is gathered into contiguous arena scratch
// (straight loads from the view's flat residual array when available,
// memoized virtual reads otherwise) and reduced by the SoA scan kernels
// (net/residual_scan.h). Results are bit-identical to the historical
// scalar candidate loop — same strict-< first-wins winner, same epsilon
// semantics — which the probe-cost cache and the sharded argmin rely on;
// tests/update/batched_scoring_test.cc pins the equivalence against a
// reference copy of the scalar implementation.
#pragma once

#include "common/arena.h"
#include "net/network_view.h"
#include "topo/path_provider.h"
#include "update/update_event.h"

namespace nu::update {

struct QuickCostResult {
  /// Sum over flows of the best candidate path's worst-link deficit (Mbps).
  /// 0 when every flow fits somewhere outright. Per flow this lower-bounds
  /// the migrated traffic: clearing the worst link requires moving at least
  /// its deficit off it (the real plan migrates whole flows and usually
  /// more).
  Mbps deficit_sum = 0.0;
  /// Flows with no candidate path and a deficit > the traffic present on
  /// the congested links — likely unplaceable even with migration.
  std::size_t likely_blocked = 0;
  /// Flows needing some migration.
  std::size_t flows_with_deficit = 0;
};

/// Estimates against the CURRENT network state; does not mutate anything
/// and — unlike EventPlanner::Plan — does not account for intra-event
/// contention (earlier flows of the same event consuming capacity), which
/// is the main source of underestimation.
///
/// `scratch` holds the batched pass's per-candidate rows and accumulators;
/// it is Reset() on entry (the call owns it for its duration) and a warmed
/// arena makes the call allocation-free. The overload without an arena is
/// the cold-path convenience form: it pays one arena construction per call.
[[nodiscard]] QuickCostResult QuickCostEstimate(const net::NetworkView& network,
                                                const topo::PathProvider& paths,
                                                const UpdateEvent& event,
                                                Arena& scratch);

[[nodiscard]] QuickCostResult QuickCostEstimate(const net::NetworkView& network,
                                                const topo::PathProvider& paths,
                                                const UpdateEvent& event);

/// Scalar ranking value mirroring the simulator's probe semantics: the
/// deficit sum plus a 10x penalty on likely-blocked flows' demands.
[[nodiscard]] Mbps QuickCostScore(const net::NetworkView& network,
                                  const topo::PathProvider& paths,
                                  const UpdateEvent& event, Arena& scratch);

[[nodiscard]] Mbps QuickCostScore(const net::NetworkView& network,
                                  const topo::PathProvider& paths,
                                  const UpdateEvent& event);

}  // namespace nu::update
