// Migration-set optimization (Section IV-A): given a new flow whose desired
// path is congested, pick a subset of the existing flows on the congested
// links to migrate elsewhere so the new flow fits, minimizing the migrated
// traffic. The exact problem is NP-complete (min-cost subset cover per
// congested link, with reroute feasibility constraints); the paper uses an
// approximation, which kBestFitDecreasing / kLocalSearch implement. An exact
// branch-and-bound (kExactSmall) is provided as a test oracle and for the
// strategy ablation bench.
#pragma once

#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "net/overlay.h"
#include "topo/path_provider.h"

namespace nu::update {

enum class MigrationStrategy : std::uint8_t {
  /// Migrate the largest reroutable flows first until the deficit is covered.
  kGreedyLargestFirst,
  /// If a single reroutable flow covers the deficit, migrate the smallest
  /// such flow; otherwise largest-first with a drop-redundant pass.
  kBestFitDecreasing,
  /// kBestFitDecreasing seeded, then pairwise replace/drop local search.
  kLocalSearch,
  /// Exact branch-and-bound when the candidate set is small (<= 22 flows),
  /// falling back to kLocalSearch above that.
  kExactSmall,
};

[[nodiscard]] const char* ToString(MigrationStrategy strategy);

/// One flow relocation of a migration plan.
struct MigrationMove {
  FlowId flow;
  /// Interned target path; resolve against the planning view's
  /// path_registry() (shared by the view, its overlays, and its copies).
  PathRef new_path;
  /// Demand of the migrated flow (Mbps) — the unit of the paper's Cost(U).
  Mbps traffic = 0.0;
};

struct MigrationPlan {
  /// True when the desired path can carry the new demand after `moves`.
  bool feasible = false;
  std::vector<MigrationMove> moves;
  /// Sum of move traffic — sum(F_a) of Definition 2.
  Mbps migrated_traffic = 0.0;
};

struct MigrationOptions {
  MigrationStrategy strategy = MigrationStrategy::kBestFitDecreasing;
  /// Candidate-set size above which kExactSmall falls back to local search.
  std::size_t exact_limit = 22;
  /// Cap on local-search improvement rounds.
  std::size_t local_search_rounds = 16;
};

class MigrationOptimizer {
 public:
  MigrationOptimizer(const topo::PathProvider& paths,
                     MigrationOptions options = {});

  /// Plans the migration set enabling (demand, desired_path) on `network`.
  /// Pure: operates on a copy-on-write overlay, so the cost is proportional
  /// to the state the plan touches, not to network size. `moves` are ordered
  /// so that applying them front-to-back keeps every intermediate state
  /// congestion-free (constraint (5) of the paper).
  [[nodiscard]] MigrationPlan Plan(const net::NetworkView& network, Mbps demand,
                                   const topo::Path& desired_path) const;

  /// Legacy baseline of Plan: identical algorithm over a full deep copy of
  /// `network`. Kept for the probe fast-path differential tests and the
  /// bench_probe_scaling speedup measurement.
  [[nodiscard]] MigrationPlan PlanDeepCopy(const net::Network& network,
                                           Mbps demand,
                                           const topo::Path& desired_path) const;

  /// Applies a plan's reroutes to the live network. The caller then places
  /// the new flow. Aborts if any move became infeasible (the plan must have
  /// been computed against the current state).
  static void Apply(net::MutableNetwork& network, const MigrationPlan& plan);

  [[nodiscard]] const MigrationOptions& options() const { return options_; }

 private:
  /// Shared mutation core: runs the cover-and-reroute passes directly on
  /// `scratch` (an overlay for the fast path, a deep copy for the baseline).
  [[nodiscard]] MigrationPlan PlanOn(net::MutableNetwork& scratch, Mbps demand,
                                     const topo::Path& desired_path) const;

  const topo::PathProvider& paths_;
  MigrationOptions options_;
};

/// A reroute target for an existing flow: a candidate path, different from
/// the flow's current one, avoiding all `forbidden` links, feasible once the
/// flow's own occupancy is released. Returns the widest such path.
[[nodiscard]] std::optional<topo::Path> FindRerouteTarget(
    const net::NetworkView& network, const topo::PathProvider& paths,
    FlowId flow, const std::unordered_set<LinkId::rep_type>& forbidden);

/// Hot-path form: provider-owned pointer result (no Path copy, nullptr =
/// no target) and the forbidden set as a flat byte mask indexed by LinkId
/// value (empty = nothing forbidden). PlanOn builds the mask once per plan
/// and scans it branch-cheaply instead of paying a hash probe per link.
[[nodiscard]] const topo::Path* FindRerouteTargetPtr(
    const net::NetworkView& network, const topo::PathProvider& paths,
    FlowId flow, std::span<const char> forbidden_mask);

/// Min-sum subset cover: choose indices of `weights` with total >= deficit
/// minimizing the chosen sum. Strategies as above (exact uses
/// branch-and-bound). Returns nullopt when even the full set cannot cover.
/// Exposed for unit tests and the ablation bench.
[[nodiscard]] std::optional<std::vector<std::size_t>> SelectCoverSet(
    const std::vector<double>& weights, double deficit,
    MigrationStrategy strategy, const MigrationOptions& options = {});

}  // namespace nu::update
