#include "update/cost_estimate.h"

#include <algorithm>
#include <cstdint>

#include "net/residual_scan.h"

namespace nu::update {
namespace {

/// Residual source for one estimate call. When the view exposes its flat
/// residual array the rows are gathered with straight indexed loads; when
/// it cannot (copy-on-write overlays), each link's residual is fetched
/// through the virtual Residual() once and memoized in arena-backed flat
/// arrays — the per-call scratch vectors the old implementation allocated
/// on every estimate now live in the caller's reusable arena.
struct ResidualSource {
  const net::NetworkView* network = nullptr;
  const Mbps* flat = nullptr;  // non-null: SoA fast path
  Mbps* memo_value = nullptr;
  unsigned char* memo_known = nullptr;

  void GatherRow(std::span<const LinkId> links, Mbps* row) {
    if (flat != nullptr) {
      net::GatherResiduals(flat, links, row);
      return;
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
      const auto rep = links[i].value();
      if (memo_known[rep] == 0) {
        memo_value[rep] = network->Residual(links[i]);
        memo_known[rep] = 1;
      }
      row[i] = memo_value[rep];
    }
  }
};

}  // namespace

QuickCostResult QuickCostEstimate(const net::NetworkView& network,
                                  const topo::PathProvider& paths,
                                  const UpdateEvent& event, Arena& scratch) {
  QuickCostResult result;
  scratch.Reset();

  ResidualSource source;
  source.network = &network;
  source.flat = network.ResidualData();
  if (source.flat == nullptr) {
    const std::size_t links = network.graph().link_count();
    source.memo_value = scratch.AllocArray<Mbps>(links);
    source.memo_known = scratch.AllocArray<unsigned char>(links);
    std::fill_n(source.memo_known, links, static_cast<unsigned char>(0));
  }

  for (const flow::Flow& f : event.flows()) {
    const std::vector<topo::Path>& candidates = paths.Paths(f.src, f.dst);
    if (candidates.empty()) {
      ++result.likely_blocked;
      continue;
    }

    // Batched pass: gather each candidate's residual row into contiguous
    // scratch and reduce it with the MaxDeficit kernel. Winner selection is
    // the historical control flow verbatim — strict < with the first
    // candidate winning ties, early exit the moment the running best fits
    // outright (a later candidate can only tie at deficit 0 and would lose
    // the tie anyway) — so results are bit-identical to the scalar loop.
    const std::size_t n = candidates.size();
    net::WorstDeficit* worst = scratch.AllocArray<net::WorstDeficit>(n);
    std::size_t max_links = 0;
    for (const topo::Path& p : candidates) {
      max_links = std::max(max_links, p.links.size());
    }
    Mbps* row = scratch.AllocArray<Mbps>(max_links);
    std::size_t best = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const std::span<const LinkId> links = candidates[c].links;
      source.GatherRow(links, row);
      worst[c] = net::MaxDeficit(row, links.size(), f.demand);
      if (c > 0 && worst[c].deficit < worst[best].deficit) best = c;
      if (worst[best].deficit <= kBandwidthEpsilon) break;  // fits outright
    }
    if (worst[best].deficit <= kBandwidthEpsilon) continue;  // fits outright

    ++result.flows_with_deficit;
    result.deficit_sum += worst[best].deficit;
    // Movable traffic on the winning candidate's worst link: capacity minus
    // the GATHERED residual (recomputing it from the deficit would not be
    // bit-identical).
    const LinkId worst_link = candidates[best].links[worst[best].index];
    const Mbps movable =
        network.graph().link(worst_link).capacity - worst[best].residual;
    if (worst[best].deficit > movable + kBandwidthEpsilon) {
      // Even migrating everything off the congested links cannot free
      // enough: the shortfall is structural (e.g. a saturated host uplink).
      ++result.likely_blocked;
    }
  }
  return result;
}

QuickCostResult QuickCostEstimate(const net::NetworkView& network,
                                  const topo::PathProvider& paths,
                                  const UpdateEvent& event) {
  Arena scratch;
  return QuickCostEstimate(network, paths, event, scratch);
}

Mbps QuickCostScore(const net::NetworkView& network,
                    const topo::PathProvider& paths, const UpdateEvent& event,
                    Arena& scratch) {
  const QuickCostResult estimate =
      QuickCostEstimate(network, paths, event, scratch);
  Mbps score = estimate.deficit_sum;
  // Mirror the simulator's full-probe penalty: blocked flows are charged
  // their demand at 10x. We do not know which specific flows are blocked
  // here, so charge the mean event demand per blocked flow.
  if (estimate.likely_blocked > 0 && event.flow_count() > 0) {
    const Mbps mean_demand =
        event.TotalDemand() / static_cast<double>(event.flow_count());
    score += 10.0 * mean_demand * static_cast<double>(estimate.likely_blocked);
  }
  return score;
}

Mbps QuickCostScore(const net::NetworkView& network,
                    const topo::PathProvider& paths,
                    const UpdateEvent& event) {
  Arena scratch;
  return QuickCostScore(network, paths, event, scratch);
}

}  // namespace nu::update
