#include "update/cost_estimate.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace nu::update {
namespace {

/// Per-call residual memo. Candidate paths of one event overlap heavily
/// (all share host links; fabric links repeat across candidates), so each
/// link's residual is fetched from the network once and then served from a
/// flat array.
class ResidualScratch {
 public:
  explicit ResidualScratch(const net::NetworkView& network)
      : network_(&network),
        value_(network.graph().link_count(), 0.0),
        known_(network.graph().link_count(), 0) {}

  Mbps Get(LinkId lid) {
    const auto i = lid.value();
    if (known_[i] == 0) {
      value_[i] = network_->Residual(lid);
      known_[i] = 1;
    }
    return value_[i];
  }

 private:
  const net::NetworkView* network_;
  std::vector<Mbps> value_;
  std::vector<char> known_;
};

/// Deficit of placing `demand` on `path`: the WORST single-link shortfall.
/// Clearing a link requires migrating at least its deficit off it, so the
/// max over links lower-bounds the migrated traffic (a sum would
/// double-count: one migrated flow often relieves several links at once).
/// Also reports the movable traffic on that worst link (an upper bound on
/// what migration could free there).
struct PathDeficit {
  Mbps deficit = 0.0;
  Mbps movable = 0.0;
};

PathDeficit DeficitOn(const net::NetworkView& network,
                      ResidualScratch& residuals, const topo::Path& path,
                      Mbps demand) {
  PathDeficit result;
  for (LinkId lid : path.links) {
    const Mbps residual = residuals.Get(lid);
    if (ApproxGe(residual, demand)) continue;
    const Mbps link_deficit = demand - residual;
    if (link_deficit > result.deficit) {
      result.deficit = link_deficit;
      const topo::Link& link = network.graph().link(lid);
      result.movable = link.capacity - residual;
    }
  }
  return result;
}

}  // namespace

QuickCostResult QuickCostEstimate(const net::NetworkView& network,
                                  const topo::PathProvider& paths,
                                  const UpdateEvent& event) {
  QuickCostResult result;
  ResidualScratch residuals(network);
  for (const flow::Flow& f : event.flows()) {
    const std::vector<topo::Path>& candidates = paths.Paths(f.src, f.dst);
    if (candidates.empty()) {
      ++result.likely_blocked;
      continue;
    }
    Mbps best_deficit = std::numeric_limits<double>::infinity();
    Mbps movable_at_best = 0.0;
    for (const topo::Path& p : candidates) {
      const PathDeficit d = DeficitOn(network, residuals, p, f.demand);
      if (d.deficit < best_deficit) {
        best_deficit = d.deficit;
        movable_at_best = d.movable;
        if (best_deficit <= kBandwidthEpsilon) break;  // fits outright
      }
    }
    if (best_deficit <= kBandwidthEpsilon) continue;
    ++result.flows_with_deficit;
    result.deficit_sum += best_deficit;
    if (best_deficit > movable_at_best + kBandwidthEpsilon) {
      // Even migrating everything off the congested links cannot free
      // enough: the shortfall is structural (e.g. a saturated host uplink).
      ++result.likely_blocked;
    }
  }
  return result;
}

Mbps QuickCostScore(const net::NetworkView& network,
                    const topo::PathProvider& paths,
                    const UpdateEvent& event) {
  const QuickCostResult estimate = QuickCostEstimate(network, paths, event);
  Mbps score = estimate.deficit_sum;
  // Mirror the simulator's full-probe penalty: blocked flows are charged
  // their demand at 10x. We do not know which specific flows are blocked
  // here, so charge the mean event demand per blocked flow.
  if (estimate.likely_blocked > 0 && event.flow_count() > 0) {
    const Mbps mean_demand =
        event.TotalDemand() / static_cast<double>(event.flow_count());
    score += 10.0 * mean_demand * static_cast<double>(estimate.likely_blocked);
  }
  return score;
}

}  // namespace nu::update
