#include "update/transition.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace nu::update {

std::size_t TransitionPlan::DetourCount() const {
  std::size_t count = 0;
  for (const TransitionStep& step : steps) {
    if (step.detour) ++count;
  }
  return count;
}

TransitionPlan PlanTransition(const net::Network& network,
                              const topo::PathProvider& paths,
                              const TargetConfig& targets,
                              const TransitionOptions& options) {
  TransitionPlan plan;
  net::Network scratch = network;

  // Pending = flows not already on their targets, in ascending id order for
  // determinism.
  std::vector<FlowId> pending;
  for (const auto& [rep, target] : targets) {
    const FlowId id{rep};
    NU_EXPECTS(scratch.HasFlow(id));
    NU_EXPECTS(scratch.graph().IsValidPath(target));
    if (!(scratch.PathOf(id) == target)) pending.push_back(id);
  }
  std::sort(pending.begin(), pending.end());

  for (std::size_t round = 0; round < options.max_rounds && !pending.empty();
       ++round) {
    bool progressed = false;

    // Pass 1: move every flow whose target currently fits.
    for (std::size_t i = 0; i < pending.size();) {
      const FlowId id = pending[i];
      const topo::Path& target = targets.at(id.value());
      if (scratch.CanReroute(id, target)) {
        scratch.Reroute(id, target);
        plan.steps.push_back(TransitionStep{id, target, false});
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
      } else {
        ++i;
      }
    }
    if (progressed || pending.empty()) continue;

    // Deadlock: no pending flow's target fits. Try parking ONE flow on an
    // alternate path to free capacity (classic two-flow swap needs this).
    if (!options.allow_detours) break;
    bool detoured = false;
    for (const FlowId id : pending) {
      const flow::Flow& f = scratch.FlowOf(id);
      const topo::Path& current = scratch.PathOf(id);
      const topo::Path& target = targets.at(id.value());
      for (const topo::Path& candidate : paths.Paths(f.src, f.dst)) {
        if (candidate == current || candidate == target) continue;
        if (!scratch.CanReroute(id, candidate)) continue;
        scratch.Reroute(id, candidate);
        plan.steps.push_back(TransitionStep{id, candidate, true});
        detoured = true;
        break;
      }
      if (detoured) break;
    }
    if (!detoured) break;  // genuinely stuck
  }

  plan.complete = pending.empty();
  plan.stuck = std::move(pending);
  return plan;
}

void ApplyTransition(net::Network& network, const TransitionPlan& plan) {
  for (const TransitionStep& step : plan.steps) {
    NU_CHECK(network.CanReroute(step.flow, step.path));
    network.Reroute(step.flow, step.path);
  }
}

TransitionPlan PlanNodeDrain(const net::Network& network,
                             const topo::PathProvider& paths, NodeId node,
                             const TransitionOptions& options) {
  // Draining differs from a fixed-target transition: ANY path avoiding the
  // node is an acceptable destination, so each round re-selects the widest
  // currently-feasible avoiding candidate per flow instead of committing to
  // targets upfront.
  const topo::NodeAvoidingPathProvider avoiding(paths, node);
  TransitionPlan plan;
  net::Network scratch = network;

  std::vector<FlowId> pending;
  for (FlowId id : scratch.PlacedFlows()) {
    const topo::Path& current = scratch.PathOf(id);
    if (std::find(current.nodes.begin(), current.nodes.end(), node) !=
        current.nodes.end()) {
      pending.push_back(id);
    }
  }

  for (std::size_t round = 0; round < options.max_rounds && !pending.empty();
       ++round) {
    bool progressed = false;
    for (std::size_t i = 0; i < pending.size();) {
      const FlowId id = pending[i];
      const flow::Flow& f = scratch.FlowOf(id);
      const topo::Path* best = nullptr;
      Mbps best_bottleneck = 0.0;
      for (const topo::Path& candidate : avoiding.Paths(f.src, f.dst)) {
        if (!scratch.CanReroute(id, candidate)) continue;
        Mbps bottleneck = std::numeric_limits<double>::infinity();
        for (LinkId lid : candidate.links) {
          bottleneck = std::min(bottleneck, scratch.Residual(lid));
        }
        if (best == nullptr || bottleneck > best_bottleneck) {
          best = &candidate;
          best_bottleneck = bottleneck;
        }
      }
      if (best == nullptr) {
        ++i;
        continue;
      }
      scratch.Reroute(id, *best);
      plan.steps.push_back(TransitionStep{id, *best, false});
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      progressed = true;
    }
    if (!progressed) break;  // remaining flows fit on no avoiding path
  }

  plan.complete = pending.empty();
  plan.stuck = std::move(pending);
  return plan;
}

}  // namespace nu::update
