// The event-level abstraction (Definition 2): an update event U is a set of
// flows {f1..fw} that must be scheduled together; the event is complete only
// when its last flow completes. Update events are what operators/apps/
// devices emit — switch upgrades, failures, VM migrations — and what the
// inter-event schedulers (FIFO/LMTF/P-LMTF) order.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "flow/flow.h"

namespace nu::update {

/// What triggered the event; informational (reports, generators).
enum class EventKind : std::uint8_t {
  kGeneric,
  kSwitchUpgrade,
  kVmMigration,
  kFailureReroute,
};

[[nodiscard]] const char* ToString(EventKind kind);

class UpdateEvent {
 public:
  UpdateEvent(EventId id, Seconds arrival_time, std::vector<flow::Flow> flows,
              EventKind kind = EventKind::kGeneric);

  [[nodiscard]] EventId id() const { return id_; }
  [[nodiscard]] Seconds arrival_time() const { return arrival_time_; }
  [[nodiscard]] EventKind kind() const { return kind_; }
  [[nodiscard]] std::span<const flow::Flow> flows() const { return flows_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  /// Sum of flow demands (Mbps).
  [[nodiscard]] Mbps TotalDemand() const;
  /// Longest flow duration — lower bound on the event's execution time.
  [[nodiscard]] Seconds MaxFlowDuration() const;
  /// Total traffic volume of the event's flows (Mb).
  [[nodiscard]] Megabits TotalVolume() const;

  [[nodiscard]] std::string DebugString() const;

  // --- Serving metadata (serve/) -----------------------------------------
  // Defaults (invalid tenant, deadline 0) mean "offline event": the whole
  // pre-serve pipeline never sets these and behaves exactly as before.

  /// Tenant that submitted the event; invalid when untagged.
  [[nodiscard]] TenantId tenant() const { return tenant_; }
  void SetTenant(TenantId tenant) { tenant_ = tenant; }

  /// Absolute soft-SLO deadline (virtual time); 0 = no deadline.
  [[nodiscard]] Seconds deadline() const { return deadline_; }
  void SetDeadline(Seconds deadline) { deadline_ = deadline; }
  [[nodiscard]] bool HasDeadline() const { return deadline_ > 0.0; }

 private:
  EventId id_;
  Seconds arrival_time_;
  EventKind kind_;
  std::vector<flow::Flow> flows_;
  TenantId tenant_;
  Seconds deadline_ = 0.0;
};

}  // namespace nu::update
