// EventPlanner: turns an UpdateEvent into a concrete update plan against a
// network state — per flow, either a direct placement on a feasible path or
// a desired path plus the migration set that frees it (Section IV-A). The
// plan's total migrated traffic is the event's cost Cost(U) (Definition 2),
// the quantity LMTF/P-LMTF compare.
//
// Plan() is a pure what-if probe (used by LMTF cost sampling) running on a
// copy-on-write overlay; PlanLegacyCopy() is the deep-copy baseline it
// replaced. Execute() commits against the live network; ExecuteWithPlan()
// replays a previously computed plan without re-planning.
#pragma once

#include <vector>

#include "net/admission.h"
#include "net/overlay.h"
#include "update/migration.h"
#include "update/update_event.h"

namespace nu::update {

/// Planned handling of one flow of the event.
struct FlowAction {
  /// Index of the flow within the event.
  std::size_t flow_index = 0;
  /// Chosen path (desired path when migration is involved), interned in the
  /// planning view's path_registry().
  PathRef path;
  /// Migrations freeing the path; empty moves for a direct placement.
  MigrationPlan migration;
  /// False when the flow fits on no path even with migration — it must wait
  /// for capacity (the simulator retries it on future departures).
  bool placeable = false;
};

struct EventPlan {
  EventId event = EventId::invalid();
  /// True when every flow of the event is placeable now.
  bool fully_feasible = false;
  /// Cost(U): total migrated traffic across all flow actions (Mbps).
  Mbps migrated_traffic = 0.0;
  /// Number of individual flow reroutes.
  std::size_t migration_moves = 0;
  /// Flows that required migration.
  std::size_t flows_needing_migration = 0;
  std::vector<FlowAction> actions;

  [[nodiscard]] std::size_t placeable_count() const;
};

/// Result of committing an event to the live network.
struct ExecutionResult {
  EventPlan plan;
  /// Ids of the event flows placed, parallel to the placeable actions.
  std::vector<FlowId> placed_flows;
  /// Indices (into event.flows()) of flows that could not be placed and
  /// were deferred.
  std::vector<std::size_t> deferred_flows;
};

class EventPlanner {
 public:
  explicit EventPlanner(const topo::PathProvider& paths,
                        MigrationOptions migration_options = {},
                        net::PathSelection path_selection =
                            net::PathSelection::kWidest);

  /// Cost probe: plans the whole event against a copy-on-write overlay of
  /// `network` (flows of the event occupy capacity as they are planned, so
  /// intra-event contention is counted). Does not mutate `network`; probe
  /// cost scales with the state the event touches, not with network size.
  [[nodiscard]] EventPlan Plan(const net::NetworkView& network,
                               const UpdateEvent& event) const;

  /// Legacy baseline of Plan: deep-copies `network` and plans on the copy
  /// (migration probes deep-copy too). Decision-identical to Plan; kept for
  /// the differential tests and bench_probe_scaling.
  [[nodiscard]] EventPlan PlanLegacyCopy(const net::Network& network,
                                         const UpdateEvent& event) const;

  /// Plans and commits against the live network: applies migrations and
  /// places every placeable flow. Unplaceable flows are reported as deferred.
  /// With `legacy_migration`, inner migration probes deep-copy the state (the
  /// pre-overlay behaviour); requires the state to be a concrete Network.
  ExecutionResult Execute(net::MutableNetwork& network,
                          const UpdateEvent& event,
                          bool legacy_migration = false) const;

  /// Replays a plan computed by Plan() against `network` without
  /// re-planning: applies each placeable action's migrations and placement
  /// in plan order. Because network state is identical to what the plan was
  /// computed against (same state epoch) and the planner is deterministic,
  /// this commits exactly what Execute() would have committed.
  ExecutionResult ExecuteWithPlan(net::MutableNetwork& network,
                                  const UpdateEvent& event,
                                  EventPlan plan) const;

  /// Plans and places a single flow (used by the flow-level baseline and by
  /// deferred-flow retries). Returns the placed id, or nullopt when the flow
  /// fits nowhere even with migration; `migrated` accumulates move traffic.
  std::optional<FlowId> PlaceFlow(net::MutableNetwork& network,
                                  flow::Flow flow, Mbps* migrated = nullptr,
                                  std::size_t* moves = nullptr) const;

  [[nodiscard]] const topo::PathProvider& paths() const { return paths_; }
  [[nodiscard]] const MigrationOptions& migration_options() const {
    return optimizer_.options();
  }

 private:
  /// Shared implementation: plans against `state`, mutating it.
  EventPlan PlanInto(net::MutableNetwork& state, const UpdateEvent& event,
                     std::vector<FlowId>* placed_ids,
                     bool legacy_migration = false) const;

  const topo::PathProvider& paths_;
  MigrationOptimizer optimizer_;
  net::PathSelection path_selection_;
};

}  // namespace nu::update
